package schedule

import "testing"

func TestTierString(t *testing.T) {
	if TierRAM.String() != "ram" || TierDisk.String() != "disk" {
		t.Fatalf("tier names wrong: %v %v", TierRAM, TierDisk)
	}
	a := Action{Kind: ActionSnapshot, Slot: 2, Tier: TierDisk}
	if a.String() != "snapshot[2]@disk" {
		t.Fatalf("disk snapshot renders as %q", a.String())
	}
	a.Tier = TierRAM
	if a.String() != "snapshot[2]" {
		t.Fatalf("RAM snapshot must render tierlessly, got %q", a.String())
	}
}

// TestTraceTierAccounting pins the validator's per-tier counters on a
// hand-built two-tier schedule: state x_1 is written to disk, x_2 to RAM,
// and the disk checkpoint is restored twice.
func TestTraceTierAccounting(t *testing.T) {
	actions := []Action{
		{Kind: ActionAdvance, Steps: 1},
		{Kind: ActionSnapshot, Slot: 0, Tier: TierDisk}, // x_1 -> flash
		{Kind: ActionAdvance, Steps: 1},
		{Kind: ActionSnapshot, Slot: 1, Tier: TierRAM}, // x_2 -> RAM
		{Kind: ActionAdvance, Steps: 1},                // sweep ends at x_3
		{Kind: ActionBackprop},                         // step 4 from x_3
		{Kind: ActionRestore, Slot: 1},                 // RAM restore
		{Kind: ActionBackprop},                         // step 3 from x_2
		{Kind: ActionFree, Slot: 1},
		{Kind: ActionRestore, Slot: 0}, // flash read 1
		{Kind: ActionBackprop},         // step 2 from x_1
		{Kind: ActionRestore, Slot: 0}, // flash read 2 (re-read the boundary)
		{Kind: ActionFree, Slot: 0},
		{Kind: ActionRestore, Slot: InputSlot},
		{Kind: ActionBackprop}, // step 1 from x_0
	}
	s := FromActions(4, 2, "tier-test", actions)
	tr, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if tr.DiskWrites != 1 {
		t.Fatalf("DiskWrites = %d, want 1", tr.DiskWrites)
	}
	if tr.DiskReads != 2 {
		t.Fatalf("DiskReads = %d, want 2", tr.DiskReads)
	}
	if tr.PeakDiskSlots != 1 || tr.PeakRAMSlots != 1 {
		t.Fatalf("tier peaks = %d RAM / %d disk, want 1/1", tr.PeakRAMSlots, tr.PeakDiskSlots)
	}
	if tr.PeakSlots != 2 {
		t.Fatalf("PeakSlots = %d, want 2", tr.PeakSlots)
	}
}

// TestUntieredScheduleKeepsRAMSemantics: a schedule with no tier annotations
// reports everything in the RAM tier and no disk traffic.
func TestUntieredScheduleKeepsRAMSemantics(t *testing.T) {
	actions := []Action{
		{Kind: ActionAdvance, Steps: 1},
		{Kind: ActionSnapshot, Slot: 0},
		{Kind: ActionAdvance, Steps: 1},
		{Kind: ActionBackprop},
		{Kind: ActionRestore, Slot: 0},
		{Kind: ActionBackprop},
		{Kind: ActionFree, Slot: 0},
		{Kind: ActionRestore, Slot: InputSlot},
		{Kind: ActionBackprop},
	}
	tr, err := Run(FromActions(3, 1, "plain", actions))
	if err != nil {
		t.Fatal(err)
	}
	if tr.DiskWrites != 0 || tr.DiskReads != 0 || tr.PeakDiskSlots != 0 {
		t.Fatalf("untiered schedule reported disk activity: %+v", tr)
	}
	if tr.PeakRAMSlots != tr.PeakSlots {
		t.Fatalf("PeakRAMSlots %d must equal PeakSlots %d for untiered schedules", tr.PeakRAMSlots, tr.PeakSlots)
	}
}
