package schedule

import (
	"strings"
	"testing"
)

// storeAll5 is a hand-written valid schedule for a 5-step chain: sweep
// storing every state, then backprop with restores and frees.
func storeAll5() []Action {
	return []Action{
		{Kind: ActionAdvance, Steps: 1}, {Kind: ActionSnapshot, Slot: 0},
		{Kind: ActionAdvance, Steps: 1}, {Kind: ActionSnapshot, Slot: 1},
		{Kind: ActionAdvance, Steps: 1}, {Kind: ActionSnapshot, Slot: 2},
		{Kind: ActionAdvance, Steps: 1}, {Kind: ActionSnapshot, Slot: 3},
		{Kind: ActionBackprop},
		{Kind: ActionRestore, Slot: 2}, {Kind: ActionBackprop}, {Kind: ActionFree, Slot: 3},
		{Kind: ActionRestore, Slot: 1}, {Kind: ActionBackprop}, {Kind: ActionFree, Slot: 2},
		{Kind: ActionRestore, Slot: 0}, {Kind: ActionBackprop}, {Kind: ActionFree, Slot: 1},
		{Kind: ActionRestore, Slot: InputSlot}, {Kind: ActionBackprop}, {Kind: ActionFree, Slot: 0},
	}
}

func lazyStoreAll5() *Lazy {
	acts := storeAll5()
	return Generate(5, 4, "store-all", func(yield func(Action) bool) {
		for _, a := range acts {
			if !yield(a) {
				return
			}
		}
	})
}

func TestRunValidSchedule(t *testing.T) {
	for _, s := range []Schedule{
		FromActions(5, 4, "store-all", storeAll5()),
		lazyStoreAll5(),
	} {
		tr, err := Run(s)
		if err != nil {
			t.Fatalf("%T: %v", s, err)
		}
		if tr.Forwards != 4 || tr.PeakSlots != 4 || tr.Snapshots != 4 || tr.Restores != 4 {
			t.Fatalf("%T: unexpected trace %+v", s, tr)
		}
		if len(tr.BackpropOrder) != 5 || tr.BackpropOrder[0] != 5 || tr.BackpropOrder[4] != 1 {
			t.Fatalf("%T: wrong adjoint order %v", s, tr.BackpropOrder)
		}
		if tr.MaxStepExecutions != 1 {
			t.Fatalf("%T: store-all must run each step once, got %d", s, tr.MaxStepExecutions)
		}
	}
}

func TestRunRejectsInvalidSchedules(t *testing.T) {
	cases := []struct {
		name    string
		length  int
		slots   int
		actions []Action
	}{
		{"advance past end", 2, 1, []Action{{Kind: ActionAdvance, Steps: 3}}},
		{"non-positive advance", 2, 1, []Action{{Kind: ActionAdvance, Steps: 0}}},
		{"slot out of range", 2, 1, []Action{{Kind: ActionSnapshot, Slot: 5}}},
		{"double snapshot", 2, 1, []Action{
			{Kind: ActionSnapshot, Slot: 0}, {Kind: ActionAdvance, Steps: 1}, {Kind: ActionSnapshot, Slot: 0}}},
		{"restore empty slot", 2, 1, []Action{{Kind: ActionRestore, Slot: 0}}},
		{"free empty slot", 2, 1, []Action{{Kind: ActionFree, Slot: 0}}},
		{"backprop wrong state", 2, 1, []Action{{Kind: ActionBackprop}}},
		{"too many backprops", 1, 0, []Action{{Kind: ActionBackprop}, {Kind: ActionBackprop}}},
		{"incomplete", 2, 1, []Action{{Kind: ActionAdvance, Steps: 1}, {Kind: ActionBackprop}}},
		{"unknown kind", 1, 0, []Action{{Kind: ActionKind(99)}}},
	}
	for _, tc := range cases {
		if _, err := Run(FromActions(tc.length, tc.slots, "bad", tc.actions)); err == nil {
			t.Fatalf("%s: invalid schedule accepted", tc.name)
		}
	}
}

func TestMaterializeAndCursor(t *testing.T) {
	lazy := lazyStoreAll5()
	mem := Materialize(lazy)
	if mem.Len() != len(storeAll5()) {
		t.Fatalf("materialized %d actions, want %d", mem.Len(), len(storeAll5()))
	}
	if Materialize(mem) != mem {
		t.Fatal("materializing a Memory schedule must return it unchanged")
	}
	cur := NewCursor(mem)
	defer cur.Stop()
	n := 0
	for {
		a, ok := cur.Next()
		if !ok {
			break
		}
		if n == 0 && a.Kind != ActionAdvance {
			t.Fatalf("first action %v, want advance", a)
		}
		n++
	}
	if n != mem.Len() {
		t.Fatalf("cursor yielded %d actions, want %d", n, mem.Len())
	}
	// Early Stop must not deadlock or panic.
	c2 := NewCursor(lazy)
	c2.Next()
	c2.Stop()
}

func TestTracedWrapper(t *testing.T) {
	tr1, err := Run(lazyStoreAll5())
	if err != nil {
		t.Fatal(err)
	}
	tw := NewTraced(lazyStoreAll5())
	if _, err := tw.Result(); err == nil {
		t.Fatal("Result before consumption must fail")
	}
	n := 0
	for range tw.Actions() {
		n++
	}
	tr2, err := tw.Result()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(storeAll5()) {
		t.Fatalf("traced wrapper yielded %d actions, want %d", n, len(storeAll5()))
	}
	if tr1.Forwards != tr2.Forwards || tr1.PeakSlots != tr2.PeakSlots {
		t.Fatalf("traced wrapper trace %+v differs from Run %+v", tr2, tr1)
	}

	// An invalid stream stops early and reports through Result.
	bad := NewTraced(FromActions(2, 1, "bad", []Action{{Kind: ActionAdvance, Steps: 9}}))
	yielded := 0
	for range bad.Actions() {
		yielded++
	}
	if yielded != 0 {
		t.Fatalf("invalid action was yielded %d times", yielded)
	}
	if _, err := bad.Result(); err == nil {
		t.Fatal("Result must surface the validation error")
	}
}

func TestActionStringsAndRender(t *testing.T) {
	if got := (Action{Kind: ActionRestore, Slot: InputSlot}).String(); got != "restore[input]" {
		t.Fatalf("input restore rendered as %q", got)
	}
	if got := (Action{Kind: ActionAdvance, Steps: 3}).String(); got != "advance(3)" {
		t.Fatalf("advance rendered as %q", got)
	}
	mem := FromActions(5, 4, "store-all", storeAll5())
	r := Render(mem)
	if !strings.Contains(r, "backprop") || !strings.Contains(r, "store-all") {
		t.Fatalf("render missing content:\n%s", r)
	}
	if s := mem.String(); !strings.Contains(s, "forwards=4") {
		t.Fatalf("summary missing trace counters: %s", s)
	}
	if s := FromActions(2, 1, "bad", []Action{{Kind: ActionBackprop}}).String(); !strings.Contains(s, "INVALID") {
		t.Fatalf("invalid schedule summary should say so: %s", s)
	}
}

func TestPeakBytes(t *testing.T) {
	mem := FromActions(5, 4, "store-all", storeAll5())
	uniform := []int64{10, 10, 10, 10, 10, 10}
	peak, err := PeakBytes(mem, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if peak != 50 {
		t.Fatalf("uniform peak %d, want 50 (input + 4 checkpoints)", peak)
	}
	if _, err := PeakBytes(mem, uniform[:3]); err == nil {
		t.Fatal("wrong stateBytes length accepted")
	}
	runaway := FromActions(5, 4, "bad", []Action{
		{Kind: ActionAdvance, Steps: 9}, {Kind: ActionSnapshot, Slot: 0}})
	if _, err := PeakBytes(runaway, uniform); err == nil {
		t.Fatal("advance past the chain end accepted")
	}
	hetero := []int64{1, 100, 1, 1, 1, 1}
	peakH, err := PeakBytes(mem, hetero)
	if err != nil {
		t.Fatal(err)
	}
	if peakH != 104 {
		t.Fatalf("hetero peak %d, want 104", peakH)
	}
}
