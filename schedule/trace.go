package schedule

import (
	"fmt"
	"iter"
)

// Trace is the result of simulating a schedule: cost and memory counters plus
// the per-step order in which adjoints were performed.
type Trace struct {
	Forwards      int64 // forward-step executions by Advance actions
	PeakSlots     int   // maximum simultaneously occupied checkpoint slots
	Restores      int   // number of Restore actions executed
	Snapshots     int   // number of Snapshot actions executed
	BackpropOrder []int // step indices in the order their adjoints ran
	// MaxStepExecutions is the largest number of times any single forward
	// step was executed by Advance actions (the observed repetition count).
	MaxStepExecutions int

	// Tier breakdown. Un-annotated schedules put every snapshot in TierRAM,
	// so PeakRAMSlots == PeakSlots and the disk counters stay zero.
	PeakRAMSlots  int // maximum simultaneously occupied RAM-tier slots
	PeakDiskSlots int // maximum simultaneously occupied disk-tier slots
	DiskWrites    int // snapshots into disk-tier slots
	DiskReads     int // restores from disk-tier slots
}

// Validator simulates a schedule action by action, checking that the stream
// is a correct reversal of the chain: every adjoint step runs exactly once,
// in order L..1, with its input state available, never exceeding the slot
// budget. It is the streaming core behind Run and Traced — consumers that
// execute actions one at a time (a training loop, a remote executor) can feed
// the validator in lockstep instead of pre-validating a materialized plan.
type Validator struct {
	length       int
	slots        []validatorSlot
	current      int
	currentValid bool
	pending      int
	occupied     int
	occupiedRAM  int
	occupiedDisk int
	stepRuns     []int
	index        int
	trace        Trace
}

type validatorSlot struct {
	occupied bool
	state    int
	tier     Tier
}

// NewValidator starts a simulation of a chain of the given length with the
// given checkpoint-slot budget. The working state begins at the chain input.
func NewValidator(length, slots int) *Validator {
	return &Validator{
		length:       length,
		slots:        make([]validatorSlot, slots),
		currentValid: true,
		pending:      length,
		stepRuns:     make([]int, length+1),
	}
}

// Apply simulates one action, returning an error if it is illegal in the
// current simulated state. Once Apply has returned an error the validator's
// state is undefined and it must be discarded.
func (v *Validator) Apply(a Action) error {
	i := v.index
	v.index++
	switch a.Kind {
	case ActionAdvance:
		if !v.currentValid {
			return fmt.Errorf("action %d (%s): advance with no valid working state", i, a)
		}
		if a.Steps <= 0 {
			return fmt.Errorf("action %d (%s): non-positive advance", i, a)
		}
		if v.current+a.Steps > v.length {
			return fmt.Errorf("action %d (%s): advance past end of chain (state %d + %d > %d)", i, a, v.current, a.Steps, v.length)
		}
		for st := v.current + 1; st <= v.current+a.Steps; st++ {
			v.stepRuns[st]++
		}
		v.current += a.Steps
		v.trace.Forwards += int64(a.Steps)
	case ActionSnapshot:
		if !v.currentValid {
			return fmt.Errorf("action %d (%s): snapshot with no valid working state", i, a)
		}
		if a.Slot < 0 || a.Slot >= len(v.slots) {
			return fmt.Errorf("action %d (%s): slot out of range", i, a)
		}
		if v.slots[a.Slot].occupied {
			return fmt.Errorf("action %d (%s): slot already occupied by state %d", i, a, v.slots[a.Slot].state)
		}
		v.slots[a.Slot] = validatorSlot{occupied: true, state: v.current, tier: a.Tier}
		v.occupied++
		if v.occupied > v.trace.PeakSlots {
			v.trace.PeakSlots = v.occupied
		}
		if a.Tier == TierDisk {
			v.occupiedDisk++
			v.trace.DiskWrites++
			if v.occupiedDisk > v.trace.PeakDiskSlots {
				v.trace.PeakDiskSlots = v.occupiedDisk
			}
		} else {
			v.occupiedRAM++
			if v.occupiedRAM > v.trace.PeakRAMSlots {
				v.trace.PeakRAMSlots = v.occupiedRAM
			}
		}
		v.trace.Snapshots++
	case ActionRestore:
		if a.Slot == InputSlot {
			v.current = 0
			v.currentValid = true
		} else {
			if a.Slot < 0 || a.Slot >= len(v.slots) {
				return fmt.Errorf("action %d (%s): slot out of range", i, a)
			}
			if !v.slots[a.Slot].occupied {
				return fmt.Errorf("action %d (%s): restore from empty slot", i, a)
			}
			v.current = v.slots[a.Slot].state
			v.currentValid = true
			if v.slots[a.Slot].tier == TierDisk {
				v.trace.DiskReads++
			}
		}
		v.trace.Restores++
	case ActionFree:
		if a.Slot < 0 || a.Slot >= len(v.slots) {
			return fmt.Errorf("action %d (%s): slot out of range", i, a)
		}
		if !v.slots[a.Slot].occupied {
			return fmt.Errorf("action %d (%s): freeing an empty slot", i, a)
		}
		v.slots[a.Slot].occupied = false
		v.occupied--
		if v.slots[a.Slot].tier == TierDisk {
			v.occupiedDisk--
		} else {
			v.occupiedRAM--
		}
	case ActionBackprop:
		if v.pending == 0 {
			return fmt.Errorf("action %d (%s): all adjoint steps already performed", i, a)
		}
		if !v.currentValid || v.current != v.pending-1 {
			return fmt.Errorf("action %d (%s): adjoint of step %d requires working state %d, have %d", i, a, v.pending, v.pending-1, v.current)
		}
		v.trace.BackpropOrder = append(v.trace.BackpropOrder, v.pending)
		v.pending--
	default:
		return fmt.Errorf("action %d: unknown kind %d", i, a.Kind)
	}
	return nil
}

// Finish checks that the stream performed every adjoint step and returns the
// accumulated trace.
func (v *Validator) Finish() (*Trace, error) {
	if v.pending != 0 {
		return nil, fmt.Errorf("schedule incomplete: %d adjoint steps not performed", v.pending)
	}
	for _, runs := range v.stepRuns {
		if runs > v.trace.MaxStepExecutions {
			v.trace.MaxStepExecutions = runs
		}
	}
	return &v.trace, nil
}

// Run consumes the schedule's action stream once, validating every action,
// and returns the trace. It is the one-shot form of the Validator.
func Run(s Schedule) (*Trace, error) {
	v := NewValidator(s.Length(), s.Slots())
	for a := range s.Actions() {
		if err := v.Apply(a); err != nil {
			return nil, err
		}
	}
	return v.Finish()
}

// Traced wraps a schedule so that its action stream is validated as it is
// consumed. The wrapper streams: it never materializes the underlying plan,
// so it composes with lazily generated schedules at no extra memory cost.
//
// After the stream has been fully consumed, Result returns the trace; if any
// action was illegal the stream stops early and Result returns the error.
type Traced struct {
	inner Schedule
	trace *Trace
	err   error
	done  bool
}

// NewTraced wraps the schedule in a validating pass-through.
func NewTraced(s Schedule) *Traced { return &Traced{inner: s} }

// Length returns the wrapped schedule's chain length.
func (t *Traced) Length() int { return t.inner.Length() }

// Slots returns the wrapped schedule's slot budget.
func (t *Traced) Slots() int { return t.inner.Slots() }

// Policy returns the wrapped schedule's policy name.
func (t *Traced) Policy() string { return t.inner.Policy() }

// Actions streams the wrapped schedule's actions, validating each one before
// yielding it. On an illegal action the stream terminates early and the error
// is reported by Result. Each call restarts the validation.
func (t *Traced) Actions() iter.Seq[Action] {
	return func(yield func(Action) bool) {
		v := NewValidator(t.inner.Length(), t.inner.Slots())
		t.trace, t.err, t.done = nil, nil, false
		for a := range t.inner.Actions() {
			if err := v.Apply(a); err != nil {
				t.err = err
				return
			}
			if !yield(a) {
				return
			}
		}
		tr, err := v.Finish()
		t.trace, t.err = tr, err
		t.done = err == nil
	}
}

// Result returns the trace accumulated by a completed iteration, or the
// validation error that stopped it. It returns an error if the stream has
// not been fully consumed yet.
func (t *Traced) Result() (*Trace, error) {
	if t.err != nil {
		return nil, t.err
	}
	if !t.done {
		return nil, fmt.Errorf("schedule: trace not complete: stream has not been fully consumed")
	}
	return t.trace, nil
}
