// Package schedule defines the public vocabulary of checkpointing schedules:
// the primitive Action type, the streaming Schedule interface that both
// precomputed and lazily generated plans implement, and the validating trace
// simulator every consumer (the chain executor, the command-line tools, the
// conformance tests) uses to check a schedule before or while running it.
//
// A schedule reverses a chain of Length steps F_1..F_L mapping state x_0 to
// x_L. The adjoint of step i needs its input x_{i-1} in memory; checkpoint
// slots hold intermediate states, and Advance actions re-run forward steps to
// rebuild states that were discarded. The input x_0 is always available and
// is addressed by the pseudo-slot InputSlot.
//
// Schedules are consumed as a stream (iter.Seq[Action]), so a plan generated
// on the fly — or read back from disk, or received over the network — is
// executed exactly like one materialized in memory. Materialize collects a
// stream into a Memory schedule when random access is needed.
package schedule

import (
	"fmt"
	"iter"
	"strings"
)

// ActionKind enumerates the primitive operations a checkpointing schedule is
// made of.
type ActionKind int

// The schedule action vocabulary. Advance re-executes forward steps, Snapshot
// and Free manage checkpoint slots, Restore switches the working state to a
// stored one, and Backprop performs the adjoint of the next pending step.
const (
	// ActionAdvance executes Steps forward steps from the current working
	// state, moving it forward along the chain.
	ActionAdvance ActionKind = iota
	// ActionSnapshot copies the current working state into checkpoint slot
	// Slot, which must be free.
	ActionSnapshot
	// ActionRestore loads the state stored in slot Slot (or the chain input
	// when Slot == InputSlot) into the working buffer.
	ActionRestore
	// ActionFree releases checkpoint slot Slot.
	ActionFree
	// ActionBackprop performs the adjoint of the next pending step, which
	// requires the working state to hold that step's input.
	ActionBackprop
)

// InputSlot is the pseudo-slot identifier for the chain input x_0, which is
// always available and never counted against the checkpoint budget.
const InputSlot = -1

// Tier identifies the storage medium a checkpoint slot is written to. The
// schedule action vocabulary is storage-agnostic — every consumer may execute
// all slots in RAM — but tiered plans (the paper's Section VI two-level
// scheme) annotate each Snapshot with the tier the planner intended, so a
// tier-aware executor can spill the flash-tier states to disk.
type Tier int

const (
	// TierRAM keeps the checkpoint as an in-memory tensor reference. It is
	// the zero value, so un-annotated schedules behave exactly as before.
	TierRAM Tier = iota
	// TierDisk serializes the checkpoint to flash/disk storage.
	TierDisk
)

// String names the tier ("ram" or "disk").
func (t Tier) String() string {
	switch t {
	case TierRAM:
		return "ram"
	case TierDisk:
		return "disk"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Action is one primitive operation of a schedule.
type Action struct {
	Kind  ActionKind
	Steps int  // ActionAdvance: number of forward steps to execute
	Slot  int  // Snapshot/Restore/Free: slot index, or InputSlot for Restore
	Tier  Tier // ActionSnapshot: storage tier the slot is written to
}

// String renders the action compactly, e.g. "advance(3)" or "snapshot[2]".
func (a Action) String() string {
	switch a.Kind {
	case ActionAdvance:
		return fmt.Sprintf("advance(%d)", a.Steps)
	case ActionSnapshot:
		if a.Tier != TierRAM {
			return fmt.Sprintf("snapshot[%d]@%s", a.Slot, a.Tier)
		}
		return fmt.Sprintf("snapshot[%d]", a.Slot)
	case ActionRestore:
		if a.Slot == InputSlot {
			return "restore[input]"
		}
		return fmt.Sprintf("restore[%d]", a.Slot)
	case ActionFree:
		return fmt.Sprintf("free[%d]", a.Slot)
	case ActionBackprop:
		return "backprop"
	default:
		return fmt.Sprintf("unknown(%d)", int(a.Kind))
	}
}

// Schedule is an executable checkpointing plan for a chain of Length() steps
// using at most Slots() checkpoint slots. Consumers iterate the action stream
// with Actions(); they must not assume the plan is materialized. Actions()
// may be ranged over more than once — each call restarts the stream.
type Schedule interface {
	// Length returns the number of chain steps L the schedule reverses.
	Length() int
	// Slots returns the checkpoint-slot budget the schedule stays within.
	Slots() int
	// Policy returns the human-readable name of the generating strategy,
	// e.g. "revolve" or "sequential(4)".
	Policy() string
	// Actions returns the stream of schedule actions.
	Actions() iter.Seq[Action]
}

// Memory is a fully materialized Schedule backed by an action slice.
type Memory struct {
	length  int
	slots   int
	policy  string
	actions []Action
}

// FromActions wraps a precomputed action slice as a Schedule. The slice is
// used directly, not copied; callers must not mutate it afterwards.
func FromActions(length, slots int, policy string, actions []Action) *Memory {
	return &Memory{length: length, slots: slots, policy: policy, actions: actions}
}

// Length returns the number of chain steps.
func (m *Memory) Length() int { return m.length }

// Slots returns the checkpoint-slot budget.
func (m *Memory) Slots() int { return m.slots }

// Policy returns the generating strategy's name.
func (m *Memory) Policy() string { return m.policy }

// Actions streams the materialized actions.
func (m *Memory) Actions() iter.Seq[Action] {
	return func(yield func(Action) bool) {
		for _, a := range m.actions {
			if !yield(a) {
				return
			}
		}
	}
}

// ActionSlice returns the underlying action slice (not a copy).
func (m *Memory) ActionSlice() []Action { return m.actions }

// Len returns the number of actions in the plan.
func (m *Memory) Len() int { return len(m.actions) }

// String summarises the schedule, tracing it to report cost counters.
func (m *Memory) String() string { return Summary(m) }

// Lazy is a Schedule whose actions are produced on demand by a generator
// function, never materialized. It is the streaming counterpart of Memory:
// the two are interchangeable everywhere a Schedule is consumed.
type Lazy struct {
	length int
	slots  int
	policy string
	gen    func(yield func(Action) bool)
}

// Generate wraps a generator function as a streaming Schedule. The generator
// is invoked anew on every Actions() call, so it must be restartable (a pure
// function of its captured inputs).
func Generate(length, slots int, policy string, gen func(yield func(Action) bool)) *Lazy {
	return &Lazy{length: length, slots: slots, policy: policy, gen: gen}
}

// Length returns the number of chain steps.
func (l *Lazy) Length() int { return l.length }

// Slots returns the checkpoint-slot budget.
func (l *Lazy) Slots() int { return l.slots }

// Policy returns the generating strategy's name.
func (l *Lazy) Policy() string { return l.policy }

// Actions streams the generated actions.
func (l *Lazy) Actions() iter.Seq[Action] { return l.gen }

// String summarises the schedule, tracing it to report cost counters.
func (l *Lazy) String() string { return Summary(l) }

// Materialize collects a schedule's action stream into a Memory schedule.
// Materializing a Memory schedule returns it unchanged.
func Materialize(s Schedule) *Memory {
	if m, ok := s.(*Memory); ok {
		return m
	}
	var actions []Action
	for a := range s.Actions() {
		actions = append(actions, a)
	}
	return FromActions(s.Length(), s.Slots(), s.Policy(), actions)
}

// Cursor is a pull-style adapter over a schedule's action stream for callers
// that prefer Next() over range-over-func. Stop must be called if the cursor
// is abandoned before Next returns false.
type Cursor struct {
	next func() (Action, bool)
	stop func()
}

// NewCursor starts pulling from the schedule's action stream.
func NewCursor(s Schedule) *Cursor {
	next, stop := iter.Pull(s.Actions())
	return &Cursor{next: next, stop: stop}
}

// Next returns the next action, or ok=false when the stream is exhausted.
func (c *Cursor) Next() (Action, bool) { return c.next() }

// Stop releases the underlying iterator. It is safe to call repeatedly.
func (c *Cursor) Stop() { c.stop() }

// UsesTier reports whether any Snapshot action of the schedule is annotated
// with the given tier. It streams the actions and stops at the first match,
// so tier-annotated plans are detected after a handful of actions.
func UsesTier(s Schedule, tier Tier) bool {
	for a := range s.Actions() {
		if a.Kind == ActionSnapshot && a.Tier == tier {
			return true
		}
	}
	return false
}

// Summary renders a one-line description of the schedule, tracing it to
// report cost counters (or the validation error if the schedule is invalid).
func Summary(s Schedule) string {
	tr, err := Run(s)
	if err != nil {
		return fmt.Sprintf("Schedule(%s, L=%d, slots=%d, INVALID: %v)", s.Policy(), s.Length(), s.Slots(), err)
	}
	return fmt.Sprintf("Schedule(%s, L=%d, slots=%d, forwards=%d, peak=%d)",
		s.Policy(), s.Length(), s.Slots(), tr.Forwards, tr.PeakSlots)
}

// Render returns a multi-line listing of the schedule's actions, useful for
// inspection from command-line tools.
func Render(s Schedule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s schedule: L=%d slots=%d\n", s.Policy(), s.Length(), s.Slots())
	i := 0
	for a := range s.Actions() {
		fmt.Fprintf(&b, "%4d  %s\n", i, a.String())
		i++
	}
	return b.String()
}

// PeakBytes simulates a schedule against a heterogeneous chain whose state i
// (the output of step i) occupies stateBytes[i] bytes, and returns the peak
// number of bytes held in checkpoint slots plus the chain input
// (stateBytes[0]). stateBytes must have Length()+1 entries (states x_0..x_L).
func PeakBytes(s Schedule, stateBytes []int64) (int64, error) {
	if len(stateBytes) != s.Length()+1 {
		return 0, fmt.Errorf("schedule: need %d state sizes, got %d", s.Length()+1, len(stateBytes))
	}
	slotState := make([]int, s.Slots())
	for i := range slotState {
		slotState[i] = -1
	}
	current := 0
	held := stateBytes[0]
	peak := held
	i := 0
	for a := range s.Actions() {
		switch a.Kind {
		case ActionAdvance:
			if a.Steps <= 0 || current+a.Steps > s.Length() {
				return 0, fmt.Errorf("schedule: action %d: advance of %d steps from state %d leaves the chain", i, a.Steps, current)
			}
			current += a.Steps
		case ActionSnapshot:
			if a.Slot < 0 || a.Slot >= len(slotState) || slotState[a.Slot] != -1 {
				return 0, fmt.Errorf("schedule: action %d: bad snapshot into slot %d", i, a.Slot)
			}
			slotState[a.Slot] = current
			held += stateBytes[current]
		case ActionRestore:
			if a.Slot == InputSlot {
				current = 0
			} else {
				if a.Slot < 0 || a.Slot >= len(slotState) || slotState[a.Slot] == -1 {
					return 0, fmt.Errorf("schedule: action %d: restore from empty slot %d", i, a.Slot)
				}
				current = slotState[a.Slot]
			}
		case ActionFree:
			if a.Slot < 0 || a.Slot >= len(slotState) || slotState[a.Slot] == -1 {
				return 0, fmt.Errorf("schedule: action %d: freeing empty slot %d", i, a.Slot)
			}
			held -= stateBytes[slotState[a.Slot]]
			slotState[a.Slot] = -1
		case ActionBackprop:
			// no effect on checkpoint storage
		}
		if held > peak {
			peak = held
		}
		i++
	}
	return peak, nil
}
