// Command revolveplan inspects checkpointing schedules planned through the
// public strategy registry and compares them against PyTorch's
// checkpoint_sequential: the minimal forward work for a slot budget, the
// minimal slots for a recompute budget, the Section V memory formula and its
// 2*sqrt(l) lower bound, and the full action listing of a schedule.
//
// Usage:
//
//	revolveplan -l 152 -slots 8                   # cost summary for one configuration
//	revolveplan -l 50 -slots 3 -print             # full action listing
//	revolveplan -l 60 -strategy logspaced         # any registered strategy
//	revolveplan -l 80 -strategy twolevel -slots 2 -disk-slots 4
//	revolveplan -l 152 -rho 2                     # minimal slots for a recompute budget
//	revolveplan -l 152 -sequential                # Section V formula sweep over segments
//	revolveplan -l 152 -sweep                     # slots vs forwards/rho table
//	revolveplan -list                             # the registered strategies
//	revolveplan -l 152 -strategy auto -budget 64MB -state-bytes 4000000
//	revolveplan -l 152 -strategy auto -device waggle -state-bytes 16MB
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/memmodel"
	"github.com/edgeml/edgetrain/plan"
	"github.com/edgeml/edgetrain/schedule"
)

func main() {
	l := flag.Int("l", 152, "chain length (network depth)")
	strategy := flag.String("strategy", "revolve", "planning strategy (see -list)")
	slots := flag.Int("slots", 0, "checkpoint slot budget")
	diskSlots := flag.Int("disk-slots", 0, "flash-tier checkpoints for the twolevel strategy")
	segments := flag.Int("segments", 0, "segment count for the sequential strategy")
	interval := flag.Int("interval", 0, "checkpoint period for the periodic strategy")
	rho := flag.Float64("rho", 0, "recompute-factor budget (selects minimal slots)")
	backward := flag.Float64("backward-ratio", 2.0, "cost of a backward step relative to a forward step")
	budget := flag.String("budget", "", "RAM byte budget for the auto strategy, e.g. 64MB")
	deviceName := flag.String("device", "", "device whose memory defaults the budget: waggle or cloud")
	stateBytes := flag.String("state-bytes", "", "size of one stored state for the auto strategy, e.g. 4MB")
	weightBytes := flag.String("weight-bytes", "0", "resident weight state for the auto strategy, e.g. 100MB")
	print := flag.Bool("print", false, "print the full schedule action listing")
	sequential := flag.Bool("sequential", false, "sweep the checkpoint_sequential formula over segment counts")
	sweep := flag.Bool("sweep", false, "print forwards and rho for every slot count")
	list := flag.Bool("list", false, "list the registered planning strategies")
	flag.Parse()

	cost := checkpoint.CostModel{BackwardRatio: *backward}

	parseBytes := func(s string) int64 {
		if s == "" {
			return 0
		}
		b, err := memmodel.ParseBytes(s)
		if err != nil {
			log.Fatal(err)
		}
		return b
	}
	budgetBytes := parseBytes(*budget)
	if budgetBytes == 0 && *deviceName != "" {
		d, err := device.ByName(*deviceName)
		if err != nil {
			log.Fatal(err)
		}
		budgetBytes = d.MemoryBytes
	}

	switch {
	case *list:
		fmt.Println("registered planning strategies:")
		for _, info := range plan.Describe() {
			opts := ""
			if len(info.Options) > 0 {
				opts = fmt.Sprintf(" (options: %s)", strings.Join(info.Options, ", "))
			}
			fmt.Printf("  %-12s %s%s\n", info.Name, info.Description, opts)
		}
	case *sequential:
		fmt.Printf("checkpoint_sequential on a homogeneous chain of l=%d blocks\n", *l)
		fmt.Printf("lower bound 2*sqrt(l) = %.2f activation slots\n\n", checkpoint.SequentialLowerBound(*l))
		fmt.Printf("%-10s%-14s%-14s%-10s\n", "segments", "memory slots", "forwards", "rho")
		for s := 1; s <= *l; s++ {
			mem := checkpoint.SequentialMemorySlots(*l, s)
			fw := checkpoint.SequentialForwards(*l, s)
			fmt.Printf("%-10d%-14d%-14d%-10.3f\n", s, mem, fw, cost.Rho(*l, fw))
			if s > 24 && s < *l-1 {
				if s == 25 {
					fmt.Println("...")
				}
				continue
			}
		}
		bestS, bestM := checkpoint.BestSequentialSegments(*l)
		fmt.Printf("\nbest segment count: %d (memory %d slots)\n", bestS, bestM)
	case *sweep:
		fmt.Printf("optimal checkpointing for a chain of l=%d steps\n", *l)
		fmt.Printf("%-8s%-14s%-10s%-12s\n", "slots", "forwards", "rho", "repetition")
		for c := 0; c <= *l-1; c++ {
			fw := checkpoint.MinForwards(*l, c)
			fmt.Printf("%-8d%-14d%-10.3f%-12d\n", c, fw, cost.Rho(*l, fw), checkpoint.Repetition(*l, c))
			if c > 20 && c < *l-5 && c%10 != 0 {
				continue
			}
		}
	case *rho > 0 && *strategy == "revolve" && *slots == 0:
		res := checkpoint.MinSlotsForRho(*l, *rho, cost)
		fmt.Printf("chain l=%d, recompute budget rho<=%.3f (backward ratio %.1f):\n", *l, *rho, *backward)
		fmt.Printf("  minimal checkpoint slots: %d\n", res.Slots)
		fmt.Printf("  forward executions:       %d\n", res.Forwards)
		fmt.Printf("  achieved rho:             %.3f\n", cost.Rho(*l, res.Forwards))
		fmt.Printf("  feasible:                 %v\n", res.Feasible)
	default:
		opts := []plan.Option{plan.WithBackwardRatio(*backward)}
		if c := *slots; c > 0 {
			opts = append(opts, plan.WithSlots(c))
		} else if *strategy == "revolve" && *rho == 0 {
			opts = append(opts, plan.WithSlots(8))
		}
		if *diskSlots > 0 {
			opts = append(opts, plan.WithDiskSlots(*diskSlots))
		}
		if *segments > 0 {
			opts = append(opts, plan.WithSegments(*segments))
		}
		if *interval > 0 {
			opts = append(opts, plan.WithInterval(*interval))
		}
		if *rho > 0 {
			opts = append(opts, plan.WithRho(*rho))
		}
		if budgetBytes > 0 {
			opts = append(opts, plan.WithMemoryBudget(budgetBytes))
		}
		spec := plan.ChainSpec{
			Length:          *l,
			WeightBytes:     parseBytes(*weightBytes),
			ActivationBytes: parseBytes(*stateBytes),
		}
		if *strategy == "auto" {
			choice, err := plan.AutoSelect(spec, opts...)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(choice)
		}
		sched, tr, err := plan.Validate(*strategy, spec, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s schedule for l=%d with %d slots:\n", sched.Policy(), *l, sched.Slots())
		fmt.Printf("  forward executions: %d (revolve optimum for %d slots: %d)\n",
			tr.Forwards, tr.PeakSlots, checkpoint.MinForwards(*l, tr.PeakSlots))
		fmt.Printf("  peak slots used:    %d\n", tr.PeakSlots)
		if tr.PeakDiskSlots > 0 {
			fmt.Printf("  tier breakdown:     peak %d RAM + %d flash slots, %d flash writes, %d flash reads\n",
				tr.PeakRAMSlots, tr.PeakDiskSlots, tr.DiskWrites, tr.DiskReads)
		}
		fmt.Printf("  restores:           %d\n", tr.Restores)
		fmt.Printf("  max step reruns:    %d\n", tr.MaxStepExecutions)
		fmt.Printf("  recompute factor:   %.3f\n", cost.Rho(*l, tr.Forwards))
		seq := checkpoint.SequentialMemorySlots(*l, tr.PeakSlots+1)
		fmt.Printf("  checkpoint_sequential with %d segments would retain %d activations (vs %d here)\n",
			tr.PeakSlots+1, seq, tr.PeakSlots+1)
		if *print {
			fmt.Println()
			fmt.Print(schedule.Render(sched))
		}
	}
}
