// Command revolveplan inspects optimal (Revolve/binomial) checkpointing
// schedules and compares them against PyTorch's checkpoint_sequential: the
// minimal forward work for a slot budget, the minimal slots for a recompute
// budget, the Section V memory formula and its 2*sqrt(l) lower bound, and the
// full action listing of a schedule.
//
// Usage:
//
//	revolveplan -l 152 -slots 8            # cost summary for one configuration
//	revolveplan -l 50 -slots 3 -print      # full action listing
//	revolveplan -l 152 -rho 2              # minimal slots for a recompute budget
//	revolveplan -l 152 -sequential         # Section V formula sweep over segments
//	revolveplan -l 152 -sweep              # slots vs forwards/rho table
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/edgeml/edgetrain/internal/checkpoint"
)

func main() {
	l := flag.Int("l", 152, "chain length (network depth)")
	slots := flag.Int("slots", 0, "checkpoint slot budget")
	rho := flag.Float64("rho", 0, "recompute-factor budget (selects minimal slots)")
	backward := flag.Float64("backward-ratio", 2.0, "cost of a backward step relative to a forward step")
	print := flag.Bool("print", false, "print the full schedule action listing")
	sequential := flag.Bool("sequential", false, "sweep the checkpoint_sequential formula over segment counts")
	sweep := flag.Bool("sweep", false, "print forwards and rho for every slot count")
	flag.Parse()

	cost := checkpoint.CostModel{BackwardRatio: *backward}

	switch {
	case *sequential:
		fmt.Printf("checkpoint_sequential on a homogeneous chain of l=%d blocks\n", *l)
		fmt.Printf("lower bound 2*sqrt(l) = %.2f activation slots\n\n", checkpoint.SequentialLowerBound(*l))
		fmt.Printf("%-10s%-14s%-14s%-10s\n", "segments", "memory slots", "forwards", "rho")
		for s := 1; s <= *l; s++ {
			mem := checkpoint.SequentialMemorySlots(*l, s)
			fw := checkpoint.SequentialForwards(*l, s)
			fmt.Printf("%-10d%-14d%-14d%-10.3f\n", s, mem, fw, cost.Rho(*l, fw))
			if s > 24 && s < *l-1 {
				if s == 25 {
					fmt.Println("...")
				}
				continue
			}
		}
		bestS, bestM := checkpoint.BestSequentialSegments(*l)
		fmt.Printf("\nbest segment count: %d (memory %d slots)\n", bestS, bestM)
	case *sweep:
		fmt.Printf("optimal checkpointing for a chain of l=%d steps\n", *l)
		fmt.Printf("%-8s%-14s%-10s%-12s\n", "slots", "forwards", "rho", "repetition")
		for c := 0; c <= *l-1; c++ {
			fw := checkpoint.MinForwards(*l, c)
			fmt.Printf("%-8d%-14d%-10.3f%-12d\n", c, fw, cost.Rho(*l, fw), checkpoint.Repetition(*l, c))
			if c > 20 && c < *l-5 && c%10 != 0 {
				continue
			}
		}
	case *rho > 0:
		res := checkpoint.MinSlotsForRho(*l, *rho, cost)
		fmt.Printf("chain l=%d, recompute budget rho<=%.3f (backward ratio %.1f):\n", *l, *rho, *backward)
		fmt.Printf("  minimal checkpoint slots: %d\n", res.Slots)
		fmt.Printf("  forward executions:       %d\n", res.Forwards)
		fmt.Printf("  achieved rho:             %.3f\n", cost.Rho(*l, res.Forwards))
		fmt.Printf("  feasible:                 %v\n", res.Feasible)
	default:
		c := *slots
		if c <= 0 {
			c = 8
		}
		sched, err := checkpoint.PlanRevolve(*l, c)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := sched.Trace()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("revolve schedule for l=%d with %d slots:\n", *l, c)
		fmt.Printf("  forward executions: %d (optimum %d)\n", tr.Forwards, checkpoint.MinForwards(*l, c))
		fmt.Printf("  peak slots used:    %d\n", tr.PeakSlots)
		fmt.Printf("  restores:           %d\n", tr.Restores)
		fmt.Printf("  max step reruns:    %d\n", tr.MaxStepExecutions)
		fmt.Printf("  recompute factor:   %.3f\n", cost.Rho(*l, tr.Forwards))
		seq := checkpoint.SequentialMemorySlots(*l, c+1)
		fmt.Printf("  checkpoint_sequential with %d segments would retain %d activations (vs %d here)\n", c+1, seq, tr.PeakSlots+1)
		if *print {
			fmt.Println()
			fmt.Print(sched.Render())
		}
	}
}
