// Command aotsim simulates an Array-of-Things style fleet of camera nodes and
// compares the model-update strategies of Section I: uploading captured
// training data to the cloud, training in situ on each node, or never
// specialising the model. It reports network traffic, radio and compute
// energy, privacy exposure and storage feasibility.
//
// Usage:
//
//	aotsim                       # default 150-node, 30-day deployment
//	aotsim -nodes 500 -days 90
//	aotsim -detections 50 -track 20
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/edgesim"
)

func main() {
	nodes := flag.Int("nodes", 150, "number of sensor nodes in the fleet")
	days := flag.Int("days", 30, "simulated period in days")
	detections := flag.Float64("detections", 200, "tracked subjects per node per day")
	track := flag.Int("track", 30, "frames harvested per tracked subject")
	imageKB := flag.Int64("image-kb", 10, "stored size of one training image in kB")
	modelMB := flag.Int64("model-mb", 45, "student model size in MB")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	cfg := edgesim.DefaultFleetConfig()
	cfg.Nodes = *nodes
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.Node.DetectionsPerDay = *detections
	cfg.Node.TrackLength = *track
	cfg.Node.ImageBytes = *imageKB << 10
	cfg.Node.ModelBytes = *modelMB << 20

	results, err := edgesim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Array-of-Things fleet simulation: %d nodes, %d days, %.0f detections/node/day\n\n",
		cfg.Nodes, cfg.Days, cfg.Node.DetectionsPerDay)
	fmt.Print(edgesim.Render(results))

	w := device.Waggle()
	budget := w.Storage(cfg.Node.ImageBytes)
	fmt.Printf("\nper-node storage: %d captured images fit on the node (paper's 100k working set fits: %v)\n",
		budget.ImagesThatFit, budget.PaperWorkingSet)
	for _, r := range results {
		if r.Strategy == edgesim.StrategyCloudTraining {
			fmt.Printf("cloud-training sustained uplink per node: %.3f Mbps of the %.0f Mbps link\n",
				r.MeanUplinkMbpsPerNode, w.NetworkMbps)
		}
	}
}
