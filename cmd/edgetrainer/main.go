// Command edgetrainer trains a scaled-down ResNet student on synthetic
// viewpoint data under a chosen checkpointing policy, reporting what the run
// would cost on a Waggle-class Edge node: peak retained states/bytes,
// recompute overhead, step time and how long the job takes when it may only
// use the node's idle CPU time.
//
// Usage:
//
// The -policy flag accepts any strategy registered in the public plan
// registry (storeall, revolve, sequential, periodic, logspaced, twolevel).
//
//	edgetrainer                                   # store-all baseline
//	edgetrainer -policy revolve -slots 3          # optimal checkpointing
//	edgetrainer -policy revolve -rho 1.8          # slot count chosen from a rho budget
//	edgetrainer -policy sequential -segments 4    # PyTorch-style baseline
//	edgetrainer -policy logspaced                 # logarithmic placement
//	edgetrainer -policy auto -budget 2MB          # cheapest strategy fitting a RAM budget
//	edgetrainer -policy auto -device waggle       # budget from the device's memory
//	edgetrainer -policy twolevel -slots 2 -disk-slots 3 -store tiered   # real flash spilling
//	edgetrainer -checkpoint-dir run1 -checkpoint-every 10   # durable checkpoints
//	edgetrainer -resume run1                      # continue a killed run
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/memmodel"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/parallel"
	"github.com/edgeml/edgetrain/internal/resnet"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/internal/vision"
	"github.com/edgeml/edgetrain/obs"
	"github.com/edgeml/edgetrain/plan"
	"github.com/edgeml/edgetrain/store"
)

func main() {
	policy := flag.String("policy", "storeall",
		"checkpointing strategy: "+strings.Join(plan.Strategies(), ", "))
	slots := flag.Int("slots", 0, "checkpoint slots for the revolve policy")
	rho := flag.Float64("rho", 0, "recompute budget for the revolve policy (used when -slots is 0)")
	segments := flag.Int("segments", 4, "segments for the sequential policy")
	interval := flag.Int("interval", 0, "checkpoint period for the periodic policy")
	diskSlots := flag.Int("disk-slots", 0, "flash checkpoints for the twolevel policy")
	budget := flag.String("budget", "", "RAM byte budget for the auto policy, e.g. 2MB or 1500000")
	deviceName := flag.String("device", "", "device whose memory defaults the budget: waggle or cloud")
	storeKind := flag.String("store", "", "checkpoint store: ram, disk or tiered (default: tiered for tier-annotated policies, ram otherwise)")
	spillDir := flag.String("spill-dir", "", "directory for spilled checkpoints (default: a temporary directory)")
	epochs := flag.Int("epochs", 3, "training epochs")
	batch := flag.Int("batch", 8, "batch size")
	samples := flag.Int("samples", 160, "synthetic training samples")
	viewpoint := flag.Float64("viewpoint", 0.8, "node viewpoint skew in [0,1]")
	seed := flag.Uint64("seed", 1, "random seed")
	ckptDir := flag.String("checkpoint-dir", "", "directory for durable training checkpoints")
	ckptEvery := flag.Int("checkpoint-every", 10, "optimisation steps between durable checkpoints")
	ckptCompress := flag.Bool("checkpoint-compress", false, "DEFLATE-compress checkpoint frames")
	resume := flag.String("resume", "", "resume from the durable checkpoints in this directory")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /trace and /debug/pprof on this address (empty disables)")
	flag.Parse()

	if *metricsAddr != "" {
		obs.SetDefault(obs.NewRegistry())
		obs.SetDefaultTracer(obs.NewTracer(obs.DefaultTraceEvents))
		bound, shutdown, err := obs.Serve(*metricsAddr, obs.Endpoints{})
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		fmt.Printf("metrics on %s\n", bound)
	}

	cfg := resnet.DefaultSmallConfig()
	cfg.NumClasses = vision.NumClasses
	cfg.Seed = *seed
	net, err := resnet.BuildSmall(cfg)
	if err != nil {
		log.Fatal(err)
	}
	c := chain.FromSequential(net)

	rng := tensor.NewRNG(*seed + 1)
	set := vision.Dataset(rng, *samples, *viewpoint, 16)
	var ds []trainer.Batch
	for i := range set.Images {
		ds = append(ds, trainer.Batch{Images: set.Images[i], Labels: []int{set.Labels[i]}})
	}
	dataset := trainer.NewSliceDataset(ds)

	pol := chain.Policy{Kind: *policy, Slots: *slots, Segments: *segments, Interval: *interval,
		DiskSlots: *diskSlots, Rho: *rho, Cost: checkpoint.DefaultCostModel}

	// Budget-aware planning: an explicit -budget wins, otherwise -device
	// donates its memory capacity.
	if *budget != "" {
		b, err := memmodel.ParseBytes(*budget)
		if err != nil {
			log.Fatal(err)
		}
		pol.MemoryBudget = b
	} else if *deviceName != "" {
		d, err := device.ByName(*deviceName)
		if err != nil {
			log.Fatal(err)
		}
		pol.MemoryBudget = d.MemoryBytes
	}

	// Checkpoint store: tiered (real flash spilling) by default for the
	// policies that annotate tiers, plain in-RAM references otherwise.
	kind := *storeKind
	if kind == "" {
		if *policy == "twolevel" || *policy == "auto" {
			kind = "tiered"
		} else {
			kind = "ram"
		}
	}
	switch kind {
	case "ram":
		// An explicit -store ram pins the in-RAM reference store even for
		// tier-annotated policies (chain.Step would otherwise spill their
		// disk tiers through a temporary tiered store); the computed default
		// leaves Store nil so plain policies keep the store-less fast path.
		if *storeKind == "ram" {
			pol.Store = store.NewRAM()
		}
	case "disk":
		ds, err := store.NewDisk(*spillDir)
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Close()
		pol.Store = ds
	case "tiered":
		ts, err := store.NewTiered(*spillDir)
		if err != nil {
			log.Fatal(err)
		}
		defer ts.Close()
		pol.Store = ts
	default:
		log.Fatalf("unknown -store %q (want ram, disk or tiered)", kind)
	}

	tr, err := trainer.New(c, trainer.Config{
		Epochs:    *epochs,
		BatchSize: *batch,
		Optimizer: trainer.NewAdam(0.01),
		Policy:    pol,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Durable checkpointing and crash-safe resume. A -resume path must hold a
	// manifest (it is rejected with a clear error otherwise); new checkpoints
	// continue into -checkpoint-dir when given, else into the resume path.
	start := trainer.Cursor{}
	var cp *trainer.CheckpointPlan
	resumeDir, saveDir, err := ckpt.OpenResume(*resume, *ckptDir)
	if err != nil {
		log.Fatalf("cannot resume: %v", err)
	}
	if saveDir != nil {
		cp = &trainer.CheckpointPlan{Dir: saveDir, EverySteps: *ckptEvery, Compress: *ckptCompress, Seed: *seed}
	}
	if resumeDir != nil {
		s, name, err := resumeDir.Load()
		if err != nil {
			log.Fatalf("cannot resume from %q: %v", *resume, err)
		}
		// The dataset and the model initialisation both derive from -seed, so
		// resuming under a different seed would silently break bit-identity
		// with the original run. Compared unconditionally: 0 is a legal seed,
		// and edgetrainer always stamps its own into the checkpoints.
		if s.Seed != *seed {
			log.Fatalf("cannot resume from %q: %s was written with -seed %d, this run uses -seed %d",
				*resume, name, s.Seed, *seed)
		}
		cur, err := tr.RestoreSession(s)
		if err != nil {
			log.Fatalf("cannot resume from %q: restoring %s: %v", *resume, name, err)
		}
		start = cur
		fmt.Printf("resumed from %s at epoch %d, batch %d\n", *resume, cur.Epoch, cur.Batch)
	}

	fmt.Printf("edge student training: %d-stage %s, policy=%s, store=%s, batch=%d, viewpoint=%.2f\n",
		c.Len(), cfg.Variant, *policy, kind, *batch, *viewpoint)
	fmt.Printf("parallelism: %d workers (EDGETRAIN_WORKERS overrides)\n", parallel.Workers())
	if cp != nil {
		fmt.Printf("checkpointing to %s every %d steps\n", cp.Dir.Path(), cp.EverySteps)
	} else {
		fmt.Println("durable checkpoints: disabled (use -checkpoint-dir)")
	}
	if pol.MemoryBudget > 0 {
		// MiB, matching the binary units -budget accepts, so the echoed
		// number equals what the user typed.
		fmt.Printf("memory budget: %.2f MiB\n", float64(pol.MemoryBudget)/(1<<20))
		if *policy == "auto" {
			x0 := dataset.Batch(0, *batch)
			choice, err := plan.AutoSelect(plan.ChainSpec{
				Length:          c.Len(),
				WeightBytes:     2 * nn.ParamBytes(c.Stages),
				ActivationBytes: x0.Images.Bytes(),
			}, plan.WithMemoryBudget(pol.MemoryBudget))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(choice)
		}
	}
	stats, err := tr.TrainFrom(dataset, start, cp)
	if err != nil {
		log.Fatal(err)
	}
	node := device.Waggle()
	var lastStats trainer.EpochStats
	for _, st := range stats {
		lastStats = st
		fmt.Printf("epoch %d: loss=%.4f acc=%.1f%% forwards=%d backwards=%d peak-states=%d peak-bytes=%.1f MB\n",
			st.Epoch, st.Loss, 100*st.Accuracy, st.ForwardEvals, st.BackwardEvals, st.PeakStates, float64(st.PeakBytes)/1e6)
		if st.DiskWrites > 0 || st.DiskReads > 0 {
			fmt.Printf("         spilled: peak-flash=%.1f MB writes=%d reads=%d\n",
				float64(st.PeakDiskBytes)/1e6, st.DiskWrites, st.DiskReads)
		}
	}
	if pol.MemoryBudget > 0 && lastStats.Steps > 0 {
		// The budget covers the whole resident training state, so compare
		// weights + retained states against it (the same accounting Step's
		// auto planning uses).
		weights := 2 * nn.ParamBytes(c.Stages)
		resident := weights + lastStats.PeakBytes
		const mib = 1 << 20
		fmt.Printf("resident peak %.2f MiB (%.2f MiB weights + %.2f MiB states) vs budget %.2f MiB: fits=%v\n",
			float64(resident)/mib, float64(weights)/mib, float64(lastStats.PeakBytes)/mib,
			float64(pol.MemoryBudget)/mib, resident <= pol.MemoryBudget)
	}

	// Put the run into the context of the Waggle node.
	fmt.Printf("\nWaggle node context (%s):\n", node)
	perStepFLOPs := int64(2e8) // order-of-magnitude estimate for the small student
	stepSeconds := node.TrainingStepSeconds(perStepFLOPs)
	totalSteps := lastStats.Steps * *epochs
	cpuSeconds := stepSeconds * float64(totalSteps)
	fmt.Printf("  estimated CPU time for the whole job: %.1f s\n", cpuSeconds)
	sched := trainer.DefaultIdleScheduler
	res, err := sched.Schedule(trainer.DielLoadTrace(7, 600, 0.85, 0.15), cpuSeconds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  scheduled opportunistically (idle CPU only): finishes in %.1f h, utilisation %.1f%%, completed=%v\n",
		res.ElapsedSeconds/3600, 100*res.Utilisation, res.Completed)
}
