// Command edgetrainer trains a scaled-down ResNet student on synthetic
// viewpoint data under a chosen checkpointing policy, reporting what the run
// would cost on a Waggle-class Edge node: peak retained states/bytes,
// recompute overhead, step time and how long the job takes when it may only
// use the node's idle CPU time.
//
// Usage:
//
// The -policy flag accepts any strategy registered in the public plan
// registry (storeall, revolve, sequential, periodic, logspaced, twolevel).
//
//	edgetrainer                                   # store-all baseline
//	edgetrainer -policy revolve -slots 3          # optimal checkpointing
//	edgetrainer -policy revolve -rho 1.8          # slot count chosen from a rho budget
//	edgetrainer -policy sequential -segments 4    # PyTorch-style baseline
//	edgetrainer -policy logspaced                 # logarithmic placement
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/resnet"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/internal/vision"
	"github.com/edgeml/edgetrain/plan"
)

func main() {
	policy := flag.String("policy", "storeall",
		"checkpointing strategy: "+strings.Join(plan.Strategies(), ", "))
	slots := flag.Int("slots", 0, "checkpoint slots for the revolve policy")
	rho := flag.Float64("rho", 0, "recompute budget for the revolve policy (used when -slots is 0)")
	segments := flag.Int("segments", 4, "segments for the sequential policy")
	interval := flag.Int("interval", 0, "checkpoint period for the periodic policy")
	diskSlots := flag.Int("disk-slots", 0, "flash checkpoints for the twolevel policy")
	epochs := flag.Int("epochs", 3, "training epochs")
	batch := flag.Int("batch", 8, "batch size")
	samples := flag.Int("samples", 160, "synthetic training samples")
	viewpoint := flag.Float64("viewpoint", 0.8, "node viewpoint skew in [0,1]")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	cfg := resnet.DefaultSmallConfig()
	cfg.NumClasses = vision.NumClasses
	cfg.Seed = *seed
	net, err := resnet.BuildSmall(cfg)
	if err != nil {
		log.Fatal(err)
	}
	c := chain.FromSequential(net)

	rng := tensor.NewRNG(*seed + 1)
	set := vision.Dataset(rng, *samples, *viewpoint, 16)
	var ds []trainer.Batch
	for i := range set.Images {
		ds = append(ds, trainer.Batch{Images: set.Images[i], Labels: []int{set.Labels[i]}})
	}
	dataset := trainer.NewSliceDataset(ds)

	pol := chain.Policy{Kind: *policy, Slots: *slots, Segments: *segments, Interval: *interval,
		DiskSlots: *diskSlots, Rho: *rho, Cost: checkpoint.DefaultCostModel}
	tr, err := trainer.New(c, trainer.Config{
		Epochs:    *epochs,
		BatchSize: *batch,
		Optimizer: trainer.NewAdam(0.01),
		Policy:    pol,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("edge student training: %d-stage %s, policy=%s, batch=%d, viewpoint=%.2f\n",
		c.Len(), cfg.Variant, *policy, *batch, *viewpoint)
	stats, err := tr.Train(dataset)
	if err != nil {
		log.Fatal(err)
	}
	node := device.Waggle()
	var lastStats trainer.EpochStats
	for _, st := range stats {
		lastStats = st
		fmt.Printf("epoch %d: loss=%.4f acc=%.1f%% forwards=%d backwards=%d peak-states=%d peak-bytes=%.1f MB\n",
			st.Epoch, st.Loss, 100*st.Accuracy, st.ForwardEvals, st.BackwardEvals, st.PeakStates, float64(st.PeakBytes)/1e6)
	}

	// Put the run into the context of the Waggle node.
	fmt.Printf("\nWaggle node context (%s):\n", node)
	perStepFLOPs := int64(2e8) // order-of-magnitude estimate for the small student
	stepSeconds := node.TrainingStepSeconds(perStepFLOPs)
	totalSteps := lastStats.Steps * *epochs
	cpuSeconds := stepSeconds * float64(totalSteps)
	fmt.Printf("  estimated CPU time for the whole job: %.1f s\n", cpuSeconds)
	sched := trainer.DefaultIdleScheduler
	res, err := sched.Schedule(trainer.DielLoadTrace(7, 600, 0.85, 0.15), cpuSeconds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  scheduled opportunistically (idle CPU only): finishes in %.1f h, utilisation %.1f%%, completed=%v\n",
		res.ElapsedSeconds/3600, 100*res.Utilisation, res.Completed)
}
