// Command fleettrainer trains a student model across a fleet of concurrent
// simulated edge workers: every node owns a device profile, a RAM budget that
// auto-selects its checkpoint strategy, a tiered flash spill store, and a
// non-IID shard of the synthetic viewpoint data. Rounds aggregate either by
// federated averaging or synchronous gradient all-reduce, under optional
// straggler delays, worker dropout and partial participation; the run ends
// with the measured traffic cross-checked against the analytical federated
// model of the paper's Section I analysis.
//
// Usage:
//
//	fleettrainer                                             # 4 Waggle nodes, fedavg
//	fleettrainer -nodes 6 -device-mix waggle,jetson,rpi      # heterogeneous fleet
//	fleettrainer -budget 280KB,210KB,201KB                   # budgets forcing mixed strategies
//	fleettrainer -agg allreduce -rounds 8                    # synchronous data-parallel SGD
//	fleettrainer -compress topk:0.05+int8+deflate            # sparsified, quantized uploads
//	fleettrainer -dropout 0.2 -participation 0.5 -straggler 100ms
//	fleettrainer -checkpoint-dir fleet1 -checkpoint-every 2  # durable round checkpoints
//	fleettrainer -resume fleet1                              # continue a killed fleet
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/compress"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/edgesim"
	"github.com/edgeml/edgetrain/internal/fleetdemo"
	"github.com/edgeml/edgetrain/internal/memmodel"
	"github.com/edgeml/edgetrain/internal/parallel"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/obs"
)

// compressFlag validates a -compress codec spec and returns its canonical
// form ("" when compression is off).
func compressFlag(s string) (string, error) {
	spec, err := compress.ParseSpec(s)
	if err != nil {
		return "", err
	}
	if !spec.Enabled() {
		return "", nil
	}
	return spec.String(), nil
}

func main() {
	nodes := flag.Int("nodes", 4, "number of fleet workers")
	deviceMix := flag.String("device-mix", "waggle", "comma-separated device names cycled across workers (waggle, jetson, rpi, cloud)")
	budget := flag.String("budget", "device", "per-worker RAM budget: 'device' (the node's memory), a size like 96KB, or a comma-separated list cycled across workers")
	agg := flag.String("agg", "fedavg", "aggregation mode: fedavg or allreduce")
	rounds := flag.Int("rounds", 4, "aggregation rounds")
	localEpochs := flag.Int("local-epochs", 1, "fedavg local epochs per round")
	batch := flag.Int("batch", 0, "local batch size (0 = one full-shard batch)")
	samples := flag.Int("samples", 48, "total synthetic training samples across the fleet")
	dropout := flag.Float64("dropout", 0, "per-round probability a selected worker fails before uploading")
	participation := flag.Float64("participation", 1, "fraction of workers selected per round")
	straggler := flag.Duration("straggler", 0, "maximum injected straggler delay per worker per round")
	lr := flag.Float64("lr", 0.05, "learning rate")
	seed := flag.Uint64("seed", 1, "random seed")
	compressSpec := flag.String("compress", "", "update codec spec, e.g. topk:0.05+int8+deflate (empty or 'none' disables)")
	uplinkMbps := flag.Float64("uplink-mbps", 10, "modeled uplink rate behind the report's upload times")
	ckptDir := flag.String("checkpoint-dir", "", "directory for durable round checkpoints")
	ckptEvery := flag.Int("checkpoint-every", 1, "rounds between durable checkpoints")
	ckptCompress := flag.Bool("checkpoint-compress", false, "DEFLATE-compress checkpoint frames")
	resume := flag.String("resume", "", "resume from the durable checkpoints in this directory (requires the original -seed)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /trace and /debug/pprof on this address (empty disables)")
	flag.Parse()

	if *nodes <= 0 {
		log.Fatal("need at least one node")
	}
	if *metricsAddr != "" {
		obs.SetDefault(obs.NewRegistry())
		obs.SetDefaultTracer(obs.NewTracer(obs.DefaultTraceEvents))
		bound, shutdown, err := obs.Serve(*metricsAddr, obs.Endpoints{})
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		fmt.Printf("metrics on %s\n", bound)
	}

	// Device mix and budgets, cycled across the fleet.
	var devices []device.Device
	for _, name := range strings.Split(*deviceMix, ",") {
		d, err := device.ByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		devices = append(devices, d)
	}
	var budgets []int64 // -1 means "use the device memory"
	for _, b := range strings.Split(*budget, ",") {
		b = strings.TrimSpace(b)
		if b == "" || b == "device" {
			budgets = append(budgets, -1)
			continue
		}
		v, err := memmodel.ParseBytes(b)
		if err != nil {
			log.Fatal(err)
		}
		budgets = append(budgets, v)
	}
	specs := make([]fleet.WorkerSpec, *nodes)
	for i := range specs {
		specs[i] = fleet.WorkerSpec{Device: devices[i%len(devices)]}
		if b := budgets[i%len(budgets)]; b > 0 {
			specs[i].BudgetBytes = b
		}
	}

	// Shared demo builders: the same non-IID viewpoint shards and small
	// ResNet the distributed edgecoord/edgeworker pair reconstructs, so a
	// fleettrainer run is the in-process reference for a distributed one.
	dataset := fleetdemo.Dataset(*nodes, *samples, *seed)
	model := fleetdemo.Model(*seed)

	aggregator, err := fleet.NewAggregator(*agg, trainer.NewSGD(*lr))
	if err != nil {
		log.Fatal(err)
	}
	cSpec, err := compressFlag(*compressSpec)
	if err != nil {
		log.Fatal(err)
	}
	cfg := fleet.Config{
		Workers:       specs,
		Rounds:        *rounds,
		LocalEpochs:   *localEpochs,
		BatchSize:     *batch,
		Optimizer:     func() trainer.Optimizer { return trainer.NewSGD(*lr) },
		Aggregator:    aggregator,
		Seed:          *seed,
		Participation: *participation,
		DropoutRate:   *dropout,
		Compression:   cSpec,
		UplinkMbps:    *uplinkMbps,
	}
	if *straggler > 0 {
		maxDelay := *straggler
		cfg.StragglerDelay = func(round, worker int) time.Duration {
			// Deterministic spread: later workers straggle more, shifted by
			// round so the slowest node rotates.
			return maxDelay * time.Duration((worker+round)%*nodes) / time.Duration(*nodes)
		}
	}

	f, err := fleet.New(cfg, model, dataset)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// Durable round checkpoints and crash-safe resume. A -resume path must
	// hold a manifest (rejected with a clear error otherwise); new
	// checkpoints continue into -checkpoint-dir when given, else into the
	// resume path.
	startRound := 0
	resumeDir, dir, err := ckpt.OpenResume(*resume, *ckptDir)
	if err != nil {
		log.Fatalf("cannot resume: %v", err)
	}
	if resumeDir != nil {
		startRound, err = f.ResumeFrom(resumeDir)
		if err != nil {
			log.Fatalf("cannot resume from %q: %v", *resume, err)
		}
		fmt.Printf("resumed from %s at round %d\n", *resume, startRound)
	}

	fmt.Printf("fleet training: %d workers, %s aggregation, %d rounds, %d samples (non-IID shards)\n",
		*nodes, aggregator.Name(), *rounds, dataset.Len())
	if cSpec != "" {
		fmt.Printf("update compression: %s at %g Mbps modeled uplink\n", cSpec, *uplinkMbps)
	}
	fmt.Printf("parallelism: %d workers (EDGETRAIN_WORKERS overrides)\n", parallel.Workers())
	if dir != nil {
		fmt.Printf("checkpointing to %s every %d round(s)\n", dir.Path(), *ckptEvery)
	} else {
		fmt.Println("durable checkpoints: disabled (use -checkpoint-dir)")
	}
	for _, w := range f.Workers() {
		if w.Choice.Strategy == "" {
			fmt.Printf("  %-20s idle (empty shard)\n", w.Spec.Name)
			continue
		}
		fmt.Printf("  %-20s budget %8.2f MB -> %s\n",
			w.Spec.Name, float64(w.Spec.BudgetBytes)/1e6, w.Choice)
	}

	var ckptOpts []ckpt.Option
	if *ckptCompress {
		ckptOpts = append(ckptOpts, ckpt.WithCompression())
	}
	rep, err := f.RunFrom(startRound, dir, *ckptEvery, ckptOpts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Render())

	// Cross-check the measured traffic against the analytical federated
	// model (Section I's "excessive communication" analysis).
	fed, _, err := edgesim.SimulateFederated(f.FederatedModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("analytical cross-check (edgesim.SimulateFederated):\n")
	fmt.Printf("  uplink:   measured %.2f MB, modeled %.2f MB\n",
		float64(rep.TotalUplinkBytes)/1e6, float64(fed.UplinkBytes)/1e6)
	fmt.Printf("  downlink: measured %.2f MB, modeled %.2f MB\n",
		float64(rep.TotalDownlinkBytes)/1e6, float64(fed.DownlinkBytes)/1e6)
	if *dropout == 0 && cSpec != "" {
		// The analytical model quantizes the per-round update size to whole
		// bytes, so with compression the cross-check is approximate.
		fmt.Printf("  (compression: modeled uplink uses the measured update fraction, downlink is exact)\n")
	} else if *dropout == 0 {
		match := fed.UplinkBytes == rep.TotalUplinkBytes && fed.DownlinkBytes == rep.TotalDownlinkBytes
		fmt.Printf("  agreement: %v\n", match)
	} else {
		// Dropped workers received the broadcast but never uploaded, so
		// downlink still agrees exactly; only uplink falls short.
		fmt.Printf("  downlink agreement: %v (dropped workers still downloaded)\n",
			fed.DownlinkBytes == rep.TotalDownlinkBytes)
		fmt.Printf("  (dropout makes the measured uplink fall short of the model)\n")
	}
}
