package main

import "testing"

func TestCompressFlag(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"none", ""},
		{"fp16+deflate", "topk:1+fp16+deflate"},
		{"topk:0.05+int8+deflate", "topk:0.05+int8+deflate"},
	}
	for _, c := range cases {
		got, err := compressFlag(c.in)
		if err != nil {
			t.Fatalf("compressFlag(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("compressFlag(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"zstd", "topk:1.5", "int8+fp16"} {
		if _, err := compressFlag(bad); err == nil {
			t.Fatalf("compressFlag(%q) accepted", bad)
		}
	}
}
