// Command edgecoord runs the fleet coordinator: it owns the global model and
// round state, listens for edge workers on TCP, drives the aggregation
// rounds, and prints the fleet report when the run completes. Workers join
// with cmd/edgeworker; a distributed run produces global weights
// byte-identical to the same configuration under cmd/fleettrainer.
//
// Usage:
//
//	edgecoord -workers 3 -rounds 4                  # wait for 3 workers
//	edgecoord -listen 0.0.0.0:7600 -agg allreduce   # fixed port, all-reduce
//	edgecoord -compress topk:0.05+int8+deflate      # sparsified, quantized updates
//	edgecoord -wire-deflate -round-deadline 30s     # DEFLATE frames, straggler cap
//	edgecoord -state-dir /var/lib/edgecoord         # durable: restart resumes the run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/edgeml/edgetrain/compress"
	"github.com/edgeml/edgetrain/coord"
	"github.com/edgeml/edgetrain/internal/fleetdemo"
	"github.com/edgeml/edgetrain/internal/parallel"
	"github.com/edgeml/edgetrain/obs"
)

// compressFlag validates a -compress codec spec and returns its canonical
// form ("" when compression is off).
func compressFlag(s string) (string, error) {
	spec, err := compress.ParseSpec(s)
	if err != nil {
		return "", err
	}
	if !spec.Enabled() {
		return "", nil
	}
	return spec.String(), nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP address to listen on (port 0 picks a free port)")
	workers := flag.Int("workers", 2, "fleet size: worker slots, which fixes the shard count")
	minWorkers := flag.Int("min-workers", 0, "workers required before round zero (0 = all slots)")
	rounds := flag.Int("rounds", 4, "aggregation rounds")
	localEpochs := flag.Int("local-epochs", 1, "fedavg local epochs per round")
	batch := flag.Int("batch", 0, "local batch size (0 = one full-shard batch)")
	samples := flag.Int("samples", 48, "total synthetic training samples across the fleet")
	agg := flag.String("agg", "fedavg", "aggregation mode: fedavg or allreduce")
	opt := flag.String("opt", "sgd", "optimizer: sgd, momentum or adam")
	lr := flag.Float64("lr", 0.05, "learning rate")
	seed := flag.Uint64("seed", 1, "random seed forwarded to workers")
	compressSpec := flag.String("compress", "", "update codec spec, e.g. topk:0.05+int8+deflate (empty or 'none' disables)")
	wireDeflate := flag.Bool("wire-deflate", false, "DEFLATE-compress wire frames")
	uplinkMbps := flag.Float64("uplink-mbps", 10, "modeled uplink rate behind the report's upload times")
	joinTimeout := flag.Duration("join-timeout", 30*time.Second, "how long to wait for the fleet to assemble")
	updateTimeout := flag.Duration("update-timeout", 0, "per-worker liveness bound during a round (0 disables)")
	roundDeadline := flag.Duration("round-deadline", 0, "hard cap on one round's collection phase (0 disables)")
	stateDir := flag.String("state-dir", "", "durable state directory: checkpoint every round, resume on restart")
	roundRetries := flag.Int("round-retries", 0, "re-runs of a round that misses quorum (0 = default, negative disables)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /trace and /debug/pprof on this address (empty disables)")
	metricsLinger := flag.Duration("metrics-linger", 0, "keep the metrics server up this long after the report prints")
	quiet := flag.Bool("quiet", false, "suppress per-event progress lines")
	flag.Parse()

	// The registry and tracer must be installed before coord.New: the
	// coordinator resolves its metric handles at construction.
	if *metricsAddr != "" {
		obs.SetDefault(obs.NewRegistry())
		obs.SetDefaultTracer(obs.NewTracer(obs.DefaultTraceEvents))
	}

	var logf func(format string, args ...any)
	if !*quiet {
		logf = obs.NewLog(os.Stderr, "coord", "").Printf
	}
	cSpec, err := compressFlag(*compressSpec)
	if err != nil {
		log.Fatal(err)
	}
	c, err := coord.New(coord.Config{
		Workers:       *workers,
		MinWorkers:    *minWorkers,
		Rounds:        *rounds,
		LocalEpochs:   *localEpochs,
		BatchSize:     *batch,
		Samples:       *samples,
		Seed:          *seed,
		Aggregator:    *agg,
		Optimizer:     *opt,
		LR:            *lr,
		JoinTimeout:   *joinTimeout,
		UpdateTimeout: *updateTimeout,
		RoundDeadline: *roundDeadline,
		StateDir:      *stateDir,
		RoundRetries:  *roundRetries,
		Compression:   cSpec,
		UplinkMbps:    *uplinkMbps,
		Logf:          logf,
	}, fleetdemo.Model(*seed))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	if *metricsAddr != "" {
		bound, shutdown, err := obs.Serve(*metricsAddr, obs.Endpoints{Health: c.Health})
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		// Scraped by the metrics smoke test for the bound port.
		fmt.Printf("metrics on %s\n", bound)
	}

	addr, err := c.Start(&coord.TCP{Compress: *wireDeflate}, *listen)
	if err != nil {
		log.Fatal(err)
	}
	// The smoke tests (and shell scripts) scrape this line for the bound port.
	fmt.Printf("listening on %s\n", addr)
	if r := c.StartRound(); r > 0 {
		fmt.Printf("resuming at round %d from %s\n", r, *stateDir)
	}
	fmt.Printf("coordinator: %d worker slots, %s aggregation, %d rounds, %d samples, %s lr %g\n",
		*workers, *agg, *rounds, *samples, *opt, *lr)
	if cSpec != "" {
		fmt.Printf("update compression: %s at %g Mbps modeled uplink\n", cSpec, *uplinkMbps)
	}
	fmt.Printf("parallelism: %d workers (EDGETRAIN_WORKERS overrides)\n", parallel.Workers())

	rep, err := c.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Render())
	if *metricsAddr != "" && *metricsLinger > 0 {
		// Give a scraper a window to read the final counter values after
		// the report: the smoke test cross-checks /metrics against it.
		fmt.Printf("metrics linger: %s\n", *metricsLinger)
		time.Sleep(*metricsLinger)
	}
}
