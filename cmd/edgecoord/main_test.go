package main

import "testing"

func TestCompressFlag(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"none", ""},
		{"int8", "topk:1+int8+raw"},
		{"deflate+topk:0.25", "topk:0.25+fp64+deflate"},
		{"topk:0.05+int8+deflate", "topk:0.05+int8+deflate"},
	}
	for _, c := range cases {
		got, err := compressFlag(c.in)
		if err != nil {
			t.Fatalf("compressFlag(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("compressFlag(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"gzip", "topk:0", "raw+raw"} {
		if _, err := compressFlag(bad); err == nil {
			t.Fatalf("compressFlag(%q) accepted", bad)
		}
	}
}
