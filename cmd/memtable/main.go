// Command memtable regenerates Tables I, II and III of "Training on the
// Edge": the training-memory footprint of the ResNet family over batch sizes
// and image sizes, with the 2 GB Edge-device fit marked per cell.
//
// Usage:
//
//	memtable -table all            # print all three tables
//	memtable -table 1 -compare     # print Table I next to the paper's values
//	memtable -table 3 -accounting sgd
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/edgeml/edgetrain/internal/memmodel"
)

func main() {
	table := flag.String("table", "all", "which table to print: 1, 2, 3 or all")
	accounting := flag.String("accounting", "adam", "optimiser-state accounting: adam (16 B/param) or sgd (8 B/param)")
	compare := flag.Bool("compare", false, "print per-cell comparison against the paper's published values")
	flag.Parse()

	acc := memmodel.DefaultAccounting
	switch *accounting {
	case "adam":
	case "sgd":
		acc = memmodel.SGDAccounting
	default:
		log.Fatalf("unknown accounting %q (want adam or sgd)", *accounting)
	}

	type entry struct {
		id    string
		build func(memmodel.Accounting) (*memmodel.Table, error)
		paper memmodel.PaperTable
	}
	entries := []entry{
		{"1", memmodel.Table1, memmodel.PaperTable1},
		{"2", memmodel.Table2, memmodel.PaperTable2},
		{"3", memmodel.Table3, memmodel.PaperTable3},
	}

	printed := false
	for _, e := range entries {
		if *table != "all" && *table != e.id {
			continue
		}
		printed = true
		tbl, err := e.build(acc)
		if err != nil {
			log.Fatalf("table %s: %v", e.id, err)
		}
		fmt.Println(tbl.Render())
		if *compare {
			cmp, err := memmodel.Compare(tbl, e.paper)
			if err != nil {
				log.Fatalf("compare table %s: %v", e.id, err)
			}
			fmt.Printf("%-10s %-12s %12s %12s %10s %6s\n", "row", "model", "paper", "reproduced", "rel diff", "fit=")
			for _, c := range cmp {
				fmt.Printf("%-10d %-12s %12.2f %12.2f %9.1f%% %6v\n",
					c.Row, c.Variant, c.Paper, c.Ours, 100*c.RelativeDiff, c.FitsAgrees)
			}
			fmt.Println()
		}
	}
	if !printed {
		fmt.Fprintf(os.Stderr, "unknown table %q (want 1, 2, 3 or all)\n", *table)
		os.Exit(2)
	}
}
