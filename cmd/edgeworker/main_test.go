package main

import (
	"reflect"
	"testing"
)

func TestCodecsForFlag(t *testing.T) {
	cases := []struct {
		in   string
		want []string // nil means "advertise everything"
	}{
		{"", nil},
		{"all", nil},
		{"ALL", nil},
		{"none", []string{}},
		{"topk:1+fp64+raw", []string{}}, // lossless needs no negotiated codec
		{"fp16", []string{"fp16"}},
		{"topk:0.05+int8+deflate", []string{"topk", "int8", "deflate"}},
	}
	for _, c := range cases {
		got, err := codecsForFlag(c.in)
		if err != nil {
			t.Fatalf("codecsForFlag(%q): %v", c.in, err)
		}
		if (got == nil) != (c.want == nil) || !reflect.DeepEqual(got, c.want) {
			t.Fatalf("codecsForFlag(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"lz4", "topk:2", "fp16+fp16", "topk:"} {
		if _, err := codecsForFlag(bad); err == nil {
			t.Fatalf("codecsForFlag(%q) accepted", bad)
		}
	}
}
