// Command edgeworker runs one edge worker process: it dials the coordinator
// started by cmd/edgecoord, registers with a capability handshake (device
// profile, RAM budget, supported aggregators), pulls its shard and round
// assignments, trains locally with the existing chain/plan machinery, and
// pushes updates back until the run completes. A worker restarted under the
// same -name recovers its optimizer state from the coordinator.
//
// Usage:
//
//	edgeworker -addr 127.0.0.1:7600 -name w0
//	edgeworker -addr 127.0.0.1:7600 -name w1 -device rpi -budget 210KB
//	edgeworker -addr 127.0.0.1:7600 -name w2 -retry 100 -backoff-max 2s
//	edgeworker -addr 127.0.0.1:7600 -name w3 -compress none   # no codec capability
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"github.com/edgeml/edgetrain/compress"
	"github.com/edgeml/edgetrain/coord"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/fleetdemo"
	"github.com/edgeml/edgetrain/internal/memmodel"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/obs"
)

// codecsForFlag maps the -compress flag to the advertised codec capability:
// "all" (or empty) advertises every codec, "none" advertises none, and a
// codec spec like "topk:0.05+int8" advertises exactly what that spec needs.
func codecsForFlag(s string) ([]string, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", "all":
		return nil, nil // nil means compress.AllCodecs to RunWorker
	case "none":
		return []string{}, nil
	}
	spec, err := compress.ParseSpec(s)
	if err != nil {
		return nil, err
	}
	req := spec.Required()
	if req == nil {
		req = []string{}
	}
	return req, nil
}

func main() {
	addr := flag.String("addr", "", "coordinator address (required)")
	name := flag.String("name", "", "worker name — the rejoin identity (required)")
	deviceName := flag.String("device", "waggle", "device profile: waggle, jetson, rpi or cloud")
	budget := flag.String("budget", "device", "RAM budget: 'device' (the node's memory) or a size like 210KB")
	codecCap := flag.String("compress", "all", "update codecs to advertise: 'all', 'none', or a spec like topk:0.05+int8+deflate")
	wireDeflate := flag.Bool("wire-deflate", false, "DEFLATE-compress wire frames (must match the coordinator)")
	heartbeat := flag.Duration("heartbeat", time.Second, "liveness interval while training")
	retry := flag.Int("retry", 0, "reconnect attempts after a lost connection (0 = default 5, negative disables)")
	backoffMax := flag.Duration("backoff-max", 0, "cap on the reconnect backoff (0 = default 5s)")
	spill := flag.String("spill-dir", "", "directory for tiered checkpoint spill (default in-memory)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /trace and /debug/pprof on this address (empty disables; also enables telemetry shipping to the coordinator)")
	metricsLinger := flag.Duration("metrics-linger", 0, "keep the metrics server up this long after the run completes")
	quiet := flag.Bool("quiet", false, "suppress per-round progress lines")
	flag.Parse()

	if *addr == "" || *name == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Installing the registry and tracer turns on both the local HTTP
	// surface and telemetry shipping: RunWorker piggybacks delta snapshots
	// of these defaults on its heartbeats and updates, so the coordinator's
	// /metrics carries this worker's series under worker=<name> labels.
	var done atomic.Bool
	if *metricsAddr != "" {
		obs.SetDefault(obs.NewRegistry())
		obs.SetDefaultTracer(obs.NewTracer(obs.DefaultTraceEvents))
		bound, shutdown, err := obs.Serve(*metricsAddr, obs.Endpoints{Health: func() obs.Health {
			h := obs.Health{Status: "training"}
			if done.Load() {
				h.Status = "done"
			}
			return h
		}})
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		// Scraped by the telemetry smoke test for the bound port.
		fmt.Printf("metrics on %s\n", bound)
	}
	dev, err := device.ByName(*deviceName)
	if err != nil {
		log.Fatal(err)
	}
	spec := fleet.WorkerSpec{Name: *name, Device: dev, SpillDir: *spill}
	if *budget != "" && *budget != "device" {
		b, err := memmodel.ParseBytes(*budget)
		if err != nil {
			log.Fatal(err)
		}
		spec.BudgetBytes = b
	}
	codecs, err := codecsForFlag(*codecCap)
	if err != nil {
		log.Fatal(err)
	}
	var logf func(format string, args ...any)
	if !*quiet {
		logf = obs.NewLog(os.Stdout, "worker", *name).Printf
	}

	res, err := coord.RunWorker(&coord.TCP{Compress: *wireDeflate}, *addr, coord.WorkerOptions{
		Spec: spec,
		Model: func(a coord.Assignment) (*chain.Chain, error) {
			return fleetdemo.Model(a.Seed)()
		},
		Dataset: func(a coord.Assignment) (trainer.Dataset, error) {
			return fleetdemo.Dataset(a.Workers, a.Samples, a.Seed), nil
		},
		Codecs:     codecs,
		Heartbeat:  *heartbeat,
		Retries:    *retry,
		BackoffMax: *backoffMax,
		Logf:       logf,
	})
	if err != nil {
		log.Fatal(err)
	}
	done.Store(true)
	fmt.Printf("worker %s done: slot %d, %d rounds contributed, %.2f MB sent, %.2f MB received\n",
		*name, res.Assignment.Index, res.Rounds,
		float64(res.WireSent)/1e6, float64(res.WireReceived)/1e6)
	if res.Restored {
		fmt.Println("recovered optimizer state from the coordinator on rejoin")
	}
	if *metricsAddr != "" && *metricsLinger > 0 {
		fmt.Printf("metrics linger: %s\n", *metricsLinger)
		time.Sleep(*metricsLinger)
	}
}
