// Command figure1 regenerates Figure 1 of "Training on the Edge": the peak
// training memory of every LinearResNet variant as a function of the
// recompute factor rho, for the four (batch size, image size) panels, using
// optimal (Revolve) checkpointing. It can also print the Section VI fit
// analysis (which models fit the 2 GB node at which rho).
//
// Usage:
//
//	figure1                        # all four panels on the default rho grid
//	figure1 -panel 1d              # only batch 8 / image 500
//	figure1 -batch 4 -image 350    # a custom panel
//	figure1 -fit                   # the Section VI fit analysis
//	figure1 -baseline sequential   # the checkpoint_sequential counterpart
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/memmodel"
	"github.com/edgeml/edgetrain/internal/resnet"
)

func rhoGrid(max, step float64) []float64 {
	var out []float64
	for r := 1.0; r <= max+1e-9; r += step {
		out = append(out, r)
	}
	return out
}

func main() {
	panel := flag.String("panel", "all", "panel to print: 1a, 1b, 1c, 1d or all")
	batch := flag.Int("batch", 0, "custom batch size (overrides -panel)")
	image := flag.Int("image", 0, "custom image size (used with -batch)")
	maxRho := flag.Float64("rho-max", 3.0, "largest recompute factor in the sweep")
	step := flag.Float64("rho-step", 0.1, "recompute factor step")
	backward := flag.Float64("backward-ratio", 2.0, "cost of a backward step relative to a forward step")
	accounting := flag.String("accounting", "adam", "optimiser-state accounting: adam or sgd")
	fit := flag.Bool("fit", false, "print the Section VI fit analysis instead of the curves")
	baseline := flag.String("baseline", "revolve", "checkpointing scheme: revolve or sequential")
	flag.Parse()

	acc := memmodel.DefaultAccounting
	if *accounting == "sgd" {
		acc = memmodel.SGDAccounting
	}
	cost := checkpoint.CostModel{BackwardRatio: *backward}
	rhos := rhoGrid(*maxRho, *step)

	if *fit {
		results, err := memmodel.FitAnalysis(acc, cost, *maxRho+1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(memmodel.RenderFitAnalysis(results))
		return
	}

	printPanel := func(cfg memmodel.FigureConfig) {
		if *baseline == "sequential" {
			fmt.Printf("Figure %s (checkpoint_sequential baseline) — batch=%d image=%d\n",
				cfg.Panel, cfg.BatchSize, cfg.ImageSize)
			fmt.Printf("%-8s", "rho")
			for _, v := range resnet.Variants {
				fmt.Printf("%14s", v.String())
			}
			fmt.Println()
			for _, rho := range rhos {
				fmt.Printf("%-8.2f", rho)
				for _, v := range resnet.Variants {
					chainSpec, err := memmodel.LinearChain(v, cfg.ImageSize, cfg.BatchSize, acc)
					if err != nil {
						log.Fatal(err)
					}
					pts := checkpoint.SequentialMemoryVsRho(chainSpec, []float64{rho}, cost)
					fmt.Printf("%14.1f", float64(pts[0].MemoryBytes)/1e6)
				}
				fmt.Println()
			}
			fmt.Println()
			return
		}
		p, err := memmodel.Figure1Panel(cfg, rhos, acc, cost)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(p.Render())
	}

	if *batch > 0 && *image > 0 {
		printPanel(memmodel.FigureConfig{Panel: "custom", BatchSize: *batch, ImageSize: *image})
		return
	}
	for _, cfg := range memmodel.Figure1Panels {
		if *panel != "all" && *panel != cfg.Panel {
			continue
		}
		printPanel(cfg)
	}
}
