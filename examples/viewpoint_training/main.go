// Viewpoint training: the full student-teacher pipeline of Section III.
//
// A teacher classifier is trained at the canonical viewpoint, deployed on a
// node whose camera is mounted at a skewed angle, and evaluated there (it
// degrades badly). The node then tracks subjects across its field of view,
// lets the teacher label the final (nearly canonical) frame of each track,
// propagates that label to the earlier skewed frames, and trains a student on
// the harvested set — under a Revolve checkpointing policy, because the node
// has little memory. No image ever leaves the node.
//
// Run with: go run ./examples/viewpoint_training
package main

import (
	"fmt"
	"log"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/teacher"
)

func main() {
	cfg := teacher.DefaultConfig()
	cfg.Policy = chain.Policy{Kind: "revolve", Slots: 3, Cost: checkpoint.DefaultCostModel}

	fmt.Printf("node viewpoint skew: %.2f; harvesting %d tracks of %d frames each\n\n",
		cfg.NodeViewpoint, cfg.Tracks, cfg.FramesPerTrack)
	res, err := teacher.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("teacher accuracy at its own (canonical) viewpoint: %5.1f%%\n", 100*res.TeacherCanonicalAccuracy)
	fmt.Printf("teacher accuracy at the node's viewpoint:          %5.1f%%   <- the viewpoint problem\n", 100*res.TeacherNodeAccuracy)
	fmt.Printf("student accuracy at the node's viewpoint:          %5.1f%%   <- after in-situ training\n\n", 100*res.StudentNodeAccuracy)

	fmt.Printf("in-situ dataset: %d auto-labelled images from %d accepted tracks (%d rejected); label accuracy %.1f%%\n",
		res.HarvestedImages, res.TracksHarvested, res.TracksRejected, 100*res.LabelAccuracy)
	fmt.Printf("student training ran under Revolve checkpointing: peak %d retained states (%.2f MB measured)\n",
		res.StudentPeakStates, float64(res.StudentPeakBytes)/1e6)
	fmt.Println("\nno raw image left the node; only the teacher model was downloaded once.")
}
