// Array-of-Things fleet: the "why" of training on the Edge.
//
// The example simulates a city-scale fleet of Waggle camera nodes for three
// model-update strategies (cloud training, in-situ Edge training, and a
// static generic model) and reports the data movement, energy and privacy
// consequences of each, followed by a look at how long in-situ training takes
// when it is only allowed to use the node's idle CPU time.
//
// Run with: go run ./examples/aot_fleet
package main

import (
	"fmt"
	"log"

	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/edgesim"
	"github.com/edgeml/edgetrain/internal/trainer"
)

func main() {
	cfg := edgesim.DefaultFleetConfig()
	results, err := edgesim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet of %d Waggle nodes over %d days\n\n", cfg.Nodes, cfg.Days)
	fmt.Print(edgesim.Render(results))

	// How much uplink would cloud training demand, and what does edge
	// training demand instead?
	var cloud, edge edgesim.Result
	for _, r := range results {
		switch r.Strategy {
		case edgesim.StrategyCloudTraining:
			cloud = r
		case edgesim.StrategyEdgeTraining:
			edge = r
		}
	}
	fmt.Printf("\ncloud training moves %.1fx more data over the network than edge training\n",
		float64(cloud.TotalNetworkBytes())/float64(edge.TotalNetworkBytes()))
	fmt.Printf("and exposes %d raw camera images that never leave the node otherwise.\n", cloud.SensitiveImagesShared)

	// The in-situ training job runs opportunistically, only when the node's
	// primary (inference) workload leaves the CPU idle.
	node := device.Waggle()
	perImageSeconds := node.TrainingStepSeconds(cfg.Node.TrainingFLOPsPerImage)
	cpuSeconds := perImageSeconds * float64(edge.CapturedImages) * float64(cfg.Node.Epochs)
	sched := trainer.DefaultIdleScheduler
	trace := trainer.DielLoadTrace(cfg.Days, 600, 0.85, 0.15)
	res, err := sched.Schedule(trace, cpuSeconds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nin-situ retraining needs %.1f CPU-hours per node; scheduled into idle time it finishes in %.1f days (completed: %v)\n",
		cpuSeconds/3600, res.ElapsedSeconds/86400, res.Completed)
}
