// Quickstart: the three questions the library answers, in thirty lines each.
//
//  1. Does training this model fit on an Edge node? (memory model, Tables I-III)
//  2. If not, what does optimal checkpointing buy me? (Revolve planner, Figure 1)
//  3. Does checkpointed backpropagation really produce the same gradients?
//     (the chain executor on a real, runnable network)
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/memmodel"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/resnet"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/plan"
)

func main() {
	node := device.Waggle()
	fmt.Println("Edge node:", node)

	// 1. Memory: can we train ResNet-50 on 500x500 images at batch 8?
	fp, err := memmodel.Model(resnet.ResNet50, 500, 8, memmodel.DefaultAccounting)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nResNet-50, image 500, batch 8 needs %.2f GB — fits the node: %v\n", fp.GB(), node.Fits(fp))

	// 2. Checkpointing: what recompute factor makes it fit?
	lin, err := memmodel.LinearChain(resnet.ResNet50, 500, 8, memmodel.DefaultAccounting)
	if err != nil {
		log.Fatal(err)
	}
	rho, slots, ok := checkpoint.MinRhoToFit(lin, node.MemoryBytes, checkpoint.DefaultCostModel, 4)
	fmt.Printf("with optimal (Revolve) checkpointing it fits using %d checkpoint slots at a recompute factor of %.2f (feasible: %v)\n",
		slots, rho, ok)
	res := checkpoint.MinSlotsForRho(lin.Length, 2.0, checkpoint.DefaultCostModel)
	fmt.Printf("at a recompute budget of rho=2.0 the planner needs %d slots -> %.0f MB peak instead of %.0f MB\n",
		res.Slots, float64(lin.MemoryWithSlots(res.Slots))/1e6, float64(lin.MemoryNoCheckpoint())/1e6)

	// 3. Execution: pick the planner from the public strategy registry, run
	//    one checkpointed training step on a real (small) network and confirm
	//    the gradients match plain backpropagation.
	fmt.Printf("\nregistered planning strategies: %v\n", plan.Strategies())
	rng := tensor.NewRNG(1)
	build := func() *chain.Chain {
		r := tensor.NewRNG(42)
		return chain.New(
			nn.NewConv2D("conv", 1, 4, 3, 1, 1, false, r),
			nn.NewBatchNorm2D("bn", 4),
			nn.NewReLU("relu"),
			nn.NewGlobalAvgPool2D("gap"),
			nn.NewLinear("fc", 4, 3, true, r),
		)
	}
	x := tensor.RandNormal(rng, 0, 1, 2, 1, 12, 12)
	labels := []int{0, 2}
	lossGrad := func(out *tensor.Tensor) *tensor.Tensor {
		ce := nn.NewSoftmaxCrossEntropy()
		ce.Forward(out, labels)
		return ce.Backward()
	}

	plainChain, ckChain := build(), build()
	plain, err := chain.ExecutePlain(plainChain, x, lossGrad, true)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := plan.Build("revolve", plan.ChainSpec{Length: ckChain.Len()}, plan.WithSlots(2))
	if err != nil {
		log.Fatal(err)
	}
	ck, err := chain.Execute(ckChain, x, lossGrad, sched, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpointed step: %d retained states (plain: %d), %d recomputed forwards, gradient max-diff %.2e\n",
		ck.PeakStates, plain.PeakStates, ck.ForwardEvals,
		tensor.MaxAbsDiff(plain.InputGrad, ck.InputGrad))
}
