// Flash spill: the Section VI two-level scheme as a running system.
//
// A Waggle-class node has plenty of SD card but very little RAM. This demo
// builds a chain whose store-all execution provably cannot fit a small RAM
// budget, asks the budget-aware "auto" planner what to do, and trains with a
// tiered checkpoint store that really serializes the flash-tier states to
// disk — then double-checks that the spilled execution produced exactly the
// gradients of plain backpropagation while keeping its resident RAM under
// the budget.
//
// Run with: go run ./examples/flash_spill
package main

import (
	"fmt"
	"log"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/plan"
	"github.com/edgeml/edgetrain/store"
)

// buildChain makes a 24-stage convolutional chain; every inter-stage state
// is a 4x8x16x16 tensor (64 kB at fp64).
func buildChain(seed uint64) (*chain.Chain, *tensor.Tensor) {
	rng := tensor.NewRNG(seed)
	layers := []nn.Layer{nn.NewConv2D("in", 8, 8, 3, 1, 1, true, rng)}
	for i := 0; i < 22; i++ {
		layers = append(layers, nn.NewBasicBlock(fmt.Sprintf("blk%d", i), 8, 8, 1, rng))
	}
	layers = append(layers, nn.NewConv2D("out", 8, 8, 3, 1, 1, true, rng))
	c := chain.New(layers...)
	x := tensor.RandNormal(rng, 0, 1, 4, 8, 16, 16)
	return c, x
}

func main() {
	cPlain, x := buildChain(7)
	cSpill, _ := buildChain(7)
	lossGrad := func(out *tensor.Tensor) *tensor.Tensor { return tensor.Scale(1/float64(out.Size()), out) }

	// The no-checkpointing baseline: how much RAM does store-all retain?
	plain, err := chain.ExecutePlain(cPlain, x, lossGrad, true)
	if err != nil {
		log.Fatal(err)
	}
	weights := 2 * nn.ParamBytes(cSpill.Stages)
	storeAll := weights + plain.PeakStateBytes
	fmt.Printf("chain: %d stages, %.0f kB per state, %.0f kB weight state\n",
		cSpill.Len(), float64(x.Bytes())/1e3, float64(weights)/1e3)
	fmt.Printf("store-all needs %.0f kB resident\n", float64(storeAll)/1e3)

	// A budget store-all provably cannot fit: the weight state plus room for
	// just four retained states, where store-all retains twenty-five — tight
	// enough that even pure Revolve is beaten by spilling to flash.
	budget := weights + 4*x.Bytes()
	fmt.Printf("device budget: %.0f kB — store-all does not fit (%v)\n\n",
		float64(budget)/1e3, storeAll <= budget)

	spec := plan.ChainSpec{Length: cSpill.Len(), WeightBytes: weights, ActivationBytes: x.Bytes()}
	choice, err := plan.AutoSelect(spec, plan.WithMemoryBudget(budget))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("planner choice:", choice)

	sched, err := plan.Build("auto", spec, plan.WithMemoryBudget(budget))
	if err != nil {
		log.Fatal(err)
	}

	// Execute with a tiered store: RAM-tier slots stay references, flash-tier
	// slots are serialized to a spill directory on disk.
	ts, err := store.NewTiered("")
	if err != nil {
		log.Fatal(err)
	}
	defer ts.Close()
	res, err := chain.ExecuteWithStore(cSpill, x, lossGrad, sched, ts, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted %s in %s\n", sched.Policy(), ts.Dir())
	fmt.Printf("  resident peak: %.0f kB states (+%.0f kB weights = %.0f kB, under budget: %v)\n",
		float64(res.PeakStateBytes)/1e3, float64(weights)/1e3,
		float64(weights+res.PeakStateBytes)/1e3, weights+res.PeakStateBytes <= budget)
	fmt.Printf("  flash: peak %.0f kB, %d writes, %d reads\n",
		float64(res.PeakDiskBytes)/1e3, res.DiskWrites, res.DiskReads)
	fmt.Printf("  recompute: %d forwards for %d stages\n", res.ForwardEvals, cSpill.Len())

	// And the point of it all: the gradients are exact.
	match := tensor.AllClose(plain.InputGrad, res.InputGrad, 1e-9)
	pp, sp := cPlain.Params(), cSpill.Params()
	for i := range pp {
		match = match && tensor.AllClose(pp[i].Grad, sp[i].Grad, 1e-9)
	}
	fmt.Printf("\ngradients identical to plain backpropagation: %v\n", match)
	if !match {
		log.Fatal("gradient mismatch")
	}
}
