// Fleet training demo: the paper's headline claim — training distributed
// across a fleet of low-powered heterogeneous edge nodes — made executable.
//
// Three workers (Jetson-class, Waggle-class, Raspberry-class) train one
// student model on non-IID shards of the synthetic viewpoint data. Their RAM
// budgets differ, so each auto-selects a different checkpoint strategy:
// the Jetson stores every activation, the Waggle node runs Revolve
// recomputation, and the Pi spills a two-level plan's flash tier through a
// real tiered store. The demo then shows both aggregation modes:
//
//  1. Synchronous gradient all-reduce, verified bit-identical to
//     single-node training on the concatenated dataset — heterogeneous
//     strategies change where checkpoints live, never the gradients.
//  2. Federated averaging with a straggler and partial participation, the
//     realistic fleet scenario, cross-checked against the analytical
//     federated traffic model.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/edgesim"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/resnet"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/internal/vision"
)

const (
	workers   = 3
	perNode   = 4
	imgSize   = 16
	rounds    = 3
	learnRate = 0.05
)

func model() (*chain.Chain, error) {
	cfg := resnet.DefaultSmallConfig()
	cfg.NumClasses = vision.NumClasses
	cfg.Seed = 1
	net, err := resnet.BuildSmall(cfg)
	if err != nil {
		return nil, err
	}
	return chain.FromSequential(net), nil
}

// dataset builds one contiguous block of samples per node, each with the
// node's own viewpoint skew — the non-IID sharding trainer.Shard preserves.
func dataset() *trainer.SliceDataset {
	rng := tensor.NewRNG(2)
	var ds []trainer.Batch
	for node := 0; node < workers; node++ {
		vp := 0.2 + 0.35*float64(node)
		for j := 0; j < perNode; j++ {
			c := vision.Class(j % vision.NumClasses)
			ds = append(ds, trainer.Batch{Images: vision.Sample(rng, c, vp, imgSize), Labels: []int{int(c)}})
		}
	}
	return trainer.NewSliceDataset(ds)
}

// specs gives each device a budget just above what its strategy needs, so
// the auto planner picks three different strategies for the same network.
func specs() []fleet.WorkerSpec {
	c, err := model()
	if err != nil {
		log.Fatal(err)
	}
	weight := 2 * nn.ParamBytes(c.Stages)
	act := int64(perNode * imgSize * imgSize * 8)
	budget := func(states float64) int64 { return weight + int64(states*float64(act)) }
	return []fleet.WorkerSpec{
		{Device: device.JetsonNano(), BudgetBytes: budget(12)},   // fits store-all
		{Device: device.Waggle(), BudgetBytes: budget(4.5)},      // Revolve recomputation
		{Device: device.RaspberryPi(), BudgetBytes: budget(3.4)}, // two-level flash spilling
	}
}

func main() {
	ds := dataset()

	// --- Part 1: gradient all-reduce, provably equivalent to one node ----
	f, err := fleet.New(fleet.Config{
		Workers:    specs(),
		Rounds:     rounds,
		Seed:       1,
		Aggregator: fleet.NewGradAllReduce(trainer.NewSGD(learnRate)),
	}, model, ds)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	fmt.Println("heterogeneous fleet, one model:")
	for _, w := range f.Workers() {
		fmt.Printf("  %-22s %s\n", w.Spec.Name, w.Choice)
	}
	rep, err := f.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Render())

	// Single-node reference: gradient accumulation over the concatenated
	// shards with the shard size as micro-batch, same optimiser.
	ref, err := model()
	if err != nil {
		log.Fatal(err)
	}
	refOpt := trainer.NewSGD(learnRate)
	union := ds.Batch(0, ds.Len())
	for r := 0; r < rounds; r++ {
		if _, err := trainer.AccumulateStep(ref, union, perNode, refOpt, chain.Policy{Kind: "storeall"}); err != nil {
			log.Fatal(err)
		}
	}
	identical := true
	fleetPs, refPs := f.Global().Params(), ref.Params()
	for k := range refPs {
		fd, rd := fleetPs[k].Value.Data(), refPs[k].Value.Data()
		for j := range fd {
			if fd[j] != rd[j] {
				identical = false
			}
		}
	}
	fmt.Printf("\nall-reduce weights bit-identical to single-node training on the union: %v\n\n", identical)

	// --- Part 2: federated averaging under fleet-scale failure modes -----
	fed, err := fleet.New(fleet.Config{
		Workers:       specs(),
		Rounds:        rounds,
		LocalEpochs:   2,
		Seed:          1,
		Participation: 1,
		DropoutRate:   0.15,
		StragglerDelay: func(round, worker int) time.Duration {
			if worker == 2 {
				return 20 * time.Millisecond // the Pi is always late
			}
			return 0
		},
	}, model, ds)
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()
	fedRep, err := fed.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fedRep.Render())

	sim, _, err := edgesim.SimulateFederated(fed.FederatedModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalytical federated model: %.2f MB uplink vs %.2f MB measured (dropout accounts for the gap)\n",
		float64(sim.UplinkBytes)/1e6, float64(fedRep.TotalUplinkBytes)/1e6)
}
