// Compression sweep: the paper's "excessive communication" bottleneck
// (Section I) attacked head-on. Federated fleets on LTE-class uplinks spend
// most of a round shipping full fp64 model updates; this demo sweeps the
// update-compression codec specs over the same fleet and dataset and prints
// the trade each one buys — uplink megabytes and modeled upload time versus
// final training loss.
//
// The sweep runs one uncompressed baseline and then each codec spec through
// fleet.Run on an identical 4-worker federated configuration (same seed, same
// non-IID shards). The first compressed entry, topk:1+fp64+raw, is the
// lossless framing: bit-identical weights to the baseline, proving the
// pipeline adds no numerical drift before any lossy knob is turned.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/fleetdemo"
	"github.com/edgeml/edgetrain/internal/trainer"
)

const (
	nodes      = 4
	samples    = 16
	rounds     = 3
	learnRate  = 0.05
	seed       = 7
	uplinkMbps = 10 // the Waggle-class LTE link the paper's fleets live on
)

// run trains the demo fleet under one codec spec ("" = uncompressed) and
// returns the report.
func run(spec string) *fleet.Report {
	f, err := fleet.New(fleet.Config{
		Workers:     make([]fleet.WorkerSpec, nodes),
		Rounds:      rounds,
		LocalEpochs: 1,
		Optimizer:   func() trainer.Optimizer { return trainer.NewSGD(learnRate) },
		Seed:        seed,
		Compression: spec,
		UplinkMbps:  uplinkMbps,
	}, fleetdemo.Model(seed), fleetdemo.Dataset(nodes, samples, seed))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rep, err := f.Run()
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	specs := []string{
		"",                       // uncompressed baseline
		"topk:1+fp64+raw",        // lossless framing, bit-identical weights
		"fp16+deflate",           // half precision
		"int8+deflate",           // 8-bit affine quantization
		"topk:0.25+int8+deflate", // keep the top 25% of each tensor
		"topk:0.05+int8+deflate", // keep the top 5%
	}

	base := run("")
	fmt.Printf("update compression sweep: %d workers, fedavg, %d rounds, %.2f MB raw update, %g Mbps uplink\n\n",
		nodes, rounds, float64(base.ModelBytes)/1e6, float64(uplinkMbps))
	fmt.Printf("%-26s%14s%8s%14s%12s%14s\n",
		"codec spec", "uplink (MB)", "ratio", "upload (s)", "final loss", "loss delta")
	for _, spec := range specs {
		rep := base
		if spec != "" {
			rep = run(spec)
		}
		name := spec
		if name == "" {
			name = "none"
		}
		delta := math.Abs(rep.FinalLoss - base.FinalLoss)
		fmt.Printf("%-26s%14.3f%8.1f%14.2f%12.4f%14.4f\n",
			name, float64(rep.TotalUplinkBytes)/1e6, rep.CompressionRatio(),
			rep.ModeledUplink.Seconds(), rep.FinalLoss, delta)
	}

	fmt.Println()
	fmt.Println("full report of the headline config (topk:0.25+int8+deflate):")
	fmt.Print(run("topk:0.25+int8+deflate").Render())
}
