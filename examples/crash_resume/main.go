// Command crash_resume demonstrates the durable checkpoint format and the
// crash-safe resume engine end to end: it trains a small conv/batch-norm
// student, kills the training process mid-epoch (a real, ungraceful process
// death via os.Exit — no deferred cleanup runs, exactly like a power loss on
// an edge node), resumes from the last durable checkpoint in a fresh
// process, and verifies the final weights are bit-identical to a run that
// was never interrupted. It finishes by corrupting the newest checkpoint
// file on disk and showing the manifest falling back to its predecessor.
//
// Run with:
//
//	go run ./examples/crash_resume
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
)

const (
	modelSeed = 42
	dataSeed  = 99
	epochs    = 2
	batchSize = 2
	samples   = 12 // 6 optimisation steps per epoch
	every     = 5  // checkpoint every 5 steps (step 5 is mid-epoch 0)
	crashStep = 8  // the victim process dies here, mid-epoch 1

	crashEnv = "EDGETRAIN_CRASH_STEP"
	dirEnv   = "EDGETRAIN_CRASH_DIR"
)

// buildModel constructs the deterministic student: conv + batch norm, so a
// checkpoint must carry running statistics besides the weights.
func buildModel() *chain.Chain {
	rng := tensor.NewRNG(modelSeed)
	return chain.New(
		nn.NewConv2D("c1", 1, 4, 3, 1, 1, true, rng),
		nn.NewBatchNorm2D("bn1", 4),
		nn.NewReLU("r1"),
		nn.NewConv2D("c2", 4, 4, 3, 1, 1, true, rng),
		nn.NewBatchNorm2D("bn2", 4),
		nn.NewReLU("r2"),
		nn.NewFlatten("flat"),
		nn.NewLinear("head", 4*8*8, 3, true, rng),
	)
}

func buildDataset() *trainer.SliceDataset {
	rng := tensor.NewRNG(dataSeed)
	var ds []trainer.Batch
	for i := 0; i < samples; i++ {
		ds = append(ds, trainer.Batch{
			Images: tensor.RandNormal(rng, 0, 1, 1, 1, 8, 8),
			Labels: []int{i % 3},
		})
	}
	return trainer.NewSliceDataset(ds)
}

func buildTrainer() *trainer.Trainer {
	tr, err := trainer.New(buildModel(), trainer.Config{
		Epochs:    epochs,
		BatchSize: batchSize,
		Optimizer: trainer.NewAdam(0.01),
	})
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

// fingerprint hashes the full training state (weights + batch-norm running
// statistics) bit-exactly.
func fingerprint(c *chain.Chain) (uint64, int) {
	h := uint64(1469598103934665603) // FNV-1a over the float64 bit patterns
	words := 0
	mix := func(v float64) {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= 1099511628211
		}
		words++
	}
	for _, p := range c.Params() {
		for _, v := range p.Value.Data() {
			mix(v)
		}
	}
	for _, st := range nn.CollectState(c.Stages) {
		for _, v := range st.Tensor.Data() {
			mix(v)
		}
	}
	return h, words
}

// runVictim is the child process: train with durable checkpoints and die
// ungracefully mid-epoch.
func runVictim() {
	crashAt, err := strconv.Atoi(os.Getenv(crashEnv))
	if err != nil {
		log.Fatal(err)
	}
	dir, err := ckpt.Open(os.Getenv(dirEnv))
	if err != nil {
		log.Fatal(err)
	}
	tr := buildTrainer()
	steps := 0
	tr.Cfg.Hook = func(step int, loss float64) {
		steps++
		if steps == crashAt {
			fmt.Printf("  [victim] power loss at step %d — os.Exit, no cleanup\n", steps)
			os.Exit(137)
		}
	}
	cp := &trainer.CheckpointPlan{Dir: dir, EverySteps: every, Seed: modelSeed}
	if _, err := tr.TrainFrom(buildDataset(), trainer.Cursor{}, cp); err != nil {
		log.Fatal(err)
	}
	log.Fatal("victim finished training — it was supposed to crash")
}

func main() {
	if os.Getenv(crashEnv) != "" {
		runVictim()
		return
	}

	fmt.Println("=== durable checkpoints & crash-safe resume ===")
	fmt.Println()

	// Act 1: the reference run, never interrupted.
	fmt.Println("act 1: uninterrupted reference run")
	ref := buildTrainer()
	stats, err := ref.Train(buildDataset())
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range stats {
		fmt.Printf("  epoch %d: loss=%.4f\n", st.Epoch, st.Loss)
	}
	wantHash, words := fingerprint(ref.Chain)
	fmt.Printf("  final state: %d float64 words, fingerprint %#x\n\n", words, wantHash)

	// Act 2: the same run in a separate process, killed mid-epoch. The child
	// is this same binary with the crash environment set.
	workDir, err := os.MkdirTemp("", "edgetrain-crash-resume-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)
	ckptPath := filepath.Join(workDir, "checkpoints")
	fmt.Printf("act 2: victim process, checkpointing to %s every %d steps\n", ckptPath, every)
	child := exec.Command(os.Args[0])
	child.Env = append(os.Environ(), crashEnv+"="+strconv.Itoa(crashStep), dirEnv+"="+ckptPath)
	child.Stdout, child.Stderr = os.Stdout, os.Stderr
	err = child.Run()
	if err == nil {
		log.Fatal("victim exited cleanly; expected a crash")
	}
	fmt.Printf("  victim died: %v\n\n", err)

	// Act 3: a fresh process resumes from the last durable checkpoint.
	fmt.Println("act 3: fresh process resumes")
	dir, err := ckpt.Open(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	latest, err := dir.Latest()
	if err != nil {
		log.Fatal(err)
	}
	resumed := buildTrainer()
	cur, err := resumed.ResumeFrom(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  loaded %s -> resume at epoch %d, batch %d\n", latest, cur.Epoch, cur.Batch)
	cp := &trainer.CheckpointPlan{Dir: dir, EverySteps: every, Seed: modelSeed}
	if _, err := resumed.TrainFrom(buildDataset(), cur, cp); err != nil {
		log.Fatal(err)
	}
	gotHash, gotWords := fingerprint(resumed.Chain)
	fmt.Printf("  resumed final state: %d words, fingerprint %#x\n", gotWords, gotHash)
	if gotHash != wantHash || gotWords != words {
		log.Fatal("FAILURE: resumed weights differ from the uninterrupted run")
	}
	fmt.Println("  bit-identical to the uninterrupted run ✓")
	fmt.Println()

	// Act 4: corrupt the newest checkpoint on disk; the manifest falls back
	// to its predecessor instead of loading garbage.
	fmt.Println("act 4: corruption recovery")
	latest, err = dir.Latest()
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(ckptPath, latest)
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  flipped one byte in %s\n", latest)
	s, from, err := dir.Load()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Load detected the damage (CRC32) and fell back to %s (cursor epoch %d, batch %d)\n",
		from, s.Epoch, s.Step)
	fmt.Println()
	fmt.Println("every checkpoint byte is covered by a frame CRC32; saves are temp-file +")
	fmt.Println("fsync + atomic rename behind a two-deep manifest, so a crash at any")
	fmt.Println("instant leaves a loadable checkpoint on the node's SD card.")
}
