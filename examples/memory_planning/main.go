// Memory planning: choose a trainable configuration for a 2 GB Waggle node.
//
// The example walks the decision the paper's Sections III and VI describe:
// it prints the footprint of every ResNet variant for the workload at hand,
// shows the largest batch size that fits without checkpointing, and then uses
// the Revolve planner to report the recompute factor at which each variant
// becomes trainable at the desired batch size.
//
// Run with: go run ./examples/memory_planning
package main

import (
	"fmt"
	"log"

	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/memmodel"
	"github.com/edgeml/edgetrain/internal/resnet"
)

func main() {
	const (
		imageSize   = 500
		wantedBatch = 8
	)
	node := device.Waggle()
	acc := memmodel.DefaultAccounting
	cost := checkpoint.DefaultCostModel

	fmt.Printf("planning training for image size %d on %s\n\n", imageSize, node)
	fmt.Printf("%-12s%16s%14s%18s%22s\n", "model", "batch-8 (GB)", "max batch", "fits at batch 8?", "rho to fit batch 8")

	for _, v := range resnet.Variants {
		fp, err := memmodel.Model(v, imageSize, wantedBatch, acc)
		if err != nil {
			log.Fatal(err)
		}
		maxBatch, err := node.MaxBatchSize(v, imageSize, acc)
		if err != nil {
			log.Fatal(err)
		}
		lin, err := memmodel.LinearChain(v, imageSize, wantedBatch, acc)
		if err != nil {
			log.Fatal(err)
		}
		rho, slots, ok := checkpoint.MinRhoToFit(lin, node.MemoryBytes, cost, 6)
		rhoStr := "never"
		if ok {
			rhoStr = fmt.Sprintf("%.2f (%d slots)", rho, slots)
		}
		fmt.Printf("%-12s%16.2f%14d%18v%22s\n", v.String(), fp.GB(), maxBatch, node.Fits(fp), rhoStr)
	}

	fmt.Println("\nreading the table:")
	fmt.Println(" - 'max batch' is the largest batch trainable WITHOUT checkpointing (Section III's n_max logic);")
	fmt.Println(" - 'rho to fit' is the recompute factor optimal checkpointing needs so batch 8 fits in 2 GB (Section VI).")
}
