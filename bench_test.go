package edgetrain

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Each benchmark both
// measures the cost of regenerating the artefact and reports the headline
// reproduced quantity via b.ReportMetric, so `go test -bench . -benchmem`
// doubles as the experiment log summarised in EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/edgesim"
	"github.com/edgeml/edgetrain/internal/memmodel"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/resnet"
	"github.com/edgeml/edgetrain/internal/teacher"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/internal/vision"
	"github.com/edgeml/edgetrain/obs"
	"github.com/edgeml/edgetrain/plan"
	"github.com/edgeml/edgetrain/schedule"
	"github.com/edgeml/edgetrain/store"
)

// --- E1-E3: Tables I, II, III -------------------------------------------------

func benchmarkTable(b *testing.B, build func(memmodel.Accounting) (*memmodel.Table, error)) {
	b.Helper()
	var tbl *memmodel.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = build(memmodel.DefaultAccounting)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the largest cell (the most memory-hungry configuration) in MB.
	last := tbl.Cells[len(tbl.Cells)-1]
	b.ReportMetric(last[len(last)-1].Footprint.MB(), "maxcell_MB")
}

// BenchmarkTable1 regenerates Table I (memory vs batch size at image 224).
func BenchmarkTable1(b *testing.B) { benchmarkTable(b, memmodel.Table1) }

// BenchmarkTable2 regenerates Table II (memory vs image size at batch 1).
func BenchmarkTable2(b *testing.B) { benchmarkTable(b, memmodel.Table2) }

// BenchmarkTable3 regenerates Table III (memory vs image size at batch 8).
func BenchmarkTable3(b *testing.B) { benchmarkTable(b, memmodel.Table3) }

// --- E4: Section V checkpoint_sequential formula ------------------------------

// BenchmarkSequentialFormula sweeps the Section V memory formula over all
// segment counts for l = 152 and reports the best achievable slot count next
// to the 2*sqrt(l) lower bound.
func BenchmarkSequentialFormula(b *testing.B) {
	const l = 152
	best := 0
	for i := 0; i < b.N; i++ {
		_, best = checkpoint.BestSequentialSegments(l)
	}
	b.ReportMetric(float64(best), "best_slots")
	b.ReportMetric(checkpoint.SequentialLowerBound(l), "lower_bound_slots")
}

// --- E5-E8: Figure 1 panels ----------------------------------------------------

func benchmarkFigurePanel(b *testing.B, cfg memmodel.FigureConfig) {
	b.Helper()
	rhos := memmodel.DefaultRhoGrid()
	var panel *memmodel.Panel
	var err error
	for i := 0; i < b.N; i++ {
		panel, err = memmodel.Figure1Panel(cfg, rhos, memmodel.DefaultAccounting, checkpoint.DefaultCostModel)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the ResNet-152 peak memory at rho=2.0 in MB (the headline of the
	// panel) and at rho=1 for contrast.
	series := panel.Series[len(panel.Series)-1]
	var atOne, atTwo float64
	for i, rho := range panel.Rhos {
		if rho == 1.0 {
			atOne = float64(series.Points[i].MemoryBytes) / 1e6
		}
		if rho > 1.999 && rho < 2.001 {
			atTwo = float64(series.Points[i].MemoryBytes) / 1e6
		}
	}
	b.ReportMetric(atOne, "r152_rho1_MB")
	b.ReportMetric(atTwo, "r152_rho2_MB")
}

// BenchmarkFigure1a regenerates Figure 1a (batch 1, image 224).
func BenchmarkFigure1a(b *testing.B) { benchmarkFigurePanel(b, memmodel.Figure1Panels[0]) }

// BenchmarkFigure1b regenerates Figure 1b (batch 8, image 224).
func BenchmarkFigure1b(b *testing.B) { benchmarkFigurePanel(b, memmodel.Figure1Panels[1]) }

// BenchmarkFigure1c regenerates Figure 1c (batch 1, image 500).
func BenchmarkFigure1c(b *testing.B) { benchmarkFigurePanel(b, memmodel.Figure1Panels[2]) }

// BenchmarkFigure1d regenerates Figure 1d (batch 8, image 500).
func BenchmarkFigure1d(b *testing.B) { benchmarkFigurePanel(b, memmodel.Figure1Panels[3]) }

// --- E9: Section VI fit analysis ----------------------------------------------

// BenchmarkFitAnalysis computes, for every panel and variant, the minimal
// recompute factor at which the model fits the 2 GB node, and reports the
// worst case across the whole figure.
func BenchmarkFitAnalysis(b *testing.B) {
	var results []memmodel.FitResult
	var err error
	for i := 0; i < b.N; i++ {
		results, err = memmodel.FitAnalysis(memmodel.DefaultAccounting, checkpoint.DefaultCostModel, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range results {
		if r.FitsEventually && r.MinRhoToFit > worst {
			worst = r.MinRhoToFit
		}
	}
	b.ReportMetric(worst, "worst_rho_to_fit")
}

// --- E10: edge vs cloud training traffic (the "why") ---------------------------

// BenchmarkEdgeVsCloudTraffic runs the Array-of-Things fleet simulation and
// reports the uplink ratio between cloud training and in-situ training.
func BenchmarkEdgeVsCloudTraffic(b *testing.B) {
	var results []edgesim.Result
	var err error
	for i := 0; i < b.N; i++ {
		results, err = edgesim.Simulate(edgesim.DefaultFleetConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	var cloud, edge edgesim.Result
	for _, r := range results {
		switch r.Strategy {
		case edgesim.StrategyCloudTraining:
			cloud = r
		case edgesim.StrategyEdgeTraining:
			edge = r
		}
	}
	b.ReportMetric(float64(cloud.TotalNetworkBytes())/float64(edge.TotalNetworkBytes()), "traffic_ratio")
	b.ReportMetric(float64(cloud.SensitiveImagesShared), "images_exposed")
}

// --- E11: viewpoint student-teacher pipeline ------------------------------------

// BenchmarkStudentTeacher runs a reduced student-teacher pipeline and reports
// the accuracy gain of the in-situ trained student over the teacher at the
// node's viewpoint.
func BenchmarkStudentTeacher(b *testing.B) {
	cfg := teacher.DefaultConfig()
	cfg.TeacherSamples = 160
	cfg.Tracks = 24
	cfg.EvalSamples = 80
	cfg.StudentEpochs = 4
	var res *teacher.Result
	var err error
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(7 + i)
		res, err = teacher.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.TeacherNodeAccuracy, "teacher_node_pct")
	b.ReportMetric(100*res.StudentNodeAccuracy, "student_node_pct")
}

// --- E12: checkpointed backpropagation on a real chain -------------------------

func buildBenchChain(seed uint64) (*chain.Chain, *tensor.Tensor, chain.LossGradFunc) {
	cfg := resnet.DefaultSmallConfig()
	cfg.Seed = seed
	net, err := resnet.BuildSmall(cfg)
	if err != nil {
		panic(err)
	}
	c := chain.FromSequential(net)
	rng := tensor.NewRNG(seed + 100)
	x := tensor.RandNormal(rng, 0, 1, 2, cfg.InputChannels, 16, 16)
	labels := []int{0, 3}
	lossGrad := func(out *tensor.Tensor) *tensor.Tensor {
		ce := nn.NewSoftmaxCrossEntropy()
		ce.Forward(out, labels)
		return ce.Backward()
	}
	return c, x, lossGrad
}

// BenchmarkCheckpointedBackpropPlain measures a plain (store-all) training
// step of the small ResNet.
func BenchmarkCheckpointedBackpropPlain(b *testing.B) {
	c, x, lossGrad := buildBenchChain(1)
	var res *chain.Result
	var err error
	for i := 0; i < b.N; i++ {
		c.ZeroGrads()
		res, err = chain.ExecutePlain(c, x, lossGrad, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.PeakStates), "peak_states")
}

// BenchmarkCheckpointedBackpropRevolve measures the same training step under
// Revolve checkpointing with two slots and reports the measured recompute
// overhead and memory reduction.
func BenchmarkCheckpointedBackpropRevolve(b *testing.B) {
	c, x, lossGrad := buildBenchChain(1)
	sched, err := plan.Build("revolve", plan.ChainSpec{Length: c.Len()}, plan.WithSlots(2))
	if err != nil {
		b.Fatal(err)
	}
	var res *chain.Result
	for i := 0; i < b.N; i++ {
		c.ZeroGrads()
		res, err = chain.Execute(c, x, lossGrad, sched, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.PeakStates), "peak_states")
	b.ReportMetric(float64(res.ForwardEvals), "recomputed_forwards")
}

// BenchmarkCheckpointedBackpropSequential measures the same step under the
// PyTorch-style uniform-segment policy.
func BenchmarkCheckpointedBackpropSequential(b *testing.B) {
	c, x, lossGrad := buildBenchChain(1)
	sched, err := plan.Build("sequential", plan.ChainSpec{Length: c.Len()}, plan.WithSegments(3))
	if err != nil {
		b.Fatal(err)
	}
	var res *chain.Result
	for i := 0; i < b.N; i++ {
		c.ZeroGrads()
		res, err = chain.Execute(c, x, lossGrad, sched, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.PeakStates), "peak_states")
}

// BenchmarkTwoLevelStep measures the same training step under a two-level
// schedule in both execution modes: "ram" keeps the flash-tier boundaries as
// in-memory references (zero-copy, the pre-store baseline) and "spilled"
// serializes them to disk through a tiered store, so the real cost of flash
// spilling — serialization plus file I/O per boundary — is tracked from day
// one. The spilled run reports the flash traffic and the resident-RAM
// reduction it buys.
func BenchmarkTwoLevelStep(b *testing.B) {
	const ramSlots, diskSlots = 2, 3
	run := func(b *testing.B, makeStore func() (store.Store, error)) {
		c, x, lossGrad := buildBenchChain(1)
		sched, err := plan.Build("twolevel", plan.ChainSpec{Length: c.Len()},
			plan.WithSlots(ramSlots), plan.WithDiskSlots(diskSlots))
		if err != nil {
			b.Fatal(err)
		}
		st, err := makeStore()
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		var res *chain.Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.ZeroGrads()
			res, err = chain.ExecuteWithStore(c, x, lossGrad, sched, st, true)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.PeakStateBytes)/1e6, "resident_peak_MB")
		b.ReportMetric(float64(res.DiskWrites), "flash_writes")
		b.ReportMetric(float64(res.DiskReads), "flash_reads")
	}
	b.Run("ram", func(b *testing.B) {
		run(b, func() (store.Store, error) { return store.NewRAM(), nil })
	})
	b.Run("spilled", func(b *testing.B) {
		run(b, func() (store.Store, error) { return store.NewTiered(b.TempDir()) })
	})
}

// --- Ablations ------------------------------------------------------------------

// BenchmarkScheduleComparison compares the three scheduling policies at an
// equal recompute budget (rho = 2) on a 152-step chain and reports how many
// activations each retains.
func BenchmarkScheduleComparison(b *testing.B) {
	const l = 152
	cost := checkpoint.DefaultCostModel
	var revolveSlots, seqSlots int
	for i := 0; i < b.N; i++ {
		res := checkpoint.MinSlotsForRho(l, 2, cost)
		revolveSlots = res.Slots
		s, _, ok := checkpoint.MinSequentialSlotsForRho(l, 2, cost)
		if !ok {
			b.Fatal("sequential baseline infeasible at rho=2")
		}
		seqSlots = s
	}
	b.ReportMetric(float64(revolveSlots+1), "revolve_slots")
	b.ReportMetric(float64(seqSlots+1), "sequential_slots")
	b.ReportMetric(float64(l), "store_all_slots")
}

// BenchmarkHeterogeneousChain evaluates a Revolve schedule against the real
// (non-homogenised) per-operation activation sizes of ResNet-50 and reports
// the peak bytes, quantifying how much the LinearResNet approximation of
// Section VI distorts the memory estimate.
func BenchmarkHeterogeneousChain(b *testing.B) {
	states, err := memmodel.HeterogeneousStateBytes(resnet.ResNet50, 224, 1, memmodel.DefaultAccounting)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := plan.Build("revolve", plan.ChainSpec{Length: len(states) - 1}, plan.WithSlots(10))
	if err != nil {
		b.Fatal(err)
	}
	var peak int64
	for i := 0; i < b.N; i++ {
		peak, err = schedule.PeakBytes(sched, states)
		if err != nil {
			b.Fatal(err)
		}
	}
	lin, err := memmodel.LinearChain(resnet.ResNet50, 224, 1, memmodel.DefaultAccounting)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(peak)/1e6, "hetero_peak_MB")
	b.ReportMetric(float64(lin.MemoryWithSlots(10)-lin.WeightBytes)/1e6, "homog_peak_MB")
}

// BenchmarkOptimizerStateSensitivity regenerates Table I under Adam-style
// (16 B/param) and SGD-style (8 B/param) accounting and reports how much the
// batch-1 ResNet-152 footprint changes — the sensitivity of the fit analysis
// to the optimiser choice.
func BenchmarkOptimizerStateSensitivity(b *testing.B) {
	var adamMB, sgdMB float64
	for i := 0; i < b.N; i++ {
		adam, err := memmodel.Model(resnet.ResNet152, 224, 1, memmodel.DefaultAccounting)
		if err != nil {
			b.Fatal(err)
		}
		sgd, err := memmodel.Model(resnet.ResNet152, 224, 1, memmodel.SGDAccounting)
		if err != nil {
			b.Fatal(err)
		}
		adamMB, sgdMB = adam.MB(), sgd.MB()
	}
	b.ReportMetric(adamMB, "adam_MB")
	b.ReportMetric(sgdMB, "sgd_MB")
}

// BenchmarkBatchAmortization quantifies the remark at the end of Section VI:
// larger batches enabled by checkpointing amortise per-step overheads. It
// reports the recompute factor needed to fit batch 8 versus batch 1 for
// ResNet-50 at image 500 and the resulting steps per epoch.
func BenchmarkBatchAmortization(b *testing.B) {
	node := device.Waggle()
	var rho1, rho8 float64
	for i := 0; i < b.N; i++ {
		for _, batch := range []int{1, 8} {
			lin, err := memmodel.LinearChain(resnet.ResNet50, 500, batch, memmodel.DefaultAccounting)
			if err != nil {
				b.Fatal(err)
			}
			rho, _, ok := checkpoint.MinRhoToFit(lin, node.MemoryBytes, checkpoint.DefaultCostModel, 6)
			if !ok {
				rho = 6
			}
			if batch == 1 {
				rho1 = rho
			} else {
				rho8 = rho
			}
		}
	}
	const epochImages = 10000
	b.ReportMetric(rho1, "rho_batch1")
	b.ReportMetric(rho8, "rho_batch8")
	b.ReportMetric(float64(epochImages)/1, "steps_per_epoch_b1")
	b.ReportMetric(float64(epochImages)/8, "steps_per_epoch_b8")
}

// BenchmarkRevolvePlanner measures the planner itself through the public
// registry: dynamic program plus schedule generation and validation for a
// 152-step chain with 8 slots.
func BenchmarkRevolvePlanner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sched, err := plan.Build("revolve", plan.ChainSpec{Length: 152}, plan.WithSlots(8))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := schedule.Run(sched); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingStoreAll validates the lazily generated store-all stream
// for a long chain, measuring the cost of streaming consumption (the plan is
// never materialized).
func BenchmarkStreamingStoreAll(b *testing.B) {
	const l = 10000
	var tr *schedule.Trace
	for i := 0; i < b.N; i++ {
		sched, err := plan.Build("storeall", plan.ChainSpec{Length: l})
		if err != nil {
			b.Fatal(err)
		}
		tr, err = schedule.Run(sched)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Forwards), "forwards")
	b.ReportMetric(float64(tr.PeakSlots), "peak_slots")
}

// BenchmarkIdleScheduler measures the opportunistic scheduler over a month of
// ten-minute load slices.
func BenchmarkIdleScheduler(b *testing.B) {
	trace := trainer.DielLoadTrace(30, 600, 0.85, 0.15)
	var res trainer.ScheduleResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = trainer.DefaultIdleScheduler.Schedule(trace, 50*3600)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ElapsedSeconds/3600, "elapsed_hours")
}

// BenchmarkSyntheticRenderer measures the viewpoint scene generator, the
// substrate for the student-teacher experiments.
func BenchmarkSyntheticRenderer(b *testing.B) {
	rng := tensor.NewRNG(3)
	for i := 0; i < b.N; i++ {
		vision.Sample(rng, vision.Class(i%vision.NumClasses), 0.7, 16)
	}
}

// --- Extensions beyond the paper ------------------------------------------------

// BenchmarkTwoLevelCheckpointing evaluates the flash-spilling (disk-revolve
// style) extension on a Waggle-like configuration: a 152-step chain, two RAM
// slots and an SD card whose write/read cost equals five forward steps.
func BenchmarkTwoLevelCheckpointing(b *testing.B) {
	cfg := checkpoint.TwoLevelConfig{RAMSlots: 2, WriteCost: 5, ReadCost: 5}
	var best checkpoint.TwoLevelCost
	var err error
	for i := 0; i < b.N; i++ {
		best, err = checkpoint.OptimalDiskCheckpoints(152, cfg, checkpoint.DefaultCostModel, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	ramOnly, err := checkpoint.PlanTwoLevelCost(152, 0, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(best.DiskCheckpoints), "disk_checkpoints")
	b.ReportMetric(best.Rho(152, checkpoint.DefaultCostModel), "rho_with_flash")
	b.ReportMetric(ramOnly.Rho(152, checkpoint.DefaultCostModel), "rho_ram_only")
}

// BenchmarkBaselinePolicies compares every implemented placement policy
// (store-all, Revolve, sequential, periodic, logarithmic) at a rho=2 budget
// on a 152-step chain.
func BenchmarkBaselinePolicies(b *testing.B) {
	var cmp []checkpoint.BaselineComparison
	for i := 0; i < b.N; i++ {
		cmp = checkpoint.CompareBaselines(152, 2.0, checkpoint.DefaultCostModel)
	}
	for _, c := range cmp {
		if c.Scheme == "revolve" {
			b.ReportMetric(float64(c.Slots), "revolve_slots")
		}
		if c.Scheme == "logarithmic" {
			b.ReportMetric(float64(c.Slots), "log_slots")
			b.ReportMetric(c.Rho, "log_rho")
		}
	}
}

// BenchmarkFederatedTraffic places the federated-averaging middle ground next
// to cloud and edge training.
func BenchmarkFederatedTraffic(b *testing.B) {
	var fed edgesim.FederatedResult
	var base []edgesim.Result
	var err error
	for i := 0; i < b.N; i++ {
		fed, base, err = edgesim.SimulateFederated(edgesim.DefaultFederatedConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	var cloud edgesim.Result
	for _, r := range base {
		if r.Strategy == edgesim.StrategyCloudTraining {
			cloud = r
		}
	}
	b.ReportMetric(float64(fed.TotalNetworkBytes())/1e9, "federated_GB")
	b.ReportMetric(float64(cloud.TotalNetworkBytes())/1e9, "cloud_GB")
}

// BenchmarkGradientAccumulation measures micro-batched training (the other
// classic memory-reduction technique) on the small ResNet so it can be
// compared with the checkpointing benchmarks above.
func BenchmarkGradientAccumulation(b *testing.B) {
	cfg := resnet.DefaultSmallConfig()
	net, err := resnet.BuildSmall(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c := chain.FromSequential(net)
	rng := tensor.NewRNG(5)
	images := tensor.RandNormal(rng, 0, 1, 8, cfg.InputChannels, 16, 16)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = i % cfg.NumClasses
	}
	batch := trainer.Batch{Images: images, Labels: labels}
	opt := trainer.NewSGD(0.01)
	var res trainer.AccumulateResult
	for i := 0; i < b.N; i++ {
		res, err = trainer.AccumulateStep(c, batch, 2, opt, chain.Policy{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.PeakStates), "peak_states")
	b.ReportMetric(float64(res.MicroBatches), "micro_batches")
}

// BenchmarkFleetRound measures one synchronous all-reduce aggregation round
// across concurrent edge workers (broadcast, parallel local gradients under
// heterogeneous budgets, deterministic fold, optimiser step) at two fleet
// sizes, so the per-round coordination overhead of scaling the fleet out is
// visible next to the single-node step benchmarks above.
func BenchmarkFleetRound(b *testing.B) {
	for _, workers := range []int{2, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			model := func() (*chain.Chain, error) {
				cfg := resnet.DefaultSmallConfig()
				cfg.Seed = 1
				net, err := resnet.BuildSmall(cfg)
				if err != nil {
					return nil, err
				}
				return chain.FromSequential(net), nil
			}
			rng := tensor.NewRNG(3)
			var samples []trainer.Batch
			for i := 0; i < 4*workers; i++ {
				c := vision.Class(i % vision.NumClasses)
				samples = append(samples, trainer.Batch{
					Images: vision.Sample(rng, c, 0.5, 16),
					Labels: []int{int(c)},
				})
			}
			specs := make([]fleet.WorkerSpec, workers)
			for i := range specs {
				specs[i] = fleet.WorkerSpec{Device: device.Waggle()}
			}
			f, err := fleet.New(fleet.Config{
				Workers:    specs,
				Rounds:     1,
				Seed:       1,
				Aggregator: fleet.NewGradAllReduce(trainer.NewSGD(0.05)),
			}, model, trainer.NewSliceDataset(samples))
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			b.ResetTimer()
			var rs fleet.RoundStats
			for i := 0; i < b.N; i++ {
				rs, err = f.Round(i)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rs.Participants), "participants")
			b.ReportMetric(float64(rs.UplinkBytes+rs.DownlinkBytes)/1e6, "round_MB")
		})
	}
}

// BenchmarkInstrumentedStep measures what the observability layer adds to one
// Revolve-checkpointed training step: "off" runs against the default no-op
// registry (the zero-config contract), "on" with a live registry and tracer
// installed. The relative delta between the two is the pr9 entry in
// BENCH_baseline.json and must stay under 2%.
func BenchmarkInstrumentedStep(b *testing.B) {
	step := func(b *testing.B) {
		c, x, lossGrad := buildBenchChain(1)
		sched, err := plan.Build("revolve", plan.ChainSpec{Length: c.Len()}, plan.WithSlots(2))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.ZeroGrads()
			if _, err := chain.Execute(c, x, lossGrad, sched, true); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", step)
	b.Run("on", func(b *testing.B) {
		obs.SetDefault(obs.NewRegistry())
		obs.SetDefaultTracer(obs.NewTracer(obs.DefaultTraceEvents))
		defer obs.SetDefault(nil)
		defer obs.SetDefaultTracer(nil)
		step(b)
	})
}
