package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Event("e", i, -1, "")
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(ev))
	}
	// Oldest-first: rounds 3, 4, 5, 6 survive.
	for i, e := range ev {
		if e.Round != i+3 {
			t.Fatalf("Events[%d].Round = %d, want %d", i, e.Round, i+3)
		}
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Span("fold", 2, -1)
	time.Sleep(time.Millisecond)
	sp.EndDetail("participants=3")
	ev := tr.Events()
	if len(ev) != 1 {
		t.Fatalf("len(Events) = %d, want 1", len(ev))
	}
	e := ev[0]
	if e.Name != "fold" || e.Round != 2 || e.Worker != -1 || e.Detail != "participants=3" {
		t.Fatalf("event = %+v", e)
	}
	if e.Dur <= 0 {
		t.Fatalf("span duration not recorded: %v", e.Dur)
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	tr.Event("e", 0, 0, "")
	tr.Record(Event{})
	sp := tr.Span("s", 0, 0)
	sp.End()
	sp.EndDetail("x")
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer retained state")
	}
	if tr.String() != "tracer(disabled)" {
		t.Fatalf("String = %q", tr.String())
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Event("retry", 1, -1, "attempt=2 below quorum")
	sp := tr.Span("upload", 1, 0)
	sp.EndDetail("bytes=512")

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), b.String())
	}
	var first struct {
		Name    string `json:"name"`
		Round   int    `json:"round"`
		Worker  int    `json:"worker"`
		StartNS int64  `json:"start_ns"`
		DurNS   int64  `json:"dur_ns"`
		Detail  string `json:"detail"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Name != "retry" || first.Round != 1 || first.Worker != -1 ||
		first.StartNS == 0 || first.Detail != "attempt=2 below quorum" {
		t.Fatalf("first line = %+v", first)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Span("local-train", 0, 2)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Event("chaos-injection", -1, -1, "drop")

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	span, inst := doc.TraceEvents[0], doc.TraceEvents[1]
	if span.Phase != "X" || span.Dur <= 0 || span.TID != 3 || span.PID != 1 {
		t.Fatalf("span event = %+v", span)
	}
	if inst.Phase != "i" || inst.TID != 0 || inst.Args["detail"] != "drop" {
		t.Fatalf("instant event = %+v", inst)
	}
}

func TestDefaultRegistrySwap(t *testing.T) {
	if Default() != nil {
		t.Fatal("default registry not nil at start")
	}
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	if Default() != r {
		t.Fatal("SetDefault did not install the registry")
	}
	tr := NewTracer(4)
	SetDefaultTracer(tr)
	defer SetDefaultTracer(nil)
	if DefaultTracer() != tr {
		t.Fatal("SetDefaultTracer did not install the tracer")
	}
	// The chained no-op idiom with the defaults cleared again.
	SetDefault(nil)
	SetDefaultTracer(nil)
	Default().Counter("x", "").Inc()
	DefaultTracer().Span("s", 0, 0).End()
}
