package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Event("e", i, -1, "")
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(ev))
	}
	// Oldest-first: rounds 3, 4, 5, 6 survive.
	for i, e := range ev {
		if e.Round != i+3 {
			t.Fatalf("Events[%d].Round = %d, want %d", i, e.Round, i+3)
		}
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Span("fold", 2, -1)
	time.Sleep(time.Millisecond)
	sp.EndDetail("participants=3")
	ev := tr.Events()
	if len(ev) != 1 {
		t.Fatalf("len(Events) = %d, want 1", len(ev))
	}
	e := ev[0]
	if e.Name != "fold" || e.Round != 2 || e.Worker != -1 || e.Detail != "participants=3" {
		t.Fatalf("event = %+v", e)
	}
	if e.Dur <= 0 {
		t.Fatalf("span duration not recorded: %v", e.Dur)
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	tr.Event("e", 0, 0, "")
	tr.Record(Event{})
	sp := tr.Span("s", 0, 0)
	sp.End()
	sp.EndDetail("x")
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer retained state")
	}
	if tr.String() != "tracer(disabled)" {
		t.Fatalf("String = %q", tr.String())
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Event("retry", 1, -1, "attempt=2 below quorum")
	sp := tr.Span("upload", 1, 0)
	sp.EndDetail("bytes=512")

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), b.String())
	}
	var first struct {
		Name    string `json:"name"`
		Round   int    `json:"round"`
		Worker  int    `json:"worker"`
		StartNS int64  `json:"start_ns"`
		DurNS   int64  `json:"dur_ns"`
		Detail  string `json:"detail"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Name != "retry" || first.Round != 1 || first.Worker != -1 ||
		first.StartNS == 0 || first.Detail != "attempt=2 below quorum" {
		t.Fatalf("first line = %+v", first)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Span("local-train", 0, 2)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Event("chaos-injection", -1, -1, "drop")

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	span, inst := doc.TraceEvents[0], doc.TraceEvents[1]
	if span.Phase != "X" || span.Dur <= 0 || span.TID != 3 || span.PID != 1 {
		t.Fatalf("span event = %+v", span)
	}
	if inst.Phase != "i" || inst.TID != 0 || inst.Args["detail"] != "drop" {
		t.Fatalf("instant event = %+v", inst)
	}
}

// TestEventsSince pins the shipping cursor contract: incremental reads,
// an up-to-date cursor returning nothing, and a stale cursor clamping to
// the oldest still-buffered event after ring wraparound.
func TestEventsSince(t *testing.T) {
	tr := NewTracer(4)
	ev, cur := tr.EventsSince(0)
	if len(ev) != 0 || cur != 0 {
		t.Fatalf("empty tracer EventsSince = %v, %d", ev, cur)
	}
	tr.Event("a", 0, -1, "")
	tr.Event("b", 1, -1, "")
	ev, cur = tr.EventsSince(cur)
	if len(ev) != 2 || ev[0].Name != "a" || ev[1].Name != "b" || cur != 2 {
		t.Fatalf("first read = %+v, cursor %d", ev, cur)
	}
	if ev, cur = tr.EventsSince(cur); len(ev) != 0 || cur != 2 {
		t.Fatalf("caught-up read = %+v, cursor %d", ev, cur)
	}
	for i := 2; i < 9; i++ {
		tr.Event("e", i, -1, "")
	}
	// Events 2..4 aged out of the capacity-4 ring; the stale cursor clamps
	// to the oldest survivor (round 5) instead of rereading overwritten
	// slots.
	ev, cur = tr.EventsSince(cur)
	if len(ev) != 4 || ev[0].Round != 5 || ev[3].Round != 8 || cur != 9 {
		t.Fatalf("post-wraparound read = %+v, cursor %d", ev, cur)
	}
	var nilTr *Tracer
	if ev, cur = nilTr.EventsSince(7); ev != nil || cur != 7 {
		t.Fatalf("nil tracer EventsSince = %v, %d", ev, cur)
	}
}

// TestChromeTraceLaneNames pins the stitched-trace lane metadata: NameLane
// registrations come out as thread_name "M" events, sorted by slot, with
// the coordinator (slot -1) on tid 0 and worker slots on tid slot+1.
func TestChromeTraceLaneNames(t *testing.T) {
	tr := NewTracer(8)
	tr.NameLane(1, "w1")
	tr.NameLane(-1, "coordinator")
	tr.NameLane(0, "w0")
	tr.Event("round", 0, -1, "")

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 3 metadata + 1 instant", len(doc.TraceEvents))
	}
	wantLanes := []struct {
		tid  int
		name string
	}{{0, "coordinator"}, {1, "w0"}, {2, "w1"}}
	for i, want := range wantLanes {
		meta := doc.TraceEvents[i]
		if meta.Phase != "M" || meta.Name != "thread_name" ||
			meta.TID != want.tid || meta.Args["name"] != want.name {
			t.Fatalf("lane metadata %d = %+v, want tid %d name %q", i, meta, want.tid, want.name)
		}
	}
	// The nil tracer ignores NameLane.
	var nilTr *Tracer
	nilTr.NameLane(0, "x")
}

// TestJSONLMarksRemoteEvents checks ingested events keep their provenance
// in the JSONL dump.
func TestJSONLMarksRemoteEvents(t *testing.T) {
	tr := NewTracer(4)
	tr.Record(Event{Name: "local-train", Worker: 1, Start: time.Unix(0, 42), Remote: true})
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"remote":true`) {
		t.Fatalf("remote flag not serialized: %s", b.String())
	}
}

func TestDefaultRegistrySwap(t *testing.T) {
	if Default() != nil {
		t.Fatal("default registry not nil at start")
	}
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	if Default() != r {
		t.Fatal("SetDefault did not install the registry")
	}
	tr := NewTracer(4)
	SetDefaultTracer(tr)
	defer SetDefaultTracer(nil)
	if DefaultTracer() != tr {
		t.Fatal("SetDefaultTracer did not install the tracer")
	}
	// The chained no-op idiom with the defaults cleared again.
	SetDefault(nil)
	SetDefaultTracer(nil)
	Default().Counter("x", "").Inc()
	DefaultTracer().Span("s", 0, 0).End()
}
