// Package obs is the observability layer: a dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms with a snapshot API
// and Prometheus text-format v0.0.4 exposition), a ring-buffered trace
// recorder for round lifecycle phases (exported as JSONL or Chrome
// trace_event JSON for chrome://tracing), an HTTP mux serving /metrics,
// /healthz, /trace and net/http/pprof, and a small structured-log helper
// shared by the long-running processes.
//
// # No-op by default
//
// The package-level default registry and tracer start nil, and every
// handle method (Counter.Add, Gauge.Set, Histogram.Observe, Span.End, …)
// is a nil-safe no-op. Instrumented code therefore calls
//
//	obs.Default().Counter("fleet_rounds_total", "…").Inc()
//
// unconditionally: with no registry installed the chain is two nil checks
// and costs ~nothing — zero-config callers pay for neither allocations
// nor synchronisation. A process opts in explicitly, normally once at
// startup:
//
//	obs.SetDefault(obs.NewRegistry())
//	obs.SetDefaultTracer(obs.NewTracer(4096))
//
// Instrumentation records only timings and counts and never touches model
// RNG or numeric state, so trained weights are byte-identical with
// observability on or off (pinned by TestObservabilityNoPerturbation).
package obs

import "sync/atomic"

var (
	defaultRegistry atomic.Pointer[Registry]
	defaultTracer   atomic.Pointer[Tracer]
)

// Default returns the process-wide registry, or nil when observability is
// disabled. The nil registry is usable: every method on it (and on the
// nil handles it returns) is a no-op.
func Default() *Registry { return defaultRegistry.Load() }

// SetDefault installs r as the process-wide registry. Passing nil
// disables collection again. Safe for concurrent use; hot paths that
// cache handles re-resolve them when the pointer changes.
func SetDefault(r *Registry) { defaultRegistry.Store(r) }

// DefaultTracer returns the process-wide trace recorder, or nil when
// tracing is disabled (the nil tracer is a usable no-op).
func DefaultTracer() *Tracer { return defaultTracer.Load() }

// SetDefaultTracer installs t as the process-wide tracer. Passing nil
// disables tracing again.
func SetDefaultTracer(t *Tracer) { defaultTracer.Store(t) }
