package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one recorded trace entry — either a completed span (Dur > 0 or
// recorded via Span.End) or an instantaneous marker. Events are plain
// values: recording one copies it into the ring buffer and allocates
// nothing beyond the strings the caller already holds.
type Event struct {
	Name   string        // lifecycle phase: "broadcast", "local-train", "fold", …
	Round  int           // aggregation round, -1 when not applicable
	Worker int           // worker slot, -1 for coordinator-wide phases
	Start  time.Time     // wall-clock start
	Dur    time.Duration // 0 for instantaneous events
	Detail string        // optional free-form note ("reason=quorum", …)
	Remote bool          // ingested from another process's telemetry shipment
}

// Tracer records Events into a fixed-capacity ring buffer: the most
// recent events win, old ones are overwritten, and recording never
// blocks on I/O. All methods are no-ops on a nil receiver.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	next    int   // ring write cursor
	total   int64 // events ever recorded
	started time.Time
	lanes   map[int]string // worker slot → display name for trace lanes
}

// DefaultTraceEvents is the ring capacity NewTracer uses for capacity <= 0.
const DefaultTraceEvents = 4096

// NewTracer returns a tracer holding the last capacity events
// (DefaultTraceEvents when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Tracer{buf: make([]Event, 0, capacity), started: time.Now()}
}

// Record appends e to the ring.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
	t.mu.Unlock()
}

// Event records an instantaneous marker.
func (t *Tracer) Event(name string, round, worker int, detail string) {
	if t == nil {
		return
	}
	t.Record(Event{Name: name, Round: round, Worker: worker, Start: time.Now(), Detail: detail})
}

// Span is an in-flight timed phase. The zero Span (from a nil Tracer) is
// a no-op, so callers never need to nil-check.
type Span struct {
	t      *Tracer
	name   string
	round  int
	worker int
	start  time.Time
}

// Span starts a timed phase; call End (or EndDetail) on the returned
// value. Safe for concurrent use — per-worker spans can run in parallel.
func (t *Tracer) Span(name string, round, worker int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, round: round, worker: worker, start: time.Now()}
}

// End records the span.
func (s Span) End() { s.EndDetail("") }

// EndDetail records the span with a free-form note.
func (s Span) EndDetail(detail string) {
	if s.t == nil {
		return
	}
	s.t.Record(Event{
		Name: s.name, Round: s.round, Worker: s.worker,
		Start: s.start, Dur: time.Since(s.start), Detail: detail,
	})
}

// Events returns the buffered events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// EventsSince returns the events recorded after position cursor (0 for
// "from the beginning") oldest-first, plus the cursor to pass next time.
// Events that aged out of the ring before this call are silently gone —
// the returned slice starts at the oldest still-buffered event.
func (t *Tracer) EventsSince(cursor int64) ([]Event, int64) {
	if t == nil {
		return nil, cursor
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	oldest := t.total - int64(len(t.buf))
	if cursor < oldest {
		cursor = oldest
	}
	if cursor >= t.total {
		return nil, t.total
	}
	out := make([]Event, 0, t.total-cursor)
	for i := cursor; i < t.total; i++ {
		out = append(out, t.buf[int(i%int64(cap(t.buf)))])
	}
	return out, t.total
}

// NameLane labels the trace lane for a worker slot; WriteChromeTrace
// emits the name as thread metadata so chrome://tracing shows "w0",
// "coordinator", … instead of bare thread IDs. Slot -1 is the
// coordinator lane.
func (t *Tracer) NameLane(worker int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.lanes == nil {
		t.lanes = make(map[int]string)
	}
	t.lanes[worker] = name
	t.mu.Unlock()
}

func (t *Tracer) laneNames() map[int]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]string, len(t.lanes))
	for k, v := range t.lanes {
		out[k] = v
	}
	return out
}

// Dropped returns how many events were overwritten by newer ones.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - int64(len(t.buf))
}

type jsonlEvent struct {
	Name    string `json:"name"`
	Round   int    `json:"round"`
	Worker  int    `json:"worker"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Detail  string `json:"detail,omitempty"`
	Remote  bool   `json:"remote,omitempty"`
}

// WriteJSONL writes the buffered events oldest-first, one JSON object per
// line, with nanosecond unix timestamps.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		je := jsonlEvent{
			Name: e.Name, Round: e.Round, Worker: e.Worker,
			StartNS: e.Start.UnixNano(), DurNS: e.Dur.Nanoseconds(), Detail: e.Detail,
			Remote: e.Remote,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the buffered events as a Chrome trace_event
// JSON document loadable in chrome://tracing (or ui.perfetto.dev). Spans
// become complete ("X") events; instantaneous records become instant
// ("i") events. Worker slots map to thread IDs so each worker gets its
// own lane; coordinator-wide phases land on tid 0. Lanes registered via
// NameLane come out as thread_name metadata, so a stitched fleet trace
// reads "coordinator" / "w0" / "w1" instead of bare thread IDs.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, 0, len(events))}
	lanes := t.laneNames()
	slots := make([]int, 0, len(lanes))
	for worker := range lanes {
		slots = append(slots, worker)
	}
	sort.Ints(slots)
	for _, worker := range slots {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   worker + 1,
			Args:  map[string]any{"name": lanes[worker]},
		})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name:  e.Name,
			Cat:   "round",
			Phase: "X",
			TS:    float64(e.Start.UnixNano()) / 1e3,
			Dur:   float64(e.Dur.Nanoseconds()) / 1e3,
			PID:   1,
			TID:   e.Worker + 1, // -1 (coordinator) → lane 0
			Args:  map[string]any{"round": e.Round},
		}
		if e.Dur == 0 {
			ce.Phase = "i"
		}
		if e.Detail != "" {
			ce.Args["detail"] = e.Detail
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// String summarises the tracer state for logs.
func (t *Tracer) String() string {
	if t == nil {
		return "tracer(disabled)"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("tracer(%d/%d events, %d dropped)", len(t.buf), cap(t.buf), t.total-int64(len(t.buf)))
}
