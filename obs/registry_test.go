package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the text exposition format: sorted series,
// one HELP/TYPE pair per metric name, label-value escaping, and the full
// histogram rendering with cumulative buckets, +Inf, _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "B counter.").Add(7)
	r.CounterWith("a_total", "A counter by phase.", L("phase", "fold")).Add(3)
	r.CounterWith("a_total", "A counter by phase.", L("phase", "broadcast")).Inc()
	r.Gauge("live", "Live workers.").Set(2)
	r.CounterWith("weird_total", "Escaping.", L("v", "a\\b\"c\nd")).Inc()

	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_total A counter by phase.
# TYPE a_total counter
a_total{phase="broadcast"} 1
a_total{phase="fold"} 3
# HELP b_total B counter.
# TYPE b_total counter
b_total 7
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 6.05
lat_seconds_count 4
# HELP live Live workers.
# TYPE live gauge
live 2
# HELP weird_total Escaping.
# TYPE weird_total counter
weird_total{v="a\\b\"c\nd"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusEdgeCases pins the exposition of the awkward values a
// fleet scrape actually produces: NaN and ±Inf gauges (diverged loss), a
// histogram with no observations yet, a label value needing every escape,
// and HELP text carrying backslashes and newlines — all against the
// v0.0.4 text format.
func TestWritePrometheusEdgeCases(t *testing.T) {
	r := NewRegistry()
	r.Gauge("loss_nan", "Diverged.").Set(math.NaN())
	r.Gauge("inf_pos", "Overflow.").Set(math.Inf(1))
	r.Gauge("inf_neg", "Underflow.").Set(math.Inf(-1))
	r.Histogram("cold", "No observations yet.", []float64{0.5, 2})
	r.CounterWith("esc_total", "Back\\slash and\nnewline.", L("p", "q\\r\"s\nt")).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP cold No observations yet.
# TYPE cold histogram
cold_bucket{le="0.5"} 0
cold_bucket{le="2"} 0
cold_bucket{le="+Inf"} 0
cold_sum 0
cold_count 0
# HELP esc_total Back\\slash and\nnewline.
# TYPE esc_total counter
esc_total{p="q\\r\"s\nt"} 1
# HELP inf_neg Underflow.
# TYPE inf_neg gauge
inf_neg -Inf
# HELP inf_pos Overflow.
# TYPE inf_pos gauge
inf_pos +Inf
# HELP loss_nan Diverged.
# TYPE loss_nan gauge
loss_nan NaN
`
	if got := b.String(); got != want {
		t.Fatalf("edge-case exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSnapshotCarriesHelp checks Snapshot fills Help — telemetry shipments
// re-register ingested series with it, so the fleet-wide scrape keeps the
// original HELP lines.
func TestSnapshotCarriesHelp(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "The help line.").Inc()
	s := r.Snapshot()
	if len(s) != 1 || s[0].Help != "The help line." {
		t.Fatalf("snapshot = %+v", s)
	}
}

// TestRegistryHandleIdentity checks that the same (name, labels) pair always
// resolves to the same handle, regardless of label order.
func TestRegistryHandleIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.CounterWith("x_total", "X.", L("a", "1"), L("b", "2"))
	c2 := r.CounterWith("x_total", "X.", L("b", "2"), L("a", "1"))
	if c1 != c2 {
		t.Fatal("label order changed series identity")
	}
	c1.Add(5)
	if c2.Value() != 5 {
		t.Fatalf("c2.Value() = %d, want 5", c2.Value())
	}
}

// TestRegistryKindClash checks a name reused with a different kind returns a
// no-op handle rather than panicking: instrumentation must never crash the
// process it observes.
func TestRegistryKindClash(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "As counter.").Inc()
	g := r.Gauge("m", "As gauge.")
	if g != nil {
		t.Fatal("kind clash handed out a live gauge")
	}
	g.Set(9) // must not panic
	if got := r.Counter("m", "As counter.").Value(); got != 1 {
		t.Fatalf("counter clobbered by clash: %d", got)
	}
}

// TestNilRegistryNoOps pins the no-op-by-default contract: a nil *Registry
// hands out nil handles and every method on them is safe.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	r.Counter("c", "").Inc()
	r.Counter("c", "").Add(3)
	r.Gauge("g", "").Set(1)
	r.Gauge("g", "").Add(1)
	r.Gauge("g", "").SetMax(1)
	r.Histogram("h", "", nil).Observe(1)
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %v", s)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", b.String(), err)
	}
}

// TestGaugeSetMax checks the peak-usage idiom only moves the gauge upward.
func TestGaugeSetMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("peak", "Peak.")
	g.SetMax(10)
	g.SetMax(4)
	if g.Value() != 10 {
		t.Fatalf("SetMax lowered the gauge: %g", g.Value())
	}
	g.SetMax(12)
	if g.Value() != 12 {
		t.Fatalf("SetMax failed to raise the gauge: %g", g.Value())
	}
}

// TestConcurrentScrape hammers counters, gauges and histograms from many
// goroutines while scraping concurrently; run under -race this is the data
// race check, and every scrape must stay internally consistent (+Inf bucket
// equals _count within one rendering).
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 500
	var writerWG, scraperWG sync.WaitGroup
	stop := make(chan struct{})

	writerWG.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter("c_total", "C.").Inc()
				r.CounterWith("cl_total", "CL.", L("w", string(rune('a'+w)))).Inc()
				r.Gauge("g", "G.").Set(float64(i))
				r.Histogram("h_seconds", "H.", nil).Observe(float64(i) / 1000)
			}
		}(w)
	}
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			checkScrapeConsistent(t, b.String())
			r.Snapshot()
		}
	}()
	writerWG.Wait()
	close(stop)
	scraperWG.Wait()

	if got := r.Counter("c_total", "C.").Value(); got != writers*perWriter {
		t.Fatalf("c_total = %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("h_seconds", "H.", nil).Count(); got != writers*perWriter {
		t.Fatalf("h_seconds count = %d, want %d", got, writers*perWriter)
	}
}

// checkScrapeConsistent asserts the +Inf bucket value of every histogram in
// one rendered exposition equals its _count line.
func checkScrapeConsistent(t *testing.T, text string) {
	t.Helper()
	var inf string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "h_seconds_bucket{le=\"+Inf\"}") {
			inf = strings.Fields(line)[1]
		}
		if strings.HasPrefix(line, "h_seconds_count") {
			if cnt := strings.Fields(line)[1]; inf != cnt {
				t.Errorf("scrape inconsistent: +Inf bucket %s != _count %s", inf, cnt)
			}
		}
	}
}
