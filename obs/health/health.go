// Package health evaluates declarative training-health rules at round
// boundaries and turns violations into typed alerts.
//
// A Monitor holds a rule set (DefaultRules covers the failure modes that
// matter for memory-constrained edge fleets: loss divergence, NaN
// rejections, stragglers, worker flapping, and round-retry burn). After
// every committed round the coordinator — or the in-process fleet runner —
// calls ObserveRound with that round's Stats; each firing rule appends an
// Alert, increments the fleet_alerts_total{rule=...} counter on the
// process-default registry, and degrades the process /healthz to 503
// until a clean round passes. Like the rest of obs, the package is
// dependency-free and nil-safe: a nil Monitor observes nothing.
package health

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/edgeml/edgetrain/obs"
)

// Stats is one committed round's health-relevant accounting, filled by
// the caller from its round bookkeeping (fleet.RoundStats or the
// coordinator's commit path).
type Stats struct {
	Round        int             // round index
	Loss         float64         // weighted mean loss this round
	Participants int             // workers whose updates folded
	Dropouts     int             // workers lost mid-round
	Rejected     int             // updates rejected (NaN/Inf or malformed)
	Retries      int             // extra attempts before this round committed
	Flaps        int             // worker rejoin events since the last round
	LiveWorkers  int             // connected workers after the round
	MinWorkers   int             // configured quorum floor (0 = unknown)
	WallClock    time.Duration   // round wall-clock duration
	LocalDur     []time.Duration // per-participant local training durations
}

// Alert is one rule violation at one round boundary.
type Alert struct {
	Rule   string // rule name, also the fleet_alerts_total label value
	Round  int    // round that tripped the rule
	Detail string // human-readable reason
}

func (a Alert) String() string {
	return fmt.Sprintf("round %d: %s: %s", a.Round, a.Rule, a.Detail)
}

// History is the cross-round state rules may consult.
type History struct {
	Rounds   int     // rounds observed so far (excluding the current one)
	PrevLoss float64 // previous round's loss (NaN before the first round)
	BestLoss float64 // lowest loss seen (NaN before the first round)
}

// Rule is one declarative health check. Check returns a detail string
// and true when the rule fires for the observed round.
type Rule struct {
	Name  string // short kebab-case identifier ("loss-divergence", …)
	Help  string // one-line description for docs and alert tables
	Check func(h History, s Stats) (detail string, fired bool)
}

// DefaultRules returns the built-in rule set.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "loss-divergence",
			Help: "round loss is NaN/Inf or worse than 2x the best loss seen",
			Check: func(h History, s Stats) (string, bool) {
				if math.IsNaN(s.Loss) || math.IsInf(s.Loss, 0) {
					return fmt.Sprintf("loss=%v", s.Loss), true
				}
				if h.Rounds > 0 && !math.IsNaN(h.BestLoss) && s.Loss > 2*h.BestLoss {
					return fmt.Sprintf("loss %.4g > 2x best %.4g", s.Loss, h.BestLoss), true
				}
				return "", false
			},
		},
		{
			Name: "nan-rejections",
			Help: "one or more worker updates were rejected this round",
			Check: func(h History, s Stats) (string, bool) {
				if s.Rejected > 0 {
					return fmt.Sprintf("%d update(s) rejected", s.Rejected), true
				}
				return "", false
			},
		},
		{
			Name: "straggler",
			Help: "slowest worker took over 4x the median local-train time",
			Check: func(h History, s Stats) (string, bool) {
				if len(s.LocalDur) < 3 {
					return "", false
				}
				ds := append([]time.Duration(nil), s.LocalDur...)
				sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
				median, max := ds[len(ds)/2], ds[len(ds)-1]
				if median > 0 && max > 4*median {
					return fmt.Sprintf("slowest %v vs median %v", max, median), true
				}
				return "", false
			},
		},
		{
			Name: "worker-flap",
			Help: "two or more worker reconnects since the previous round",
			Check: func(h History, s Stats) (string, bool) {
				if s.Flaps >= 2 {
					return fmt.Sprintf("%d rejoin(s)", s.Flaps), true
				}
				return "", false
			},
		},
		{
			Name: "retry-burn",
			Help: "the round needed two or more extra attempts to commit",
			Check: func(h History, s Stats) (string, bool) {
				if s.Retries >= 2 {
					return fmt.Sprintf("%d retries", s.Retries), true
				}
				return "", false
			},
		},
	}
}

// Monitor evaluates a rule set at round boundaries and accumulates
// alerts. All methods are safe for concurrent use and no-ops on nil.
type Monitor struct {
	mu      sync.Mutex
	rules   []Rule
	history History
	all     []Alert
	active  []Alert // alerts from the most recent observed round
}

// NewMonitor returns a monitor over rules (DefaultRules when empty).
func NewMonitor(rules ...Rule) *Monitor {
	if len(rules) == 0 {
		rules = DefaultRules()
	}
	return &Monitor{rules: rules, history: History{PrevLoss: math.NaN(), BestLoss: math.NaN()}}
}

// ObserveRound evaluates every rule against s, records firings, counts
// them into fleet_alerts_total{rule=...} on the process-default registry,
// and returns the alerts fired by this round (nil when healthy).
func (m *Monitor) ObserveRound(s Stats) []Alert {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var fired []Alert
	for _, r := range m.rules {
		if detail, ok := r.Check(m.history, s); ok {
			a := Alert{Rule: r.Name, Round: s.Round, Detail: detail}
			fired = append(fired, a)
			obs.Default().CounterWith("fleet_alerts_total",
				"Health alerts fired at round boundaries, by rule.",
				obs.L("rule", r.Name)).Inc()
		}
	}
	m.all = append(m.all, fired...)
	m.active = fired
	m.history.Rounds++
	m.history.PrevLoss = s.Loss
	if !math.IsNaN(s.Loss) && !math.IsInf(s.Loss, 0) {
		if math.IsNaN(m.history.BestLoss) || s.Loss < m.history.BestLoss {
			m.history.BestLoss = s.Loss
		}
	}
	return fired
}

// Alerts returns every alert fired so far, oldest-first.
func (m *Monitor) Alerts() []Alert {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.all...)
}

// Active returns the alerts fired by the most recently observed round.
// A non-empty result means the process /healthz should degrade to 503.
func (m *Monitor) Active() []Alert {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.active...)
}

// Reasons renders alerts as short strings for Health.Alerts.
func Reasons(alerts []Alert) []string {
	if len(alerts) == 0 {
		return nil
	}
	out := make([]string, len(alerts))
	for i, a := range alerts {
		out[i] = a.String()
	}
	return out
}
