package health

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/edgeml/edgetrain/obs"
)

func alertRules(as []Alert) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Rule)
	}
	return out
}

func fired(as []Alert, rule string) bool {
	for _, a := range as {
		if a.Rule == rule {
			return true
		}
	}
	return false
}

func TestHealthyRoundsFireNothing(t *testing.T) {
	m := NewMonitor()
	for r := 0; r < 3; r++ {
		s := Stats{
			Round: r, Loss: 1.0 / float64(r+1), Participants: 3,
			LocalDur: []time.Duration{time.Millisecond, time.Millisecond, time.Millisecond},
		}
		if as := m.ObserveRound(s); len(as) != 0 {
			t.Fatalf("round %d fired %v, want none", r, alertRules(as))
		}
	}
	if as := m.Alerts(); len(as) != 0 {
		t.Fatalf("Alerts() = %v, want empty", as)
	}
	if as := m.Active(); len(as) != 0 {
		t.Fatalf("Active() = %v, want empty", as)
	}
}

func TestLossDivergence(t *testing.T) {
	m := NewMonitor()
	// NaN fires immediately, even on the first round.
	if as := m.ObserveRound(Stats{Round: 0, Loss: math.NaN()}); !fired(as, "loss-divergence") {
		t.Fatalf("NaN loss did not fire loss-divergence: %v", alertRules(as))
	}
	m = NewMonitor()
	m.ObserveRound(Stats{Round: 0, Loss: 1.0})
	if as := m.ObserveRound(Stats{Round: 1, Loss: 2.5}); !fired(as, "loss-divergence") {
		t.Fatalf("2.5x best loss did not fire: %v", alertRules(as))
	}
	// Recovery clears the active set.
	if as := m.ObserveRound(Stats{Round: 2, Loss: 0.9}); len(as) != 0 {
		t.Fatalf("recovered round still fires %v", alertRules(as))
	}
	if as := m.Active(); len(as) != 0 {
		t.Fatalf("Active() after recovery = %v, want empty", as)
	}
	// But the historical record keeps the firing.
	if as := m.Alerts(); len(as) != 1 || as[0].Round != 1 {
		t.Fatalf("Alerts() = %v, want one alert at round 1", as)
	}
}

func TestNaNRejections(t *testing.T) {
	m := NewMonitor()
	as := m.ObserveRound(Stats{Round: 0, Loss: 1, Rejected: 2})
	if !fired(as, "nan-rejections") {
		t.Fatalf("rejections did not fire: %v", alertRules(as))
	}
}

func TestStraggler(t *testing.T) {
	m := NewMonitor()
	ms := time.Millisecond
	// Two participants never fire — no meaningful median.
	if as := m.ObserveRound(Stats{Round: 0, Loss: 1, LocalDur: []time.Duration{ms, 100 * ms}}); fired(as, "straggler") {
		t.Fatal("straggler fired with only two participants")
	}
	as := m.ObserveRound(Stats{Round: 1, Loss: 1, LocalDur: []time.Duration{ms, ms, 10 * ms}})
	if !fired(as, "straggler") {
		t.Fatalf("10x median did not fire: %v", alertRules(as))
	}
}

func TestWorkerFlapAndRetryBurn(t *testing.T) {
	m := NewMonitor()
	as := m.ObserveRound(Stats{Round: 0, Loss: 1, Flaps: 2, Retries: 3})
	if !fired(as, "worker-flap") || !fired(as, "retry-burn") {
		t.Fatalf("flap+retry round fired %v", alertRules(as))
	}
	if as := m.ObserveRound(Stats{Round: 1, Loss: 1, Retries: 1}); len(as) != 0 {
		t.Fatalf("single retry fired %v", alertRules(as))
	}
}

func TestAlertsCounter(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)
	m := NewMonitor()
	m.ObserveRound(Stats{Round: 0, Loss: math.Inf(1), Rejected: 1})
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		`fleet_alerts_total{rule="loss-divergence"} 1`,
		`fleet_alerts_total{rule="nan-rejections"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}
}

func TestNilMonitor(t *testing.T) {
	var m *Monitor
	if as := m.ObserveRound(Stats{Loss: math.NaN()}); as != nil {
		t.Fatal("nil monitor fired")
	}
	if m.Alerts() != nil || m.Active() != nil {
		t.Fatal("nil monitor has alerts")
	}
}

func TestReasons(t *testing.T) {
	got := Reasons([]Alert{{Rule: "retry-burn", Round: 3, Detail: "2 retries"}})
	if len(got) != 1 || got[0] != "round 3: retry-burn: 2 retries" {
		t.Fatalf("Reasons = %v", got)
	}
	if Reasons(nil) != nil {
		t.Fatal("Reasons(nil) != nil")
	}
}
