package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Log is the structured-log helper shared by the command-line processes.
// Every line carries a millisecond UTC timestamp and a bracketed context
// — process role, instance name, and any fields added with With — so the
// interleaved output of a coordinator and several workers stays
// attributable:
//
//	2026-08-08T14:03:21.114Z [coord] round 2: 3/3 updates staged
//	2026-08-08T14:03:21.117Z [worker/w1 round=2] update acked
//
// A nil *Log discards everything, and derived loggers share one mutex so
// concurrent processes writing to the same pipe interleave whole lines.
type Log struct {
	mu     *sync.Mutex
	w      io.Writer
	prefix string // "coord", "worker/w1", …
	fields string // rendered " k=v" pairs, sorted
}

// NewLog returns a logger writing to w tagged with a process role
// ("coord", "worker", "trainer") and an optional instance name.
func NewLog(w io.Writer, role, name string) *Log {
	prefix := role
	if name != "" {
		prefix = role + "/" + name
	}
	return &Log{mu: new(sync.Mutex), w: w, prefix: prefix}
}

// With returns a derived logger whose lines also carry key=value. Fields
// render sorted by key so output is stable.
func (l *Log) With(key string, value any) *Log {
	if l == nil {
		return nil
	}
	parts := strings.Fields(l.fields)
	parts = append(parts, fmt.Sprintf("%s=%v", key, value))
	sort.Strings(parts)
	d := *l
	d.fields = " " + strings.Join(parts, " ")
	return &d
}

// Printf writes one line (a trailing newline is added if missing).
func (l *Log) Printf(format string, args ...any) {
	if l == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if !strings.HasSuffix(msg, "\n") {
		msg += "\n"
	}
	ts := time.Now().UTC().Format("2006-01-02T15:04:05.000Z")
	l.mu.Lock()
	fmt.Fprintf(l.w, "%s [%s%s] %s", ts, l.prefix, l.fields, msg)
	l.mu.Unlock()
}
