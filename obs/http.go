package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health is the /healthz payload. Processes fill the fields that apply:
// the coordinator reports its round cursor and live worker count, the
// trainers report completed steps/rounds.
type Health struct {
	Status        string   `json:"status"` // "ok", "running", "done", "alerting", …
	UptimeSeconds float64  `json:"uptime_seconds"`
	Round         int      `json:"round"`
	Rounds        int      `json:"rounds"`
	LiveWorkers   int      `json:"live_workers"`
	Detail        string   `json:"detail,omitempty"`
	Degraded      bool     `json:"degraded,omitempty"` // /healthz answers 503 when set
	Alerts        []string `json:"alerts,omitempty"`   // active alert reasons
}

// Endpoints configures the HTTP surface a long-running process exposes.
// Zero-value fields fall back: a nil Registry/Tracer resolves the
// process-wide default at request time (so a scrape after SetDefault
// works even if the server started first), and a nil Health reports
// plain "ok".
type Endpoints struct {
	Registry *Registry
	Tracer   *Tracer
	Health   func() Health
}

// Mux builds the observability mux:
//
//	/metrics      Prometheus text exposition (v0.0.4)
//	/healthz      JSON Health
//	/trace        ring-buffered trace; ?format=chrome for chrome://tracing
//	/debug/pprof  net/http/pprof profiles
func (e Endpoints) Mux() *http.ServeMux {
	start := time.Now()
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		reg := e.Registry
		if reg == nil {
			reg = Default()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := Health{Status: "ok"}
		if e.Health != nil {
			h = e.Health()
		}
		if h.UptimeSeconds == 0 {
			h.UptimeSeconds = time.Since(start).Seconds()
		}
		w.Header().Set("Content-Type", "application/json")
		if h.Degraded {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		tr := e.Tracer
		if tr == nil {
			tr = DefaultTracer()
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
			tr.WriteChromeTrace(w)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		tr.WriteJSONL(w)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// Serve starts the observability server on addr (host:port; port 0 picks
// a free one) and returns the bound address plus a shutdown function.
// The server runs until shutdown is called; serve errors after shutdown
// are discarded.
func Serve(addr string, e Endpoints) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: e.Mux()}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
