package obs

import "sync"

// DeltaShipper turns a process's local registry and tracer into a stream of
// compact telemetry shipments: each Collect returns the metric movement and
// the trace events recorded since the previous Collect. Workers piggyback
// these shipments on protocol messages; the coordinator folds them into its
// own registry/tracer with Registry.Ingest and Tracer.Record, making the
// coordinator's /metrics and /trace the fleet-wide view.
//
// Counters ship their delta (omitted when unchanged), gauges their latest
// value (omitted when bit-unchanged), histograms their count/sum/bucket
// deltas (omitted when no new observations landed). Events recorded by a
// previous ingestion (Event.Remote) are never re-shipped, so a shared
// registry — the in-process loopback transport — cannot echo telemetry
// back and forth.
type DeltaShipper struct {
	// SkipLabels lists label keys that mark a series as foreign: series
	// carrying any of them are never shipped. The coordinator ingests under
	// a "worker" label, so workers sharing its registry in-process skip
	// exactly those.
	SkipLabels []string

	mu     sync.Mutex
	reg    *Registry
	tr     *Tracer
	last   map[string]Sample // previous snapshot by name+label key
	cursor int64             // tracer position of the last Collect
}

// NewDeltaShipper returns a shipper over reg and tr (either may be nil;
// a fully nil shipper collects nothing).
func NewDeltaShipper(reg *Registry, tr *Tracer) *DeltaShipper {
	return &DeltaShipper{reg: reg, tr: tr, last: make(map[string]Sample)}
}

func (d *DeltaShipper) skip(s *Sample) bool {
	for _, k := range d.SkipLabels {
		for _, l := range s.Labels {
			if l.Key == k {
				return true
			}
		}
	}
	return false
}

// Collect returns the metric deltas and new trace events since the previous
// Collect (everything, on the first call). Safe for concurrent use.
func (d *DeltaShipper) Collect() ([]Sample, []Event) {
	if d == nil {
		return nil, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var samples []Sample
	for _, cur := range d.reg.Snapshot() {
		if d.skip(&cur) {
			continue
		}
		key := cur.Name + labelKey(cur.Labels)
		prev, seen := d.last[key]
		d.last[key] = cur
		delta := cur // copy; Bounds/Buckets slices are already snapshot-owned
		switch cur.Kind {
		case "counter":
			delta.Value = cur.Value - prev.Value
			if seen && delta.Value == 0 {
				continue
			}
		case "gauge":
			if seen && sameFloatBits(cur.Value, prev.Value) {
				continue
			}
		case "histogram":
			if seen && cur.Count == prev.Count {
				continue
			}
			delta.Value = cur.Value - prev.Value
			delta.Count = cur.Count - prev.Count
			if seen {
				delta.Buckets = make([]int64, len(cur.Buckets))
				for i := range cur.Buckets {
					delta.Buckets[i] = cur.Buckets[i]
					if i < len(prev.Buckets) {
						delta.Buckets[i] -= prev.Buckets[i]
					}
				}
			}
		}
		samples = append(samples, delta)
	}
	var events []Event
	all, next := d.tr.EventsSince(d.cursor)
	d.cursor = next
	for _, e := range all {
		if e.Remote {
			continue
		}
		events = append(events, e)
	}
	return samples, events
}

func sameFloatBits(a, b float64) bool {
	return (a == b) || (a != a && b != b) // NaN-tolerant equality
}

// Ingest folds delta samples (a DeltaShipper.Collect shipment) into r with
// the extra labels appended — the coordinator passes worker=<name>, so one
// scrape of its registry is the fleet-wide view. Samples that already carry
// one of the extra label keys are dropped (they were ingested before), as
// are samples whose kind or bucket layout clashes with an existing series:
// hostile or skewed telemetry must never corrupt the ingesting registry.
// A nil registry ingests nothing.
func (r *Registry) Ingest(samples []Sample, extra ...Label) {
	if r == nil {
		return
	}
next:
	for _, s := range samples {
		for _, x := range extra {
			for _, l := range s.Labels {
				if l.Key == x.Key {
					continue next
				}
			}
		}
		labels := make([]Label, 0, len(s.Labels)+len(extra))
		labels = append(labels, s.Labels...)
		labels = append(labels, extra...)
		switch s.Kind {
		case "counter":
			r.CounterWith(s.Name, s.Help, labels...).Add(int64(s.Value))
		case "gauge":
			r.GaugeWith(s.Name, s.Help, labels...).Set(s.Value)
		case "histogram":
			h := r.HistogramWith(s.Name, s.Help, s.Bounds, labels...)
			if h == nil || len(h.bounds) != len(s.Bounds) || len(s.Buckets) != len(s.Bounds) {
				continue
			}
			// Buckets are cumulative per bound; convert to per-bucket
			// increments, the +Inf increment being Count minus the last
			// cumulative bound.
			prev := int64(0)
			for i, cum := range s.Buckets {
				h.counts[i].Add(cum - prev)
				prev = cum
			}
			h.counts[len(h.bounds)].Add(s.Count - prev)
			h.n.Add(s.Count)
			h.addSum(s.Value)
		}
	}
}
