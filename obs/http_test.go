package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestEndpointsMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "Up.").Add(3)
	tr := NewTracer(8)
	tr.Event("broadcast", 0, -1, "")
	e := Endpoints{
		Registry: r,
		Tracer:   tr,
		Health: func() Health {
			return Health{Status: "running", Round: 2, Rounds: 4, LiveWorkers: 3}
		},
	}
	srv := httptest.NewServer(e.Mux())
	defer srv.Close()

	get := func(path string) (string, http.Header) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header
	}

	body, hdr := get("/metrics")
	if ct := hdr.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(body, "up_total 3\n") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	body, hdr = get("/healthz")
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/healthz Content-Type = %q", ct)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "running" || h.Round != 2 || h.Rounds != 4 || h.LiveWorkers != 3 {
		t.Fatalf("/healthz = %+v", h)
	}
	if h.UptimeSeconds <= 0 {
		t.Fatalf("/healthz uptime not filled: %+v", h)
	}

	body, hdr = get("/trace")
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("/trace Content-Type = %q", ct)
	}
	if !strings.Contains(body, `"name":"broadcast"`) {
		t.Fatalf("/trace missing event:\n%s", body)
	}

	body, hdr = get("/trace?format=chrome")
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/trace?format=chrome Content-Type = %q", ct)
	}
	if !strings.Contains(body, `"traceEvents"`) {
		t.Fatalf("/trace?format=chrome not a trace document:\n%s", body)
	}

	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%s", body)
	}
}

// TestEndpointsFallsBackToDefaults checks a zero Endpoints serves the
// process-wide defaults resolved at request time, and "ok" health.
func TestEndpointsFallsBackToDefaults(t *testing.T) {
	srv := httptest.NewServer(Endpoints{}.Mux())
	defer srv.Close()

	r := NewRegistry()
	r.Counter("late_total", "Installed after the server started.").Inc()
	SetDefault(r)
	defer SetDefault(nil)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "late_total 1\n") {
		t.Fatalf("late-installed default registry not served:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" {
		t.Fatalf("default health status = %q", h.Status)
	}
}

// TestHealthzDegraded pins the alerting path: a degraded Health answers
// 503 with the alert reasons in the JSON body, so orchestrators probing
// /healthz see a diverging fleet without parsing metrics.
func TestHealthzDegraded(t *testing.T) {
	e := Endpoints{Health: func() Health {
		return Health{
			Status:   "alerting",
			Degraded: true,
			Alerts:   []string{"round 3: loss-divergence: loss is NaN"},
		}
	}}
	srv := httptest.NewServer(e.Mux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz = %s, want 503", resp.Status)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Degraded || len(h.Alerts) != 1 || !strings.Contains(h.Alerts[0], "loss-divergence") {
		t.Fatalf("degraded payload = %+v", h)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "Served.").Inc()
	bound, shutdown, err := Serve("127.0.0.1:0", Endpoints{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "served_total 1\n") {
		t.Fatalf("served metrics missing counter:\n%s", body)
	}
	shutdown()
	if _, err := http.Get("http://" + bound + "/metrics"); err == nil {
		t.Fatal("server still reachable after shutdown")
	}
}

func TestLogFormat(t *testing.T) {
	var b strings.Builder
	mu := NewLog(&b, "worker", "w1")
	mu.With("round", 2).Printf("update acked")
	line := b.String()
	if !strings.HasSuffix(line, " [worker/w1 round=2] update acked\n") {
		t.Fatalf("log line = %q", line)
	}
	// Timestamp prefix: 2006-01-02T15:04:05.000Z is 24 characters.
	if len(line) < 25 || line[4] != '-' || !strings.Contains(line[:25], "T") {
		t.Fatalf("log timestamp malformed: %q", line)
	}

	var nilLog *Log
	nilLog.Printf("dropped")
	if nilLog.With("k", "v") != nil {
		t.Fatal("nil log With returned non-nil")
	}
}
