package obs

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func collectNames(samples []Sample) []string {
	var out []string
	for _, s := range samples {
		out = append(out, s.Name+labelKey(s.Labels))
	}
	return out
}

// TestDeltaShipperCounter pins counter semantics: the first Collect ships
// the full value, later ones only the movement, and an unchanged counter
// is omitted entirely.
func TestDeltaShipperCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("steps_total", "Steps.")
	c.Add(3)
	d := NewDeltaShipper(r, nil)

	samples, _ := d.Collect()
	if len(samples) != 1 || samples[0].Value != 3 {
		t.Fatalf("first collect = %+v, want one sample of 3", samples)
	}
	if samples, _ = d.Collect(); len(samples) != 0 {
		t.Fatalf("unchanged counter shipped: %v", collectNames(samples))
	}
	c.Add(2)
	samples, _ = d.Collect()
	if len(samples) != 1 || samples[0].Value != 2 {
		t.Fatalf("delta collect = %+v, want one sample of 2", samples)
	}
}

// TestDeltaShipperGauge pins gauge semantics: latest value, omitted when
// bit-unchanged — including a held NaN, which must not ship forever.
func TestDeltaShipperGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp", "Temp.")
	g.Set(1.5)
	d := NewDeltaShipper(r, nil)

	samples, _ := d.Collect()
	if len(samples) != 1 || samples[0].Value != 1.5 {
		t.Fatalf("first collect = %+v", samples)
	}
	if samples, _ = d.Collect(); len(samples) != 0 {
		t.Fatalf("unchanged gauge shipped: %v", collectNames(samples))
	}
	g.Set(math.NaN())
	samples, _ = d.Collect()
	if len(samples) != 1 || !math.IsNaN(samples[0].Value) {
		t.Fatalf("NaN transition not shipped: %+v", samples)
	}
	if samples, _ = d.Collect(); len(samples) != 0 {
		t.Fatalf("held NaN re-shipped: %v", collectNames(samples))
	}
}

// TestDeltaShipperHistogram pins histogram semantics: deltas of count, sum
// and the cumulative-per-bound bucket layout, omitted when no new
// observations landed.
func TestDeltaShipperHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	d := NewDeltaShipper(r, nil)

	samples, _ := d.Collect()
	if len(samples) != 1 {
		t.Fatalf("first collect = %v", collectNames(samples))
	}
	s := samples[0]
	if s.Count != 2 || s.Value != 5.5 || !reflect.DeepEqual(s.Buckets, []int64{1, 2}) {
		t.Fatalf("first shipment = %+v", s)
	}
	if samples, _ = d.Collect(); len(samples) != 0 {
		t.Fatalf("idle histogram shipped: %v", collectNames(samples))
	}
	h.Observe(0.25)
	h.Observe(100)
	samples, _ = d.Collect()
	s = samples[0]
	// Delta buckets stay cumulative in index: one obs <=1 also counts <=10.
	if s.Count != 2 || s.Value != 100.25 || !reflect.DeepEqual(s.Buckets, []int64{1, 1}) {
		t.Fatalf("delta shipment = %+v", s)
	}
}

// TestDeltaShipperSkipLabels pins the loopback guard: series carrying a
// skip key (the coordinator's ingest label) are never shipped.
func TestDeltaShipperSkipLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("mine_total", "Mine.").Inc()
	r.CounterWith("theirs_total", "Ingested.", L("worker", "w9")).Inc()
	d := NewDeltaShipper(r, nil)
	d.SkipLabels = []string{"worker"}
	samples, _ := d.Collect()
	if got := collectNames(samples); !reflect.DeepEqual(got, []string{"mine_total"}) {
		t.Fatalf("shipped %v, want just mine_total", got)
	}
}

// TestDeltaShipperEvents pins event shipping: each event ships exactly
// once, and events marked Remote (ingested from elsewhere) never ship.
func TestDeltaShipperEvents(t *testing.T) {
	tr := NewTracer(8)
	tr.Event("a", 0, 0, "")
	tr.Record(Event{Name: "echo", Remote: true})
	d := NewDeltaShipper(nil, tr)

	_, events := d.Collect()
	if len(events) != 1 || events[0].Name != "a" {
		t.Fatalf("first collect events = %+v", events)
	}
	if _, events = d.Collect(); len(events) != 0 {
		t.Fatalf("events re-shipped: %+v", events)
	}
	tr.Event("b", 1, 0, "")
	_, events = d.Collect()
	if len(events) != 1 || events[0].Name != "b" {
		t.Fatalf("incremental collect events = %+v", events)
	}
}

// TestNilDeltaShipper pins the no-op contract for nil shippers and
// shippers over nil registry/tracer.
func TestNilDeltaShipper(t *testing.T) {
	var d *DeltaShipper
	if s, e := d.Collect(); s != nil || e != nil {
		t.Fatalf("nil shipper collected %v, %v", s, e)
	}
	d = NewDeltaShipper(nil, nil)
	if s, e := d.Collect(); s != nil || e != nil {
		t.Fatalf("empty shipper collected %v, %v", s, e)
	}
}

// TestIngestRoundTrip ships a registry's full first snapshot into a fresh
// registry under a worker label and checks the scraped totals match the
// source for every kind.
func TestIngestRoundTrip(t *testing.T) {
	src := NewRegistry()
	src.Counter("steps_total", "Steps.").Add(4)
	src.Gauge("temp", "Temp.").Set(-2.5)
	h := src.Histogram("lat", "Latency.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	dst := NewRegistry()
	samples, _ := NewDeltaShipper(src, nil).Collect()
	dst.Ingest(samples, L("worker", "w0"))

	wl := L("worker", "w0")
	if got := dst.CounterWith("steps_total", "Steps.", wl).Value(); got != 4 {
		t.Fatalf("ingested counter = %d", got)
	}
	if got := dst.GaugeWith("temp", "Temp.", wl).Value(); got != -2.5 {
		t.Fatalf("ingested gauge = %g", got)
	}
	ih := dst.HistogramWith("lat", "Latency.", []float64{1, 10}, wl)
	if ih.Count() != 3 || ih.Sum() != 55.5 {
		t.Fatalf("ingested histogram count=%d sum=%g", ih.Count(), ih.Sum())
	}
	// Scrape-level check: per-bound cumulative buckets survive the
	// cumulative→increment→cumulative round trip, +Inf included.
	var b strings.Builder
	if err := dst.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`lat_bucket{worker="w0",le="1"} 1`,
		`lat_bucket{worker="w0",le="10"} 2`,
		`lat_bucket{worker="w0",le="+Inf"} 3`,
	} {
		if !strings.Contains(b.String(), line) {
			t.Fatalf("scrape missing %q:\n%s", line, b.String())
		}
	}
}

// TestIngestDeltaAccumulates pins the steady-state path: successive delta
// shipments accumulate in the ingesting registry to the source's totals.
func TestIngestDeltaAccumulates(t *testing.T) {
	src := NewRegistry()
	dst := NewRegistry()
	d := NewDeltaShipper(src, nil)
	c := src.Counter("steps_total", "Steps.")
	h := src.Histogram("lat", "Latency.", []float64{1})

	c.Add(3)
	h.Observe(0.5)
	samples, _ := d.Collect()
	dst.Ingest(samples, L("worker", "w0"))
	c.Add(2)
	h.Observe(2)
	samples, _ = d.Collect()
	dst.Ingest(samples, L("worker", "w0"))

	wl := L("worker", "w0")
	if got := dst.CounterWith("steps_total", "Steps.", wl).Value(); got != 5 {
		t.Fatalf("accumulated counter = %d, want 5", got)
	}
	ih := dst.HistogramWith("lat", "Latency.", []float64{1}, wl)
	if ih.Count() != 2 || ih.Sum() != 2.5 {
		t.Fatalf("accumulated histogram count=%d sum=%g", ih.Count(), ih.Sum())
	}
}

// TestIngestRejectsHostileSamples pins the guards: samples already
// carrying an extra-label key are dropped (double ingestion), as are
// histograms whose bucket layout clashes with the existing series.
func TestIngestRejectsHostileSamples(t *testing.T) {
	dst := NewRegistry()
	dst.Ingest([]Sample{
		{Name: "echo_total", Kind: "counter", Value: 7, Labels: []Label{L("worker", "w1")}},
	}, L("worker", "w0"))
	if n := len(dst.Snapshot()); n != 0 {
		t.Fatalf("already-labeled sample ingested: %v", dst.Snapshot())
	}

	dst.Histogram("lat", "Latency.", []float64{1, 2}).Observe(0.5)
	dst.Ingest([]Sample{
		{Name: "lat", Kind: "histogram", Count: 1, Bounds: []float64{5}, Buckets: []int64{1}},
	})
	if got := dst.Histogram("lat", "Latency.", []float64{1, 2}).Count(); got != 1 {
		t.Fatalf("bound-mismatched histogram corrupted the series: count %d", got)
	}
	// Bucket slice shorter than the bound slice: dropped, not misindexed.
	dst.Ingest([]Sample{
		{Name: "lat2", Kind: "histogram", Count: 3, Bounds: []float64{1, 2}, Buckets: []int64{1}},
	})
	if got := dst.Histogram("lat2", "", []float64{1, 2}).Count(); got != 0 {
		t.Fatalf("short-bucket histogram ingested: count %d", got)
	}
}

// TestIngestNaNGauge checks a NaN gauge value survives ingestion — loss
// gauges go NaN on divergence and the fleet view must show that.
func TestIngestNaNGauge(t *testing.T) {
	dst := NewRegistry()
	dst.Ingest([]Sample{{Name: "loss", Kind: "gauge", Value: math.NaN()}}, L("worker", "w0"))
	if got := dst.GaugeWith("loss", "", L("worker", "w0")).Value(); !math.IsNaN(got) {
		t.Fatalf("ingested NaN gauge = %g", got)
	}
}

// TestShipperCursorSurvivesRingAging checks EventsSince-based shipping
// tolerates the tracer ring overwriting events between collects: aged
// events are lost, not duplicated, and newer ones still ship.
func TestShipperCursorSurvivesRingAging(t *testing.T) {
	tr := NewTracer(4)
	d := NewDeltaShipper(nil, tr)
	d.Collect()
	for i := 0; i < 10; i++ {
		tr.Record(Event{Name: "e", Round: i, Start: time.Unix(0, int64(i))})
	}
	_, events := d.Collect()
	if len(events) != 4 {
		t.Fatalf("collected %d events from a capacity-4 ring, want 4", len(events))
	}
	for i, e := range events {
		if e.Round != 6+i {
			t.Fatalf("event %d has round %d, want %d (oldest-first, newest retained)", i, e.Round, 6+i)
		}
	}
}
