package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one dimension attached to a metric series. Series identity is
// the metric name plus the sorted label set.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DurationBuckets is the default histogram bucket layout for latencies in
// seconds, spanning 100µs..10s — wide enough for both a single kernel step
// and a full fleet round.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing atomic counter. All methods are
// no-ops on a nil receiver, so handles obtained from a nil Registry are
// safe to use unconditionally.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can move in either direction. All
// methods are no-ops on a nil receiver.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger — the idiom for peak-usage
// gauges (peak RAM, peak spill bytes).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// All methods are no-ops on a nil receiver.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; implicit +Inf bucket follows
	counts  []atomic.Int64
	n       atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.n.Add(1)
	h.addSum(v)
}

// addSum atomically adds v to the running sum.
func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, labels) pair and its typed handle.
type series struct {
	name   string
	labels []Label // sorted by key
	key    string  // name + canonical label rendering
	kind   metricKind
	help   string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric series and renders them. The zero value is not
// usable; call NewRegistry. A nil *Registry is usable everywhere and
// hands out nil (no-op) handles.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// labelKey renders sorted labels canonically, e.g. `{phase="fold"}`.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the series for (name, labels), creating it with the given
// kind on first use. A kind clash with an existing series returns nil,
// which downstream handles treat as "disabled" — instrumentation must
// never be able to crash the process it observes.
func (r *Registry) get(name, help string, kind metricKind, labels []Label, bounds []float64) *series {
	if r == nil {
		return nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := name + labelKey(ls)

	r.mu.RLock()
	s := r.series[key]
	r.mu.RUnlock()
	if s == nil {
		r.mu.Lock()
		if s = r.series[key]; s == nil {
			s = &series{name: name, labels: ls, key: key, kind: kind, help: help}
			switch kind {
			case kindCounter:
				s.c = new(Counter)
			case kindGauge:
				s.g = new(Gauge)
			case kindHistogram:
				if len(bounds) == 0 {
					bounds = DurationBuckets
				}
				s.h = &Histogram{
					bounds: append([]float64(nil), bounds...),
					counts: make([]atomic.Int64, len(bounds)+1),
				}
			}
			r.series[key] = s
		}
		r.mu.Unlock()
	}
	if s.kind != kind {
		return nil
	}
	return s
}

// Counter returns the counter named name, creating it on first use. On a
// nil registry (or a kind clash) the returned nil handle is a no-op.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, help)
}

// CounterWith is Counter with labels.
func (r *Registry) CounterWith(name, help string, labels ...Label) *Counter {
	if s := r.get(name, help, kindCounter, labels, nil); s != nil {
		return s.c
	}
	return nil
}

// Gauge returns the gauge named name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, help)
}

// GaugeWith is Gauge with labels.
func (r *Registry) GaugeWith(name, help string, labels ...Label) *Gauge {
	if s := r.get(name, help, kindGauge, labels, nil); s != nil {
		return s.g
	}
	return nil
}

// Histogram returns the histogram named name, creating it on first use
// with the given upper bounds (DurationBuckets when bounds is nil).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramWith(name, help, bounds)
}

// HistogramWith is Histogram with labels.
func (r *Registry) HistogramWith(name, help string, bounds []float64, labels ...Label) *Histogram {
	if s := r.get(name, help, kindHistogram, labels, bounds); s != nil {
		return s.h
	}
	return nil
}

// Sample is one series in a Snapshot. The same shape carries deltas in a
// telemetry shipment (see DeltaShipper): there Value and Count are the
// movement since the previous shipment for counters and histograms, and
// the latest value for gauges.
type Sample struct {
	Name   string
	Help   string
	Labels []Label
	Kind   string  // "counter", "gauge" or "histogram"
	Value  float64 // counter/gauge value; histogram sum
	Count  int64   // histogram observation count
	// Buckets holds the cumulative count per upper bound for histograms
	// (parallel to Bounds), excluding the implicit +Inf bucket whose
	// cumulative count is Count.
	Bounds  []float64
	Buckets []int64
}

// sortedSeries returns the series sorted by (name, label key) — the
// stable order both Snapshot and WritePrometheus use.
func (r *Registry) sortedSeries() []*series {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].key < all[j].key
	})
	return all
}

// Snapshot returns a point-in-time copy of every series, sorted by name
// then labels. Nil registries return nil.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	all := r.sortedSeries()
	out := make([]Sample, 0, len(all))
	for _, s := range all {
		smp := Sample{Name: s.name, Help: s.help, Labels: append([]Label(nil), s.labels...), Kind: s.kind.String()}
		switch s.kind {
		case kindCounter:
			smp.Value = float64(s.c.Value())
		case kindGauge:
			smp.Value = s.g.Value()
		case kindHistogram:
			smp.Value = s.h.Sum()
			smp.Count = s.h.Count()
			smp.Bounds = append([]float64(nil), s.h.bounds...)
			cum := int64(0)
			for i := range s.h.bounds {
				cum += s.h.counts[i].Load()
				smp.Buckets = append(smp.Buckets, cum)
			}
		}
		out = append(out, smp)
	}
	return out
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histLabelKey renders the label set plus an le pair, keeping the base
// labels canonical and appending le last (Prometheus accepts any order).
func histLabelKey(labels []Label, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString(`",`)
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"}`)
	return b.String()
}

// WritePrometheus renders every series in the Prometheus text exposition
// format (version 0.0.4): series sorted by name then labels, one # HELP
// and # TYPE pair per metric name, label values escaped. A nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastName string
	for _, s := range r.sortedSeries() {
		if s.name != lastName {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				s.name, escapeHelp(s.help), s.name, s.kind); err != nil {
				return err
			}
			lastName = s.name
		}
		lk := labelKey(s.labels)
		var err error
		switch s.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", s.name, lk, s.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", s.name, lk, formatFloat(s.g.Value()))
		case kindHistogram:
			// One pass over the bucket array: the +Inf cumulative count
			// doubles as _count so a single scrape is self-consistent even
			// while observations land concurrently.
			cum := int64(0)
			for i, ub := range s.h.bounds {
				cum += s.h.counts[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
					s.name, histLabelKey(s.labels, formatFloat(ub)), cum); err != nil {
					return err
				}
			}
			cum += s.h.counts[len(s.h.bounds)].Load()
			if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
				s.name, histLabelKey(s.labels, "+Inf"), cum); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", s.name, lk, formatFloat(s.h.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", s.name, lk, cum)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
