module github.com/edgeml/edgetrain

go 1.24
