package store

import (
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/schedule"
)

// RAM is the in-memory slot store: every checkpoint is retained as a
// zero-copy tensor reference. It reproduces the executor's historical
// behaviour exactly — no serialization, no I/O — and ignores tier
// annotations (a disk-tier snapshot simply stays in RAM).
type RAM struct {
	table slotTable[*tensor.Tensor]
	stats Stats
}

// NewRAM returns an empty in-memory store. Slots grow on demand.
func NewRAM() *RAM { return &RAM{} }

// Put implements Store by retaining t by reference.
func (r *RAM) Put(slot int, _ schedule.Tier, t *tensor.Tensor) error {
	if err := r.table.put(slot, t); err != nil {
		return err
	}
	r.stats.RAMBytes += t.Bytes()
	if r.stats.RAMBytes > r.stats.PeakRAMBytes {
		r.stats.PeakRAMBytes = r.stats.RAMBytes
	}
	return nil
}

// Get implements Store by returning the stored reference.
func (r *RAM) Get(slot int) (*tensor.Tensor, error) { return r.table.get(slot) }

// Free implements Store.
func (r *RAM) Free(slot int) error {
	t, err := r.table.free(slot)
	if err != nil {
		return err
	}
	r.stats.RAMBytes -= t.Bytes()
	return nil
}

// BytesResident implements Store.
func (r *RAM) BytesResident() int64 { return r.stats.RAMBytes }

// Holds implements Store: the RAM store aliases stored tensors.
func (r *RAM) Holds(t *tensor.Tensor) bool {
	for i, occ := range r.table.occupied {
		if occ && r.table.entries[i] == t {
			return true
		}
	}
	return false
}

// Stats implements Store.
func (r *RAM) Stats() Stats { return r.stats }

// Close implements Store by dropping every retained reference.
func (r *RAM) Close() error {
	r.table = slotTable[*tensor.Tensor]{}
	r.stats.RAMBytes = 0
	return nil
}
