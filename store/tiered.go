package store

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/schedule"
)

// Tiered routes each slot to RAM or disk according to the tier the schedule
// annotated on its Snapshot action: TierRAM slots stay zero-copy tensor
// references, TierDisk slots are serialized to the flash store. Slot indices
// may be recycled across tiers (the two-level planner reuses a freed flash
// slot for in-RAM snapshots), so the routing is recorded per Put and cleared
// on Free.
type Tiered struct {
	ram  *RAM
	disk *Disk
	// loc records, per occupied slot, which backing store holds it.
	loc slotTable[schedule.Tier]
}

// NewTiered returns a store that keeps RAM-tier slots in memory and spills
// disk-tier slots into dir (a temporary directory when dir is empty, removed
// by Close).
func NewTiered(dir string) (*Tiered, error) {
	disk, err := NewDisk(dir)
	if err != nil {
		return nil, err
	}
	return &Tiered{ram: NewRAM(), disk: disk}, nil
}

// Dir returns the flash tier's spill directory.
func (td *Tiered) Dir() string { return td.disk.Dir() }

// Put implements Store, routing by the snapshot's tier annotation.
func (td *Tiered) Put(slot int, tier schedule.Tier, t *tensor.Tensor) error {
	switch tier {
	case schedule.TierRAM, schedule.TierDisk:
	default:
		return fmt.Errorf("store: unknown tier %v for slot %d", tier, slot)
	}
	if err := td.loc.put(slot, tier); err != nil {
		return err
	}
	var err error
	if tier == schedule.TierDisk {
		err = td.disk.Put(slot, tier, t)
	} else {
		err = td.ram.Put(slot, tier, t)
	}
	if err != nil {
		td.loc.free(slot)
		return err
	}
	return nil
}

// Get implements Store.
func (td *Tiered) Get(slot int) (*tensor.Tensor, error) {
	tier, err := td.loc.get(slot)
	if err != nil {
		return nil, err
	}
	if tier == schedule.TierDisk {
		return td.disk.Get(slot)
	}
	return td.ram.Get(slot)
}

// Free implements Store.
func (td *Tiered) Free(slot int) error {
	tier, err := td.loc.free(slot)
	if err != nil {
		return err
	}
	if tier == schedule.TierDisk {
		return td.disk.Free(slot)
	}
	return td.ram.Free(slot)
}

// BytesResident implements Store: only the RAM tier counts.
func (td *Tiered) BytesResident() int64 { return td.ram.BytesResident() }

// Holds implements Store: only RAM-tier slots alias caller tensors.
func (td *Tiered) Holds(t *tensor.Tensor) bool { return td.ram.Holds(t) }

// Stats implements Store, merging both tiers.
func (td *Tiered) Stats() Stats { return td.ram.Stats().merge(td.disk.Stats()) }

// Close implements Store, releasing both tiers.
func (td *Tiered) Close() error {
	td.loc = slotTable[schedule.Tier]{}
	err := td.ram.Close()
	if derr := td.disk.Close(); err == nil {
		err = derr
	}
	return err
}
