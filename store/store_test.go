package store

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/schedule"
)

// awkwardTensor exercises the bit-exactness of the disk round trip: negative
// zero, infinities, NaN, denormals.
func awkwardTensor() *tensor.Tensor {
	t := tensor.New(2, 3)
	vals := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), 5e-324}
	copy(t.Data(), vals)
	return t
}

func bitsEqual(a, b *tensor.Tensor) bool {
	if !a.SameShape(b) || a.Size() != b.Size() {
		return false
	}
	for i := range a.Data() {
		if math.Float64bits(a.Data()[i]) != math.Float64bits(b.Data()[i]) {
			return false
		}
	}
	return true
}

// storeUnderTest builds each implementation rooted in a test temp dir.
func storesUnderTest(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := NewTiered(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"ram": NewRAM(), "disk": disk, "tiered": tiered}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, st := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			want := awkwardTensor()
			rng := tensor.NewRNG(1)
			big := tensor.RandNormal(rng, 0, 1, 3, 4, 5)

			if err := st.Put(0, schedule.TierRAM, want); err != nil {
				t.Fatal(err)
			}
			if err := st.Put(3, schedule.TierDisk, big); err != nil {
				t.Fatal(err)
			}
			got, err := st.Get(0)
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(want, got) {
				t.Fatalf("slot 0 round trip not bit-exact: %v vs %v", want, got)
			}
			got3, err := st.Get(3)
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(big, got3) {
				t.Fatal("slot 3 round trip not bit-exact")
			}
			// Slots are single-occupancy.
			if err := st.Put(0, schedule.TierRAM, big); err == nil {
				t.Fatal("double Put into slot 0 accepted")
			}
			if err := st.Free(0); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get(0); err == nil {
				t.Fatal("Get from freed slot succeeded")
			}
			if err := st.Free(0); err == nil {
				t.Fatal("double Free succeeded")
			}
			if _, err := st.Get(99); err == nil {
				t.Fatal("Get from never-used slot succeeded")
			}
			if err := st.Put(-1, schedule.TierRAM, big); err == nil {
				t.Fatal("negative slot accepted")
			}
			// Re-Put into the freed slot works (slot recycling).
			if err := st.Put(0, schedule.TierDisk, big); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRAMStoreAccounting(t *testing.T) {
	st := NewRAM()
	a := tensor.New(10)    // 80 bytes
	b := tensor.New(5, 10) // 400 bytes
	st.Put(0, schedule.TierRAM, a)
	st.Put(1, schedule.TierDisk, b) // tier ignored: RAM store keeps it resident
	if got := st.BytesResident(); got != a.Bytes()+b.Bytes() {
		t.Fatalf("BytesResident = %d, want %d", got, a.Bytes()+b.Bytes())
	}
	if !st.Holds(a) || !st.Holds(b) {
		t.Fatal("RAM store must report held references")
	}
	if st.Holds(tensor.New(10)) {
		t.Fatal("RAM store claims to hold a foreign tensor")
	}
	st.Free(0)
	if got := st.BytesResident(); got != b.Bytes() {
		t.Fatalf("BytesResident after free = %d, want %d", got, b.Bytes())
	}
	if st.Holds(a) {
		t.Fatal("freed tensor still reported as held")
	}
	stats := st.Stats()
	if stats.PeakRAMBytes != a.Bytes()+b.Bytes() {
		t.Fatalf("PeakRAMBytes = %d, want %d", stats.PeakRAMBytes, a.Bytes()+b.Bytes())
	}
	if stats.DiskWrites != 0 || stats.DiskBytes != 0 {
		t.Fatalf("RAM store reported disk activity: %+v", stats)
	}
}

func TestDiskStoreAccountingAndCleanup(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(100) // 800 data bytes + header
	if err := st.Put(2, schedule.TierDisk, x); err != nil {
		t.Fatal(err)
	}
	if st.BytesResident() != 0 {
		t.Fatal("disk store must hold no RAM")
	}
	if st.Holds(x) {
		t.Fatal("disk store must not alias caller tensors")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.bin"))
	if len(files) != 1 {
		t.Fatalf("expected 1 spill file, found %v", files)
	}
	stats := st.Stats()
	if stats.DiskWrites != 1 || stats.DiskBytes <= x.Bytes() {
		t.Fatalf("unexpected disk stats %+v (DiskBytes must include the header)", stats)
	}
	if _, err := st.Get(2); err != nil {
		t.Fatal(err)
	}
	if st.Stats().DiskReads != 1 {
		t.Fatalf("DiskReads = %d, want 1", st.Stats().DiskReads)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ = filepath.Glob(filepath.Join(dir, "ckpt-*.bin"))
	if len(files) != 0 {
		t.Fatalf("Close left spill files behind: %v", files)
	}
}

func TestDiskStoreOwnsTempDir(t *testing.T) {
	st, err := NewDisk("")
	if err != nil {
		t.Fatal(err)
	}
	dir := st.Dir()
	if err := st.Put(0, schedule.TierDisk, tensor.New(4)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("Close did not remove the owned temp dir %s", dir)
	}
}

func TestTieredRouting(t *testing.T) {
	st, err := NewTiered(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ramT := tensor.New(10)
	diskT := tensor.New(20)
	if err := st.Put(0, schedule.TierRAM, ramT); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(1, schedule.TierDisk, diskT); err != nil {
		t.Fatal(err)
	}
	if got := st.BytesResident(); got != ramT.Bytes() {
		t.Fatalf("only the RAM tier counts as resident: %d vs %d", got, ramT.Bytes())
	}
	if !st.Holds(ramT) || st.Holds(diskT) {
		t.Fatal("Holds must reflect the routing")
	}
	got, err := st.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != ramT {
		t.Fatal("RAM-tier Get must return the stored reference")
	}
	got, err = st.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if got == diskT {
		t.Fatal("disk-tier Get must return a deserialized copy, not the original")
	}
	if !bitsEqual(got, diskT) {
		t.Fatal("disk-tier round trip not bit-exact")
	}
	stats := st.Stats()
	if stats.DiskWrites != 1 || stats.DiskReads != 1 || stats.RAMBytes != ramT.Bytes() {
		t.Fatalf("merged stats wrong: %+v", stats)
	}

	// Slot recycling across tiers: free the disk slot, reuse it in RAM.
	if err := st.Free(1); err != nil {
		t.Fatal(err)
	}
	if st.Stats().DiskBytes != 0 {
		t.Fatal("freed disk slot still counted")
	}
	if err := st.Put(1, schedule.TierRAM, diskT); err != nil {
		t.Fatal(err)
	}
	if !st.Holds(diskT) {
		t.Fatal("recycled slot not routed to RAM")
	}
}
