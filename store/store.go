// Package store provides the pluggable checkpoint storage engine behind the
// chain executor. A Store holds the intermediate states a checkpointing
// schedule snapshots, keyed by slot index, and accounts for where the bytes
// live: the paper's Waggle node has 2 GB of RAM but a large SD card, so the
// two-level scheme of Section VI keeps a few states as in-memory tensor
// references and serializes the rest to flash.
//
// Three implementations cover the execution modes:
//
//   - RAM keeps every slot as a zero-copy tensor reference (the historical
//     executor behaviour).
//   - Disk serializes every slot to a file, so checkpoints cost I/O instead
//     of memory.
//   - Tiered routes each slot to RAM or disk according to the tier the
//     schedule annotated on its Snapshot action, executing two-level plans
//     with real spilling.
//
// Stores are not safe for concurrent use; the executor drives them from a
// single goroutine.
package store

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/schedule"
)

// Stats is the storage accounting of a store: where the checkpoint bytes
// currently live, the high-water marks, and the I/O the disk tier performed.
type Stats struct {
	// RAMBytes is the checkpoint data currently resident in RAM.
	RAMBytes int64
	// DiskBytes is the checkpoint data currently resident on disk.
	DiskBytes int64
	// PeakRAMBytes and PeakDiskBytes are the observed high-water marks.
	PeakRAMBytes  int64
	PeakDiskBytes int64
	// DiskWrites and DiskReads count slot serializations and restores.
	DiskWrites int
	DiskReads  int
}

// merge combines per-tier stats into one view.
func (s Stats) merge(o Stats) Stats {
	return Stats{
		RAMBytes:      s.RAMBytes + o.RAMBytes,
		DiskBytes:     s.DiskBytes + o.DiskBytes,
		PeakRAMBytes:  max(s.PeakRAMBytes, o.PeakRAMBytes),
		PeakDiskBytes: max(s.PeakDiskBytes, o.PeakDiskBytes),
		DiskWrites:    s.DiskWrites + o.DiskWrites,
		DiskReads:     s.DiskReads + o.DiskReads,
	}
}

// Store is a slot-addressed checkpoint container. The slot indices are the
// ones the schedule's Snapshot/Restore/Free actions carry; a slot holds at
// most one state at a time.
type Store interface {
	// Put stores t in the given free slot. tier is the storage medium the
	// schedule assigned to this snapshot; single-medium stores ignore it.
	// Implementations either retain t by reference (RAM) or serialize it
	// (disk); in both cases the caller must not mutate t while it is stored.
	Put(slot int, tier schedule.Tier, t *tensor.Tensor) error
	// Get returns the state stored in the slot. RAM-tier slots return the
	// stored reference; disk-tier slots deserialize a fresh tensor.
	Get(slot int) (*tensor.Tensor, error)
	// Free releases the slot.
	Free(slot int) error
	// BytesResident returns the checkpoint bytes currently held in RAM.
	BytesResident() int64
	// Holds reports whether the store retains t by reference, so callers
	// accounting RAM do not double-count a tensor that is both the working
	// state and a stored checkpoint.
	Holds(t *tensor.Tensor) bool
	// Stats returns the storage accounting accumulated so far.
	Stats() Stats
	// Close releases every slot and any backing resources (e.g. the disk
	// store's spill directory). The store must not be used afterwards.
	Close() error
}

// slotTable is the bookkeeping shared by the implementations: a growable
// dense table of occupied slots.
type slotTable[T any] struct {
	occupied []bool
	entries  []T
}

func (st *slotTable[T]) grow(slot int) {
	for len(st.occupied) <= slot {
		st.occupied = append(st.occupied, false)
		var zero T
		st.entries = append(st.entries, zero)
	}
}

func (st *slotTable[T]) put(slot int, v T) error {
	if slot < 0 {
		return fmt.Errorf("store: negative slot %d", slot)
	}
	st.grow(slot)
	if st.occupied[slot] {
		return fmt.Errorf("store: slot %d already occupied", slot)
	}
	st.occupied[slot] = true
	st.entries[slot] = v
	return nil
}

func (st *slotTable[T]) get(slot int) (T, error) {
	var zero T
	if slot < 0 || slot >= len(st.occupied) || !st.occupied[slot] {
		return zero, fmt.Errorf("store: slot %d is empty", slot)
	}
	return st.entries[slot], nil
}

func (st *slotTable[T]) free(slot int) (T, error) {
	v, err := st.get(slot)
	if err != nil {
		return v, err
	}
	var zero T
	st.occupied[slot] = false
	st.entries[slot] = zero
	return v, nil
}
