package store

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/schedule"
)

// Disk serializes every checkpoint to a file, one per slot, in the raw
// tensor codec from internal/nn (bit-exact round trip, staged through the
// pooled byte scratch so steady-state spilling allocates only the restored
// tensors). It models the flash tier of the paper's Waggle node: checkpoints
// cost I/O and SD-card space instead of RAM.
type Disk struct {
	dir     string
	ownsDir bool
	table   slotTable[int64] // occupied slot -> encoded byte size
	stats   Stats
}

// NewDisk returns a store that spills into dir. If dir is empty a temporary
// directory is created and removed again by Close.
func NewDisk(dir string) (*Disk, error) {
	owns := false
	if dir == "" {
		d, err := os.MkdirTemp("", "edgetrain-ckpt-*")
		if err != nil {
			return nil, fmt.Errorf("store: creating spill directory: %w", err)
		}
		dir, owns = d, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating spill directory: %w", err)
	}
	return &Disk{dir: dir, ownsDir: owns}, nil
}

// Dir returns the spill directory.
func (d *Disk) Dir() string { return d.dir }

func (d *Disk) path(slot int) string {
	return filepath.Join(d.dir, fmt.Sprintf("ckpt-%d.bin", slot))
}

// Put implements Store by serializing t to the slot's file. The tier is
// ignored: every slot of a pure disk store lives on disk.
func (d *Disk) Put(slot int, _ schedule.Tier, t *tensor.Tensor) error {
	n := nn.EncodedTensorBytes(t)
	if err := d.table.put(slot, n); err != nil {
		return err
	}
	f, err := os.Create(d.path(slot))
	if err == nil {
		if err = nn.WriteTensor(f, t); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
	}
	if err != nil {
		d.table.free(slot)
		// Do not leave a truncated spill file behind (the directory may be
		// caller-owned and outlive this store).
		os.Remove(d.path(slot))
		return fmt.Errorf("store: spilling slot %d: %w", slot, err)
	}
	d.stats.DiskWrites++
	d.stats.DiskBytes += n
	if d.stats.DiskBytes > d.stats.PeakDiskBytes {
		d.stats.PeakDiskBytes = d.stats.DiskBytes
	}
	return nil
}

// Get implements Store by deserializing the slot's file into a fresh tensor.
func (d *Disk) Get(slot int) (*tensor.Tensor, error) {
	if _, err := d.table.get(slot); err != nil {
		return nil, err
	}
	f, err := os.Open(d.path(slot))
	if err != nil {
		return nil, fmt.Errorf("store: restoring slot %d: %w", slot, err)
	}
	defer f.Close()
	t, err := nn.ReadTensor(f)
	if err != nil {
		return nil, fmt.Errorf("store: restoring slot %d: %w", slot, err)
	}
	d.stats.DiskReads++
	return t, nil
}

// Free implements Store by removing the slot's file.
func (d *Disk) Free(slot int) error {
	n, err := d.table.free(slot)
	if err != nil {
		return err
	}
	d.stats.DiskBytes -= n
	if err := os.Remove(d.path(slot)); err != nil {
		return fmt.Errorf("store: freeing slot %d: %w", slot, err)
	}
	return nil
}

// BytesResident implements Store: a disk store holds no checkpoint RAM.
func (d *Disk) BytesResident() int64 { return 0 }

// Holds implements Store: disk slots never alias caller tensors.
func (d *Disk) Holds(*tensor.Tensor) bool { return false }

// Stats implements Store.
func (d *Disk) Stats() Stats { return d.stats }

// Close implements Store, removing every spill file (and the directory
// itself when the store created it).
func (d *Disk) Close() error {
	var firstErr error
	for slot, occ := range d.table.occupied {
		if occ {
			if err := d.Free(slot); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if d.ownsDir {
		if err := os.RemoveAll(d.dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
