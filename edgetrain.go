package edgetrain

// The root package re-exports the public planning API so callers can depend
// on github.com/edgeml/edgetrain alone: the Strategy interface and registry
// from plan/, and the streaming Schedule vocabulary from schedule/. The
// algorithms themselves live in internal/checkpoint and are reached through
// the registry.

import (
	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/coord"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/plan"
	"github.com/edgeml/edgetrain/schedule"
)

// Re-exported planning types; see package plan.
type (
	// Strategy plans checkpointing schedules for sequential chains.
	Strategy = plan.Strategy
	// StrategyInfo describes a registered strategy.
	StrategyInfo = plan.StrategyInfo
	// ChainSpec describes the chain a schedule is planned for.
	ChainSpec = plan.ChainSpec
	// Option tunes a strategy; see plan.WithSlots and friends.
	Option = plan.Option
)

// Re-exported schedule types; see package schedule.
type (
	// Schedule is the streaming interface all planned schedules implement.
	Schedule = schedule.Schedule
	// Action is one primitive operation of a schedule.
	Action = schedule.Action
	// ActionKind enumerates the primitive schedule operations.
	ActionKind = schedule.ActionKind
	// Trace is the validated cost summary of a schedule.
	Trace = schedule.Trace
)

// Registry entry points; see package plan.
var (
	// Register makes a strategy selectable by name.
	Register = plan.Register
	// Lookup returns the strategy registered under a name.
	Lookup = plan.Lookup
	// Strategies returns the sorted names of all registered strategies.
	Strategies = plan.Strategies
	// Plan builds a schedule by strategy name (plan.Build).
	Plan = plan.Build
)

// Re-exported strategy options; see package plan.
var (
	// WithSlots sets the checkpoint-slot budget.
	WithSlots = plan.WithSlots
	// WithSegments sets the uniform segment count.
	WithSegments = plan.WithSegments
	// WithInterval sets the periodic checkpoint interval.
	WithInterval = plan.WithInterval
	// WithDiskSlots sets the flash-tier checkpoint count.
	WithDiskSlots = plan.WithDiskSlots
	// WithRho sets a recompute-factor budget.
	WithRho = plan.WithRho
	// WithBackwardRatio sets the backward/forward cost ratio.
	WithBackwardRatio = plan.WithBackwardRatio
	// WithMemoryBudget sets the RAM byte budget for the "auto" strategy.
	WithMemoryBudget = plan.WithMemoryBudget
	// WithFlashCost sets the per-state flash write/read costs.
	WithFlashCost = plan.WithFlashCost
	// AutoSelect reports which strategy "auto" would pick for a budget.
	AutoSelect = plan.AutoSelect
)

// AutoChoice describes the selection of the budget-aware "auto" strategy.
type AutoChoice = plan.AutoChoice

// Re-exported fleet-training types; see package fleet.
type (
	// Fleet coordinates training rounds across concurrent edge workers.
	Fleet = fleet.Fleet
	// FleetConfig controls a fleet training run.
	FleetConfig = fleet.Config
	// FleetWorkerSpec describes one edge worker of the fleet.
	FleetWorkerSpec = fleet.WorkerSpec
	// FleetReport is the measured outcome of a fleet run.
	FleetReport = fleet.Report
	// Aggregator merges per-worker round results into the global model.
	Aggregator = fleet.Aggregator
)

// Fleet entry points; see package fleet.
var (
	// NewFleet builds a fleet over a model factory and a dataset.
	NewFleet = fleet.New
	// NewFedAvg returns the federated-averaging aggregator.
	NewFedAvg = fleet.NewFedAvg
	// NewGradAllReduce returns the synchronous gradient all-reduce
	// aggregator (bit-identical to single-node training on the union of the
	// shards).
	NewGradAllReduce = fleet.NewGradAllReduce
	// NewAggregator resolves an aggregation mode by name.
	NewAggregator = fleet.NewAggregator
)

// Re-exported distributed-coordination types; see package coord.
type (
	// Coordinator drives fleet training rounds over a real transport.
	Coordinator = coord.Coordinator
	// CoordinatorConfig controls a coordinated distributed run.
	CoordinatorConfig = coord.Config
	// CoordTransport abstracts the wire (TCP or in-process loopback).
	CoordTransport = coord.Transport
	// WorkerAssignment is the slot and run configuration a worker receives.
	WorkerAssignment = coord.Assignment
	// EdgeWorkerOptions configures one distributed edge worker process.
	EdgeWorkerOptions = coord.WorkerOptions
	// EdgeWorkerResult summarises one worker process's run.
	EdgeWorkerResult = coord.WorkerResult
)

// Distributed-coordination entry points; see package coord.
var (
	// NewCoordinator builds a coordinator around a model factory.
	NewCoordinator = coord.New
	// RunEdgeWorker joins a coordinator and trains until the run completes.
	RunEdgeWorker = coord.RunWorker
	// NewLoopbackTransport returns the in-process transport used by the
	// TCP-equivalence tests.
	NewLoopbackTransport = coord.NewLoopback
)

// Tier identifies the storage medium a checkpoint slot is written to.
type Tier = schedule.Tier

// The storage tiers; see schedule.Tier.
const (
	TierRAM  = schedule.TierRAM
	TierDisk = schedule.TierDisk
)

// Re-exported durable-checkpoint types; see package ckpt.
type (
	// CheckpointSession is the complete training state a durable checkpoint
	// serializes (cursors, parameters, layer state, optimizer state,
	// per-worker fleet progress).
	CheckpointSession = ckpt.Session
	// CheckpointDir manages a crash-safe checkpoint directory (atomic saves
	// behind a MANIFEST with corruption fallback).
	CheckpointDir = ckpt.Dir
	// CheckpointOption tunes how checkpoints are written.
	CheckpointOption = ckpt.Option
)

// Durable-checkpoint entry points; see package ckpt.
var (
	// OpenCheckpointDir prepares a crash-safe checkpoint directory.
	OpenCheckpointDir = ckpt.Open
	// HasCheckpointManifest reports whether a path holds a checkpoint
	// manifest (the pre-flight check behind the CLIs' -resume validation).
	HasCheckpointManifest = ckpt.HasManifest
	// EncodeCheckpoint serializes a session to the framed binary format in
	// memory; WriteCheckpoint streams the identical bytes to an io.Writer.
	EncodeCheckpoint = ckpt.Encode
	// WriteCheckpoint streams a session in the framed binary format.
	WriteCheckpoint = ckpt.Write
	// DecodeCheckpoint parses an in-memory checkpoint; ReadCheckpoint
	// consumes the identical format from an io.Reader.
	DecodeCheckpoint = ckpt.Decode
	// ReadCheckpoint parses a checkpoint from a stream.
	ReadCheckpoint = ckpt.Read
	// WithCheckpointCompression selects DEFLATE-compressed frames.
	WithCheckpointCompression = ckpt.WithCompression
)

// Durable-checkpoint sentinel errors; see package ckpt.
var (
	// ErrCheckpointCorrupt marks structurally invalid checkpoint bytes.
	ErrCheckpointCorrupt = ckpt.ErrCorrupt
	// ErrNoCheckpoint marks a directory that was never checkpointed into.
	ErrNoCheckpoint = ckpt.ErrNoCheckpoint
)

// Version is the library version. The reproduction is tagged as a whole; the
// individual internal packages do not carry separate versions.
const Version = ckpt.LibraryVersion
