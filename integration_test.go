package edgetrain

// Cross-module integration tests: each test exercises a full pipeline from
// the architecture specs through the memory model, the checkpoint planner and
// the executor, mirroring how the command-line tools compose the packages.

import (
	"testing"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/edgesim"
	"github.com/edgeml/edgetrain/internal/memmodel"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/resnet"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/internal/vision"
	"github.com/edgeml/edgetrain/schedule"
)

// TestTablesToFigurePipeline checks that the quantities flowing from the
// ResNet specs into Tables I-III and then into the Figure 1 chains stay
// mutually consistent.
func TestTablesToFigurePipeline(t *testing.T) {
	acc := memmodel.DefaultAccounting
	t3, err := memmodel.Table3(acc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range resnet.Variants {
		cell, err := t3.Lookup(500, v)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := memmodel.LinearChain(v, 500, memmodel.Table3BatchSize, acc)
		if err != nil {
			t.Fatal(err)
		}
		// The LinearResNet's store-all footprint must equal the table cell up
		// to the rounding of the per-stage division.
		diff := cell.Footprint.TotalBytes() - lin.MemoryNoCheckpoint()
		if diff < 0 {
			diff = -diff
		}
		if diff > int64(lin.Length) {
			t.Fatalf("%s: table footprint %d and chain footprint %d disagree", v, cell.Footprint.TotalBytes(), lin.MemoryNoCheckpoint())
		}
		// And the chain must become trainable on the Waggle node within the
		// recompute factors the figure sweeps.
		if _, _, ok := checkpoint.MinRhoToFit(lin, device.Waggle().MemoryBytes, checkpoint.DefaultCostModel, 3); !ok {
			t.Fatalf("%s at batch 8 / image 500 never fits within rho=3", v)
		}
	}
}

// TestDeviceFitMatchesTableShading cross-checks the device model against the
// table generator for every cell of Table I.
func TestDeviceFitMatchesTableShading(t *testing.T) {
	tbl, err := memmodel.Table1(memmodel.DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	node := device.Waggle()
	for i, row := range tbl.Rows {
		for j, v := range tbl.Columns {
			cell := tbl.Cells[i][j]
			if node.Fits(cell.Footprint) != cell.Fits {
				t.Fatalf("device.Fits and table shading disagree for %s at batch %d", v, row)
			}
		}
	}
}

// TestEndToEndCheckpointedTrainingOnWaggleBudget trains the small student
// network under a slot budget derived from the analytical model and verifies
// that the measured peak matches what the planner promised.
func TestEndToEndCheckpointedTrainingOnWaggleBudget(t *testing.T) {
	cfg := resnet.DefaultSmallConfig()
	net, err := resnet.BuildSmall(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := chain.FromSequential(net)

	// Ask the planner for the slot count that keeps rho below 1.5.
	res := checkpoint.MinSlotsForRho(c.Len(), 1.5, checkpoint.DefaultCostModel)
	if !res.Feasible {
		t.Fatal("rho=1.5 should be feasible for the small chain")
	}
	rng := tensor.NewRNG(3)
	set := vision.Dataset(rng, 24, 0.6, 16)
	var samples []trainer.Batch
	for i := range set.Images {
		samples = append(samples, trainer.Batch{Images: set.Images[i], Labels: []int{set.Labels[i]}})
	}
	tr, err := trainer.New(c, trainer.Config{
		Epochs:    1,
		BatchSize: 8,
		Optimizer: trainer.NewSGD(0.05),
		Policy:    chain.Policy{Kind: "revolve", Slots: res.Slots},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Train(trainer.NewSliceDataset(samples))
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].PeakStates > res.Slots+1 {
		t.Fatalf("measured peak states %d exceed the planned budget of %d slots plus the input", stats[0].PeakStates, res.Slots)
	}
	if stats[0].Steps == 0 {
		t.Fatal("training performed no steps")
	}
}

// TestModelShipmentSizeConsistency ties the nn serialisation to the fleet
// simulation's model-transfer accounting: the student model produced by the
// teacher pipeline's classifier is far smaller than the raw images a single
// day of cloud training would upload.
func TestModelShipmentSizeConsistency(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := nn.NewSequential("student",
		nn.NewConv2D("c1", 1, 8, 3, 1, 1, true, rng),
		nn.NewReLU("r1"),
		nn.NewGlobalAvgPool2D("gap"),
		nn.NewLinear("fc", 8, vision.NumClasses, true, rng),
	)
	modelBytes := nn.ParamBytes(net.Layers)
	nodeCfg := edgesim.DefaultNodeConfig()
	oneDayUpload := int64(nodeCfg.DetectionsPerDay) * int64(nodeCfg.TrackLength) * nodeCfg.ImageBytes
	if modelBytes >= oneDayUpload {
		t.Fatalf("the student model (%d bytes) should be smaller than one day of raw uploads (%d bytes)", modelBytes, oneDayUpload)
	}
}

// TestVersionIsSet guards the public facade.
func TestVersionIsSet(t *testing.T) {
	if Version == "" {
		t.Fatal("Version must be set")
	}
}

// TestRootAPIPlansEveryStrategy drives the re-exported root surface the way
// an external caller would: enumerate the registry, plan each strategy by
// name, and validate the schedule through the streaming trace simulator.
func TestRootAPIPlansEveryStrategy(t *testing.T) {
	names := Strategies()
	if len(names) < 6 {
		t.Fatalf("expected at least the six built-in strategies, got %v", names)
	}
	spec := ChainSpec{Length: 24}
	opts := map[string][]Option{
		"revolve":    {WithSlots(3)},
		"sequential": {WithSegments(4)},
		"periodic":   {WithInterval(5)},
		"twolevel":   {WithSlots(2), WithDiskSlots(3)},
	}
	for _, name := range names {
		sched, err := Plan(name, spec, opts[name]...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := schedule.Run(sched)
		if err != nil {
			t.Fatalf("%s: invalid schedule: %v", name, err)
		}
		if len(tr.BackpropOrder) != spec.Length {
			t.Fatalf("%s: %d adjoints performed, want %d", name, len(tr.BackpropOrder), spec.Length)
		}
	}
	if _, err := Lookup("no-such-strategy"); err == nil {
		t.Fatal("Lookup of an unknown strategy must fail")
	}
}

// TestRootAPIExecutesRegistrySchedule runs a registry-planned schedule on a
// real network through the chain executor and cross-checks the executor's
// forward count against the schedule trace — the full public path from
// strategy name to gradients.
func TestRootAPIExecutesRegistrySchedule(t *testing.T) {
	cfg := resnet.DefaultSmallConfig()
	net, err := resnet.BuildSmall(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := chain.FromSequential(net)
	sched, err := Plan("revolve", ChainSpec{Length: c.Len()}, WithSlots(2))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := schedule.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(11)
	x := tensor.RandNormal(rng, 0, 1, 2, cfg.InputChannels, 16, 16)
	labels := []int{1, 2}
	lossGrad := func(out *tensor.Tensor) *tensor.Tensor {
		ce := nn.NewSoftmaxCrossEntropy()
		ce.Forward(out, labels)
		return ce.Backward()
	}
	res, err := chain.Execute(c, x, lossGrad, sched, true)
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.ForwardEvals) != tr.Forwards {
		t.Fatalf("executor ran %d forwards, trace says %d", res.ForwardEvals, tr.Forwards)
	}
	if res.PeakStates > tr.PeakSlots+1 {
		t.Fatalf("executor retained %d states, trace allows %d plus the input", res.PeakStates, tr.PeakSlots)
	}
}
