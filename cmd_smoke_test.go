package edgetrain

// Build-and-run smoke tests for the command-line tools: every binary under
// cmd/ must compile and execute a minimal invocation successfully, so flag
// plumbing and output paths are exercised by `go test` instead of rotting
// untested.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildCmds compiles all cmd/ binaries into one temp dir and returns it.
func buildCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(filepath.Separator), "./cmd/...")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/... failed: %v\n%s", err, out)
	}
	return dir
}

func TestCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke tests in -short mode")
	}
	bin := buildCmds(t)
	cases := []struct {
		name string
		args []string
		want string // substring the output must contain
	}{
		{"revolveplan-list", []string{"-list"}, "registered planning strategies"},
		{"revolveplan-default", []string{"-l", "40", "-slots", "4"}, "revolve schedule"},
		{"revolveplan-auto", []string{
			"-l", "30", "-strategy", "auto", "-budget", "1MB",
			"-state-bytes", "8KB", "-weight-bytes", "100KB", "-print",
		}, "auto:"},
		{"revolveplan-twolevel-tiers", []string{
			"-l", "40", "-strategy", "twolevel", "-slots", "2", "-disk-slots", "3",
		}, "tier breakdown"},
		{"edgetrainer-auto-spill", []string{
			"-policy", "auto", "-budget", "2MB", "-epochs", "1",
			"-samples", "4", "-batch", "2",
		}, "fits="},
		{"fleettrainer-fedavg", []string{
			"-nodes", "2", "-rounds", "1", "-samples", "8",
			"-device-mix", "waggle,rpi",
		}, "fleet training report: fedavg"},
		{"fleettrainer-allreduce-mixed", []string{
			"-nodes", "3", "-rounds", "2", "-samples", "12", "-agg", "allreduce",
			"-device-mix", "jetson,waggle,rpi", "-budget", "280KB,210KB,201KB",
			"-participation", "1",
		}, "twolevel"},
		{"fleettrainer-compressed", []string{
			"-nodes", "2", "-rounds", "2", "-samples", "8",
			"-compress", "topk:0.25+int8+deflate",
		}, "compression: topk:0.25+int8+deflate"},
		{"memtable", []string{"-table", "1"}, "ResNet"},
		{"figure1-fit", []string{"-fit"}, ""},
		{"aotsim", []string{"-nodes", "3", "-days", "2"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			binary := strings.SplitN(tc.name, "-", 2)[0]
			cmd := exec.Command(filepath.Join(bin, binary), tc.args...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v failed: %v\n%s", binary, tc.args, err, out)
			}
			if tc.want != "" && !strings.Contains(string(out), tc.want) {
				t.Fatalf("%s %v output does not contain %q:\n%s", binary, tc.args, tc.want, out)
			}
		})
	}
}

// TestDistributedFleetSmoke drives the coordinator and two worker binaries
// end to end over 127.0.0.1: the coordinator binds an ephemeral port, two
// edgeworkers join, two rounds complete, and everything shuts down cleanly
// with a non-empty fleet report.
func TestDistributedFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke tests in -short mode")
	}
	bin := buildCmds(t)

	coord := exec.Command(filepath.Join(bin, "edgecoord"),
		"-workers", "2", "-rounds", "2", "-samples", "8", "-quiet")
	stdout, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var coordOut bytes.Buffer
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	// The coordinator announces its bound port on the first line.
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		coordOut.WriteString(line + "\n")
		if rest, ok := strings.CutPrefix(line, "listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("coordinator never announced its address:\n%s", coordOut.String())
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			coordOut.WriteString(sc.Text() + "\n")
		}
	}()

	workers := make(chan error, 2)
	outs := make([]bytes.Buffer, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			w := exec.Command(filepath.Join(bin, "edgeworker"),
				"-addr", addr, "-name", []string{"w0", "w1"}[i], "-quiet")
			w.Stdout = &outs[i]
			w.Stderr = &outs[i]
			workers <- w.Run()
		}(i)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-workers:
			if err != nil {
				t.Fatalf("worker failed: %v\nw0: %s\nw1: %s", err, outs[0].String(), outs[1].String())
			}
		case <-time.After(2 * time.Minute):
			t.Fatalf("workers did not finish\ncoordinator so far:\n%s", coordOut.String())
		}
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator exited with %v:\n%s", err, coordOut.String())
	}
	<-drained
	out := coordOut.String()
	for _, want := range []string{
		"fleet training report: fedavg, 2 workers, 2 rounds",
		"wire (MB)",
		"final loss",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("coordinator report lacks %q:\n%s", want, out)
		}
	}
	for i := range outs {
		if !strings.Contains(outs[i].String(), "2 rounds contributed") {
			t.Fatalf("worker %d did not contribute 2 rounds:\n%s", i, outs[i].String())
		}
	}
}

// TestCompressedDistributedSmoke repeats the distributed drill with update
// compression negotiated over the wire: the coordinator assigns a lossy codec
// spec in the welcome, both edgeworkers (advertising every codec by default)
// encode their uploads, and the final report carries the compression line and
// a sub-raw uplink byte count.
func TestCompressedDistributedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke tests in -short mode")
	}
	bin := buildCmds(t)

	coord := exec.Command(filepath.Join(bin, "edgecoord"),
		"-workers", "2", "-rounds", "2", "-samples", "8",
		"-compress", "topk:0.25+int8+deflate", "-wire-deflate", "-quiet")
	stdout, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var coordOut bytes.Buffer
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		coordOut.WriteString(line + "\n")
		if rest, ok := strings.CutPrefix(line, "listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("coordinator never announced its address:\n%s", coordOut.String())
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			coordOut.WriteString(sc.Text() + "\n")
		}
	}()

	workers := make(chan error, 2)
	outs := make([]bytes.Buffer, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			w := exec.Command(filepath.Join(bin, "edgeworker"),
				"-addr", addr, "-name", []string{"w0", "w1"}[i],
				"-wire-deflate", "-quiet")
			w.Stdout = &outs[i]
			w.Stderr = &outs[i]
			workers <- w.Run()
		}(i)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-workers:
			if err != nil {
				t.Fatalf("worker failed: %v\nw0: %s\nw1: %s", err, outs[0].String(), outs[1].String())
			}
		case <-time.After(2 * time.Minute):
			t.Fatalf("workers did not finish\ncoordinator so far:\n%s", coordOut.String())
		}
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator exited with %v:\n%s", err, coordOut.String())
	}
	<-drained
	out := coordOut.String()
	for _, want := range []string{
		"update compression: topk:0.25+int8+deflate",
		"fleet training report: fedavg, 2 workers, 2 rounds",
		"compression: topk:0.25+int8+deflate",
		"final loss",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("coordinator report lacks %q:\n%s", want, out)
		}
	}
	for i := range outs {
		if !strings.Contains(outs[i].String(), "2 rounds contributed") {
			t.Fatalf("worker %d did not contribute 2 rounds:\n%s", i, outs[i].String())
		}
	}
}

// TestCoordinatorRestartSmoke is the process-level fault-tolerance drill: a
// coordinator started with -state-dir is SIGKILLed after it has durably saved
// a round, then restarted on the same port and state directory while two
// edgeworkers launched with -retry/-backoff-max ride out the outage on their
// reconnect loops. The run must finish with a full fleet report and both
// workers reporting a clean completion.
func TestCoordinatorRestartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke tests in -short mode")
	}
	bin := buildCmds(t)
	stateDir := filepath.Join(t.TempDir(), "coord-state")

	// A fixed port so the restarted coordinator is reachable at the same
	// address the workers keep redialing. Bind-and-release to find a free one.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	coordArgs := []string{
		"-listen", addr, "-workers", "2", "-rounds", "4", "-samples", "8",
		"-state-dir", stateDir,
	}

	// First life: run until the round-1 checkpoint is durably on disk (the
	// state saver logs after writing), then SIGKILL — no graceful shutdown.
	c1 := exec.Command(filepath.Join(bin, "edgecoord"), coordArgs...)
	stderr, err := c1.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var c1Log bytes.Buffer
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	defer c1.Process.Kill()

	saved := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			c1Log.WriteString(line + "\n")
			if strings.Contains(line, "state saved to") && strings.Contains(line, "(next round 2)") {
				close(saved)
				return
			}
		}
	}()

	workers := make(chan error, 2)
	outs := make([]bytes.Buffer, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			w := exec.Command(filepath.Join(bin, "edgeworker"),
				"-addr", addr, "-name", []string{"w0", "w1"}[i],
				"-retry", "100", "-backoff-max", "500ms", "-quiet")
			w.Stdout = &outs[i]
			w.Stderr = &outs[i]
			workers <- w.Run()
		}(i)
	}

	select {
	case <-saved:
	case <-time.After(2 * time.Minute):
		t.Fatalf("coordinator never saved round-1 state:\n%s", c1Log.String())
	}
	c1.Process.Kill()
	c1.Wait()

	// Second life: same port, same state dir. It must announce the resume,
	// re-admit the redialing workers and finish the remaining rounds.
	c2 := exec.Command(filepath.Join(bin, "edgecoord"), coordArgs...)
	var c2Out bytes.Buffer
	c2.Stdout = &c2Out
	c2.Stderr = &c2Out
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	defer c2.Process.Kill()

	for i := 0; i < 2; i++ {
		select {
		case err := <-workers:
			if err != nil {
				t.Fatalf("worker failed: %v\nw0: %s\nw1: %s\ncoordinator:\n%s",
					err, outs[0].String(), outs[1].String(), c2Out.String())
			}
		case <-time.After(2 * time.Minute):
			t.Fatalf("workers did not finish after restart\ncoordinator:\n%s", c2Out.String())
		}
	}
	if err := c2.Wait(); err != nil {
		t.Fatalf("restarted coordinator exited with %v:\n%s", err, c2Out.String())
	}

	out := c2Out.String()
	if !strings.Contains(out, "resuming at round ") {
		t.Fatalf("restarted coordinator did not announce the resume:\n%s", out)
	}
	if !strings.Contains(out, "fleet training report: fedavg, 2 workers") {
		t.Fatalf("no fleet report after restart:\n%s", out)
	}
	for i := range outs {
		if !strings.Contains(outs[i].String(), "rounds contributed") {
			t.Fatalf("worker %d did not report completion:\n%s", i, outs[i].String())
		}
	}
}

// TestCheckpointResumeSmoke drives the trainers' durable-checkpoint flags
// end to end: checkpoint a run, resume it from the written directory, and
// reject a -resume path that holds no manifest with a clear error instead of
// a panic.
func TestCheckpointResumeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke tests in -short mode")
	}
	bin := buildCmds(t)
	run := func(binary string, args ...string) (string, error) {
		cmd := exec.Command(filepath.Join(bin, binary), args...)
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	t.Run("edgetrainer", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "ckpts")
		small := []string{"-epochs", "1", "-samples", "4", "-batch", "2"}
		out, err := run("edgetrainer", append([]string{"-checkpoint-dir", dir, "-checkpoint-every", "1"}, small...)...)
		if err != nil {
			t.Fatalf("checkpointed run failed: %v\n%s", err, out)
		}
		if !strings.Contains(out, "checkpointing to "+dir) {
			t.Fatalf("no checkpointing banner in:\n%s", out)
		}
		out, err = run("edgetrainer", append([]string{"-resume", dir}, small...)...)
		if err != nil {
			t.Fatalf("resumed run failed: %v\n%s", err, out)
		}
		if !strings.Contains(out, "resumed from "+dir) {
			t.Fatalf("no resume banner in:\n%s", out)
		}
	})

	t.Run("fleettrainer", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "ckpts")
		small := []string{"-nodes", "2", "-rounds", "2", "-samples", "8"}
		out, err := run("fleettrainer", append([]string{"-checkpoint-dir", dir}, small...)...)
		if err != nil {
			t.Fatalf("checkpointed run failed: %v\n%s", err, out)
		}
		out, err = run("fleettrainer", append([]string{"-resume", dir}, small...)...)
		if err != nil {
			t.Fatalf("resumed run failed: %v\n%s", err, out)
		}
		if !strings.Contains(out, "resumed from "+dir+" at round 2") {
			t.Fatalf("no resume banner in:\n%s", out)
		}
	})

	// A -resume path without a manifest must be rejected up front with a
	// clear message (never a panic), for both binaries — including an
	// existing directory that was simply never checkpointed into.
	for _, binary := range []string{"edgetrainer", "fleettrainer"} {
		t.Run(binary+"-reject-missing-manifest", func(t *testing.T) {
			for _, dir := range []string{filepath.Join(t.TempDir(), "nonexistent"), t.TempDir()} {
				out, err := run(binary, "-resume", dir)
				if err == nil {
					t.Fatalf("%s -resume %s succeeded without a manifest:\n%s", binary, dir, out)
				}
				if strings.Contains(out, "panic") {
					t.Fatalf("%s -resume %s panicked:\n%s", binary, dir, out)
				}
				if !strings.Contains(out, "no checkpoint manifest") {
					t.Fatalf("%s -resume %s error is not descriptive:\n%s", binary, dir, out)
				}
			}
		})
	}
}

// TestTelemetrySmoke drives the fleet-wide telemetry pipeline end to end
// over TCP: a coordinator and two edgeworkers all run with -metrics-addr,
// so the workers serve their own /metrics and /healthz AND ship delta
// telemetry to the coordinator. The coordinator's scrape must then carry
// worker=-labeled series whose wire-byte totals match the printed report,
// and its /trace?format=chrome must be one stitched document with both
// workers' local-train spans nested inside the coordinator's round span.
// When EDGETRAIN_TRACE_OUT is set the stitched trace is written there (the
// CI workflow uploads it as an artifact).
func TestTelemetrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke tests in -short mode")
	}
	bin := buildCmds(t)

	coord := exec.Command(filepath.Join(bin, "edgecoord"),
		"-workers", "2", "-rounds", "3", "-samples", "8", "-quiet",
		"-metrics-addr", "127.0.0.1:0", "-metrics-linger", "1m")
	stdout, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	sc := bufio.NewScanner(stdout)
	var mu sync.Mutex
	var coordOut bytes.Buffer
	var metricsAddr, addr string
	for sc.Scan() {
		line := sc.Text()
		coordOut.WriteString(line + "\n")
		if rest, ok := strings.CutPrefix(line, "metrics on "); ok {
			metricsAddr = rest
		}
		if rest, ok := strings.CutPrefix(line, "listening on "); ok {
			addr = rest
			break
		}
	}
	if metricsAddr == "" || addr == "" {
		t.Fatalf("coordinator never announced metrics + listen addresses:\n%s", coordOut.String())
	}
	base := "http://" + metricsAddr
	reported := make(chan struct{})
	go func() {
		closed := false
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			coordOut.WriteString(line + "\n")
			mu.Unlock()
			if !closed && strings.HasPrefix(line, "totals: ") {
				closed = true
				close(reported)
			}
		}
	}()

	// Workers with their own metrics servers; -metrics-linger keeps them
	// alive for a post-run scrape, so each is killed explicitly at the end.
	names := []string{"w0", "w1"}
	workerMetrics := make([]string, 2)
	outs := make([]bytes.Buffer, 2)
	for i := 0; i < 2; i++ {
		w := exec.Command(filepath.Join(bin, "edgeworker"),
			"-addr", addr, "-name", names[i], "-quiet",
			"-metrics-addr", "127.0.0.1:0", "-metrics-linger", "1m")
		wout, err := w.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		w.Stderr = &outs[i]
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		defer w.Process.Kill()
		wsc := bufio.NewScanner(wout)
		for wsc.Scan() {
			line := wsc.Text()
			outs[i].WriteString(line + "\n")
			if rest, ok := strings.CutPrefix(line, "metrics on "); ok {
				workerMetrics[i] = rest
				break
			}
		}
		if workerMetrics[i] == "" {
			t.Fatalf("worker %s never announced its metrics address:\n%s", names[i], outs[i].String())
		}
		go func(i int) {
			for wsc.Scan() {
				mu.Lock()
				outs[i].WriteString(wsc.Text() + "\n")
				mu.Unlock()
			}
		}(i)
	}

	// Satellite check: each worker serves /metrics and /healthz while its
	// process is up (the training loop and the linger window).
	for i, wm := range workerMetrics {
		wbase := "http://" + wm
		if m := scrapeMetrics(t, wbase+"/metrics"); m == nil {
			t.Fatalf("worker %s /metrics unscrapable", names[i])
		}
		resp, err := http.Get(wbase + "/healthz")
		if err != nil {
			t.Fatalf("worker %s /healthz: %v", names[i], err)
		}
		var h struct {
			Status string `json:"status"`
		}
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil || (h.Status != "training" && h.Status != "done") {
			t.Fatalf("worker %s /healthz status = %q (err %v)", names[i], h.Status, err)
		}
	}

	select {
	case <-reported:
	case <-time.After(2 * time.Minute):
		mu.Lock()
		out := coordOut.String()
		mu.Unlock()
		t.Fatalf("coordinator never printed its totals line:\n%s", out)
	}

	// (a) The coordinator's scrape is the fleet-wide view: worker-labeled
	// series exist, and the per-worker committed wire bytes agree with the
	// report's worker rows.
	final := scrapeMetrics(t, base+"/metrics")
	mu.Lock()
	out := coordOut.String()
	mu.Unlock()
	for _, name := range names {
		tagged := 0
		for key := range final {
			if strings.Contains(key, `worker="`+name+`"`) {
				tagged++
			}
		}
		if tagged == 0 {
			t.Fatalf("no worker=%q-labeled series in the coordinator scrape:\n%v", name, final)
		}
		if got := final[`coord_worker_rounds_total{worker="`+name+`"}`]; got != 3 {
			t.Fatalf("coord_worker_rounds_total{worker=%q} = %v, want 3", name, got)
		}
		var reportWireMB float64
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, name+" ") {
				fields := strings.Fields(line)
				if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil {
					reportWireMB = v
				}
			}
		}
		if reportWireMB == 0 {
			t.Fatalf("no wire-MB report row for %s:\n%s", name, out)
		}
		got := final[`coord_worker_wire_bytes_total{worker="`+name+`"}`] / 1e6
		if math.Abs(got-reportWireMB) > 0.005 {
			t.Fatalf("coord_worker_wire_bytes_total{worker=%q} = %.4f MB, report row says %.2f MB",
				name, got, reportWireMB)
		}
	}
	if final["coord_telemetry_frames_total"] == 0 {
		t.Fatal("coordinator ingested no telemetry frames over TCP")
	}

	// (b) One stitched Chrome trace: both workers' local-train spans nested
	// inside the coordinator's round span for the same round.
	resp, err := http.Get(base + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	traceJSON, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if artifact := os.Getenv("EDGETRAIN_TRACE_OUT"); artifact != "" {
		if err := os.WriteFile(artifact, traceJSON, 0o644); err != nil {
			t.Fatalf("writing trace artifact: %v", err)
		}
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceJSON, &doc); err != nil {
		t.Fatalf("stitched trace is not valid JSON: %v", err)
	}
	lanes := map[int]string{}
	type spanT struct{ ts, end float64 }
	rounds := map[int]spanT{}         // round -> coordinator round span
	trains := map[int]map[int]spanT{} // round -> worker tid -> local-train span
	for _, e := range doc.TraceEvents {
		if e.Phase == "M" && e.Name == "thread_name" {
			lanes[e.TID] = e.Args["name"].(string)
			continue
		}
		r := -1
		if v, ok := e.Args["round"].(float64); ok {
			r = int(v)
		}
		switch {
		case e.Name == "round" && e.TID == 0 && e.Phase == "X":
			rounds[r] = spanT{e.TS, e.TS + e.Dur}
		case e.Name == "local-train" && e.TID >= 1 && e.Phase == "X":
			if trains[r] == nil {
				trains[r] = map[int]spanT{}
			}
			trains[r][e.TID] = spanT{e.TS, e.TS + e.Dur}
		}
	}
	if lanes[0] != "coordinator" || lanes[1] != "w0" || lanes[2] != "w1" {
		t.Fatalf("stitched trace lanes = %v, want coordinator/w0/w1 on tids 0/1/2", lanes)
	}
	nested := false
	for r, rs := range rounds {
		tw := trains[r]
		if len(tw) < 2 {
			continue
		}
		for tid, ts := range tw {
			// Worker clocks run on the same host; allow a millisecond of
			// skew at the edges of the containment check.
			if ts.ts < rs.ts-1000 || ts.end > rs.end+1000 {
				t.Fatalf("round %d: local-train on tid %d [%.0f, %.0f]µs outside round span [%.0f, %.0f]µs",
					r, tid, ts.ts, ts.end, rs.ts, rs.end)
			}
		}
		nested = true
	}
	if !nested {
		t.Fatalf("no round has both workers' local-train spans (rounds %v, trains %v)", rounds, trains)
	}
}

// scrapeMetrics GETs a Prometheus text endpoint and returns the samples as a
// name{labels} -> value map. Comment and blank lines are skipped.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET %s: content type %q is not Prometheus text v0.0.4", url, ct)
	}
	m := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metric line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable metric value in %q: %v", line, err)
		}
		m[line[:i]] = v
	}
	return m
}

// TestMetricsSmoke runs the coordinator with -metrics-addr and verifies the
// observability endpoints against the live run: /metrics is scraped mid-run
// (the committed-round counter must advance past zero), /healthz and /trace
// and /debug/pprof/ must respond, and the final scrape — taken inside the
// -metrics-linger window after the report prints — must agree exactly with
// the report's round count and byte totals.
func TestMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke tests in -short mode")
	}
	bin := buildCmds(t)

	coord := exec.Command(filepath.Join(bin, "edgecoord"),
		"-workers", "2", "-rounds", "3", "-samples", "8", "-quiet",
		"-metrics-addr", "127.0.0.1:0", "-metrics-linger", "1m")
	stdout, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	// The coordinator announces the metrics address first, then the
	// coordination port.
	sc := bufio.NewScanner(stdout)
	var mu sync.Mutex
	var coordOut bytes.Buffer
	var metricsAddr, addr string
	for sc.Scan() {
		line := sc.Text()
		coordOut.WriteString(line + "\n")
		if rest, ok := strings.CutPrefix(line, "metrics on "); ok {
			metricsAddr = rest
		}
		if rest, ok := strings.CutPrefix(line, "listening on "); ok {
			addr = rest
			break
		}
	}
	if metricsAddr == "" || addr == "" {
		t.Fatalf("coordinator never announced metrics + listen addresses:\n%s", coordOut.String())
	}
	base := "http://" + metricsAddr

	// Keep draining stdout; signal once the report's totals line lands.
	reported := make(chan struct{})
	go func() {
		closed := false
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			coordOut.WriteString(line + "\n")
			mu.Unlock()
			if !closed && strings.HasPrefix(line, "totals: ") {
				closed = true
				close(reported)
			}
		}
	}()

	workers := make(chan error, 2)
	outs := make([]bytes.Buffer, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			w := exec.Command(filepath.Join(bin, "edgeworker"),
				"-addr", addr, "-name", []string{"w0", "w1"}[i], "-quiet")
			w.Stdout = &outs[i]
			w.Stderr = &outs[i]
			workers <- w.Run()
		}(i)
	}

	// Mid-run: the committed-round counter must advance from its initial
	// zero while the run is still in flight.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if v := scrapeMetrics(t, base+"/metrics")["coord_rounds_committed_total"]; v >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coord_rounds_committed_total never advanced past zero")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The sibling endpoints must be live while the run is in flight.
	for _, path := range []string{"/healthz", "/trace", "/debug/pprof/"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		switch path {
		case "/healthz":
			if !strings.Contains(string(body), `"rounds":3`) {
				t.Fatalf("/healthz does not report the configured rounds:\n%s", body)
			}
		case "/trace":
			if !strings.Contains(string(body), `"name":"round"`) {
				t.Fatalf("/trace holds no round span:\n%s", body)
			}
		}
	}

	for i := 0; i < 2; i++ {
		select {
		case err := <-workers:
			if err != nil {
				t.Fatalf("worker failed: %v\nw0: %s\nw1: %s", err, outs[0].String(), outs[1].String())
			}
		case <-time.After(2 * time.Minute):
			mu.Lock()
			out := coordOut.String()
			mu.Unlock()
			t.Fatalf("workers did not finish\ncoordinator so far:\n%s", out)
		}
	}
	select {
	case <-reported:
	case <-time.After(time.Minute):
		mu.Lock()
		out := coordOut.String()
		mu.Unlock()
		t.Fatalf("coordinator never printed its totals line:\n%s", out)
	}

	// Final scrape inside the linger window: scraped counters must agree
	// with the end-of-run report exactly.
	final := scrapeMetrics(t, base+"/metrics")
	mu.Lock()
	out := coordOut.String()
	mu.Unlock()
	var totals string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "totals: ") {
			totals = line
			break
		}
	}
	var upMB, downMB, wireMB, loss float64
	if _, err := fmt.Sscanf(totals, "totals: uplink %f MB, downlink %f MB, wire %f MB, final loss %f",
		&upMB, &downMB, &wireMB, &loss); err != nil {
		t.Fatalf("unparseable totals line %q: %v", totals, err)
	}
	if got := final["coord_rounds_committed_total"]; got != 3 {
		t.Fatalf("coord_rounds_committed_total = %v, want 3 (the report's round count)", got)
	}
	for metric, want := range map[string]float64{
		"coord_uplink_bytes_total":   upMB,
		"coord_downlink_bytes_total": downMB,
		"coord_wire_bytes_total":     wireMB,
	} {
		// The report prints MB to two decimals; the scrape is exact bytes.
		if got := final[metric] / 1e6; math.Abs(got-want) > 0.005 {
			t.Fatalf("%s = %.4f MB, report says %.2f MB:\n%s", metric, got, want, out)
		}
	}
	if !strings.Contains(out, "fleet training report: fedavg, 2 workers, 3 rounds") {
		t.Fatalf("missing or unexpected report header:\n%s", out)
	}
}
