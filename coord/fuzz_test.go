package coord

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/obs"
)

// protoSample is one representative encoded message plus its parser, the
// corpus both the fuzz target and the exhaustive truncation test walk.
type protoSample struct {
	name    string
	typ     uint32
	payload []byte
	parse   func([]byte) error
	// emptyOK marks messages whose zero-byte truncation is legitimately
	// valid: a heartbeat with no payload means "alive, no telemetry".
	emptyOK bool
}

// sampleTelemetry builds a representative telemetry shipment: counter,
// gauge and histogram deltas plus span and instant events.
func sampleTelemetry() telemetry {
	return telemetry{
		round: 3,
		samples: []obs.Sample{
			{Name: "chain_steps_total", Help: "Optimiser steps.", Kind: "counter", Value: 12},
			{Name: "trainer_loss", Help: "Latest loss.", Kind: "gauge", Value: 0.731,
				Labels: []obs.Label{{Key: "device", Value: "waggle"}}},
			{Name: "chain_step_seconds", Help: "Step latency.", Kind: "histogram",
				Value: 0.0625, Count: 12,
				Bounds:  []float64{0.001, 0.01, 0.1},
				Buckets: []int64{2, 9, 12}},
		},
		events: []obs.Event{
			{Name: "local-train", Round: 3, Worker: 1,
				Start: time.Unix(0, 1_700_000_000_000_000_000), Dur: 257 * time.Millisecond},
			{Name: "spill", Round: 3, Worker: 1,
				Start: time.Unix(0, 1_700_000_000_100_000_000), Detail: "budget=2GB"},
		},
	}
}

func protoSamples() []protoSample {
	rng := tensor.NewRNG(17)
	state := &ckpt.WorkerState{
		Index: 2, Name: "w2", Rounds: 7, Samples: 896,
		Opt: ckpt.OptimizerState{
			Name: "momentum", Step: 7,
			Slots: []ckpt.OptSlot{{Param: "fc1.weight", Slot: "velocity", Data: []float64{0.25, -1.5, 3e-9}}},
		},
	}
	helloF := encodeHello(hello{
		version: ProtocolVersion, name: "w0", device: "waggle", budgetBytes: 2_000_000_000,
		aggregators: []string{"fedavg", "allreduce"}, strategies: []string{"storeall", "revolve"},
		codecs: []string{"topk", "int8", "deflate"},
	})
	welcomeFresh := encodeWelcome(Assignment{
		Index: 1, Workers: 3, Rounds: 4, LocalEpochs: 1, BatchSize: 2, Samples: 24,
		Seed: 42, Aggregator: "fedavg", Optimizer: "sgd", LR: 0.05,
	})
	welcomeState := encodeWelcome(Assignment{
		Index: 2, Workers: 3, Rounds: 4, Seed: 42, Aggregator: "fedavg",
		Optimizer: "momentum", LR: 0.05, Compression: "topk:0.25+int8+deflate",
		State: state,
	})
	roundF, err := encodeRound(roundMsg{
		round: 3,
		params: []ckpt.NamedTensor{
			{Name: "fc1.weight", Tensor: randTensor(rng, 8, 4)},
			{Name: "fc1.bias", Tensor: randTensor(rng, 4)},
		},
	})
	if err != nil {
		panic(err)
	}
	updateF, err := encodeUpdate(updateMsg{
		round: 3, samples: 17, loss: 2.1972, duration: 257 * time.Millisecond,
		strategy: "revolve",
		stats: fleet.Update{
			ForwardEvals: 40, BackwardEvals: 12, PeakStates: 5,
			PeakRAMBytes: 1 << 20, PeakDiskBytes: 1 << 18, DiskWrites: 6, DiskReads: 6,
		},
		vecs:  []*tensor.Tensor{randTensor(rng, 8, 4), randTensor(rng, 4)},
		state: *state,
	})
	if err != nil {
		panic(err)
	}
	// A compressed update: the codec tag replaces the tensor section with an
	// opaque blob (parseUpdate does not decode it — the serve loop does).
	updateCompressed, err := encodeUpdate(updateMsg{
		round: 2, samples: 9, loss: 1.5, duration: 31 * time.Millisecond,
		strategy: "storeall",
		codec:    "topk:0.25+int8+deflate",
		blob:     []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x42},
		state:    *state,
	})
	if err != nil {
		panic(err)
	}
	// A v3 update carrying a trailing telemetry shipment.
	telem := sampleTelemetry()
	updateTelemetry, err := encodeUpdate(updateMsg{
		round: 3, samples: 17, loss: 2.0, duration: 200 * time.Millisecond,
		strategy: "revolve",
		vecs:     []*tensor.Tensor{randTensor(rng, 4)},
		state:    *state,
		telem:    &telem,
	})
	if err != nil {
		panic(err)
	}
	parseHB := func(b []byte) error { _, err := parseHeartbeat(b); return err }
	return []protoSample{
		{"hello", msgHello, helloF.Payload,
			func(b []byte) error { _, err := parseHello(b); return err }, false},
		{"welcome-fresh", msgWelcome, welcomeFresh.Payload,
			func(b []byte) error { _, err := parseWelcome(b); return err }, false},
		{"welcome-state", msgWelcome, welcomeState.Payload,
			func(b []byte) error { _, err := parseWelcome(b); return err }, false},
		{"round", msgRound, roundF.Payload,
			func(b []byte) error { _, err := parseRound(b); return err }, false},
		{"update", msgUpdate, updateF.Payload,
			func(b []byte) error { _, err := parseUpdate(b); return err }, false},
		{"update-compressed", msgUpdate, updateCompressed.Payload,
			func(b []byte) error { _, err := parseUpdate(b); return err }, false},
		{"update-telemetry", msgUpdate, updateTelemetry.Payload,
			func(b []byte) error { _, err := parseUpdate(b); return err }, false},
		{"heartbeat-empty", msgHeartbeat, nil, parseHB, true},
		{"heartbeat-telemetry", msgHeartbeat, encodeTelemetry(sampleTelemetry()), parseHB, true},
		{"ack", msgAck, encodeAck(ackMsg{round: 6, status: AckOK}).Payload,
			func(b []byte) error { _, err := parseAck(b); return err }, false},
		{"error", msgError, encodeError("fleet full").Payload,
			func(b []byte) error { _, err := parseError(b); return err }, false},
	}
}

// FuzzDecodeMessage drives every wire-message parser with arbitrary bytes,
// mirroring ckpt's FuzzReadCheckpoint: no panic, no absurd allocation, and
// every accepted input must survive a re-encode/re-parse round trip — for
// the fixed-layout messages, bit-identically.
func FuzzDecodeMessage(f *testing.F) {
	for _, s := range protoSamples() {
		f.Add(s.typ, s.payload)
	}
	f.Add(uint32(99), []byte{1, 2, 3})
	f.Add(msgUpdate, []byte{})
	f.Fuzz(func(t *testing.T, typ uint32, payload []byte) {
		switch typ {
		case msgHello:
			h, err := parseHello(payload)
			if err != nil {
				return
			}
			if re := encodeHello(h); !bytes.Equal(re.Payload, payload) {
				t.Fatalf("accepted hello is not canonical: %x reencodes to %x", payload, re.Payload)
			}
		case msgWelcome:
			a, err := parseWelcome(payload)
			if err != nil {
				return
			}
			a2, err := parseWelcome(encodeWelcome(a).Payload)
			if err != nil {
				t.Fatalf("accepted welcome does not re-parse: %v", err)
			}
			if a2.Index != a.Index || a2.Seed != a.Seed || a2.Aggregator != a.Aggregator ||
				(a2.State == nil) != (a.State == nil) {
				t.Fatalf("welcome round trip changed the assignment: %+v vs %+v", a2, a)
			}
		case msgRound:
			m, err := parseRound(payload)
			if err != nil {
				return
			}
			fr, err := encodeRound(m)
			if err != nil {
				t.Fatalf("accepted round does not re-encode: %v", err)
			}
			m2, err := parseRound(fr.Payload)
			if err != nil {
				t.Fatalf("accepted round does not re-parse: %v", err)
			}
			if m2.round != m.round || len(m2.params) != len(m.params) {
				t.Fatalf("round message round trip changed: %+v vs %+v", m2, m)
			}
		case msgUpdate:
			m, err := parseUpdate(payload)
			if err != nil {
				return
			}
			fr, err := encodeUpdate(m)
			if err != nil {
				t.Fatalf("accepted update does not re-encode: %v", err)
			}
			m2, err := parseUpdate(fr.Payload)
			if err != nil {
				t.Fatalf("accepted update does not re-parse: %v", err)
			}
			if m2.round != m.round || m2.samples != m.samples || len(m2.vecs) != len(m.vecs) ||
				m2.codec != m.codec || !bytes.Equal(m2.blob, m.blob) {
				t.Fatalf("update round trip changed: %+v vs %+v", m2, m)
			}
		case msgAck:
			a, err := parseAck(payload)
			if err != nil {
				return
			}
			if re := encodeAck(a); !bytes.Equal(re.Payload, payload) {
				t.Fatalf("accepted ack is not canonical")
			}
		case msgHeartbeat:
			tm, err := parseHeartbeat(payload)
			if err != nil {
				return
			}
			if tm == nil {
				if len(payload) != 0 {
					t.Fatalf("non-empty heartbeat parsed to no telemetry")
				}
				return
			}
			if re := encodeTelemetry(*tm); !bytes.Equal(re, payload) {
				t.Fatalf("accepted heartbeat telemetry is not canonical: %x reencodes to %x", payload, re)
			}
		case msgError:
			msg, err := parseError(payload)
			if err != nil {
				return
			}
			if re := encodeError(msg); !bytes.Equal(re.Payload, payload) {
				t.Fatalf("accepted error message is not canonical")
			}
		}
	})
}

// TestTruncatedAtEveryBoundary cuts every message type at every byte offset
// — which covers every field boundary and boundary±1 — and additionally
// appends one trailing byte. Every mutation must be rejected: the parsers
// consume their payloads exactly, so there is no prefix of a valid message
// that is itself a valid message, and no slack for trailing garbage.
func TestTruncatedAtEveryBoundary(t *testing.T) {
	for _, s := range protoSamples() {
		if err := s.parse(s.payload); err != nil {
			t.Fatalf("%s: intact payload rejected: %v", s.name, err)
		}
		for cut := 0; cut < len(s.payload); cut++ {
			if cut == 0 && s.emptyOK {
				// A zero-byte heartbeat is a legitimate message ("alive,
				// no telemetry"), not a truncation.
				continue
			}
			if err := s.parse(s.payload[:cut]); err == nil {
				t.Fatalf("%s: truncation to %d of %d bytes accepted", s.name, cut, len(s.payload))
			}
		}
		extra := append(append([]byte{}, s.payload...), 0x00)
		if err := s.parse(extra); err == nil {
			t.Fatalf("%s: trailing byte accepted", s.name)
		}
	}
}

// TestWireFrameTruncatedAndOversized covers the framing layer under the
// parsers: a frame cut anywhere — header or payload — must fail ReadFrame
// with ckpt.ErrCorrupt, and a header declaring lengths beyond the
// connection's message bound must be rejected before any payload is read.
func TestWireFrameTruncatedAndOversized(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("the quick brown fox jumps over the lazy dog")
	if _, err := ckpt.WriteFrame(&buf, ckpt.Frame{Type: msgUpdate, Payload: payload}, ckpt.StyleRaw); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	if f, _, err := ckpt.ReadFrame(bytes.NewReader(whole), maxMessageBytes); err != nil {
		t.Fatalf("intact frame rejected: %v", err)
	} else if f.Type != msgUpdate || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("intact frame decoded wrong")
	}

	for cut := 0; cut < len(whole); cut++ {
		_, _, err := ckpt.ReadFrame(bytes.NewReader(whole[:cut]), maxMessageBytes)
		if !errors.Is(err, ckpt.ErrCorrupt) {
			t.Fatalf("frame truncated to %d of %d bytes: got %v, want ErrCorrupt", cut, len(whole), err)
		}
	}

	// Oversized declarations: encoded length, then raw length, patched past
	// the bound. Both must be rejected as corrupt without reading further.
	for _, field := range []int{8, 16} {
		huge := append([]byte{}, whole...)
		for i := 0; i < 8; i++ {
			huge[field+i] = 0xff
		}
		_, _, err := ckpt.ReadFrame(bytes.NewReader(huge), maxMessageBytes)
		if !errors.Is(err, ckpt.ErrCorrupt) {
			t.Fatalf("oversized length at offset %d: got %v, want ErrCorrupt", field, err)
		}
	}
}
