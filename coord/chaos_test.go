package coord

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
)

// TestChaosSoak is the fault-tolerance acceptance test: a 3-worker fleet
// trains 6 rounds while the chaos transport refuses dials, drops connections
// mid-round, corrupts frames in flight and delays everything — and the
// coordinator itself is killed after round 2 and restarted from its durable
// state. The run must complete with global weights byte-identical to a
// fault-free in-process fleet.Run: every injected fault is either retried
// away (quorum) or recovered (reconnect, resume), and corruption never
// reaches a fold.
func TestChaosSoak(t *testing.T) {
	const (
		soakWorkers = 3
		soakRounds  = 6
		soakSamples = 24
		soakSeed    = uint64(11)
	)

	// Fault-free reference: the single-process engine, untouched by chaos.
	opt := func() trainer.Optimizer {
		o, err := trainer.NewOptimizer("momentum", 0.05)
		if err != nil {
			panic(err)
		}
		return o
	}
	agg, err := fleet.NewAggregator("fedavg", opt())
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]fleet.WorkerSpec, soakWorkers)
	for i := range specs {
		specs[i].Name = fmt.Sprintf("w%d", i)
	}
	ref, err := fleet.New(fleet.Config{
		Workers: specs, Rounds: soakRounds, Seed: soakSeed,
		Aggregator: agg, Optimizer: opt,
	}, testModel(soakSeed), testDataset(soakSamples, soakSeed))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	var want []*tensor.Tensor
	for _, p := range ref.Global().Params() {
		want = append(want, p.Value.Clone())
	}

	chaos := &Chaos{
		Inner:      NewLoopback(),
		Seed:       20260808,
		DialRefuse: 0.1,
		Drop:       0.02,
		Corrupt:    0.05,
		LatencyMax: 2 * time.Millisecond,
	}
	const addr = "soak-coord"
	stateDir := t.TempDir()
	cfg := Config{
		Workers: soakWorkers, Rounds: soakRounds, Samples: soakSamples,
		Seed: soakSeed, Aggregator: "fedavg", Optimizer: "momentum", LR: 0.05,
		RoundRetries: 100, JoinTimeout: 20 * time.Second,
		StateDir: stateDir,
		Logf:     t.Logf,
	}

	// First coordinator life: killed right after round 2's fold and
	// checkpoint — the crash the durable state exists for.
	var c1 *Coordinator
	cfg1 := cfg
	cfg1.afterRound = func(r int) {
		if r == 2 {
			c1.Close()
		}
	}
	c1, err = New(cfg1, testModel(soakSeed))
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Start(chaos, addr); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	werrs := make([]error, soakWorkers)
	for i := 0; i < soakWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wo := workerOptions(fmt.Sprintf("w%d", i), soakSeed, soakSamples, nil)
			wo.Retries = 100
			wo.BackoffMin = 2 * time.Millisecond
			wo.BackoffMax = 50 * time.Millisecond
			_, werrs[i] = RunWorker(chaos, addr, wo)
		}(i)
	}

	if _, err := c1.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("killed coordinator returned %v, want ErrClosed", err)
	}

	// Second life: same state dir, same address. The workers' reconnect
	// loops have been dialing the whole time; the resumed coordinator
	// re-seats their slots and the run continues at round 3.
	c2, err := New(cfg, testModel(soakSeed))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c2.StartRound(); got != 3 {
		t.Fatalf("restarted coordinator resumes at round %d, want 3", got)
	}
	if _, err := c2.Start(chaos, addr); err != nil {
		t.Fatal(err)
	}
	rep, err := c2.Wait()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Rounds); got != soakRounds-3 {
		t.Fatalf("resumed run reports %d rounds, want %d", got, soakRounds-3)
	}
	for i, werr := range werrs {
		// A worker whose final ack or done frame was eaten by chaos after
		// the run completed may exhaust its dial budget against the gone
		// coordinator; that bounded give-up is correct behaviour. Anything
		// else — a rejection, a poisoned state, a protocol error — fails.
		if werr != nil && !strings.Contains(werr.Error(), "giving up after") {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}

	if chaos.Corrupted() == 0 {
		t.Fatalf("chaos injected no frame corruption; the soak exercised nothing")
	}

	var got []*tensor.Tensor
	for _, p := range c2.Global().Params() {
		got = append(got, p.Value)
	}
	assertBitEqual(t, got, want, "chaos soak vs fault-free run")
}

// TestChaosCorruptionSurfacesTyped pins the chaos invariant directly: every
// frame the chaos layer mangles must be rejected by the receiving codec as
// ckpt.ErrCorrupt — never delivered as a plausible message — across payload
// sizes including the empty frame (where the flip lands in the CRC field).
func TestChaosCorruptionSurfacesTyped(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	chaos := &Chaos{Seed: 9, Corrupt: 1}
	sender := chaos.wrap(newFrameConn(a, ckpt.StyleRaw))
	receiver := newFrameConn(b, ckpt.StyleRaw)

	payloads := [][]byte{nil, {0x42}, make([]byte, 1000), make([]byte, 65537)}
	for i, p := range payloads {
		sendErr := make(chan error, 1)
		go func() { sendErr <- sender.Send(ckpt.Frame{Type: msgUpdate, Payload: p}) }()
		_, err := receiver.Recv()
		if !errors.Is(err, ckpt.ErrCorrupt) {
			t.Fatalf("payload %d (%d bytes): corrupted frame surfaced as %v, want ckpt.ErrCorrupt", i, len(p), err)
		}
		if err := <-sendErr; err != nil {
			t.Fatalf("payload %d: sender failed: %v", i, err)
		}
	}
	if got := chaos.Corrupted(); got != int64(len(payloads)) {
		t.Fatalf("chaos counted %d corrupted frames, want %d", got, len(payloads))
	}
}

// TestChaosPartition pins that a partition window refuses new dials and
// fails established connections, and that traffic flows again once it lifts.
func TestChaosPartition(t *testing.T) {
	chaos := &Chaos{Inner: NewLoopback(), Seed: 4}
	l, err := chaos.Listen("part")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					if _, err := c.Recv(); err != nil {
						return
					}
				}
			}()
		}
	}()

	conn, err := chaos.Dial("part")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(ckpt.Frame{Type: msgHeartbeat}); err != nil {
		t.Fatalf("send before partition: %v", err)
	}

	chaos.PartitionFor(time.Hour)
	if _, err := chaos.Dial("part"); err == nil {
		t.Fatalf("dial succeeded during partition")
	}
	if err := conn.Send(ckpt.Frame{Type: msgHeartbeat}); err == nil {
		t.Fatalf("send succeeded during partition")
	}

	chaos.PartitionFor(0) // lift it
	conn2, err := chaos.Dial("part")
	if err != nil {
		t.Fatalf("dial after partition lifted: %v", err)
	}
	defer conn2.Close()
	if err := conn2.Send(ckpt.Frame{Type: msgHeartbeat}); err != nil {
		t.Fatalf("send after partition lifted: %v", err)
	}
}

// TestHandshakeDeadline pins the silent-dialer satellite: a connection that
// never sends its hello is closed by the coordinator's handshake deadline
// instead of pinning an accept goroutine, and the fleet still serves real
// workers afterwards.
func TestHandshakeDeadline(t *testing.T) {
	tr := NewLoopback()
	c, err := New(Config{
		Workers: 1, Rounds: 1, Samples: 8, Seed: 3,
		HandshakeTimeout: 50 * time.Millisecond,
	}, testModel(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr, err := c.Start(tr, "")
	if err != nil {
		t.Fatal(err)
	}

	silent, err := tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	severed := make(chan error, 1)
	go func() {
		_, err := silent.Recv()
		severed <- err
	}()
	select {
	case err := <-severed:
		if err == nil {
			t.Fatalf("silent dialer received a frame instead of being cut off")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("silent dialer still connected after the handshake deadline")
	}

	// The accept loop is free; a real worker joins and the run completes.
	res, err := RunWorker(tr, addr, workerOptions("w0", 3, 8, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("worker contributed %d rounds, want 1", res.Rounds)
	}
}
