// Package coord runs a fleet training round loop over a real transport: a
// long-running coordinator process owns the global model, round state and
// aggregator, and edge worker processes register with a capability
// handshake, pull round assignments, train locally with the existing
// chain/plan machinery, and push updates back.
//
// The wire protocol is deliberately thin: every message is one ckpt frame
// (the checkpoint codec's 28-byte header + CRC32, raw or DEFLATE payload)
// and every tensor crosses as the fp64-exact nn tensor encoding. Combined
// with the fleet engine's deterministic fold contract — updates folded in
// ascending worker-slot order, no RNG consumed under full participation —
// a distributed run produces global weights byte-identical to the
// in-process fleet.Run, over TCP or the in-process Loopback transport
// alike; the equivalence tests pin exactly that.
//
// The fleet is elastic. A worker that dies mid-round (connection error,
// missed liveness deadline) is dropped from that round's fold and the round
// completes with the survivors. The coordinator keeps each slot's latest
// durable state (optimizer slots, progress counters, captured with every
// update), so a worker rejoining under the same name recovers its optimizer
// state exactly as fleet.ResumeFrom restores a checkpointed in-process
// worker. Stragglers past the round deadline stay joined: their late update
// is acknowledged and discarded, and they rejoin the next round.
package coord

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/compress"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/obs"
	"github.com/edgeml/edgetrain/obs/health"
)

// ErrClosed is returned by Wait when the coordinator was closed before the
// run completed.
var ErrClosed = errors.New("coord: coordinator closed")

// Config controls a coordinated fleet run.
type Config struct {
	// Workers is the fleet size: the number of slots, which fixes the shard
	// count. Workers join and leave elastically, but the sharding never
	// changes mid-run.
	Workers int
	// MinWorkers is how many workers must join before round zero starts
	// (default Workers).
	MinWorkers int
	// Rounds is the number of aggregation rounds (default 1).
	Rounds int
	// LocalEpochs, BatchSize and Samples mirror fleet.Config and the dataset
	// size; they are handed to workers in the welcome so every worker
	// reconstructs the same shards the in-process engine would.
	LocalEpochs int
	BatchSize   int
	Samples     int
	// Seed is the run seed, forwarded to workers for deterministic dataset
	// and model construction.
	Seed uint64
	// Aggregator is the aggregation mode: "fedavg" (default) or "allreduce".
	Aggregator string
	// Optimizer ("sgd", "momentum", "adam"; default "sgd") and LR (default
	// 0.05) configure both the workers' local optimisers and, for
	// all-reduce, the coordinator's global optimiser.
	Optimizer string
	LR        float64
	// Compression is the update-codec spec (compress.ParseSpec syntax, e.g.
	// "topk:0.05+int8+deflate"); empty or "none" ships full fp64 updates.
	// The spec is handed to workers in the welcome, and the handshake rejects
	// workers lacking a codec the spec requires.
	Compression string
	// UplinkMbps is the modeled uplink rate behind the report's
	// ModeledUplink figures (default 10, the Waggle-class LTE link).
	UplinkMbps float64
	// JoinTimeout bounds the wait for MinWorkers at startup; if it expires
	// with at least one worker joined, the run starts short-handed (default
	// 30s).
	JoinTimeout time.Duration
	// UpdateTimeout is the per-worker liveness bound: a worker expected to
	// deliver an update that has been silent (no heartbeat, no message) this
	// long is declared dead and dropped from the round. Zero disables.
	UpdateTimeout time.Duration
	// RoundDeadline is the hard cap on one round's collection phase. When it
	// expires, workers still outstanding are marked dropped for the round
	// (they stay joined; a late update is acknowledged and discarded) and
	// the fold proceeds with the updates in hand. Zero disables.
	RoundDeadline time.Duration
	// RoundRetries bounds how many times one round is re-broadcast when its
	// collection ends below the MinWorkers quorum (workers died or straggled
	// past the deadline). Between attempts the coordinator waits for the
	// fleet to recover — a rejoining worker restores its optimizer state and
	// retrains the round from the identical basis, so a retried round folds
	// the exact updates an undisturbed round would. Default 3; negative
	// disables the quorum entirely (fold whatever arrived, the pre-quorum
	// behaviour).
	RoundRetries int
	// HandshakeTimeout bounds how long an accepted connection may sit silent
	// before its hello arrives, so a dialer that never speaks cannot pin an
	// accept goroutine forever (default 10s).
	HandshakeTimeout time.Duration
	// StateDir, when non-empty, makes the coordinator durable: the run loop
	// snapshots the global model, global optimizer, round cursor and fleet
	// membership at every round boundary and writes them crash-safe via
	// ckpt.Dir off the fold path. A coordinator restarted on the same
	// StateDir resumes from the last completed round; reconnecting workers
	// recover their optimizer state from the welcome, so the finished run is
	// byte-identical to one that was never interrupted. One coordinator
	// process owns a StateDir at a time.
	StateDir string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	// afterRound, when non-nil, runs on the run loop after round r's fold
	// and checkpoint enqueue — the test hook chaos tests use to kill the
	// coordinator at a chosen round boundary.
	afterRound func(round int)
}

// Coordinator owns the global model and drives the round loop over a
// transport. All mutable round state is confined to one goroutine (the run
// loop); connection handlers only perform I/O and exchange typed events
// with it, so the coordinator needs no lock around model or slot state.
type Coordinator struct {
	cfg        Config
	agg        fleet.Aggregator
	spec       compress.Spec
	global     *chain.Chain
	globalPs   []*nn.Param
	modelBytes int64

	listener Listener
	events   chan event
	quit     chan struct{}
	done     chan struct{}
	closing  sync.Once
	started  atomic.Bool

	// Durable-state machinery (nil / zero without Config.StateDir): the
	// checkpoint directory, the round the run loop starts at (non-zero after
	// a resume) and the membership restored from the checkpoint.
	stateDir   *ckpt.Dir
	startRound int
	resumed    []ckpt.WorkerState

	// Observability: co is always non-nil (nil-handle no-ops when no
	// registry is installed); the health atomics back the /healthz
	// endpoint without touching the run loop's state. mon evaluates the
	// training-health rules at round boundaries (always non-nil; its
	// alert counter no-ops without a registry), and flaps counts worker
	// rejoins since the last round boundary (run-loop only).
	co          *coordObs
	mon         *health.Monitor
	flaps       int
	healthRound atomic.Int64
	healthLive  atomic.Int64

	mu     sync.Mutex
	report *fleet.Report
	states []ckpt.WorkerState
	runErr error
}

// New builds a coordinator around the model the factory produces. The
// factory must match the workers' (same seed, same architecture): the
// handshake does not ship code, only configuration.
func New(cfg Config, model func() (*chain.Chain, error)) (*Coordinator, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("coord: fleet size %d", cfg.Workers)
	}
	if cfg.MinWorkers <= 0 || cfg.MinWorkers > cfg.Workers {
		cfg.MinWorkers = cfg.Workers
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.LocalEpochs <= 0 {
		cfg.LocalEpochs = 1
	}
	if cfg.Aggregator == "" {
		cfg.Aggregator = "fedavg"
	}
	if cfg.Optimizer == "" {
		cfg.Optimizer = "sgd"
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 30 * time.Second
	}
	if cfg.RoundRetries == 0 {
		cfg.RoundRetries = 3
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	spec, err := compress.ParseSpec(cfg.Compression)
	if err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	if cfg.UplinkMbps < 0 {
		return nil, fmt.Errorf("coord: uplink rate %v Mbps", cfg.UplinkMbps)
	}
	if cfg.UplinkMbps == 0 {
		cfg.UplinkMbps = 10
	}
	if model == nil {
		return nil, fmt.Errorf("coord: nil model factory")
	}
	globalOpt, err := trainer.NewOptimizer(cfg.Optimizer, cfg.LR)
	if err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	agg, err := fleet.NewAggregator(cfg.Aggregator, globalOpt)
	if err != nil {
		return nil, err
	}
	global, err := model()
	if err != nil {
		return nil, fmt.Errorf("coord: building global model: %w", err)
	}
	if global == nil || global.Len() == 0 {
		return nil, fmt.Errorf("coord: model factory produced an empty chain")
	}
	c := &Coordinator{
		cfg:        cfg,
		agg:        agg,
		spec:       spec,
		global:     global,
		globalPs:   global.Params(),
		modelBytes: nn.ParamBytes(global.Stages),
		events:     make(chan event, 64),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	c.co = newCoordObs()
	c.mon = health.NewMonitor()
	if cfg.StateDir != "" {
		if err := c.openState(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// StartRound is the round the run loop begins at: zero for a fresh run, the
// last durably completed round's successor after a StateDir resume.
func (c *Coordinator) StartRound() int { return c.startRound }

// Start binds the transport endpoint and launches the accept and round
// loops, returning the bound address workers should dial.
func (c *Coordinator) Start(t Transport, addr string) (string, error) {
	if c.started.Swap(true) {
		return "", fmt.Errorf("coord: coordinator already started")
	}
	obs.DefaultTracer().NameLane(-1, "coordinator")
	l, err := t.Listen(addr)
	if err != nil {
		return "", err
	}
	c.listener = l
	go c.acceptLoop()
	go c.run()
	return l.Addr(), nil
}

// Wait blocks until the run completes (or the coordinator is closed) and
// returns the assembled fleet report.
func (c *Coordinator) Wait() (*fleet.Report, error) {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.report, c.runErr
}

// Global returns the global model. Safe to read after Wait returns.
func (c *Coordinator) Global() *chain.Chain { return c.global }

// WorkerStates returns each slot's latest captured durable state, in slot
// order (slots that never delivered an update are omitted). Safe after Wait.
func (c *Coordinator) WorkerStates() []ckpt.WorkerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.states
}

// Close aborts a running coordinator and releases the listener. Closing
// after a completed run is a no-op beyond cleanup.
func (c *Coordinator) Close() error {
	c.closing.Do(func() { close(c.quit) })
	if c.listener != nil {
		c.listener.Close()
	}
	return nil
}

type eventKind int

const (
	evHello eventKind = iota
	evUpdate
	evDeath
	evBye // handler delivered the final done frame; the worker left cleanly
)

type event struct {
	kind       eventKind
	rem        *remote
	conn       Conn
	hello      hello
	upd        updateMsg
	helloReply chan helloReply
	ackReply   chan ackReply
}

type helloReply struct {
	a   Assignment
	rem *remote
	err error
}

type ackReply struct {
	status string
	drop   bool
}

// directive is what a parked pull receives: the next round's broadcast, or
// the end of the run.
type directive struct {
	done  bool
	round int
	frame ckpt.Frame
}

// remote is the run loop's view of one live worker connection. roundCh is
// buffered so the run loop never blocks on a handler; lastSeen is written by
// the handler on every received message (heartbeats included) and read by
// the liveness check.
type remote struct {
	conn     Conn
	name     string
	index    int
	roundCh  chan directive
	lastSeen atomic.Int64
	wireMark int64 // run-loop only: Stats() watermark for per-round deltas
}

// slot is one fleet position: who holds it, and the durable state the
// coordinator retains for crash recovery.
type slot struct {
	name         string
	device       string
	budget       int64
	rem          *remote // nil while the slot has no live worker
	state        *ckpt.WorkerState
	strategy     string
	shardSamples int
}

// post delivers an event to the run loop, giving up if the coordinator is
// shutting down (so handlers never block forever on a gone run loop).
func (c *Coordinator) post(e event) bool {
	select {
	case c.events <- e:
		return true
	case <-c.quit:
		return false
	case <-c.done:
		return false
	}
}

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			return
		}
		go c.serve(conn)
	}
}

// serve owns one connection: it performs every read and write on it,
// translating protocol messages into run-loop events. The protocol is
// strict ping-pong from the worker's side, so a synchronous pipe transport
// (Loopback) can never deadlock: whenever the worker writes, this goroutine
// is reading, and vice versa.
func (c *Coordinator) serve(conn Conn) {
	defer conn.Close()
	// The handshake read deadline: a dialer that connects and never speaks
	// must not pin this goroutine. Closing the connection is the one
	// transport-agnostic way to unblock a pending Recv (net.Pipe and TCP
	// alike); if the timer won the race the handshake is over either way.
	timer := time.AfterFunc(c.cfg.HandshakeTimeout, func() { conn.Close() })
	f, err := conn.Recv()
	if !timer.Stop() {
		return
	}
	if err != nil {
		return
	}
	if f.Type != msgHello {
		conn.Send(encodeError(fmt.Sprintf("coord: expected hello, got %s message", msgName(f.Type))))
		return
	}
	h, err := parseHello(f.Payload)
	if err != nil {
		conn.Send(encodeError(fmt.Sprintf("coord: bad hello: %v", err)))
		return
	}
	reply := make(chan helloReply, 1)
	if !c.post(event{kind: evHello, conn: conn, hello: h, helloReply: reply}) {
		return
	}
	var hr helloReply
	select {
	case hr = <-reply:
	case <-c.quit:
		return
	case <-c.done:
		// The run loop may have replied just before finishing.
		select {
		case hr = <-reply:
		default:
			return
		}
	}
	if hr.err != nil {
		conn.Send(encodeError(hr.err.Error()))
		return
	}
	rem := hr.rem
	if err := conn.Send(encodeWelcome(hr.a)); err != nil {
		c.post(event{kind: evDeath, rem: rem})
		return
	}
	for {
		f, err := conn.Recv()
		if err != nil {
			c.post(event{kind: evDeath, rem: rem})
			return
		}
		rem.lastSeen.Store(time.Now().UnixNano())
		switch f.Type {
		case msgHeartbeat:
			// One-way liveness; lastSeen is already refreshed. A non-empty
			// payload is a telemetry shipment, ingested here off the run
			// loop; a malformed one is as fatal as any other bad message.
			c.co.heartbeats.Inc()
			tm, err := parseHeartbeat(f.Payload)
			if err != nil {
				conn.Send(encodeError(fmt.Sprintf("coord: bad heartbeat: %v", err)))
				c.post(event{kind: evDeath, rem: rem})
				return
			}
			c.ingestTelemetry(rem, tm)
		case msgPull:
			var d directive
			select {
			case d = <-rem.roundCh:
			case <-c.quit:
				// The coordinator is being torn down mid-run (crash, Close).
				// Sever the connection WITHOUT a done frame: the run did not
				// complete, and the worker's reconnect loop must keep dialing
				// until a restarted coordinator picks the run back up.
				return
			}
			if d.done {
				conn.Send(ckpt.Frame{Type: msgDone})
				c.post(event{kind: evBye, rem: rem})
				return
			}
			if err := conn.Send(d.frame); err != nil {
				c.post(event{kind: evDeath, rem: rem})
				return
			}
		case msgUpdate:
			m, err := parseUpdate(f.Payload)
			if err != nil {
				conn.Send(encodeError(fmt.Sprintf("coord: bad update: %v", err)))
				c.post(event{kind: evDeath, rem: rem})
				return
			}
			c.co.stagedBytes.Add(int64(len(f.Payload)))
			// The update's trailing telemetry shipment (round-closing
			// spans) lands before the fold decision, so the stitched trace
			// has the local-train span when the round span closes.
			c.ingestTelemetry(rem, m.telem)
			// Decode a compressed blob here, off the run loop, so slow
			// decodes of one worker never serialize the round. Decode is a
			// pure function of the blob; the run loop still checks that the
			// codec matches the run's configured spec before folding.
			if m.codec != "" {
				dSpan := obs.DefaultTracer().Span("decode", m.round, rem.index)
				dec, err := compress.Decode(m.blob)
				dSpan.End()
				if err != nil {
					conn.Send(encodeError(fmt.Sprintf("coord: bad update: %v", err)))
					c.post(event{kind: evDeath, rem: rem})
					return
				}
				if dec.Spec.String() != m.codec {
					conn.Send(encodeError(fmt.Sprintf("coord: bad update: blob spec %q does not match declared codec %q",
						dec.Spec.String(), m.codec)))
					c.post(event{kind: evDeath, rem: rem})
					return
				}
				m.vecs = dec.Vecs
			}
			ar := make(chan ackReply, 1)
			if !c.post(event{kind: evUpdate, rem: rem, upd: m, ackReply: ar}) {
				return
			}
			var a ackReply
			select {
			case a = <-ar:
			case <-c.quit:
				return
			case <-c.done:
				// The run loop may have replied just before finishing.
				select {
				case a = <-ar:
				default:
					return
				}
			}
			if err := conn.Send(encodeAck(ackMsg{round: m.round, status: a.status})); err != nil {
				c.post(event{kind: evDeath, rem: rem})
				return
			}
			if a.drop {
				return
			}
		default:
			conn.Send(encodeError(fmt.Sprintf("coord: unexpected %s message", msgName(f.Type))))
			c.post(event{kind: evDeath, rem: rem})
			return
		}
	}
}

// run is the coordinator's single-owner state machine: gather the fleet,
// drive the rounds, assemble the report.
func (c *Coordinator) run() {
	slots := make([]slot, c.cfg.Workers)
	// A resumed run re-seats the checkpointed membership: the slot names are
	// reserved and the durable states staged, so a worker reconnecting under
	// its old name walks the ordinary rejoin path and recovers its optimizer
	// state from before the crash.
	for i := range c.resumed {
		ws := c.resumed[i]
		if ws.Index < 0 || ws.Index >= len(slots) {
			continue
		}
		slots[ws.Index].name = ws.Name
		slots[ws.Index].state = &ws
	}
	saver := c.startSaver()
	var rounds []fleet.RoundStats
	err := func() error {
		if err := c.gather(slots); err != nil {
			return err
		}
		for r := c.startRound; r < c.cfg.Rounds; r++ {
			c.healthRound.Store(int64(r))
			c.co.roundCursor.Set(float64(r))
			rs, err := c.runRound(r, slots)
			if err != nil {
				return err
			}
			// Rejoins since the previous boundary are this round's flap
			// count; the window resets for the next round.
			rs.Flaps = c.flaps
			c.flaps = 0
			rounds = append(rounds, rs)
			c.co.commitRound(&rs, slots)
			if alerts := c.mon.ObserveRound(rs.HealthStats()); len(alerts) > 0 {
				for _, a := range alerts {
					c.cfg.Logf("coord: ALERT %s", a)
				}
			}
			c.cfg.Logf("coord: round %d: %d participants, %d dropouts, loss %.4f, wall %v",
				r, rs.Participants, rs.Dropouts, rs.Loss, rs.WallClock.Round(time.Millisecond))
			if saver != nil {
				// Snapshot on the round path (cheap clones), write in the
				// background: the fold never waits on flash.
				s, err := c.captureSession(r+1, slots)
				if err != nil {
					return err
				}
				saver.enqueue(s)
			}
			if c.cfg.afterRound != nil {
				c.cfg.afterRound(r)
			}
		}
		return nil
	}()

	// Release every live worker with a done directive; their handlers send
	// the final frame whenever the pull arrives and confirm with a bye.
	awaiting := make(map[*remote]bool)
	for i := range slots {
		if rem := slots[i].rem; rem != nil {
			select {
			case rem.roundCh <- directive{done: true}:
				awaiting[rem] = true
			default:
			}
		}
	}
	// Drain until the byes arrive (bounded), so Wait's caller can exit
	// without severing connections before the final frames are delivered.
	grace := time.NewTimer(5 * time.Second)
	defer grace.Stop()
drain:
	for len(awaiting) > 0 {
		select {
		case e := <-c.events:
			switch e.kind {
			case evBye, evDeath:
				delete(awaiting, e.rem)
			case evHello:
				e.helloReply <- helloReply{err: fmt.Errorf("coord: run complete")}
			case evUpdate:
				e.ackReply <- ackReply{status: AckLate}
			}
		case <-grace.C:
			break drain
		case <-c.quit:
			break drain
		}
	}
	c.listener.Close()
	if saver != nil {
		if serr := saver.drain(); serr != nil && err == nil {
			err = serr
		}
	}

	c.mu.Lock()
	c.runErr = err
	if err == nil {
		c.report = c.buildReport(slots, rounds)
	}
	for i := range slots {
		if slots[i].state != nil {
			c.states = append(c.states, *slots[i].state)
		}
	}
	c.mu.Unlock()
	close(c.done)
}

// gather waits for MinWorkers to join (or JoinTimeout with at least one).
func (c *Coordinator) gather(slots []slot) error {
	deadline := time.NewTimer(c.cfg.JoinTimeout)
	defer deadline.Stop()
	for {
		if liveCount(slots) >= c.cfg.MinWorkers {
			return nil
		}
		select {
		case e := <-c.events:
			c.handleMembership(e, slots, nil, nil)
		case <-deadline.C:
			if liveCount(slots) > 0 {
				c.cfg.Logf("coord: join timeout, starting with %d/%d workers", liveCount(slots), c.cfg.Workers)
				return nil
			}
			return fmt.Errorf("coord: no workers joined within %v", c.cfg.JoinTimeout)
		case <-c.quit:
			return ErrClosed
		}
	}
}

func liveCount(slots []slot) int {
	n := 0
	for i := range slots {
		if slots[i].rem != nil {
			n++
		}
	}
	return n
}

// handleMembership processes hello and death events; update events outside
// a collection window (a straggler finishing between rounds) are
// acknowledged late. expected/rs are the current collection window, nil
// outside one.
func (c *Coordinator) handleMembership(e event, slots []slot, expected map[int]*remote, rs *fleet.RoundStats) {
	switch e.kind {
	case evHello:
		c.handleHello(e, slots)
	case evDeath:
		i := e.rem.index
		if slots[i].rem == e.rem {
			slots[i].rem = nil
			c.co.dropped.Inc()
			c.noteLive(slots)
			c.cfg.Logf("coord: worker %s (slot %d) left", e.rem.name, i)
		}
		if expected != nil && expected[i] == e.rem {
			delete(expected, i)
			rs.Workers[i].Dropped = true
			rs.Dropouts++
		}
	case evUpdate:
		e.ackReply <- ackReply{status: AckLate}
	}
}

func (c *Coordinator) handleHello(e event, slots []slot) {
	h := e.hello
	fail := func(format string, args ...any) {
		c.co.rejected.Inc()
		e.helloReply <- helloReply{err: fmt.Errorf(format, args...)}
	}
	if h.version != ProtocolVersion {
		fail("coord: protocol version %d, coordinator speaks %d", h.version, ProtocolVersion)
		return
	}
	if h.name == "" {
		fail("coord: empty worker name")
		return
	}
	if len(h.aggregators) > 0 && !contains(h.aggregators, c.agg.Name()) {
		fail("coord: fleet runs %q aggregation, worker %s supports %v", c.agg.Name(), h.name, h.aggregators)
		return
	}
	if c.spec.Enabled() {
		for _, need := range c.spec.Required() {
			if !contains(h.codecs, need) {
				fail("coord: fleet compresses updates with %q, worker %s lacks codec %q (supports %v)",
					c.spec.String(), h.name, need, h.codecs)
				return
			}
		}
	}
	// Slot assignment: a returning name reclaims its slot (recovering its
	// state), otherwise the lowest never-used slot, otherwise the lowest
	// dead slot (whose previous holder's state is discarded).
	idx, rejoin := -1, false
	for i := range slots {
		if slots[i].name == h.name {
			if slots[i].rem != nil {
				fail("coord: worker name %q is already connected", h.name)
				return
			}
			idx, rejoin = i, true
			break
		}
	}
	if idx < 0 {
		for i := range slots {
			if slots[i].rem == nil && slots[i].name == "" {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		for i := range slots {
			if slots[i].rem == nil {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		fail("coord: fleet full (%d workers)", len(slots))
		return
	}
	rem := &remote{
		conn:    e.conn,
		name:    h.name,
		index:   idx,
		roundCh: make(chan directive, 1),
	}
	rem.lastSeen.Store(time.Now().UnixNano())
	sent, received := e.conn.Stats()
	rem.wireMark = sent + received
	s := &slots[idx]
	if !rejoin {
		s.state = nil
		s.strategy = ""
		s.shardSamples = 0
	}
	s.name = h.name
	s.device = h.device
	s.budget = h.budgetBytes
	s.rem = rem
	a := Assignment{
		Index:       idx,
		Workers:     len(slots),
		Rounds:      c.cfg.Rounds,
		LocalEpochs: c.cfg.LocalEpochs,
		BatchSize:   c.cfg.BatchSize,
		Samples:     c.cfg.Samples,
		Seed:        c.cfg.Seed,
		Aggregator:  c.agg.Name(),
		Optimizer:   c.cfg.Optimizer,
		LR:          c.cfg.LR,
	}
	if c.spec.Enabled() {
		a.Compression = c.spec.String()
	}
	if rejoin {
		a.State = s.state
	}
	verb := "joined"
	if rejoin {
		c.co.rejoined.Inc()
		c.flaps++
	} else {
		c.co.joined.Inc()
	}
	obs.DefaultTracer().NameLane(idx, h.name)
	if rejoin && s.state != nil {
		verb = "rejoined with recovered state"
	}
	c.noteLive(slots)
	c.cfg.Logf("coord: worker %s (%s, %d MB budget) %s as slot %d", h.name, h.device, h.budgetBytes/1e6, verb, idx)
	e.helloReply <- helloReply{a: a, rem: rem}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// runRound executes one aggregation round: broadcast the global parameters
// to every live worker, collect their updates (handling joins, deaths,
// stragglers and liveness timeouts meanwhile), and fold the arrivals in
// ascending slot order — but only when at least MinWorkers contributed. A
// collection that ends below that quorum folds nothing: the arrived updates
// are acknowledged "retry" and discarded, the coordinator waits for the
// fleet to recover, and the same round is re-broadcast (bounded by
// Config.RoundRetries). Because a retried round re-broadcasts the unchanged
// global parameters and every worker retrains it from its pre-round
// optimizer state, the eventual fold is byte-identical to one that was
// never disturbed.
func (c *Coordinator) runRound(r int, slots []slot) (fleet.RoundStats, error) {
	start := time.Now()
	c.co.roundsStarted.Inc()
	roundSpan := obs.DefaultTracer().Span("round", r, -1)
	rs := fleet.RoundStats{Round: r, Workers: make([]fleet.WorkerRoundStats, len(slots))}
	for i := range rs.Workers {
		rs.Workers[i].Worker = i
	}

	// Broadcast: one encoded frame shared by every directive (payloads are
	// read-only once built), and identical across retry attempts — the
	// global parameters only move when a fold commits.
	params := make([]ckpt.NamedTensor, len(c.globalPs))
	for i, p := range c.globalPs {
		params[i] = ckpt.NamedTensor{Name: p.Name, Tensor: p.Value}
	}
	frame, err := encodeRound(roundMsg{round: r, params: params})
	if err != nil {
		return rs, err
	}

	for attempt := 0; ; attempt++ {
		folded, idle, err := c.attemptRound(r, frame, slots, &rs)
		if err != nil {
			return rs, err
		}
		if folded {
			rs.Retries = attempt
			break
		}
		if c.cfg.RoundRetries >= 0 && attempt >= c.cfg.RoundRetries {
			return rs, fmt.Errorf("coord: round %d: quorum of %d workers not met after %d attempts",
				r, c.cfg.MinWorkers, attempt+1)
		}
		c.co.roundRetries.Inc()
		obs.DefaultTracer().Event("retry", r, -1, fmt.Sprintf("attempt=%d below quorum", attempt+1))
		c.cfg.Logf("coord: round %d below quorum (%d workers required), retrying (attempt %d)",
			r, c.cfg.MinWorkers, attempt+2)
		if err := c.awaitQuorum(r, slots, idle); err != nil {
			return rs, err
		}
	}

	// Measured wire traffic: per-connection byte deltas since the last
	// round boundary (retry attempts included — those bytes really moved).
	for i := range slots {
		rem := slots[i].rem
		if rem == nil {
			continue
		}
		sent, received := rem.conn.Stats()
		total := sent + received
		rs.Workers[i].WireBytes = total - rem.wireMark
		rem.wireMark = total
	}
	// The round's upload phase on the modeled link is bounded by its largest
	// upload — the same accounting fleet.Run applies.
	var maxUpload int64
	for i := range rs.Workers {
		if rs.Workers[i].UploadBytes > maxUpload {
			maxUpload = rs.Workers[i].UploadBytes
		}
	}
	rs.ModeledUplink = fleet.TransferTime(maxUpload, c.cfg.UplinkMbps)
	rs.WallClock = time.Since(start)
	roundSpan.End()
	return rs, nil
}

// pendingUpdate is one staged, validated update awaiting the fold decision.
// Its ack is deliberately withheld: the worker only learns "ok" once its
// update is irrevocably part of the fold, or "retry" when the attempt was
// discarded — so no worker ever counts progress for a round that folded
// nothing, and the committed slot state never diverges from the global model.
type pendingUpdate struct {
	rem *remote
	upd updateMsg
	ack chan ackReply
}

// attemptRound runs one broadcast/collect/fold attempt of round r. It
// returns folded=false when the collection ended below the MinWorkers quorum
// (the caller retries), and idle=true when no live worker could even receive
// the broadcast (the caller waits for membership events before retrying).
// With RoundRetries < 0 the quorum is disabled and every attempt folds
// whatever arrived.
func (c *Coordinator) attemptRound(r int, frame ckpt.Frame, slots []slot, rs *fleet.RoundStats) (folded, idle bool, err error) {
	quorum := c.cfg.RoundRetries >= 0
	tr := obs.DefaultTracer()
	bSpan := tr.Span("broadcast", r, -1)
	expected := make(map[int]*remote)
	for i := range slots {
		rem := slots[i].rem
		if rem == nil {
			continue
		}
		select {
		case rem.roundCh <- directive{round: r, frame: frame}:
			expected[i] = rem
			rs.Workers[i].Participated = true
			rs.Workers[i].DownloadBytes += c.modelBytes
			rs.DownlinkBytes += c.modelBytes
		default:
			// The previous directive was never consumed — the worker has not
			// pulled since; leave it out of this attempt.
		}
	}
	bSpan.EndDetail(fmt.Sprintf("participants=%d", len(expected)))
	if len(expected) == 0 {
		if !quorum {
			return false, true, fmt.Errorf("coord: round %d: no live workers", r)
		}
		return false, true, nil
	}

	var deadlineC <-chan time.Time
	if c.cfg.RoundDeadline > 0 {
		t := time.NewTimer(c.cfg.RoundDeadline)
		defer t.Stop()
		deadlineC = t.C
	}
	var livenessC <-chan time.Time
	if c.cfg.UpdateTimeout > 0 {
		period := c.cfg.UpdateTimeout / 4
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		tk := time.NewTicker(period)
		defer tk.Stop()
		livenessC = tk.C
	}

	// Collect. Valid updates are STAGED, not committed: their acks are held
	// until the fold decision, and slot state moves only on commit.
	staged := make(map[int]pendingUpdate)
	contributed := 0 // staged updates + empty-shard participants
collect:
	for len(expected) > 0 {
		select {
		case e := <-c.events:
			if e.kind != evUpdate {
				c.handleMembership(e, slots, expected, rs)
				continue
			}
			i := e.rem.index
			if e.upd.round != r || expected[i] != e.rem {
				// A straggler delivering a closed round, or a stale remote.
				e.ackReply <- ackReply{status: AckLate}
				continue
			}
			if e.upd.samples == 0 {
				// An idle worker (empty shard) has nothing to contribute,
				// mirroring the in-process engine's skip of empty updates.
				// Nothing of it enters the fold, so the ack needs no staging.
				delete(expected, i)
				contributed++
				e.ackReply <- ackReply{status: AckOK}
				continue
			}
			wantCodec := ""
			if c.spec.Enabled() {
				wantCodec = c.spec.String()
			}
			if e.upd.codec != wantCodec {
				// A worker shipping the wrong codec (or skipping the run's
				// compression) is as malformed as a bad tensor shape: the
				// accounting and the negotiated contract both break.
				c.cfg.Logf("coord: dropping worker %s: update codec %q, run uses %q",
					e.rem.name, e.upd.codec, wantCodec)
				e.ackReply <- ackReply{status: AckRejected, drop: true}
				slots[i].rem = nil
				c.co.badUpdates.Inc()
				c.co.dropped.Inc()
				c.noteLive(slots)
				delete(expected, i)
				rs.Workers[i].Dropped = true
				rs.Dropouts++
				rs.Rejected++
				continue
			}
			u := e.upd.stats
			u.Worker = i
			u.Samples = e.upd.samples
			u.Loss = e.upd.loss
			u.Vecs = e.upd.vecs
			vSpan := tr.Span("validate", r, i)
			err := fleet.ValidateUpdate(c.globalPs, u)
			vSpan.End()
			if err != nil {
				// A poisoned or malformed update: drop the worker, keep the
				// round alive with the rest of the fleet.
				c.cfg.Logf("coord: dropping worker %s: %v", e.rem.name, err)
				e.ackReply <- ackReply{status: AckRejected, drop: true}
				slots[i].rem = nil
				c.co.badUpdates.Inc()
				c.co.dropped.Inc()
				c.noteLive(slots)
				delete(expected, i)
				rs.Workers[i].Dropped = true
				rs.Dropouts++
				rs.Rejected++
				continue
			}
			staged[i] = pendingUpdate{rem: e.rem, upd: e.upd, ack: e.ackReply}
			contributed++
			delete(expected, i)
		case <-deadlineC:
			for i := range expected {
				rs.Workers[i].Dropped = true
				rs.Dropouts++
				c.cfg.Logf("coord: round %d deadline: worker %s still outstanding, dropped from fold", r, slots[i].name)
			}
			break collect
		case <-livenessC:
			now := time.Now().UnixNano()
			for _, rem := range expected {
				if now-rem.lastSeen.Load() > int64(c.cfg.UpdateTimeout) {
					c.cfg.Logf("coord: worker %s silent for %v, declaring dead", rem.name, c.cfg.UpdateTimeout)
					rem.conn.Close() // the handler's Recv fails → death event
				}
			}
		case <-c.quit:
			// Handlers parked on their ack replies unblock via c.quit.
			return false, false, ErrClosed
		}
	}

	if quorum && contributed < c.cfg.MinWorkers {
		// Below quorum: fold nothing. The staged updates are discarded and
		// their workers told to retry — they rewind to their pre-round
		// optimizer state and retrain the identical round.
		for _, p := range staged {
			p.ack <- ackReply{status: AckRetry}
		}
		return false, false, nil
	}

	// Commit: fold in ascending slot order — the Aggregator contract's fold
	// order — then durably adopt each contributor's state, then release the
	// held acks. An acked worker's state is therefore always the state the
	// fold consumed.
	var updates []fleet.Update
	for i := 0; i < len(slots); i++ {
		p, ok := staged[i]
		if !ok {
			continue
		}
		u := p.upd.stats
		u.Worker = i
		u.Samples = p.upd.samples
		u.Loss = p.upd.loss
		u.Vecs = p.upd.vecs
		updates = append(updates, u)
	}
	if len(updates) > 0 {
		fSpan := tr.Span("fold", r, -1)
		if err := c.agg.Fold(c.globalPs, updates); err != nil {
			return false, false, fmt.Errorf("coord: round %d: %s fold: %w", r, c.agg.Name(), err)
		}
		fSpan.End()
	}
	for i := 0; i < len(slots); i++ {
		p, ok := staged[i]
		if !ok {
			continue
		}
		st := p.upd.state
		st.Index = i
		st.Name = p.rem.name
		slots[i].state = &st
		slots[i].strategy = p.upd.strategy
		slots[i].shardSamples = p.upd.samples
		ws := &rs.Workers[i]
		ws.Duration = p.upd.duration
		ws.Samples = p.upd.samples
		ws.Loss = p.upd.loss
		ws.ForwardEvals = p.upd.stats.ForwardEvals
		ws.BackwardEvals = p.upd.stats.BackwardEvals
		ws.PeakStates = p.upd.stats.PeakStates
		ws.PeakRAMBytes = p.upd.stats.PeakRAMBytes
		ws.PeakDiskBytes = p.upd.stats.PeakDiskBytes
		ws.DiskWrites = p.upd.stats.DiskWrites
		ws.DiskReads = p.upd.stats.DiskReads
		upload := c.modelBytes
		if p.upd.codec != "" {
			upload = int64(len(p.upd.blob))
		}
		ws.UploadBytes = upload
		ws.RawUploadBytes = c.modelBytes
		rs.UplinkBytes += upload
		rs.RawUplinkBytes += c.modelBytes
		rs.Participants++
		p.ack <- ackReply{status: AckOK}
	}
	rs.Loss = fleet.WeightedLoss(updates)
	return true, false, nil
}

// awaitQuorum blocks between round attempts until MinWorkers are live again
// (processing joins, rejoins and deaths meanwhile), bounded by JoinTimeout.
// When the failed attempt was idle — not a single worker could receive the
// broadcast — it first waits for one membership event, so a retry loop can
// never spin without the fleet changing underneath it.
func (c *Coordinator) awaitQuorum(r int, slots []slot, needEvent bool) error {
	deadline := time.NewTimer(c.cfg.JoinTimeout)
	defer deadline.Stop()
	for needEvent || liveCount(slots) < c.cfg.MinWorkers {
		select {
		case e := <-c.events:
			c.handleMembership(e, slots, nil, nil)
			needEvent = false
		case <-deadline.C:
			return fmt.Errorf("coord: round %d: %d/%d workers after waiting %v to retry",
				r, liveCount(slots), c.cfg.MinWorkers, c.cfg.JoinTimeout)
		case <-c.quit:
			return ErrClosed
		}
	}
	return nil
}

func (c *Coordinator) buildReport(slots []slot, rounds []fleet.RoundStats) *fleet.Report {
	rep := &fleet.Report{
		Aggregator: c.agg.Name(),
		ModelBytes: c.modelBytes,
		UplinkMbps: c.cfg.UplinkMbps,
		Alerts:     c.mon.Alerts(),
	}
	if c.spec.Enabled() {
		rep.Compression = c.spec.String()
	}
	for i := range slots {
		s := &slots[i]
		name := s.name
		if name == "" {
			name = fmt.Sprintf("slot%d-empty", i)
		}
		strategy := s.strategy
		if strategy == "" {
			strategy = "idle"
		}
		rep.Workers = append(rep.Workers, fleet.WorkerSummary{
			Index:        i,
			Name:         name,
			Device:       s.device,
			BudgetBytes:  s.budget,
			ShardSamples: s.shardSamples,
			Strategy:     strategy,
		})
	}
	for _, rs := range rounds {
		rep.Add(rs)
	}
	return rep
}
