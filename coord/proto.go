package coord

import (
	"bytes"
	"fmt"
	"time"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/wire"
)

// ProtocolVersion is the coordination protocol's version, exchanged in the
// hello handshake; a coordinator rejects workers speaking a different one.
// Version 2 added update compression: the hello advertises codec
// capabilities, the welcome assigns the run's codec spec, and update frames
// may carry an encoded blob instead of raw tensors.
// Version 3 added telemetry shipping: heartbeat payloads and a trailing
// update block may carry a delta metric snapshot plus recent trace events
// (see telemetry.go). A v2 worker is cleanly rejected at the handshake
// with a versioned error message.
const ProtocolVersion = 3

// Message types. The checkpoint file format owns frame types 1..6; the wire
// protocol starts at 16 so a protocol message can never be mistaken for a
// checkpoint frame.
const (
	msgHello     = uint32(16) // worker → coordinator: capability handshake
	msgWelcome   = uint32(17) // coordinator → worker: slot + run assignment
	msgPull      = uint32(18) // worker → coordinator: ready for a round
	msgRound     = uint32(19) // coordinator → worker: round index + global params
	msgUpdate    = uint32(20) // worker → coordinator: trained update + state
	msgAck       = uint32(21) // coordinator → worker: update verdict
	msgHeartbeat = uint32(22) // worker → coordinator: liveness while training
	msgDone      = uint32(23) // coordinator → worker: run complete, disconnect
	msgError     = uint32(24) // coordinator → worker: fatal rejection
)

// Ack statuses.
const (
	// AckOK: the update was accepted and will be folded this round.
	AckOK = "ok"
	// AckLate: the update arrived after its round closed (straggler past the
	// deadline); it was discarded but the worker stays joined.
	AckLate = "late"
	// AckRejected: the update failed validation; the coordinator drops the
	// worker.
	AckRejected = "rejected"
	// AckRetry: the update arrived, but its round closed below the
	// MinWorkers quorum and folded nothing. The worker rewinds to its
	// pre-round optimizer state and retrains the round when it is
	// re-broadcast.
	AckRetry = "retry"
)

// msgName labels a message type in errors and logs.
func msgName(typ uint32) string {
	switch typ {
	case msgHello:
		return "hello"
	case msgWelcome:
		return "welcome"
	case msgPull:
		return "pull"
	case msgRound:
		return "round"
	case msgUpdate:
		return "update"
	case msgAck:
		return "ack"
	case msgHeartbeat:
		return "heartbeat"
	case msgDone:
		return "done"
	case msgError:
		return "error"
	default:
		return fmt.Sprintf("unknown(%d)", typ)
	}
}

// hello is the worker's capability handshake.
type hello struct {
	version     uint32
	name        string
	device      string
	budgetBytes int64
	// aggregators and strategies are the worker's supported aggregation
	// modes and checkpoint strategies; the coordinator rejects a worker that
	// cannot run the fleet's aggregator.
	aggregators []string
	strategies  []string
	// codecs is the worker's supported update-compression codecs (names from
	// compress.AllCodecs); the coordinator rejects a worker lacking a codec
	// the run's compression spec requires.
	codecs []string
}

func encodeHello(h hello) ckpt.Frame {
	var b bytes.Buffer
	wire.PutUint32(&b, h.version)
	wire.PutString(&b, h.name)
	wire.PutString(&b, h.device)
	wire.PutInt64(&b, h.budgetBytes)
	putStrings(&b, h.aggregators)
	putStrings(&b, h.strategies)
	putStrings(&b, h.codecs)
	return ckpt.Frame{Type: msgHello, Payload: b.Bytes()}
}

func parseHello(payload []byte) (hello, error) {
	p := wire.NewReader(payload)
	var h hello
	h.version = p.Uint32("protocol version")
	h.name = p.String("worker name")
	h.device = p.String("device name")
	h.budgetBytes = p.Int64("budget bytes")
	h.aggregators = takeStrings(p, "aggregator")
	h.strategies = takeStrings(p, "strategy")
	h.codecs = takeStrings(p, "codec")
	return h, p.Done()
}

// Assignment is what the coordinator hands a joining worker: its slot in the
// fleet and every run parameter the worker needs to reproduce the in-process
// fleet's local computation exactly.
type Assignment struct {
	// Index is the worker's fleet slot — its shard index and fold position.
	Index int
	// Workers is the fleet size (the shard count).
	Workers int
	// Rounds, LocalEpochs, BatchSize and Samples mirror fleet.Config and the
	// dataset size the run was configured with.
	Rounds      int
	LocalEpochs int
	BatchSize   int
	Samples     int
	// Seed is the run seed, for deterministic dataset/model construction.
	Seed uint64
	// Aggregator is the aggregation mode ("fedavg", "allreduce").
	Aggregator string
	// Optimizer and LR configure the worker's local optimiser.
	Optimizer string
	LR        float64
	// Compression is the run's canonical update-codec spec
	// (compress.Spec.String()); empty means updates cross uncompressed.
	Compression string
	// State is the worker's recovered durable state when it is rejoining a
	// slot it held before (optimizer slots, progress counters); nil on a
	// fresh join.
	State *ckpt.WorkerState
}

func encodeWelcome(a Assignment) ckpt.Frame {
	var b bytes.Buffer
	wire.PutInt64(&b, int64(a.Index))
	wire.PutInt64(&b, int64(a.Workers))
	wire.PutInt64(&b, int64(a.Rounds))
	wire.PutInt64(&b, int64(a.LocalEpochs))
	wire.PutInt64(&b, int64(a.BatchSize))
	wire.PutInt64(&b, int64(a.Samples))
	wire.PutUint64(&b, a.Seed)
	wire.PutString(&b, a.Aggregator)
	wire.PutString(&b, a.Optimizer)
	wire.PutFloat64(&b, a.LR)
	wire.PutString(&b, a.Compression)
	if a.State != nil {
		wire.PutUint32(&b, 1)
		st := ckpt.EncodeWorkerState(a.State)
		wire.PutUint32(&b, uint32(len(st)))
		b.Write(st)
	} else {
		wire.PutUint32(&b, 0)
	}
	return ckpt.Frame{Type: msgWelcome, Payload: b.Bytes()}
}

func parseWelcome(payload []byte) (Assignment, error) {
	p := wire.NewReader(payload)
	var a Assignment
	a.Index = int(p.Int64("index"))
	a.Workers = int(p.Int64("workers"))
	a.Rounds = int(p.Int64("rounds"))
	a.LocalEpochs = int(p.Int64("local epochs"))
	a.BatchSize = int(p.Int64("batch size"))
	a.Samples = int(p.Int64("samples"))
	a.Seed = p.Uint64("seed")
	a.Aggregator = p.String("aggregator")
	a.Optimizer = p.String("optimizer")
	a.LR = p.Float64("learning rate")
	a.Compression = p.String("compression spec")
	if p.Uint32("state flag") != 0 {
		n := p.Uint32("state length")
		st := p.Take(int(n), "worker state")
		if err := p.Err(); err != nil {
			return a, err
		}
		ws, err := ckpt.DecodeWorkerState(st)
		if err != nil {
			return a, fmt.Errorf("coord: welcome worker state: %w", err)
		}
		a.State = ws
	}
	return a, p.Done()
}

// roundMsg is one round directive: the round index and the current global
// parameters (the broadcast half of fleet.Round).
type roundMsg struct {
	round  int
	params []ckpt.NamedTensor
}

func encodeRound(m roundMsg) (ckpt.Frame, error) {
	var b bytes.Buffer
	wire.PutInt64(&b, int64(m.round))
	wire.PutUint32(&b, uint32(len(m.params)))
	for _, nt := range m.params {
		wire.PutString(&b, nt.Name)
		if err := putTensor(&b, nt.Tensor); err != nil {
			return ckpt.Frame{}, fmt.Errorf("coord: encoding parameter %q: %w", nt.Name, err)
		}
	}
	return ckpt.Frame{Type: msgRound, Payload: b.Bytes()}, nil
}

func parseRound(payload []byte) (roundMsg, error) {
	p := wire.NewReader(payload)
	var m roundMsg
	m.round = int(p.Int64("round"))
	n := p.Uint32("parameter count")
	if p.Err() == nil && int64(n) > maxMessageBytes/8 {
		return m, fmt.Errorf("coord: implausible parameter count %d", n)
	}
	for i := uint32(0); i < n && p.Err() == nil; i++ {
		name := p.String("parameter name")
		t, err := takeTensor(p, "parameter")
		if err != nil {
			return m, err
		}
		m.params = append(m.params, ckpt.NamedTensor{Name: name, Tensor: t})
	}
	return m, p.Done()
}

// updateMsg is one worker's round result: the fleet.Update payload (minus
// the worker index, which the coordinator knows from the connection), the
// strategy its budget selected, the local wall-clock, and its captured
// durable state for crash recovery.
type updateMsg struct {
	round    int
	samples  int
	loss     float64
	duration time.Duration
	strategy string
	stats    fleet.Update // execution-stat fields only
	// codec is the canonical compression spec the blob was encoded with;
	// empty means the update ships as raw tensors in vecs. Exactly one of
	// blob/vecs is on the wire.
	codec string
	blob  []byte
	vecs  []*tensor.Tensor
	state ckpt.WorkerState
	// telem is the worker's final telemetry shipment for the round (nil
	// when shipping is disabled); it rides as a trailing block so the
	// coordinator sees local-train spans the moment the update lands.
	telem *telemetry
}

func encodeUpdate(m updateMsg) (ckpt.Frame, error) {
	var b bytes.Buffer
	wire.PutInt64(&b, int64(m.round))
	wire.PutInt64(&b, int64(m.samples))
	wire.PutFloat64(&b, m.loss)
	wire.PutInt64(&b, int64(m.duration))
	wire.PutString(&b, m.strategy)
	wire.PutInt64(&b, int64(m.stats.ForwardEvals))
	wire.PutInt64(&b, int64(m.stats.BackwardEvals))
	wire.PutInt64(&b, int64(m.stats.PeakStates))
	wire.PutInt64(&b, m.stats.PeakRAMBytes)
	wire.PutInt64(&b, m.stats.PeakDiskBytes)
	wire.PutInt64(&b, int64(m.stats.DiskWrites))
	wire.PutInt64(&b, int64(m.stats.DiskReads))
	wire.PutString(&b, m.codec)
	if m.codec != "" {
		wire.PutUint32(&b, uint32(len(m.blob)))
		b.Write(m.blob)
	} else {
		wire.PutUint32(&b, uint32(len(m.vecs)))
		for i, v := range m.vecs {
			if err := putTensor(&b, v); err != nil {
				return ckpt.Frame{}, fmt.Errorf("coord: encoding update tensor %d: %w", i, err)
			}
		}
	}
	st := ckpt.EncodeWorkerState(&m.state)
	wire.PutUint32(&b, uint32(len(st)))
	b.Write(st)
	if m.telem != nil {
		tb := encodeTelemetry(*m.telem)
		wire.PutUint32(&b, 1)
		wire.PutUint32(&b, uint32(len(tb)))
		b.Write(tb)
	} else {
		wire.PutUint32(&b, 0)
	}
	return ckpt.Frame{Type: msgUpdate, Payload: b.Bytes()}, nil
}

func parseUpdate(payload []byte) (updateMsg, error) {
	p := wire.NewReader(payload)
	var m updateMsg
	m.round = int(p.Int64("round"))
	m.samples = int(p.Int64("samples"))
	m.loss = p.Float64("loss")
	m.duration = time.Duration(p.Int64("duration"))
	m.strategy = p.String("strategy")
	m.stats.ForwardEvals = int(p.Int64("forward evals"))
	m.stats.BackwardEvals = int(p.Int64("backward evals"))
	m.stats.PeakStates = int(p.Int64("peak states"))
	m.stats.PeakRAMBytes = p.Int64("peak RAM bytes")
	m.stats.PeakDiskBytes = p.Int64("peak disk bytes")
	m.stats.DiskWrites = int(p.Int64("disk writes"))
	m.stats.DiskReads = int(p.Int64("disk reads"))
	m.codec = p.String("update codec")
	if m.codec != "" {
		bn := p.Uint32("blob length")
		m.blob = append([]byte(nil), p.Take(int(bn), "compressed update")...)
	} else {
		n := p.Uint32("tensor count")
		if p.Err() == nil && int64(n) > maxMessageBytes/8 {
			return m, fmt.Errorf("coord: implausible tensor count %d", n)
		}
		for i := uint32(0); i < n && p.Err() == nil; i++ {
			t, err := takeTensor(p, "update tensor")
			if err != nil {
				return m, err
			}
			m.vecs = append(m.vecs, t)
		}
	}
	sn := p.Uint32("state length")
	st := p.Take(int(sn), "worker state")
	if err := p.Err(); err != nil {
		return m, err
	}
	ws, err := ckpt.DecodeWorkerState(st)
	if err != nil {
		return m, fmt.Errorf("coord: update worker state: %w", err)
	}
	m.state = *ws
	if p.Uint32("telemetry flag") != 0 {
		tn := p.Uint32("telemetry length")
		tb := p.Take(int(tn), "telemetry")
		if err := p.Err(); err != nil {
			return m, err
		}
		tm, err := parseTelemetry(tb)
		if err != nil {
			return m, fmt.Errorf("coord: update telemetry: %w", err)
		}
		m.telem = &tm
	}
	return m, p.Done()
}

type ackMsg struct {
	round  int
	status string
}

func encodeAck(a ackMsg) ckpt.Frame {
	var b bytes.Buffer
	wire.PutInt64(&b, int64(a.round))
	wire.PutString(&b, a.status)
	return ckpt.Frame{Type: msgAck, Payload: b.Bytes()}
}

func parseAck(payload []byte) (ackMsg, error) {
	p := wire.NewReader(payload)
	var a ackMsg
	a.round = int(p.Int64("round"))
	a.status = p.String("status")
	return a, p.Done()
}

func encodeError(msg string) ckpt.Frame {
	var b bytes.Buffer
	wire.PutString(&b, msg)
	return ckpt.Frame{Type: msgError, Payload: b.Bytes()}
}

func parseError(payload []byte) (string, error) {
	p := wire.NewReader(payload)
	msg := p.String("error message")
	return msg, p.Done()
}

// putTensor appends one tensor as a length-prefixed nn.WriteTensor chunk —
// the fp64-exact codec checkpoints use, so parameters and gradients cross
// the wire bit-identical.
func putTensor(b *bytes.Buffer, t *tensor.Tensor) error {
	if t == nil {
		return fmt.Errorf("nil tensor")
	}
	wire.PutUint32(b, uint32(nn.EncodedTensorBytes(t)))
	return nn.WriteTensor(b, t)
}

// takeTensor consumes one length-prefixed tensor chunk.
func takeTensor(p *wire.Reader, what string) (*tensor.Tensor, error) {
	n := p.Uint32(what + " length")
	chunk := p.Take(int(n), what)
	if err := p.Err(); err != nil {
		return nil, err
	}
	t, err := nn.ReadTensor(bytes.NewReader(chunk))
	if err != nil {
		return nil, fmt.Errorf("coord: decoding %s: %w", what, err)
	}
	if nn.EncodedTensorBytes(t) != int64(len(chunk)) {
		return nil, fmt.Errorf("coord: %s chunk has %d leftover bytes", what, int64(len(chunk))-nn.EncodedTensorBytes(t))
	}
	return t, nil
}

func putStrings(b *bytes.Buffer, ss []string) {
	wire.PutUint32(b, uint32(len(ss)))
	for _, s := range ss {
		wire.PutString(b, s)
	}
}

func takeStrings(p *wire.Reader, what string) []string {
	n := p.Uint32(what + " count")
	if p.Err() != nil {
		return nil
	}
	if n > 1<<16 {
		p.Fail(what + " count")
		return nil
	}
	ss := make([]string, 0, n)
	for i := uint32(0); i < n && p.Err() == nil; i++ {
		ss = append(ss, p.String(what))
	}
	return ss
}
