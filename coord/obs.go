package coord

import (
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/obs"
)

// coordObs bundles the coordinator's metric handles. It is always
// non-nil on a Coordinator; with observability disabled every handle is
// nil and each recording call is a nil-receiver no-op. Counters on the
// round path are added from the same RoundStats fields buildReport
// accumulates, so the final scraped values match the end-of-run report
// totals exactly.
type coordObs struct {
	roundsStarted   *obs.Counter
	roundsCommitted *obs.Counter
	roundRetries    *obs.Counter

	joined     *obs.Counter
	rejoined   *obs.Counter
	dropped    *obs.Counter
	rejected   *obs.Counter // handshake failures
	badUpdates *obs.Counter // updates rejected during collection
	heartbeats *obs.Counter

	stagedBytes *obs.Counter
	uplink      *obs.Counter
	rawUplink   *obs.Counter
	downlink    *obs.Counter
	wire        *obs.Counter

	liveWorkers *obs.Gauge
	roundCursor *obs.Gauge
	roundSec    *obs.Histogram
}

func newCoordObs() *coordObs {
	co := &coordObs{}
	r := obs.Default()
	if r == nil {
		return co
	}
	co.roundsStarted = r.Counter("coord_rounds_started_total", "Aggregation rounds the coordinator began driving.")
	co.roundsCommitted = r.Counter("coord_rounds_committed_total", "Rounds whose fold committed (matches the report's round count).")
	co.roundRetries = r.Counter("coord_round_retries_total", "Round attempts discarded below quorum and re-broadcast.")
	co.joined = r.Counter("coord_workers_joined_total", "Workers seated by a successful handshake (first joins).")
	co.rejoined = r.Counter("coord_workers_rejoined_total", "Workers that reclaimed their slot after a reconnect.")
	co.dropped = r.Counter("coord_workers_dropped_total", "Workers that left, died or were dropped mid-round.")
	co.rejected = r.Counter("coord_handshake_failures_total", "Hellos refused (version, codec, name or capacity).")
	co.badUpdates = r.Counter("coord_updates_rejected_total", "Staged updates rejected (wrong codec or failed validation).")
	co.heartbeats = r.Counter("coord_heartbeats_total", "Heartbeat frames received from workers.")
	co.stagedBytes = r.Counter("coord_staged_update_bytes_total", "Update payload bytes received for staging (retries included).")
	co.uplink = r.Counter("coord_uplink_bytes_total", "Committed update bytes (post-compression), as the report accounts them.")
	co.rawUplink = r.Counter("coord_raw_uplink_bytes_total", "Committed update bytes at their uncompressed size.")
	co.downlink = r.Counter("coord_downlink_bytes_total", "Broadcast bytes sent to round participants.")
	co.wire = r.Counter("coord_wire_bytes_total", "Measured transport bytes (frames both directions, per round deltas).")
	co.liveWorkers = r.Gauge("coord_live_workers", "Currently connected workers.")
	co.roundCursor = r.Gauge("coord_round", "Round the run loop is currently driving.")
	co.roundSec = r.Histogram("coord_round_seconds", "Wall-clock time of one committed round (retry attempts included).", nil)
	return co
}

// commitRound publishes one committed round from the same stats the
// report will accumulate.
func (co *coordObs) commitRound(rs *fleet.RoundStats) {
	co.roundsCommitted.Inc()
	co.uplink.Add(rs.UplinkBytes)
	co.rawUplink.Add(rs.RawUplinkBytes)
	co.downlink.Add(rs.DownlinkBytes)
	for i := range rs.Workers {
		co.wire.Add(rs.Workers[i].WireBytes)
	}
	co.roundSec.Observe(rs.WallClock.Seconds())
}

// noteLive refreshes the live-worker gauge and the /healthz cursor.
func (c *Coordinator) noteLive(slots []slot) {
	n := int64(liveCount(slots))
	c.healthLive.Store(n)
	c.co.liveWorkers.Set(float64(n))
}

// Health reports the run's live position for the /healthz endpoint:
// the round the run loop is driving, the configured total, and the
// number of connected workers.
func (c *Coordinator) Health() obs.Health {
	status := "running"
	select {
	case <-c.done:
		status = "done"
	default:
	}
	return obs.Health{
		Status:      status,
		Round:       int(c.healthRound.Load()),
		Rounds:      c.cfg.Rounds,
		LiveWorkers: int(c.healthLive.Load()),
	}
}
