package coord

import (
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/obs"
	"github.com/edgeml/edgetrain/obs/health"
)

// coordObs bundles the coordinator's metric handles. It is always
// non-nil on a Coordinator; with observability disabled every handle is
// nil and each recording call is a nil-receiver no-op. Counters on the
// round path are added from the same RoundStats fields buildReport
// accumulates, so the final scraped values match the end-of-run report
// totals exactly.
type coordObs struct {
	// reg backs the per-worker labeled series (nil when observability is
	// disabled — labeled handles resolve to nil no-ops).
	reg *obs.Registry

	roundsStarted   *obs.Counter
	roundsCommitted *obs.Counter
	roundRetries    *obs.Counter

	joined     *obs.Counter
	rejoined   *obs.Counter
	dropped    *obs.Counter
	rejected   *obs.Counter // handshake failures
	badUpdates *obs.Counter // updates rejected during collection
	heartbeats *obs.Counter

	stagedBytes *obs.Counter
	uplink      *obs.Counter
	rawUplink   *obs.Counter
	downlink    *obs.Counter
	wire        *obs.Counter

	telemetryFrames  *obs.Counter
	telemetrySamples *obs.Counter
	telemetryEvents  *obs.Counter

	liveWorkers *obs.Gauge
	roundCursor *obs.Gauge
	roundSec    *obs.Histogram
}

func newCoordObs() *coordObs {
	co := &coordObs{}
	r := obs.Default()
	if r == nil {
		return co
	}
	co.reg = r
	co.roundsStarted = r.Counter("coord_rounds_started_total", "Aggregation rounds the coordinator began driving.")
	co.roundsCommitted = r.Counter("coord_rounds_committed_total", "Rounds whose fold committed (matches the report's round count).")
	co.roundRetries = r.Counter("coord_round_retries_total", "Round attempts discarded below quorum and re-broadcast.")
	co.joined = r.Counter("coord_workers_joined_total", "Workers seated by a successful handshake (first joins).")
	co.rejoined = r.Counter("coord_workers_rejoined_total", "Workers that reclaimed their slot after a reconnect.")
	co.dropped = r.Counter("coord_workers_dropped_total", "Workers that left, died or were dropped mid-round.")
	co.rejected = r.Counter("coord_handshake_failures_total", "Hellos refused (version, codec, name or capacity).")
	co.badUpdates = r.Counter("coord_updates_rejected_total", "Staged updates rejected (wrong codec or failed validation).")
	co.heartbeats = r.Counter("coord_heartbeats_total", "Heartbeat frames received from workers.")
	co.stagedBytes = r.Counter("coord_staged_update_bytes_total", "Update payload bytes received for staging (retries included).")
	co.uplink = r.Counter("coord_uplink_bytes_total", "Committed update bytes (post-compression), as the report accounts them.")
	co.rawUplink = r.Counter("coord_raw_uplink_bytes_total", "Committed update bytes at their uncompressed size.")
	co.downlink = r.Counter("coord_downlink_bytes_total", "Broadcast bytes sent to round participants.")
	co.wire = r.Counter("coord_wire_bytes_total", "Measured transport bytes (frames both directions, per round deltas).")
	co.telemetryFrames = r.Counter("coord_telemetry_frames_total", "Telemetry shipments ingested from worker heartbeats and updates.")
	co.telemetrySamples = r.Counter("coord_telemetry_samples_total", "Metric delta samples ingested from worker telemetry.")
	co.telemetryEvents = r.Counter("coord_telemetry_events_total", "Trace events ingested from worker telemetry.")
	co.liveWorkers = r.Gauge("coord_live_workers", "Currently connected workers.")
	co.roundCursor = r.Gauge("coord_round", "Round the run loop is currently driving.")
	co.roundSec = r.Histogram("coord_round_seconds", "Wall-clock time of one committed round (retry attempts included).", nil)
	return co
}

// commitRound publishes one committed round from the same stats the
// report will accumulate, including per-worker labeled series — the
// fleet-wide view acceptance test cross-checks these against the final
// report, so they must add exactly the RoundStats fields Report.Add does.
func (co *coordObs) commitRound(rs *fleet.RoundStats, slots []slot) {
	co.roundsCommitted.Inc()
	co.uplink.Add(rs.UplinkBytes)
	co.rawUplink.Add(rs.RawUplinkBytes)
	co.downlink.Add(rs.DownlinkBytes)
	for i := range rs.Workers {
		ws := &rs.Workers[i]
		co.wire.Add(ws.WireBytes)
		if co.reg == nil || slots[i].name == "" {
			continue
		}
		wl := obs.L("worker", slots[i].name)
		if ws.Samples > 0 {
			co.reg.CounterWith("coord_worker_rounds_total",
				"Rounds whose fold included this worker's update.", wl).Inc()
		}
		if ws.Dropped {
			co.reg.CounterWith("coord_worker_dropouts_total",
				"Rounds this worker was selected for but lost to dropout.", wl).Inc()
		}
		co.reg.CounterWith("coord_worker_upload_bytes_total",
			"Committed update bytes from this worker (post-compression).", wl).Add(ws.UploadBytes)
		co.reg.CounterWith("coord_worker_download_bytes_total",
			"Broadcast bytes sent to this worker.", wl).Add(ws.DownloadBytes)
		co.reg.CounterWith("coord_worker_wire_bytes_total",
			"Measured transport bytes moved with this worker, both directions.", wl).Add(ws.WireBytes)
	}
	co.roundSec.Observe(rs.WallClock.Seconds())
}

// ingestTelemetry folds one worker shipment into the process registry and
// tracer: samples land under a worker=<name> label, events are re-tagged
// with the worker's authoritative slot and marked remote. Runs on the
// connection's handler goroutine, off the run loop.
func (c *Coordinator) ingestTelemetry(rem *remote, tm *telemetry) {
	if tm == nil {
		return
	}
	c.co.telemetryFrames.Inc()
	c.co.telemetrySamples.Add(int64(len(tm.samples)))
	c.co.telemetryEvents.Add(int64(len(tm.events)))
	obs.Default().Ingest(tm.samples, obs.L("worker", rem.name))
	if tr := obs.DefaultTracer(); tr != nil {
		for _, e := range tm.events {
			// The slot the coordinator seated this worker in wins over
			// whatever the worker tagged locally: lanes in the stitched
			// trace follow fleet slots.
			e.Worker = rem.index
			e.Remote = true
			tr.Record(e)
		}
	}
}

// noteLive refreshes the live-worker gauge and the /healthz cursor.
func (c *Coordinator) noteLive(slots []slot) {
	n := int64(liveCount(slots))
	c.healthLive.Store(n)
	c.co.liveWorkers.Set(float64(n))
}

// Health reports the run's live position for the /healthz endpoint: the
// round the run loop is driving, the configured total, and the number of
// connected workers. When the health monitor's most recent round fired
// alerts, the payload degrades (HTTP 503) with the reasons, and recovers
// as soon as a clean round commits.
func (c *Coordinator) Health() obs.Health {
	status := "running"
	select {
	case <-c.done:
		status = "done"
	default:
	}
	h := obs.Health{
		Status:      status,
		Round:       int(c.healthRound.Load()),
		Rounds:      c.cfg.Rounds,
		LiveWorkers: int(c.healthLive.Load()),
	}
	if active := c.mon.Active(); len(active) > 0 {
		h.Degraded = true
		h.Alerts = health.Reasons(active)
		if status == "running" {
			h.Status = "alerting"
		}
	}
	return h
}
