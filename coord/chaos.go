package coord

// Chaos is the fault-injection transport: it wraps any Transport and damages
// the traffic the way flaky edge links do — refused dials, connections
// dropped mid-round, added latency, flipped bits, partitions — from a seeded
// generator, so a failing soak run replays exactly.
//
// The one invariant chaos must never break: corruption is injected into the
// serialized frame bytes (below the codec), so the receiver's ReadFrame CRC
// check rejects it as ckpt.ErrCorrupt. Damaged data surfaces as a typed
// connection error that the fault-tolerance machinery handles — it never
// reaches an aggregator fold.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/obs"
)

// crcOffset is where the CRC32 sits in the 28-byte ckpt frame header (after
// type, style and the two lengths). Injected bit flips stay at or after it:
// they land in the CRC or the payload, either of which guarantees the
// receiver sees a checksum mismatch (ErrCorrupt) rather than a silently
// reinterpreted header field.
const crcOffset = 24

// Chaos wraps a Transport with deterministic seeded fault injection. All
// probabilities are in [0, 1]; zero values inject nothing, so a zero Chaos
// is a transparent proxy. Every connection draws faults from its own
// generator seeded with Seed plus a connection counter, so runs are
// reproducible given the same seed and connection order.
type Chaos struct {
	// Inner is the real transport carrying the frames.
	Inner Transport
	// Seed makes the injected faults deterministic.
	Seed int64
	// DialRefuse is the probability a Dial fails outright, as a down or
	// unreachable coordinator would refuse it.
	DialRefuse float64
	// Drop is the per-send probability the connection is torn down instead
	// of delivering the frame — a link failing mid-round.
	Drop float64
	// Corrupt is the per-send probability one bit of the serialized frame
	// is flipped in flight. Requires the inner transport's frameConn codec;
	// the receiver must observe ckpt.ErrCorrupt.
	Corrupt float64
	// LatencyMax, when positive, delays each send and each receive by a
	// uniform random duration in [0, LatencyMax).
	LatencyMax time.Duration

	mu        sync.Mutex
	rng       *rand.Rand
	conns     int64
	partUntil time.Time

	// corrupted counts frames mangled in flight; tests use it to assert
	// injected damage actually happened and was survived.
	corrupted int64
}

// Name implements Transport.
func (t *Chaos) Name() string { return "chaos+" + t.Inner.Name() }

// PartitionFor simulates a network partition lasting d from now: every Dial
// is refused and every established connection fails on its next send.
func (t *Chaos) PartitionFor(d time.Duration) {
	t.mu.Lock()
	t.partUntil = time.Now().Add(d)
	t.mu.Unlock()
}

// Corrupted reports how many frames chaos has mangled in flight so far.
func (t *Chaos) Corrupted() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.corrupted
}

func (t *Chaos) partitioned() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return time.Now().Before(t.partUntil)
}

func (t *Chaos) countCorrupt() {
	t.mu.Lock()
	t.corrupted++
	t.mu.Unlock()
}

// chaosInjected publishes one injected fault to the observability layer
// (injections are rare, so the per-call handle lookup is fine here).
func chaosInjected(kind string) {
	obs.Default().CounterWith("coord_chaos_events_total",
		"Faults the chaos transport injected, by kind.", obs.L("kind", kind)).Inc()
	obs.DefaultTracer().Event("chaos-injection", -1, -1, kind)
}

// newConnRNG allocates the next connection's private fault generator.
func (t *Chaos) newConnRNG() *rand.Rand {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(t.Seed))
	}
	t.conns++
	return rand.New(rand.NewSource(t.Seed + t.conns))
}

// Listen implements Transport; accepted connections inject the same faults
// dialed ones do, so coordinator-to-worker traffic (the broadcast) is as
// exposed as the uplink.
func (t *Chaos) Listen(addr string) (Listener, error) {
	l, err := t.Inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &chaosListener{t: t, l: l}, nil
}

// Dial implements Transport.
func (t *Chaos) Dial(addr string) (Conn, error) {
	if t.partitioned() {
		return nil, fmt.Errorf("coord: chaos: dial %s refused (partition)", addr)
	}
	if t.DialRefuse > 0 {
		t.mu.Lock()
		if t.rng == nil {
			t.rng = rand.New(rand.NewSource(t.Seed))
		}
		refuse := t.rng.Float64() < t.DialRefuse
		t.mu.Unlock()
		if refuse {
			return nil, fmt.Errorf("coord: chaos: dial %s refused (injected)", addr)
		}
	}
	c, err := t.Inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return t.wrap(c), nil
}

func (t *Chaos) wrap(c Conn) Conn {
	cc := &chaosConn{inner: c, t: t, rng: t.newConnRNG()}
	cc.fc, _ = c.(*frameConn)
	return cc
}

type chaosListener struct {
	t *Chaos
	l Listener
}

func (cl *chaosListener) Accept() (Conn, error) {
	c, err := cl.l.Accept()
	if err != nil {
		return nil, err
	}
	return cl.t.wrap(c), nil
}

func (cl *chaosListener) Addr() string { return cl.l.Addr() }
func (cl *chaosListener) Close() error { return cl.l.Close() }

// chaosConn injects per-frame faults around an inner connection. The rng is
// mutex-guarded: Conn promises Send is safe for concurrent use and the
// heartbeat sender runs beside the protocol goroutine.
type chaosConn struct {
	inner Conn
	fc    *frameConn
	t     *Chaos

	mu  sync.Mutex
	rng *rand.Rand
}

func (cc *chaosConn) Send(f ckpt.Frame) error {
	if cc.t.partitioned() {
		cc.inner.Close()
		return fmt.Errorf("coord: chaos: connection dropped (partition)")
	}
	cc.mu.Lock()
	drop := cc.t.Drop > 0 && cc.rng.Float64() < cc.t.Drop
	corrupt := !drop && cc.fc != nil && cc.t.Corrupt > 0 && cc.rng.Float64() < cc.t.Corrupt
	var delay time.Duration
	if cc.t.LatencyMax > 0 {
		delay = time.Duration(cc.rng.Int63n(int64(cc.t.LatencyMax)))
	}
	// Drawing the flip position now keeps every rng access under the lock;
	// the draw is reduced modulo the frame length once it is known.
	var flip int64
	if corrupt {
		flip = cc.rng.Int63()
	}
	cc.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		cc.inner.Close()
		chaosInjected("drop")
		return fmt.Errorf("coord: chaos: connection dropped (injected)")
	}
	if corrupt {
		cc.t.countCorrupt()
		chaosInjected("corrupt")
		return cc.fc.sendMangled(f, func(b []byte) {
			// Flip one bit at or after the CRC: the receiver's checksum
			// check must fail, so the damage surfaces as ckpt.ErrCorrupt.
			off := crcOffset + int(flip%int64(len(b)-crcOffset))
			b[off] ^= 1 << uint((flip>>32)%8)
		})
	}
	return cc.inner.Send(f)
}

func (cc *chaosConn) Recv() (ckpt.Frame, error) {
	f, err := cc.inner.Recv()
	if err == nil && cc.t.LatencyMax > 0 {
		cc.mu.Lock()
		delay := time.Duration(cc.rng.Int63n(int64(cc.t.LatencyMax)))
		cc.mu.Unlock()
		time.Sleep(delay)
	}
	return f, err
}

func (cc *chaosConn) Stats() (sent, received int64) { return cc.inner.Stats() }
func (cc *chaosConn) Close() error                  { return cc.inner.Close() }
