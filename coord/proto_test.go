package coord

import (
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/tensor"
)

func TestHelloRoundTrip(t *testing.T) {
	h := hello{
		version:     ProtocolVersion,
		name:        "w0-waggle",
		device:      "waggle",
		budgetBytes: 2_000_000_000,
		aggregators: []string{"fedavg", "allreduce"},
		strategies:  []string{"storeall", "revolve", "twolevel"},
		codecs:      []string{"topk", "fp16", "int8", "deflate"},
	}
	f := encodeHello(h)
	if f.Type != msgHello {
		t.Fatalf("frame type %d", f.Type)
	}
	got, err := parseHello(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	base := Assignment{
		Index: 2, Workers: 5, Rounds: 10, LocalEpochs: 2, BatchSize: 8,
		Samples: 640, Seed: 12345, Aggregator: "allreduce", Optimizer: "momentum", LR: 0.05,
	}
	t.Run("fresh join", func(t *testing.T) {
		got, err := parseWelcome(encodeWelcome(base).Payload)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("round trip: %+v != %+v", got, base)
		}
	})
	t.Run("rejoin with state", func(t *testing.T) {
		a := base
		a.State = &ckpt.WorkerState{
			Index: 2, Name: "w2", Rounds: 7, Samples: 896,
			Opt: ckpt.OptimizerState{
				Name: "momentum", Step: 7,
				Slots: []ckpt.OptSlot{{Param: "fc1.weight", Slot: "velocity", Data: []float64{0.25, -1.5, 3e-9}}},
			},
		}
		got, err := parseWelcome(encodeWelcome(a).Payload)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, a) {
			t.Fatalf("round trip: %+v != %+v", got, a)
		}
	})
}

// randTensor fills a fresh tensor with standard normal draws.
func randTensor(rng *tensor.RNG, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = rng.Normal(0, 1)
	}
	return t
}

func TestRoundMsgRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := roundMsg{
		round: 4,
		params: []ckpt.NamedTensor{
			{Name: "fc1.weight", Tensor: randTensor(rng, 8, 4)},
			{Name: "fc1.bias", Tensor: randTensor(rng, 4)},
		},
	}
	f, err := encodeRound(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseRound(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.round != m.round || len(got.params) != len(m.params) {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range m.params {
		if got.params[i].Name != m.params[i].Name {
			t.Fatalf("param %d name %q", i, got.params[i].Name)
		}
		if !reflect.DeepEqual(got.params[i].Tensor.Data(), m.params[i].Tensor.Data()) {
			t.Fatalf("param %d data differs", i)
		}
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(9)
	m := updateMsg{
		round:    3,
		samples:  17,
		loss:     2.1972,
		duration: 257 * time.Millisecond,
		strategy: "revolve",
		stats: fleet.Update{
			ForwardEvals: 40, BackwardEvals: 12, PeakStates: 5,
			PeakRAMBytes: 1 << 20, PeakDiskBytes: 1 << 18, DiskWrites: 6, DiskReads: 6,
		},
		vecs: []*tensor.Tensor{randTensor(rng, 8, 4), randTensor(rng, 4)},
		state: ckpt.WorkerState{
			Index: 1, Name: "w1", Rounds: 4, Samples: 68,
			Opt: ckpt.OptimizerState{Name: "sgd", Step: 4},
		},
	}
	f, err := encodeUpdate(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseUpdate(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.round != m.round || got.samples != m.samples || got.loss != m.loss ||
		got.duration != m.duration || got.strategy != m.strategy {
		t.Fatalf("header round trip: %+v", got)
	}
	if !reflect.DeepEqual(got.stats, m.stats) {
		t.Fatalf("stats round trip: %+v != %+v", got.stats, m.stats)
	}
	for i := range m.vecs {
		if !reflect.DeepEqual(got.vecs[i].Data(), m.vecs[i].Data()) {
			t.Fatalf("vec %d differs", i)
		}
	}
	if !reflect.DeepEqual(got.state, m.state) {
		t.Fatalf("state round trip: %+v != %+v", got.state, m.state)
	}
}

func TestAckAndErrorRoundTrip(t *testing.T) {
	a, err := parseAck(encodeAck(ackMsg{round: 6, status: AckLate}).Payload)
	if err != nil || a.round != 6 || a.status != AckLate {
		t.Fatalf("ack round trip: %+v, %v", a, err)
	}
	msg, err := parseError(encodeError("fleet full").Payload)
	if err != nil || msg != "fleet full" {
		t.Fatalf("error round trip: %q, %v", msg, err)
	}
}

func TestTruncatedPayloadsRejected(t *testing.T) {
	frames := []ckpt.Frame{
		encodeHello(hello{version: 1, name: "w", aggregators: []string{"fedavg"}}),
		encodeWelcome(Assignment{Index: 1, Workers: 3}),
		encodeAck(ackMsg{round: 1, status: AckOK}),
	}
	parsers := []func([]byte) error{
		func(b []byte) error { _, err := parseHello(b); return err },
		func(b []byte) error { _, err := parseWelcome(b); return err },
		func(b []byte) error { _, err := parseAck(b); return err },
	}
	for i, f := range frames {
		for cut := 1; cut < len(f.Payload); cut += 3 {
			if err := parsers[i](f.Payload[:len(f.Payload)-cut]); err == nil {
				t.Fatalf("frame %d truncated by %d accepted", i, cut)
			}
		}
	}
}

// TestConnFrameExchange pins that both transports move frames intact, with
// byte accounting, in both styles.
func TestConnFrameExchange(t *testing.T) {
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	exchange := func(t *testing.T, client, server Conn) {
		defer client.Close()
		defer server.Close()
		errc := make(chan error, 1)
		go func() {
			f, err := server.Recv()
			if err == nil {
				err = server.Send(f)
			}
			errc <- err
		}()
		if err := client.Send(ckpt.Frame{Type: msgUpdate, Payload: payload}); err != nil {
			t.Fatal(err)
		}
		f, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		if f.Type != msgUpdate || !reflect.DeepEqual(f.Payload, payload) {
			t.Fatalf("echoed frame differs")
		}
		sent, received := client.Stats()
		if sent <= 0 || received <= 0 {
			t.Fatalf("stats not accounted: sent %d received %d", sent, received)
		}
	}
	dialAndAccept := func(t *testing.T, tr Transport) (Conn, Conn) {
		l, err := tr.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		type acc struct {
			c   Conn
			err error
		}
		ac := make(chan acc, 1)
		go func() {
			c, err := l.Accept()
			ac <- acc{c, err}
		}()
		client, err := tr.Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		a := <-ac
		if a.err != nil {
			t.Fatal(a.err)
		}
		return client, a.c
	}
	t.Run("loopback raw", func(t *testing.T) {
		client, server := dialAndAccept(t, NewLoopback())
		exchange(t, client, server)
	})
	t.Run("loopback deflate", func(t *testing.T) {
		client, server := dialAndAccept(t, &Loopback{Compress: true})
		exchange(t, client, server)
	})
	t.Run("tcp raw", func(t *testing.T) {
		client, server := dialAndAccept(t, &TCP{})
		exchange(t, client, server)
	})
	t.Run("tcp deflate", func(t *testing.T) {
		client, server := dialAndAccept(t, &TCP{Compress: true})
		exchange(t, client, server)
	})
	t.Run("pipe styles", func(t *testing.T) {
		a, b := net.Pipe()
		exchange(t, newFrameConn(a, ckpt.StyleDeflate), newFrameConn(b, ckpt.StyleRaw))
	})
}
