package coord

// Protocol v3 telemetry tests: wire round trip, handshake rejection of
// old-version workers, end-to-end shipping over the loopback transport,
// and /healthz degradation when the monitor's last round alerted.

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/edgeml/edgetrain/internal/wire"
	"github.com/edgeml/edgetrain/obs"
	"github.com/edgeml/edgetrain/obs/health"
)

func TestTelemetryRoundTrip(t *testing.T) {
	in := sampleTelemetry()
	got, err := parseTelemetry(encodeTelemetry(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("telemetry round trip changed:\n got %+v\nwant %+v", got, in)
	}
	// Empty shipment round-trips too.
	empty := telemetry{round: 7}
	got, err = parseTelemetry(encodeTelemetry(empty))
	if err != nil {
		t.Fatal(err)
	}
	if got.round != 7 || len(got.samples) != 0 || len(got.events) != 0 {
		t.Fatalf("empty telemetry round trip changed: %+v", got)
	}
}

// encodeRawSamplePayload hand-writes a one-sample telemetry payload so
// the test can produce shapes encodeTelemetry refuses to emit.
func encodeRawSamplePayload(kind uint32, nbounds, nbuckets int) []byte {
	var b bytes.Buffer
	wire.PutInt64(&b, 0)     // round
	wire.PutUint32(&b, 1)    // one sample
	wire.PutString(&b, "h")  // name
	wire.PutString(&b, "")   // help
	wire.PutUint32(&b, kind) // kind
	wire.PutUint32(&b, 0)    // no labels
	wire.PutFloat64(&b, 1)   // value
	wire.PutInt64(&b, 1)     // count
	wire.PutUint32(&b, uint32(nbounds))
	for i := 0; i < nbounds; i++ {
		wire.PutFloat64(&b, float64(i+1))
	}
	wire.PutUint32(&b, uint32(nbuckets))
	for i := 0; i < nbuckets; i++ {
		wire.PutInt64(&b, 1)
	}
	wire.PutUint32(&b, 0) // no events
	return b.Bytes()
}

func TestTelemetryRejectsMalformedSamples(t *testing.T) {
	if _, err := parseTelemetry(encodeRawSamplePayload(2, 2, 2)); err != nil {
		t.Fatalf("well-formed histogram rejected: %v", err)
	}
	if _, err := parseTelemetry(encodeRawSamplePayload(2, 2, 1)); err == nil ||
		!strings.Contains(err.Error(), "buckets") {
		t.Fatalf("bucket/bound mismatch accepted (err=%v)", err)
	}
	if _, err := parseTelemetry(encodeRawSamplePayload(9, 0, 0)); err == nil ||
		!strings.Contains(err.Error(), "kind") {
		t.Fatalf("unknown sample kind accepted (err=%v)", err)
	}
}

// TestV2WorkerRejected pins the chosen compatibility policy: a worker
// speaking protocol v2 is cleanly rejected at the handshake with an error
// naming both versions, rather than served without telemetry.
func TestV2WorkerRejected(t *testing.T) {
	c, err := New(Config{Workers: 1, Rounds: 1, Samples: 4, Seed: eqSeed}, testModel(eqSeed))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tr := NewLoopback()
	addr, err := c.Start(tr, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(encodeHello(hello{
		version: 2, name: "old-worker",
		aggregators: []string{"fedavg"},
	})); err != nil {
		t.Fatal(err)
	}
	f, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != msgError {
		t.Fatalf("v2 hello answered with %s, want error", msgName(f.Type))
	}
	msg, err := parseError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "protocol version 2") || !strings.Contains(msg, "3") {
		t.Fatalf("rejection does not name the versions: %q", msg)
	}
}

// TestTelemetryShippingLoopback drives a full coordinated run over the
// loopback transport with observability enabled and asserts the
// coordinator ingested worker telemetry: worker-labeled series in the
// registry, remote events in the tracer, and named lanes for the
// stitched trace.
func TestTelemetryShippingLoopback(t *testing.T) {
	if obs.Default() != nil || obs.DefaultTracer() != nil {
		t.Fatal("observability enabled at test entry")
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	obs.SetDefault(reg)
	obs.SetDefaultTracer(tr)
	defer obs.SetDefault(nil)
	defer obs.SetDefaultTracer(nil)

	c, err := New(Config{
		Workers: eqWorkers, Rounds: eqRounds, Samples: eqSamples, Seed: eqSeed,
	}, testModel(eqSeed))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lb := NewLoopback()
	addr, err := c.Start(lb, "")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, eqWorkers)
	for i := 0; i < eqWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = RunWorker(lb, addr, workerOptions(fmt.Sprintf("w%d", i), eqSeed, eqSamples, nil))
		}(i)
	}
	rep, err := c.Wait()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}

	snap := reg.Snapshot()
	find := func(name string, labels ...obs.Label) (obs.Sample, bool) {
		for _, s := range snap {
			if s.Name != name {
				continue
			}
			if len(labels) > 0 && !reflect.DeepEqual(s.Labels, labels) {
				continue
			}
			return s, true
		}
		return obs.Sample{}, false
	}
	frames, ok := find("coord_telemetry_frames_total")
	if !ok || frames.Value == 0 {
		t.Fatal("coordinator ingested no telemetry frames")
	}
	// Every update carries a closing shipment, so all three workers must
	// have landed worker-labeled series.
	for i := 0; i < eqWorkers; i++ {
		name := fmt.Sprintf("w%d", i)
		found := false
		for _, s := range snap {
			for _, l := range s.Labels {
				if l.Key == "worker" && l.Value == name {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("no ingested series labeled worker=%q", name)
		}
	}
	// Per-worker committed accounting matches the report.
	for i, w := range rep.Workers {
		s, ok := find("coord_worker_rounds_total", obs.L("worker", w.Name))
		if !ok || int(s.Value) != w.Rounds {
			t.Fatalf("coord_worker_rounds_total{worker=%q} = %v, report says %d", w.Name, s.Value, w.Rounds)
		}
		s, ok = find("coord_worker_wire_bytes_total", obs.L("worker", w.Name))
		if !ok || int64(s.Value) != w.WireBytes {
			t.Fatalf("coord_worker_wire_bytes_total{worker=%q} = %v, report says %d (slot %d)",
				w.Name, s.Value, w.WireBytes, i)
		}
	}
	// The stitched trace: remote local-train spans re-tagged with fleet
	// slots, and named lanes for the coordinator and every worker.
	remoteTrain := false
	for _, e := range tr.Events() {
		if e.Remote && e.Name == "local-train" && e.Worker >= 0 && e.Dur > 0 {
			remoteTrain = true
		}
	}
	if !remoteTrain {
		t.Fatal("no remote local-train span reached the coordinator tracer")
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	for _, lane := range []string{`"coordinator"`, `"w0"`, `"w1"`, `"w2"`} {
		if !strings.Contains(sb.String(), lane) {
			t.Fatalf("chrome trace missing %s lane metadata", lane)
		}
	}
	if len(rep.Alerts) != 0 {
		t.Fatalf("healthy run fired alerts: %v", rep.Alerts)
	}
}

// TestCoordinatorHealthDegrades pins /healthz degradation: after a round
// that trips a rule the payload is degraded with reasons; a clean round
// recovers it.
func TestCoordinatorHealthDegrades(t *testing.T) {
	c, err := New(Config{Workers: 1, Rounds: 1, Samples: 4, Seed: eqSeed}, testModel(eqSeed))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if h := c.Health(); h.Degraded {
		t.Fatalf("fresh coordinator degraded: %+v", h)
	}
	c.mon.ObserveRound(health.Stats{Round: 0, Loss: math.NaN()})
	h := c.Health()
	if !h.Degraded || len(h.Alerts) == 0 {
		t.Fatalf("NaN round did not degrade health: %+v", h)
	}
	if h.Status != "alerting" {
		t.Fatalf("degraded status = %q, want alerting", h.Status)
	}
	if !strings.Contains(h.Alerts[0], "loss-divergence") {
		t.Fatalf("alert reason %q does not name the rule", h.Alerts[0])
	}
	c.mon.ObserveRound(health.Stats{Round: 1, Loss: 0.5, WallClock: time.Millisecond})
	if h := c.Health(); h.Degraded {
		t.Fatalf("clean round did not recover health: %+v", h)
	}
}
