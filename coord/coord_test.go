package coord

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/compress"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/internal/vision"
)

// testModel is the deterministic model factory shared by the coordinator,
// the workers and the in-process reference fleet: a small MLP over flattened
// 8x8 frames.
func testModel(seed uint64) func() (*chain.Chain, error) {
	return func() (*chain.Chain, error) {
		rng := tensor.NewRNG(seed)
		return chain.New(
			nn.NewFlatten("flatten"),
			nn.NewLinear("fc1", 64, 24, true, rng),
			nn.NewReLU("relu1"),
			nn.NewLinear("fc2", 24, 16, true, rng),
			nn.NewReLU("relu2"),
			nn.NewLinear("fc3", 16, vision.NumClasses, true, rng),
		), nil
	}
}

// testDataset builds n labelled frames with a viewpoint drift across the
// sample index, so contiguous shards are non-IID.
func testDataset(n int, seed uint64) *trainer.SliceDataset {
	rng := tensor.NewRNG(seed)
	var samples []trainer.Batch
	for i := 0; i < n; i++ {
		c := vision.Class(i % vision.NumClasses)
		vp := 0.2 + 0.6*float64(i)/float64(max(n-1, 1))
		samples = append(samples, trainer.Batch{
			Images: vision.Sample(rng, c, vp, 8),
			Labels: []int{int(c)},
		})
	}
	return trainer.NewSliceDataset(samples)
}

const (
	eqWorkers = 3
	eqRounds  = 3
	eqSamples = 24
	eqSeed    = uint64(42)
)

func workerOptions(name string, seed uint64, samples int, hook func(round int) error) WorkerOptions {
	return WorkerOptions{
		Spec:      fleet.WorkerSpec{Name: name},
		Model:     func(a Assignment) (*chain.Chain, error) { return testModel(a.Seed)() },
		Dataset:   func(a Assignment) (trainer.Dataset, error) { return testDataset(a.Samples, a.Seed), nil },
		Heartbeat: 50 * time.Millisecond,

		beforeUpdate: hook,
	}
}

// runDistributed runs a full coordinated fleet over the given transport and
// returns the final global parameters and the report.
func runDistributed(t *testing.T, tr Transport, aggName string) ([]*tensor.Tensor, *fleet.Report) {
	t.Helper()
	return runDistributedSpec(t, tr, aggName, "")
}

// runDistributedSpec is runDistributed with an update-compression spec.
func runDistributedSpec(t *testing.T, tr Transport, aggName, compression string) ([]*tensor.Tensor, *fleet.Report) {
	t.Helper()
	c, err := New(Config{
		Workers:     eqWorkers,
		Rounds:      eqRounds,
		Samples:     eqSamples,
		Seed:        eqSeed,
		Aggregator:  aggName,
		Optimizer:   "momentum",
		LR:          0.05,
		Compression: compression,
	}, testModel(eqSeed))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr, err := c.Start(tr, "")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, eqWorkers)
	for i := 0; i < eqWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = RunWorker(tr, addr, workerOptions(fmt.Sprintf("w%d", i), eqSeed, eqSamples, nil))
		}(i)
	}
	rep, err := c.Wait()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	var ps []*tensor.Tensor
	for _, p := range c.Global().Params() {
		ps = append(ps, p.Value.Clone())
	}
	return ps, rep
}

func assertBitEqual(t *testing.T, a, b []*tensor.Tensor, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d params vs %d", what, len(a), len(b))
	}
	for i := range a {
		ad, bd := a[i].Data(), b[i].Data()
		if len(ad) != len(bd) {
			t.Fatalf("%s: param %d size %d vs %d", what, i, len(ad), len(bd))
		}
		for j := range ad {
			if math.Float64bits(ad[j]) != math.Float64bits(bd[j]) {
				t.Fatalf("%s: param %d element %d: %v != %v", what, i, j, ad[j], bd[j])
			}
		}
	}
}

// TestTransportEquivalence pins the tentpole guarantee: a 3-worker fleet run
// over the TCP transport produces byte-identical global weights to the
// in-process loopback run AND to the single-process fleet.Run, for both
// aggregation modes.
func TestTransportEquivalence(t *testing.T) {
	for _, aggName := range []string{"fedavg", "allreduce"} {
		t.Run(aggName, func(t *testing.T) {
			// In-process reference: the existing single-process engine with
			// the exact configuration the coordinator hands its workers.
			opt, err := trainer.NewOptimizer("momentum", 0.05)
			if err != nil {
				t.Fatal(err)
			}
			agg, err := fleet.NewAggregator(aggName, opt)
			if err != nil {
				t.Fatal(err)
			}
			specs := make([]fleet.WorkerSpec, eqWorkers)
			for i := range specs {
				specs[i].Name = fmt.Sprintf("w%d", i)
			}
			ref, err := fleet.New(fleet.Config{
				Workers:    specs,
				Rounds:     eqRounds,
				Seed:       eqSeed,
				Aggregator: agg,
				Optimizer: func() trainer.Optimizer {
					o, err := trainer.NewOptimizer("momentum", 0.05)
					if err != nil {
						panic(err)
					}
					return o
				},
			}, testModel(eqSeed), testDataset(eqSamples, eqSeed))
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			if _, err := ref.Run(); err != nil {
				t.Fatal(err)
			}
			var want []*tensor.Tensor
			for _, p := range ref.Global().Params() {
				want = append(want, p.Value.Clone())
			}

			loop, repLoop := runDistributed(t, NewLoopback(), aggName)
			assertBitEqual(t, loop, want, "loopback vs in-process")

			tcp, repTCP := runDistributed(t, &TCP{}, aggName)
			assertBitEqual(t, tcp, loop, "tcp vs loopback")

			for _, rep := range []*fleet.Report{repLoop, repTCP} {
				if len(rep.Rounds) != eqRounds {
					t.Fatalf("report has %d rounds", len(rep.Rounds))
				}
				if rep.TotalWireBytes == 0 {
					t.Fatalf("no wire bytes measured")
				}
				if !strings.Contains(rep.Render(), "wire (MB)") {
					t.Fatalf("report render lacks wire column")
				}
				for _, rs := range rep.Rounds {
					if rs.Participants != eqWorkers || rs.Dropouts != 0 {
						t.Fatalf("round %d: %d participants, %d dropouts", rs.Round, rs.Participants, rs.Dropouts)
					}
					if rs.WallClock <= 0 {
						t.Fatalf("round %d has no wall clock", rs.Round)
					}
				}
			}
		})
	}
}

// TestCompressedTransportEquivalence pins that DEFLATE framing does not
// perturb the weights either (the codec is lossless end to end).
func TestCompressedTransportEquivalence(t *testing.T) {
	raw, _ := runDistributed(t, NewLoopback(), "fedavg")
	compressed, _ := runDistributed(t, &Loopback{Compress: true}, "fedavg")
	assertBitEqual(t, compressed, raw, "deflate vs raw")
}

// TestLosslessCompressionEquivalence extends the equivalence pin to the
// update-compression pipeline: the lossless codec (k=1, fp64, raw framing)
// negotiated over the handshake produces byte-identical global weights to an
// uncompressed distributed run, for both aggregation modes, over loopback
// and TCP alike.
func TestLosslessCompressionEquivalence(t *testing.T) {
	const lossless = "topk:1+fp64+raw"
	for _, aggName := range []string{"fedavg", "allreduce"} {
		t.Run(aggName, func(t *testing.T) {
			want, _ := runDistributed(t, NewLoopback(), aggName)
			loop, repLoop := runDistributedSpec(t, NewLoopback(), aggName, lossless)
			assertBitEqual(t, loop, want, "lossless loopback vs uncompressed")
			tcp, repTCP := runDistributedSpec(t, &TCP{}, aggName, lossless)
			assertBitEqual(t, tcp, want, "lossless tcp vs uncompressed")
			for _, rep := range []*fleet.Report{repLoop, repTCP} {
				if rep.Compression != lossless {
					t.Fatalf("report compression %q, want %q", rep.Compression, lossless)
				}
				if rep.TotalRawUplinkBytes <= 0 || rep.TotalUplinkBytes <= 0 {
					t.Fatalf("missing uplink accounting: raw %d, encoded %d",
						rep.TotalRawUplinkBytes, rep.TotalUplinkBytes)
				}
				if rep.TotalUplinkBytes == rep.TotalRawUplinkBytes {
					t.Fatal("encoded uplink equals raw — updates did not cross encoded")
				}
			}
		})
	}
}

// TestLossyCompressionOverWire runs a genuinely lossy codec through the full
// handshake-negotiated TCP path: the run completes, weights stay finite, and
// the report shows the uplink reduction.
func TestLossyCompressionOverWire(t *testing.T) {
	const spec = "topk:0.25+int8+deflate"
	ps, rep := runDistributedSpec(t, &TCP{}, "fedavg", spec)
	for _, p := range ps {
		for _, v := range p.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite global weight after lossy distributed run")
			}
		}
	}
	if rep.Compression != spec {
		t.Fatalf("report compression %q", rep.Compression)
	}
	if rep.CompressionRatio() < 4 {
		t.Fatalf("compression ratio %.2f < 4 for %s", rep.CompressionRatio(), spec)
	}
	if rep.ModeledUplink <= 0 {
		t.Fatal("modeled uplink time not accounted")
	}
	if !strings.Contains(rep.Render(), "compression: "+spec) {
		t.Fatal("report render lacks the compression line")
	}
}

// TestCodecCapabilityRejection pins the handshake negotiation: a worker not
// advertising a codec the run's compression spec requires is turned away.
func TestCodecCapabilityRejection(t *testing.T) {
	tr := NewLoopback()
	c, err := New(Config{
		Workers: 1, Rounds: 1, Aggregator: "fedavg",
		Compression: "topk:0.1+int8+deflate",
		JoinTimeout: 200 * time.Millisecond,
	}, testModel(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr, err := c.Start(tr, "")
	if err != nil {
		t.Fatal(err)
	}
	// The worker speaks int8 and deflate but not topk.
	rc := dialRaw(t, tr, addr, "no-topk", []string{"fedavg"}, []string{"int8", "deflate"})
	defer rc.conn.Close()
	f := rc.recv()
	if f.Type != msgError {
		t.Fatalf("got message type %d, want error", f.Type)
	}
	msg, err := parseError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "topk") {
		t.Fatalf("rejection message %q does not name the missing codec", msg)
	}
	if _, err := c.Wait(); err == nil {
		t.Fatal("coordinator gathered a fleet from zero codec-capable workers")
	}
}

// TestCompressedPoisonDropsWorker sends a compressed update whose NaN exists
// only after dequantization (the int8 grid is poisoned, the payload bytes are
// finite): the coordinator must decode, validate the decoded tensors, reject
// the update and drop the sender — without stalling the honest fleet.
func TestCompressedPoisonDropsWorker(t *testing.T) {
	const spec = "int8+raw"
	tr := NewLoopback()
	honestJoined := make(chan struct{})
	var joins int
	var joinMu sync.Mutex
	c, err := New(Config{
		Workers: 3, MinWorkers: 2, Rounds: 2, Samples: eqSamples, Seed: 5,
		Aggregator: "fedavg", Optimizer: "sgd", LR: 0.05,
		Compression: spec,
		Logf: func(format string, args ...any) {
			if !strings.Contains(format, "as slot") {
				return
			}
			joinMu.Lock()
			defer joinMu.Unlock()
			joins++
			if joins == 2 {
				close(honestJoined)
			}
		},
	}, testModel(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr, err := c.Start(tr, "")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	honest := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, honest[i] = RunWorker(tr, addr, workerOptions(fmt.Sprintf("w%d", i), 5, eqSamples, nil))
		}(i)
	}

	select {
	case <-honestJoined:
	case <-time.After(10 * time.Second):
		t.Fatal("honest workers never joined")
	}
	rc := dialRaw(t, tr, addr, "evil", []string{"fedavg"}, compress.AllCodecs)
	defer rc.conn.Close()
	a, err := expectWelcome(rc.recv())
	if err != nil {
		t.Fatal(err)
	}
	if a.Compression != "topk:1+int8+raw" {
		t.Fatalf("assigned compression %q", a.Compression)
	}
	if err := rc.conn.Send(ckpt.Frame{Type: msgPull}); err != nil {
		t.Fatal(err)
	}
	round := rc.recv()
	if round.Type != msgRound {
		t.Fatalf("got message type %d, want round", round.Type)
	}
	m, err := parseRound(round.Payload)
	if err != nil {
		t.Fatal(err)
	}
	// Right shapes, poisoned values: the NaN poisons the tensor's int8 grid,
	// so every wire byte is finite and only dequantization resurrects it.
	var vecs []*tensor.Tensor
	for _, nt := range m.params {
		v := nt.Tensor.Clone()
		v.Data()[0] = math.NaN()
		vecs = append(vecs, v)
	}
	pspec, err := compress.ParseSpec(a.Compression)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := compress.NewCompressor(pspec)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := comp.Encode(vecs)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := encodeUpdate(updateMsg{
		round:   m.round,
		samples: eqSamples / a.Workers,
		loss:    0.1,
		codec:   a.Compression,
		blob:    enc.Data,
		state:   ckpt.WorkerState{Index: a.Index, Name: "evil", Opt: ckpt.OptimizerState{Name: "sgd"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.conn.Send(uf); err != nil {
		t.Fatal(err)
	}
	ackF := rc.recv()
	if ackF.Type != msgAck {
		t.Fatalf("got message type %d, want ack", ackF.Type)
	}
	ack, err := parseAck(ackF.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if ack.status != AckRejected {
		t.Fatalf("compressed poison acked %q, want %q", ack.status, AckRejected)
	}
	if _, err := rc.conn.Recv(); err == nil {
		t.Fatal("connection still open after rejection")
	}

	rep, err := c.Wait()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, werr := range honest {
		if werr != nil {
			t.Fatalf("honest worker %d: %v", i, werr)
		}
	}
	for _, p := range c.Global().Params() {
		for _, v := range p.Value.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("global model poisoned despite rejection")
			}
		}
	}
	if rep.Rounds[1].Dropouts != 1 {
		t.Fatalf("round 1: %d dropouts, want 1", rep.Rounds[1].Dropouts)
	}
}

// TestCorruptBlobKillsConnection: a syntactically valid update frame whose
// compressed blob is garbage must fail the coordinator-side decode with the
// corruption error and cost the sender its connection.
func TestCorruptBlobKillsConnection(t *testing.T) {
	tr := NewLoopback()
	c, err := New(Config{
		Workers: 1, Rounds: 1, Samples: 8, Seed: 3,
		Aggregator: "fedavg", Compression: "int8+deflate",
		JoinTimeout: time.Second, RoundRetries: -1,
	}, testModel(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr, err := c.Start(tr, "")
	if err != nil {
		t.Fatal(err)
	}
	rc := dialRaw(t, tr, addr, "garbler", []string{"fedavg"}, compress.AllCodecs)
	defer rc.conn.Close()
	a, err := expectWelcome(rc.recv())
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.conn.Send(ckpt.Frame{Type: msgPull}); err != nil {
		t.Fatal(err)
	}
	if f := rc.recv(); f.Type != msgRound {
		t.Fatalf("got message type %d, want round", f.Type)
	}
	uf, err := encodeUpdate(updateMsg{
		round: 0, samples: 8, loss: 0.5,
		codec: a.Compression,
		blob:  []byte{1, 2, 3, 4, 5, 6, 7, 8},
		state: ckpt.WorkerState{Index: a.Index, Name: "garbler"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.conn.Send(uf); err != nil {
		t.Fatal(err)
	}
	f := rc.recv()
	if f.Type != msgError {
		t.Fatalf("got message type %d, want error", f.Type)
	}
	msg, err := parseError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "corrupt") {
		t.Fatalf("error %q does not report corruption", msg)
	}
	if _, err := rc.conn.Recv(); err == nil {
		t.Fatal("connection still open after corrupt blob")
	}
}

// TestKillAndRejoin drops a worker mid-round — after training, before
// upload — and asserts the round is held below quorum, retried once the
// worker rejoins with its recovered optimizer state, and finally folds with
// the full fleet, leaving weights byte-identical to an undisturbed run.
func TestKillAndRejoin(t *testing.T) {
	tr := NewLoopback()
	c, err := New(Config{
		Workers:    3,
		Rounds:     4,
		Samples:    eqSamples,
		Seed:       7,
		Aggregator: "fedavg",
		Optimizer:  "momentum",
		LR:         0.05,
	}, testModel(7))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr, err := c.Start(tr, "")
	if err != nil {
		t.Fatal(err)
	}

	// Survivors hold round 2 open until the victim's second life has been
	// welcomed back, so the rejoin deterministically lands before the final
	// rounds regardless of scheduling.
	rejoined := make(chan struct{})
	var wg sync.WaitGroup
	survivors := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, survivors[i] = RunWorker(tr, addr, workerOptions(fmt.Sprintf("w%d", i), 7, eqSamples, func(round int) error {
				if round == 2 {
					select {
					case <-rejoined:
					case <-time.After(10 * time.Second):
						return errors.New("timed out waiting for the victim to rejoin")
					}
				}
				return nil
			}))
		}(i)
	}

	// First life: the victim trains rounds 0 and 1, then dies before
	// uploading round 1's update.
	boom := errors.New("simulated crash")
	_, err = RunWorker(tr, addr, workerOptions("victim", 7, eqSamples, func(round int) error {
		if round == 1 {
			return boom
		}
		return nil
	}))
	if !errors.Is(err, boom) {
		t.Fatalf("victim first life returned %v, want the injected crash", err)
	}

	// Second life: rejoin under the same name, recovering durable state.
	// The coordinator may not have processed the first life's death yet, in
	// which case the name is still held — retry, as a real worker would.
	var once sync.Once
	secondLife := workerOptions("victim", 7, eqSamples, nil)
	secondLife.Logf = func(format string, args ...any) {
		if strings.Contains(format, "recovered optimizer state") {
			once.Do(func() { close(rejoined) })
		}
	}
	var res *WorkerResult
	for deadline := time.Now().Add(5 * time.Second); ; {
		res, err = RunWorker(tr, addr, secondLife)
		if err == nil {
			break
		}
		if !strings.Contains(err.Error(), "already connected") || time.Now().After(deadline) {
			t.Fatalf("victim second life: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !res.Restored {
		t.Fatalf("rejoined worker did not recover state")
	}
	st := res.Assignment.State
	if st == nil {
		t.Fatalf("rejoin assignment carries no state")
	}
	// The recovery point is the state captured with the round-0 update.
	if st.Rounds != 1 {
		t.Fatalf("recovered state has %d rounds done, want 1", st.Rounds)
	}
	if st.Opt.Name != "momentum" || len(st.Opt.Slots) == 0 {
		t.Fatalf("recovered state lacks momentum slots: %+v", st.Opt)
	}

	rep, err := c.Wait()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, werr := range survivors {
		if werr != nil {
			t.Fatalf("survivor %d: %v", i, werr)
		}
	}
	// Round 1 lost the victim below the quorum of 3, so the fold was held
	// back and the round retried once the victim rejoined: the final tally
	// is full participation plus the recorded dropout.
	r1 := rep.Rounds[1]
	if r1.Participants != 3 || r1.Dropouts != 1 {
		t.Fatalf("round 1: %d participants, %d dropouts, want 3 and 1", r1.Participants, r1.Dropouts)
	}
	// Round 0 had the full fleet.
	if rep.Rounds[0].Participants != 3 {
		t.Fatalf("round 0: %d participants, want 3", rep.Rounds[0].Participants)
	}
	last := rep.Rounds[len(rep.Rounds)-1]
	if last.Participants != 3 {
		t.Fatalf("final round: %d participants, want 3 (victim rejoined)", last.Participants)
	}
	// The coordinator retained durable state for all three slots.
	if got := len(c.WorkerStates()); got != 3 {
		t.Fatalf("coordinator retained %d worker states, want 3", got)
	}

	// The quorum-retry contract: the retried round folded the exact updates
	// an undisturbed round would, so the finished run is byte-identical to
	// an in-process fleet that never saw the crash.
	opt := func() trainer.Optimizer {
		o, err := trainer.NewOptimizer("momentum", 0.05)
		if err != nil {
			panic(err)
		}
		return o
	}
	agg, err := fleet.NewAggregator("fedavg", opt())
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]fleet.WorkerSpec, 3)
	specs[0].Name, specs[1].Name, specs[2].Name = "w0", "w1", "victim"
	ref, err := fleet.New(fleet.Config{
		Workers: specs, Rounds: 4, Seed: 7,
		Aggregator: agg, Optimizer: opt,
	}, testModel(7), testDataset(eqSamples, 7))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	var want, got []*tensor.Tensor
	for _, p := range ref.Global().Params() {
		want = append(want, p.Value)
	}
	for _, p := range c.Global().Params() {
		got = append(got, p.Value)
	}
	assertBitEqual(t, got, want, "crash-and-retry vs undisturbed")
}

// rawClient is a hand-driven protocol client for adversarial tests.
type rawClient struct {
	t    *testing.T
	conn Conn
}

func dialRaw(t *testing.T, tr Transport, addr, name string, aggs, codecs []string) *rawClient {
	t.Helper()
	conn, err := tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(encodeHello(hello{
		version:     ProtocolVersion,
		name:        name,
		device:      "rogue",
		aggregators: aggs,
		strategies:  []string{"storeall"},
		codecs:      codecs,
	})); err != nil {
		t.Fatal(err)
	}
	return &rawClient{t: t, conn: conn}
}

func (rc *rawClient) recv() ckpt.Frame {
	rc.t.Helper()
	f, err := rc.conn.Recv()
	if err != nil {
		rc.t.Fatal(err)
	}
	return f
}

// TestCapabilityRejection pins that a worker not supporting the fleet's
// aggregator is turned away in the handshake.
func TestCapabilityRejection(t *testing.T) {
	tr := NewLoopback()
	c, err := New(Config{
		Workers: 1, Rounds: 1, Aggregator: "allreduce",
		JoinTimeout: 200 * time.Millisecond,
	}, testModel(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr, err := c.Start(tr, "")
	if err != nil {
		t.Fatal(err)
	}
	rc := dialRaw(t, tr, addr, "fedavg-only", []string{"fedavg"}, compress.AllCodecs)
	defer rc.conn.Close()
	f := rc.recv()
	if f.Type != msgError {
		t.Fatalf("got message type %d, want error", f.Type)
	}
	msg, err := parseError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "allreduce") {
		t.Fatalf("rejection message %q does not name the aggregator", msg)
	}
	if _, err := c.Wait(); err == nil {
		t.Fatalf("coordinator gathered a fleet from zero eligible workers")
	}
}

// TestPoisonedUpdateDropsWorker sends a NaN-poisoned update from a raw
// client and asserts the coordinator rejects it, drops the worker, and
// completes the run with the honest workers — the quorum of 2 is still met
// by the survivors, so rejection never stalls the round.
func TestPoisonedUpdateDropsWorker(t *testing.T) {
	tr := NewLoopback()
	// Counting the join log lines lets the test admit the evil client only
	// after both honest workers hold their slots, making it deterministically
	// the third joiner: the run starts at the quorum of 2, and the poison
	// lands in round 1.
	honestJoined := make(chan struct{})
	var joins int
	var joinMu sync.Mutex
	c, err := New(Config{
		Workers: 3, MinWorkers: 2, Rounds: 2, Samples: eqSamples, Seed: 5,
		Aggregator: "fedavg", Optimizer: "sgd", LR: 0.05,
		Logf: func(format string, args ...any) {
			if !strings.Contains(format, "as slot") {
				return
			}
			joinMu.Lock()
			defer joinMu.Unlock()
			joins++
			if joins == 2 {
				close(honestJoined)
			}
		},
	}, testModel(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr, err := c.Start(tr, "")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	honest := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, honest[i] = RunWorker(tr, addr, workerOptions(fmt.Sprintf("w%d", i), 5, eqSamples, nil))
		}(i)
	}

	select {
	case <-honestJoined:
	case <-time.After(10 * time.Second):
		t.Fatalf("honest workers never joined")
	}
	rc := dialRaw(t, tr, addr, "evil", []string{"fedavg"}, compress.AllCodecs)
	defer rc.conn.Close()
	welcome := rc.recv()
	a, err := expectWelcome(welcome)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.conn.Send(ckpt.Frame{Type: msgPull}); err != nil {
		t.Fatal(err)
	}
	round := rc.recv()
	if round.Type != msgRound {
		t.Fatalf("got message type %d, want round", round.Type)
	}
	m, err := parseRound(round.Payload)
	if err != nil {
		t.Fatal(err)
	}
	// Right shapes, poisoned values.
	var vecs []*tensor.Tensor
	for _, nt := range m.params {
		v := nt.Tensor.Clone()
		v.Data()[0] = math.NaN()
		vecs = append(vecs, v)
	}
	uf, err := encodeUpdate(updateMsg{
		round:   m.round,
		samples: eqSamples / a.Workers,
		loss:    0.1,
		vecs:    vecs,
		state:   ckpt.WorkerState{Index: a.Index, Name: "evil", Opt: ckpt.OptimizerState{Name: "sgd"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.conn.Send(uf); err != nil {
		t.Fatal(err)
	}
	ackF := rc.recv()
	if ackF.Type != msgAck {
		t.Fatalf("got message type %d, want ack", ackF.Type)
	}
	ack, err := parseAck(ackF.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if ack.status != AckRejected {
		t.Fatalf("poisoned update acked %q, want %q", ack.status, AckRejected)
	}
	// The coordinator hangs up on a dropped worker.
	if _, err := rc.conn.Recv(); err == nil {
		t.Fatalf("connection still open after rejection")
	}

	rep, err := c.Wait()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, werr := range honest {
		if werr != nil {
			t.Fatalf("honest worker %d: %v", i, werr)
		}
	}
	// Round 0 ran with just the honest pair (evil had not joined yet); the
	// poison landed in round 1 and cost evil its slot without stalling the
	// fold.
	if rep.Rounds[0].Participants != 2 || rep.Rounds[0].Dropouts != 0 {
		t.Fatalf("round 0: %d participants, %d dropouts, want 2 and 0",
			rep.Rounds[0].Participants, rep.Rounds[0].Dropouts)
	}
	if rep.Rounds[1].Participants != 2 || rep.Rounds[1].Dropouts != 1 {
		t.Fatalf("round 1: %d participants, %d dropouts, want 2 and 1",
			rep.Rounds[1].Participants, rep.Rounds[1].Dropouts)
	}
	if rep.FinalLoss == 0 || math.IsNaN(rep.FinalLoss) {
		t.Fatalf("final loss %v after poisoned round", rep.FinalLoss)
	}
	for _, p := range c.Global().Params() {
		for _, v := range p.Value.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("global model poisoned despite rejection")
			}
		}
	}
}
