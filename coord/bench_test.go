package coord

import (
	"fmt"
	"net"
	"testing"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
)

// BenchmarkUpdateRoundTrip measures the coordinator's per-update cost: the
// worker side encodes and sends an update, the coordinator side receives,
// parses, validates and folds it — the full wire path of one update, minus
// the training itself. Styles compare raw framing against DEFLATE.
func BenchmarkUpdateRoundTrip(b *testing.B) {
	for _, style := range []struct {
		name  string
		style uint32
	}{
		{"raw", ckpt.StyleRaw},
		{"deflate", ckpt.StyleDeflate},
	} {
		b.Run(style.name, func(b *testing.B) {
			rng := tensor.NewRNG(11)
			var global []*nn.Param
			var vecs []*tensor.Tensor
			var modelBytes int64
			for i, shape := range [][]int{{64, 32}, {32}, {32, 16}, {16}, {16, 8}, {8}} {
				t := randTensor(rng, shape...)
				global = append(global, nn.NewParam(fmt.Sprintf("p%d", i), t))
				vecs = append(vecs, randTensor(rng, shape...))
				modelBytes += int64(len(t.Data())) * 8
			}
			opt, err := trainer.NewOptimizer("sgd", 0.05)
			if err != nil {
				b.Fatal(err)
			}
			agg, err := fleet.NewAggregator("fedavg", opt)
			if err != nil {
				b.Fatal(err)
			}
			msg := updateMsg{
				round: 1, samples: 32, loss: 1.5,
				vecs:  vecs,
				state: ckpt.WorkerState{Name: "bench", Opt: ckpt.OptimizerState{Name: "sgd"}},
			}

			cw, cc := net.Pipe()
			workerConn := newFrameConn(cw, style.style)
			coordConn := newFrameConn(cc, style.style)
			defer workerConn.Close()
			defer coordConn.Close()

			errc := make(chan error, 1)
			go func() {
				// Worker side: encode, send, await ack.
				for i := 0; i < b.N; i++ {
					f, err := encodeUpdate(msg)
					if err == nil {
						err = workerConn.Send(f)
					}
					if err == nil {
						_, err = workerConn.Recv()
					}
					if err != nil {
						errc <- err
						return
					}
				}
				errc <- nil
			}()

			b.SetBytes(modelBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := coordConn.Recv()
				if err != nil {
					b.Fatal(err)
				}
				u, err := parseUpdate(f.Payload)
				if err != nil {
					b.Fatal(err)
				}
				upd := u.stats
				upd.Samples, upd.Loss, upd.Vecs = u.samples, u.loss, u.vecs
				if err := agg.Fold(global, []fleet.Update{upd}); err != nil {
					b.Fatal(err)
				}
				if err := coordConn.Send(encodeAck(ackMsg{round: u.round, status: AckOK})); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := <-errc; err != nil {
				b.Fatal(err)
			}
		})
	}
}
