package coord

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/edgeml/edgetrain/ckpt"
)

// maxMessageBytes bounds one protocol message's declared sizes — a DoS guard
// against a hostile or corrupted peer lying about a payload length. Large
// enough for any model this repository trains, small enough that a flipped
// length byte cannot demand a terabyte.
const maxMessageBytes = int64(1) << 32

// Conn is one bidirectional protocol connection. Messages are ckpt frames:
// the wire format of a message is byte-identical to the corresponding frame
// of a checkpoint file (28-byte header, CRC32, raw or DEFLATE payload), so
// the network layer inherits the checkpoint codec's corruption detection.
// Send and Recv are each safe for concurrent use (sends from multiple
// goroutines are serialized; one reader at a time).
type Conn interface {
	// Send writes one message and flushes it to the peer.
	Send(f ckpt.Frame) error
	// Recv blocks for the next message.
	Recv() (ckpt.Frame, error)
	// Stats reports total framed bytes sent and received on this connection.
	Stats() (sent, received int64)
	// Close tears the connection down, unblocking any pending Recv.
	Close() error
}

// Listener accepts inbound connections for a coordinator.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Addr is the bound address workers dial.
	Addr() string
	// Close stops accepting; pending Accepts fail.
	Close() error
}

// Transport abstracts how coordinator and workers reach each other. Two
// implementations ship: TCP (real distribution) and Loopback (in-process
// pipes moving the same frame bytes), so equivalence tests can pin that the
// transport choice never changes the trained weights.
type Transport interface {
	// Name identifies the transport ("tcp", "loopback") in logs and reports.
	Name() string
	// Listen binds a coordinator endpoint. An empty or ":0" address picks a
	// free one; the chosen address is Listener.Addr.
	Listen(addr string) (Listener, error)
	// Dial connects a worker to a coordinator endpoint.
	Dial(addr string) (Conn, error)
}

// frameConn adapts any stream to Conn with the ckpt frame codec. Writes are
// buffered and flushed per message; byte counters cover the framed bytes
// actually moved, which is what the report's wire column shows.
type frameConn struct {
	c     io.ReadWriteCloser
	style uint32

	wmu sync.Mutex
	bw  *bufio.Writer
	rmu sync.Mutex
	br  *bufio.Reader

	sent atomic.Int64
	recv atomic.Int64
}

func newFrameConn(c io.ReadWriteCloser, style uint32) *frameConn {
	return &frameConn{
		c:     c,
		style: style,
		bw:    bufio.NewWriterSize(c, 64<<10),
		br:    bufio.NewReaderSize(c, 64<<10),
	}
}

func (fc *frameConn) Send(f ckpt.Frame) error {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	n, err := ckpt.WriteFrame(fc.bw, f, fc.style)
	if err == nil {
		err = fc.bw.Flush()
	}
	fc.sent.Add(int64(n))
	return err
}

// sendMangled encodes the frame exactly as Send would, hands the encoded
// bytes to mangle for rewriting, and puts the result on the wire. It exists
// for the Chaos transport: injected corruption must happen below the codec,
// on the serialized bytes, so the receiving ReadFrame exercises the same
// CRC/structure checks that guard real link damage.
func (fc *frameConn) sendMangled(f ckpt.Frame, mangle func([]byte)) error {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	var buf bytes.Buffer
	if _, err := ckpt.WriteFrame(&buf, f, fc.style); err != nil {
		return err
	}
	b := buf.Bytes()
	mangle(b)
	n, err := fc.bw.Write(b)
	if err == nil {
		err = fc.bw.Flush()
	}
	fc.sent.Add(int64(n))
	return err
}

func (fc *frameConn) Recv() (ckpt.Frame, error) {
	fc.rmu.Lock()
	defer fc.rmu.Unlock()
	f, n, err := ckpt.ReadFrame(fc.br, maxMessageBytes)
	fc.recv.Add(int64(n))
	return f, err
}

func (fc *frameConn) Stats() (sent, received int64) {
	return fc.sent.Load(), fc.recv.Load()
}

func (fc *frameConn) Close() error { return fc.c.Close() }

// TCP is the real network transport: length-prefixed ckpt frames over a TCP
// stream.
type TCP struct {
	// Compress selects DEFLATE framing for sent messages (each side of a
	// connection chooses independently; the frame header carries the style).
	Compress bool
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
}

// Name implements Transport.
func (t *TCP) Name() string { return "tcp" }

func (t *TCP) style() uint32 {
	if t.Compress {
		return ckpt.StyleDeflate
	}
	return ckpt.StyleRaw
}

// Listen implements Transport.
func (t *TCP) Listen(addr string) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("coord: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l, style: t.style()}, nil
}

// Dial implements Transport.
func (t *TCP) Dial(addr string) (Conn, error) {
	timeout := t.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("coord: dial %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // the protocol is ping-pong; don't batch small frames
	}
	return newFrameConn(c, t.style()), nil
}

type tcpListener struct {
	l     net.Listener
	style uint32
}

func (tl *tcpListener) Accept() (Conn, error) {
	c, err := tl.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return newFrameConn(c, tl.style), nil
}

func (tl *tcpListener) Addr() string { return tl.l.Addr().String() }
func (tl *tcpListener) Close() error { return tl.l.Close() }

// Loopback is the in-process transport: synchronous net.Pipe pairs carrying
// the same frame bytes TCP would, with no sockets involved. A Loopback value
// is its own private address space; coordinator and workers must share it.
type Loopback struct {
	// Compress selects DEFLATE framing for sent messages.
	Compress bool

	mu        sync.Mutex
	next      int
	listeners map[string]*loopListener
}

// NewLoopback returns an empty in-process transport.
func NewLoopback() *Loopback { return &Loopback{} }

// Name implements Transport.
func (t *Loopback) Name() string { return "loopback" }

func (t *Loopback) style() uint32 {
	if t.Compress {
		return ckpt.StyleDeflate
	}
	return ckpt.StyleRaw
}

// Listen implements Transport. An empty address allocates "loop:<n>".
func (t *Loopback) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.listeners == nil {
		t.listeners = make(map[string]*loopListener)
	}
	if addr == "" || addr == ":0" {
		t.next++
		addr = fmt.Sprintf("loop:%d", t.next)
	}
	if _, ok := t.listeners[addr]; ok {
		return nil, fmt.Errorf("coord: loopback address %s already bound", addr)
	}
	ll := &loopListener{
		t:      t,
		addr:   addr,
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
	}
	t.listeners[addr] = ll
	return ll, nil
}

// Dial implements Transport.
func (t *Loopback) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	ll := t.listeners[addr]
	t.mu.Unlock()
	if ll == nil {
		return nil, fmt.Errorf("coord: no loopback listener at %s", addr)
	}
	client, server := net.Pipe()
	select {
	case ll.accept <- server:
		return newFrameConn(client, t.style()), nil
	case <-ll.done:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("coord: loopback listener at %s is closed", addr)
	}
}

type loopListener struct {
	t      *Loopback
	addr   string
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
}

func (ll *loopListener) Accept() (Conn, error) {
	select {
	case c := <-ll.accept:
		return newFrameConn(c, ll.t.style()), nil
	case <-ll.done:
		return nil, fmt.Errorf("coord: loopback listener at %s is closed", ll.addr)
	}
}

func (ll *loopListener) Addr() string { return ll.addr }

func (ll *loopListener) Close() error {
	ll.once.Do(func() {
		close(ll.done)
		ll.t.mu.Lock()
		delete(ll.t.listeners, ll.addr)
		ll.t.mu.Unlock()
	})
	return nil
}
