package coord

import (
	"fmt"
	"sync"
	"time"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/trainer"
)

// WorkerOptions configures one edge worker process.
type WorkerOptions struct {
	// Spec identifies the worker: its name (the rejoin identity — a worker
	// reconnecting under the same name recovers its slot and optimizer
	// state), device profile, RAM budget and spill directory.
	Spec fleet.WorkerSpec
	// Model builds the worker's model replica once the assignment is known.
	// It must be the same deterministic factory the coordinator uses.
	Model func(a Assignment) (*chain.Chain, error)
	// Dataset builds the worker's local copy of the full dataset; the worker
	// trains on shard a.Index of a.Workers (trainer.Shard), exactly as the
	// in-process fleet would.
	Dataset func(a Assignment) (trainer.Dataset, error)
	// Optimizer overrides the local optimiser; nil constructs
	// trainer.NewOptimizer(a.Optimizer, a.LR) from the assignment.
	Optimizer func(a Assignment) (trainer.Optimizer, error)
	// Heartbeat is the liveness interval while training (default 1s).
	Heartbeat time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	// beforeUpdate, when non-nil, runs after local training and before the
	// update upload; an error abandons the connection — the test hook that
	// simulates a worker crashing mid-round.
	beforeUpdate func(round int) error
}

// WorkerResult summarises one worker process's run.
type WorkerResult struct {
	// Assignment is the slot and run configuration the coordinator granted.
	Assignment Assignment
	// Rounds is how many of this worker's updates were accepted for folding.
	Rounds int
	// Restored reports whether the worker rejoined and recovered durable
	// state from the coordinator.
	Restored bool
	// WireSent and WireReceived are the framed bytes moved on the wire.
	WireSent     int64
	WireReceived int64
}

// RunWorker joins the coordinator at addr, trains rounds until the
// coordinator signals completion, and returns the worker's summary. It is
// the whole lifecycle of one edge worker process: capability handshake,
// shard assignment, per-round pull → local train → update push, with
// heartbeats during training and durable-state capture with every update.
func RunWorker(t Transport, addr string, opts WorkerOptions) (*WorkerResult, error) {
	if opts.Spec.Name == "" {
		return nil, fmt.Errorf("coord: worker needs a name (the rejoin identity)")
	}
	if opts.Model == nil || opts.Dataset == nil {
		return nil, fmt.Errorf("coord: worker needs Model and Dataset builders")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	heartbeat := opts.Heartbeat
	if heartbeat <= 0 {
		heartbeat = time.Second
	}

	conn, err := t.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	budget := opts.Spec.BudgetBytes
	if budget <= 0 {
		budget = opts.Spec.Device.MemoryBytes
	}
	err = conn.Send(encodeHello(hello{
		version:     ProtocolVersion,
		name:        opts.Spec.Name,
		device:      opts.Spec.Device.Name,
		budgetBytes: budget,
		aggregators: []string{"fedavg", "allreduce"},
		strategies:  []string{"storeall", "revolve", "twolevel"},
	}))
	if err != nil {
		return nil, fmt.Errorf("coord: sending hello: %w", err)
	}
	f, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("coord: waiting for welcome: %w", err)
	}
	a, err := expectWelcome(f)
	if err != nil {
		return nil, err
	}
	logf("worker %s: assigned slot %d of %d (%s, optimizer %s lr %g)",
		opts.Spec.Name, a.Index, a.Workers, a.Aggregator, a.Optimizer, a.LR)

	ds, err := opts.Dataset(a)
	if err != nil {
		return nil, fmt.Errorf("coord: building dataset: %w", err)
	}
	var opt trainer.Optimizer
	if opts.Optimizer != nil {
		opt, err = opts.Optimizer(a)
	} else {
		opt, err = trainer.NewOptimizer(a.Optimizer, a.LR)
	}
	if err != nil {
		return nil, err
	}
	w, err := fleet.NewWorker(opts.Spec, a.Index, a.Workers,
		func() (*chain.Chain, error) { return opts.Model(a) },
		ds, a.BatchSize, a.LocalEpochs, opt)
	if err != nil {
		return nil, err
	}
	defer w.Close()
	agg, err := fleet.NewAggregator(a.Aggregator, nil)
	if err != nil {
		return nil, err
	}

	res := &WorkerResult{Assignment: a}
	if a.State != nil {
		if err := w.RestoreState(*a.State); err != nil {
			return nil, err
		}
		res.Restored = true
		logf("worker %s: recovered optimizer state (%d rounds, %d samples done)",
			opts.Spec.Name, a.State.Rounds, a.State.Samples)
	}

	for {
		if err := conn.Send(ckpt.Frame{Type: msgPull}); err != nil {
			return res, fmt.Errorf("coord: sending pull: %w", err)
		}
		f, err := conn.Recv()
		if err != nil {
			return res, fmt.Errorf("coord: waiting for round: %w", err)
		}
		switch f.Type {
		case msgDone:
			res.WireSent, res.WireReceived = conn.Stats()
			logf("worker %s: run complete (%d rounds contributed)", opts.Spec.Name, res.Rounds)
			return res, nil
		case msgError:
			msg, _ := parseError(f.Payload)
			return res, fmt.Errorf("coord: coordinator rejected worker: %s", msg)
		case msgRound:
			// Handled below.
		default:
			return res, fmt.Errorf("coord: expected round directive, got message type %d", f.Type)
		}
		m, err := parseRound(f.Payload)
		if err != nil {
			return res, err
		}
		if err := applyBroadcast(w, m.params); err != nil {
			return res, err
		}

		// Local computation with heartbeats flowing; the coordinator-side
		// handler is guaranteed to be reading during this window.
		stop := startHeartbeat(conn, heartbeat)
		tstart := time.Now()
		u, lerr := agg.Local(w, m.round)
		stop()
		if lerr != nil {
			return res, fmt.Errorf("coord: round %d local computation: %w", m.round, lerr)
		}
		if opts.beforeUpdate != nil {
			if err := opts.beforeUpdate(m.round); err != nil {
				return res, err
			}
		}
		ws, err := w.CaptureState()
		if err != nil {
			return res, err
		}
		// The captured state is the rejoin recovery point: account this
		// round's contribution as if folded, matching what an in-process
		// fleet checkpoint taken after the round would hold.
		ws.Rounds++
		ws.Samples += int64(u.Samples)
		frame, err := encodeUpdate(updateMsg{
			round:    m.round,
			samples:  u.Samples,
			loss:     u.Loss,
			duration: time.Since(tstart),
			strategy: w.Choice.Strategy,
			stats:    u,
			vecs:     u.Vecs,
			state:    ws,
		})
		if err != nil {
			return res, err
		}
		if err := conn.Send(frame); err != nil {
			return res, fmt.Errorf("coord: uploading round %d update: %w", m.round, err)
		}
		f, err = conn.Recv()
		if err != nil {
			return res, fmt.Errorf("coord: waiting for round %d ack: %w", m.round, err)
		}
		if f.Type != msgAck {
			if f.Type == msgError {
				msg, _ := parseError(f.Payload)
				return res, fmt.Errorf("coord: round %d: %s", m.round, msg)
			}
			return res, fmt.Errorf("coord: expected ack, got message type %d", f.Type)
		}
		ack, err := parseAck(f.Payload)
		if err != nil {
			return res, err
		}
		switch ack.status {
		case AckOK:
			w.AddProgress(1, int64(u.Samples))
			res.Rounds++
			logf("worker %s: round %d folded (loss %.4f, %d samples)", opts.Spec.Name, m.round, u.Loss, u.Samples)
		case AckLate:
			logf("worker %s: round %d update arrived past the deadline, discarded", opts.Spec.Name, m.round)
		case AckRejected:
			return res, fmt.Errorf("coord: round %d update rejected by coordinator", m.round)
		default:
			return res, fmt.Errorf("coord: unknown ack status %q", ack.status)
		}
	}
}

func expectWelcome(f ckpt.Frame) (Assignment, error) {
	switch f.Type {
	case msgWelcome:
		return parseWelcome(f.Payload)
	case msgError:
		msg, _ := parseError(f.Payload)
		return Assignment{}, fmt.Errorf("coord: coordinator rejected worker: %s", msg)
	default:
		return Assignment{}, fmt.Errorf("coord: expected welcome, got message type %d", f.Type)
	}
}

// applyBroadcast loads the round's global parameters into the worker's
// replica — the download half of fleet.Round's broadcast.
func applyBroadcast(w *fleet.Worker, params []ckpt.NamedTensor) error {
	ps := w.Chain.Params()
	if len(params) != len(ps) {
		return fmt.Errorf("coord: broadcast has %d parameters, model has %d", len(params), len(ps))
	}
	for k, p := range ps {
		nt := params[k]
		if nt.Name != p.Name {
			return fmt.Errorf("coord: broadcast parameter %d is %q, model has %q", k, nt.Name, p.Name)
		}
		if !nt.Tensor.SameShape(p.Value) {
			return fmt.Errorf("coord: broadcast parameter %q shape %v, model has %v", nt.Name, nt.Tensor.Shape(), p.Value.Shape())
		}
		copy(p.Value.Data(), nt.Tensor.Data())
	}
	return nil
}

// startHeartbeat streams liveness frames until stopped. The stop function
// waits the sender out, so no heartbeat can interleave with the update
// upload that follows.
func startHeartbeat(conn Conn, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if conn.Send(ckpt.Frame{Type: msgHeartbeat}) != nil {
					return
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
