package coord

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/compress"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/obs"
)

// WorkerOptions configures one edge worker process.
type WorkerOptions struct {
	// Spec identifies the worker: its name (the rejoin identity — a worker
	// reconnecting under the same name recovers its slot and optimizer
	// state), device profile, RAM budget and spill directory.
	Spec fleet.WorkerSpec
	// Model builds the worker's model replica once the assignment is known.
	// It must be the same deterministic factory the coordinator uses.
	Model func(a Assignment) (*chain.Chain, error)
	// Dataset builds the worker's local copy of the full dataset; the worker
	// trains on shard a.Index of a.Workers (trainer.Shard), exactly as the
	// in-process fleet would.
	Dataset func(a Assignment) (trainer.Dataset, error)
	// Optimizer overrides the local optimiser; nil constructs
	// trainer.NewOptimizer(a.Optimizer, a.LR) from the assignment.
	Optimizer func(a Assignment) (trainer.Optimizer, error)
	// Codecs is the update-compression capability the worker advertises in
	// its hello. Nil means every codec (compress.AllCodecs); an empty
	// non-nil slice advertises none, so a coordinator running a lossy spec
	// turns this worker away in the handshake.
	Codecs []string
	// Heartbeat is the liveness interval while training (default 1s).
	Heartbeat time.Duration
	// Retries is the reconnect budget: how many consecutive failed
	// connection attempts the worker tolerates before giving up. The budget
	// refills every time a handshake succeeds, so a long-lived worker on a
	// flaky link survives any number of isolated blips. 0 means the default
	// of 5; negative disables reconnecting entirely (single-shot, the
	// pre-fault-tolerance behavior).
	Retries int
	// BackoffMin and BackoffMax bound the exponential backoff between
	// reconnect attempts (defaults 50ms and 5s). Each wait doubles the
	// previous one and adds jitter so a restarted coordinator is not hit by
	// a synchronized thundering herd of rejoining workers.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	// beforeUpdate, when non-nil, runs after local training and before the
	// update upload; an error abandons the connection — the test hook that
	// simulates a worker crashing mid-round.
	beforeUpdate func(round int) error
}

// WorkerResult summarises one worker process's run, accumulated across every
// connection the reconnect loop established.
type WorkerResult struct {
	// Assignment is the slot and run configuration the coordinator granted
	// (from the most recent handshake).
	Assignment Assignment
	// Rounds is how many of this worker's updates were accepted for folding.
	Rounds int
	// Restored reports whether the worker rejoined and recovered durable
	// state from the coordinator on any connection.
	Restored bool
	// WireSent and WireReceived are the framed bytes moved on the wire,
	// summed over all connections.
	WireSent     int64
	WireReceived int64
}

// transientError marks a failure worth a reconnect: the network or the
// coordinator process went away mid-conversation, as opposed to the
// coordinator deliberately rejecting this worker.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func transientf(format string, args ...any) error {
	return &transientError{fmt.Errorf(format, args...)}
}

func isTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// RunWorker joins the coordinator at addr, trains rounds until the
// coordinator signals completion, and returns the worker's summary. It is
// the whole lifecycle of one edge worker process: capability handshake,
// shard assignment, per-round pull → local train → update push, with
// heartbeats during training and durable-state capture with every update.
//
// Connection failures — a refused dial, a dropped conn mid-round, a
// coordinator restart — do not kill the worker: it reconnects with
// exponential backoff under the same name, and the coordinator's rejoin path
// hands back the last committed optimizer state, so training continues
// exactly where the last folded round left it. Only a deliberate rejection
// (capability mismatch, poisoned update) or local failure is fatal.
func RunWorker(t Transport, addr string, opts WorkerOptions) (*WorkerResult, error) {
	if opts.Spec.Name == "" {
		return nil, fmt.Errorf("coord: worker needs a name (the rejoin identity)")
	}
	if opts.Model == nil || opts.Dataset == nil {
		return nil, fmt.Errorf("coord: worker needs Model and Dataset builders")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	retries := opts.Retries
	if retries == 0 {
		retries = 5
	}
	if retries < 0 {
		retries = 0
	}
	backoffMin := opts.BackoffMin
	if backoffMin <= 0 {
		backoffMin = 50 * time.Millisecond
	}
	backoffMax := opts.BackoffMax
	if backoffMax < backoffMin {
		backoffMax = 5 * time.Second
		if backoffMax < backoffMin {
			backoffMax = backoffMin
		}
	}
	// Jitter draws from a per-worker source so a fleet of workers restarted
	// together fans out instead of stampeding in lockstep.
	h := fnv.New64a()
	h.Write([]byte(opts.Spec.Name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	// Telemetry shipping auto-enables with the process observability
	// defaults: when either is installed, the worker piggybacks delta
	// snapshots and recent spans on its heartbeats and updates. The
	// shipper outlives reconnects so a rejoined session continues from
	// the last shipped position instead of re-counting from zero.
	// Series already carrying a worker label are foreign (ingested by a
	// coordinator sharing this process's registry over the loopback
	// transport) and are never echoed back.
	var ship *obs.DeltaShipper
	if obs.Default() != nil || obs.DefaultTracer() != nil {
		ship = obs.NewDeltaShipper(obs.Default(), obs.DefaultTracer())
		ship.SkipLabels = []string{"worker"}
	}

	res := &WorkerResult{}
	budget := retries
	backoff := backoffMin
	for {
		err := runWorkerSession(t, addr, opts, ship, logf, res, func() {
			// A successful handshake refills the reconnect budget: the
			// bound is on consecutive failures, not lifetime ones.
			budget = retries
			backoff = backoffMin
		})
		if err == nil {
			return res, nil
		}
		if !isTransient(err) {
			return res, err
		}
		if budget <= 0 {
			return res, fmt.Errorf("coord: worker %s giving up after %d reconnect attempts: %w",
				opts.Spec.Name, retries, err)
		}
		budget--
		wait := backoff + time.Duration(rng.Int63n(int64(backoff)/2+1))
		logf("worker %s: connection lost (%v); reconnecting in %s (%d attempts left)",
			opts.Spec.Name, err, wait.Round(time.Millisecond), budget+1)
		time.Sleep(wait)
		backoff *= 2
		if backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

// runWorkerSession runs one connection's worth of the worker lifecycle:
// dial, handshake, train rounds until the conn breaks or the run completes.
// A nil return means the coordinator declared the run complete; a transient
// error asks the caller to reconnect; any other error is fatal. onWelcome
// fires once the handshake has been accepted.
func runWorkerSession(t Transport, addr string, opts WorkerOptions, ship *obs.DeltaShipper,
	logf func(string, ...any), res *WorkerResult, onWelcome func()) error {
	heartbeat := opts.Heartbeat
	if heartbeat <= 0 {
		heartbeat = time.Second
	}

	conn, err := t.Dial(addr)
	if err != nil {
		return transientf("dialing coordinator: %w", err)
	}
	defer conn.Close()
	defer func() {
		sent, recv := conn.Stats()
		res.WireSent += sent
		res.WireReceived += recv
	}()

	budget := opts.Spec.BudgetBytes
	if budget <= 0 {
		budget = opts.Spec.Device.MemoryBytes
	}
	codecs := opts.Codecs
	if codecs == nil {
		codecs = compress.AllCodecs
	}
	err = conn.Send(encodeHello(hello{
		version:     ProtocolVersion,
		name:        opts.Spec.Name,
		device:      opts.Spec.Device.Name,
		budgetBytes: budget,
		aggregators: []string{"fedavg", "allreduce"},
		strategies:  []string{"storeall", "revolve", "twolevel"},
		codecs:      codecs,
	}))
	if err != nil {
		return transientf("coord: sending hello: %w", err)
	}
	f, err := conn.Recv()
	if err != nil {
		return transientf("coord: waiting for welcome: %w", err)
	}
	a, err := expectWelcome(f)
	if err != nil {
		if strings.Contains(err.Error(), "already connected") {
			// The coordinator still holds our previous connection — it has
			// not yet noticed it died. Liveness sweeping will reap it;
			// reconnecting shortly reclaims the slot.
			return &transientError{err}
		}
		if strings.Contains(err.Error(), "run complete") {
			// We reconnected into a finished run (our final ack was lost in
			// flight): the round we uploaded is folded and done. Exit the
			// way a worker that saw the done frame would.
			logf("worker %s: run complete (%d rounds contributed)", opts.Spec.Name, res.Rounds)
			return nil
		}
		return err
	}
	onWelcome()
	logf("worker %s: assigned slot %d of %d (%s, optimizer %s lr %g)",
		opts.Spec.Name, a.Index, a.Workers, a.Aggregator, a.Optimizer, a.LR)
	res.Assignment = a

	ds, err := opts.Dataset(a)
	if err != nil {
		return fmt.Errorf("coord: building dataset: %w", err)
	}
	var opt trainer.Optimizer
	if opts.Optimizer != nil {
		opt, err = opts.Optimizer(a)
	} else {
		opt, err = trainer.NewOptimizer(a.Optimizer, a.LR)
	}
	if err != nil {
		return err
	}
	w, err := fleet.NewWorker(opts.Spec, a.Index, a.Workers,
		func() (*chain.Chain, error) { return opts.Model(a) },
		ds, a.BatchSize, a.LocalEpochs, opt)
	if err != nil {
		return err
	}
	defer w.Close()
	agg, err := fleet.NewAggregator(a.Aggregator, nil)
	if err != nil {
		return err
	}
	// The run's update codec, assigned in the welcome. The compressor (and
	// its error-feedback residual) lives for this connection: a reconnect
	// starts with a zero residual, losing at most one update's worth of
	// dropped mass — the same information a lost connection already loses.
	var comp *compress.Compressor
	if a.Compression != "" {
		spec, err := compress.ParseSpec(a.Compression)
		if err != nil {
			return fmt.Errorf("coord: assigned compression: %w", err)
		}
		comp, err = compress.NewCompressor(spec)
		if err != nil {
			return fmt.Errorf("coord: assigned compression: %w", err)
		}
		logf("worker %s: compressing updates with %s", opts.Spec.Name, spec)
	}

	if a.State != nil {
		if err := w.RestoreState(*a.State); err != nil {
			return err
		}
		res.Restored = true
		logf("worker %s: recovered optimizer state (%d rounds, %d samples done)",
			opts.Spec.Name, a.State.Rounds, a.State.Samples)
	}

	for {
		if err := conn.Send(ckpt.Frame{Type: msgPull}); err != nil {
			return transientf("coord: sending pull: %w", err)
		}
		f, err := conn.Recv()
		if err != nil {
			return transientf("coord: waiting for round: %w", err)
		}
		switch f.Type {
		case msgDone:
			logf("worker %s: run complete (%d rounds contributed)", opts.Spec.Name, res.Rounds)
			return nil
		case msgError:
			msg, _ := parseError(f.Payload)
			return fmt.Errorf("coord: coordinator rejected worker: %s", msg)
		case msgRound:
			// Handled below.
		default:
			return fmt.Errorf("coord: expected round directive, got %s message", msgName(f.Type))
		}
		m, err := parseRound(f.Payload)
		if err != nil {
			return err
		}
		if err := applyBroadcast(w, m.params); err != nil {
			return err
		}
		// Snapshot the pre-round state: if the coordinator closes this round
		// below quorum and asks for a retry, local training must restart
		// from exactly here or the retried update diverges from the one a
		// fault-free round would have folded.
		preOpt, err := w.CaptureState()
		if err != nil {
			return err
		}
		preLayers := ckpt.CaptureLayerState(w.Chain.Stages)

		// Local computation with heartbeats flowing; the coordinator-side
		// handler is guaranteed to be reading during this window. Each
		// heartbeat carries a telemetry delta when shipping is enabled, so
		// the coordinator's fleet view advances while the round is still
		// training.
		stop := startHeartbeat(conn, heartbeat, ship, m.round)
		tstart := time.Now()
		ltSpan := obs.DefaultTracer().Span("local-train", m.round, a.Index)
		u, lerr := agg.Local(w, m.round)
		ltSpan.End()
		stop()
		if lerr != nil {
			return fmt.Errorf("coord: round %d local computation: %w", m.round, lerr)
		}
		if opts.beforeUpdate != nil {
			if err := opts.beforeUpdate(m.round); err != nil {
				return err
			}
		}
		ws, err := w.CaptureState()
		if err != nil {
			return err
		}
		// The captured state is the rejoin recovery point: account this
		// round's contribution as if folded, matching what an in-process
		// fleet checkpoint taken after the round would hold.
		ws.Rounds++
		ws.Samples += int64(u.Samples)
		msg := updateMsg{
			round:    m.round,
			samples:  u.Samples,
			loss:     u.Loss,
			duration: time.Since(tstart),
			strategy: w.Choice.Strategy,
			stats:    u,
			vecs:     u.Vecs,
			state:    ws,
		}
		// The round's closing telemetry shipment rides on the update, so
		// the just-ended local-train span reaches the coordinator with the
		// result it describes.
		if ship != nil {
			samples, events := ship.Collect()
			if len(samples) > 0 || len(events) > 0 {
				msg.telem = &telemetry{round: m.round, samples: samples, events: events}
			}
		}
		// The residual snapshot taken just before encoding is the rewind
		// point: a retry discards the attempt's error feedback along with
		// the optimizer step, so the retrained round re-encodes from the
		// exact state a fault-free round would have seen.
		var preResidual [][]float64
		if comp != nil && u.Samples > 0 {
			preResidual = comp.Snapshot()
			enc, err := comp.Encode(u.Vecs)
			if err != nil {
				return fmt.Errorf("coord: round %d: encoding update: %w", m.round, err)
			}
			msg.codec = comp.Spec().String()
			msg.blob = enc.Data
			msg.vecs = nil
		}
		frame, err := encodeUpdate(msg)
		if err != nil {
			return err
		}
		if err := conn.Send(frame); err != nil {
			return transientf("coord: uploading round %d update: %w", m.round, err)
		}
		f, err = conn.Recv()
		if err != nil {
			return transientf("coord: waiting for round %d ack: %w", m.round, err)
		}
		if f.Type != msgAck {
			if f.Type == msgError {
				msg, _ := parseError(f.Payload)
				return fmt.Errorf("coord: round %d: %s", m.round, msg)
			}
			return fmt.Errorf("coord: expected ack, got %s message", msgName(f.Type))
		}
		ack, err := parseAck(f.Payload)
		if err != nil {
			return err
		}
		switch ack.status {
		case AckOK:
			w.AddProgress(1, int64(u.Samples))
			res.Rounds++
			logf("worker %s: round %d folded (loss %.4f, %d samples)", opts.Spec.Name, m.round, u.Loss, u.Samples)
		case AckRetry:
			// The round closed below quorum and was discarded: rewind to
			// the pre-round snapshot and train the re-broadcast round as if
			// this attempt never happened.
			if err := w.RestoreState(preOpt); err != nil {
				return err
			}
			if err := (&ckpt.Session{LayerState: preLayers}).ApplyLayerState(w.Chain.Stages); err != nil {
				return err
			}
			if preResidual != nil {
				comp.Restore(preResidual)
			}
			logf("worker %s: round %d closed below quorum, rewound for retry", opts.Spec.Name, m.round)
		case AckLate:
			logf("worker %s: round %d update arrived past the deadline, discarded", opts.Spec.Name, m.round)
		case AckRejected:
			return fmt.Errorf("coord: round %d update rejected by coordinator", m.round)
		default:
			return fmt.Errorf("coord: unknown ack status %q", ack.status)
		}
	}
}

func expectWelcome(f ckpt.Frame) (Assignment, error) {
	switch f.Type {
	case msgWelcome:
		return parseWelcome(f.Payload)
	case msgError:
		msg, _ := parseError(f.Payload)
		return Assignment{}, fmt.Errorf("coord: coordinator rejected worker: %s", msg)
	default:
		return Assignment{}, fmt.Errorf("coord: expected welcome, got %s message", msgName(f.Type))
	}
}

// applyBroadcast loads the round's global parameters into the worker's
// replica — the download half of fleet.Round's broadcast.
func applyBroadcast(w *fleet.Worker, params []ckpt.NamedTensor) error {
	ps := w.Chain.Params()
	if len(params) != len(ps) {
		return fmt.Errorf("coord: broadcast has %d parameters, model has %d", len(params), len(ps))
	}
	for k, p := range ps {
		nt := params[k]
		if nt.Name != p.Name {
			return fmt.Errorf("coord: broadcast parameter %d is %q, model has %q", k, nt.Name, p.Name)
		}
		if !nt.Tensor.SameShape(p.Value) {
			return fmt.Errorf("coord: broadcast parameter %q shape %v, model has %v", nt.Name, nt.Tensor.Shape(), p.Value.Shape())
		}
		copy(p.Value.Data(), nt.Tensor.Data())
	}
	return nil
}

// startHeartbeat streams liveness frames until stopped, each carrying the
// telemetry delta collected since the last shipment when shipping is
// enabled (nil shipper → empty payloads, the "alive, no telemetry" form).
// The stop function waits the sender out, so no heartbeat can interleave
// with the update upload that follows.
func startHeartbeat(conn Conn, every time.Duration, ship *obs.DeltaShipper, round int) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				f := ckpt.Frame{Type: msgHeartbeat}
				if ship != nil {
					samples, events := ship.Collect()
					if len(samples) > 0 || len(events) > 0 {
						f.Payload = encodeTelemetry(telemetry{round: round, samples: samples, events: events})
					}
				}
				if conn.Send(f) != nil {
					return
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
