package coord

// Durable coordinator state. With Config.StateDir set, the coordinator is no
// longer a single point of failure: every round boundary snapshots the
// global model, the global optimizer (all-reduce), the round cursor and the
// fleet membership with each slot's last committed worker state, and hands
// the snapshot to a background saver that writes it crash-safe through
// ckpt.Dir (temp file, fsync, atomic rename, MANIFEST fallback). The
// snapshot itself is cheap clones on the round path; the flash I/O never
// blocks a fold.
//
// A restarted coordinator opens the same StateDir, loads the newest loadable
// checkpoint, restores model + optimizer + cursor, and re-seats the
// checkpointed membership so reconnecting workers walk the ordinary rejoin
// path and recover their optimizer state from the welcome. Because a round's
// fold depends only on (broadcast parameters, worker optimizer state, round
// index), the resumed run's remaining rounds — including a re-run of a round
// whose checkpoint the crash swallowed — produce global weights
// byte-identical to a never-interrupted run.

import (
	"errors"
	"fmt"
	"sync"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/obs"
)

// stateKind labels coordinator checkpoints so they are never resumed into a
// single-node trainer or an in-process fleet by accident (and vice versa).
const stateKind = "coord"

// openState opens Config.StateDir and, when it already holds a checkpoint,
// restores the coordinator from it: global parameters, layer state, global
// optimizer, round cursor and membership. A directory without a checkpoint
// is a fresh start; a checkpoint that fails validation is a loud error —
// silently training from round zero over a half-restored model is exactly
// the corruption this package exists to prevent.
func (c *Coordinator) openState() error {
	dir, err := ckpt.Open(c.cfg.StateDir)
	if err != nil {
		return err
	}
	c.stateDir = dir
	s, name, err := dir.Load()
	if errors.Is(err, ckpt.ErrNoCheckpoint) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("coord: loading state from %s: %w", c.cfg.StateDir, err)
	}
	if s.Kind != stateKind {
		return fmt.Errorf("coord: %s is a %q checkpoint, want %q", name, s.Kind, stateKind)
	}
	if s.Seed != c.cfg.Seed {
		return fmt.Errorf("coord: %s was written with seed %d, this run is configured with seed %d", name, s.Seed, c.cfg.Seed)
	}
	if s.BatchSize != c.cfg.BatchSize {
		return fmt.Errorf("coord: %s was written with batch size %d, this run is configured with %d", name, s.BatchSize, c.cfg.BatchSize)
	}
	h, hasGlobalOpt := c.agg.(fleet.GlobalOptimizerHolder)
	if !hasGlobalOpt && (s.Opt.Name != "" || s.Opt.Step != 0 || len(s.Opt.Slots) > 0) {
		return fmt.Errorf("coord: %s carries global %q optimizer state but aggregator %q has no global optimizer",
			name, s.Opt.Name, c.agg.Name())
	}
	if hasGlobalOpt && s.Opt.Name != h.GlobalOptimizer().Name() {
		return fmt.Errorf("coord: %s has global %q optimizer state but aggregator %q uses %q",
			name, s.Opt.Name, c.agg.Name(), h.GlobalOptimizer().Name())
	}
	if err := s.ApplyParams(c.globalPs); err != nil {
		return err
	}
	if err := s.ApplyLayerState(c.global.Stages); err != nil {
		return err
	}
	if hasGlobalOpt {
		if err := trainer.RestoreOptimizerState(h.GlobalOptimizer(), c.globalPs, s.Opt); err != nil {
			return fmt.Errorf("coord: restoring global optimizer state: %w", err)
		}
	}
	if s.Round > c.cfg.Rounds {
		return fmt.Errorf("coord: %s resumes at round %d but this run has only %d rounds", name, s.Round, c.cfg.Rounds)
	}
	c.startRound = s.Round
	c.resumed = s.Workers
	c.cfg.Logf("coord: resumed %s: continuing at round %d with %d checkpointed workers",
		name, s.Round, len(s.Workers))
	return nil
}

// captureSession snapshots the coordinator's durable state with the given
// next-round cursor. Runs on the round path, so everything mutable is
// cloned here: the saver may still be writing this session rounds later.
func (c *Coordinator) captureSession(nextRound int, slots []slot) (*ckpt.Session, error) {
	s := &ckpt.Session{
		Kind:           stateKind,
		LibraryVersion: ckpt.LibraryVersion,
		Round:          nextRound,
		BatchSize:      c.cfg.BatchSize,
		Seed:           c.cfg.Seed,
		Params:         ckpt.CaptureParams(c.globalPs),
		LayerState:     ckpt.CaptureLayerState(c.global.Stages),
	}
	if h, ok := c.agg.(fleet.GlobalOptimizerHolder); ok {
		opt, err := trainer.CaptureOptimizerState(h.GlobalOptimizer(), c.globalPs)
		if err != nil {
			return nil, fmt.Errorf("coord: capturing global optimizer state: %w", err)
		}
		s.Opt = opt
	}
	for i := range slots {
		// Committed worker states are immutable once installed (commits
		// replace the pointer), so the session may alias them.
		if slots[i].state != nil {
			s.Workers = append(s.Workers, *slots[i].state)
		}
	}
	return s, nil
}

// stateSaver serializes checkpoint writes off the round path: the run loop
// enqueues snapshots, one goroutine owns the ckpt.Dir (a Dir is not safe for
// concurrent use) and writes them in order. The first write error is kept
// and surfaced by drain — a coordinator that cannot persist its state must
// fail the run rather than silently lose durability.
type stateSaver struct {
	ch   chan *ckpt.Session
	done chan struct{}
	logf func(format string, args ...any)

	mu  sync.Mutex
	err error
}

// startSaver launches the background writer, or returns nil without a
// StateDir.
func (c *Coordinator) startSaver() *stateSaver {
	if c.stateDir == nil {
		return nil
	}
	s := &stateSaver{
		ch:   make(chan *ckpt.Session, 8),
		done: make(chan struct{}),
		logf: c.cfg.Logf,
	}
	go func() {
		defer close(s.done)
		for sess := range s.ch {
			sp := obs.DefaultTracer().Span("checkpoint-save", sess.Round-1, -1)
			name, err := c.stateDir.Save(sess)
			sp.End()
			if err != nil {
				s.mu.Lock()
				if s.err == nil {
					s.err = fmt.Errorf("coord: saving state: %w", err)
				}
				s.mu.Unlock()
				continue
			}
			s.logf("coord: state saved to %s (next round %d)", name, sess.Round)
		}
	}()
	return s
}

// enqueue hands one snapshot to the writer, applying backpressure if flash
// is slower than the fold loop for eight consecutive rounds.
func (s *stateSaver) enqueue(sess *ckpt.Session) {
	s.ch <- sess
}

// drain finishes all queued writes and returns the first write error.
func (s *stateSaver) drain() error {
	close(s.ch)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
