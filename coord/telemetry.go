package coord

// Telemetry shipping (protocol v3). Workers piggyback compact telemetry
// payloads — a delta metric snapshot plus the trace events recorded since
// the previous shipment — on the frames they already send: heartbeats
// carry one as their whole payload (empty payload = telemetry disabled),
// and updates carry one as a trailing block. The coordinator ingests the
// samples into its own registry under worker=<name> labels and re-tags
// the events with the worker's slot, so its /metrics and /trace become
// the fleet-wide view.

import (
	"bytes"
	"fmt"
	"time"

	"github.com/edgeml/edgetrain/internal/wire"
	"github.com/edgeml/edgetrain/obs"
)

// unixNano and durationNS are the wire↔time conversions; time.Unix(0, ns)
// round-trips UnixNano exactly, so re-encoding a parsed payload is
// byte-identical (the fuzz harness depends on that).
func unixNano(ns int64) time.Time       { return time.Unix(0, ns) }
func durationNS(ns int64) time.Duration { return time.Duration(ns) }

// telemetry is one shipment from a worker.
type telemetry struct {
	round   int
	samples []obs.Sample
	events  []obs.Event
}

// telemetryKind maps obs.Sample.Kind to its wire enum.
func telemetryKind(kind string) (uint32, bool) {
	switch kind {
	case "counter":
		return 0, true
	case "gauge":
		return 1, true
	case "histogram":
		return 2, true
	}
	return 0, false
}

func telemetryKindName(k uint32) (string, bool) {
	switch k {
	case 0:
		return "counter", true
	case 1:
		return "gauge", true
	case 2:
		return "histogram", true
	}
	return "", false
}

// encodeTelemetry renders t as a raw payload (no frame header); samples
// whose kind is not a counter/gauge/histogram are skipped.
func encodeTelemetry(t telemetry) []byte {
	var b bytes.Buffer
	wire.PutInt64(&b, int64(t.round))
	kept := make([]obs.Sample, 0, len(t.samples))
	for _, s := range t.samples {
		if _, ok := telemetryKind(s.Kind); ok {
			kept = append(kept, s)
		}
	}
	wire.PutUint32(&b, uint32(len(kept)))
	for _, s := range kept {
		kind, _ := telemetryKind(s.Kind)
		wire.PutString(&b, s.Name)
		wire.PutString(&b, s.Help)
		wire.PutUint32(&b, kind)
		wire.PutUint32(&b, uint32(len(s.Labels)))
		for _, l := range s.Labels {
			wire.PutString(&b, l.Key)
			wire.PutString(&b, l.Value)
		}
		wire.PutFloat64(&b, s.Value)
		wire.PutInt64(&b, s.Count)
		wire.PutUint32(&b, uint32(len(s.Bounds)))
		for _, bound := range s.Bounds {
			wire.PutFloat64(&b, bound)
		}
		wire.PutUint32(&b, uint32(len(s.Buckets)))
		for _, c := range s.Buckets {
			wire.PutInt64(&b, c)
		}
	}
	wire.PutUint32(&b, uint32(len(t.events)))
	for _, e := range t.events {
		wire.PutString(&b, e.Name)
		wire.PutInt64(&b, int64(e.Round))
		wire.PutInt64(&b, int64(e.Worker))
		wire.PutInt64(&b, e.Start.UnixNano())
		wire.PutInt64(&b, int64(e.Dur))
		wire.PutString(&b, e.Detail)
	}
	return b.Bytes()
}

// maxTelemetryItems bounds every count field in a telemetry payload —
// far above anything a real shipment carries, low enough that a hostile
// length prefix cannot drive a huge allocation.
const maxTelemetryItems = 1 << 16

func telemetryCount(p *wire.Reader, what string) uint32 {
	n := p.Uint32(what)
	if p.Err() == nil && n > maxTelemetryItems {
		p.Fail(what)
		return 0
	}
	return n
}

// parseTelemetry decodes one telemetry payload. Histogram samples whose
// bucket count does not match their bound count are a wire error: the
// ingest path depends on the parallel layout.
func parseTelemetry(payload []byte) (telemetry, error) {
	p := wire.NewReader(payload)
	var t telemetry
	t.round = int(p.Int64("telemetry round"))
	ns := telemetryCount(p, "telemetry sample count")
	for i := uint32(0); i < ns && p.Err() == nil; i++ {
		var s obs.Sample
		s.Name = p.String("sample name")
		s.Help = p.String("sample help")
		kind := p.Uint32("sample kind")
		if p.Err() == nil {
			name, ok := telemetryKindName(kind)
			if !ok {
				return t, fmt.Errorf("coord: unknown telemetry sample kind %d", kind)
			}
			s.Kind = name
		}
		nl := telemetryCount(p, "sample label count")
		for j := uint32(0); j < nl && p.Err() == nil; j++ {
			s.Labels = append(s.Labels, obs.L(p.String("label key"), p.String("label value")))
		}
		s.Value = p.Float64("sample value")
		s.Count = p.Int64("sample count")
		nb := telemetryCount(p, "sample bound count")
		for j := uint32(0); j < nb && p.Err() == nil; j++ {
			s.Bounds = append(s.Bounds, p.Float64("sample bound"))
		}
		nc := telemetryCount(p, "sample bucket count")
		if p.Err() == nil && nc != nb {
			return t, fmt.Errorf("coord: telemetry sample %q has %d buckets for %d bounds", s.Name, nc, nb)
		}
		for j := uint32(0); j < nc && p.Err() == nil; j++ {
			s.Buckets = append(s.Buckets, p.Int64("sample bucket"))
		}
		t.samples = append(t.samples, s)
	}
	ne := telemetryCount(p, "telemetry event count")
	for i := uint32(0); i < ne && p.Err() == nil; i++ {
		var e obs.Event
		e.Name = p.String("event name")
		e.Round = int(p.Int64("event round"))
		e.Worker = int(p.Int64("event worker"))
		e.Start = unixNano(p.Int64("event start"))
		e.Dur = durationNS(p.Int64("event duration"))
		e.Detail = p.String("event detail")
		t.events = append(t.events, e)
	}
	return t, p.Done()
}

// parseHeartbeat decodes a heartbeat payload: empty means "alive, no
// telemetry" (shipping disabled on the worker), anything else is one
// telemetry shipment.
func parseHeartbeat(payload []byte) (*telemetry, error) {
	if len(payload) == 0 {
		return nil, nil
	}
	t, err := parseTelemetry(payload)
	if err != nil {
		return nil, err
	}
	return &t, nil
}
