package compress

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/wire"
)

const (
	// frameType tags a compressed-update blob inside its ckpt frame. The
	// checkpoint file format reserves types 1-6 and the coord protocol uses
	// 16-24; compressed updates get their own range.
	frameType = uint32(48)
	// formatVersion is the blob body version.
	formatVersion = uint32(1)

	// Decode plausibility bounds: a hostile blob can claim any counts it
	// likes, so every size is capped before allocation.
	maxTensors   = 1 << 16
	maxRank      = 16
	maxElems     = 1 << 26 // elements per tensor (512 MiB of float64)
	maxBlobBytes = int64(1) << 32
)

// EncodedUpdate is one compressed update: the self-describing wire blob and
// the size the same tensors would occupy uncompressed (the raw-vs-encoded
// numerator for compression-ratio accounting).
type EncodedUpdate struct {
	// Data is the complete blob: a CRC32-protected ckpt frame (raw or
	// DEFLATE per the Spec) wrapping the encoded tensor body.
	Data []byte
	// RawBytes is the uncompressed wire size of the input tensors.
	RawBytes int64
}

// Decoded is the result of decoding a blob: the Spec it was encoded with and
// the reconstructed update tensors (dropped elements are zero).
type Decoded struct {
	Spec Spec
	Vecs []*tensor.Tensor
}

// Compressor encodes updates under one Spec. It is stateful: with top-k
// sparsification the per-tensor quantization/sparsification error is kept as
// a residual and added into the next round's update (error feedback), so
// dropped mass is re-sent rather than lost. A Compressor belongs to one
// worker and is not safe for concurrent use.
type Compressor struct {
	spec     Spec
	residual [][]float64
}

// NewCompressor returns a Compressor for the spec. The zero (disabled) Spec
// is rejected — callers gate on Spec.Enabled before constructing one.
func NewCompressor(spec Spec) (*Compressor, error) {
	if !spec.Enabled() {
		return nil, fmt.Errorf("compress: cannot build a Compressor for the disabled spec")
	}
	return &Compressor{spec: spec}, nil
}

// Spec returns the codec this Compressor encodes with.
func (c *Compressor) Spec() Spec { return c.spec }

// Snapshot deep-copies the error-feedback residuals, so a caller that may
// have its update rejected (the coordinator rewinds rounds that lose quorum)
// can restore the pre-encode state and re-encode later without double
// counting the residual.
func (c *Compressor) Snapshot() [][]float64 {
	if c.residual == nil {
		return nil
	}
	snap := make([][]float64, len(c.residual))
	for i, r := range c.residual {
		if r != nil {
			snap[i] = append([]float64(nil), r...)
		}
	}
	return snap
}

// Restore replaces the residuals with a Snapshot (deep copy; the snapshot
// stays valid for further Restores).
func (c *Compressor) Restore(snap [][]float64) {
	if snap == nil {
		c.residual = nil
		return
	}
	c.residual = make([][]float64, len(snap))
	for i, r := range snap {
		if r != nil {
			c.residual[i] = append([]float64(nil), r...)
		}
	}
}

// Encode compresses one update. The input tensors are not modified; the
// Compressor's residuals are advanced by the error this encoding introduces
// (identically zero for a lossless Spec). Encoding is deterministic: equal
// inputs and equal residual state produce equal bytes.
func (c *Compressor) Encode(vecs []*tensor.Tensor) (*EncodedUpdate, error) {
	lossless := c.spec.Lossless()
	if !lossless {
		if len(c.residual) != len(vecs) {
			c.residual = make([][]float64, len(vecs))
		}
	}

	var body bytes.Buffer
	wire.PutUint32(&body, formatVersion)
	wire.PutString(&body, c.spec.String())
	wire.PutUvarint(&body, uint64(len(vecs)))

	var rawBytes int64
	for i, t := range vecs {
		if t == nil {
			return nil, fmt.Errorf("compress: nil tensor %d in update", i)
		}
		rawBytes += nn.EncodedTensorBytes(t)
		data := t.Data()
		n := len(data)

		// Error feedback: compress data + residual, then keep whatever this
		// encoding failed to transmit as the next round's residual. The
		// lossless path skips the addition entirely so the shipped bits are
		// exactly the input bits (x + 0.0 is not a bitwise identity for -0).
		work := data
		if !lossless {
			if len(c.residual[i]) != n {
				c.residual[i] = make([]float64, n)
			}
			w := make([]float64, n)
			for j, v := range data {
				w[j] = v + c.residual[i][j]
			}
			work = w
		}

		// Select the transmitted elements: all of them, or the top-k by
		// error-compensated magnitude (NaN sorts as +Inf so a poisoned value
		// is transmitted, not silently dropped; ties break on lower index so
		// selection is deterministic).
		k := sparseCount(c.spec.TopK, n)
		sparse := k < n
		var idx []int
		if sparse {
			order := make([]int, n)
			for j := range order {
				order[j] = j
			}
			key := func(j int) float64 {
				a := math.Abs(work[j])
				if math.IsNaN(a) {
					return math.Inf(1)
				}
				return a
			}
			sort.Slice(order, func(a, b int) bool {
				ka, kb := key(order[a]), key(order[b])
				if ka != kb {
					return ka > kb
				}
				return order[a] < order[b]
			})
			idx = order[:k]
			sort.Ints(idx)
		}

		// Tensor header: shape, mode, and for sparse tensors the
		// delta+varint coded ascending index list.
		wire.PutUvarint(&body, uint64(t.Rank()))
		for d := 0; d < t.Rank(); d++ {
			wire.PutUvarint(&body, uint64(t.Dim(d)))
		}
		if sparse {
			body.WriteByte(1)
			wire.PutUvarint(&body, uint64(k))
			prev := 0
			for j, ix := range idx {
				if j == 0 {
					wire.PutUvarint(&body, uint64(ix))
				} else {
					wire.PutUvarint(&body, uint64(ix-prev-1))
				}
				prev = ix
			}
		} else {
			body.WriteByte(0)
		}

		// Values in index order, then residual bookkeeping.
		value := func(j int) float64 {
			if sparse {
				return work[idx[j]]
			}
			return work[j]
		}
		deq := make([]float64, k)
		switch c.spec.Precision {
		case FP64:
			for j := 0; j < k; j++ {
				v := value(j)
				wire.PutFloat64(&body, v)
				deq[j] = v
			}
		case FP16:
			for j := 0; j < k; j++ {
				h := float16FromFloat64(value(j))
				body.WriteByte(byte(h))
				body.WriteByte(byte(h >> 8))
				deq[j] = float16ToFloat64(h)
			}
		case Int8:
			min, scale := int8Params(value, k)
			wire.PutFloat64(&body, min)
			wire.PutFloat64(&body, scale)
			for j := 0; j < k; j++ {
				q := int8Quantize(value(j), min, scale)
				body.WriteByte(q)
				deq[j] = min + scale*float64(q)
			}
		}
		if !lossless {
			r := c.residual[i]
			copy(r, work)
			if sparse {
				for j, ix := range idx {
					r[ix] = work[ix] - deq[j]
				}
			} else {
				for j := range r {
					r[j] = work[j] - deq[j]
				}
			}
		}
	}

	style := ckpt.StyleRaw
	if c.spec.Framing == Deflate {
		style = ckpt.StyleDeflate
	}
	var blob bytes.Buffer
	if _, err := ckpt.WriteFrame(&blob, ckpt.Frame{Type: frameType, Payload: body.Bytes()}, style); err != nil {
		return nil, fmt.Errorf("compress: framing update: %w", err)
	}
	return &EncodedUpdate{Data: blob.Bytes(), RawBytes: rawBytes}, nil
}

// sparseCount is the number of elements a Spec transmits for an n-element
// tensor: ceil(TopK*n) clamped to [1, n]. Encoder and decoder compute it
// identically, which pins a blob's sparse count to its claimed shape — a
// decoded tensor can never be more than 1/MinTopK times larger than the
// value bytes backing it.
func sparseCount(topK float64, n int) int {
	if topK >= 1 {
		return n
	}
	k := int(math.Ceil(topK * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// int8Params picks the per-tensor affine quantization grid: min plus a scale
// spanning [min, max] in 255 steps. A constant tensor gets scale 0 (every
// element decodes to min exactly). Any non-finite value poisons the grid to
// NaN so the whole tensor decodes to NaN — clamping a NaN or Inf onto the
// grid would silently launder a poisoned update past validation.
func int8Params(value func(int) float64, k int) (min, scale float64) {
	min, max := math.Inf(1), math.Inf(-1)
	for j := 0; j < k; j++ {
		v := value(j)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return math.NaN(), math.NaN()
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	scale = (max - min) / 255
	if scale == 0 || math.IsInf(scale, 0) {
		// Constant tensor, or a finite range overflowing float64: ship min
		// and let every element decode to it.
		scale = 0
	}
	return min, scale
}

// int8Quantize maps v onto the [0, 255] grid, round-to-nearest-even, with
// NaN and out-of-range values clamped into the grid.
func int8Quantize(v, min, scale float64) byte {
	if scale == 0 {
		return 0
	}
	q := math.RoundToEven((v - min) / scale)
	if !(q >= 0) { // catches NaN too
		return 0
	}
	if q > 255 {
		return 255
	}
	return byte(q)
}

// Decode reconstructs an update from a blob produced by Encode. It is a pure
// function of the bytes — deterministic and scheduling-independent — and
// rejects structurally invalid input (truncation, trailing bytes, hostile
// counts, non-increasing index lists) with an error. Non-finite *values*
// decode successfully: screening them is fleet.ValidateUpdate's job, exactly
// as on the uncompressed path.
func Decode(data []byte) (*Decoded, error) {
	f, n, err := ckpt.ReadFrame(bytes.NewReader(data), maxBlobBytes)
	if err != nil {
		return nil, fmt.Errorf("compress: %w", err)
	}
	if n != len(data) {
		return nil, fmt.Errorf("compress: %d trailing bytes after update frame", len(data)-n)
	}
	if f.Type != frameType {
		return nil, fmt.Errorf("compress: unexpected frame type %d", f.Type)
	}

	r := wire.NewReader(f.Payload)
	if v := r.Uint32("format version"); r.Err() == nil && v != formatVersion {
		return nil, fmt.Errorf("compress: unsupported format version %d", v)
	}
	specStr := r.String("codec spec")
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("compress: %w", err)
	}
	spec, err := ParseSpec(specStr)
	if err != nil {
		return nil, err
	}
	if !spec.Enabled() || spec.String() != specStr {
		return nil, fmt.Errorf("compress: non-canonical codec spec %q in update", specStr)
	}

	count := r.Uvarint("tensor count")
	if r.Err() == nil && count > maxTensors {
		r.Fail("tensor count")
	}
	var vecs []*tensor.Tensor
	for i := uint64(0); i < count && r.Err() == nil; i++ {
		t, err := decodeTensor(r, spec)
		if err != nil {
			return nil, err
		}
		vecs = append(vecs, t)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("compress: %w", err)
	}
	return &Decoded{Spec: spec, Vecs: vecs}, nil
}

func decodeTensor(r *wire.Reader, spec Spec) (*tensor.Tensor, error) {
	rank := r.Uvarint("tensor rank")
	if r.Err() == nil && (rank < 1 || rank > maxRank) {
		r.Fail("tensor rank")
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("compress: %w", r.Err())
	}
	dims := make([]int, rank)
	elems := 1
	for d := range dims {
		v := r.Uvarint("tensor dim")
		if r.Err() != nil {
			return nil, fmt.Errorf("compress: %w", r.Err())
		}
		if v < 1 || v > maxElems || elems > maxElems/int(v) {
			return nil, fmt.Errorf("compress: implausible tensor shape")
		}
		dims[d] = int(v)
		elems *= int(v)
	}

	mode := r.Take(1, "tensor mode")
	if r.Err() != nil {
		return nil, fmt.Errorf("compress: %w", r.Err())
	}
	n := elems
	k := n
	var idx []int
	switch mode[0] {
	case 0: // dense
	case 1: // sparse: delta+varint coded strictly ascending indices
		want := sparseCount(spec.TopK, n)
		if want >= n {
			return nil, fmt.Errorf("compress: sparse tensor under dense spec %q", spec)
		}
		kv := r.Uvarint("sparse count")
		if r.Err() != nil {
			return nil, fmt.Errorf("compress: %w", r.Err())
		}
		if kv != uint64(want) {
			return nil, fmt.Errorf("compress: sparse count %d, spec %q requires %d of %d", kv, spec, want, n)
		}
		k = int(kv)
		if r.Len() < k { // every index costs at least one varint byte
			return nil, fmt.Errorf("compress: truncated sparse index list")
		}
		idx = make([]int, k)
		prev := -1
		for j := 0; j < k; j++ {
			g := r.Uvarint("sparse index")
			if r.Err() != nil {
				return nil, fmt.Errorf("compress: %w", r.Err())
			}
			var ix uint64
			if j == 0 {
				ix = g
			} else {
				ix = uint64(prev) + g + 1
			}
			if ix >= uint64(n) || ix < uint64(prev+1) { // the second leg catches gap overflow
				return nil, fmt.Errorf("compress: sparse index out of range")
			}
			idx[j] = int(ix)
			prev = int(ix)
		}
	default:
		return nil, fmt.Errorf("compress: unknown tensor mode %d", mode[0])
	}

	// Never allocate from a claimed count the payload cannot back: the value
	// section's size is known exactly, so check it before the allocation —
	// a truncated blob must fail on bytes, not build a half-gigabyte tensor
	// first.
	need := 8 * k // FP64
	switch spec.Precision {
	case FP16:
		need = 2 * k
	case Int8:
		need = 16 + k
	}
	if r.Len() < need {
		return nil, fmt.Errorf("compress: truncated value section (%d bytes for %d values)", r.Len(), k)
	}
	vals := make([]float64, k)
	switch spec.Precision {
	case FP64:
		for j := range vals {
			vals[j] = r.Float64("value")
		}
	case FP16:
		b := r.Take(2*k, "fp16 values")
		if r.Err() == nil {
			for j := range vals {
				vals[j] = float16ToFloat64(uint16(b[2*j]) | uint16(b[2*j+1])<<8)
			}
		}
	case Int8:
		min := r.Float64("int8 min")
		scale := r.Float64("int8 scale")
		b := r.Take(k, "int8 values")
		if r.Err() == nil {
			for j := range vals {
				vals[j] = min + scale*float64(b[j])
			}
		}
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("compress: %w", r.Err())
	}

	t := tensor.New(dims...)
	d := t.Data()
	if idx != nil {
		for j, ix := range idx {
			d[ix] = vals[j]
		}
	} else {
		copy(d, vals)
	}
	return t, nil
}
