package compress

import "testing"

// BenchmarkUpdateCompress measures one encode+decode round trip per codec on
// a demo-model-sized update, reporting the encoded wire bytes per update and
// the compression ratio alongside the time. These numbers are recorded in
// BENCH_baseline.json (pr8 block).
func BenchmarkUpdateCompress(b *testing.B) {
	for _, spec := range []string{
		"topk:1+fp64+raw",
		"topk:1+fp64+deflate",
		"fp16+deflate",
		"int8+deflate",
		"topk:0.25+int8+deflate",
		"topk:0.05+int8+deflate",
	} {
		b.Run(spec, func(b *testing.B) {
			c, err := NewCompressor(specOrDie(b, spec))
			if err != nil {
				b.Fatal(err)
			}
			vecs := testVecs(31)
			enc, err := c.Encode(vecs)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(enc.RawBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := c.Encode(vecs)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Decode(e.Data); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(enc.Data)), "wire-B/update")
			b.ReportMetric(float64(enc.RawBytes)/float64(len(enc.Data)), "ratio")
		})
	}
}
