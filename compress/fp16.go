package compress

import "math"

// IEEE-754 binary16 conversion, implemented directly on the float64 bit
// pattern so the rounding mode is pinned to round-to-nearest-even regardless
// of platform. The half layout is 1 sign bit, 5 exponent bits (bias 15), 10
// mantissa bits; subnormals, infinities and NaN are all representable.

// float16FromFloat64 converts f to the nearest binary16 value,
// round-to-nearest-even, with overflow to ±Inf and underflow to ±0.
func float16FromFloat64(f float64) uint16 {
	b := math.Float64bits(f)
	sign := uint16((b >> 48) & 0x8000)
	abs := b &^ (1 << 63)
	if abs > 0x7ff0000000000000 { // NaN: any payload collapses to a quiet half NaN
		return sign | 0x7e00
	}
	if abs == 0x7ff0000000000000 { // ±Inf
		return sign | 0x7c00
	}
	exp := int(abs >> 52)
	mant := abs & (1<<52 - 1)
	e := exp - 1023 // also sends float64 zeros/subnormals (exp 0) far below -25
	if e < -25 {
		// Below half the smallest half subnormal: rounds to ±0. (The tie at
		// exactly 2^-25 rounds to even, which is also 0.)
		return sign
	}
	if e < -14 {
		// Half subnormal: significand counts units of 2^-24. q may carry
		// into 1024, which is exactly the smallest-normal encoding.
		return sign | roundShift(mant|1<<52, uint(28-e))
	}
	// Normal: round the 53-bit significand to 11 bits.
	r := roundShift(mant|1<<52, 42)
	if r >= 2048 { // rounding carried into the next binade
		e++
		r >>= 1
	}
	if e > 15 {
		return sign | 0x7c00 // overflow to ±Inf
	}
	return sign | uint16(e+15)<<10 | r&1023
}

// roundShift shifts m right by s bits, rounding to nearest with ties to even.
func roundShift(m uint64, s uint) uint16 {
	q := m >> s
	rem := m & (1<<s - 1)
	half := uint64(1) << (s - 1)
	if rem > half || (rem == half && q&1 == 1) {
		q++
	}
	return uint16(q)
}

// float16ToFloat64 expands a binary16 bit pattern. The conversion is exact:
// every half value is representable as a float64.
func float16ToFloat64(h uint16) float64 {
	sign := 1.0
	if h&0x8000 != 0 {
		sign = -1
	}
	exp := int(h>>10) & 0x1f
	mant := int(h & 1023)
	switch exp {
	case 0x1f:
		if mant != 0 {
			// Quiet NaN with the sign preserved, so a poisoned negative NaN
			// survives the round trip recognizably.
			return math.Float64frombits(uint64(h&0x8000)<<48 | 0x7ff8000000000000)
		}
		return sign * math.Inf(1)
	case 0:
		return sign * float64(mant) * 0x1p-24
	default:
		return sign * math.Ldexp(float64(mant+1024), exp-25)
	}
}
