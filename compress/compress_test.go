package compress

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/wire"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
		lossless  bool
		required  []string
	}{
		{"", "none", false, nil},
		{"none", "none", false, nil},
		{"topk:1+fp64+raw", "topk:1+fp64+raw", true, nil},
		{"fp64", "topk:1+fp64+raw", true, nil},
		{"deflate", "topk:1+fp64+deflate", true, []string{"deflate"}},
		{"fp16", "topk:1+fp16+raw", false, []string{"fp16"}},
		{"int8+deflate", "topk:1+int8+deflate", false, []string{"int8", "deflate"}},
		{"topk:0.05+int8+deflate", "topk:0.05+int8+deflate", false, []string{"topk", "int8", "deflate"}},
		{"TOPK:0.25+FP16", "topk:0.25+fp16+raw", false, []string{"topk", "fp16"}},
		{"int8+topk:0.5", "topk:0.5+int8+raw", false, []string{"topk", "int8"}},
	}
	for _, tc := range cases {
		spec, err := ParseSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.in, err)
		}
		if spec.String() != tc.canonical {
			t.Fatalf("ParseSpec(%q).String() = %q, want %q", tc.in, spec.String(), tc.canonical)
		}
		if spec.Enabled() == (tc.canonical == "none") {
			t.Fatalf("ParseSpec(%q).Enabled() = %v", tc.in, spec.Enabled())
		}
		if spec.Lossless() != tc.lossless {
			t.Fatalf("ParseSpec(%q).Lossless() = %v", tc.in, spec.Lossless())
		}
		req := spec.Required()
		if len(req) != len(tc.required) {
			t.Fatalf("ParseSpec(%q).Required() = %v, want %v", tc.in, req, tc.required)
		}
		for i := range req {
			if req[i] != tc.required[i] {
				t.Fatalf("ParseSpec(%q).Required() = %v, want %v", tc.in, req, tc.required)
			}
		}
		// Canonical strings re-parse to the same Spec.
		again, err := ParseSpec(spec.String())
		if err != nil || again != spec {
			t.Fatalf("canonical %q did not re-parse: %+v, %v", spec.String(), again, err)
		}
	}
	for _, bad := range []string{
		"topk:0", "topk:1.5", "topk:-0.1", "topk:abc", "topk:", "topk:0.00001",
		"fp32", "lz4", "fp16+fp64", "raw+deflate", "topk:0.5+topk:0.5",
		"int8++deflate", "topk", "gzip",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestFloat16Exhaustive(t *testing.T) {
	// Every binary16 bit pattern must survive expand -> convert unchanged
	// (NaN payloads collapse to the canonical quiet NaN).
	for h := 0; h <= 0xffff; h++ {
		f := float16ToFloat64(uint16(h))
		got := float16FromFloat64(f)
		if math.IsNaN(f) {
			want := uint16(h&0x8000) | 0x7e00
			if got != want {
				t.Fatalf("NaN %04x -> %04x, want %04x", h, got, want)
			}
			continue
		}
		if got != uint16(h) {
			t.Fatalf("half %04x -> %v -> %04x", h, f, got)
		}
	}
}

func TestFloat16Rounding(t *testing.T) {
	cases := []struct {
		in   float64
		want uint16
	}{
		{0, 0x0000},
		{math.Copysign(0, -1), 0x8000},
		{1, 0x3c00},
		{-2, 0xc000},
		{65504, 0x7bff},         // largest finite half
		{65520, 0x7c00},         // rounds up to +Inf
		{65519.999, 0x7bff},     // just below the tie stays finite
		{1e300, 0x7c00},         // overflow
		{math.Inf(-1), 0xfc00},  // -Inf
		{0x1p-24, 0x0001},       // smallest subnormal
		{0x1p-25, 0x0000},       // tie at half the smallest subnormal: to even = 0
		{0x1.8p-24, 0x0002},     // tie between subnormals 1 and 2: to even = 2
		{0x1p-14, 0x0400},       // smallest normal
		{0x1.ffcp-15, 0x0400},   // subnormal rounding carries into the smallest normal
		{1 + 0x1p-11, 0x3c00},   // tie between 1 and 1+2^-10: to even = 1
		{1 + 0x1.8p-11, 0x3c01}, // above the tie rounds up
		{2049, 0x6800},          // tie between 2048 and 2050: to even = 2048
		{2051, 0x6802},          // tie between 2050 and 2052: to even = 2052
	}
	for _, tc := range cases {
		if got := float16FromFloat64(tc.in); got != tc.want {
			t.Fatalf("float16(%v) = %04x, want %04x", tc.in, got, tc.want)
		}
	}
}

func specOrDie(t testing.TB, s string) Spec {
	t.Helper()
	spec, err := ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func testVecs(seed uint64) []*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	shapes := [][]int{{64, 32}, {32}, {32, 16}, {16}}
	vecs := make([]*tensor.Tensor, len(shapes))
	for i, s := range shapes {
		v := tensor.New(s...)
		d := v.Data()
		for j := range d {
			d[j] = rng.Normal(0, 1)
		}
		vecs[i] = v
	}
	return vecs
}

func encodeOne(t testing.TB, spec string, vecs []*tensor.Tensor) *EncodedUpdate {
	t.Helper()
	c, err := NewCompressor(specOrDie(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.Encode(vecs)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestLosslessRoundTripBitExact(t *testing.T) {
	for _, spec := range []string{"topk:1+fp64+raw", "topk:1+fp64+deflate"} {
		vecs := testVecs(7)
		// Plant the awkward bit patterns a lossless path must preserve.
		vecs[0].Data()[0] = math.Copysign(0, -1)
		vecs[0].Data()[1] = 0x1p-1074 // smallest float64 subnormal
		enc := encodeOne(t, spec, vecs)
		dec, err := Decode(enc.Data)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if dec.Spec.String() != specOrDie(t, spec).String() {
			t.Fatalf("%s: decoded spec %q", spec, dec.Spec)
		}
		if len(dec.Vecs) != len(vecs) {
			t.Fatalf("%s: %d tensors", spec, len(dec.Vecs))
		}
		for i := range vecs {
			want, got := vecs[i].Data(), dec.Vecs[i].Data()
			for j := range want {
				if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
					t.Fatalf("%s: tensor %d elem %d: %v != %v", spec, i, j, got[j], want[j])
				}
			}
		}
		if enc.RawBytes <= 0 {
			t.Fatalf("%s: RawBytes = %d", spec, enc.RawBytes)
		}
	}
}

func TestLossyRoundTripBounds(t *testing.T) {
	for _, spec := range []string{"fp16", "int8", "topk:0.25+fp64", "topk:0.1+int8+deflate"} {
		vecs := testVecs(11)
		enc := encodeOne(t, spec, vecs)
		dec, err := Decode(enc.Data)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for i := range vecs {
			want, got := vecs[i].Data(), dec.Vecs[i].Data()
			for j := range want {
				if math.IsNaN(got[j]) || math.IsInf(got[j], 0) {
					t.Fatalf("%s: non-finite decode of finite input", spec)
				}
				// int8 over [min,max] and fp16 over N(0,1) are both within
				// a coarse absolute bound; sparse elements may be zeroed.
				if got[j] != 0 && math.Abs(got[j]-want[j]) > 0.05 {
					t.Fatalf("%s: tensor %d elem %d: %v vs %v", spec, i, j, got[j], want[j])
				}
			}
		}
	}
}

func TestTopKSelectionAndErrorFeedback(t *testing.T) {
	spec := specOrDie(t, "topk:0.25+fp64+raw")
	c, err := NewCompressor(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := tensor.New(8)
	copy(v.Data(), []float64{0.1, -5, 0.2, 3, -0.3, 0.4, -0.5, 1})
	enc, err := c.Encode([]*tensor.Tensor{v})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	// k = ceil(0.25*8) = 2: the two largest magnitudes (-5, 3) ship exactly,
	// everything else is zero.
	want := []float64{0, -5, 0, 3, 0, 0, 0, 0}
	got := dec.Vecs[0].Data()
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("elem %d = %v, want %v", j, got[j], want[j])
		}
	}
	// Error feedback: a second encode of zeros must re-send the dropped
	// mass — the next two magnitudes (1 at index 7, -0.5 at index 6).
	z := tensor.New(8)
	enc2, err := c.Encode([]*tensor.Tensor{z})
	if err != nil {
		t.Fatal(err)
	}
	dec2, err := Decode(enc2.Data)
	if err != nil {
		t.Fatal(err)
	}
	want2 := []float64{0, 0, 0, 0, 0, 0, -0.5, 1}
	got2 := dec2.Vecs[0].Data()
	for j := range want2 {
		if got2[j] != want2[j] {
			t.Fatalf("round 2 elem %d = %v, want %v", j, got2[j], want2[j])
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	c, err := NewCompressor(specOrDie(t, "topk:0.25+int8+raw"))
	if err != nil {
		t.Fatal(err)
	}
	vecs := testVecs(3)
	if _, err := c.Encode(vecs); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	enc1, err := c.Encode(vecs)
	if err != nil {
		t.Fatal(err)
	}
	// Advance the state, then rewind and re-encode: bytes must match the
	// first post-snapshot encode exactly (the coordinator retry path).
	if _, err := c.Encode(vecs); err != nil {
		t.Fatal(err)
	}
	c.Restore(snap)
	enc2, err := c.Encode(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1.Data, enc2.Data) {
		t.Fatal("restore did not reproduce the post-snapshot encoding")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	for _, spec := range []string{"topk:0.05+int8+deflate", "fp16", "topk:1+fp64+raw"} {
		a := encodeOne(t, spec, testVecs(5))
		b := encodeOne(t, spec, testVecs(5))
		if !bytes.Equal(a.Data, b.Data) {
			t.Fatalf("%s: encode not deterministic", spec)
		}
	}
}

func TestNaNPropagatesToValidation(t *testing.T) {
	// A NaN that is representable only after dequantization must decode to
	// NaN (for validation to reject), never vanish or panic.
	for _, spec := range []string{"fp16", "int8", "topk:0.5+int8"} {
		vecs := testVecs(9)
		vecs[1].Data()[2] = math.NaN()
		enc := encodeOne(t, spec, vecs)
		dec, err := Decode(enc.Data)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		found := false
		for _, v := range dec.Vecs {
			for _, x := range v.Data() {
				if math.IsNaN(x) {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("%s: NaN input decoded to a fully-finite update", spec)
		}
	}
}

func TestCompressionShrinksBytes(t *testing.T) {
	vecs := testVecs(21)
	raw := encodeOne(t, "topk:1+fp64+raw", vecs)
	for _, tc := range []struct {
		spec  string
		ratio float64
	}{
		{"fp16+deflate", 3},
		{"int8+deflate", 6},
		{"topk:0.05+int8+deflate", 20},
	} {
		enc := encodeOne(t, tc.spec, vecs)
		got := float64(enc.RawBytes) / float64(len(enc.Data))
		if got < tc.ratio {
			t.Fatalf("%s: ratio %.1f < %.1f (raw %d, encoded %d)",
				tc.spec, got, tc.ratio, enc.RawBytes, len(enc.Data))
		}
		if enc.RawBytes != raw.RawBytes {
			t.Fatalf("%s: RawBytes %d != %d", tc.spec, enc.RawBytes, raw.RawBytes)
		}
	}
}

// hostileBody frames an arbitrary body as a valid blob so decode-side
// validation (not CRC) is what rejects it.
func hostileBody(t testing.TB, body []byte) []byte {
	t.Helper()
	var blob bytes.Buffer
	if _, err := ckpt.WriteFrame(&blob, ckpt.Frame{Type: frameType, Payload: body}, ckpt.StyleRaw); err != nil {
		t.Fatal(err)
	}
	return blob.Bytes()
}

func TestDecodeRejectsHostilePayloads(t *testing.T) {
	mk := func(build func(b *bytes.Buffer)) []byte {
		var b bytes.Buffer
		build(&b)
		return hostileBody(t, b.Bytes())
	}
	header := func(b *bytes.Buffer, spec string) {
		wire.PutUint32(b, formatVersion)
		wire.PutString(b, spec)
	}
	cases := map[string][]byte{
		"bad version": mk(func(b *bytes.Buffer) {
			wire.PutUint32(b, 99)
			wire.PutString(b, "topk:1+fp64+raw")
			wire.PutUvarint(b, 0)
		}),
		"non-canonical spec": mk(func(b *bytes.Buffer) {
			header(b, "fp64") // parses, but not canonical
			wire.PutUvarint(b, 0)
		}),
		"disabled spec": mk(func(b *bytes.Buffer) {
			header(b, "none")
			wire.PutUvarint(b, 0)
		}),
		"huge tensor count": mk(func(b *bytes.Buffer) {
			header(b, "topk:1+fp64+raw")
			wire.PutUvarint(b, 1<<40)
		}),
		"zero rank": mk(func(b *bytes.Buffer) {
			header(b, "topk:1+fp64+raw")
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 0)
		}),
		"huge rank": mk(func(b *bytes.Buffer) {
			header(b, "topk:1+fp64+raw")
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 64)
		}),
		"zero dim": mk(func(b *bytes.Buffer) {
			header(b, "topk:1+fp64+raw")
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 2)
			wire.PutUvarint(b, 4)
			wire.PutUvarint(b, 0)
		}),
		"overflowing shape": mk(func(b *bytes.Buffer) {
			header(b, "topk:1+fp64+raw")
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 3)
			wire.PutUvarint(b, 1<<20)
			wire.PutUvarint(b, 1<<20)
			wire.PutUvarint(b, 1<<20)
		}),
		"bad mode": mk(func(b *bytes.Buffer) {
			header(b, "topk:1+fp64+raw")
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 4)
			b.WriteByte(7)
		}),
		"sparse under dense spec": mk(func(b *bytes.Buffer) {
			header(b, "topk:1+fp64+raw")
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 4)
			b.WriteByte(1)
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 0)
			wire.PutFloat64(b, 1)
		}),
		"sparse k >= n": mk(func(b *bytes.Buffer) {
			header(b, "topk:0.5+fp64+raw")
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 4)
			b.WriteByte(1)
			wire.PutUvarint(b, 4)
		}),
		"index out of range": mk(func(b *bytes.Buffer) {
			header(b, "topk:0.5+fp64+raw")
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 4)
			b.WriteByte(1)
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 9)
			wire.PutFloat64(b, 1)
		}),
		"gap overflows index space": mk(func(b *bytes.Buffer) {
			header(b, "topk:0.25+fp64+raw")
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 8)
			b.WriteByte(1)
			wire.PutUvarint(b, 2) // ceil(0.25*8) — passes the count pin
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, math.MaxUint64) // wraps around uint64
			wire.PutFloat64(b, 1)
			wire.PutFloat64(b, 1)
		}),
		"sparse count mismatching spec": mk(func(b *bytes.Buffer) {
			header(b, "topk:0.25+fp64+raw")
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 1)
			wire.PutUvarint(b, 8)
			b.WriteByte(1)
			wire.PutUvarint(b, 5) // spec requires ceil(0.25*8) = 2
			wire.PutUvarint(b, 0)
			wire.PutUvarint(b, 0)
			wire.PutUvarint(b, 0)
			wire.PutUvarint(b, 0)
			wire.PutUvarint(b, 0)
			for i := 0; i < 5; i++ {
				wire.PutFloat64(b, 1)
			}
		}),
		"trailing bytes in body": mk(func(b *bytes.Buffer) {
			header(b, "topk:1+fp64+raw")
			wire.PutUvarint(b, 0)
			b.WriteByte(0xcc)
		}),
	}
	for name, blob := range cases {
		if _, err := Decode(blob); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	// Hostile *values* decode fine; screening them is validation's job.
	ok := mk(func(b *bytes.Buffer) {
		header(b, "topk:1+int8+raw")
		wire.PutUvarint(b, 1)
		wire.PutUvarint(b, 1)
		wire.PutUvarint(b, 2)
		b.WriteByte(0)
		wire.PutFloat64(b, math.NaN()) // min
		wire.PutFloat64(b, 0)          // scale
		b.WriteByte(0)
		b.WriteByte(1)
	})
	dec, err := Decode(ok)
	if err != nil {
		t.Fatalf("NaN-grid payload rejected at decode: %v", err)
	}
	if !math.IsNaN(dec.Vecs[0].Data()[0]) {
		t.Fatal("NaN grid did not materialize NaN values")
	}
}

func TestDecodeRejectsTruncationEverywhere(t *testing.T) {
	for _, spec := range []string{"topk:1+fp64+raw", "topk:0.25+int8+raw", "fp16+deflate"} {
		enc := encodeOne(t, spec, testVecs(13))
		for cut := 1; cut <= len(enc.Data); cut++ {
			if _, err := Decode(enc.Data[:len(enc.Data)-cut]); err == nil {
				t.Fatalf("%s: accepted truncation by %d", spec, cut)
			}
		}
		with := append(append([]byte(nil), enc.Data...), 0x00)
		if _, err := Decode(with); err == nil {
			t.Fatalf("%s: accepted trailing byte", spec)
		}
		if _, err := Decode(nil); err == nil {
			t.Fatal("accepted empty blob")
		}
	}
}

func TestDecodeRejectsFlippedBits(t *testing.T) {
	// The blob rides inside a CRC32 ckpt frame: any corruption must surface
	// as ckpt.ErrCorrupt (or a structural error), never a silent wrong
	// decode. Flip one bit at a sample of offsets.
	enc := encodeOne(t, "topk:0.25+int8+deflate", testVecs(17))
	for off := 0; off < len(enc.Data); off += 7 {
		mut := append([]byte(nil), enc.Data...)
		mut[off] ^= 0x10
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at offset %d decoded without error", off)
		}
	}
	if !strings.Contains(errOf(t, enc), "corrupt") {
		t.Fatal("corruption error does not mention corruption")
	}
}

func errOf(t *testing.T, enc *EncodedUpdate) string {
	t.Helper()
	mut := append([]byte(nil), enc.Data...)
	mut[len(mut)-1] ^= 0xff // payload corruption: caught by the frame CRC
	_, err := Decode(mut)
	if err == nil {
		t.Fatal("payload corruption accepted")
	}
	return err.Error()
}
