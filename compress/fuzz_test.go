package compress

import (
	"bytes"
	"math"
	"testing"

	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/wire"
)

// smallVecs keeps fuzz seeds tiny: corpus minimization cost scales with
// entry size, and small structurally-complete blobs explore the decoder's
// branch structure just as well.
func smallVecs(seed uint64) []*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	shapes := [][]int{{4, 3}, {3}, {5}}
	vecs := make([]*tensor.Tensor, len(shapes))
	for i, s := range shapes {
		v := tensor.New(s...)
		d := v.Data()
		for j := range d {
			d[j] = rng.Normal(0, 1)
		}
		vecs[i] = v
	}
	return vecs
}

// fuzzSeeds returns valid blobs spanning every codec dimension, so the fuzzer
// starts from structurally-correct inputs and mutates from there.
func fuzzSeeds(t testing.TB) [][]byte {
	specs := []string{
		"topk:1+fp64+raw",
		"topk:1+fp64+deflate",
		"topk:1+fp16+raw",
		"topk:1+int8+raw",
		"topk:0.25+fp64+raw",
		"topk:0.05+int8+deflate",
		"topk:0.5+fp16+deflate",
	}
	seeds := make([][]byte, 0, len(specs)+2)
	for i, s := range specs {
		enc := encodeOne(t, s, smallVecs(uint64(i+1)))
		seeds = append(seeds, enc.Data)
	}
	// A hostile-but-decodable grid: NaN min/scale with finite bytes.
	var b bytes.Buffer
	wire.PutUint32(&b, formatVersion)
	wire.PutString(&b, "topk:1+int8+raw")
	wire.PutUvarint(&b, 1)
	wire.PutUvarint(&b, 1)
	wire.PutUvarint(&b, 3)
	b.WriteByte(0)
	wire.PutFloat64(&b, math.NaN())
	wire.PutFloat64(&b, 0)
	b.Write([]byte{0, 128, 255})
	seeds = append(seeds, hostileBody(t, b.Bytes()))
	// Scale = 0 constant tensor.
	c, err := NewCompressor(specOrDie(t, "int8"))
	if err != nil {
		t.Fatal(err)
	}
	flat := tensor.New(4, 4)
	flat.Fill(0.5)
	enc, err := c.Encode([]*tensor.Tensor{flat})
	if err != nil {
		t.Fatal(err)
	}
	seeds = append(seeds, enc.Data)
	return seeds
}

// FuzzDecodeUpdate throws arbitrary bytes at the compressed-update decoder:
// it must never panic, every accepted input must decode deterministically,
// and accepted tensors must have the shape their header claims.
func FuzzDecodeUpdate(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	// Truncations at every boundary ±1 of one sparse int8 blob, so the
	// corpus starts with near-miss structural errors too.
	enc := encodeOne(f, "topk:0.25+int8+raw", smallVecs(99))
	for _, cut := range []int{1, 2, 27, 28, 29, len(enc.Data) / 2, len(enc.Data) - 1} {
		if cut > 0 && cut < len(enc.Data) {
			f.Add(enc.Data[:cut])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted: decode must be deterministic...
		again, err2 := Decode(data)
		if err2 != nil {
			t.Fatalf("accepted then rejected: %v", err2)
		}
		if len(again.Vecs) != len(dec.Vecs) || again.Spec != dec.Spec {
			t.Fatal("decode not deterministic")
		}
		for i, v := range dec.Vecs {
			// ...and structurally sound.
			if v.Size() == 0 || v.Size() > maxElems {
				t.Fatalf("tensor %d implausible size %d", i, v.Size())
			}
			a, b := v.Data(), again.Vecs[i].Data()
			for j := range a {
				if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
					t.Fatalf("tensor %d elem %d differs across decodes", i, j)
				}
			}
		}
	})
}
