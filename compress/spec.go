// Package compress implements the update-compression stage between edge
// workers and the aggregator: top-k sparsification with error feedback,
// reduced-precision quantization (fp16, int8), and entropy framing (raw or
// DEFLATE) behind the ckpt frame codec. A codec is selected by a Spec —
// parsed from strings like "topk:0.05+int8+deflate" — and the lossless
// configuration (k=1.0, fp64, raw) reproduces the uncompressed byte stream's
// aggregation results bit-for-bit. Encoding is stateful (the Compressor
// carries per-tensor residuals so mass dropped by sparsification is re-sent
// in later rounds); decoding is a pure, deterministic function of the bytes,
// so the repository's scheduling-independence pins survive compression.
package compress

import (
	"fmt"
	"strconv"
	"strings"
)

// Precision selects the value encoding for transmitted elements.
type Precision int

const (
	// FP64 ships full IEEE-754 doubles — exact.
	FP64 Precision = iota
	// FP16 ships IEEE-754 half precision, round-to-nearest-even.
	FP16
	// Int8 ships per-tensor affine-quantized bytes (min + scale, 256 levels,
	// round-to-nearest-even).
	Int8
)

// Framing selects the entropy stage wrapped around the encoded body.
type Framing int

const (
	// Raw stores the body verbatim inside the CRC32 frame.
	Raw Framing = iota
	// Deflate stores the body DEFLATE-compressed inside the CRC32 frame.
	Deflate
)

// Spec describes one update codec: a sparsification fraction, a value
// precision and an entropy framing. The zero Spec means "compression
// disabled"; every parsed Spec is enabled and has TopK in (0, 1].
type Spec struct {
	// TopK is the fraction of elements kept per tensor, in [MinTopK, 1].
	// 1 keeps everything (dense encoding, no index list). 0 marks the zero
	// Spec.
	TopK float64
	// Precision is the value encoding for transmitted elements.
	Precision Precision
	// Framing is the entropy stage.
	Framing Framing
}

// MinTopK is the smallest accepted sparsification fraction. The floor keeps
// a decoded tensor's element count proportional to the bytes actually on the
// wire (the decoder pins the sparse count to ceil(TopK*n)), so a hostile
// blob cannot claim an enormous shape backed by a few bytes of payload.
const MinTopK = 1e-4

// AllCodecs lists every negotiable codec feature a fully-capable worker
// advertises in its handshake. FP64 values and raw framing are the baseline
// every peer speaks and are not negotiated.
var AllCodecs = []string{"topk", "fp16", "int8", "deflate"}

// ParseSpec parses a codec spec string: '+'-separated components, at most one
// per category, in any order. Components: "topk:F" with F in (0, 1]
// (sparsification fraction), "fp64" | "fp16" | "int8" (precision), "raw" |
// "deflate" (framing). Omitted categories default to topk:1, fp64, raw. The
// empty string and "none" parse to the zero (disabled) Spec.
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" || s == "none" {
		return Spec{}, nil
	}
	spec := Spec{TopK: 1}
	var haveK, havePrec, haveFrame bool
	for _, part := range strings.Split(s, "+") {
		part = strings.TrimSpace(part)
		switch {
		case strings.HasPrefix(part, "topk:"):
			if haveK {
				return Spec{}, fmt.Errorf("compress: duplicate topk in spec %q", s)
			}
			haveK = true
			f, err := strconv.ParseFloat(part[len("topk:"):], 64)
			if err != nil || !(f >= MinTopK && f <= 1) {
				return Spec{}, fmt.Errorf("compress: topk fraction must be in [%g, 1], got %q", MinTopK, part)
			}
			spec.TopK = f
		case part == "fp64", part == "fp16", part == "int8":
			if havePrec {
				return Spec{}, fmt.Errorf("compress: duplicate precision in spec %q", s)
			}
			havePrec = true
			switch part {
			case "fp16":
				spec.Precision = FP16
			case "int8":
				spec.Precision = Int8
			}
		case part == "raw", part == "deflate":
			if haveFrame {
				return Spec{}, fmt.Errorf("compress: duplicate framing in spec %q", s)
			}
			haveFrame = true
			if part == "deflate" {
				spec.Framing = Deflate
			}
		default:
			return Spec{}, fmt.Errorf("compress: unknown spec component %q in %q", part, s)
		}
	}
	return spec, nil
}

// Enabled reports whether the Spec selects a codec (false for the zero Spec).
func (s Spec) Enabled() bool { return s.TopK != 0 }

// Lossless reports whether encoding through this Spec is exact: every element
// ships (k=1) at full precision, so residuals stay identically zero and the
// decoded update equals the input bit-for-bit. Framing never affects
// losslessness — DEFLATE is itself lossless.
func (s Spec) Lossless() bool { return s.TopK == 1 && s.Precision == FP64 }

// String renders the canonical spec: "none" when disabled, otherwise
// "topk:<frac>+<precision>+<framing>" with every category explicit, so equal
// Specs render equal strings (the coordinator compares these on the wire).
func (s Spec) String() string {
	if !s.Enabled() {
		return "none"
	}
	prec := "fp64"
	switch s.Precision {
	case FP16:
		prec = "fp16"
	case Int8:
		prec = "int8"
	}
	frame := "raw"
	if s.Framing == Deflate {
		frame = "deflate"
	}
	return fmt.Sprintf("topk:%s+%s+%s", strconv.FormatFloat(s.TopK, 'g', -1, 64), prec, frame)
}

// Required lists the codec features a peer must support to decode updates
// encoded with this Spec — the subset of AllCodecs the Spec exercises. The
// coordinator rejects a worker whose handshake lacks any of them.
func (s Spec) Required() []string {
	if !s.Enabled() {
		return nil
	}
	var req []string
	if s.TopK < 1 {
		req = append(req, "topk")
	}
	switch s.Precision {
	case FP16:
		req = append(req, "fp16")
	case Int8:
		req = append(req, "int8")
	}
	if s.Framing == Deflate {
		req = append(req, "deflate")
	}
	return req
}
