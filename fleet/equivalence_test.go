package fleet

import (
	"math"
	"testing"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/trainer"
)

// The acceptance property of the gradient all-reduce mode: training across N
// workers on N equal shards produces global weights BIT-IDENTICAL to
// single-node training on the concatenated dataset, where the single node
// accumulates gradients over the same shard-sized micro-batches
// (trainer.AccumulateStep) — even when the workers' heterogeneous budgets
// auto-select different checkpoint strategies (store-all kept in RAM,
// Revolve recomputation, two-level plans really spilling to flash).

func runEquivalence(t *testing.T, factory func() (*chain.Chain, error), specs []WorkerSpec, samples, rounds int, wantStrategies []string) {
	t.Helper()
	n := len(specs)
	if samples%n != 0 {
		t.Fatalf("test bug: %d samples not divisible by %d workers", samples, n)
	}
	shard := samples / n
	ds := makeDataset(samples, 21)

	const lr = 0.05
	cfg := Config{
		Workers:    specs,
		Rounds:     rounds,
		Seed:       2,
		Aggregator: NewGradAllReduce(trainer.NewSGD(lr)),
	}
	f, err := New(cfg, factory, ds)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// The mix must be genuinely heterogeneous: every wanted strategy distinct.
	for i, w := range f.Workers() {
		if w.Choice.Strategy != wantStrategies[i] {
			t.Fatalf("worker %d auto-selected %q, want %q (budget %d)", i, w.Choice.Strategy, wantStrategies[i], w.Spec.BudgetBytes)
		}
	}

	rep, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Single-node reference: same initial weights, same optimiser, gradient
	// accumulation over the concatenated dataset with the shard size as the
	// micro-batch, one optimiser step per round.
	ref, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	refOpt := trainer.NewSGD(lr)
	union := ds.Batch(0, samples)
	var refLoss float64
	for r := 0; r < rounds; r++ {
		res, err := trainer.AccumulateStep(ref, union, shard, refOpt, chain.Policy{Kind: "storeall"})
		if err != nil {
			t.Fatal(err)
		}
		refLoss = res.Loss
	}

	fleetPs := f.Global().Params()
	refPs := ref.Params()
	for k := range refPs {
		fd, rd := fleetPs[k].Value.Data(), refPs[k].Value.Data()
		for j := range fd {
			if fd[j] != rd[j] {
				t.Fatalf("param %s element %d: fleet %v != single-node %v (bit equality required)",
					refPs[k].Name, j, fd[j], rd[j])
			}
		}
	}
	// The round losses agree too (association differs only in the final
	// weighted mean, so compare numerically).
	if diff := math.Abs(rep.FinalLoss - refLoss); diff > 1e-12 {
		t.Fatalf("final loss %v vs single-node %v (diff %g)", rep.FinalLoss, refLoss, diff)
	}
}

// Mix 1: a 12-stage MLP across three budgets that select store-all, Revolve
// and the flash-spilling two-level scheme — the full strategy spread.
func TestAllReduceEquivalenceThreeStrategyMix(t *testing.T) {
	factory := mlpFactory(3)
	specs := []WorkerSpec{
		{Device: device.JetsonNano(), BudgetBytes: budgetFor(t, factory, 4, 16)},
		{Device: device.Waggle(), BudgetBytes: budgetFor(t, factory, 4, 5.5)},
		{Device: device.RaspberryPi(), BudgetBytes: budgetFor(t, factory, 4, 3.5)},
	}
	runEquivalence(t, factory, specs, 12, 3, []string{"storeall", "revolve", "twolevel"})
}

// Mix 2: the small ResNet (batch normalisation, residual blocks) across two
// budgets that select store-all and Revolve.
func TestAllReduceEquivalenceResNetMix(t *testing.T) {
	factory := resnetFactory(5)
	// ResNet states are conv feature maps, much larger than the input batch
	// the homogeneous-chain approximation assumes; budgets are computed from
	// the same approximation the planner uses, so the thresholds line up.
	specs := []WorkerSpec{
		{Device: device.JetsonNano(), BudgetBytes: budgetFor(t, factory, 6, 12)},
		{Device: device.RaspberryPi(), BudgetBytes: budgetFor(t, factory, 6, 4.5)},
	}
	runEquivalence(t, factory, specs, 12, 2, []string{"storeall", "revolve"})
}
