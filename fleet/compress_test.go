package fleet

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/edgeml/edgetrain/compress"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/edgesim"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
)

func compressCfg(t *testing.T, mode, spec string) Config {
	t.Helper()
	agg, err := NewAggregator(mode, trainer.NewSGD(0.05))
	if err != nil {
		t.Fatal(err)
	}
	factory := mlpFactory(17)
	return Config{
		Workers: []WorkerSpec{
			{Device: device.JetsonNano(), BudgetBytes: budgetFor(t, factory, 4, 16)},
			{Device: device.Waggle(), BudgetBytes: budgetFor(t, factory, 4, 5.5)},
			{Device: device.RaspberryPi(), BudgetBytes: budgetFor(t, factory, 4, 3.5)},
		},
		Rounds:      3,
		Seed:        23,
		Aggregator:  agg,
		Compression: spec,
	}
}

// TestCompressedLosslessBitIdentical pins the tentpole guarantee on the
// in-process path: the lossless codec (k=1, fp64, raw framing) produces
// final global weights byte-identical to an uncompressed run, for both
// aggregation modes.
func TestCompressedLosslessBitIdentical(t *testing.T) {
	factory := mlpFactory(17)
	for _, mode := range []string{"fedavg", "allreduce"} {
		t.Run(mode, func(t *testing.T) {
			ds := makeDataset(12, 23)
			_, plain := runFleet(t, compressCfg(t, mode, ""), factory, ds)
			rep, compressed := runFleet(t, compressCfg(t, mode, "topk:1+fp64+raw"), factory, ds)
			assertSameParams(t, plain, compressed, "lossless-compressed vs uncompressed")
			if rep.Compression != "topk:1+fp64+raw" {
				t.Fatalf("report compression %q", rep.Compression)
			}
			// Lossless raw framing adds only frame/shape overhead: the
			// encoded uplink stays within a few percent of raw.
			if r := rep.CompressionRatio(); r < 0.9 || r > 1.1 {
				t.Fatalf("lossless ratio %v", r)
			}
			if rep.TotalUplinkBytes == rep.TotalRawUplinkBytes {
				t.Fatal("encoded bytes suspiciously equal to raw — compression not applied?")
			}
		})
	}
}

// TestCompressedLossyRun exercises a genuinely lossy codec end to end: the
// run converges to a finite loss, the report shows the uplink reduction, and
// the render gains its compression line.
func TestCompressedLossyRun(t *testing.T) {
	factory := mlpFactory(17)
	ds := makeDataset(12, 23)
	rep, params := runFleet(t, compressCfg(t, "fedavg", "topk:0.25+int8+deflate"), factory, ds)
	for _, p := range params {
		for _, v := range p.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite global weight after lossy run")
			}
		}
	}
	if rep.CompressionRatio() < 4 {
		t.Fatalf("ratio %v < 4 for topk:0.25+int8+deflate", rep.CompressionRatio())
	}
	if rep.TotalUplinkBytes >= rep.TotalRawUplinkBytes {
		t.Fatalf("uplink %d not reduced from raw %d", rep.TotalUplinkBytes, rep.TotalRawUplinkBytes)
	}
	if rep.ModeledUplink <= 0 {
		t.Fatal("modeled uplink time not accounted")
	}
	out := rep.Render()
	if !strings.Contains(out, "compression: topk:0.25+int8+deflate") {
		t.Fatalf("render lacks compression line:\n%s", out)
	}
	// Per-worker accounting: raw is the full model, upload is smaller.
	for _, w := range rep.Workers {
		if w.Rounds > 0 && (w.UploadBytes <= 0 || w.UploadBytes >= w.RawUploadBytes) {
			t.Fatalf("worker %s upload %d vs raw %d", w.Name, w.UploadBytes, w.RawUploadBytes)
		}
	}
}

// TestCompressedFederatedModel: with compression on, the analytical model
// receives the measured update fraction, and its predicted uplink tracks the
// fleet's measured uplink.
func TestCompressedFederatedModel(t *testing.T) {
	factory := mlpFactory(17)
	ds := makeDataset(12, 23)
	f, err := New(compressCfg(t, "fedavg", "int8+deflate"), factory, ds)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	fm := f.FederatedModel()
	if fm.UpdateFraction >= 1 || fm.UpdateFraction <= 0 {
		t.Fatalf("update fraction %v", fm.UpdateFraction)
	}
	fed, _, err := edgesim.SimulateFederated(fm)
	if err != nil {
		t.Fatal(err)
	}
	// Per-round int64 truncation of the modeled update size makes the
	// prediction approximate; it must still land within 1% of measured.
	got, want := float64(fed.UplinkBytes), float64(rep.TotalUplinkBytes)
	if math.Abs(got-want) > 0.01*want {
		t.Fatalf("modeled uplink %v vs measured %v", got, want)
	}
}

// TestCompressedPoisoningCaught: a NaN that exists only after dequantization
// (finite bytes, NaN quantization grid) must be rejected by ValidateUpdate,
// exactly like a NaN on the raw path.
func TestCompressedPoisoningCaught(t *testing.T) {
	factory := mlpFactory(17)
	c, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	global := c.Params()
	comp, err := compress.NewCompressor(mustSpec(t, "int8"))
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([]*tensor.Tensor, len(global))
	for i, p := range global {
		vecs[i] = p.Value.Clone()
	}
	vecs[1].Data()[0] = math.NaN() // poisons tensor 1's quantization grid
	enc, err := comp.Encode(vecs)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := compress.Decode(enc.Data)
	if err != nil {
		t.Fatalf("poisoned blob must decode (validation rejects it): %v", err)
	}
	u := Update{Worker: 0, Samples: 4, Vecs: dec.Vecs}
	if err := ValidateUpdate(global, u); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("ValidateUpdate = %v, want ErrBadUpdate", err)
	}
}

func mustSpec(t *testing.T, s string) compress.Spec {
	t.Helper()
	spec, err := compress.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestBadCompressionSpecRejected(t *testing.T) {
	factory := mlpFactory(17)
	ds := makeDataset(4, 23)
	for _, bad := range []string{"lz4", "topk:2", "fp16+fp16"} {
		cfg := Config{Workers: []WorkerSpec{{}}, Compression: bad}
		if _, err := New(cfg, factory, ds); err == nil {
			t.Fatalf("Compression %q accepted", bad)
		}
	}
	if _, err := New(Config{Workers: []WorkerSpec{{}}, UplinkMbps: -1}, factory, ds); err == nil {
		t.Fatal("negative uplink rate accepted")
	}
}
