package fleet

import (
	"testing"

	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/edgesim"
)

// The executable fleet and the analytical federated model of
// internal/edgesim must agree on the per-round byte accounting for
// full-model updates: measured uplink/downlink totals equal the simulated
// ones, per round and per node.

func crossCheck(t *testing.T, participation float64, workers, rounds, samples int) {
	t.Helper()
	factory := mlpFactory(17)
	ds := makeDataset(samples, 23)
	specs := make([]WorkerSpec, workers)
	for i := range specs {
		specs[i] = WorkerSpec{Device: device.Waggle()}
	}
	f, err := New(Config{
		Workers:       specs,
		Rounds:        rounds,
		Seed:          29,
		Participation: participation,
	}, factory, ds)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}

	fed, _, err := edgesim.SimulateFederated(f.FederatedModel())
	if err != nil {
		t.Fatal(err)
	}
	if fed.UplinkBytes != rep.TotalUplinkBytes {
		t.Errorf("analytical uplink %d != measured %d", fed.UplinkBytes, rep.TotalUplinkBytes)
	}
	if fed.DownlinkBytes != rep.TotalDownlinkBytes {
		t.Errorf("analytical downlink %d != measured %d", fed.DownlinkBytes, rep.TotalDownlinkBytes)
	}
	// Per participating node, one round moves one update up and one model
	// down; compare against one measured round.
	rs := rep.Rounds[0]
	if rs.Participants != fed.ParticipantsPerRound {
		t.Errorf("round participants %d != analytical %d", rs.Participants, fed.ParticipantsPerRound)
	}
	perNode := rs.UplinkBytes/int64(rs.Participants) + rs.DownlinkBytes/int64(rs.Participants)
	if perNode != fed.BytesPerRound {
		t.Errorf("measured per-node round bytes %d != analytical %d", perNode, fed.BytesPerRound)
	}
	if fed.BytesPerRound != 2*rep.ModelBytes {
		t.Errorf("full-model round should move 2x model bytes, got %d for model %d", fed.BytesPerRound, rep.ModelBytes)
	}
}

func TestFleetMatchesEdgesimFullParticipation(t *testing.T) { crossCheck(t, 0, 4, 3, 16) }

func TestFleetMatchesEdgesimPartialParticipation(t *testing.T) { crossCheck(t, 0.5, 4, 3, 16) }

// Idle workers (empty shards) are excluded from selection, so the byte
// accounting still agrees when the fleet outnumbers the samples.
func TestFleetMatchesEdgesimWithIdleWorkers(t *testing.T) { crossCheck(t, 0, 5, 2, 3) }
