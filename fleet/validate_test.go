package fleet

import (
	"errors"
	"math"
	"testing"

	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
)

func validationGlobal() []*nn.Param {
	return []*nn.Param{
		nn.NewParam("w", tensor.New(2, 3)),
		nn.NewParam("b", tensor.New(3)),
	}
}

func validUpdate(global []*nn.Param) Update {
	u := Update{Worker: 1, Samples: 4}
	for _, p := range global {
		u.Vecs = append(u.Vecs, p.Value.Clone())
	}
	return u
}

func TestValidateUpdateAccepts(t *testing.T) {
	global := validationGlobal()
	if err := ValidateUpdate(global, validUpdate(global)); err != nil {
		t.Fatalf("valid update rejected: %v", err)
	}
}

func TestValidateUpdateRejections(t *testing.T) {
	global := validationGlobal()
	cases := []struct {
		name   string
		mutate func(u *Update)
	}{
		{"zero samples", func(u *Update) { u.Samples = 0 }},
		{"negative samples", func(u *Update) { u.Samples = -3 }},
		{"missing tensor", func(u *Update) { u.Vecs = u.Vecs[:1] }},
		{"extra tensor", func(u *Update) { u.Vecs = append(u.Vecs, tensor.New(1)) }},
		{"nil tensor", func(u *Update) { u.Vecs[0] = nil }},
		{"shape mismatch", func(u *Update) { u.Vecs[1] = tensor.New(4) }},
		{"transposed shape", func(u *Update) { u.Vecs[0] = tensor.New(3, 2) }},
		{"NaN value", func(u *Update) { u.Vecs[0].Data()[2] = math.NaN() }},
		{"+Inf value", func(u *Update) { u.Vecs[1].Data()[0] = math.Inf(1) }},
		{"-Inf value", func(u *Update) { u.Vecs[0].Data()[5] = math.Inf(-1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := validUpdate(global)
			tc.mutate(&u)
			err := ValidateUpdate(global, u)
			if err == nil {
				t.Fatalf("update with %s accepted", tc.name)
			}
			if !errors.Is(err, ErrBadUpdate) {
				t.Fatalf("error does not wrap ErrBadUpdate: %v", err)
			}
		})
	}
}

// Both aggregators must reject a poisoned update via the typed error and
// leave the global parameters untouched.
func TestFoldRejectsPoisonedUpdate(t *testing.T) {
	for _, agg := range []Aggregator{NewFedAvg(), NewGradAllReduce(nil)} {
		t.Run(agg.Name(), func(t *testing.T) {
			global := validationGlobal()
			for _, p := range global {
				p.Value.Fill(0.5)
			}
			before := make([][]float64, len(global))
			for i, p := range global {
				before[i] = append([]float64(nil), p.Value.Data()...)
			}
			good := validUpdate(global)
			bad := validUpdate(global)
			bad.Worker = 2
			bad.Vecs[0].Data()[0] = math.NaN()
			err := agg.Fold(global, []Update{good, bad})
			if !errors.Is(err, ErrBadUpdate) {
				t.Fatalf("fold error = %v, want ErrBadUpdate", err)
			}
			for i, p := range global {
				for j, v := range p.Value.Data() {
					if v != before[i][j] {
						t.Fatalf("global parameter %d mutated at %d by a rejected fold", i, j)
					}
				}
			}
		})
	}
}
