package fleet

import (
	"github.com/edgeml/edgetrain/obs"
)

// fleetObs bundles the metric handles Round publishes to. Handles are
// resolved once per round (a handful of read-locked map hits against the
// default registry); nil when observability is disabled, in which case
// every recording call below is a nil-receiver no-op.
type fleetObs struct {
	rounds     *obs.Counter
	uplink     *obs.Counter
	rawUplink  *obs.Counter
	downlink   *obs.Counter
	parts      *obs.Counter
	dropouts   *obs.Counter
	roundSec   *obs.Histogram
	localSec   *obs.Histogram
	compressed *obs.Gauge
}

func fleetObsHandles() *fleetObs {
	r := obs.Default()
	if r == nil {
		return nil
	}
	return &fleetObs{
		rounds:     r.Counter("fleet_rounds_total", "Aggregation rounds completed by fleet.Run."),
		uplink:     r.Counter("fleet_uplink_bytes_total", "Update bytes uploaded (post-compression when a codec is active)."),
		rawUplink:  r.Counter("fleet_raw_uplink_bytes_total", "Update bytes the uploads would cost uncompressed."),
		downlink:   r.Counter("fleet_downlink_bytes_total", "Broadcast bytes downloaded by participants."),
		parts:      r.Counter("fleet_participants_total", "Per-round participations that produced an upload."),
		dropouts:   r.Counter("fleet_dropouts_total", "Selected workers that dropped before uploading."),
		roundSec:   r.Histogram("fleet_round_seconds", "Wall-clock time of one aggregation round.", nil),
		localSec:   r.Histogram("fleet_local_train_seconds", "Per-worker local training time within a round.", nil),
		compressed: r.Gauge("fleet_compression_ratio", "Cumulative raw/encoded uplink ratio (1 with compression off)."),
	}
}

// record publishes one completed round. Called only on the success path,
// with the same RoundStats the Report accumulates, so scraped totals
// match the end-of-run report exactly.
func (m *fleetObs) record(f *Fleet, rs *RoundStats) {
	if m == nil {
		return
	}
	m.rounds.Inc()
	m.uplink.Add(rs.UplinkBytes)
	m.rawUplink.Add(rs.RawUplinkBytes)
	m.downlink.Add(rs.DownlinkBytes)
	m.parts.Add(int64(rs.Participants))
	m.dropouts.Add(int64(rs.Dropouts))
	m.roundSec.Observe(rs.WallClock.Seconds())
	for i := range rs.Workers {
		if ws := &rs.Workers[i]; ws.Samples > 0 {
			m.localSec.Observe(ws.Duration.Seconds())
		}
	}
	if f.encSent > 0 {
		m.compressed.Set(float64(f.rawSent) / float64(f.encSent))
	}
}
