package fleet

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
)

// Update is one worker's contribution to an aggregation round.
type Update struct {
	// Worker is the contributing worker's index (set by the engine).
	Worker int
	// Samples is the number of training samples behind the update; it is the
	// update's aggregation weight. Zero means "nothing to contribute" (an
	// empty shard) and the engine discards the update.
	Samples int
	// Loss is the worker's training loss for the round (FedAvg: the last
	// local epoch's mean; all-reduce: the round batch's loss).
	Loss float64
	// Vecs is the update payload, parallel to the global chain's Params():
	// parameter values for FedAvg, accumulated gradients for all-reduce.
	// The tensors must be owned by the update (cloned), never aliases of
	// live worker state.
	Vecs []*tensor.Tensor

	// Execution statistics of the local computation, for the round report.
	ForwardEvals  int
	BackwardEvals int
	PeakStates    int
	PeakRAMBytes  int64
	PeakDiskBytes int64
	DiskWrites    int
	DiskReads     int
}

// Aggregator defines what each worker computes in a round and how the
// round's results merge into the global model.
//
// The contract:
//
//   - Local runs on the worker's goroutine, concurrently with other workers.
//     It may mutate only its worker (the worker's model replica was loaded
//     with the current global parameters before the round started) and must
//     return payload tensors that are clones, not aliases of live state.
//
//   - Fold receives the surviving updates of the round sorted by ascending
//     worker index, each with Samples > 0, and merges them into the global
//     parameters. Fold MUST be deterministic given that ordered slice —
//     fold in the given order, never by completion time — so the global
//     model is bit-identical under any goroutine scheduling. Sample counts
//     are the aggregation weights.
//
//   - Fold is never called with an empty update set: a round in which every
//     participant dropped leaves the global model untouched.
type Aggregator interface {
	// Name identifies the mode in reports ("fedavg", "allreduce").
	Name() string
	// Local computes one worker's round contribution.
	Local(w *Worker, round int) (Update, error)
	// Fold merges the ordered updates into the global parameters.
	Fold(global []*nn.Param, updates []Update) error
}

// FedAvg implements federated averaging: every participant trains locally
// for the configured number of epochs under its own checkpoint policy and
// optimiser, then the global parameters are replaced by the sample-weighted
// average of the participants' parameters, folded in worker order.
type FedAvg struct{}

// NewFedAvg returns the federated-averaging aggregator.
func NewFedAvg() *FedAvg { return &FedAvg{} }

// Name implements Aggregator.
func (a *FedAvg) Name() string { return "fedavg" }

// Local implements Aggregator: local training on the worker's shard.
func (a *FedAvg) Local(w *Worker, round int) (Update, error) {
	u := Update{Worker: w.Index}
	if w.Shard.Len() == 0 {
		return u, nil
	}
	bs := w.batch
	if bs <= 0 {
		bs = w.Shard.Len()
	}
	tr, err := trainer.New(w.Chain, trainer.Config{
		Epochs:    w.localEpochs,
		BatchSize: bs,
		Optimizer: w.opt,
		Policy:    w.policy,
	})
	if err != nil {
		return u, err
	}
	stats, err := tr.Train(w.Shard)
	if err != nil {
		return u, err
	}
	u.Samples = w.Shard.Len()
	for _, st := range stats {
		u.Loss = st.Loss
		u.ForwardEvals += st.ForwardEvals
		u.BackwardEvals += st.BackwardEvals
		u.PeakStates = max(u.PeakStates, st.PeakStates)
		u.PeakRAMBytes = max(u.PeakRAMBytes, st.PeakBytes)
		u.PeakDiskBytes = max(u.PeakDiskBytes, st.PeakDiskBytes)
		u.DiskWrites += st.DiskWrites
		u.DiskReads += st.DiskReads
	}
	for _, p := range w.Chain.Params() {
		u.Vecs = append(u.Vecs, p.Value.Clone())
	}
	return u, nil
}

// Fold implements Aggregator: sample-weighted parameter averaging. Every
// update is validated (shapes, finiteness) before any global state changes.
func (a *FedAvg) Fold(global []*nn.Param, updates []Update) error {
	var total float64
	for _, u := range updates {
		if err := ValidateUpdate(global, u); err != nil {
			return err
		}
		total += float64(u.Samples)
	}
	if total == 0 {
		return fmt.Errorf("fleet: fedavg fold with no samples")
	}
	for k, p := range global {
		// The update vectors are owned clones (Aggregator contract) and the
		// old global value is not a fold input, so fold in place.
		p.Value.Zero()
		for _, u := range updates {
			p.Value.AxpyInPlace(float64(u.Samples)/total, u.Vecs[k])
		}
	}
	return nil
}

// GradAllReduce implements synchronous gradient all-reduce: every
// participant computes the gradient of its round batch (under its own
// checkpoint policy — heterogeneous strategies produce identical gradients),
// the gradients are averaged into the global parameters' Grad buffers, and
// one global optimiser step is applied.
//
// Equivalence guarantee: with full participation and equal-sized shards, the
// fold is a plain sum in worker order followed by a single 1/N scaling —
// exactly the association of single-node gradient accumulation over the
// same batches (trainer.AccumulateStep with the shard size as micro-batch).
// Together with the nn accumulation contract (one element-wise addition per
// Backward) and the bit-reproducible kernels, the updated global weights
// are bit-identical to single-node training on the concatenated dataset.
// Unequal shards fold with per-update sample weights instead, which is the
// mathematically correct weighting but rounds differently than a serial
// accumulation would.
type GradAllReduce struct {
	// Opt is the global optimiser applied after each fold.
	Opt trainer.Optimizer
}

// NewGradAllReduce returns the gradient all-reduce aggregator with the given
// global optimiser (SGD with learning rate 0.05 when nil).
func NewGradAllReduce(opt trainer.Optimizer) *GradAllReduce {
	if opt == nil {
		opt = trainer.NewSGD(0.05)
	}
	return &GradAllReduce{Opt: opt}
}

// Name implements Aggregator.
func (a *GradAllReduce) Name() string { return "allreduce" }

// Local implements Aggregator: one full forward/backward over the worker's
// round batch, gradients accumulated but not applied.
func (a *GradAllReduce) Local(w *Worker, round int) (Update, error) {
	u := Update{Worker: w.Index}
	batch := w.RoundBatch(round)
	if batch.Images == nil || len(batch.Labels) == 0 {
		return u, nil
	}
	w.Chain.ZeroGrads()
	ce := nn.NewSoftmaxCrossEntropy()
	var loss float64
	lossGrad := func(out *tensor.Tensor) *tensor.Tensor {
		loss = ce.Forward(out, batch.Labels)
		return ce.Backward()
	}
	res, err := chain.Step(w.Chain, batch.Images, lossGrad, w.policy, true)
	if err != nil {
		return u, err
	}
	u.Samples = len(batch.Labels)
	u.Loss = loss
	u.ForwardEvals = res.ForwardEvals
	u.BackwardEvals = res.BackwardEvals
	u.PeakStates = res.PeakStates
	u.PeakRAMBytes = res.PeakStateBytes
	u.PeakDiskBytes = res.PeakDiskBytes
	u.DiskWrites = res.DiskWrites
	u.DiskReads = res.DiskReads
	for _, p := range w.Chain.Params() {
		u.Vecs = append(u.Vecs, p.Grad.Clone())
	}
	return u, nil
}

// Fold implements Aggregator: average the gradients into the global Grad
// buffers and apply one global optimiser step. Every update is validated
// (shapes, finiteness) before any global state changes.
func (a *GradAllReduce) Fold(global []*nn.Param, updates []Update) error {
	var total float64
	equal := true
	for _, u := range updates {
		if err := ValidateUpdate(global, u); err != nil {
			return err
		}
		total += float64(u.Samples)
		if u.Samples != updates[0].Samples {
			equal = false
		}
	}
	if total == 0 {
		return fmt.Errorf("fleet: allreduce fold with no samples")
	}
	for k, p := range global {
		g := p.Grad
		g.Zero()
		if equal {
			// Plain sum + one final scaling: the association single-node
			// gradient accumulation uses, hence bit-identical weights.
			for _, u := range updates {
				g.AddInPlace(u.Vecs[k])
			}
			g.ScaleInPlace(1 / float64(len(updates)))
		} else {
			for _, u := range updates {
				g.AxpyInPlace(float64(u.Samples)/total, u.Vecs[k])
			}
		}
	}
	a.Opt.Step(global)
	return nil
}

// NewAggregator resolves an aggregation mode by name ("fedavg" or
// "allreduce"), constructing the all-reduce global optimiser with opts.
func NewAggregator(name string, opt trainer.Optimizer) (Aggregator, error) {
	switch name {
	case "", "fedavg":
		return NewFedAvg(), nil
	case "allreduce", "all-reduce", "sync-sgd":
		return NewGradAllReduce(opt), nil
	default:
		return nil, fmt.Errorf("fleet: unknown aggregator %q (want fedavg or allreduce)", name)
	}
}
