package fleet

import (
	"strings"
	"testing"
	"time"

	"github.com/edgeml/edgetrain/obs/health"
)

// TestReportRenderGolden pins the report's rendered layout, including the
// bytes-on-wire and round wall-clock columns, against a fixed report.
func TestReportRenderGolden(t *testing.T) {
	rep := &Report{
		Aggregator: "fedavg",
		ModelBytes: 1_500_000,
		Workers: []WorkerSummary{
			{
				Index: 0, Name: "w0-waggle", Device: "waggle", BudgetBytes: 2_000_000_000,
				ShardSamples: 128, Strategy: "storeall",
			},
			{
				Index: 1, Name: "w1-raspberrypi3b", Device: "raspberrypi3b", BudgetBytes: 1_000_000_000,
				ShardSamples: 128, Strategy: "revolve",
			},
		},
	}
	rep.Add(RoundStats{
		Round: 0, Participants: 2, Loss: 2.3026,
		UplinkBytes: 3_000_000, DownlinkBytes: 3_000_000,
		WallClock: 1503 * time.Millisecond,
		Workers: []WorkerRoundStats{
			{Worker: 0, Participated: true, Samples: 128, PeakRAMBytes: 4_200_000, DiskWrites: 3, DiskReads: 3, UploadBytes: 1_500_000, DownloadBytes: 1_500_000, WireBytes: 3_100_000},
			{Worker: 1, Participated: true, Samples: 128, PeakRAMBytes: 1_100_000, PeakDiskBytes: 900_000, DiskWrites: 7, DiskReads: 7, UploadBytes: 1_500_000, DownloadBytes: 1_500_000, WireBytes: 3_100_000},
		},
	})
	rep.Add(RoundStats{
		Round: 1, Participants: 1, Dropouts: 1, Loss: 1.9311,
		UplinkBytes: 1_500_000, DownlinkBytes: 3_000_000,
		WallClock: 1287*time.Millisecond + 400*time.Microsecond,
		Workers: []WorkerRoundStats{
			{Worker: 0, Participated: true, Samples: 128, PeakRAMBytes: 4_200_000, DiskWrites: 3, DiskReads: 3, UploadBytes: 1_500_000, DownloadBytes: 1_500_000, WireBytes: 3_100_000},
			{Worker: 1, Participated: true, Dropped: true, DownloadBytes: 1_500_000, WireBytes: 1_550_000},
		},
	})

	want := "fleet training report: fedavg, 2 workers, 2 rounds, 1.50 MB model updates\n" +
		"worker                device               budget (MB)   shard    strategy  peak RAM (MB)  flash (MB)   writes   reads   wire (MB)\n" +
		"w0-waggle             waggle                   2000.00     128    storeall          4.200       0.000        6       6        6.20\n" +
		"w1-raspberrypi3b      raspberrypi3b            1000.00     128     revolve          1.100       0.900        7       7        4.65\n" +
		"round       participants    dropouts      loss   uplink (MB)   downlink (MB)   wall (ms)\n" +
		"0                      2           0    2.3026          3.00            3.00      1503.0\n" +
		"1                      1           1    1.9311          1.50            3.00      1287.4\n" +
		"round wall-clock: min 1287.4 ms, p50 1287.4 ms, p95 1503.0 ms, max 1503.0 ms\n" +
		"totals: uplink 4.50 MB, downlink 6.00 MB, wire 10.85 MB, final loss 1.9311\n"

	got := rep.Render()
	if got != want {
		t.Fatalf("Render mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	if rep.TotalWireBytes != 10_850_000 {
		t.Fatalf("TotalWireBytes = %d, want 10850000", rep.TotalWireBytes)
	}
	if rep.Workers[0].WireBytes != 6_200_000 || rep.Workers[1].WireBytes != 4_650_000 {
		t.Fatalf("per-worker WireBytes = %d, %d", rep.Workers[0].WireBytes, rep.Workers[1].WireBytes)
	}

	// A report with no completed rounds omits the wall-clock spread line.
	empty := &Report{Aggregator: "fedavg"}
	if out := empty.Render(); strings.Contains(out, "round wall-clock") {
		t.Fatalf("empty report rendered a wall-clock line:\n%s", out)
	}
}

// TestReportRenderAlerts pins the ALERTS section: absent on healthy runs
// (the golden above has no ALERTS line) and rendered one alert per line
// when the monitor fired.
func TestReportRenderAlerts(t *testing.T) {
	rep := &Report{Aggregator: "fedavg"}
	rep.Alerts = []health.Alert{
		{Rule: "loss-divergence", Round: 3, Detail: "loss 9.1200 > 2x best 1.1000"},
		{Rule: "worker-flap", Round: 4, Detail: "2 rejoins since the previous round"},
	}
	out := rep.Render()
	want := "ALERTS (2):\n" +
		"  round 3: loss-divergence: loss 9.1200 > 2x best 1.1000\n" +
		"  round 4: worker-flap: 2 rejoins since the previous round\n"
	if !strings.HasSuffix(out, want) {
		t.Fatalf("ALERTS section mismatch:\n--- got ---\n%s--- want suffix ---\n%s", out, want)
	}
}
