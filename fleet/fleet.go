// Package fleet runs real data-parallel training rounds across N concurrent
// simulated edge workers — the executable counterpart of the analytical fleet
// model in internal/edgesim, and the paper's headline claim made runnable:
// neural networks trained in situ, distributed across a fleet of low-powered
// heterogeneous nodes.
//
// Every worker owns a device profile (internal/device), a RAM byte budget
// that drives plan.AutoSelect independently per worker — so a Jetson-class
// and a Raspberry-class node pick different checkpoint strategies for the
// same network — its own tiered spill store (package store), and a
// contiguous, non-IID shard of the dataset (trainer.Shard). Workers compute
// concurrently, one goroutine each; an Aggregator merges their round results
// into the global model with a deterministic fold, so the trained weights
// are bit-identical at any worker scheduling, any parallel.SetWorkers /
// EDGETRAIN_WORKERS setting, and across repeated runs with the same seed.
//
// Two aggregation modes ship with the package: FedAvg (sample-weighted
// parameter averaging after local training) and GradAllReduce (synchronous
// gradient averaging, bit-identical to single-node gradient accumulation
// over the concatenated shards — see the Aggregator contract in
// aggregator.go). Fleet-scale failure modes are first-class scenario knobs:
// per-round straggler delays, worker dropout, and partial participation.
//
// The engine measures what the analytical model only predicts: per-worker
// chosen strategy, peak RAM and flash bytes, disk I/O, and per-round
// uplink/downlink traffic; FederatedModel feeds the measured traffic back
// into edgesim.SimulateFederated so the two validate each other.
package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/edgeml/edgetrain/compress"
	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/edgesim"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/obs"
	"github.com/edgeml/edgetrain/plan"
	"github.com/edgeml/edgetrain/store"
)

// defaultUplinkMbps is the modeled uplink rate when Config.UplinkMbps is
// zero: the Waggle edge node's 10 Mbps.
const defaultUplinkMbps = 10.0

// WorkerSpec describes one edge worker of the fleet.
type WorkerSpec struct {
	// Name identifies the worker in reports; defaults to "w<i>-<device>".
	Name string
	// Device is the hardware profile of the node (informational, and the
	// default source of the RAM budget).
	Device device.Device
	// BudgetBytes is the RAM byte budget handed to the worker's budget-aware
	// checkpoint planning. Zero uses Device.MemoryBytes; if that is also
	// zero, the planner's default (the 2 GB Waggle capacity) applies.
	BudgetBytes int64
	// SpillDir is the directory for the worker's flash-tier checkpoint
	// spills; empty uses a per-worker temporary directory.
	SpillDir string
}

// Config controls a fleet training run.
type Config struct {
	// Workers lists the fleet members; at least one is required.
	Workers []WorkerSpec
	// Rounds is the number of aggregation rounds Run executes (default 1).
	Rounds int
	// LocalEpochs is how many passes over its shard a FedAvg worker trains
	// per round (default 1). Gradient all-reduce ignores it.
	LocalEpochs int
	// BatchSize is the workers' local batch size. Zero means one full-shard
	// batch, which is also what the all-reduce equivalence guarantee is
	// stated against.
	BatchSize int
	// Optimizer constructs the optimisers of the run: one per worker for
	// FedAvg local training. Defaults to SGD with learning rate 0.05. The
	// global optimiser of GradAllReduce is configured on the aggregator.
	Optimizer func() trainer.Optimizer
	// Aggregator merges worker results into the global model; defaults to
	// NewFedAvg().
	Aggregator Aggregator
	// Seed drives every stochastic fleet decision (participant selection,
	// dropout draws); runs with equal seeds are bit-identical.
	Seed uint64
	// Participation is the fraction of workers selected per round, in
	// (0, 1]; zero means full participation. The selected count follows
	// edgesim.ParticipantsPerRound, so the analytical model's accounting
	// matches exactly.
	Participation float64
	// DropoutRate is the probability that a selected worker fails before
	// uploading its result (it still receives the broadcast). In [0, 1).
	DropoutRate float64
	// StragglerDelay, when non-nil, returns an artificial delay injected
	// before the given worker's computation in the given round — the
	// straggler scenario knob, and the lever the determinism tests use to
	// shuffle worker completion order.
	StragglerDelay func(round, worker int) time.Duration
	// Compression selects the update codec applied to every worker upload
	// (package compress): a spec string like "topk:0.05+int8+deflate".
	// Empty or "none" disables. Each worker encodes its update (with
	// per-worker error-feedback residuals), the fleet decodes it, and the
	// decoded tensors are what validation sees and the aggregator folds —
	// exactly the bytes-on-the-wire semantics of a coord run. The lossless
	// spec "topk:1+fp64+raw" is bit-identical to no compression.
	Compression string
	// UplinkMbps is the modeled uplink rate used for RoundStats.
	// ModeledUplink (the time the round's largest upload would take).
	// Zero defaults to 10 Mbps, the Waggle node's uplink.
	UplinkMbps float64
}

// Worker is one fleet member: a full model replica, a dataset shard, and the
// checkpoint policy its budget selected.
type Worker struct {
	// Index is the worker's position in Config.Workers, which is also its
	// fold position during aggregation.
	Index int
	// Spec is the worker's specification after defaulting.
	Spec WorkerSpec
	// Chain is the worker's model replica.
	Chain *chain.Chain
	// Shard is the worker's contiguous dataset shard (possibly empty).
	Shard trainer.Dataset
	// Choice reports the checkpoint strategy the worker's budget selected;
	// the zero value (Strategy "") on workers with an empty shard.
	Choice plan.AutoChoice

	policy      chain.Policy
	spill       *store.Tiered
	opt         trainer.Optimizer
	batch       int // effective local batch size (shard length when Config.BatchSize is 0)
	localEpochs int
	fullBatch   trainer.Batch // cached full-shard batch (the shard is immutable)

	// Durable progress counters (checkpointed and restored by ckpt sessions).
	roundsDone  int64 // rounds this worker's update was folded in
	samplesDone int64 // samples behind those updates
}

// Policy returns the worker's checkpointing policy (budget-aware, routed
// through its tiered spill store), for custom Aggregator implementations.
func (w *Worker) Policy() chain.Policy { return w.policy }

// LocalEpochs returns the worker's per-round local epoch count.
func (w *Worker) LocalEpochs() int { return w.localEpochs }

// BatchSize returns the worker's effective local batch size.
func (w *Worker) BatchSize() int { return w.batch }

// Optimizer returns the worker's local optimiser (used by FedAvg).
func (w *Worker) Optimizer() trainer.Optimizer { return w.opt }

// RoundBatch returns the worker's minibatch for the given round: the batches
// of its shard visited round-robin, or one full-shard batch when the fleet
// runs full-shard rounds. The zero Batch on an empty shard. The shard is
// immutable, so the full-shard batch is assembled once and reused across
// rounds (callers must not mutate it).
func (w *Worker) RoundBatch(round int) trainer.Batch {
	n := w.Shard.Len()
	if n == 0 {
		return trainer.Batch{}
	}
	size := w.batch
	if size <= 0 || size > n {
		if w.fullBatch.Images == nil {
			w.fullBatch = w.Shard.Batch(0, n)
		}
		return w.fullBatch
	}
	nb := w.Shard.NumBatches(size)
	return w.Shard.Batch(round%nb, size)
}

// Fleet coordinates training rounds across the workers.
type Fleet struct {
	cfg        Config
	agg        Aggregator
	global     *chain.Chain
	globalPs   []*nn.Param
	workers    []*Worker
	active     []int // indices of workers with non-empty shards
	modelBytes int64

	// Update compression (nil comps when disabled).
	spec    compress.Spec
	comps   []*compress.Compressor // one per worker: error-feedback state
	rawSent int64                  // cumulative raw upload bytes across rounds
	encSent int64                  // cumulative encoded upload bytes across rounds
}

// New builds a fleet. The model factory must be deterministic (seeded): it is
// called once for the global model and once per worker, and every replica
// must be bit-identical to the global model — New verifies this. The dataset
// is split into len(cfg.Workers) contiguous shards (trainer.Shard), one per
// worker in order, so shard i of a viewpoint-ordered dataset carries node
// i's non-IID skew.
func New(cfg Config, model func() (*chain.Chain, error), ds trainer.Dataset) (*Fleet, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fleet: no workers configured")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.LocalEpochs <= 0 {
		cfg.LocalEpochs = 1
	}
	if cfg.Participation < 0 || cfg.Participation > 1 {
		return nil, fmt.Errorf("fleet: participation %v outside [0, 1]", cfg.Participation)
	}
	if cfg.DropoutRate < 0 || cfg.DropoutRate >= 1 {
		return nil, fmt.Errorf("fleet: dropout rate %v outside [0, 1)", cfg.DropoutRate)
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = func() trainer.Optimizer { return trainer.NewSGD(0.05) }
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = NewFedAvg()
	}
	if model == nil || ds == nil {
		return nil, fmt.Errorf("fleet: nil model factory or dataset")
	}
	spec, err := compress.ParseSpec(cfg.Compression)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if cfg.UplinkMbps < 0 {
		return nil, fmt.Errorf("fleet: uplink rate %v Mbps is negative", cfg.UplinkMbps)
	}
	if cfg.UplinkMbps == 0 {
		cfg.UplinkMbps = defaultUplinkMbps
	}

	global, err := model()
	if err != nil {
		return nil, fmt.Errorf("fleet: building global model: %w", err)
	}
	if global == nil || global.Len() == 0 {
		return nil, fmt.Errorf("fleet: model factory produced an empty chain")
	}
	f := &Fleet{
		cfg:        cfg,
		agg:        cfg.Aggregator,
		global:     global,
		globalPs:   global.Params(),
		modelBytes: nn.ParamBytes(global.Stages),
		spec:       spec,
	}
	if spec.Enabled() {
		f.comps = make([]*compress.Compressor, len(cfg.Workers))
		for i := range f.comps {
			c, err := compress.NewCompressor(spec)
			if err != nil {
				return nil, fmt.Errorf("fleet: %w", err)
			}
			f.comps[i] = c
		}
	}

	n := len(cfg.Workers)
	for i, ws := range cfg.Workers {
		w, err := NewWorker(ws, i, n, model, ds, cfg.BatchSize, cfg.LocalEpochs, cfg.Optimizer())
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := sameParams(f.globalPs, w.Chain.Params()); err != nil {
			w.Close()
			f.Close()
			return nil, fmt.Errorf("fleet: model factory is not deterministic (%s): %w", w.Spec.Name, err)
		}
		f.workers = append(f.workers, w)
		if w.Shard.Len() > 0 {
			f.active = append(f.active, i)
		}
	}
	return f, nil
}

// NewWorker builds one standalone fleet member: worker index of total, model
// replica from the factory, shard index of the dataset (trainer.Shard), the
// given local batch size, per-round epoch count and optimiser, and the
// budget-aware checkpoint planning the spec's budget selects. This is the
// per-worker half of New, exported so a remote worker process (package coord)
// runs exactly the code path an in-process fleet member does — the root of
// the distributed-equals-local bit-identity guarantee. Callers own the
// returned worker and must Close it.
func NewWorker(spec WorkerSpec, index, total int, model func() (*chain.Chain, error), ds trainer.Dataset, batchSize, localEpochs int, opt trainer.Optimizer) (*Worker, error) {
	if index < 0 || index >= total {
		return nil, fmt.Errorf("fleet: worker index %d outside fleet of %d", index, total)
	}
	if model == nil || ds == nil || opt == nil {
		return nil, fmt.Errorf("fleet: nil model factory, dataset or optimizer")
	}
	if localEpochs <= 0 {
		localEpochs = 1
	}
	if spec.Name == "" {
		name := spec.Device.Name
		if name == "" {
			name = "node"
		}
		spec.Name = fmt.Sprintf("w%d-%s", index, name)
	}
	if spec.BudgetBytes <= 0 {
		spec.BudgetBytes = spec.Device.MemoryBytes
	}
	replica, err := model()
	if err != nil {
		return nil, fmt.Errorf("fleet: building %s replica: %w", spec.Name, err)
	}
	if replica == nil || replica.Len() == 0 {
		return nil, fmt.Errorf("fleet: model factory produced an empty chain for %s", spec.Name)
	}
	w := &Worker{
		Index:       index,
		Spec:        spec,
		Chain:       replica,
		Shard:       trainer.Shard(ds, total, index),
		opt:         opt,
		batch:       batchSize,
		localEpochs: localEpochs,
	}
	if err := w.configurePlanning(); err != nil {
		return nil, err
	}
	return w, nil
}

// Close releases the worker's spill store. Workers owned by a Fleet are
// closed by Fleet.Close; standalone workers (NewWorker) must be closed by
// their creator.
func (w *Worker) Close() error {
	if w.spill == nil {
		return nil
	}
	err := w.spill.Close()
	w.spill = nil
	return err
}

// Progress reports the worker's durable progress counters: rounds whose fold
// included this worker, and the samples behind those updates.
func (w *Worker) Progress() (rounds, samples int64) {
	return w.roundsDone, w.samplesDone
}

// AddProgress advances the worker's durable progress counters after its
// update was folded into the global model.
func (w *Worker) AddProgress(rounds, samples int64) {
	w.roundsDone += rounds
	w.samplesDone += samples
}

// configurePlanning sizes the worker's budget-aware checkpoint policy from
// its shard and budget, runs the auto selection once so the report can show
// what the budget picked, and attaches the tiered spill store.
func (w *Worker) configurePlanning() error {
	if w.Shard.Len() == 0 {
		// An idle worker never executes a step; keep the zero Choice and the
		// default (store-all) policy.
		return nil
	}
	size := w.batch
	if size <= 0 || size > w.Shard.Len() {
		size = w.Shard.Len()
	}
	probe := w.Shard.Batch(0, size)
	if size == w.Shard.Len() {
		w.fullBatch = probe // seed the RoundBatch cache
	}
	spec := plan.ChainSpec{
		Length:          w.Chain.Len(),
		WeightBytes:     2 * nn.ParamBytes(w.Chain.Stages),
		ActivationBytes: probe.Images.Bytes(),
	}
	var opts []plan.Option
	if w.Spec.BudgetBytes > 0 {
		opts = append(opts, plan.WithMemoryBudget(w.Spec.BudgetBytes))
	}
	choice, err := plan.AutoSelect(spec, opts...)
	if err != nil {
		return fmt.Errorf("fleet: %s (budget %d bytes): %w", w.Spec.Name, w.Spec.BudgetBytes, err)
	}
	w.Choice = choice
	spill, err := store.NewTiered(w.Spec.SpillDir)
	if err != nil {
		return fmt.Errorf("fleet: %s spill store: %w", w.Spec.Name, err)
	}
	w.spill = spill
	w.policy = chain.Policy{
		Kind:            "auto",
		MemoryBudget:    w.Spec.BudgetBytes,
		WeightBytes:     spec.WeightBytes,
		ActivationBytes: spec.ActivationBytes,
		Store:           spill,
	}
	return nil
}

// sameParams verifies two parameter lists are structurally and bit-wise
// identical.
func sameParams(a, b []*nn.Param) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d parameters vs %d", len(a), len(b))
	}
	for i := range a {
		av, bv := a[i].Value.Data(), b[i].Value.Data()
		if len(av) != len(bv) {
			return fmt.Errorf("parameter %s: %d values vs %d", a[i].Name, len(av), len(bv))
		}
		for j := range av {
			if av[j] != bv[j] {
				return fmt.Errorf("parameter %s differs at element %d", a[i].Name, j)
			}
		}
	}
	return nil
}

// Global returns the global model the aggregation rounds update.
//
// Aggregation exchanges trainable parameters only. Layer state outside
// Params() — batch normalisation running mean/variance — is updated on the
// workers during their local forward passes but never folded back, so the
// global chain keeps its initial running statistics (the classic FedAvg/
// batch-norm caveat). Before evaluating the global model in inference mode,
// calibrate those statistics with a few forward passes in training mode
// over representative data, or evaluate on a worker replica instead.
func (f *Fleet) Global() *chain.Chain { return f.global }

// Workers returns the fleet members.
func (f *Fleet) Workers() []*Worker { return f.workers }

// ModelBytes returns the size of one full-model update on the wire (the
// serialised fp64 parameter payload), the unit of the traffic accounting.
func (f *Fleet) ModelBytes() int64 { return f.modelBytes }

// Close releases the workers' spill stores.
func (f *Fleet) Close() error {
	var first error
	for _, w := range f.workers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// roundRNG derives the deterministic generator for one round's fleet
// decisions. It depends only on the seed and the round index, so Round(r)
// draws identically whether or not earlier rounds ran.
func (f *Fleet) roundRNG(round int) *tensor.RNG {
	return tensor.NewRNG(f.cfg.Seed ^ (uint64(round+1) * 0x9e3779b97f4a7c15))
}

// Round executes one aggregation round: select participants, broadcast the
// global parameters, run the participants concurrently (with any configured
// straggler delays and dropout failures), fold the surviving updates in
// ascending worker order, and account the round's traffic.
//
// Every stochastic decision is drawn from a per-round seeded generator in
// worker-index order before any goroutine starts, and the fold order is
// fixed, so the updated global parameters are bit-identical regardless of
// how the goroutines are scheduled.
func (f *Fleet) Round(round int) (RoundStats, error) {
	roundStart := time.Now()
	fo := fleetObsHandles()
	tr := obs.DefaultTracer()
	roundSpan := tr.Span("round", round, -1)
	n := len(f.workers)
	rs := RoundStats{Round: round, Workers: make([]WorkerRoundStats, n)}
	for i := range rs.Workers {
		rs.Workers[i].Worker = i
	}

	// Deterministic pre-draws: participants, then dropout, in index order.
	rng := f.roundRNG(round)
	participants := f.selectParticipants(rng)
	dropped := make([]bool, n)
	if f.cfg.DropoutRate > 0 {
		for _, i := range participants {
			dropped[i] = rng.Float64() < f.cfg.DropoutRate
		}
	}

	// Broadcast: every participant downloads the current global model.
	bSpan := tr.Span("broadcast", round, -1)
	for _, i := range participants {
		w := f.workers[i]
		for k, p := range w.Chain.Params() {
			copy(p.Value.Data(), f.globalPs[k].Value.Data())
		}
		rs.Workers[i].Participated = true
		rs.Workers[i].DownloadBytes = f.modelBytes
		rs.DownlinkBytes += f.modelBytes
	}
	bSpan.End()

	// Concurrent local computation, one goroutine per surviving participant.
	// Goroutine i writes only updates[i], errs[i], encBytes[i] and
	// rs.Workers[i] (and its own compressor's residual state).
	updates := make([]*Update, n)
	errs := make([]error, n)
	encBytes := make([]int64, n)
	var wg sync.WaitGroup
	for _, i := range participants {
		if dropped[i] {
			rs.Workers[i].Dropped = true
			rs.Dropouts++
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ws := &rs.Workers[i]
			if f.cfg.StragglerDelay != nil {
				if d := f.cfg.StragglerDelay(round, i); d > 0 {
					ws.Delay = d
					time.Sleep(d)
				}
			}
			start := time.Now()
			ltSpan := tr.Span("local-train", round, i)
			u, err := f.agg.Local(f.workers[i], round)
			ltSpan.End()
			ws.Duration = time.Since(start)
			if err != nil {
				errs[i] = err
				return
			}
			u.Worker = i
			// Compression: encode the update, then replace its tensors with
			// the decoded reconstruction — the fold sees exactly what a
			// network peer would, and ValidateUpdate screens the decoded
			// values (a NaN surfacing only after dequantization is caught
			// here, same as on the raw path).
			if f.comps != nil && u.Samples > 0 {
				upSpan := tr.Span("upload", round, i)
				enc, err := f.comps[i].Encode(u.Vecs)
				if err != nil {
					errs[i] = err
					return
				}
				dec, err := compress.Decode(enc.Data)
				if err != nil {
					errs[i] = err
					return
				}
				u.Vecs = dec.Vecs
				encBytes[i] = int64(len(enc.Data))
				upSpan.EndDetail(fmt.Sprintf("bytes=%d", encBytes[i]))
			}
			updates[i] = &u
		}(i)
	}
	wg.Wait()

	// Collect in ascending worker order — the deterministic fold order the
	// Aggregator contract requires — and account the upload traffic.
	var folded []Update
	var maxUpload int64
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return rs, fmt.Errorf("fleet: round %d: worker %s: %w", round, f.workers[i].Spec.Name, errs[i])
		}
		u := updates[i]
		if u == nil || u.Samples == 0 {
			// Not selected, dropped, or an empty shard: nothing to upload.
			continue
		}
		ws := &rs.Workers[i]
		ws.Samples = u.Samples
		ws.Loss = u.Loss
		ws.ForwardEvals = u.ForwardEvals
		ws.BackwardEvals = u.BackwardEvals
		ws.PeakStates = u.PeakStates
		ws.PeakRAMBytes = u.PeakRAMBytes
		ws.PeakDiskBytes = u.PeakDiskBytes
		ws.DiskWrites = u.DiskWrites
		ws.DiskReads = u.DiskReads
		upload := f.modelBytes
		if f.comps != nil {
			upload = encBytes[i]
		}
		ws.UploadBytes = upload
		ws.RawUploadBytes = f.modelBytes
		rs.UplinkBytes += upload
		rs.RawUplinkBytes += f.modelBytes
		if upload > maxUpload {
			maxUpload = upload
		}
		rs.Participants++
		f.workers[i].roundsDone++
		f.workers[i].samplesDone += int64(u.Samples)
		folded = append(folded, *u)
	}
	if len(folded) > 0 {
		fSpan := tr.Span("fold", round, -1)
		if err := f.agg.Fold(f.globalPs, folded); err != nil {
			return rs, fmt.Errorf("fleet: round %d: %s fold: %w", round, f.agg.Name(), err)
		}
		fSpan.End()
	}
	rs.Loss = WeightedLoss(folded)
	rs.ModeledUplink = TransferTime(maxUpload, f.cfg.UplinkMbps)
	f.rawSent += rs.RawUplinkBytes
	f.encSent += rs.UplinkBytes
	rs.WallClock = time.Since(roundStart)
	roundSpan.End()
	fo.record(f, &rs)
	return rs, nil
}

// TransferTime models how long the given payload takes on a link of the
// given rate — the uplink-phase bound a synchronous round waits on its
// largest upload.
func TransferTime(bytes int64, mbps float64) time.Duration {
	if bytes <= 0 || mbps <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) * 8 / (mbps * 1e6) * float64(time.Second))
}

// selectParticipants draws the round's participant set from the workers
// with non-empty shards (an idle worker has nothing to train or upload, so
// it exchanges no traffic either): all of them under full participation,
// otherwise a uniform subset of the size edgesim.ParticipantsPerRound
// prescribes, returned in ascending order.
func (f *Fleet) selectParticipants(rng *tensor.RNG) []int {
	n := len(f.active)
	k := edgesim.ParticipantsPerRound(n, f.cfg.Participation)
	if k >= n {
		return f.active
	}
	perm := rng.Perm(n)[:k]
	sel := make([]int, 0, k)
	for _, p := range perm {
		sel = append(sel, f.active[p])
	}
	sort.Ints(sel)
	return sel
}

// WeightedLoss is the sample-weighted mean loss of the folded updates — the
// round loss both the in-process engine and the coord coordinator report.
func WeightedLoss(updates []Update) float64 {
	var total, sum float64
	for _, u := range updates {
		if u.Samples <= 0 {
			continue
		}
		total += float64(u.Samples)
		sum += float64(u.Samples) * u.Loss
	}
	if total == 0 {
		return 0
	}
	return sum / total
}

// Run executes the configured number of rounds and assembles the report. It
// is RunFrom from round zero with no checkpointing.
func (f *Fleet) Run() (*Report, error) {
	return f.RunFrom(0, nil, 0)
}

// FederatedModel maps a measured fleet run onto the analytical federated
// model of internal/edgesim: the same count of trainable (non-idle)
// workers, round count, measured full-model update size and participation
// fraction, over the default node workload. edgesim.SimulateFederated on
// the returned config reproduces the fleet's measured uplink and downlink
// byte totals exactly (absent dropout, which the analytical model does not
// represent), which is the cross-validation between the executable system
// and the cost model.
func (f *Fleet) FederatedModel() edgesim.FederatedConfig {
	fc := edgesim.DefaultFleetConfig()
	fc.Nodes = len(f.active)
	fc.Node.ModelBytes = f.modelBytes
	// With compression enabled, hand the analytical model the measured
	// encoded-to-raw uplink fraction, so its predicted traffic tracks what
	// the codec actually achieved on this run's updates (call after Run;
	// before any round the fraction defaults to 1).
	fraction := 1.0
	if f.spec.Enabled() && f.rawSent > 0 {
		fraction = float64(f.encSent) / float64(f.rawSent)
		if fraction > 1 {
			fraction = 1
		}
	}
	return edgesim.FederatedConfig{
		Fleet:          fc,
		Rounds:         f.cfg.Rounds,
		UpdateFraction: fraction,
		Participation:  f.cfg.Participation,
	}
}
