package fleet

import (
	"fmt"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/obs/health"
)

// Durable round checkpoints and elastic resume. A fleet checkpoint captures
// the state that persists across rounds: the global model parameters, the
// global optimizer's state (gradient all-reduce), each worker's local
// optimizer state (FedAvg momentum/Adam), per-worker progress counters and
// the next round to run. Everything else is reconstructed per round — every
// participant starts a round by downloading the global parameters, and all
// stochastic fleet decisions are drawn from a generator derived only from
// (seed, round) — so a restarted process resumes from the last durable round
// bit-identical to a never-interrupted fleet.
//
// Resume is elastic: worker state is matched by worker index, a rejoining
// worker picks its saved optimizer state back up, a newly joined worker
// starts with fresh state, and state saved for workers no longer configured
// is dropped. Bit-identity with an uninterrupted run is guaranteed when the
// fleet configuration (membership, seed, aggregation) is unchanged.

// GlobalOptimizerHolder is implemented by aggregators that apply a global
// optimizer whose state must survive checkpoint/resume (GradAllReduce).
// Checkpointing callers — the fleet's own session capture and the
// distributed coordinator's durable state — type-assert the aggregator
// against it to decide whether a global optimizer must be saved/restored.
type GlobalOptimizerHolder interface {
	GlobalOptimizer() trainer.Optimizer
}

// GlobalOptimizer exposes the all-reduce aggregator's global optimizer for
// checkpointing.
func (a *GradAllReduce) GlobalOptimizer() trainer.Optimizer { return a.Opt }

// CaptureSession assembles the fleet's durable state with the given next
// round cursor. Tensors are cloned; the fleet may keep running.
func (f *Fleet) CaptureSession(nextRound int) (*ckpt.Session, error) {
	s := &ckpt.Session{
		Kind:           "fleet",
		LibraryVersion: ckpt.LibraryVersion,
		Round:          nextRound,
		BatchSize:      f.cfg.BatchSize,
		Seed:           f.cfg.Seed,
		Params:         ckpt.CaptureParams(f.globalPs),
		LayerState:     ckpt.CaptureLayerState(f.global.Stages),
	}
	if h, ok := f.agg.(GlobalOptimizerHolder); ok {
		opt, err := trainer.CaptureOptimizerState(h.GlobalOptimizer(), f.globalPs)
		if err != nil {
			return nil, fmt.Errorf("fleet: capturing global optimizer state: %w", err)
		}
		s.Opt = opt
	}
	for _, w := range f.workers {
		ws, err := w.CaptureState()
		if err != nil {
			return nil, err
		}
		s.Workers = append(s.Workers, ws)
	}
	return s, nil
}

// CaptureState captures the worker's durable per-round state — progress
// counters and local optimizer state — as the checkpoint worker record.
// Tensors are cloned; the worker may keep training. This is the unit both
// fleet checkpoints and the coord protocol's rejoin recovery exchange.
func (w *Worker) CaptureState() (ckpt.WorkerState, error) {
	opt, err := trainer.CaptureOptimizerState(w.opt, w.Chain.Params())
	if err != nil {
		return ckpt.WorkerState{}, fmt.Errorf("fleet: capturing %s optimizer state: %w", w.Spec.Name, err)
	}
	return ckpt.WorkerState{
		Index:   w.Index,
		Name:    w.Spec.Name,
		Rounds:  w.roundsDone,
		Samples: w.samplesDone,
		Opt:     opt,
	}, nil
}

// RestoreState applies a previously captured worker record: local optimizer
// state (the optimizer kind must match) and progress counters.
func (w *Worker) RestoreState(ws ckpt.WorkerState) error {
	if err := trainer.RestoreOptimizerState(w.opt, w.Chain.Params(), ws.Opt); err != nil {
		return fmt.Errorf("fleet: restoring %s optimizer state: %w", w.Spec.Name, err)
	}
	w.roundsDone = ws.Rounds
	w.samplesDone = ws.Samples
	return nil
}

// SaveCheckpoint durably writes the fleet state into the directory and
// returns the checkpoint file name.
func (f *Fleet) SaveCheckpoint(d *ckpt.Dir, nextRound int, opts ...ckpt.Option) (string, error) {
	s, err := f.CaptureSession(nextRound)
	if err != nil {
		return "", err
	}
	return d.Save(s, opts...)
}

// ResumeFrom restores the fleet from the directory's newest loadable
// checkpoint and returns the next round to run.
func (f *Fleet) ResumeFrom(d *ckpt.Dir) (int, error) {
	s, name, err := d.Load()
	if err != nil {
		return 0, err
	}
	next, err := f.RestoreSession(s)
	if err != nil {
		return 0, fmt.Errorf("fleet: restoring %s: %w", name, err)
	}
	return next, nil
}

// RestoreSession applies a loaded fleet session and returns its next-round
// cursor.
func (f *Fleet) RestoreSession(s *ckpt.Session) (int, error) {
	if s.Kind != "fleet" {
		return 0, fmt.Errorf("fleet: checkpoint kind is %q, want \"fleet\"", s.Kind)
	}
	if s.Seed != f.cfg.Seed {
		// The per-round generators derive from the seed alone; resuming under
		// a different seed would draw different participants/dropouts and
		// silently break bit-identity with the original run.
		return 0, fmt.Errorf("fleet: checkpoint was written with seed %d, this fleet is configured with seed %d", s.Seed, f.cfg.Seed)
	}
	if s.BatchSize != f.cfg.BatchSize {
		// RoundBatch visits shard batches round-robin by the local batch
		// size, so resuming under a different one silently changes which
		// samples the remaining rounds train on.
		return 0, fmt.Errorf("fleet: checkpoint was written with batch size %d, this fleet is configured with %d", s.BatchSize, f.cfg.BatchSize)
	}
	// Pre-check every optimizer kind BEFORE mutating anything, so a
	// mismatched resume leaves the fleet untouched (the all-or-nothing
	// restore contract).
	h, hasGlobalOpt := f.agg.(GlobalOptimizerHolder)
	if !hasGlobalOpt && (s.Opt.Name != "" || s.Opt.Step != 0 || len(s.Opt.Slots) > 0) {
		// A checkpoint written by an aggregator with a global optimizer
		// (all-reduce) cannot be resumed into one without — dropping that
		// state would silently change the trajectory.
		return 0, fmt.Errorf("fleet: checkpoint carries global %q optimizer state but aggregator %q has no global optimizer",
			s.Opt.Name, f.agg.Name())
	}
	if hasGlobalOpt && s.Opt.Name != h.GlobalOptimizer().Name() {
		return 0, fmt.Errorf("fleet: checkpoint has global %q optimizer state but aggregator %q uses %q",
			s.Opt.Name, f.agg.Name(), h.GlobalOptimizer().Name())
	}
	savedWorkers := make(map[int]*ckpt.WorkerState, len(s.Workers))
	for i := range s.Workers {
		savedWorkers[s.Workers[i].Index] = &s.Workers[i]
	}
	for _, w := range f.workers {
		if ws, ok := savedWorkers[w.Index]; ok && ws.Opt.Name != w.opt.Name() {
			return 0, fmt.Errorf("fleet: checkpoint has %q optimizer state for %s but the worker uses %q",
				ws.Opt.Name, w.Spec.Name, w.opt.Name())
		}
	}
	if err := s.ApplyParams(f.globalPs); err != nil {
		return 0, err
	}
	if err := s.ApplyLayerState(f.global.Stages); err != nil {
		return 0, err
	}
	if hasGlobalOpt {
		if err := trainer.RestoreOptimizerState(h.GlobalOptimizer(), f.globalPs, s.Opt); err != nil {
			return 0, fmt.Errorf("fleet: restoring global optimizer state: %w", err)
		}
	}
	for _, w := range f.workers {
		ws, ok := savedWorkers[w.Index]
		if !ok {
			continue // a worker that joined after the checkpoint starts fresh
		}
		if err := w.RestoreState(*ws); err != nil {
			return 0, err
		}
	}
	return s.Round, nil
}

// RunFrom executes rounds startRound..Rounds-1 and assembles the report for
// them. When d is non-nil it checkpoints durably: after every round r with
// (r+1) divisible by everyRounds (an absolute cadence, so an interrupted and
// resumed run checkpoints at the same rounds as an uninterrupted one), and
// once after the final round. Run is RunFrom(0, nil, 0).
func (f *Fleet) RunFrom(startRound int, d *ckpt.Dir, everyRounds int, opts ...ckpt.Option) (*Report, error) {
	if startRound < 0 || startRound > f.cfg.Rounds {
		return nil, fmt.Errorf("fleet: resume round %d outside [0, %d]", startRound, f.cfg.Rounds)
	}
	rep := f.newReport()
	// The same declarative health rules the distributed coordinator
	// evaluates run here at every round boundary; firings land in the
	// report's ALERTS section and the fleet_alerts_total counter.
	mon := health.NewMonitor()
	for r := startRound; r < f.cfg.Rounds; r++ {
		rs, err := f.Round(r)
		if err != nil {
			return nil, err
		}
		rep.Add(rs)
		mon.ObserveRound(rs.HealthStats())
		if d != nil && everyRounds > 0 && (r+1)%everyRounds == 0 && r+1 < f.cfg.Rounds {
			if _, err := f.SaveCheckpoint(d, r+1, opts...); err != nil {
				return nil, fmt.Errorf("fleet: checkpointing after round %d: %w", r, err)
			}
		}
	}
	rep.Alerts = mon.Alerts()
	if d != nil {
		if _, err := f.SaveCheckpoint(d, f.cfg.Rounds, opts...); err != nil {
			return nil, fmt.Errorf("fleet: writing completion checkpoint: %w", err)
		}
	}
	return rep, nil
}
