package fleet

import (
	"errors"
	"fmt"
	"math"

	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/obs"
)

// ErrBadUpdate is the typed error wrapping every update-validation failure:
// a payload that does not match the global model's parameters or carries
// non-finite values. Folding such an update would poison the global model
// (one NaN contaminates every weight it is averaged into), so aggregators
// reject the update before touching any global state. Callers distinguish a
// misbehaving worker from an engine failure with errors.Is(err, ErrBadUpdate).
var ErrBadUpdate = errors.New("fleet: invalid update")

// ValidateUpdate checks one worker's update against the global parameters:
// positive sample count, one payload tensor per parameter, matching shapes,
// and every value finite. A nil error means the update is structurally safe
// to fold. Both shipped aggregators call this on every update before
// mutating anything, so a malformed or poisoned remote update can never
// corrupt the global model mid-fold.
func ValidateUpdate(global []*nn.Param, u Update) error {
	reg := obs.Default()
	reg.Counter("fleet_validations_total", "Updates screened by ValidateUpdate before folding.").Inc()
	reject := func(err error) error {
		reg.Counter("fleet_validation_rejections_total", "Updates rejected by ValidateUpdate (structural damage or non-finite values).").Inc()
		obs.DefaultTracer().Event("validate", -1, u.Worker, "rejected: "+err.Error())
		return err
	}
	if u.Samples <= 0 {
		return reject(fmt.Errorf("%w: worker %d: non-positive sample count %d", ErrBadUpdate, u.Worker, u.Samples))
	}
	if len(u.Vecs) != len(global) {
		return reject(fmt.Errorf("%w: worker %d: %d payload tensors for %d parameters", ErrBadUpdate, u.Worker, len(u.Vecs), len(global)))
	}
	for k, v := range u.Vecs {
		if v == nil {
			return reject(fmt.Errorf("%w: worker %d: nil payload tensor for parameter %q", ErrBadUpdate, u.Worker, global[k].Name))
		}
		if !v.SameShape(global[k].Value) {
			return reject(fmt.Errorf("%w: worker %d: parameter %q payload shape %v, want %v",
				ErrBadUpdate, u.Worker, global[k].Name, v.Shape(), global[k].Value.Shape()))
		}
		for _, x := range v.Data() {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return reject(fmt.Errorf("%w: worker %d: non-finite value %v in parameter %q", ErrBadUpdate, u.Worker, x, global[k].Name))
			}
		}
	}
	return nil
}
