package fleet

import (
	"errors"
	"testing"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/trainer"
)

// fleetResumeConfig builds a fleet config with per-worker stateful
// optimisers and fleet-scale failure knobs, so resume has real durable
// state to carry: momentum velocities per worker, dropout draws per round.
func fleetResumeConfig(agg Aggregator, seed uint64) Config {
	return Config{
		Workers: []WorkerSpec{
			{Device: device.Waggle()},
			{Device: device.JetsonNano()},
			{Device: device.RaspberryPi()},
		},
		Rounds:      4,
		Optimizer:   func() trainer.Optimizer { return trainer.NewMomentum(0.05, 0.9) },
		Aggregator:  agg,
		Seed:        seed,
		DropoutRate: 0.3, // some selected workers drop and later rejoin
	}
}

// TestFleetResumeBitIdentical kills a fleet after two rounds (checkpointed
// durably) and resumes it in a fresh process: the final global parameters
// must be bit-identical to a never-interrupted fleet — including rounds in
// which a worker dropped out and rejoined, and per-worker optimizer state
// carried across the restart.
func TestFleetResumeBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		agg  func() Aggregator
	}{
		{"fedavg-momentum", func() Aggregator { return NewFedAvg() }},
		{"allreduce-adam", func() Aggregator { return NewGradAllReduce(trainer.NewAdam(0.01)) }},
	}
	ds := makeDataset(12, 5)
	factory := resnetFactory(11)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := fleetResumeConfig(tc.agg(), 21)

			// Uninterrupted reference fleet.
			ref, err := New(cfg, factory, ds)
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			if _, err := ref.Run(); err != nil {
				t.Fatal(err)
			}
			want := globalParams(t, ref)

			// Victim fleet: two rounds, durable checkpoint, then "power loss"
			// (the process state is simply abandoned).
			dir, err := ckpt.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			victim, err := New(fleetResumeConfig(tc.agg(), 21), factory, ds)
			if err != nil {
				t.Fatal(err)
			}
			defer victim.Close()
			for r := 0; r < 2; r++ {
				if _, err := victim.Round(r); err != nil {
					t.Fatalf("victim round %d: %v", r, err)
				}
			}
			if _, err := victim.SaveCheckpoint(dir, 2); err != nil {
				t.Fatalf("SaveCheckpoint: %v", err)
			}

			// Restarted process: fresh fleet (fresh replicas, fresh worker
			// optimisers), elastic resume, remaining rounds.
			resumed, err := New(fleetResumeConfig(tc.agg(), 21), factory, ds)
			if err != nil {
				t.Fatal(err)
			}
			defer resumed.Close()
			start, err := resumed.ResumeFrom(dir)
			if err != nil {
				t.Fatalf("ResumeFrom: %v", err)
			}
			if start != 2 {
				t.Fatalf("resume round %d, want 2", start)
			}
			if _, err := resumed.RunFrom(start, dir, 1); err != nil {
				t.Fatal(err)
			}
			assertSameParams(t, want, globalParams(t, resumed), tc.name+" resumed vs uninterrupted")

			// The completion checkpoint resumes to "nothing left to do".
			again, err := New(fleetResumeConfig(tc.agg(), 21), factory, ds)
			if err != nil {
				t.Fatal(err)
			}
			defer again.Close()
			start, err = again.ResumeFrom(dir)
			if err != nil {
				t.Fatal(err)
			}
			if start != cfg.Rounds {
				t.Fatalf("completion cursor %d, want %d", start, cfg.Rounds)
			}
			rep, err := again.RunFrom(start, nil, 0)
			if err != nil || len(rep.Rounds) != 0 {
				t.Fatalf("resumed completed fleet ran %d rounds (err %v)", len(rep.Rounds), err)
			}
			assertSameParams(t, want, globalParams(t, again), tc.name+" completion checkpoint")
		})
	}
}

// TestFleetRunFromPeriodicCheckpoints runs a fleet with periodic round
// checkpoints and asserts the directory ends at the completion cursor, with
// per-worker progress counters recorded.
func TestFleetRunFromPeriodicCheckpoints(t *testing.T) {
	ds := makeDataset(9, 3)
	cfg := fleetResumeConfig(NewFedAvg(), 8)
	cfg.DropoutRate = 0
	f, err := New(cfg, mlpFactory(2), ds)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dir, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunFrom(0, dir, 2); err != nil {
		t.Fatal(err)
	}
	s, _, err := dir.Load()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "fleet" || s.Round != cfg.Rounds {
		t.Fatalf("final checkpoint kind %q round %d, want fleet/%d", s.Kind, s.Round, cfg.Rounds)
	}
	if len(s.Workers) != len(cfg.Workers) {
		t.Fatalf("checkpoint has %d workers, want %d", len(s.Workers), len(cfg.Workers))
	}
	for _, w := range s.Workers {
		if w.Rounds != int64(cfg.Rounds) {
			t.Fatalf("worker %d folded %d rounds, want %d (full participation, no dropout)", w.Index, w.Rounds, cfg.Rounds)
		}
		if w.Samples <= 0 {
			t.Fatalf("worker %d recorded no samples", w.Index)
		}
		if w.Opt.Name != "momentum" || len(w.Opt.Slots) == 0 {
			t.Fatalf("worker %d optimizer state not captured: %+v", w.Index, w.Opt.Name)
		}
	}
}

// TestFleetResumeRejectsMismatches pins the guard rails: wrong seed, wrong
// checkpoint kind and an empty directory all fail loudly.
func TestFleetResumeRejectsMismatches(t *testing.T) {
	ds := makeDataset(6, 3)
	cfg := fleetResumeConfig(NewFedAvg(), 13)
	f, err := New(cfg, mlpFactory(2), ds)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dir, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SaveCheckpoint(dir, 1); err != nil {
		t.Fatal(err)
	}

	// Different seed: the per-round draws would diverge from the original
	// trajectory, so resume must refuse.
	other, err := New(fleetResumeConfig(NewFedAvg(), 14), mlpFactory(2), ds)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if _, err := other.ResumeFrom(dir); err == nil {
		t.Fatal("resume with a different seed succeeded")
	}

	// A trainer checkpoint is not a fleet checkpoint.
	s := &ckpt.Session{Kind: "trainer", Seed: 13}
	if _, err := dir.Save(s); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ResumeFrom(dir); err == nil {
		t.Fatal("resume from a trainer checkpoint succeeded")
	}

	empty, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ResumeFrom(empty); !errors.Is(err, ckpt.ErrNoCheckpoint) {
		t.Fatalf("resume from empty dir: want ErrNoCheckpoint, got %v", err)
	}

	// A checkpoint written by an all-reduce fleet (global optimizer state)
	// must not resume into a FedAvg fleet that would silently drop it.
	arCfg := fleetResumeConfig(NewGradAllReduce(trainer.NewMomentum(0.05, 0.9)), 13)
	ar, err := New(arCfg, mlpFactory(2), ds)
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Close()
	if _, err := ar.Round(0); err != nil {
		t.Fatal(err)
	}
	arDir, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ar.SaveCheckpoint(arDir, 1); err != nil {
		t.Fatal(err)
	}
	fedavg, err := New(fleetResumeConfig(NewFedAvg(), 13), mlpFactory(2), ds)
	if err != nil {
		t.Fatal(err)
	}
	defer fedavg.Close()
	if _, err := fedavg.ResumeFrom(arDir); err == nil {
		t.Fatal("fedavg fleet resumed an allreduce checkpoint, dropping its global optimizer state")
	}

	// A global optimizer of a different kind must be rejected BEFORE any
	// state is applied: the refused fleet's parameters stay untouched.
	adamFleet, err := New(fleetResumeConfig(NewGradAllReduce(trainer.NewAdam(0.01)), 13), mlpFactory(2), ds)
	if err != nil {
		t.Fatal(err)
	}
	defer adamFleet.Close()
	before := globalParams(t, adamFleet)
	if _, err := adamFleet.ResumeFrom(arDir); err == nil {
		t.Fatal("adam all-reduce fleet resumed a momentum checkpoint")
	}
	assertSameParams(t, before, globalParams(t, adamFleet), "refused resume must not mutate the fleet")
}
