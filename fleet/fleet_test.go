package fleet

import (
	"testing"
	"time"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/parallel"
	"github.com/edgeml/edgetrain/internal/resnet"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/internal/vision"
)

// mlpFactory returns a deterministic factory for a 12-stage MLP chain over
// flattened 8x8 images: deep enough that tight budgets auto-select the
// two-level flash-spilling strategy, mid budgets Revolve, large ones
// store-all.
func mlpFactory(seed uint64) func() (*chain.Chain, error) {
	return func() (*chain.Chain, error) {
		rng := tensor.NewRNG(seed)
		return chain.New(
			nn.NewFlatten("flatten"),
			nn.NewLinear("fc1", 64, 32, true, rng),
			nn.NewReLU("relu1"),
			nn.NewLinear("fc2", 32, 32, true, rng),
			nn.NewReLU("relu2"),
			nn.NewLinear("fc3", 32, 32, true, rng),
			nn.NewReLU("relu3"),
			nn.NewLinear("fc4", 32, 32, true, rng),
			nn.NewReLU("relu4"),
			nn.NewLinear("fc5", 32, 16, true, rng),
			nn.NewReLU("relu5"),
			nn.NewLinear("fc6", 16, vision.NumClasses, true, rng),
		), nil
	}
}

// resnetFactory returns a deterministic factory for the 7-stage small ResNet
// (with batch normalisation, so worker batch statistics matter).
func resnetFactory(seed uint64) func() (*chain.Chain, error) {
	return func() (*chain.Chain, error) {
		cfg := resnet.DefaultSmallConfig()
		cfg.Stages = 1
		cfg.NumClasses = vision.NumClasses
		cfg.Seed = seed
		net, err := resnet.BuildSmall(cfg)
		if err != nil {
			return nil, err
		}
		return chain.FromSequential(net), nil
	}
}

// makeDataset builds n labelled 8x8 frames with a viewpoint drift across the
// sample index, so contiguous shards are non-IID.
func makeDataset(n int, seed uint64) *trainer.SliceDataset {
	rng := tensor.NewRNG(seed)
	var samples []trainer.Batch
	for i := 0; i < n; i++ {
		c := vision.Class(i % vision.NumClasses)
		vp := 0.2 + 0.6*float64(i)/float64(max(n-1, 1))
		samples = append(samples, trainer.Batch{
			Images: vision.Sample(rng, c, vp, 8),
			Labels: []int{int(c)},
		})
	}
	return trainer.NewSliceDataset(samples)
}

// budgets computes a worker byte budget as weights + states*activation for
// the given factory and full-shard batch size.
func budgetFor(t *testing.T, factory func() (*chain.Chain, error), shardSamples int, states float64) int64 {
	t.Helper()
	c, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	weight := 2 * nn.ParamBytes(c.Stages)
	act := int64(shardSamples * 64 * 8)
	return weight + int64(states*float64(act))
}

func globalParams(t *testing.T, f *Fleet) []*tensor.Tensor {
	t.Helper()
	var ps []*tensor.Tensor
	for _, p := range f.Global().Params() {
		ps = append(ps, p.Value.Clone())
	}
	return ps
}

func assertSameParams(t *testing.T, a, b []*tensor.Tensor, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d params vs %d", what, len(a), len(b))
	}
	for i := range a {
		ad, bd := a[i].Data(), b[i].Data()
		for j := range ad {
			if ad[j] != bd[j] {
				t.Fatalf("%s: param %d element %d: %v != %v", what, i, j, ad[j], bd[j])
			}
		}
	}
}

// runFleet builds and runs a fleet, returning the report and final params.
func runFleet(t *testing.T, cfg Config, factory func() (*chain.Chain, error), ds trainer.Dataset) (*Report, []*tensor.Tensor) {
	t.Helper()
	f, err := New(cfg, factory, ds)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep, globalParams(t, f)
}

func TestFleetHeterogeneousStrategySelection(t *testing.T) {
	factory := mlpFactory(3)
	ds := makeDataset(12, 5)
	cfg := Config{
		Workers: []WorkerSpec{
			{Device: device.JetsonNano(), BudgetBytes: budgetFor(t, factory, 4, 16)},
			{Device: device.Waggle(), BudgetBytes: budgetFor(t, factory, 4, 5.5)},
			{Device: device.RaspberryPi(), BudgetBytes: budgetFor(t, factory, 4, 3.5)},
		},
		Rounds: 1,
		Seed:   1,
	}
	f, err := New(cfg, factory, ds)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := []string{"storeall", "revolve", "twolevel"}
	for i, w := range f.Workers() {
		if w.Choice.Strategy != want[i] {
			t.Errorf("worker %d (%s): auto-selected %q, want %q", i, w.Spec.Name, w.Choice.Strategy, want[i])
		}
	}
	rep, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The two-level worker must have really spilled to flash.
	if rep.Workers[2].DiskWrites == 0 || rep.Workers[2].PeakDiskBytes == 0 {
		t.Errorf("twolevel worker reported no flash traffic: %+v", rep.Workers[2])
	}
	// The store-all worker must not have.
	if rep.Workers[0].DiskWrites != 0 {
		t.Errorf("storeall worker spilled: %+v", rep.Workers[0])
	}
}

// TestFleetDeterminism: the trained weights are bit-identical across
// parallel-engine worker counts, across shuffled worker completion orders
// (injected straggler delays), and across repeated runs.
func TestFleetDeterminism(t *testing.T) {
	factory := mlpFactory(7)
	for _, mode := range []string{"fedavg", "allreduce"} {
		t.Run(mode, func(t *testing.T) {
			newCfg := func(delay func(round, worker int) time.Duration) Config {
				agg, err := NewAggregator(mode, trainer.NewSGD(0.05))
				if err != nil {
					t.Fatal(err)
				}
				return Config{
					Workers: []WorkerSpec{
						{Device: device.JetsonNano(), BudgetBytes: budgetFor(t, factory, 4, 16)},
						{Device: device.Waggle(), BudgetBytes: budgetFor(t, factory, 4, 5.5)},
						{Device: device.RaspberryPi(), BudgetBytes: budgetFor(t, factory, 4, 3.5)},
					},
					Rounds:         2,
					LocalEpochs:    2,
					Seed:           11,
					Aggregator:     agg,
					StragglerDelay: delay,
				}
			}
			ds := makeDataset(12, 5)
			_, base := runFleet(t, newCfg(nil), factory, ds)

			// Reverse the completion order: worker 0 finishes last.
			slow := func(round, worker int) time.Duration {
				return time.Duration(2-worker) * 15 * time.Millisecond
			}
			_, shuffled := runFleet(t, newCfg(slow), factory, ds)
			assertSameParams(t, base, shuffled, "shuffled completion order")

			// Different kernel-engine worker counts.
			prev := parallel.SetWorkers(3)
			defer parallel.SetWorkers(prev)
			_, par := runFleet(t, newCfg(nil), factory, ds)
			assertSameParams(t, base, par, "EDGETRAIN_WORKERS=3")
			parallel.SetWorkers(1)
			_, serial := runFleet(t, newCfg(nil), factory, ds)
			assertSameParams(t, base, serial, "EDGETRAIN_WORKERS=1")
		})
	}
}

func TestFleetPartialParticipationAndDropout(t *testing.T) {
	factory := mlpFactory(9)
	ds := makeDataset(16, 6)
	cfg := Config{
		Workers: []WorkerSpec{
			{Device: device.Waggle()}, {Device: device.Waggle()},
			{Device: device.Waggle()}, {Device: device.Waggle()},
		},
		Rounds:        6,
		Seed:          13,
		Participation: 0.5,
		DropoutRate:   0.4,
	}
	rep, first := runFleet(t, cfg, factory, ds)
	for _, rs := range rep.Rounds {
		selected := 0
		for _, ws := range rs.Workers {
			if ws.Participated {
				selected++
			}
			if ws.Dropped && ws.UploadBytes != 0 {
				t.Fatalf("round %d: dropped worker %d uploaded", rs.Round, ws.Worker)
			}
			if ws.Participated && ws.DownloadBytes != rep.ModelBytes {
				t.Fatalf("round %d: participant %d downloaded %d bytes", rs.Round, ws.Worker, ws.DownloadBytes)
			}
		}
		if selected != 2 { // ParticipantsPerRound(4, 0.5)
			t.Fatalf("round %d: %d workers selected, want 2", rs.Round, selected)
		}
		if rs.Participants+rs.Dropouts != selected {
			t.Fatalf("round %d: %d folded + %d dropped != %d selected", rs.Round, rs.Participants, rs.Dropouts, selected)
		}
		if rs.UplinkBytes != int64(rs.Participants)*rep.ModelBytes {
			t.Fatalf("round %d: uplink %d for %d participants", rs.Round, rs.UplinkBytes, rs.Participants)
		}
		if rs.DownlinkBytes != int64(selected)*rep.ModelBytes {
			t.Fatalf("round %d: downlink %d for %d selected", rs.Round, rs.DownlinkBytes, selected)
		}
	}
	// The dropout draws come from the seeded round generators: a second run
	// is bit-identical.
	_, second := runFleet(t, cfg, factory, ds)
	assertSameParams(t, first, second, "repeated run with dropout")
}

func TestFleetEmptyShards(t *testing.T) {
	factory := mlpFactory(15)
	ds := makeDataset(2, 8) // 2 samples across 3 workers: shard 2 is empty
	cfg := Config{
		Workers: []WorkerSpec{
			{Device: device.Waggle()}, {Device: device.Waggle()}, {Device: device.Waggle()},
		},
		Rounds: 2,
		Seed:   3,
	}
	rep, _ := runFleet(t, cfg, factory, ds)
	if rep.Workers[2].Strategy != "idle" {
		t.Fatalf("empty-shard worker strategy %q, want idle", rep.Workers[2].Strategy)
	}
	// An idle worker is never selected: no uploads, no downloads, no rounds.
	if rep.Workers[2].UploadBytes != 0 || rep.Workers[2].DownloadBytes != 0 || rep.Workers[2].Rounds != 0 {
		t.Fatalf("empty-shard worker exchanged traffic: %+v", rep.Workers[2])
	}
	for _, rs := range rep.Rounds {
		if rs.Participants != 2 {
			t.Fatalf("round %d: %d participants, want 2", rs.Round, rs.Participants)
		}
		if rs.DownlinkBytes != 2*rep.ModelBytes {
			t.Fatalf("round %d: downlink %d, want %d", rs.Round, rs.DownlinkBytes, 2*rep.ModelBytes)
		}
	}
}

// TestFedAvgMovesTowardShardModels pins the sample weighting of the FedAvg
// fold directly: with two single-parameter updates of known values and
// sample counts, the folded parameter is their weighted mean.
func TestFedAvgFoldWeighting(t *testing.T) {
	p := nn.NewParam("w", tensor.New(2))
	mk := func(samples int, v0, v1 float64) Update {
		vec := tensor.New(2)
		vec.Set(v0, 0)
		vec.Set(v1, 1)
		return Update{Samples: samples, Vecs: []*tensor.Tensor{vec}}
	}
	agg := NewFedAvg()
	if err := agg.Fold([]*nn.Param{p}, []Update{mk(3, 1, 10), mk(1, 5, 2)}); err != nil {
		t.Fatal(err)
	}
	want0 := 0.75*1 + 0.25*5
	want1 := 0.75*10 + 0.25*2
	if p.Value.At(0) != want0 || p.Value.At(1) != want1 {
		t.Fatalf("folded = (%v, %v), want (%v, %v)", p.Value.At(0), p.Value.At(1), want0, want1)
	}
}

func TestGradAllReduceFoldWeighting(t *testing.T) {
	p := nn.NewParam("w", tensor.New(1))
	p.Value.Set(1, 0)
	mk := func(samples int, g float64) Update {
		vec := tensor.New(1)
		vec.Set(g, 0)
		return Update{Samples: samples, Vecs: []*tensor.Tensor{vec}}
	}
	agg := NewGradAllReduce(trainer.NewSGD(1)) // lr 1: value -= folded gradient
	if err := agg.Fold([]*nn.Param{p}, []Update{mk(3, 2), mk(1, 6)}); err != nil {
		t.Fatal(err)
	}
	// Weighted mean gradient: 0.75*2 + 0.25*6 = 3; value 1 - 3 = -2.
	if got := p.Value.At(0); got != -2 {
		t.Fatalf("value after weighted all-reduce step = %v, want -2", got)
	}
}

func TestNewFleetValidation(t *testing.T) {
	factory := mlpFactory(1)
	ds := makeDataset(4, 1)
	if _, err := New(Config{}, factory, ds); err == nil {
		t.Error("no workers accepted")
	}
	if _, err := New(Config{Workers: []WorkerSpec{{}}, Participation: 1.5}, factory, ds); err == nil {
		t.Error("participation > 1 accepted")
	}
	if _, err := New(Config{Workers: []WorkerSpec{{}}, DropoutRate: 1}, factory, ds); err == nil {
		t.Error("dropout rate 1 accepted")
	}
	// A budget too small for even minimal Revolve must fail at New.
	cfg := Config{Workers: []WorkerSpec{{BudgetBytes: 64}}}
	if _, err := New(cfg, factory, ds); err == nil {
		t.Error("impossible budget accepted")
	}
	// A non-deterministic factory must be rejected.
	calls := uint64(0)
	bad := func() (*chain.Chain, error) {
		calls++
		return mlpFactory(calls)()
	}
	if _, err := New(Config{Workers: []WorkerSpec{{}}}, bad, ds); err == nil {
		t.Error("non-deterministic model factory accepted")
	}
}
