package fleet

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/edgeml/edgetrain/obs/health"
	"github.com/edgeml/edgetrain/plan"
)

// WorkerRoundStats reports one worker's share of one round.
type WorkerRoundStats struct {
	Worker       int
	Participated bool // selected for the round (received the broadcast)
	Dropped      bool // selected but failed before uploading
	Samples      int  // samples behind the worker's update (0 = no contribution)
	Loss         float64
	Delay        time.Duration // injected straggler delay
	Duration     time.Duration // wall-clock of the local computation

	// Execution cost of the local computation.
	ForwardEvals  int
	BackwardEvals int
	PeakStates    int
	PeakRAMBytes  int64 // peak retained-state bytes in RAM (excl. weights)
	PeakDiskBytes int64 // peak flash-resident checkpoint bytes
	DiskWrites    int
	DiskReads     int

	// Modeled traffic of the round for this worker. With compression
	// enabled, UploadBytes is the encoded blob size actually shipped and
	// RawUploadBytes the full fp64 update it replaced; otherwise the two
	// are equal.
	UploadBytes    int64
	RawUploadBytes int64
	DownloadBytes  int64

	// WireBytes is the worker's measured bytes on the wire for the round —
	// framed protocol bytes actually moved by a coord transport, both
	// directions. Zero for in-process fleet runs, which move no bytes.
	WireBytes int64
}

// RoundStats reports one aggregation round.
type RoundStats struct {
	Round        int
	Participants int // workers whose update was folded
	Dropouts     int // selected workers that failed before uploading
	Rejected     int // updates rejected (failed validation or wrong codec)
	Retries      int // attempts discarded below quorum before the commit
	Flaps        int // worker rejoin events since the previous round
	Loss         float64
	UplinkBytes  int64
	// RawUplinkBytes is what the round's uploads would have cost
	// uncompressed (equal to UplinkBytes when compression is off).
	RawUplinkBytes int64
	DownlinkBytes  int64
	// ModeledUplink is how long the round's largest upload would take at
	// the configured uplink rate — the upload-phase bound of a synchronous
	// round on the modeled link.
	ModeledUplink time.Duration
	// WallClock is the round's wall-clock time, broadcast through fold.
	WallClock time.Duration
	Workers   []WorkerRoundStats // index-aligned with the fleet's workers
}

// HealthStats maps one round's stats onto the health monitor's view.
// Shared by the in-process runner and the coord coordinator so both
// evaluate identical rules against identical accounting.
func (rs *RoundStats) HealthStats() health.Stats {
	s := health.Stats{
		Round:        rs.Round,
		Loss:         rs.Loss,
		Participants: rs.Participants,
		Dropouts:     rs.Dropouts,
		Rejected:     rs.Rejected,
		Retries:      rs.Retries,
		Flaps:        rs.Flaps,
		WallClock:    rs.WallClock,
	}
	for i := range rs.Workers {
		if ws := &rs.Workers[i]; ws.Samples > 0 {
			s.LocalDur = append(s.LocalDur, ws.Duration)
		}
	}
	return s
}

// WorkerSummary aggregates one worker over a whole run.
type WorkerSummary struct {
	Index        int
	Name         string
	Device       string
	BudgetBytes  int64
	ShardSamples int
	// Strategy is the checkpoint strategy the worker's budget auto-selected
	// ("storeall", "revolve", "twolevel"; "idle" for an empty shard).
	Strategy string
	// Choice carries the full auto-selection (slots, predicted footprint).
	Choice plan.AutoChoice

	Rounds         int // rounds whose fold included this worker
	Dropped        int // rounds lost to dropout
	PeakRAMBytes   int64
	PeakDiskBytes  int64
	DiskWrites     int
	DiskReads      int
	UploadBytes    int64
	RawUploadBytes int64
	DownloadBytes  int64
	// WireBytes is the worker's total measured bytes on the wire (zero for
	// in-process runs).
	WireBytes int64
}

// Report is the measured outcome of a fleet run.
type Report struct {
	Aggregator    string
	ModelBytes    int64 // one full-model update on the wire
	Participation float64
	// Compression is the canonical update-codec spec of the run ("" when
	// compression is off), and UplinkMbps the modeled uplink rate behind
	// ModeledUplink.
	Compression string
	UplinkMbps  float64
	Workers     []WorkerSummary
	Rounds      []RoundStats
	// Alerts is every training-health alert the run's monitor fired, in
	// firing order (empty for a healthy run).
	Alerts []health.Alert

	TotalUplinkBytes int64
	// TotalRawUplinkBytes is the run's uplink cost had every update shipped
	// uncompressed (equal to TotalUplinkBytes when compression is off).
	TotalRawUplinkBytes int64
	TotalDownlinkBytes  int64
	// TotalWireBytes is the run's total measured bytes on the wire (zero for
	// in-process runs).
	TotalWireBytes int64
	// ModeledUplink is the summed per-round modeled upload time.
	ModeledUplink time.Duration
	FinalLoss     float64
}

// CompressionRatio is the run's raw-to-encoded uplink ratio (1 when
// compression is off or nothing was uploaded).
func (rep *Report) CompressionRatio() float64 {
	if rep.TotalUplinkBytes <= 0 || rep.TotalRawUplinkBytes <= 0 {
		return 1
	}
	return float64(rep.TotalRawUplinkBytes) / float64(rep.TotalUplinkBytes)
}

// newReport pre-fills the per-worker summaries from the fleet configuration.
func (f *Fleet) newReport() *Report {
	rep := &Report{
		Aggregator:    f.agg.Name(),
		ModelBytes:    f.modelBytes,
		Participation: f.cfg.Participation,
		UplinkMbps:    f.cfg.UplinkMbps,
	}
	if f.spec.Enabled() {
		rep.Compression = f.spec.String()
	}
	for _, w := range f.workers {
		strategy := w.Choice.Strategy
		if w.Shard.Len() == 0 {
			strategy = "idle"
		}
		rep.Workers = append(rep.Workers, WorkerSummary{
			Index:        w.Index,
			Name:         w.Spec.Name,
			Device:       w.Spec.Device.Name,
			BudgetBytes:  w.Spec.BudgetBytes,
			ShardSamples: w.Shard.Len(),
			Strategy:     strategy,
			Choice:       w.Choice,
		})
	}
	return rep
}

// Add folds one round into the report, accumulating the per-worker
// summaries and run totals. Exported so the coord coordinator assembles its
// report with the same accounting an in-process run uses.
func (rep *Report) Add(rs RoundStats) {
	rep.Rounds = append(rep.Rounds, rs)
	rep.TotalUplinkBytes += rs.UplinkBytes
	rep.TotalRawUplinkBytes += rs.RawUplinkBytes
	rep.TotalDownlinkBytes += rs.DownlinkBytes
	rep.ModeledUplink += rs.ModeledUplink
	if rs.Participants > 0 {
		rep.FinalLoss = rs.Loss
	}
	for i := range rs.Workers {
		ws := &rs.Workers[i]
		sum := &rep.Workers[i]
		if ws.Samples > 0 {
			sum.Rounds++
		}
		if ws.Dropped {
			sum.Dropped++
		}
		sum.PeakRAMBytes = max(sum.PeakRAMBytes, ws.PeakRAMBytes)
		sum.PeakDiskBytes = max(sum.PeakDiskBytes, ws.PeakDiskBytes)
		sum.DiskWrites += ws.DiskWrites
		sum.DiskReads += ws.DiskReads
		sum.UploadBytes += ws.UploadBytes
		sum.RawUploadBytes += ws.RawUploadBytes
		sum.DownloadBytes += ws.DownloadBytes
		sum.WireBytes += ws.WireBytes
		rep.TotalWireBytes += ws.WireBytes
	}
}

func mb(b int64) float64 { return float64(b) / 1e6 }

// wallClockSummary returns the min/p50/p95/max of the rounds' wall-clock
// times. Percentiles use the nearest-rank method on the sorted durations;
// callers must ensure at least one round exists.
func (rep *Report) wallClockSummary() (mn, p50, p95, mx time.Duration) {
	ds := make([]time.Duration, 0, len(rep.Rounds))
	for _, rs := range rep.Rounds {
		ds = append(ds, rs.WallClock)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	rank := func(p float64) time.Duration {
		i := int(math.Ceil(p*float64(len(ds)))) - 1
		if i < 0 {
			i = 0
		}
		return ds[i]
	}
	return ds[0], rank(0.50), rank(0.95), ds[len(ds)-1]
}

// Render formats the report as the fleet counterpart of edgesim.Render.
func (rep *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet training report: %s, %d workers, %d rounds, %.2f MB model updates\n",
		rep.Aggregator, len(rep.Workers), len(rep.Rounds), mb(rep.ModelBytes))
	fmt.Fprintf(&b, "%-22s%-20s%12s%8s%12s%15s%12s%9s%8s%12s\n",
		"worker", "device", "budget (MB)", "shard", "strategy", "peak RAM (MB)", "flash (MB)", "writes", "reads", "wire (MB)")
	for _, w := range rep.Workers {
		fmt.Fprintf(&b, "%-22s%-20s%12.2f%8d%12s%15.3f%12.3f%9d%8d%12.2f\n",
			w.Name, w.Device, mb(w.BudgetBytes), w.ShardSamples, w.Strategy,
			mb(w.PeakRAMBytes), mb(w.PeakDiskBytes), w.DiskWrites, w.DiskReads, mb(w.WireBytes))
	}
	fmt.Fprintf(&b, "%-10s%14s%12s%10s%14s%16s%12s\n",
		"round", "participants", "dropouts", "loss", "uplink (MB)", "downlink (MB)", "wall (ms)")
	for _, rs := range rep.Rounds {
		fmt.Fprintf(&b, "%-10d%14d%12d%10.4f%14.2f%16.2f%12.1f\n",
			rs.Round, rs.Participants, rs.Dropouts, rs.Loss, mb(rs.UplinkBytes), mb(rs.DownlinkBytes),
			float64(rs.WallClock)/float64(time.Millisecond))
	}
	// Round wall-clock spread: straggler impact at a glance, without
	// reading every row. Omitted for empty reports.
	if len(rep.Rounds) > 0 {
		mn, p50, p95, mx := rep.wallClockSummary()
		fmt.Fprintf(&b, "round wall-clock: min %.1f ms, p50 %.1f ms, p95 %.1f ms, max %.1f ms\n",
			float64(mn)/float64(time.Millisecond), float64(p50)/float64(time.Millisecond),
			float64(p95)/float64(time.Millisecond), float64(mx)/float64(time.Millisecond))
	}
	fmt.Fprintf(&b, "totals: uplink %.2f MB, downlink %.2f MB, wire %.2f MB, final loss %.4f\n",
		mb(rep.TotalUplinkBytes), mb(rep.TotalDownlinkBytes), mb(rep.TotalWireBytes), rep.FinalLoss)
	// The compression line appears only on compressed runs, so uncompressed
	// reports render byte-identically to earlier releases.
	if rep.Compression != "" && rep.Compression != "none" {
		fmt.Fprintf(&b, "compression: %s, raw uplink %.2f MB -> %.2f MB (%.1fx), modeled upload %.2f s at %g Mbps\n",
			rep.Compression, mb(rep.TotalRawUplinkBytes), mb(rep.TotalUplinkBytes),
			rep.CompressionRatio(), rep.ModeledUplink.Seconds(), rep.UplinkMbps)
	}
	// The ALERTS section appears only when the run's health monitor fired,
	// so healthy reports render byte-identically to earlier releases.
	if len(rep.Alerts) > 0 {
		fmt.Fprintf(&b, "ALERTS (%d):\n", len(rep.Alerts))
		for _, a := range rep.Alerts {
			fmt.Fprintf(&b, "  %s\n", a)
		}
	}
	return b.String()
}
