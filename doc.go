// Package edgetrain is a Go reproduction of "Training on the Edge: The why
// and the how" (Kukreja et al., IPPS 2019).
//
// The repository contains everything the paper's argument rests on, built
// from scratch on the standard library:
//
//   - internal/tensor, internal/nn, internal/trainer — a small dense-tensor
//     and neural-network stack (convolutions, batch norm, residual blocks,
//     SGD/momentum/Adam) with true forward and backward passes, so that
//     checkpointed backpropagation can be validated against real gradients.
//   - internal/resnet, internal/memmodel — the ResNet-18/34/50/101/152
//     architecture specifications and the analytical memory model that
//     regenerates Tables I-III and the LinearResNet homogenisation of
//     Section VI.
//   - schedule — the public schedule vocabulary: the Action type, the
//     streaming Schedule interface consumed identically for precomputed and
//     lazily generated plans, and the validating trace simulator.
//   - plan — the public planning API: the Strategy interface and the
//     name-keyed registry ("revolve", "periodic", "logspaced", "sequential",
//     "storeall", "twolevel") through which every caller selects a planner.
//   - internal/checkpoint — the paper's core subject: optimal
//     (Revolve/binomial) checkpointing schedules, the PyTorch
//     checkpoint_sequential baseline, and the recompute-factor (rho)
//     budgeted search used to draw Figure 1. The algorithms are registered
//     into the plan registry.
//   - internal/chain — an executor that runs real networks under any
//     checkpointing schedule and reproduces baseline gradients exactly.
//   - store — the pluggable checkpoint stores (RAM references, the bit-exact
//     disk codec, and the tiered store that really spills flash-tier slots).
//   - ckpt — the durable checkpoint format and crash-safe resume engine: a
//     framed binary on-disk format (magic + version header, per-frame
//     type/length/CRC32, raw and DEFLATE styles, parallel encode/decode with
//     worker-count-independent bytes) that serializes a complete training
//     session — weights, batch-norm state, optimizer state, cursors and
//     per-worker fleet progress — behind crash-safe saves (temp file, fsync,
//     atomic rename, MANIFEST with automatic fallback). Both the trainer
//     (SaveCheckpoint/ResumeFrom, mid-epoch at step boundaries) and the
//     fleet (periodic round checkpoints, elastic resume) restart
//     bit-identical to a never-interrupted run.
//   - fleet — executable multi-node training: concurrent heterogeneous edge
//     workers (per-worker budgets auto-select different checkpoint
//     strategies), non-IID dataset shards, and deterministic aggregation by
//     federated averaging or synchronous gradient all-reduce (bit-identical
//     to single-node training on the union of the shards), with straggler,
//     dropout and partial-participation scenario knobs.
//   - coord — distributed fleet training over a real transport: a
//     long-running coordinator process owns the global model, round state and
//     aggregator; edge worker processes register with a capability handshake
//     (device profile, RAM budget, supported aggregation modes), pull shard
//     and round assignments, train locally with the chain/plan machinery,
//     and push updates back over a length-prefixed binary protocol that
//     reuses the ckpt tensor codec (CRC32 frames, raw or DEFLATE). The
//     fleet is elastic and fault-tolerant — dead workers are dropped from
//     the fold, stragglers past the round deadline are discarded, rounds
//     that lose quorum are rewound and re-run, workers reconnect with
//     backoff and recover their optimizer state, and a coordinator started
//     with a state directory checkpoints every round boundary so a killed
//     coordinator resumes where it left off. A seeded chaos transport
//     (refused dials, dropped connections, corrupted frames, partitions)
//     soaks all of it: a distributed run produces global weights
//     byte-identical to the in-process fleet, over TCP or the in-process
//     loopback transport alike, faults or no faults.
//   - compress — the update-compression pipeline that attacks the paper's
//     Section I communication bottleneck: top-k sparsification with
//     per-worker error-feedback residuals, fp16/int8 quantization with
//     deterministic round-to-nearest-even, and framed entropy coding
//     (delta+varint indices, raw or pooled DEFLATE). Specs compose as
//     strings ("topk:0.05+int8+deflate"); both the in-process fleet and the
//     coord wire protocol apply them to worker uploads, negotiating codecs
//     at the handshake, validating decoded tensors before the fold, and
//     reporting raw-vs-encoded bytes and modeled upload time per round. The
//     lossless configuration (topk:1+fp64+raw) is byte-identical to an
//     uncompressed run.
//   - obs — the fleet-wide observability layer: a dependency-free metrics
//     registry (atomic counters, gauges, fixed-bucket histograms; Prometheus
//     text exposition v0.0.4), a ring-buffered trace recorder for the round
//     lifecycle (JSONL or Chrome trace_event export), the /metrics, /healthz,
//     /trace and /debug/pprof HTTP surface behind the binaries' -metrics-addr
//     flag, and the structured log helper the processes share. Workers ship
//     delta telemetry (metric movement + new trace spans) piggybacked on
//     their protocol frames; the coordinator ingests it under worker=<name>
//     labels and stitches the spans into one cross-process Chrome trace, so
//     a single coordinator scrape is the fleet-wide view. obs/health adds
//     declarative training-health rules (loss divergence, NaN rejections,
//     stragglers, worker flap, retry burn) evaluated at round boundaries by
//     both runners, firing fleet_alerts_total and degrading /healthz to 503.
//     No-op by default — handles off a nil registry record nothing and cost
//     ~nothing — and instrumentation never perturbs training: weights are
//     byte-identical with observability (and telemetry shipping) on or off.
//   - internal/device, internal/edgesim, internal/vision, internal/teacher —
//     the Waggle/Array-of-Things context: the 2 GB Edge node (plus Jetson-
//     and Raspberry-class fleet profiles), the fleet-scale cloud-vs-edge
//     comparison, the synthetic viewpoint problem and the in-situ
//     student-teacher pipeline.
//
// The cmd/ directory holds the command-line tools that regenerate every table
// and figure (memtable, figure1, revolveplan, edgetrainer, fleettrainer,
// aotsim) plus the distributed pair (edgecoord, edgeworker), the
// examples/ directory holds runnable walkthroughs, and bench_test.go in this
// directory contains one benchmark per experiment of the paper's evaluation.
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for the paper-versus-reproduction
// comparison.
package edgetrain
