package ckpt

import (
	"bytes"
	"testing"
)

// FuzzReadCheckpoint drives the frame decoder with arbitrary bytes: it must
// never panic, never allocate absurdly, and classify every accepted input
// consistently (a successful decode must re-encode and decode again).
func FuzzReadCheckpoint(f *testing.F) {
	if b, err := Encode(sampleSession()); err == nil {
		f.Add(b)
	}
	if b, err := Encode(sampleSession(), WithCompression()); err == nil {
		f.Add(b)
	}
	if b, err := Encode(&Session{Kind: "fleet"}); err == nil {
		f.Add(b)
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		// Anything the decoder accepts must round-trip through the encoder.
		b, err := Encode(s)
		if err != nil {
			t.Fatalf("decoded session does not re-encode: %v", err)
		}
		s2, err := Decode(b)
		if err != nil {
			t.Fatalf("re-encoded session does not decode: %v", err)
		}
		if s2.Kind != s.Kind || len(s2.Params) != len(s.Params) || len(s2.Workers) != len(s.Workers) {
			t.Fatalf("round-trip changed the session: %+v vs %+v", s, s2)
		}
		if !bytes.Equal(b, mustEncode(t, s2)) {
			t.Fatal("second encode is not bit-stable")
		}
	})
}

func mustEncode(t *testing.T, s *Session) []byte {
	t.Helper()
	b, err := Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return b
}
