package ckpt

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/edgeml/edgetrain/obs"
)

// ManifestName is the file inside a checkpoint directory that names the
// latest valid checkpoint and its predecessor.
const ManifestName = "MANIFEST"

// manifestHeader is the first line of a manifest file.
const manifestHeader = "edgetrain checkpoint manifest v1"

// Dir is a checkpoint directory: a MANIFEST plus numbered checkpoint files
// (ckpt-000001.ckpt, ckpt-000002.ckpt, ...). Saves are crash-safe — temp
// file, fsync, atomic rename, then an atomic manifest update — and at most
// the two newest checkpoints are kept, so a crash at any instant leaves
// either the new checkpoint fully published or the previous one intact.
//
// A Dir is not safe for concurrent use by multiple goroutines or processes;
// one training process owns its checkpoint directory.
type Dir struct {
	path string
	seq  int // sequence number of the next checkpoint file
}

// manifest is the parsed content of a MANIFEST file.
type manifest struct {
	latest   string
	previous string
}

// Open prepares path as a checkpoint directory, creating it if needed. An
// existing manifest is honoured: subsequent Saves continue its sequence and
// Load resumes from its latest entry.
func Open(path string) (*Dir, error) {
	if path == "" {
		return nil, fmt.Errorf("ckpt: empty checkpoint directory path")
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating checkpoint directory: %w", err)
	}
	d := &Dir{path: path, seq: 1}
	var m manifest
	mErr := func() error {
		var err error
		m, err = d.readManifest()
		return err
	}()
	if mErr == nil {
		if n, ok := seqOf(m.latest); ok && n >= d.seq {
			d.seq = n + 1
		}
		if n, ok := seqOf(m.previous); ok && n >= d.seq {
			d.seq = n + 1
		}
	} else if !os.IsNotExist(mErr) {
		return nil, mErr
	}
	// A crash mid-Save can leave a .tmp- file, or a fully renamed checkpoint
	// the manifest never came to reference. With a manifest present it alone
	// decides what exists, so reclaim the orphans' flash here (the devices
	// this targets measure free space in megabytes). WITHOUT a manifest the
	// checkpoint files are kept: they may be the valid survivors of a lost
	// or half-copied manifest, and deleting them would foreclose manual
	// recovery (the format is self-validating by sequence number + CRC).
	// Either way the sequence skips past everything present so a new Save
	// never collides.
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading checkpoint directory: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(path, name)) // never durable; best-effort cleanup
			continue
		}
		if n, ok := seqOf(name); ok {
			if n >= d.seq {
				d.seq = n + 1
			}
			if mErr == nil && name != m.latest && name != m.previous {
				os.Remove(filepath.Join(path, name)) // best-effort orphan reclaim
			}
		}
	}
	return d, nil
}

// HasManifest reports whether path contains a checkpoint manifest — the
// cheap pre-flight check a command uses to reject a -resume path that was
// never checkpointed into, with a clear error instead of a failing load.
func HasManifest(path string) bool {
	info, err := os.Stat(filepath.Join(path, ManifestName))
	return err == nil && info.Mode().IsRegular()
}

// OpenResume resolves the conventional -resume/-checkpoint-dir flag pair of
// the training commands. A non-empty resumePath must already hold a manifest
// (rejected with a descriptive error otherwise — nothing is created); new
// checkpoints go to checkpointDir when given, else continue into the resume
// path. The returned resume Dir is nil when resumePath is empty, and save is
// nil when neither path is set; when both name the same directory one shared
// Dir is returned for both roles.
func OpenResume(resumePath, checkpointDir string) (resume, save *Dir, err error) {
	if resumePath != "" && !HasManifest(resumePath) {
		return nil, nil, fmt.Errorf("ckpt: no checkpoint manifest at %q (expected %s): nothing to resume from; checkpoint into the directory first",
			resumePath, ManifestName)
	}
	saveDir := checkpointDir
	if saveDir == "" {
		saveDir = resumePath
	}
	if saveDir != "" {
		if save, err = Open(saveDir); err != nil {
			return nil, nil, err
		}
	}
	switch {
	case resumePath == "":
	case resumePath == saveDir:
		resume = save
	default:
		if resume, err = Open(resumePath); err != nil {
			return nil, nil, err
		}
	}
	return resume, save, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// checkpointName formats the file name of sequence number n.
func checkpointName(n int) string { return fmt.Sprintf("ckpt-%06d.ckpt", n) }

// seqOf parses the sequence number out of a checkpoint file name.
func seqOf(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "ckpt-%d.ckpt", &n); err != nil || n <= 0 {
		return 0, false
	}
	if name != checkpointName(n) {
		return 0, false
	}
	return n, true
}

// Save durably writes the session as the directory's newest checkpoint and
// returns its file name. The sequence is: write to a temp file in the same
// directory, fsync it, atomically rename it to its final name, fsync the
// directory, then update the manifest the same way. Only after the manifest
// rename is the new checkpoint "the latest"; a crash before that leaves the
// previous manifest — and the previous checkpoint — in force.
func (d *Dir) Save(s *Session, opts ...Option) (string, error) {
	start := time.Now()
	name := checkpointName(d.seq)
	if err := d.writeAtomically(name, func(f *os.File) error {
		return Write(f, s, opts...)
	}); err != nil {
		return "", err
	}

	// A missing or unreadable manifest contributes no previous entry: the
	// new checkpoint becomes the only referenced one. (Open refuses to build
	// a Dir over a malformed manifest, so in practice only "missing" occurs.)
	old, err := d.readManifest()
	if err != nil {
		old = manifest{}
	}
	next := manifest{latest: name, previous: old.latest}
	if err := d.writeAtomically(ManifestName, func(f *os.File) error {
		w := bufio.NewWriter(f)
		fmt.Fprintln(w, manifestHeader)
		fmt.Fprintf(w, "latest %s\n", next.latest)
		if next.previous != "" {
			fmt.Fprintf(w, "previous %s\n", next.previous)
		}
		return w.Flush()
	}); err != nil {
		return "", err
	}
	d.seq++

	// Prune checkpoints the manifest no longer references. Removal is
	// best-effort cleanup — the durable state is already published.
	if old.previous != "" && old.previous != next.latest && old.previous != next.previous {
		os.Remove(filepath.Join(d.path, old.previous))
	}
	if reg := obs.Default(); reg != nil {
		reg.Counter("ckpt_saves_total", "Durable checkpoints published (manifest updated).").Inc()
		reg.Histogram("ckpt_save_seconds", "Latency of one durable checkpoint save (encode + fsync + rename + manifest).", nil).
			Observe(time.Since(start).Seconds())
	}
	return name, nil
}

// writeAtomically writes a file via temp + fsync + rename + directory fsync.
func (d *Dir) writeAtomically(name string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(d.path, ".tmp-"+name+"-*")
	if err != nil {
		return fmt.Errorf("ckpt: creating temp file for %s: %w", name, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if err := fill(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: writing %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: syncing %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: closing %s: %w", name, err)
	}
	if err := os.Rename(tmpName, filepath.Join(d.path, name)); err != nil {
		return fmt.Errorf("ckpt: publishing %s: %w", name, err)
	}
	return d.syncDir()
}

// syncDir fsyncs the directory so renames are durable. Filesystems that do
// not support directory fsync (EINVAL/ENOTSUP/EPERM) are tolerated — the
// rename is still atomic, only its durability window widens — but a real
// I/O failure (a dying SD card reporting EIO) must surface: the caller was
// about to report a durable save.
func (d *Dir) syncDir() error {
	f, err := os.Open(d.path)
	if err != nil {
		return fmt.Errorf("ckpt: opening directory for sync: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) && !os.IsPermission(err) {
		return fmt.Errorf("ckpt: syncing directory: %w", err)
	}
	return nil
}

// readManifest parses the MANIFEST file. A missing file returns an error
// satisfying os.IsNotExist; a malformed file is reported as corrupt.
func (d *Dir) readManifest() (manifest, error) {
	var m manifest
	b, err := os.ReadFile(filepath.Join(d.path, ManifestName))
	if err != nil {
		return m, err
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) < 2 || lines[0] != manifestHeader {
		return m, corruptf("malformed manifest in %s", d.path)
	}
	for _, line := range lines[1:] {
		key, value, ok := strings.Cut(line, " ")
		if !ok || value == "" || value != filepath.Base(value) {
			return m, corruptf("malformed manifest line %q in %s", line, d.path)
		}
		switch key {
		case "latest":
			m.latest = value
		case "previous":
			m.previous = value
		default:
			return m, corruptf("unknown manifest key %q in %s", key, d.path)
		}
	}
	if m.latest == "" {
		return m, corruptf("manifest in %s names no latest checkpoint", d.path)
	}
	return m, nil
}

// Latest returns the file name of the current checkpoint, or ErrNoCheckpoint
// if nothing was ever saved.
func (d *Dir) Latest() (string, error) {
	m, err := d.readManifest()
	if os.IsNotExist(err) {
		return "", ErrNoCheckpoint
	}
	if err != nil {
		return "", err
	}
	return m.latest, nil
}

// Load reads the newest loadable checkpoint: the manifest's latest entry,
// falling back to its predecessor when the latest file is corrupt, truncated
// or missing. It returns the session and the file name it was loaded from.
// With no manifest it returns ErrNoCheckpoint; with every referenced
// checkpoint unreadable it returns the latest file's error (wrapping
// ErrCorrupt for structural damage).
func (d *Dir) Load() (*Session, string, error) {
	start := time.Now()
	reg := obs.Default()
	loaded := func() {
		if reg == nil {
			return
		}
		reg.Counter("ckpt_loads_total", "Checkpoints successfully loaded.").Inc()
		reg.Histogram("ckpt_load_seconds", "Latency of one checkpoint load (read + decode + CRC verify).", nil).
			Observe(time.Since(start).Seconds())
	}
	m, err := d.readManifest()
	if os.IsNotExist(err) {
		return nil, "", ErrNoCheckpoint
	}
	if err != nil {
		return nil, "", err
	}
	s, err := d.loadFile(m.latest)
	if err == nil {
		loaded()
		return s, m.latest, nil
	}
	if m.previous != "" {
		if s, perr := d.loadFile(m.previous); perr == nil {
			reg.Counter("ckpt_load_fallbacks_total", "Loads that fell back to the previous checkpoint after an unreadable latest.").Inc()
			loaded()
			return s, m.previous, nil
		}
	}
	return nil, "", fmt.Errorf("ckpt: loading %s: %w", m.latest, err)
}

// loadFile reads and decodes one checkpoint file, with the same
// trailing-garbage strictness as Decode: a checkpoint file contains exactly
// one checkpoint.
func (d *Dir) loadFile(name string) (*Session, error) {
	f, err := os.Open(filepath.Join(d.path, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, err
	}
	var one [1]byte
	if n, _ := f.Read(one[:]); n != 0 {
		return nil, corruptf("trailing bytes after the last frame of %s", name)
	}
	return s, nil
}
