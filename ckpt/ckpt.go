// Package ckpt is the durable checkpoint format and crash-safe resume engine
// of the edgetrain library: a framed binary on-disk format that serializes a
// complete training session — model parameters, non-trainable layer state
// (batch-norm running statistics), optimizer state, RNG state, epoch/step/
// round cursors and the fleet's per-worker progress — so that training on a
// memory-poor, flaky, intermittently powered edge node survives preemption
// and power loss.
//
// # Format
//
// A checkpoint is a 16-byte header followed by a sequence of frames:
//
//	header : magic "EDGCKPT1" | uint32 version | uint32 frame count
//	frame  : uint32 type | uint32 style | uint64 encoded len |
//	         uint64 raw len | uint32 CRC32-IEEE | payload bytes
//
// All integers are little-endian. Each frame carries one logical unit of the
// session (one parameter tensor, one optimizer slot vector, one worker's
// progress, ...) in either raw or DEFLATE-compressed style, and is protected
// by a CRC32 of its encoded payload. Frames are independent, so they encode
// and decode in parallel (internal/parallel) with output bytes that do not
// depend on the worker count, and the streaming (io.Writer/io.Reader) and
// in-memory ([]byte) modes run the exact same code path, producing
// bit-identical bytes.
//
// # Durability
//
// Dir manages a checkpoint directory: every Save writes to a temporary file,
// fsyncs it, atomically renames it into place, and then updates a MANIFEST
// (itself written atomically) that names the latest valid checkpoint and its
// predecessor. Load verifies the latest checkpoint's CRCs and falls back to
// the predecessor if the latest is corrupt or truncated, so a crash at any
// instant — including mid-Save — leaves a loadable checkpoint behind.
//
// Any structural defect found while loading (bad magic, truncation, CRC
// mismatch, implausible lengths) is reported as an error wrapping ErrCorrupt,
// never a panic and never silently wrong tensors.
package ckpt

import (
	"errors"
	"fmt"

	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
)

// LibraryVersion is the edgetrain release this tree builds; checkpoints
// record it for provenance and the root package re-exports it as
// edgetrain.Version.
const LibraryVersion = "2.3.0"

// ErrCorrupt is wrapped by every error that means the checkpoint bytes are
// structurally invalid: bad magic or version, a truncated stream, a CRC
// mismatch, an implausible length, or an inconsistent frame set. Dir.Load
// falls back to the previous checkpoint when the latest fails with it.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// ErrNoCheckpoint is returned by Dir.Load when the directory holds no
// manifest (nothing was ever saved, or the path is not a checkpoint
// directory).
var ErrNoCheckpoint = errors.New("ckpt: no checkpoint manifest")

// corruptf builds an error wrapping ErrCorrupt with context.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// NamedTensor pairs a tensor with the model-unique name it is stored under.
type NamedTensor struct {
	Name   string
	Tensor *tensor.Tensor
}

// OptSlot is one optimizer state vector: the per-parameter slot of a
// stateful optimizer (momentum velocity, Adam first/second moments), keyed
// by parameter name and slot name.
type OptSlot struct {
	Param string
	Slot  string
	Data  []float64
}

// OptimizerState is a serializable snapshot of one optimizer's internal
// state. The zero value describes a stateless optimizer.
type OptimizerState struct {
	// Name is the optimizer identifier ("sgd", "momentum", "adam").
	Name string
	// Step is the optimizer's update counter (Adam's bias-correction step).
	Step int64
	// Slots are the per-parameter state vectors in a deterministic order
	// (parameter order, then slot name).
	Slots []OptSlot

	// declSlots is the slot count the optimizer meta frame declared; used
	// only while decoding, to detect lost or duplicated slot frames.
	declSlots int
}

// WorkerState is one fleet worker's durable progress: everything a restarted
// process — or a dropped worker rejoining the fleet — needs to continue
// bit-identically. Model parameters are not part of it: every round starts by
// broadcasting the global parameters, so the only state a worker carries
// across rounds is its local optimizer.
type WorkerState struct {
	Index   int
	Name    string
	Rounds  int64 // rounds the worker participated in so far
	Samples int64 // samples the worker contributed so far
	Opt     OptimizerState
}

// Session is the complete training state a checkpoint serializes. Trainer
// and fleet sessions populate different subsets; unused fields stay zero and
// cost a few bytes.
type Session struct {
	// Kind labels the producer ("trainer", "fleet"); Load-side callers verify
	// it before restoring, so a fleet checkpoint is not resumed into a
	// single-node trainer by accident.
	Kind string
	// LibraryVersion records the edgetrain version that wrote the checkpoint
	// (informational; the binary format carries its own version).
	LibraryVersion string

	// Epoch, Step and Round are the resume cursors: the NEXT epoch/step/round
	// to execute, so saving after finishing step k stores k+1.
	Epoch int
	Step  int
	Round int
	// BatchSize is the batch size the Step cursor is measured in (and the
	// fleet's local batch size). Restore-side callers verify it: resuming a
	// batch-indexed cursor under a different batch size would silently shift
	// the resume point.
	BatchSize int

	// Seed is the run's configured random seed, and RNG the serialized state
	// words of the run's generator (tensor.RNG.State) when one is tracked.
	Seed uint64
	RNG  []uint64

	// Params are the model's trainable parameter values in parameter order.
	Params []NamedTensor
	// LayerState is the model's non-trainable state in layer order
	// (batch-norm running mean/variance).
	LayerState []NamedTensor
	// Opt is the (global or single-node) optimizer state.
	Opt OptimizerState
	// Workers is the fleet's per-worker progress, ascending by index.
	Workers []WorkerState

	// Frame counts the meta frame declared; used only while decoding, to
	// detect lost, duplicated or mistyped frames.
	declParams, declStates, declOptSlots, declWorkers int
}

// CaptureRNG serializes a generator's state words for the session's RNG
// field.
func CaptureRNG(r *tensor.RNG) []uint64 {
	st := r.State()
	return append([]uint64(nil), st[:]...)
}

// ApplyRNG restores a generator captured by CaptureRNG, so a resumed run's
// stochastic draws (data augmentation, dropout masks) continue the exact
// sequence of the interrupted one. A session without RNG state is an error
// only when a generator is expected.
func (s *Session) ApplyRNG(r *tensor.RNG) error {
	if len(s.RNG) != tensor.StateWords {
		return fmt.Errorf("ckpt: checkpoint carries %d RNG state words, want %d", len(s.RNG), tensor.StateWords)
	}
	var st [tensor.StateWords]uint64
	copy(st[:], s.RNG)
	r.SetState(st)
	return nil
}

// CaptureParams snapshots the parameters' current values as owned clones, in
// parameter order. Clone matters: the caller may keep training while the
// snapshot is encoded or held.
func CaptureParams(params []*nn.Param) []NamedTensor {
	out := make([]NamedTensor, 0, len(params))
	for _, p := range params {
		out = append(out, NamedTensor{Name: p.Name, Tensor: p.Value.Clone()})
	}
	return out
}

// applyTensors is the shared two-phase restore: match every destination
// against the stored tensors by name and shape, require every stored tensor
// to be consumed, and only then copy — so a mismatch mid-list can never
// leave a half-restored model behind.
func applyTensors(what string, stored []NamedTensor, dst []NamedTensor) error {
	byName := make(map[string]*tensor.Tensor, len(stored))
	for _, nt := range stored {
		if _, dup := byName[nt.Name]; dup {
			return fmt.Errorf("ckpt: checkpoint has duplicate %s %q", what, nt.Name)
		}
		byName[nt.Name] = nt.Tensor
	}
	srcs := make([]*tensor.Tensor, len(dst))
	seen := make(map[string]bool, len(dst))
	for i, d := range dst {
		t, ok := byName[d.Name]
		if !ok || seen[d.Name] {
			return fmt.Errorf("ckpt: checkpoint is missing %s %q", what, d.Name)
		}
		if !t.SameShape(d.Tensor) {
			return fmt.Errorf("ckpt: %s %q has shape %v in the checkpoint but %v in the model",
				what, d.Name, t.Shape(), d.Tensor.Shape())
		}
		seen[d.Name] = true
		srcs[i] = t
	}
	if len(byName) > len(dst) {
		return fmt.Errorf("ckpt: checkpoint contains %d %ss the model does not have", len(byName)-len(dst), what)
	}
	for i, d := range dst {
		copy(d.Tensor.Data(), srcs[i].Data())
	}
	return nil
}

// ApplyParams copies the session's parameter values into the given
// parameters. Every parameter must be present under its name with an
// identical shape, and every stored tensor must be consumed — the same
// strictness as nn.LoadParams, so resuming into a mismatched model fails
// loudly, and fails before any value is copied, never leaving half-restored
// weights.
func (s *Session) ApplyParams(params []*nn.Param) error {
	dst := make([]NamedTensor, 0, len(params))
	for _, p := range params {
		dst = append(dst, NamedTensor{Name: p.Name, Tensor: p.Value})
	}
	return applyTensors("parameter", s.Params, dst)
}

// CaptureLayerState snapshots the layers' non-trainable state tensors
// (nn.CollectState) as owned clones.
func CaptureLayerState(layers []nn.Layer) []NamedTensor {
	states := nn.CollectState(layers)
	out := make([]NamedTensor, 0, len(states))
	for _, st := range states {
		out = append(out, NamedTensor{Name: st.Name, Tensor: st.Tensor.Clone()})
	}
	return out
}

// ApplyLayerState copies the session's layer state back into the layers,
// with the same strict, copy-nothing-on-mismatch matching as ApplyParams.
func (s *Session) ApplyLayerState(layers []nn.Layer) error {
	states := nn.CollectState(layers)
	dst := make([]NamedTensor, 0, len(states))
	for _, st := range states {
		dst = append(dst, NamedTensor{Name: st.Name, Tensor: st.Tensor})
	}
	return applyTensors("layer state", s.LayerState, dst)
}
