package ckpt

import (
	"testing"

	"github.com/edgeml/edgetrain/internal/tensor"
)

// TestRNGStateRoundTrip captures a generator mid-stream — including the
// Box-Muller spare deviate, which Normal caches between calls — persists it
// through a checkpoint round trip, and asserts the restored generator
// continues the exact sequence.
func TestRNGStateRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(123)
	for i := 0; i < 7; i++ {
		rng.Normal(0, 1) // odd count leaves a cached spare deviate
	}
	rng.Float64()

	s := &Session{Kind: "trainer", RNG: CaptureRNG(rng)}
	b, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	restored := tensor.NewRNG(999) // deliberately wrong seed
	if err := loaded.ApplyRNG(restored); err != nil {
		t.Fatalf("ApplyRNG: %v", err)
	}
	for i := 0; i < 100; i++ {
		if a, b := rng.Normal(0, 1), restored.Normal(0, 1); a != b {
			t.Fatalf("draw %d diverged: %v vs %v", i, a, b)
		}
		if a, b := rng.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("uint64 draw %d diverged: %d vs %d", i, a, b)
		}
	}

	// A session without RNG words refuses to restore a generator.
	empty := &Session{Kind: "trainer"}
	if err := empty.ApplyRNG(restored); err == nil {
		t.Fatal("ApplyRNG succeeded without state words")
	}
}
