package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadWithoutManifest(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, _, err := d.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Load on empty dir: want ErrNoCheckpoint, got %v", err)
	}
	if _, err := d.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest on empty dir: want ErrNoCheckpoint, got %v", err)
	}
}

func TestHasManifest(t *testing.T) {
	dir := t.TempDir()
	if HasManifest(dir) {
		t.Fatal("HasManifest true on empty directory")
	}
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := d.Save(sampleSession()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if !HasManifest(dir) {
		t.Fatal("HasManifest false after a Save")
	}
	if HasManifest(filepath.Join(dir, "nope")) {
		t.Fatal("HasManifest true on a missing directory")
	}
}

// TestSavePrunesAndSequences saves repeatedly and asserts the directory
// retains only the manifest plus the two newest checkpoints, with strictly
// increasing sequence numbers.
func TestSavePrunesAndSequences(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var names []string
	for i := 0; i < 5; i++ {
		s := sampleSession()
		s.Step = i
		name, err := d.Save(s)
		if err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		a, _ := seqOf(names[i-1])
		b, _ := seqOf(names[i])
		if b <= a {
			t.Fatalf("sequence not increasing: %s then %s", names[i-1], names[i])
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		files = append(files, e.Name())
	}
	if len(files) != 3 {
		t.Fatalf("directory holds %v, want MANIFEST plus exactly two checkpoints", files)
	}
	for _, want := range []string{ManifestName, names[3], names[4]} {
		found := false
		for _, f := range files {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("directory %v is missing %s", files, want)
		}
	}
}

// TestReopenContinuesSequence reopens a directory and asserts new saves do
// not collide with leftovers of a crash mid-save: an orphan checkpoint the
// manifest never came to reference is reclaimed (flash is scarce on the
// target devices) and stale temp files are removed.
func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := d.Save(sampleSession()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	latest1, err := d.Latest()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that published ckpt-000009.ckpt but never updated the
	// manifest, plus an abandoned temp file.
	orphan := checkpointName(9)
	b, err := Encode(sampleSession())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, orphan), b, 0o644); err != nil {
		t.Fatal(err)
	}
	stale := ".tmp-" + checkpointName(2) + "-12345"
	if err := os.WriteFile(filepath.Join(dir, stale), b[:10], 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for _, gone := range []string{orphan, stale} {
		if _, err := os.Stat(filepath.Join(dir, gone)); err == nil {
			t.Fatalf("reopen did not reclaim %s", gone)
		}
	}
	name, err := d2.Save(sampleSession())
	if err != nil {
		t.Fatalf("Save after reopen: %v", err)
	}
	if n, _ := seqOf(name); n <= 1 {
		t.Fatalf("save after reopen reused sequence %d", n)
	}
	s, from, err := d2.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if from != name {
		t.Fatalf("Load used %s, want the new latest %s", from, name)
	}
	if s == nil || s.Kind != "trainer" {
		t.Fatalf("unexpected session %+v", s)
	}
	// The old latest remains the fallback.
	mb, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mb), "previous "+latest1) {
		t.Fatalf("manifest %q does not reference previous %s", mb, latest1)
	}
}

// TestMalformedManifest asserts garbage manifests yield typed errors, not
// panics.
func TestMalformedManifest(t *testing.T) {
	for _, content := range []string{
		"",
		"not a manifest\nlatest x\n",
		manifestHeader + "\n",
		manifestHeader + "\nlatest\n",
		manifestHeader + "\nlatest ../../etc/passwd\n",
		manifestHeader + "\nwhatever ckpt-000001.ckpt\n",
	} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		d := &Dir{path: dir, seq: 1}
		if _, _, err := d.Load(); err == nil || errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("manifest %q: Load returned %v, want a parse error", content, err)
		}
	}
}
