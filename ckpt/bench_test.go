package ckpt

import (
	"fmt"
	"testing"

	"github.com/edgeml/edgetrain/internal/tensor"
)

// benchSession builds a training-session-sized checkpoint: ~1.6 MB of
// parameters across 24 tensors plus Adam moments for each, comparable to
// the small edge student with optimizer state.
func benchSession() *Session {
	rng := tensor.NewRNG(3)
	s := &Session{Kind: "trainer", LibraryVersion: LibraryVersion, Epoch: 2, Step: 5, Seed: 9}
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("layer%02d.w", i)
		t := tensor.RandNormal(rng, 0, 0.1, 16, 16, 4, 8)
		s.Params = append(s.Params, NamedTensor{Name: name, Tensor: t})
		s.Opt.Slots = append(s.Opt.Slots,
			OptSlot{Param: name, Slot: "m", Data: make([]float64, t.Size())},
			OptSlot{Param: name, Slot: "v", Data: make([]float64, t.Size())},
		)
	}
	s.Opt.Name = "adam"
	s.Opt.Step = 40
	return s
}

// BenchmarkCheckpointSave measures one durable save — encode, temp file,
// fsync, rename, manifest — in raw and compressed frame styles.
func BenchmarkCheckpointSave(b *testing.B) {
	for _, style := range []struct {
		name string
		opts []Option
	}{{"raw", nil}, {"compressed", []Option{WithCompression()}}} {
		b.Run(style.name, func(b *testing.B) {
			s := benchSession()
			d, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			enc, err := Encode(s, style.opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Save(s, style.opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckpointRestore measures one full load from the manifest —
// read, CRC verification, decode — in raw and compressed frame styles.
func BenchmarkCheckpointRestore(b *testing.B) {
	for _, style := range []struct {
		name string
		opts []Option
	}{{"raw", nil}, {"compressed", []Option{WithCompression()}}} {
		b.Run(style.name, func(b *testing.B) {
			s := benchSession()
			d, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.Save(s, style.opts...); err != nil {
				b.Fatal(err)
			}
			enc, err := Encode(s, style.opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := d.Load(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
