package ckpt

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// frameBoundaries returns every structural offset of an encoded checkpoint:
// the end of the file header and the start/payload-start/end of every frame.
func frameBoundaries(t *testing.T, b []byte) []int {
	t.Helper()
	offsets := []int{0, headerBytes}
	count := binary.LittleEndian.Uint32(b[12:])
	off := headerBytes
	for i := uint32(0); i < count; i++ {
		if off+FrameHeaderBytes > len(b) {
			t.Fatalf("frame %d header at %d overruns %d bytes", i, off, len(b))
		}
		encLen := int(binary.LittleEndian.Uint64(b[off+8:]))
		offsets = append(offsets, off+FrameHeaderBytes, off+FrameHeaderBytes+encLen)
		off += FrameHeaderBytes + encLen
	}
	if off != len(b) {
		t.Fatalf("frames end at %d, file has %d bytes", off, len(b))
	}
	return offsets
}

// decodeExpectingCorrupt asserts that decoding fails with ErrCorrupt — and
// in particular neither panics nor succeeds with silently wrong content.
func decodeExpectingCorrupt(t *testing.T, what string, data []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: decode panicked: %v", what, r)
		}
	}()
	s, err := Decode(data)
	if err == nil {
		t.Fatalf("%s: decode succeeded on corrupt bytes (session kind %q)", what, s.Kind)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("%s: error does not wrap ErrCorrupt: %v", what, err)
	}
}

// TestTruncationAtEveryFrameBoundary chops a valid checkpoint at every
// structural boundary (and one byte around each) and asserts the loader
// reports ErrCorrupt.
func TestTruncationAtEveryFrameBoundary(t *testing.T) {
	for _, style := range []struct {
		name string
		opts []Option
	}{{"raw", nil}, {"deflate", []Option{WithCompression()}}} {
		t.Run(style.name, func(t *testing.T) {
			b, err := Encode(sampleSession(), style.opts...)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			cuts := map[int]bool{}
			for _, off := range frameBoundaries(t, b) {
				for _, cut := range []int{off - 1, off, off + 1} {
					if cut >= 0 && cut < len(b) {
						cuts[cut] = true
					}
				}
			}
			for cut := range cuts {
				decodeExpectingCorrupt(t, "truncated", b[:cut])
			}
		})
	}
}

// TestFlipEveryByte flips one byte at every offset of a valid checkpoint and
// asserts the loader detects every single flip with a typed ErrCorrupt —
// never a panic, never silently wrong content. Header fields are validated
// structurally and every payload byte is covered by its frame's CRC32, so
// no offset escapes.
func TestFlipEveryByte(t *testing.T) {
	for _, style := range []struct {
		name string
		opts []Option
	}{{"raw", nil}, {"deflate", []Option{WithCompression()}}} {
		t.Run(style.name, func(t *testing.T) {
			orig := sampleSession()
			b, err := Encode(orig, style.opts...)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			for off := 0; off < len(b); off++ {
				mut := append([]byte(nil), b...)
				mut[off] ^= 0x5A
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("flip at %d: decode panicked: %v", off, r)
						}
					}()
					s, err := Decode(mut)
					if err == nil {
						t.Fatalf("flip at offset %d of %d went undetected", off, len(b))
					}
					_ = s
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("flip at %d: error does not wrap ErrCorrupt: %v", off, err)
					}
				}()
			}
		})
	}
}

// TestManifestFallbackRecoversPrevious corrupts the latest checkpoint file
// in a directory and asserts Load falls back to the previous one.
func TestManifestFallbackRecoversPrevious(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	first := sampleSession()
	first.Step = 10
	name1, err := d.Save(first)
	if err != nil {
		t.Fatalf("Save 1: %v", err)
	}
	second := sampleSession()
	second.Step = 20
	name2, err := d.Save(second)
	if err != nil {
		t.Fatalf("Save 2: %v", err)
	}
	if name1 == name2 {
		t.Fatalf("both saves produced %s", name1)
	}

	corruptions := []struct {
		name string
		mut  func(path string) error
	}{
		{"byte flip", func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			b[len(b)/2] ^= 0xFF
			return os.WriteFile(path, b, 0o644)
		}},
		{"truncation", func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, b[:len(b)*2/3], 0o644)
		}},
		{"removal", os.Remove},
	}
	latest := filepath.Join(dir, name2)
	pristine, err := os.ReadFile(latest)
	if err != nil {
		t.Fatalf("reading latest: %v", err)
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			if err := c.mut(latest); err != nil {
				t.Fatalf("injecting %s: %v", c.name, err)
			}
			defer os.WriteFile(latest, pristine, 0o644)
			s, from, err := d.Load()
			if err != nil {
				t.Fatalf("Load after %s of latest: %v", c.name, err)
			}
			if from != name1 {
				t.Fatalf("Load after %s used %s, want fallback to %s", c.name, from, name1)
			}
			if s.Step != first.Step {
				t.Fatalf("fallback session has step %d, want %d", s.Step, first.Step)
			}
		})
	}

	// With both checkpoints corrupted the error must be typed, not a panic
	// or a bogus session.
	if err := corruptions[0].mut(latest); err != nil {
		t.Fatalf("corrupting latest: %v", err)
	}
	if err := corruptions[0].mut(filepath.Join(dir, name1)); err != nil {
		t.Fatalf("corrupting previous: %v", err)
	}
	if _, _, err := d.Load(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load with both corrupt: want ErrCorrupt, got %v", err)
	}
}
