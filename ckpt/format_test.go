package ckpt

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"

	"github.com/edgeml/edgetrain/internal/parallel"
	"github.com/edgeml/edgetrain/internal/tensor"
)

// sampleSession builds a session exercising every frame type and value kind:
// multiple parameters, layer state, a stateful optimizer, RNG words and
// fleet workers, with negative/NaN/denormal floats in the payloads.
func sampleSession() *Session {
	rng := tensor.NewRNG(7)
	return &Session{
		Kind:           "trainer",
		LibraryVersion: LibraryVersion,
		Epoch:          3,
		Step:           17,
		Round:          2,
		BatchSize:      4,
		Seed:           42,
		RNG:            []uint64{1, 2, 3, 4, 0, math.Float64bits(0.5)},
		Params: []NamedTensor{
			{Name: "stem.w", Tensor: tensor.RandNormal(rng, 0, 1, 4, 3, 3, 3)},
			{Name: "stem.b", Tensor: tensor.FromSlice([]float64{0, -1.5, math.Pi, 1e-310}, 4)},
			{Name: "head.w", Tensor: tensor.RandUniform(rng, -2, 2, 5, 16)},
		},
		LayerState: []NamedTensor{
			{Name: "stem.bn.running_mean", Tensor: tensor.FromSlice([]float64{1, 2, 3, 4}, 4)},
			{Name: "stem.bn.running_var", Tensor: tensor.FromSlice([]float64{0.1, 0.2, 0.3, 0.4}, 4)},
		},
		Opt: OptimizerState{
			Name: "adam",
			Step: 117,
			Slots: []OptSlot{
				{Param: "stem.w", Slot: "m", Data: []float64{1, -2, 3}},
				{Param: "stem.w", Slot: "v", Data: []float64{0.5, 0.25, 0.125}},
			},
		},
		Workers: []WorkerState{
			{Index: 0, Name: "w0-waggle", Rounds: 5, Samples: 60,
				Opt: OptimizerState{Name: "momentum", Slots: []OptSlot{
					{Param: "stem.w", Slot: "velocity", Data: []float64{-0.5, 0, 2}},
				}}},
			{Index: 2, Name: "w2-rpi", Rounds: 4, Samples: 44,
				Opt: OptimizerState{Name: "sgd"}},
		},
	}
}

// sessionsEqual compares the public content of two sessions.
func sessionsEqual(t *testing.T, want, got *Session) {
	t.Helper()
	if want.Kind != got.Kind || want.LibraryVersion != got.LibraryVersion ||
		want.Epoch != got.Epoch || want.Step != got.Step || want.Round != got.Round ||
		want.BatchSize != got.BatchSize || want.Seed != got.Seed {
		t.Fatalf("scalar fields differ: want %+v scalars, got %+v", want, got)
	}
	if !reflect.DeepEqual(want.RNG, got.RNG) {
		t.Fatalf("RNG state differs: want %v, got %v", want.RNG, got.RNG)
	}
	compareTensors := func(kind string, a, b []NamedTensor) {
		if len(a) != len(b) {
			t.Fatalf("%s count: want %d, got %d", kind, len(a), len(b))
		}
		for i := range a {
			if a[i].Name != b[i].Name {
				t.Fatalf("%s[%d] name: want %q, got %q", kind, i, a[i].Name, b[i].Name)
			}
			if !a[i].Tensor.SameShape(b[i].Tensor) {
				t.Fatalf("%s[%d] shape: want %v, got %v", kind, i, a[i].Tensor.Shape(), b[i].Tensor.Shape())
			}
			aw, bw := a[i].Tensor.Data(), b[i].Tensor.Data()
			for j := range aw {
				if math.Float64bits(aw[j]) != math.Float64bits(bw[j]) {
					t.Fatalf("%s[%d] %q element %d: want %v, got %v (bit-level)", kind, i, a[i].Name, j, aw[j], bw[j])
				}
			}
		}
	}
	compareTensors("param", want.Params, got.Params)
	compareTensors("layer state", want.LayerState, got.LayerState)
	if !reflect.DeepEqual(want.Opt, got.Opt) {
		t.Fatalf("optimizer state differs:\nwant %+v\ngot  %+v", want.Opt, got.Opt)
	}
	if !reflect.DeepEqual(want.Workers, got.Workers) {
		t.Fatalf("worker state differs:\nwant %+v\ngot  %+v", want.Workers, got.Workers)
	}
}

func TestRoundTripRaw(t *testing.T) {
	want := sampleSession()
	b, err := Encode(want)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// Clear decode-only bookkeeping before comparing.
	sessionsEqual(t, want, got)
}

func TestRoundTripCompressed(t *testing.T) {
	want := sampleSession()
	b, err := Encode(want, WithCompression())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	braw, err := Encode(want)
	if err != nil {
		t.Fatalf("Encode raw: %v", err)
	}
	if bytes.Equal(b, braw) {
		t.Fatalf("compressed and raw encodings are identical (%d bytes); compression did not engage", len(b))
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	sessionsEqual(t, want, got)
}

func TestRoundTripMinimalSession(t *testing.T) {
	want := &Session{Kind: "trainer"}
	b, err := Encode(want)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	sessionsEqual(t, want, got)
}

// TestStreamingMatchesInMemory pins the format contract that the streaming
// io.Writer/io.Reader mode and the in-memory mode produce and consume
// bit-identical bytes.
func TestStreamingMatchesInMemory(t *testing.T) {
	s := sampleSession()
	for _, style := range []struct {
		name string
		opts []Option
	}{{"raw", nil}, {"deflate", []Option{WithCompression()}}} {
		t.Run(style.name, func(t *testing.T) {
			inMem, err := Encode(s, style.opts...)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			var streamed bytes.Buffer
			// Stream through a one-byte-at-a-time writer so any buffering
			// difference would surface.
			if err := Write(trickleWriter{&streamed}, s, style.opts...); err != nil {
				t.Fatalf("Write: %v", err)
			}
			if !bytes.Equal(inMem, streamed.Bytes()) {
				t.Fatalf("streaming and in-memory encodings differ (%d vs %d bytes)", streamed.Len(), len(inMem))
			}
			// And the streaming reader must accept a dribbling source.
			got, err := Read(&trickleReader{data: inMem})
			if err != nil {
				t.Fatalf("Read from trickling reader: %v", err)
			}
			sessionsEqual(t, s, got)
		})
	}
}

// trickleWriter forwards one byte per Write call.
type trickleWriter struct{ b *bytes.Buffer }

func (w trickleWriter) Write(p []byte) (int, error) {
	for i := range p {
		w.b.WriteByte(p[i])
	}
	return len(p), nil
}

// trickleReader returns at most one byte per Read call.
type trickleReader struct {
	data []byte
	off  int
}

func (r *trickleReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	p[0] = r.data[r.off]
	r.off++
	return 1, nil
}

func TestEncodeWorkerCountInvariant(t *testing.T) {
	s := sampleSession()
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	for _, style := range []struct {
		name string
		opts []Option
	}{{"raw", nil}, {"deflate", []Option{WithCompression()}}} {
		t.Run(style.name, func(t *testing.T) {
			parallel.SetWorkers(1)
			one, err := Encode(s, style.opts...)
			if err != nil {
				t.Fatalf("Encode workers=1: %v", err)
			}
			for _, w := range []int{2, 5, 16} {
				parallel.SetWorkers(w)
				many, err := Encode(s, style.opts...)
				if err != nil {
					t.Fatalf("Encode workers=%d: %v", w, err)
				}
				if !bytes.Equal(one, many) {
					t.Fatalf("encoding differs between workers=1 and workers=%d", w)
				}
				got, err := Decode(many)
				if err != nil {
					t.Fatalf("Decode workers=%d: %v", w, err)
				}
				sessionsEqual(t, s, got)
			}
		})
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	b, err := Encode(sampleSession())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(append(b, 0xEE)); err == nil {
		t.Fatal("Decode accepted trailing garbage")
	}
}
