package ckpt

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/parallel"
)

// Format constants. The magic doubles as a human-greppable file signature.
const (
	// Magic is the 8-byte file signature opening every checkpoint.
	Magic = "EDGCKPT1"
	// FormatVersion is the current binary layout version.
	FormatVersion = 1

	headerBytes      = 16 // magic + version + frame count
	frameHeaderBytes = 28 // type + style + encoded len + raw len + CRC32
)

// Frame styles: how a frame's payload bytes are encoded.
const (
	// StyleRaw stores the payload verbatim; encoded len == raw len.
	StyleRaw = uint32(0)
	// StyleDeflate stores the payload DEFLATE-compressed (compress/flate).
	// Frames compress independently, so parallel encoding stays
	// bit-deterministic.
	StyleDeflate = uint32(1)
)

// Frame types: what one frame carries. Unknown types are a decode error, so
// a flipped type byte can never be silently skipped.
const (
	frameMeta       = uint32(1) // cursors, seed, RNG, counts of the other frames
	frameParam      = uint32(2) // one model parameter tensor
	frameLayerState = uint32(3) // one non-trainable layer state tensor
	frameOptMeta    = uint32(4) // optimizer name, step, slot count
	frameOptSlot    = uint32(5) // one optimizer state vector
	frameWorker     = uint32(6) // one fleet worker's progress
)

// Sanity bounds: a corrupt header must yield a typed error, not an absurd
// allocation. Actual reads grow incrementally, so a lying length costs at
// most the bytes really present in the stream.
const (
	maxFrames     = 1 << 22 // 4M frames
	maxFrameBytes = int64(1) << 40
	maxSlotElems  = int64(1) << 40
)

// Option tunes how a checkpoint is written.
type Option func(*writeConfig)

type writeConfig struct {
	style uint32
}

// WithCompression selects the DEFLATE frame style for every frame. The
// default is raw frames: on an SD-card-backed edge node the fsync dominates,
// and raw bytes round-trip fastest.
func WithCompression() Option {
	return func(c *writeConfig) { c.style = StyleDeflate }
}

// flateWriters pools DEFLATE compressors: a fresh flate.Writer allocates
// ~1 MB of window state, which would otherwise be paid once per frame.
// Reset produces output bit-identical to a newly constructed writer, so
// pooling does not perturb the format's determinism.
var flateWriters = sync.Pool{New: func() any {
	w, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		// BestSpeed is a valid level; NewWriter cannot fail on it.
		panic(err)
	}
	return w
}}

// rawFrame is one frame before styling: its type and raw payload bytes.
type rawFrame struct {
	typ     uint32
	payload []byte
}

// encFrame is one frame after styling: encoded payload plus header fields.
type encFrame struct {
	typ    uint32
	style  uint32
	rawLen uint64
	crc    uint32
	enc    []byte
}

// buildFrames lays the session out as raw frames in the canonical order:
// meta, params, layer state, optimizer meta, optimizer slots, workers. The
// order is part of the format: decode reassembles slices in frame order.
func buildFrames(s *Session) ([]rawFrame, error) {
	frames := make([]rawFrame, 0,
		1+len(s.Params)+len(s.LayerState)+1+len(s.Opt.Slots)+len(s.Workers))

	var meta bytes.Buffer
	putString(&meta, s.Kind)
	putString(&meta, s.LibraryVersion)
	putInt64(&meta, int64(s.Epoch))
	putInt64(&meta, int64(s.Step))
	putInt64(&meta, int64(s.Round))
	putInt64(&meta, int64(s.BatchSize))
	putUint64(&meta, s.Seed)
	putUint32(&meta, uint32(len(s.RNG)))
	for _, w := range s.RNG {
		putUint64(&meta, w)
	}
	putUint32(&meta, uint32(len(s.Params)))
	putUint32(&meta, uint32(len(s.LayerState)))
	putUint32(&meta, uint32(len(s.Opt.Slots)))
	putUint32(&meta, uint32(len(s.Workers)))
	frames = append(frames, rawFrame{frameMeta, meta.Bytes()})

	for _, nt := range s.Params {
		b, err := encodeNamedTensor(nt)
		if err != nil {
			return nil, fmt.Errorf("ckpt: encoding parameter %q: %w", nt.Name, err)
		}
		frames = append(frames, rawFrame{frameParam, b})
	}
	for _, nt := range s.LayerState {
		b, err := encodeNamedTensor(nt)
		if err != nil {
			return nil, fmt.Errorf("ckpt: encoding layer state %q: %w", nt.Name, err)
		}
		frames = append(frames, rawFrame{frameLayerState, b})
	}

	var om bytes.Buffer
	putString(&om, s.Opt.Name)
	putInt64(&om, s.Opt.Step)
	putUint32(&om, uint32(len(s.Opt.Slots)))
	frames = append(frames, rawFrame{frameOptMeta, om.Bytes()})
	for _, slot := range s.Opt.Slots {
		frames = append(frames, rawFrame{frameOptSlot, encodeOptSlot(slot)})
	}

	for _, w := range s.Workers {
		var wb bytes.Buffer
		putString(&wb, w.Name)
		putInt64(&wb, int64(w.Index))
		putInt64(&wb, w.Rounds)
		putInt64(&wb, w.Samples)
		putString(&wb, w.Opt.Name)
		putInt64(&wb, w.Opt.Step)
		putUint32(&wb, uint32(len(w.Opt.Slots)))
		for _, slot := range w.Opt.Slots {
			wb.Write(encodeOptSlot(slot))
		}
		frames = append(frames, rawFrame{frameWorker, wb.Bytes()})
	}
	return frames, nil
}

func encodeNamedTensor(nt NamedTensor) ([]byte, error) {
	if nt.Tensor == nil {
		return nil, fmt.Errorf("nil tensor")
	}
	var b bytes.Buffer
	b.Grow(4 + len(nt.Name) + int(nn.EncodedTensorBytes(nt.Tensor)))
	putString(&b, nt.Name)
	if err := nn.WriteTensor(&b, nt.Tensor); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func encodeOptSlot(slot OptSlot) []byte {
	var b bytes.Buffer
	b.Grow(8 + len(slot.Param) + len(slot.Slot) + 8 + 8*len(slot.Data))
	putString(&b, slot.Param)
	putString(&b, slot.Slot)
	putUint64(&b, uint64(len(slot.Data)))
	var scratch [8]byte
	for _, v := range slot.Data {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		b.Write(scratch[:])
	}
	return b.Bytes()
}

// encodeAll styles the raw frames — compression and CRC, the expensive part
// — in parallel. Every frame is encoded independently into its own buffer,
// so the resulting bytes are identical at any worker count.
func encodeAll(frames []rawFrame, style uint32) ([]encFrame, error) {
	out := make([]encFrame, len(frames))
	errs := make([]error, len(frames))
	parallel.ForChunks(len(frames), 1, func(i, _, _ int) {
		f := frames[i]
		ef := encFrame{typ: f.typ, style: style, rawLen: uint64(len(f.payload))}
		switch style {
		case StyleRaw:
			ef.enc = f.payload
		case StyleDeflate:
			var b bytes.Buffer
			fw := flateWriters.Get().(*flate.Writer)
			fw.Reset(&b)
			_, err := fw.Write(f.payload)
			if err == nil {
				err = fw.Close()
			}
			flateWriters.Put(fw)
			if err != nil {
				errs[i] = fmt.Errorf("ckpt: compressing frame %d: %w", i, err)
				return
			}
			ef.enc = b.Bytes()
		default:
			errs[i] = fmt.Errorf("ckpt: unknown frame style %d", style)
			return
		}
		ef.crc = crc32.ChecksumIEEE(ef.enc)
		out[i] = ef
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Write serializes the session to w in the framed checkpoint format. The
// bytes written are identical to Encode's: both modes share this code path.
func Write(w io.Writer, s *Session, opts ...Option) error {
	var cfg writeConfig
	cfg.style = StyleRaw
	for _, o := range opts {
		o(&cfg)
	}
	raw, err := buildFrames(s)
	if err != nil {
		return err
	}
	enc, err := encodeAll(raw, cfg.style)
	if err != nil {
		return err
	}
	var head [headerBytes]byte
	copy(head[:8], Magic)
	binary.LittleEndian.PutUint32(head[8:], FormatVersion)
	binary.LittleEndian.PutUint32(head[12:], uint32(len(enc)))
	if _, err := w.Write(head[:]); err != nil {
		return fmt.Errorf("ckpt: writing header: %w", err)
	}
	var fh [frameHeaderBytes]byte
	for i, f := range enc {
		binary.LittleEndian.PutUint32(fh[0:], f.typ)
		binary.LittleEndian.PutUint32(fh[4:], f.style)
		binary.LittleEndian.PutUint64(fh[8:], uint64(len(f.enc)))
		binary.LittleEndian.PutUint64(fh[16:], f.rawLen)
		binary.LittleEndian.PutUint32(fh[24:], f.crc)
		if _, err := w.Write(fh[:]); err != nil {
			return fmt.Errorf("ckpt: writing frame %d header: %w", i, err)
		}
		if _, err := w.Write(f.enc); err != nil {
			return fmt.Errorf("ckpt: writing frame %d payload: %w", i, err)
		}
	}
	return nil
}

// Encode serializes the session in memory, returning exactly the bytes Write
// would stream.
func Encode(s *Session, opts ...Option) ([]byte, error) {
	var b bytes.Buffer
	if err := Write(&b, s, opts...); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// Read deserializes a checkpoint from r. Frame payloads are gathered
// sequentially (the stream is read exactly once, in order) and then
// CRC-checked, decompressed and parsed in parallel. Any structural problem
// returns an error wrapping ErrCorrupt.
func Read(r io.Reader) (*Session, error) {
	var head [headerBytes]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, corruptf("reading header: %v", err)
	}
	if string(head[:8]) != Magic {
		return nil, corruptf("bad magic %q", head[:8])
	}
	if v := binary.LittleEndian.Uint32(head[8:]); v != FormatVersion {
		return nil, corruptf("unsupported format version %d", v)
	}
	count := binary.LittleEndian.Uint32(head[12:])
	if count == 0 || count > maxFrames {
		return nil, corruptf("implausible frame count %d", count)
	}

	// Grow the frame table as frames actually arrive: a corrupt count cannot
	// force one huge up-front allocation.
	frames := make([]encFrame, 0, min(count, 4096))
	for i := 0; i < int(count); i++ {
		var fh [frameHeaderBytes]byte
		if _, err := io.ReadFull(r, fh[:]); err != nil {
			return nil, corruptf("reading frame %d header: %v", i, err)
		}
		f := encFrame{
			typ:    binary.LittleEndian.Uint32(fh[0:]),
			style:  binary.LittleEndian.Uint32(fh[4:]),
			rawLen: binary.LittleEndian.Uint64(fh[16:]),
			crc:    binary.LittleEndian.Uint32(fh[24:]),
		}
		encLen := binary.LittleEndian.Uint64(fh[8:])
		if f.typ < frameMeta || f.typ > frameWorker {
			return nil, corruptf("frame %d has unknown type %d", i, f.typ)
		}
		if f.style != StyleRaw && f.style != StyleDeflate {
			return nil, corruptf("frame %d has unknown style %d", i, f.style)
		}
		if encLen > uint64(maxFrameBytes) || f.rawLen > uint64(maxFrameBytes) {
			return nil, corruptf("frame %d has implausible length (%d encoded, %d raw)", i, encLen, f.rawLen)
		}
		if f.style == StyleRaw && encLen != f.rawLen {
			return nil, corruptf("frame %d raw style with mismatched lengths (%d encoded, %d raw)", i, encLen, f.rawLen)
		}
		// Read through a growing buffer rather than one up-front allocation,
		// so a lying length costs only the bytes actually present.
		var b bytes.Buffer
		b.Grow(int(min(encLen, 1<<20)))
		if n, err := io.CopyN(&b, r, int64(encLen)); err != nil {
			return nil, corruptf("reading frame %d payload: got %d of %d bytes: %v", i, n, encLen, err)
		}
		f.enc = b.Bytes()
		frames = append(frames, f)
	}
	return decodeFrames(frames)
}

// Decode deserializes an in-memory checkpoint, additionally rejecting
// trailing garbage after the last frame.
func Decode(data []byte) (*Session, error) {
	r := bytes.NewReader(data)
	s, err := Read(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, corruptf("%d trailing bytes after the last frame", r.Len())
	}
	return s, nil
}

// decodeFrames verifies and parses every frame in parallel, then assembles
// the session in frame order and validates the counts the meta frame
// declares, so dropped or duplicated frames are always detected.
func decodeFrames(frames []encFrame) (*Session, error) {
	type parsed struct {
		meta   *Session
		param  *NamedTensor
		state  *NamedTensor
		opt    *OptimizerState
		slot   *OptSlot
		worker *WorkerState
	}
	out := make([]parsed, len(frames))
	errs := make([]error, len(frames))
	parallel.ForChunks(len(frames), 1, func(i, _, _ int) {
		f := frames[i]
		if got := crc32.ChecksumIEEE(f.enc); got != f.crc {
			errs[i] = corruptf("frame %d CRC mismatch (stored %#x, computed %#x)", i, f.crc, got)
			return
		}
		payload := f.enc
		if f.style == StyleDeflate {
			var b bytes.Buffer
			b.Grow(int(min(f.rawLen, 1<<20)))
			// Read one byte beyond the declared raw length so an understating
			// header is caught, not silently truncated.
			n, err := io.Copy(&b, io.LimitReader(flate.NewReader(bytes.NewReader(f.enc)), int64(f.rawLen)+1))
			if err != nil || uint64(n) != f.rawLen {
				errs[i] = corruptf("frame %d decompresses to %d bytes, header says %d (%v)", i, n, f.rawLen, err)
				return
			}
			payload = b.Bytes()
		}
		p := &out[i]
		var err error
		switch f.typ {
		case frameMeta:
			p.meta, err = parseMeta(payload)
		case frameParam:
			p.param, err = parseNamedTensor(payload)
		case frameLayerState:
			p.state, err = parseNamedTensor(payload)
		case frameOptMeta:
			p.opt, err = parseOptMeta(payload)
		case frameOptSlot:
			p.slot, err = parseOptSlot(payload)
		case frameWorker:
			p.worker, err = parseWorker(payload)
		}
		if err != nil {
			errs[i] = corruptf("frame %d (type %d): %v", i, f.typ, err)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var s *Session
	var optMeta *OptimizerState
	for i := range out {
		p := &out[i]
		switch {
		case p.meta != nil:
			if s != nil {
				return nil, corruptf("duplicate meta frame")
			}
			s = p.meta
		case s == nil:
			return nil, corruptf("frame %d precedes the meta frame", i)
		case p.param != nil:
			s.Params = append(s.Params, *p.param)
		case p.state != nil:
			s.LayerState = append(s.LayerState, *p.state)
		case p.opt != nil:
			if optMeta != nil {
				return nil, corruptf("duplicate optimizer meta frame")
			}
			optMeta = p.opt
			s.Opt.Name = p.opt.Name
			s.Opt.Step = p.opt.Step
		case p.slot != nil:
			s.Opt.Slots = append(s.Opt.Slots, *p.slot)
		case p.worker != nil:
			s.Workers = append(s.Workers, *p.worker)
		}
	}
	if s == nil {
		return nil, corruptf("missing meta frame")
	}
	if optMeta == nil {
		return nil, corruptf("missing optimizer meta frame")
	}
	// The meta frame pins the expected composition; every mismatch means a
	// frame was lost, duplicated or mistyped.
	if len(s.Params) != s.declParams || len(s.LayerState) != s.declStates ||
		len(s.Opt.Slots) != s.declOptSlots || len(s.Workers) != s.declWorkers ||
		len(s.Opt.Slots) != optMeta.declSlots {
		return nil, corruptf("frame composition mismatch: have %d params/%d states/%d opt slots/%d workers, meta declares %d/%d/%d/%d (optimizer meta %d slots)",
			len(s.Params), len(s.LayerState), len(s.Opt.Slots), len(s.Workers),
			s.declParams, s.declStates, s.declOptSlots, s.declWorkers, optMeta.declSlots)
	}
	// The declared counts served their purpose; return a plain-data session.
	s.declParams, s.declStates, s.declOptSlots, s.declWorkers = 0, 0, 0, 0
	s.Opt.declSlots = 0
	return s, nil
}

// payloadReader is a bounds-checked little-endian cursor over one frame
// payload. Every read error marks the payload corrupt.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (p *payloadReader) fail(what string) {
	if p.err == nil {
		p.err = fmt.Errorf("truncated payload reading %s at offset %d", what, p.off)
	}
}

func (p *payloadReader) take(n int, what string) []byte {
	if p.err != nil {
		return nil
	}
	if n < 0 || p.off+n > len(p.b) || p.off+n < p.off {
		p.fail(what)
		return nil
	}
	b := p.b[p.off : p.off+n]
	p.off += n
	return b
}

func (p *payloadReader) uint32(what string) uint32 {
	b := p.take(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (p *payloadReader) uint64(what string) uint64 {
	b := p.take(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (p *payloadReader) int64(what string) int64 { return int64(p.uint64(what)) }

func (p *payloadReader) string(what string) string {
	n := p.uint32(what + " length")
	if p.err != nil {
		return ""
	}
	if n > uint32(len(p.b)) {
		p.fail(what)
		return ""
	}
	b := p.take(int(n), what)
	return string(b)
}

func (p *payloadReader) done() error {
	if p.err != nil {
		return p.err
	}
	if p.off != len(p.b) {
		return fmt.Errorf("%d leftover bytes in payload", len(p.b)-p.off)
	}
	return nil
}

// Declared-count fields live on Session/OptimizerState only during decoding;
// they are never serialized from these fields (the meta frame carries them).
// Keeping them unexported keeps the public structs plain data.

func parseMeta(payload []byte) (*Session, error) {
	p := &payloadReader{b: payload}
	s := &Session{}
	s.Kind = p.string("kind")
	s.LibraryVersion = p.string("library version")
	s.Epoch = int(p.int64("epoch"))
	s.Step = int(p.int64("step"))
	s.Round = int(p.int64("round"))
	s.BatchSize = int(p.int64("batch size"))
	s.Seed = p.uint64("seed")
	nRNG := p.uint32("rng word count")
	if p.err == nil && nRNG > 64 {
		return nil, fmt.Errorf("implausible RNG word count %d", nRNG)
	}
	for i := uint32(0); i < nRNG && p.err == nil; i++ {
		s.RNG = append(s.RNG, p.uint64("rng word"))
	}
	s.declParams = int(p.uint32("param count"))
	s.declStates = int(p.uint32("layer state count"))
	s.declOptSlots = int(p.uint32("opt slot count"))
	s.declWorkers = int(p.uint32("worker count"))
	if err := p.done(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseNamedTensor(payload []byte) (*NamedTensor, error) {
	p := &payloadReader{b: payload}
	name := p.string("name")
	if p.err != nil {
		return nil, p.err
	}
	rest := p.b[p.off:]
	t, err := nn.ReadTensor(bytes.NewReader(rest))
	if err != nil {
		return nil, err
	}
	if nn.EncodedTensorBytes(t) != int64(len(rest)) {
		return nil, fmt.Errorf("%d leftover bytes after tensor %q", int64(len(rest))-nn.EncodedTensorBytes(t), name)
	}
	return &NamedTensor{Name: name, Tensor: t}, nil
}

func parseOptMeta(payload []byte) (*OptimizerState, error) {
	p := &payloadReader{b: payload}
	st := &OptimizerState{}
	st.Name = p.string("optimizer name")
	st.Step = p.int64("optimizer step")
	st.declSlots = int(p.uint32("optimizer slot count"))
	if err := p.done(); err != nil {
		return nil, err
	}
	return st, nil
}

// parseOptSlotAt reads one slot vector from the cursor.
func parseOptSlotAt(p *payloadReader) (OptSlot, error) {
	var slot OptSlot
	slot.Param = p.string("slot parameter name")
	slot.Slot = p.string("slot name")
	n := p.uint64("slot element count")
	if p.err != nil {
		return slot, p.err
	}
	// Bound before the int conversion so 32-bit targets reject a lying
	// count instead of truncating it (same discipline as nn.ReadTensor).
	if n > uint64(maxSlotElems) || n > uint64(math.MaxInt/8) {
		return slot, fmt.Errorf("implausible slot element count %d", n)
	}
	b := p.take(int(n)*8, "slot data")
	if p.err != nil {
		return slot, p.err
	}
	slot.Data = make([]float64, n)
	for i := range slot.Data {
		slot.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return slot, nil
}

func parseOptSlot(payload []byte) (*OptSlot, error) {
	p := &payloadReader{b: payload}
	slot, err := parseOptSlotAt(p)
	if err != nil {
		return nil, err
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	return &slot, nil
}

func parseWorker(payload []byte) (*WorkerState, error) {
	p := &payloadReader{b: payload}
	w := &WorkerState{}
	w.Name = p.string("worker name")
	w.Index = int(p.int64("worker index"))
	w.Rounds = p.int64("worker rounds")
	w.Samples = p.int64("worker samples")
	w.Opt.Name = p.string("worker optimizer name")
	w.Opt.Step = p.int64("worker optimizer step")
	nslots := p.uint32("worker slot count")
	if p.err != nil {
		return nil, p.err
	}
	if nslots > maxFrames {
		return nil, fmt.Errorf("implausible worker slot count %d", nslots)
	}
	for i := uint32(0); i < nslots; i++ {
		slot, err := parseOptSlotAt(p)
		if err != nil {
			return nil, err
		}
		w.Opt.Slots = append(w.Opt.Slots, slot)
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	return w, nil
}

// Little-endian buffer writers for payload construction.

func putUint32(b *bytes.Buffer, v uint32) {
	var s [4]byte
	binary.LittleEndian.PutUint32(s[:], v)
	b.Write(s[:])
}

func putUint64(b *bytes.Buffer, v uint64) {
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], v)
	b.Write(s[:])
}

func putInt64(b *bytes.Buffer, v int64) { putUint64(b, uint64(v)) }

func putString(b *bytes.Buffer, s string) {
	putUint32(b, uint32(len(s)))
	b.WriteString(s)
}
