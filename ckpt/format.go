package ckpt

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/parallel"
	"github.com/edgeml/edgetrain/internal/wire"
)

// Format constants. The magic doubles as a human-greppable file signature.
const (
	// Magic is the 8-byte file signature opening every checkpoint.
	Magic = "EDGCKPT1"
	// FormatVersion is the current binary layout version.
	FormatVersion = 1

	headerBytes = 16 // magic + version + frame count
	// FrameHeaderBytes is the fixed size of one frame header
	// (type + style + encoded len + raw len + CRC32).
	FrameHeaderBytes = 28
)

// Frame styles: how a frame's payload bytes are encoded.
const (
	// StyleRaw stores the payload verbatim; encoded len == raw len.
	StyleRaw = uint32(0)
	// StyleDeflate stores the payload DEFLATE-compressed (compress/flate).
	// Frames compress independently, so parallel encoding stays
	// bit-deterministic.
	StyleDeflate = uint32(1)
)

// Frame types: what one frame carries. Unknown types are a decode error, so
// a flipped type byte can never be silently skipped.
const (
	frameMeta       = uint32(1) // cursors, seed, RNG, counts of the other frames
	frameParam      = uint32(2) // one model parameter tensor
	frameLayerState = uint32(3) // one non-trainable layer state tensor
	frameOptMeta    = uint32(4) // optimizer name, step, slot count
	frameOptSlot    = uint32(5) // one optimizer state vector
	frameWorker     = uint32(6) // one fleet worker's progress
)

// Sanity bounds: a corrupt header must yield a typed error, not an absurd
// allocation. Actual reads grow incrementally, so a lying length costs at
// most the bytes really present in the stream.
const (
	maxFrames     = 1 << 22 // 4M frames
	maxFrameBytes = int64(1) << 40
	maxSlotElems  = int64(1) << 40
)

// Option tunes how a checkpoint is written.
type Option func(*writeConfig)

type writeConfig struct {
	style uint32
}

// WithCompression selects the DEFLATE frame style for every frame. The
// default is raw frames: on an SD-card-backed edge node the fsync dominates,
// and raw bytes round-trip fastest.
func WithCompression() Option {
	return func(c *writeConfig) { c.style = StyleDeflate }
}

// flateWriters pools DEFLATE compressors: a fresh flate.Writer allocates
// ~1 MB of window state, which would otherwise be paid once per frame.
// Reset produces output bit-identical to a newly constructed writer, so
// pooling does not perturb the format's determinism.
var flateWriters = sync.Pool{New: func() any {
	w, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		// BestSpeed is a valid level; NewWriter cannot fail on it.
		panic(err)
	}
	return w
}}

// Frame is the codec unit shared by the on-disk checkpoint format and the
// fleet coordination wire protocol (package coord): a caller-defined type tag
// and an opaque payload, carried raw or DEFLATE-compressed behind a CRC32 of
// the encoded bytes. WriteFrame and ReadFrame move single frames through the
// exact byte layout checkpoint files use, so a network peer's update payload
// enjoys the same corruption detection as a checkpoint on flash.
type Frame struct {
	// Type tags the payload. The checkpoint file format reserves types 1-6;
	// other consumers (the coord wire protocol) use their own ranges.
	Type uint32
	// Payload is the raw (decoded) payload bytes.
	Payload []byte
}

// rawFrame is one frame before styling: its type and raw payload bytes.
type rawFrame struct {
	typ     uint32
	payload []byte
}

// encFrame is one frame after styling: encoded payload plus header fields.
type encFrame struct {
	typ    uint32
	style  uint32
	rawLen uint64
	crc    uint32
	enc    []byte
}

// encodeFramePayload styles one payload (verbatim or DEFLATE) and computes
// the CRC32 of the encoded bytes — the per-frame work both the parallel
// checkpoint writer and the single-frame WriteFrame share.
func encodeFramePayload(payload []byte, style uint32) (enc []byte, crc uint32, err error) {
	switch style {
	case StyleRaw:
		enc = payload
	case StyleDeflate:
		var b bytes.Buffer
		fw := flateWriters.Get().(*flate.Writer)
		fw.Reset(&b)
		_, err := fw.Write(payload)
		if err == nil {
			err = fw.Close()
		}
		flateWriters.Put(fw)
		if err != nil {
			return nil, 0, fmt.Errorf("ckpt: compressing frame: %w", err)
		}
		enc = b.Bytes()
	default:
		return nil, 0, fmt.Errorf("ckpt: unknown frame style %d", style)
	}
	return enc, crc32.ChecksumIEEE(enc), nil
}

// decodeFramePayload verifies one encoded frame's CRC and undoes its style,
// returning the raw payload — shared by the parallel checkpoint decoder and
// the single-frame ReadFrame. idx labels the frame in error messages.
func decodeFramePayload(f encFrame, idx int) ([]byte, error) {
	if got := crc32.ChecksumIEEE(f.enc); got != f.crc {
		return nil, corruptf("frame %d CRC mismatch (stored %#x, computed %#x)", idx, f.crc, got)
	}
	if f.style == StyleRaw {
		return f.enc, nil
	}
	var b bytes.Buffer
	b.Grow(int(min(f.rawLen, 1<<20)))
	// Read one byte beyond the declared raw length so an understating
	// header is caught, not silently truncated.
	n, err := io.Copy(&b, io.LimitReader(flate.NewReader(bytes.NewReader(f.enc)), int64(f.rawLen)+1))
	if err != nil || uint64(n) != f.rawLen {
		return nil, corruptf("frame %d decompresses to %d bytes, header says %d (%v)", idx, n, f.rawLen, err)
	}
	return b.Bytes(), nil
}

// WriteFrame encodes one frame to w in the checkpoint frame layout — the
// 28-byte header (type, style, encoded length, raw length, CRC32-IEEE) and
// the styled payload — and returns the total bytes written. It is the unit
// the coord wire protocol frames every message with; the bytes are identical
// to the corresponding frame of a checkpoint file.
func WriteFrame(w io.Writer, f Frame, style uint32) (int, error) {
	enc, crc, err := encodeFramePayload(f.Payload, style)
	if err != nil {
		return 0, err
	}
	var fh [FrameHeaderBytes]byte
	binary.LittleEndian.PutUint32(fh[0:], f.Type)
	binary.LittleEndian.PutUint32(fh[4:], style)
	binary.LittleEndian.PutUint64(fh[8:], uint64(len(enc)))
	binary.LittleEndian.PutUint64(fh[16:], uint64(len(f.Payload)))
	binary.LittleEndian.PutUint32(fh[24:], crc)
	if _, err := w.Write(fh[:]); err != nil {
		return 0, fmt.Errorf("ckpt: writing frame header: %w", err)
	}
	if _, err := w.Write(enc); err != nil {
		return FrameHeaderBytes, fmt.Errorf("ckpt: writing frame payload: %w", err)
	}
	return FrameHeaderBytes + len(enc), nil
}

// readEncFrame reads one frame header and its encoded payload from r without
// decoding it. maxBytes bounds both declared lengths; idx labels the frame in
// error messages. The payload is read through a growing buffer, so a lying
// length costs only the bytes actually present.
func readEncFrame(r io.Reader, idx int, maxBytes int64) (encFrame, int, error) {
	var fh [FrameHeaderBytes]byte
	if _, err := io.ReadFull(r, fh[:]); err != nil {
		return encFrame{}, 0, corruptf("reading frame %d header: %v", idx, err)
	}
	f := encFrame{
		typ:    binary.LittleEndian.Uint32(fh[0:]),
		style:  binary.LittleEndian.Uint32(fh[4:]),
		rawLen: binary.LittleEndian.Uint64(fh[16:]),
		crc:    binary.LittleEndian.Uint32(fh[24:]),
	}
	encLen := binary.LittleEndian.Uint64(fh[8:])
	if f.style != StyleRaw && f.style != StyleDeflate {
		return encFrame{}, 0, corruptf("frame %d has unknown style %d", idx, f.style)
	}
	if encLen > uint64(maxBytes) || f.rawLen > uint64(maxBytes) {
		return encFrame{}, 0, corruptf("frame %d has implausible length (%d encoded, %d raw)", idx, encLen, f.rawLen)
	}
	if f.style == StyleRaw && encLen != f.rawLen {
		return encFrame{}, 0, corruptf("frame %d raw style with mismatched lengths (%d encoded, %d raw)", idx, encLen, f.rawLen)
	}
	var b bytes.Buffer
	b.Grow(int(min(encLen, 1<<20)))
	if n, err := io.CopyN(&b, r, int64(encLen)); err != nil {
		return encFrame{}, 0, corruptf("reading frame %d payload: got %d of %d bytes: %v", idx, n, encLen, err)
	}
	f.enc = b.Bytes()
	return f, FrameHeaderBytes + int(encLen), nil
}

// ReadFrame reads one frame written by WriteFrame: header validation, an
// incremental bounded payload read, CRC verification and decompression. It
// returns the decoded frame and the total bytes consumed. maxBytes bounds the
// frame's declared sizes (a DoS guard when the reader faces a network peer
// rather than a local file); maxBytes <= 0 applies the format's global bound.
// Frame types are not interpreted — each consumer owns its type namespace.
// Every structural defect is reported as an error wrapping ErrCorrupt.
func ReadFrame(r io.Reader, maxBytes int64) (Frame, int, error) {
	if maxBytes <= 0 {
		maxBytes = maxFrameBytes
	}
	f, n, err := readEncFrame(r, 0, maxBytes)
	if err != nil {
		return Frame{}, 0, err
	}
	payload, err := decodeFramePayload(f, 0)
	if err != nil {
		return Frame{}, n, err
	}
	return Frame{Type: f.typ, Payload: payload}, n, nil
}

// buildFrames lays the session out as raw frames in the canonical order:
// meta, params, layer state, optimizer meta, optimizer slots, workers. The
// order is part of the format: decode reassembles slices in frame order.
func buildFrames(s *Session) ([]rawFrame, error) {
	frames := make([]rawFrame, 0,
		1+len(s.Params)+len(s.LayerState)+1+len(s.Opt.Slots)+len(s.Workers))

	var meta bytes.Buffer
	wire.PutString(&meta, s.Kind)
	wire.PutString(&meta, s.LibraryVersion)
	wire.PutInt64(&meta, int64(s.Epoch))
	wire.PutInt64(&meta, int64(s.Step))
	wire.PutInt64(&meta, int64(s.Round))
	wire.PutInt64(&meta, int64(s.BatchSize))
	wire.PutUint64(&meta, s.Seed)
	wire.PutUint32(&meta, uint32(len(s.RNG)))
	for _, w := range s.RNG {
		wire.PutUint64(&meta, w)
	}
	wire.PutUint32(&meta, uint32(len(s.Params)))
	wire.PutUint32(&meta, uint32(len(s.LayerState)))
	wire.PutUint32(&meta, uint32(len(s.Opt.Slots)))
	wire.PutUint32(&meta, uint32(len(s.Workers)))
	frames = append(frames, rawFrame{frameMeta, meta.Bytes()})

	for _, nt := range s.Params {
		b, err := encodeNamedTensor(nt)
		if err != nil {
			return nil, fmt.Errorf("ckpt: encoding parameter %q: %w", nt.Name, err)
		}
		frames = append(frames, rawFrame{frameParam, b})
	}
	for _, nt := range s.LayerState {
		b, err := encodeNamedTensor(nt)
		if err != nil {
			return nil, fmt.Errorf("ckpt: encoding layer state %q: %w", nt.Name, err)
		}
		frames = append(frames, rawFrame{frameLayerState, b})
	}

	var om bytes.Buffer
	wire.PutString(&om, s.Opt.Name)
	wire.PutInt64(&om, s.Opt.Step)
	wire.PutUint32(&om, uint32(len(s.Opt.Slots)))
	frames = append(frames, rawFrame{frameOptMeta, om.Bytes()})
	for _, slot := range s.Opt.Slots {
		frames = append(frames, rawFrame{frameOptSlot, encodeOptSlot(slot)})
	}

	for i := range s.Workers {
		frames = append(frames, rawFrame{frameWorker, EncodeWorkerState(&s.Workers[i])})
	}
	return frames, nil
}

func encodeNamedTensor(nt NamedTensor) ([]byte, error) {
	if nt.Tensor == nil {
		return nil, fmt.Errorf("nil tensor")
	}
	var b bytes.Buffer
	b.Grow(4 + len(nt.Name) + int(nn.EncodedTensorBytes(nt.Tensor)))
	wire.PutString(&b, nt.Name)
	if err := nn.WriteTensor(&b, nt.Tensor); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func encodeOptSlot(slot OptSlot) []byte {
	var b bytes.Buffer
	b.Grow(8 + len(slot.Param) + len(slot.Slot) + 8 + 8*len(slot.Data))
	wire.PutString(&b, slot.Param)
	wire.PutString(&b, slot.Slot)
	wire.PutUint64(&b, uint64(len(slot.Data)))
	var scratch [8]byte
	for _, v := range slot.Data {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		b.Write(scratch[:])
	}
	return b.Bytes()
}

// EncodeWorkerState serializes one worker's durable progress — index, name,
// round/sample counters and optimizer state — in exactly the payload layout
// of a checkpoint file's worker frame. The coord protocol reuses it to carry
// recovered worker state to a rejoining node.
func EncodeWorkerState(w *WorkerState) []byte {
	var wb bytes.Buffer
	wire.PutString(&wb, w.Name)
	wire.PutInt64(&wb, int64(w.Index))
	wire.PutInt64(&wb, w.Rounds)
	wire.PutInt64(&wb, w.Samples)
	wire.PutString(&wb, w.Opt.Name)
	wire.PutInt64(&wb, w.Opt.Step)
	wire.PutUint32(&wb, uint32(len(w.Opt.Slots)))
	for _, slot := range w.Opt.Slots {
		wb.Write(encodeOptSlot(slot))
	}
	return wb.Bytes()
}

// DecodeWorkerState parses a payload written by EncodeWorkerState.
func DecodeWorkerState(payload []byte) (*WorkerState, error) {
	return parseWorker(payload)
}

// encodeAll styles the raw frames — compression and CRC, the expensive part
// — in parallel. Every frame is encoded independently into its own buffer,
// so the resulting bytes are identical at any worker count.
func encodeAll(frames []rawFrame, style uint32) ([]encFrame, error) {
	out := make([]encFrame, len(frames))
	errs := make([]error, len(frames))
	parallel.ForChunks(len(frames), 1, func(i, _, _ int) {
		f := frames[i]
		enc, crc, err := encodeFramePayload(f.payload, style)
		if err != nil {
			errs[i] = fmt.Errorf("ckpt: frame %d: %w", i, err)
			return
		}
		out[i] = encFrame{typ: f.typ, style: style, rawLen: uint64(len(f.payload)), crc: crc, enc: enc}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Write serializes the session to w in the framed checkpoint format. The
// bytes written are identical to Encode's: both modes share this code path.
func Write(w io.Writer, s *Session, opts ...Option) error {
	var cfg writeConfig
	cfg.style = StyleRaw
	for _, o := range opts {
		o(&cfg)
	}
	raw, err := buildFrames(s)
	if err != nil {
		return err
	}
	enc, err := encodeAll(raw, cfg.style)
	if err != nil {
		return err
	}
	var head [headerBytes]byte
	copy(head[:8], Magic)
	binary.LittleEndian.PutUint32(head[8:], FormatVersion)
	binary.LittleEndian.PutUint32(head[12:], uint32(len(enc)))
	if _, err := w.Write(head[:]); err != nil {
		return fmt.Errorf("ckpt: writing header: %w", err)
	}
	var fh [FrameHeaderBytes]byte
	for i, f := range enc {
		binary.LittleEndian.PutUint32(fh[0:], f.typ)
		binary.LittleEndian.PutUint32(fh[4:], f.style)
		binary.LittleEndian.PutUint64(fh[8:], uint64(len(f.enc)))
		binary.LittleEndian.PutUint64(fh[16:], f.rawLen)
		binary.LittleEndian.PutUint32(fh[24:], f.crc)
		if _, err := w.Write(fh[:]); err != nil {
			return fmt.Errorf("ckpt: writing frame %d header: %w", i, err)
		}
		if _, err := w.Write(f.enc); err != nil {
			return fmt.Errorf("ckpt: writing frame %d payload: %w", i, err)
		}
	}
	return nil
}

// Encode serializes the session in memory, returning exactly the bytes Write
// would stream.
func Encode(s *Session, opts ...Option) ([]byte, error) {
	var b bytes.Buffer
	if err := Write(&b, s, opts...); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// Read deserializes a checkpoint from r. Frame payloads are gathered
// sequentially (the stream is read exactly once, in order) and then
// CRC-checked, decompressed and parsed in parallel. Any structural problem
// returns an error wrapping ErrCorrupt.
func Read(r io.Reader) (*Session, error) {
	var head [headerBytes]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, corruptf("reading header: %v", err)
	}
	if string(head[:8]) != Magic {
		return nil, corruptf("bad magic %q", head[:8])
	}
	if v := binary.LittleEndian.Uint32(head[8:]); v != FormatVersion {
		return nil, corruptf("unsupported format version %d", v)
	}
	count := binary.LittleEndian.Uint32(head[12:])
	if count == 0 || count > maxFrames {
		return nil, corruptf("implausible frame count %d", count)
	}

	// Grow the frame table as frames actually arrive: a corrupt count cannot
	// force one huge up-front allocation.
	frames := make([]encFrame, 0, min(count, 4096))
	for i := 0; i < int(count); i++ {
		f, _, err := readEncFrame(r, i, maxFrameBytes)
		if err != nil {
			return nil, err
		}
		if f.typ < frameMeta || f.typ > frameWorker {
			return nil, corruptf("frame %d has unknown type %d", i, f.typ)
		}
		frames = append(frames, f)
	}
	return decodeFrames(frames)
}

// Decode deserializes an in-memory checkpoint, additionally rejecting
// trailing garbage after the last frame.
func Decode(data []byte) (*Session, error) {
	r := bytes.NewReader(data)
	s, err := Read(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, corruptf("%d trailing bytes after the last frame", r.Len())
	}
	return s, nil
}

// decodeFrames verifies and parses every frame in parallel, then assembles
// the session in frame order and validates the counts the meta frame
// declares, so dropped or duplicated frames are always detected.
func decodeFrames(frames []encFrame) (*Session, error) {
	type parsed struct {
		meta   *Session
		param  *NamedTensor
		state  *NamedTensor
		opt    *OptimizerState
		slot   *OptSlot
		worker *WorkerState
	}
	out := make([]parsed, len(frames))
	errs := make([]error, len(frames))
	parallel.ForChunks(len(frames), 1, func(i, _, _ int) {
		f := frames[i]
		payload, err := decodeFramePayload(f, i)
		if err != nil {
			errs[i] = err
			return
		}
		p := &out[i]
		switch f.typ {
		case frameMeta:
			p.meta, err = parseMeta(payload)
		case frameParam:
			p.param, err = parseNamedTensor(payload)
		case frameLayerState:
			p.state, err = parseNamedTensor(payload)
		case frameOptMeta:
			p.opt, err = parseOptMeta(payload)
		case frameOptSlot:
			p.slot, err = parseOptSlot(payload)
		case frameWorker:
			p.worker, err = parseWorker(payload)
		}
		if err != nil {
			errs[i] = corruptf("frame %d (type %d): %v", i, f.typ, err)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var s *Session
	var optMeta *OptimizerState
	for i := range out {
		p := &out[i]
		switch {
		case p.meta != nil:
			if s != nil {
				return nil, corruptf("duplicate meta frame")
			}
			s = p.meta
		case s == nil:
			return nil, corruptf("frame %d precedes the meta frame", i)
		case p.param != nil:
			s.Params = append(s.Params, *p.param)
		case p.state != nil:
			s.LayerState = append(s.LayerState, *p.state)
		case p.opt != nil:
			if optMeta != nil {
				return nil, corruptf("duplicate optimizer meta frame")
			}
			optMeta = p.opt
			s.Opt.Name = p.opt.Name
			s.Opt.Step = p.opt.Step
		case p.slot != nil:
			s.Opt.Slots = append(s.Opt.Slots, *p.slot)
		case p.worker != nil:
			s.Workers = append(s.Workers, *p.worker)
		}
	}
	if s == nil {
		return nil, corruptf("missing meta frame")
	}
	if optMeta == nil {
		return nil, corruptf("missing optimizer meta frame")
	}
	// The meta frame pins the expected composition; every mismatch means a
	// frame was lost, duplicated or mistyped.
	if len(s.Params) != s.declParams || len(s.LayerState) != s.declStates ||
		len(s.Opt.Slots) != s.declOptSlots || len(s.Workers) != s.declWorkers ||
		len(s.Opt.Slots) != optMeta.declSlots {
		return nil, corruptf("frame composition mismatch: have %d params/%d states/%d opt slots/%d workers, meta declares %d/%d/%d/%d (optimizer meta %d slots)",
			len(s.Params), len(s.LayerState), len(s.Opt.Slots), len(s.Workers),
			s.declParams, s.declStates, s.declOptSlots, s.declWorkers, optMeta.declSlots)
	}
	// The declared counts served their purpose; return a plain-data session.
	s.declParams, s.declStates, s.declOptSlots, s.declWorkers = 0, 0, 0, 0
	s.Opt.declSlots = 0
	return s, nil
}

// Declared-count fields live on Session/OptimizerState only during decoding;
// they are never serialized from these fields (the meta frame carries them).
// Keeping them unexported keeps the public structs plain data.

func parseMeta(payload []byte) (*Session, error) {
	p := wire.NewReader(payload)
	s := &Session{}
	s.Kind = p.String("kind")
	s.LibraryVersion = p.String("library version")
	s.Epoch = int(p.Int64("epoch"))
	s.Step = int(p.Int64("step"))
	s.Round = int(p.Int64("round"))
	s.BatchSize = int(p.Int64("batch size"))
	s.Seed = p.Uint64("seed")
	nRNG := p.Uint32("rng word count")
	if p.Err() == nil && nRNG > 64 {
		return nil, fmt.Errorf("implausible RNG word count %d", nRNG)
	}
	for i := uint32(0); i < nRNG && p.Err() == nil; i++ {
		s.RNG = append(s.RNG, p.Uint64("rng word"))
	}
	s.declParams = int(p.Uint32("param count"))
	s.declStates = int(p.Uint32("layer state count"))
	s.declOptSlots = int(p.Uint32("opt slot count"))
	s.declWorkers = int(p.Uint32("worker count"))
	if err := p.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseNamedTensor(payload []byte) (*NamedTensor, error) {
	p := wire.NewReader(payload)
	name := p.String("name")
	if err := p.Err(); err != nil {
		return nil, err
	}
	rest := p.Rest()
	t, err := nn.ReadTensor(bytes.NewReader(rest))
	if err != nil {
		return nil, err
	}
	if nn.EncodedTensorBytes(t) != int64(len(rest)) {
		return nil, fmt.Errorf("%d leftover bytes after tensor %q", int64(len(rest))-nn.EncodedTensorBytes(t), name)
	}
	return &NamedTensor{Name: name, Tensor: t}, nil
}

func parseOptMeta(payload []byte) (*OptimizerState, error) {
	p := wire.NewReader(payload)
	st := &OptimizerState{}
	st.Name = p.String("optimizer name")
	st.Step = p.Int64("optimizer step")
	st.declSlots = int(p.Uint32("optimizer slot count"))
	if err := p.Done(); err != nil {
		return nil, err
	}
	return st, nil
}

// parseOptSlotAt reads one slot vector from the cursor.
func parseOptSlotAt(p *wire.Reader) (OptSlot, error) {
	var slot OptSlot
	slot.Param = p.String("slot parameter name")
	slot.Slot = p.String("slot name")
	n := p.Uint64("slot element count")
	if err := p.Err(); err != nil {
		return slot, err
	}
	// Bound before the int conversion so 32-bit targets reject a lying
	// count instead of truncating it (same discipline as nn.ReadTensor).
	if n > uint64(maxSlotElems) || n > uint64(math.MaxInt/8) {
		return slot, fmt.Errorf("implausible slot element count %d", n)
	}
	b := p.Take(int(n)*8, "slot data")
	if err := p.Err(); err != nil {
		return slot, err
	}
	slot.Data = make([]float64, n)
	for i := range slot.Data {
		slot.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return slot, nil
}

func parseOptSlot(payload []byte) (*OptSlot, error) {
	p := wire.NewReader(payload)
	slot, err := parseOptSlotAt(p)
	if err != nil {
		return nil, err
	}
	if err := p.Done(); err != nil {
		return nil, err
	}
	return &slot, nil
}

func parseWorker(payload []byte) (*WorkerState, error) {
	p := wire.NewReader(payload)
	w := &WorkerState{}
	w.Name = p.String("worker name")
	w.Index = int(p.Int64("worker index"))
	w.Rounds = p.Int64("worker rounds")
	w.Samples = p.Int64("worker samples")
	w.Opt.Name = p.String("worker optimizer name")
	w.Opt.Step = p.Int64("worker optimizer step")
	nslots := p.Uint32("worker slot count")
	if err := p.Err(); err != nil {
		return nil, err
	}
	if nslots > maxFrames {
		return nil, fmt.Errorf("implausible worker slot count %d", nslots)
	}
	for i := uint32(0); i < nslots; i++ {
		slot, err := parseOptSlotAt(p)
		if err != nil {
			return nil, err
		}
		w.Opt.Slots = append(w.Opt.Slots, slot)
	}
	if err := p.Done(); err != nil {
		return nil, err
	}
	return w, nil
}
