package plan

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/schedule"
)

// The built-in strategies adapt the algorithm layer in internal/checkpoint to
// the Strategy interface. Each is a stateless value, so sharing them through
// the registry is safe for concurrent planners.

// strategyFunc implements Strategy for a plain planning function.
type strategyFunc struct {
	info StrategyInfo
	plan func(spec ChainSpec, o Options) (schedule.Schedule, error)
}

func (s strategyFunc) Plan(spec ChainSpec, opts ...Option) (schedule.Schedule, error) {
	if spec.Length < 0 {
		return nil, fmt.Errorf("plan: negative chain length %d", spec.Length)
	}
	return s.plan(spec, Gather(opts))
}

func (s strategyFunc) Describe() StrategyInfo { return s.info }

// costModel resolves the cost model from the options.
func costModel(o Options) checkpoint.CostModel {
	if o.BackwardRatio > 0 {
		return checkpoint.CostModel{BackwardRatio: o.BackwardRatio}
	}
	return checkpoint.DefaultCostModel
}

func init() {
	Register("revolve", strategyFunc{
		info: StrategyInfo{
			Name:        "revolve",
			Description: "optimal (binomial/Revolve) checkpointing: minimum forward work for a slot budget",
			Options:     []string{"slots", "rho", "backward-ratio"},
		},
		plan: func(spec ChainSpec, o Options) (schedule.Schedule, error) {
			slots := o.Slots
			if slots <= 0 && o.Rho > 0 {
				slots = checkpoint.MinSlotsForRho(spec.Length, o.Rho, costModel(o)).Slots
			}
			if slots <= 0 && spec.Length > 1 {
				return nil, fmt.Errorf("plan: revolve needs WithSlots or WithRho")
			}
			s, err := checkpoint.PlanRevolve(spec.Length, slots)
			if err != nil {
				return nil, err
			}
			return s.Stream(), nil
		},
	})

	Register("sequential", strategyFunc{
		info: StrategyInfo{
			Name:        "sequential",
			Description: "PyTorch checkpoint_sequential: uniform segments, last segment stored in full",
			Options:     []string{"segments", "rho", "backward-ratio"},
		},
		plan: func(spec ChainSpec, o Options) (schedule.Schedule, error) {
			segments := o.Segments
			if segments <= 0 && o.Rho > 0 {
				_, s, ok := checkpoint.MinSequentialSlotsForRho(spec.Length, o.Rho, costModel(o))
				if !ok {
					return nil, fmt.Errorf("plan: sequential cannot meet rho<=%.3f for length %d", o.Rho, spec.Length)
				}
				segments = s
			}
			if segments <= 0 && spec.Length <= 1 {
				segments = 1 // a trivial chain needs no tunable
			}
			if segments <= 0 {
				return nil, fmt.Errorf("plan: sequential needs WithSegments or WithRho")
			}
			s, err := checkpoint.PlanSequential(spec.Length, segments)
			if err != nil {
				return nil, err
			}
			return s.Stream(), nil
		},
	})

	Register("periodic", strategyFunc{
		info: StrategyInfo{
			Name:        "periodic",
			Description: "checkpoint every k-th state, recomputing within each period",
			Options:     []string{"interval", "rho", "backward-ratio"},
		},
		plan: func(spec ChainSpec, o Options) (schedule.Schedule, error) {
			interval := o.Interval
			if interval <= 0 && o.Rho > 0 {
				// Choose the interval with the fewest retained states whose
				// recompute factor stays within the budget.
				m := costModel(o)
				bestSlots := -1
				for k := 1; k <= spec.Length; k++ {
					segments := (spec.Length + k - 1) / k
					fw := checkpoint.SequentialForwards(spec.Length, segments)
					if m.Rho(spec.Length, fw) > o.Rho+1e-12 {
						continue
					}
					if s := checkpoint.PeriodicMemorySlots(spec.Length, k); bestSlots == -1 || s < bestSlots {
						bestSlots, interval = s, k
					}
				}
				if interval <= 0 {
					return nil, fmt.Errorf("plan: periodic cannot meet rho<=%.3f for length %d", o.Rho, spec.Length)
				}
			}
			if interval <= 0 && spec.Length <= 1 {
				interval = 1 // a trivial chain needs no tunable
			}
			if interval <= 0 {
				return nil, fmt.Errorf("plan: periodic needs WithInterval or WithRho")
			}
			s, err := checkpoint.PlanPeriodic(spec.Length, interval)
			if err != nil {
				return nil, err
			}
			return s.Stream(), nil
		},
	})

	Register("logspaced", strategyFunc{
		info: StrategyInfo{
			Name:        "logspaced",
			Description: "states at power-of-two distances from the end: O(log l) memory, up to O(l) recompute",
			Options:     nil,
		},
		plan: func(spec ChainSpec, o Options) (schedule.Schedule, error) {
			s, err := checkpoint.PlanLogSpaced(spec.Length)
			if err != nil {
				return nil, err
			}
			return s.Stream(), nil
		},
	})

	Register("twolevel", strategyFunc{
		info: StrategyInfo{
			Name:        "twolevel",
			Description: "disk-revolve style: evenly spaced flash checkpoints, optimal in-RAM schedule per segment",
			Options:     []string{"slots", "disk-slots"},
		},
		plan: func(spec ChainSpec, o Options) (schedule.Schedule, error) {
			if spec.Length > 1 && (o.Slots <= 0 || o.DiskSlots <= 0) {
				return nil, fmt.Errorf("plan: twolevel needs WithSlots (RAM tier) and WithDiskSlots (flash tier)")
			}
			s, err := checkpoint.PlanTwoLevel(spec.Length, o.DiskSlots, o.Slots)
			if err != nil {
				return nil, err
			}
			return s.Stream(), nil
		},
	})

	Register("storeall", strategyFunc{
		info: StrategyInfo{
			Name:        "storeall",
			Description: "no recomputation: one forward sweep storing every state, then the backward sweep",
			Options:     nil,
		},
		plan: func(spec ChainSpec, o Options) (schedule.Schedule, error) {
			return StoreAllStream(spec.Length), nil
		},
	})
}

// StoreAllStream returns the store-all schedule as a lazily generated stream:
// the O(l) action sequence is produced on demand rather than materialized,
// demonstrating that streaming and in-memory schedules are interchangeable
// (its trace is identical to checkpoint.PlanStoreAll's). State x_s lives in
// slot s-1 during the sweep and is released right after the adjoint of step
// s+1 no longer needs it.
func StoreAllStream(l int) *schedule.Lazy {
	return schedule.Generate(l, max(l-1, 0), "store-all", func(yield func(schedule.Action) bool) {
		for st := 1; st <= l-1; st++ {
			if !yield(schedule.Action{Kind: schedule.ActionAdvance, Steps: 1}) {
				return
			}
			if !yield(schedule.Action{Kind: schedule.ActionSnapshot, Slot: st - 1}) {
				return
			}
		}
		if l >= 1 {
			// The sweep ends at x_{l-1}, exactly the adjoint input of step l.
			if !yield(schedule.Action{Kind: schedule.ActionBackprop}) {
				return
			}
		}
		for step := l - 1; step >= 1; step-- {
			restore := schedule.Action{Kind: schedule.ActionRestore, Slot: step - 2}
			if step-1 == 0 {
				restore.Slot = schedule.InputSlot
			}
			if !yield(restore) {
				return
			}
			if !yield(schedule.Action{Kind: schedule.ActionBackprop}) {
				return
			}
			if !yield(schedule.Action{Kind: schedule.ActionFree, Slot: step - 1}) {
				return
			}
		}
	})
}
