package plan

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/memmodel"
	"github.com/edgeml/edgetrain/schedule"
)

// The "auto" strategy answers the deployment question directly: given how
// much RAM the device has, which checkpointing strategy — and with which
// tunables — trains this chain fastest while fitting the budget? It evaluates
// store-all, Revolve and the two-level flash-spilling scheme with the
// existing cost model and returns the cheapest fitting plan, so callers can
// hand the planner a device capacity (device.Device.MemoryBytes) instead of
// hand-picking slot counts.
//
// The budget covers the resident training state under the homogeneous-chain
// model: ChainSpec.WeightBytes plus one ChainSpec.ActivationBytes for every
// simultaneously retained state — the chain input, the RAM-tier checkpoints,
// and the live working state the executor carries between them. Disk-tier
// checkpoints of a two-level plan cost flash I/O time instead of RAM.

// AutoChoice reports which strategy the "auto" planner selected and the
// predicted footprint and cost of the selection.
type AutoChoice struct {
	// Strategy is the selected registry strategy: "storeall", "revolve" or
	// "twolevel".
	Strategy string
	// Slots is the checkpoint-slot budget ("revolve") or RAM-tier slot
	// budget ("twolevel") of the selection; zero for "storeall".
	Slots int
	// DiskSlots is the flash-tier checkpoint count ("twolevel" only).
	DiskSlots int
	// Budget is the byte budget the selection was made against (after
	// defaulting).
	Budget int64
	// PeakRAMStates and PeakRAMBytes are the predicted resident peak:
	// retained states including the chain input and the working state.
	PeakRAMStates int
	PeakRAMBytes  int64
	// DiskBytes is the predicted flash-tier footprint ("twolevel" only).
	DiskBytes int64
	// Time is the predicted time to solution in forward-step units,
	// including flash I/O; Rho is Time relative to the store-all baseline.
	Time float64
	Rho  float64
}

// String summarises the choice.
func (c AutoChoice) String() string {
	switch c.Strategy {
	case "twolevel":
		return fmt.Sprintf("auto: twolevel(ram=%d, disk=%d), peak %d states / %.1f MB RAM + %.1f MB flash, rho=%.3f",
			c.Slots, c.DiskSlots, c.PeakRAMStates, float64(c.PeakRAMBytes)/1e6, float64(c.DiskBytes)/1e6, c.Rho)
	case "revolve":
		return fmt.Sprintf("auto: revolve(%d), peak %d states / %.1f MB RAM, rho=%.3f",
			c.Slots, c.PeakRAMStates, float64(c.PeakRAMBytes)/1e6, c.Rho)
	default:
		return fmt.Sprintf("auto: %s, peak %d states / %.1f MB RAM, rho=%.3f",
			c.Strategy, c.PeakRAMStates, float64(c.PeakRAMBytes)/1e6, c.Rho)
	}
}

// AutoSelect runs the "auto" strategy's selection without building the
// schedule: it returns which strategy fits the memory budget at the lowest
// predicted time to solution. The budget defaults to the 2 GB Waggle-node
// capacity (memmodel.EdgeDeviceMemoryBytes) when WithMemoryBudget is absent.
func AutoSelect(spec ChainSpec, opts ...Option) (AutoChoice, error) {
	return autoSelect(spec, Gather(opts))
}

func autoSelect(spec ChainSpec, o Options) (AutoChoice, error) {
	l := spec.Length
	m := costModel(o)
	budget := o.MemoryBudget
	if budget <= 0 {
		budget = memmodel.EdgeDeviceMemoryBytes
	}
	act := spec.ActivationBytes
	baseline := AutoChoice{
		Strategy:      "storeall",
		Budget:        budget,
		PeakRAMStates: l + 1,
		// With unknown state sizes this is the weights alone — a lower
		// bound; the paths below refine it once act is known.
		PeakRAMBytes: spec.WeightBytes,
		Time:         m.Time(l, int64(max(l-1, 0))),
		Rho:          1,
	}
	if l <= 1 {
		// A trivial chain retains nothing beyond its input and output, but
		// the fitting contract still holds: if even that exceeds the budget
		// there is nothing checkpointing can do.
		baseline.PeakRAMBytes = spec.WeightBytes + int64(l+1)*act
		if baseline.PeakRAMBytes > budget {
			return AutoChoice{}, fmt.Errorf(
				"plan: auto: no strategy fits budget %d bytes (a length-%d chain needs %d resident)",
				budget, l, baseline.PeakRAMBytes)
		}
		return baseline, nil
	}
	if act <= 0 {
		// Without per-state sizes the budget cannot constrain anything; fall
		// back to the no-recompute plan rather than guessing.
		if o.MemoryBudget > 0 {
			return AutoChoice{}, fmt.Errorf("plan: auto needs ChainSpec.ActivationBytes to enforce a memory budget")
		}
		return baseline, nil
	}

	// How many states fit alongside the weights?
	maxStates := (budget - spec.WeightBytes) / act
	ramBytes := func(states int) int64 { return spec.WeightBytes + int64(states)*act }

	var candidates []AutoChoice
	baseline.PeakRAMBytes = ramBytes(baseline.PeakRAMStates)
	candidates = append(candidates, baseline)

	// Revolve and the two-level scheme keep the chain input, the working
	// state and their RAM checkpoints resident: slots + 2 states.
	slots := int(maxStates) - 2
	if slots > l-1 {
		slots = l - 1
	}
	if slots >= 1 {
		candidates = append(candidates, AutoChoice{
			Strategy:      "revolve",
			Slots:         slots,
			Budget:        budget,
			PeakRAMStates: slots + 2,
			PeakRAMBytes:  ramBytes(slots + 2),
			Time:          m.Time(l, checkpoint.MinForwards(l, slots)),
		})

		// Two-level: same RAM residency, with evenly spaced flash
		// checkpoints buying recompute back at I/O cost. The flash-count
		// search is the analytical one in internal/checkpoint (it
		// undercounts re-reads of a boundary within a segment, but ranks
		// counts consistently); a zero winner degenerates to plain Revolve,
		// already a candidate.
		cfg := checkpoint.TwoLevelConfig{RAMSlots: slots, WriteCost: 1, ReadCost: 1}
		if o.FlashWriteCost > 0 {
			cfg.WriteCost = o.FlashWriteCost
		}
		if o.FlashReadCost > 0 {
			cfg.ReadCost = o.FlashReadCost
		}
		best, err := checkpoint.OptimalDiskCheckpoints(l, cfg, m, 0)
		if err != nil {
			return AutoChoice{}, err
		}
		if best.DiskCheckpoints > 0 {
			candidates = append(candidates, AutoChoice{
				Strategy:      "twolevel",
				Slots:         slots,
				DiskSlots:     best.DiskCheckpoints,
				Budget:        budget,
				PeakRAMStates: slots + 2,
				PeakRAMBytes:  ramBytes(slots + 2),
				DiskBytes:     int64(best.DiskCheckpoints) * act,
				Time:          best.TotalTime(l, m),
			})
		}
	}

	best := AutoChoice{}
	found := false
	for _, c := range candidates {
		if c.PeakRAMBytes > budget {
			continue
		}
		if !found || c.Time < best.Time {
			best, found = c, true
		}
	}
	if !found {
		return AutoChoice{}, fmt.Errorf(
			"plan: auto: no strategy fits budget %d bytes (minimal-Revolve needs %d: weights %d + 3 states of %d)",
			budget, ramBytes(3), spec.WeightBytes, act)
	}
	best.Rho = best.Time / m.BaselineTime(l)
	return best, nil
}

// autoSchedule renames a delegated schedule's policy so executions report
// which strategy "auto" selected, e.g. "auto:twolevel(4)".
type autoSchedule struct {
	schedule.Schedule
}

func (a autoSchedule) Policy() string { return "auto:" + a.Schedule.Policy() }

func autoPlan(spec ChainSpec, o Options) (schedule.Schedule, error) {
	choice, err := autoSelect(spec, o)
	if err != nil {
		return nil, err
	}
	var inner schedule.Schedule
	switch choice.Strategy {
	case "storeall":
		inner = StoreAllStream(spec.Length)
	case "revolve":
		s, err := checkpoint.PlanRevolve(spec.Length, choice.Slots)
		if err != nil {
			return nil, err
		}
		inner = s.Stream()
	case "twolevel":
		s, err := checkpoint.PlanTwoLevel(spec.Length, choice.DiskSlots, choice.Slots)
		if err != nil {
			return nil, err
		}
		inner = s.Stream()
	default:
		return nil, fmt.Errorf("plan: auto selected unknown strategy %q", choice.Strategy)
	}
	return autoSchedule{inner}, nil
}

func init() {
	Register("auto", strategyFunc{
		info: StrategyInfo{
			Name:        "auto",
			Description: "budget-aware: cheapest of storeall/revolve/twolevel whose resident footprint fits a RAM byte budget",
			Options:     []string{"memory-budget", "backward-ratio", "flash-cost"},
		},
		plan: autoPlan,
	})
}
