package plan_test

import (
	"strings"
	"testing"

	"github.com/edgeml/edgetrain/internal/memmodel"
	"github.com/edgeml/edgetrain/plan"
	"github.com/edgeml/edgetrain/schedule"
)

// autoSpec is a chain whose states are large enough that the budget grid
// spans meaningfully distinct regimes.
var autoSpec = plan.ChainSpec{Length: 24, WeightBytes: 1 << 20, ActivationBytes: 1 << 16}

// TestAutoBudgetGrid is the acceptance sweep: for every budget from
// store-all comfort down to minimal-Revolve, "auto" must return a strategy
// whose predicted resident footprint fits the budget and whose schedule is
// valid; below the minimal-Revolve floor it must refuse.
func TestAutoBudgetGrid(t *testing.T) {
	l := autoSpec.Length
	act := autoSpec.ActivationBytes
	minBudget := autoSpec.WeightBytes + 3*act          // minimal Revolve: input + working + 1 slot
	maxBudget := autoSpec.WeightBytes + int64(l+4)*act // store-all with slack
	sawStoreAll, sawSpill, sawRecompute := false, false, false
	for budget := minBudget; budget <= maxBudget; budget += act / 2 {
		choice, err := plan.AutoSelect(autoSpec, plan.WithMemoryBudget(budget))
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if choice.PeakRAMBytes > budget {
			t.Fatalf("budget %d: selected %s with predicted footprint %d over budget", budget, choice.Strategy, choice.PeakRAMBytes)
		}
		switch choice.Strategy {
		case "storeall":
			sawStoreAll = true
		case "twolevel":
			sawSpill = true
		case "revolve":
			sawRecompute = true
		default:
			t.Fatalf("budget %d: unexpected strategy %q", budget, choice.Strategy)
		}
		sched, tr, err := plan.Validate("auto", autoSpec, plan.WithMemoryBudget(budget))
		if err != nil {
			t.Fatalf("budget %d: invalid auto schedule: %v", budget, err)
		}
		if !strings.HasPrefix(sched.Policy(), "auto:") {
			t.Fatalf("auto schedule policy %q does not reveal the selection", sched.Policy())
		}
		// The executed RAM residency (input + working state + RAM-tier
		// checkpoints, homogeneous states) must match the prediction.
		states := tr.PeakRAMSlots + 2
		if choice.Strategy == "storeall" {
			states = l + 1 // the working state aliases a stored one
		}
		if got := autoSpec.WeightBytes + int64(states)*act; got > budget {
			t.Fatalf("budget %d: schedule %s retains %d states, %d bytes over budget",
				budget, sched.Policy(), states, got-budget)
		}
		if choice.Strategy == "twolevel" && tr.PeakDiskSlots == 0 {
			t.Fatalf("budget %d: twolevel selection produced no disk-tier snapshots", budget)
		}
	}
	if !sawStoreAll || !sawSpill || !sawRecompute {
		t.Fatalf("budget grid did not span all regimes: storeall=%v twolevel=%v revolve=%v",
			sawStoreAll, sawSpill, sawRecompute)
	}

	// Below the floor, auto must refuse rather than overfit.
	if _, err := plan.AutoSelect(autoSpec, plan.WithMemoryBudget(minBudget-1)); err == nil {
		t.Fatal("budget below minimal-Revolve accepted")
	}
	if _, err := plan.Build("auto", autoSpec, plan.WithMemoryBudget(minBudget-1)); err == nil {
		t.Fatal("Build below minimal-Revolve accepted")
	}
}

// TestAutoTimeMonotoneInBudget: more memory never predicts a slower plan.
func TestAutoTimeMonotoneInBudget(t *testing.T) {
	prev := -1.0
	act := autoSpec.ActivationBytes
	for budget := autoSpec.WeightBytes + 3*act; budget <= autoSpec.WeightBytes+30*act; budget += act {
		choice, err := plan.AutoSelect(autoSpec, plan.WithMemoryBudget(budget))
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && choice.Time > prev+1e-9 {
			t.Fatalf("budget %d: predicted time %.3f worse than smaller budget's %.3f", budget, choice.Time, prev)
		}
		prev = choice.Time
	}
}

func TestAutoDefaults(t *testing.T) {
	// Without a budget, the Waggle node's 2 GB is assumed: this small chain
	// fits store-all easily.
	choice, err := plan.AutoSelect(autoSpec)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Strategy != "storeall" {
		t.Fatalf("2 GB default should pick storeall for a 2.5 MB chain, got %s", choice.Strategy)
	}
	if choice.Budget != memmodel.EdgeDeviceMemoryBytes {
		t.Fatalf("default budget %d, want the Waggle capacity %d", choice.Budget, memmodel.EdgeDeviceMemoryBytes)
	}

	// Without state sizes, an explicit budget cannot be enforced.
	if _, err := plan.AutoSelect(plan.ChainSpec{Length: 10}, plan.WithMemoryBudget(1<<20)); err == nil {
		t.Fatal("budget without ActivationBytes accepted")
	}
	// ...but budgetless planning falls back to store-all instead of failing,
	// so the registry-wide conformance grid can plan "auto" without options.
	sched, err := plan.Build("auto", plan.ChainSpec{Length: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schedule.Run(sched); err != nil {
		t.Fatal(err)
	}

	// Trivial chains plan without any information...
	for _, l := range []int{0, 1} {
		if _, err := plan.Build("auto", plan.ChainSpec{Length: l}); err != nil {
			t.Fatalf("auto on trivial chain l=%d: %v", l, err)
		}
	}
	// ...but still honour the fitting contract when the weights alone bust
	// the budget.
	_, err = plan.AutoSelect(plan.ChainSpec{Length: 1, WeightBytes: 10 << 20, ActivationBytes: 1 << 10},
		plan.WithMemoryBudget(1<<20))
	if err == nil {
		t.Fatal("trivial chain over budget accepted")
	}
}

// TestAutoPrefersTwoLevelWhenRAMStarved pins the paper's Section VI story:
// with RAM for only a few states on a long chain, spilling boundaries to
// flash must beat pure in-RAM Revolve under the default flash costs.
func TestAutoPrefersTwoLevelWhenRAMStarved(t *testing.T) {
	spec := plan.ChainSpec{Length: 48, WeightBytes: 0, ActivationBytes: 1 << 16}
	choice, err := plan.AutoSelect(spec, plan.WithMemoryBudget(4*spec.ActivationBytes))
	if err != nil {
		t.Fatal(err)
	}
	if choice.Strategy != "twolevel" {
		t.Fatalf("RAM-starved long chain picked %s, want twolevel", choice.Strategy)
	}
	if choice.DiskSlots < 1 || choice.Slots != 2 {
		t.Fatalf("unexpected tunables: %+v", choice)
	}

	// With ruinously expensive flash, the same configuration must fall back
	// to pure recomputation.
	choice, err = plan.AutoSelect(spec,
		plan.WithMemoryBudget(4*spec.ActivationBytes), plan.WithFlashCost(1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if choice.Strategy != "revolve" {
		t.Fatalf("expensive flash should force revolve, got %s", choice.Strategy)
	}
}
