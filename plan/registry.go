package plan

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps strategy names to implementations. It follows the
// database/sql driver idiom: implementations register themselves (typically
// from init), callers look them up by name, and registration of a duplicate
// or nil strategy panics because it is a programming error.
var registry struct {
	sync.RWMutex
	strategies map[string]Strategy
}

// Register makes a strategy selectable by name through Lookup and Build. It
// panics if the name is empty, the strategy is nil, or the name is already
// taken.
func Register(name string, s Strategy) {
	registry.Lock()
	defer registry.Unlock()
	if name == "" {
		panic("plan: Register with empty strategy name")
	}
	if s == nil {
		panic("plan: Register with nil strategy")
	}
	if registry.strategies == nil {
		registry.strategies = make(map[string]Strategy)
	}
	if _, dup := registry.strategies[name]; dup {
		panic(fmt.Sprintf("plan: Register called twice for strategy %q", name))
	}
	registry.strategies[name] = s
}

// Lookup returns the strategy registered under name. The error lists the
// registered names so a mistyped strategy is diagnosable from the message.
func Lookup(name string) (Strategy, error) {
	registry.RLock()
	s, ok := registry.strategies[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("plan: unknown strategy %q (registered: %v)", name, Strategies())
	}
	return s, nil
}

// Strategies returns the sorted names of all registered strategies.
func Strategies() []string {
	registry.RLock()
	names := make([]string, 0, len(registry.strategies))
	for name := range registry.strategies {
		names = append(names, name)
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}

// Describe returns the StrategyInfo of every registered strategy, sorted by
// name. It backs the -list output of the command-line tools.
func Describe() []StrategyInfo {
	names := Strategies()
	infos := make([]StrategyInfo, 0, len(names))
	for _, name := range names {
		s, err := Lookup(name)
		if err != nil {
			continue // unregistered concurrently; skip
		}
		infos = append(infos, s.Describe())
	}
	return infos
}
