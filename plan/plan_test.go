package plan_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/plan"
	"github.com/edgeml/edgetrain/schedule"
)

// strategyOpts returns option sets that make the named strategy plannable at
// the given memory tunable. Strategies without tunables get one empty set.
func strategyOpts(name string, slots int) []plan.Option {
	switch name {
	case "revolve":
		return []plan.Option{plan.WithSlots(slots)}
	case "sequential":
		return []plan.Option{plan.WithSegments(slots + 1)}
	case "periodic":
		return []plan.Option{plan.WithInterval(slots + 1)}
	case "twolevel":
		return []plan.Option{plan.WithSlots(slots), plan.WithDiskSlots(2)}
	default:
		return nil
	}
}

// TestStrategyConformance is the registry-wide conformance suite: every
// registered strategy, over a grid of chain lengths and slot tunables, must
// produce a schedule that the validating trace simulator accepts — each step
// back-propagated exactly once in order L..1, no slot misuse, and a peak slot
// usage within the schedule's declared budget.
func TestStrategyConformance(t *testing.T) {
	lengths := []int{1, 2, 3, 5, 8, 13, 21, 34, 55}
	slotGrid := []int{1, 2, 3, 5}
	for _, name := range plan.Strategies() {
		for _, l := range lengths {
			for _, slots := range slotGrid {
				t.Run(fmt.Sprintf("%s/l=%d/slots=%d", name, l, slots), func(t *testing.T) {
					spec := plan.ChainSpec{Length: l}
					sched, err := plan.Build(name, spec, strategyOpts(name, slots)...)
					if err != nil {
						t.Fatalf("plan failed: %v", err)
					}
					if sched.Length() != l {
						t.Fatalf("schedule length %d, want %d", sched.Length(), l)
					}
					tr, err := schedule.Run(sched)
					if err != nil {
						t.Fatalf("invalid schedule: %v", err)
					}
					if len(tr.BackpropOrder) != l {
						t.Fatalf("%d adjoint steps performed, want %d", len(tr.BackpropOrder), l)
					}
					for i, step := range tr.BackpropOrder {
						if step != l-i {
							t.Fatalf("adjoint order %v is not L..1", tr.BackpropOrder)
						}
					}
					if tr.PeakSlots > sched.Slots() {
						t.Fatalf("peak slot usage %d exceeds declared budget %d", tr.PeakSlots, sched.Slots())
					}
				})
			}
		}
	}
}

func TestRevolveMatchesOptimum(t *testing.T) {
	for _, l := range []int{2, 10, 50, 152} {
		for _, slots := range []int{1, 3, 8} {
			_, tr, err := plan.Validate("revolve", plan.ChainSpec{Length: l}, plan.WithSlots(slots))
			if err != nil {
				t.Fatal(err)
			}
			if want := checkpoint.MinForwards(l, slots); tr.Forwards != want {
				t.Fatalf("revolve(l=%d, c=%d): %d forwards, optimum %d", l, slots, tr.Forwards, want)
			}
		}
	}
}

func TestRhoBudgetSelection(t *testing.T) {
	const l = 152
	want := checkpoint.MinSlotsForRho(l, 2.0, checkpoint.DefaultCostModel)
	_, tr, err := plan.Validate("revolve", plan.ChainSpec{Length: l}, plan.WithRho(2.0))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Forwards != want.Forwards {
		t.Fatalf("rho-budgeted revolve ran %d forwards, want %d", tr.Forwards, want.Forwards)
	}
	if _, _, err := plan.Validate("sequential", plan.ChainSpec{Length: l}, plan.WithRho(2.0)); err != nil {
		t.Fatalf("sequential with rho budget: %v", err)
	}
	if _, _, err := plan.Validate("periodic", plan.ChainSpec{Length: l}, plan.WithRho(2.0)); err != nil {
		t.Fatalf("periodic with rho budget: %v", err)
	}
}

func TestMissingOptionsAreRejected(t *testing.T) {
	spec := plan.ChainSpec{Length: 20}
	for _, name := range []string{"revolve", "sequential", "periodic", "twolevel"} {
		if _, err := plan.Build(name, spec); err == nil {
			t.Fatalf("%s without options should fail for a nontrivial chain", name)
		}
	}
	// Trivial chains need no tunables at all.
	for _, name := range plan.Strategies() {
		if _, _, err := plan.Validate(name, plan.ChainSpec{Length: 1}); err != nil {
			t.Fatalf("%s must plan a length-1 chain without options: %v", name, err)
		}
	}
}

// TestStoreAllStreamingMatchesMaterialized pins the streaming/in-memory mode
// equivalence: the lazily generated store-all stream and the materialized
// planner in internal/checkpoint produce identical traces.
func TestStoreAllStreamingMatchesMaterialized(t *testing.T) {
	for _, l := range []int{0, 1, 2, 7, 33} {
		lazy := plan.StoreAllStream(l)
		lazyTr, err := schedule.Run(lazy)
		if err != nil {
			t.Fatalf("l=%d: lazy store-all invalid: %v", l, err)
		}
		mat, err := checkpoint.PlanStoreAll(l)
		if err != nil {
			t.Fatal(err)
		}
		matTr, err := schedule.Run(mat.Stream())
		if err != nil {
			t.Fatalf("l=%d: materialized store-all invalid: %v", l, err)
		}
		if lazyTr.Forwards != matTr.Forwards || lazyTr.PeakSlots != matTr.PeakSlots ||
			lazyTr.Restores != matTr.Restores || lazyTr.Snapshots != matTr.Snapshots {
			t.Fatalf("l=%d: lazy trace %+v differs from materialized %+v", l, lazyTr, matTr)
		}
		// And the action streams are identical, element for element.
		lazyActs := schedule.Materialize(lazy).ActionSlice()
		if len(lazyActs) != len(mat.Actions) {
			t.Fatalf("l=%d: %d lazy actions vs %d materialized", l, len(lazyActs), len(mat.Actions))
		}
		for i := range lazyActs {
			if lazyActs[i] != mat.Actions[i] {
				t.Fatalf("l=%d: action %d differs: %v vs %v", l, i, lazyActs[i], mat.Actions[i])
			}
		}
	}
}

func TestLogSpacedMatchesClosedForms(t *testing.T) {
	for _, l := range []int{1, 2, 5, 16, 17, 64, 100} {
		_, tr, err := plan.Validate("logspaced", plan.ChainSpec{Length: l})
		if err != nil {
			t.Fatal(err)
		}
		if want := checkpoint.LogSpacedForwards(l); tr.Forwards != want {
			t.Fatalf("l=%d: logspaced ran %d forwards, closed form says %d", l, tr.Forwards, want)
		}
		if want := checkpoint.LogSpacedMemorySlots(l); tr.PeakSlots != want {
			t.Fatalf("l=%d: logspaced peaked at %d slots, closed form says %d", l, tr.PeakSlots, want)
		}
	}
}

func TestTwoLevelStaysWithinTiers(t *testing.T) {
	const l, ram, disk = 60, 3, 4
	_, tr, err := plan.Validate("twolevel", plan.ChainSpec{Length: l},
		plan.WithSlots(ram), plan.WithDiskSlots(disk))
	if err != nil {
		t.Fatal(err)
	}
	if tr.PeakSlots > ram+disk {
		t.Fatalf("two-level peak %d exceeds ram+disk=%d", tr.PeakSlots, ram+disk)
	}
	// The segmented plan must beat RAM-only revolve at the same RAM budget.
	_, ramOnly, err := plan.Validate("revolve", plan.ChainSpec{Length: l}, plan.WithSlots(ram))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Forwards >= ramOnly.Forwards {
		t.Fatalf("two-level (%d forwards) should recompute less than RAM-only revolve (%d)", tr.Forwards, ramOnly.Forwards)
	}
}

func TestRegistry(t *testing.T) {
	names := plan.Strategies()
	for _, want := range []string{"revolve", "periodic", "logspaced", "sequential", "storeall", "twolevel"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in strategy %q not registered (have %v)", want, names)
		}
	}
	if _, err := plan.Lookup("nope"); err == nil || !strings.Contains(err.Error(), "revolve") {
		t.Fatalf("unknown-strategy error should list registered names, got %v", err)
	}
	infos := plan.Describe()
	if len(infos) != len(names) {
		t.Fatalf("Describe returned %d infos for %d strategies", len(infos), len(names))
	}
	for _, info := range infos {
		if info.Name == "" || info.Description == "" {
			t.Fatalf("incomplete StrategyInfo: %+v", info)
		}
	}

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { plan.Register("", nil) })
	mustPanic("nil strategy", func() { plan.Register("x-nil", nil) })
	mustPanic("duplicate", func() {
		s, _ := plan.Lookup("revolve")
		plan.Register("revolve", s)
	})
}
