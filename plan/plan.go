// Package plan is the public planning API of the edgetrain library: a single
// Strategy interface in front of every checkpointing planner, a name-keyed
// registry so callers select strategies by string, and functional options for
// the per-strategy tunables.
//
// The built-in strategies — "revolve", "periodic", "logspaced", "sequential",
// "storeall", "twolevel" — are registered by this package's init and are
// implemented by the algorithm layer in internal/checkpoint. New strategies
// plug in through Register without touching any call site:
//
//	sched, err := plan.Build("revolve", plan.ChainSpec{Length: 152}, plan.WithSlots(8))
//
// Every strategy returns a schedule.Schedule, the streaming interface the
// chain executor and the command-line tools consume; use schedule.Run to
// validate a plan and obtain its cost trace.
package plan

import (
	"fmt"

	"github.com/edgeml/edgetrain/schedule"
)

// ChainSpec describes the chain a schedule is planned for. Length is the
// number of steps; the memory fields are optional context some strategies or
// callers use for capacity reasoning and may be left zero.
type ChainSpec struct {
	// Name is an optional label for the chain (e.g. "resnet50-b8-i500").
	Name string
	// Length is the number of chain steps L (the network depth).
	Length int
	// WeightBytes is the memory for weights, gradients and optimiser state.
	WeightBytes int64
	// ActivationBytes is the memory of one stored inter-stage state.
	ActivationBytes int64
}

// StrategyInfo describes a registered strategy for discovery and help output.
type StrategyInfo struct {
	// Name is the registry key, e.g. "revolve".
	Name string
	// Description is a one-line summary of the placement policy.
	Description string
	// Options lists the option names the strategy consumes (for usage text).
	Options []string
}

// Strategy plans checkpointing schedules for sequential chains. Plan must be
// safe for concurrent use.
type Strategy interface {
	// Plan builds a schedule for the chain described by spec. Strategies
	// return an error for option combinations they cannot satisfy (e.g.
	// "revolve" with neither a slot budget nor a recompute budget).
	Plan(spec ChainSpec, opts ...Option) (schedule.Schedule, error)
	// Describe reports the strategy's name, summary and accepted options.
	Describe() StrategyInfo
}

// Options collects the tunables shared by the built-in strategies. Strategies
// read the fields they understand and ignore the rest; the zero value of a
// field means "not set".
type Options struct {
	// Slots is the checkpoint-slot budget ("revolve"; the RAM tier of
	// "twolevel").
	Slots int
	// Segments is the uniform segment count ("sequential").
	Segments int
	// Interval is the checkpoint period k ("periodic").
	Interval int
	// DiskSlots is the flash-tier checkpoint count ("twolevel").
	DiskSlots int
	// Rho is a recompute-factor budget; strategies that support it derive
	// their memory tunable (slots or segments) as the minimum meeting it.
	Rho float64
	// BackwardRatio is the cost of a backward step relative to a forward
	// step, used when resolving Rho. Zero selects the default (2).
	BackwardRatio float64
	// MemoryBudget is the RAM byte budget for budget-aware strategies
	// ("auto"). Zero selects the default: the 2 GB Waggle-node capacity.
	MemoryBudget int64
	// FlashWriteCost and FlashReadCost are the costs of writing/reading one
	// state to or from flash in forward-step units, used when "auto" weighs
	// a two-level plan against pure recomputation. Zero selects the default
	// (1 forward step each).
	FlashWriteCost float64
	FlashReadCost  float64
}

// Option mutates the option set; see the With* constructors.
type Option func(*Options)

// Gather applies the options to a zero Options value.
func Gather(opts []Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithSlots sets the checkpoint-slot budget.
func WithSlots(n int) Option { return func(o *Options) { o.Slots = n } }

// WithSegments sets the uniform segment count.
func WithSegments(n int) Option { return func(o *Options) { o.Segments = n } }

// WithInterval sets the periodic checkpoint interval.
func WithInterval(k int) Option { return func(o *Options) { o.Interval = k } }

// WithDiskSlots sets the flash-tier checkpoint count for "twolevel".
func WithDiskSlots(d int) Option { return func(o *Options) { o.DiskSlots = d } }

// WithRho sets a recompute-factor budget from which the strategy derives its
// memory tunable.
func WithRho(rho float64) Option { return func(o *Options) { o.Rho = rho } }

// WithBackwardRatio sets the backward/forward cost ratio used when resolving
// a Rho budget.
func WithBackwardRatio(r float64) Option { return func(o *Options) { o.BackwardRatio = r } }

// WithMemoryBudget sets the RAM byte budget for budget-aware strategies. The
// budget covers the whole resident training state: weights (ChainSpec.
// WeightBytes) plus every simultaneously retained activation state.
func WithMemoryBudget(bytes int64) Option { return func(o *Options) { o.MemoryBudget = bytes } }

// WithFlashCost sets the per-state flash write and read costs, in
// forward-step units, used when weighing two-level plans.
func WithFlashCost(write, read float64) Option {
	return func(o *Options) { o.FlashWriteCost, o.FlashReadCost = write, read }
}

// Build looks the strategy up by name and plans a schedule in one call. It is
// the common path of the command-line tools and examples.
func Build(name string, spec ChainSpec, opts ...Option) (schedule.Schedule, error) {
	s, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return s.Plan(spec, opts...)
}

// Validate plans like Build and additionally runs the schedule through the
// validating trace simulator, returning the schedule together with its cost
// trace. Lazy schedules are consumed once for validation and remain reusable.
func Validate(name string, spec ChainSpec, opts ...Option) (schedule.Schedule, *schedule.Trace, error) {
	s, err := Build(name, spec, opts...)
	if err != nil {
		return nil, nil, err
	}
	tr, err := schedule.Run(s)
	if err != nil {
		return nil, nil, fmt.Errorf("plan: strategy %q produced an invalid schedule: %w", name, err)
	}
	return s, tr, nil
}
