package memmodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/edgeml/edgetrain/internal/resnet"
)

func TestModelBasicProperties(t *testing.T) {
	fp, err := Model(resnet.ResNet18, 224, 1, DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	if fp.TotalBytes() != fp.WeightBytes+fp.ActBytes {
		t.Fatal("TotalBytes inconsistent")
	}
	if fp.MB() <= 0 || fp.GB() <= 0 {
		t.Fatal("non-positive footprint")
	}
	if !fp.FitsIn(EdgeDeviceMemoryBytes) {
		t.Fatal("ResNet-18 at batch 1 / 224 must fit the 2 GB device (Table I)")
	}
	if len(fp.String()) == 0 {
		t.Fatal("empty String")
	}
	if _, err := Model(resnet.ResNet18, 224, 0, DefaultAccounting); err == nil {
		t.Fatal("zero batch size should be rejected")
	}
	if _, err := Model(resnet.Variant(9), 224, 1, DefaultAccounting); err == nil {
		t.Fatal("unknown variant should be rejected")
	}
}

func TestAccountingDefaultsAndSGD(t *testing.T) {
	zero := Accounting{}
	full, err := Model(resnet.ResNet34, 224, 2, zero)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Model(resnet.ResNet34, 224, 2, DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalBytes() != def.TotalBytes() {
		t.Fatal("zero-value accounting should behave like the default")
	}
	sgd, err := Model(resnet.ResNet34, 224, 2, SGDAccounting)
	if err != nil {
		t.Fatal(err)
	}
	if sgd.WeightBytes*2 != def.WeightBytes {
		t.Fatal("SGD accounting should halve the weight state")
	}
	if sgd.ActBytes != def.ActBytes {
		t.Fatal("activation accounting should not depend on the optimiser")
	}
}

func compareWithin(t *testing.T, tbl *Table, paper PaperTable, tol float64) {
	t.Helper()
	cmp, err := Compare(tbl, paper)
	if err != nil {
		t.Fatal(err)
	}
	disagreements := 0
	for _, c := range cmp {
		if math.Abs(c.RelativeDiff) > tol {
			t.Errorf("%s row=%d %s: reproduced %.2f vs paper %.2f (%.1f%%) exceeds tolerance",
				tbl.Name, c.Row, c.Variant, c.Ours, c.Paper, 100*c.RelativeDiff)
		}
		if !c.FitsAgrees {
			disagreements++
		}
	}
	if disagreements > 1 {
		t.Errorf("%s: %d cells disagree with the paper about the 2 GB fit", tbl.Name, disagreements)
	}
}

func TestTable1MatchesPaperShape(t *testing.T) {
	tbl, err := Table1(DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	compareWithin(t, tbl, PaperTable1, 0.15)
}

func TestTable2MatchesPaperShape(t *testing.T) {
	tbl, err := Table2(DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	compareWithin(t, tbl, PaperTable2, 0.15)
}

func TestTable3MatchesPaperShape(t *testing.T) {
	tbl, err := Table3(DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	compareWithin(t, tbl, PaperTable3, 0.15)
}

func TestTable1Monotonicity(t *testing.T) {
	tbl, err := Table1(DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	// Memory grows with batch size for every variant, and with depth for
	// every batch size.
	for j := range tbl.Columns {
		for i := 1; i < len(tbl.Rows); i++ {
			if tbl.Cells[i][j].Value <= tbl.Cells[i-1][j].Value {
				t.Fatalf("memory did not grow with batch size for %s", tbl.Columns[j])
			}
		}
	}
	for i := range tbl.Rows {
		for j := 1; j < len(tbl.Columns); j++ {
			if tbl.Cells[i][j].Value <= tbl.Cells[i][j-1].Value {
				t.Fatalf("memory did not grow with depth at batch %d", tbl.Rows[i])
			}
		}
	}
}

func TestTable1HeadlineClaims(t *testing.T) {
	// Section III: "all models fit in 2GB" at batch 1 / image 224, but
	// "increasing the batch size to 3 makes it impossible to keep ResNet152
	// in memory and further increase makes even the smallest models require
	// more than 2GB".
	tbl, err := Table1(DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range resnet.Variants {
		c, err := tbl.Lookup(1, v)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Fits {
			t.Errorf("%s at batch 1 should fit 2 GB", v)
		}
	}
	c152, err := tbl.Lookup(3, resnet.ResNet152)
	if err != nil {
		t.Fatal(err)
	}
	if c152.Fits {
		t.Error("ResNet-152 at batch 3 should not fit 2 GB")
	}
	c18, err := tbl.Lookup(50, resnet.ResNet18)
	if err != nil {
		t.Fatal(err)
	}
	if c18.Fits {
		t.Error("ResNet-18 at batch 50 should not fit 2 GB")
	}
}

func TestTable3HeadlineClaim(t *testing.T) {
	// Section III: at batch size 8 "one cannot use a neural network with more
	// than 50 layers even for the smallest possible image size" — i.e. at 224
	// the 101- and 152-layer models exceed 2 GB.
	tbl, err := Table3(DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	c, err := tbl.Lookup(224, resnet.ResNet101)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fits {
		t.Error("ResNet-101 at batch 8 / image 224 should not fit 2 GB")
	}
	c, err = tbl.Lookup(224, resnet.ResNet152)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fits {
		t.Error("ResNet-152 at batch 8 / image 224 should not fit 2 GB")
	}
}

func TestTableLookupErrors(t *testing.T) {
	tbl, err := Table1(DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Lookup(7, resnet.ResNet18); err == nil {
		t.Fatal("unknown row accepted")
	}
	if _, err := tbl.Lookup(1, resnet.Variant(12)); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestTableRender(t *testing.T) {
	tbl, err := Table2(DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	if !strings.Contains(out, "ResNet152") || !strings.Contains(out, "Table II") {
		t.Fatalf("render missing expected content:\n%s", out)
	}
	// Some cells must be marked as not fitting.
	if !strings.Contains(out, "*") {
		t.Fatal("render should mark cells exceeding 2 GB")
	}
}

func TestCompareRowMismatch(t *testing.T) {
	tbl, err := Table1(DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	bad := PaperTable{Name: "x", Rows: []int{1}, Data: [][]float64{{1, 1, 1, 1, 1}}}
	if _, err := Compare(tbl, bad); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
}

func TestHeterogeneousStateBytes(t *testing.T) {
	states, err := HeterogeneousStateBytes(resnet.ResNet18, 224, 2, DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := resnet.Count(resnet.ResNet18, 224)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != len(counts)+1 {
		t.Fatalf("expected %d states, got %d", len(counts)+1, len(states))
	}
	if states[0] != int64(3*224*224)*2*8 {
		t.Fatalf("input state bytes %d wrong", states[0])
	}
	if _, err := HeterogeneousStateBytes(resnet.Variant(9), 224, 1, DefaultAccounting); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

// Property: memory scales linearly in batch size for the activation part and
// the weight part is batch-independent.
func TestMemoryBatchLinearityProperty(t *testing.T) {
	f := func(bRaw uint8) bool {
		b := int(bRaw%32) + 1
		one, err := Model(resnet.ResNet34, 224, 1, DefaultAccounting)
		if err != nil {
			return false
		}
		many, err := Model(resnet.ResNet34, 224, b, DefaultAccounting)
		if err != nil {
			return false
		}
		return many.WeightBytes == one.WeightBytes && many.ActBytes == int64(b)*one.ActBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
