package memmodel

import (
	"fmt"
	"strings"

	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/resnet"
)

// FigureConfig identifies one panel of Figure 1: a (batch size, image size)
// pair for which the peak memory vs recompute factor curves are drawn for
// every LinearResNet variant.
type FigureConfig struct {
	Panel     string // "1a".."1d"
	BatchSize int
	ImageSize int
}

// Figure1Panels are the four panels of Figure 1 in the paper.
var Figure1Panels = []FigureConfig{
	{Panel: "1a", BatchSize: 1, ImageSize: 224},
	{Panel: "1b", BatchSize: 8, ImageSize: 224},
	{Panel: "1c", BatchSize: 1, ImageSize: 500},
	{Panel: "1d", BatchSize: 8, ImageSize: 500},
}

// DefaultRhoGrid is the recompute-factor sweep used when regenerating the
// figure: from 1 (no checkpointing) to 3 in steps of 0.1.
func DefaultRhoGrid() []float64 {
	var rhos []float64
	for r := 1.0; r <= 3.0001; r += 0.1 {
		rhos = append(rhos, r)
	}
	return rhos
}

// Series is one curve of a Figure 1 panel: the memory-vs-rho points of one
// LinearResNet variant.
type Series struct {
	Variant resnet.Variant
	Chain   checkpoint.ChainSpec
	Points  []checkpoint.CurvePoint
}

// Panel is one reproduced panel of Figure 1.
type Panel struct {
	Config FigureConfig
	Rhos   []float64
	Series []Series
}

// Figure1Panel computes one panel of Figure 1: for every variant, the peak
// memory of optimal checkpointing as a function of the recompute factor.
func Figure1Panel(cfg FigureConfig, rhos []float64, acc Accounting, cost checkpoint.CostModel) (*Panel, error) {
	if len(rhos) == 0 {
		rhos = DefaultRhoGrid()
	}
	p := &Panel{Config: cfg, Rhos: append([]float64(nil), rhos...)}
	for _, v := range resnet.Variants {
		chain, err := LinearChain(v, cfg.ImageSize, cfg.BatchSize, acc)
		if err != nil {
			return nil, err
		}
		p.Series = append(p.Series, Series{
			Variant: v,
			Chain:   chain,
			Points:  checkpoint.MemoryVsRho(chain, rhos, cost),
		})
	}
	return p, nil
}

// Figure1 computes all four panels.
func Figure1(rhos []float64, acc Accounting, cost checkpoint.CostModel) ([]*Panel, error) {
	var panels []*Panel
	for _, cfg := range Figure1Panels {
		p, err := Figure1Panel(cfg, rhos, acc, cost)
		if err != nil {
			return nil, err
		}
		panels = append(panels, p)
	}
	return panels, nil
}

// Render prints the panel as a table: one row per rho, one column per
// variant, values in MB, with an asterisk marking points that exceed the 2 GB
// edge device.
func (p *Panel) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — peak memory (MB) vs recompute factor, batch=%d image=%d\n",
		p.Config.Panel, p.Config.BatchSize, p.Config.ImageSize)
	fmt.Fprintf(&b, "%-8s", "rho")
	for _, s := range p.Series {
		fmt.Fprintf(&b, "%14s", s.Variant.String())
	}
	b.WriteString("\n")
	for i, rho := range p.Rhos {
		fmt.Fprintf(&b, "%-8.2f", rho)
		for _, s := range p.Series {
			pt := s.Points[i]
			mark := " "
			if pt.MemoryBytes > EdgeDeviceMemoryBytes {
				mark = "*"
			}
			fmt.Fprintf(&b, "%13.1f%s", float64(pt.MemoryBytes)/1e6, mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FitResult summarises, for one variant in one panel, whether the model fits
// the 2 GB device without checkpointing and the minimal recompute factor at
// which it fits with optimal checkpointing.
type FitResult struct {
	Config         FigureConfig
	Variant        resnet.Variant
	FitsAtRhoOne   bool
	MinRhoToFit    float64
	SlotsAtFit     int
	FitsEventually bool
}

// FitAnalysis reproduces the Section VI claims (E9 in DESIGN.md): which
// models fit the 2 GB device at rho=1 and what recompute factor makes every
// model fit. maxRho bounds the search (the paper discusses rho in [1, 2]; we
// search a little further to report the exact crossover).
func FitAnalysis(acc Accounting, cost checkpoint.CostModel, maxRho float64) ([]FitResult, error) {
	var out []FitResult
	for _, cfg := range Figure1Panels {
		for _, v := range resnet.Variants {
			chain, err := LinearChain(v, cfg.ImageSize, cfg.BatchSize, acc)
			if err != nil {
				return nil, err
			}
			rho, slots, ok := checkpoint.MinRhoToFit(chain, EdgeDeviceMemoryBytes, cost, maxRho)
			out = append(out, FitResult{
				Config:         cfg,
				Variant:        v,
				FitsAtRhoOne:   chain.MemoryNoCheckpoint() <= EdgeDeviceMemoryBytes,
				MinRhoToFit:    rho,
				SlotsAtFit:     slots,
				FitsEventually: ok,
			})
		}
	}
	return out, nil
}

// RenderFitAnalysis formats the fit analysis as a table.
func RenderFitAnalysis(results []FitResult) string {
	var b strings.Builder
	b.WriteString("Section VI fit analysis (2 GB edge device)\n")
	fmt.Fprintf(&b, "%-8s%-12s%-14s%-14s%-10s\n", "panel", "model", "fits at rho=1", "min rho to fit", "slots")
	for _, r := range results {
		rho := "never"
		if r.FitsEventually {
			rho = fmt.Sprintf("%.2f", r.MinRhoToFit)
		}
		fmt.Fprintf(&b, "%-8s%-12s%-14v%-14s%-10d\n", r.Config.Panel, r.Variant.String(), r.FitsAtRhoOne, rho, r.SlotsAtFit)
	}
	return b.String()
}
