package memmodel

import "testing"

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"1024", 1024},
		{"1024B", 1024},
		{"8KB", 8 << 10},
		{"8kb", 8 << 10},
		{"8KiB", 8 << 10},
		{"64MB", 64 << 20},
		{"2GB", 2 << 30},
		{"2GiB", 2 << 30},
		{"1.5MB", 3 << 19},
		{" 2 GB ", 2 << 30},
		{"512M", 512 << 20},
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("ParseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "abc", "-5MB", "12XB", "MB", "inf", "NaN", "1e300GB"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Fatalf("ParseBytes(%q) should fail", bad)
		}
	}
	if got, _ := ParseBytes("2GB"); got != EdgeDeviceMemoryBytes {
		t.Fatal("2GB must equal the Waggle node capacity constant")
	}
}
