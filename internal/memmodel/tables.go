package memmodel

import (
	"fmt"
	"strings"

	"github.com/edgeml/edgetrain/internal/resnet"
)

// Paper parameter grids for the three memory tables.
var (
	// Table1BatchSizes are the rows of Table I (image size fixed at 224).
	Table1BatchSizes = []int{1, 3, 5, 10, 30, 50}
	// Table2ImageSizes are the rows of Table II (batch size fixed at 1).
	Table2ImageSizes = []int{224, 350, 500, 650, 1100, 1500}
	// Table3ImageSizes are the rows of Table III (batch size fixed at 8).
	Table3ImageSizes = []int{224, 350, 500, 650}
	// Table1ImageSize is the fixed image size of Table I.
	Table1ImageSize = 224
	// Table3BatchSize is the fixed batch size of Table III.
	Table3BatchSize = 8
)

// Cell is one entry of a reproduced table.
type Cell struct {
	Footprint Footprint
	Value     float64 // in the table's unit (MB for Tables I/II, GB for Table III)
	Fits      bool    // whether it fits the 2 GB edge device (the paper's shading)
}

// Table is a reproduced memory table: one row per swept parameter value and
// one column per ResNet variant.
type Table struct {
	Name     string
	Unit     string // "MB" or "GB"
	RowLabel string // "batch size" or "image width/height"
	Rows     []int
	Columns  []resnet.Variant
	Cells    [][]Cell // [row][column]
}

// buildTable evaluates the memory model over a (rows x variants) grid.
func buildTable(name, unit, rowLabel string, rows []int, imageOf func(row int) int, batchOf func(row int) int, acc Accounting) (*Table, error) {
	t := &Table{
		Name:     name,
		Unit:     unit,
		RowLabel: rowLabel,
		Rows:     append([]int(nil), rows...),
		Columns:  append([]resnet.Variant(nil), resnet.Variants...),
	}
	for _, row := range rows {
		var cells []Cell
		for _, v := range t.Columns {
			fp, err := Model(v, imageOf(row), batchOf(row), acc)
			if err != nil {
				return nil, err
			}
			value := fp.MB()
			if unit == "GB" {
				value = fp.GB()
			}
			cells = append(cells, Cell{
				Footprint: fp,
				Value:     value,
				Fits:      fp.FitsIn(EdgeDeviceMemoryBytes),
			})
		}
		t.Cells = append(t.Cells, cells)
	}
	return t, nil
}

// Table1 reproduces Table I: memory (MB) for each variant at image size 224
// over the paper's batch sizes.
func Table1(acc Accounting) (*Table, error) {
	return buildTable("Table I", "MB", "batch size", Table1BatchSizes,
		func(int) int { return Table1ImageSize },
		func(row int) int { return row },
		acc)
}

// Table2 reproduces Table II: memory (MB) for each variant at batch size 1
// over the paper's image sizes.
func Table2(acc Accounting) (*Table, error) {
	return buildTable("Table II", "MB", "image width/height", Table2ImageSizes,
		func(row int) int { return row },
		func(int) int { return 1 },
		acc)
}

// Table3 reproduces Table III: memory (GB) for each variant at batch size 8
// over the paper's image sizes.
func Table3(acc Accounting) (*Table, error) {
	return buildTable("Table III", "GB", "image width/height", Table3ImageSizes,
		func(row int) int { return row },
		func(int) int { return Table3BatchSize },
		acc)
}

// Lookup returns the cell for the given row value and variant, or an error if
// either is not part of the table.
func (t *Table) Lookup(row int, v resnet.Variant) (Cell, error) {
	ri := -1
	for i, r := range t.Rows {
		if r == row {
			ri = i
			break
		}
	}
	if ri == -1 {
		return Cell{}, fmt.Errorf("memmodel: row %d not in %s", row, t.Name)
	}
	for j, col := range t.Columns {
		if col == v {
			return t.Cells[ri][j], nil
		}
	}
	return Cell{}, fmt.Errorf("memmodel: variant %v not in %s", v, t.Name)
}

// Render formats the table like the paper: one row per swept value, one
// column per variant, with an asterisk marking configurations that do NOT fit
// the 2 GB edge device (the paper's shaded cells).
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — memory in %s (* = does not fit %d MB edge device)\n",
		t.Name, t.Unit, EdgeDeviceMemoryBytes/(1<<20))
	fmt.Fprintf(&b, "%-20s", t.RowLabel)
	for _, v := range t.Columns {
		fmt.Fprintf(&b, "%14s", v.String())
	}
	b.WriteString("\n")
	for i, row := range t.Rows {
		fmt.Fprintf(&b, "%-20d", row)
		for j := range t.Columns {
			cell := t.Cells[i][j]
			mark := " "
			if !cell.Fits {
				mark = "*"
			}
			fmt.Fprintf(&b, "%13.2f%s", cell.Value, mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PaperTable holds the values printed in the paper for one table, used by
// EXPERIMENTS.md generation and the comparison tests. Units match the paper
// (MB for Tables I/II, GB for Table III). Indexing is [row][variant] in the
// same order as Rows/Columns of the reproduced table.
type PaperTable struct {
	Name string
	Rows []int
	Data [][]float64
}

// PaperTable1, PaperTable2 and PaperTable3 are the values published in the
// paper, transcribed verbatim for side-by-side comparison.
var (
	PaperTable1 = PaperTable{
		Name: "Table I",
		Rows: Table1BatchSizes,
		Data: [][]float64{
			{230.05, 413.00, 620.27, 1027.21, 1410.62},
			{340.05, 580.42, 1091.11, 1732.33, 2405.14},
			{450.06, 747.85, 1561.94, 2437.45, 3399.67},
			{725.07, 1166.42, 2739.04, 4200.25, 5885.98},
			{1825.13, 2840.70, 7447.42, 11251.43, 15831.23},
			{2925.18, 4514.97, 12155.79, 18302.62, 25776.48},
		},
	}
	PaperTable2 = PaperTable{
		Name: "Table II",
		Rows: Table2ImageSizes,
		Data: [][]float64{
			{230.05, 413.00, 620.27, 1027.21, 1410.62},
			{309.83, 534.96, 964.66, 1543.72, 2139.75},
			{449.21, 749.73, 1570.93, 2472.72, 3458.50},
			{639.07, 1039.08, 2387.54, 3682.00, 5161.76},
			{1496.10, 2346.95, 6073.06, 9208.30, 12961.96},
			{2628.70, 4075.07, 10944.42, 16515.11, 23277.27},
		},
	}
	PaperTable3 = PaperTable{
		Name: "Table III",
		Rows: Table3ImageSizes,
		Data: [][]float64{
			{0.60, 0.98, 2.22, 3.41, 4.78},
			{1.22, 1.93, 4.90, 7.45, 10.47},
			{2.31, 3.60, 9.63, 14.69, 20.76},
			{3.79, 5.86, 15.99, 24.13, 34.06},
		},
	}
)

// Comparison is the per-cell comparison between the paper's value and the
// reproduced value.
type Comparison struct {
	Row          int
	Variant      resnet.Variant
	Paper, Ours  float64
	RelativeDiff float64 // (ours - paper) / paper
	FitsAgrees   bool    // both sides agree about the 2 GB threshold
}

// Compare evaluates the reproduced table against the paper's values.
func Compare(repro *Table, paper PaperTable) ([]Comparison, error) {
	if len(repro.Rows) != len(paper.Rows) {
		return nil, fmt.Errorf("memmodel: row count mismatch between %s and paper data", repro.Name)
	}
	var out []Comparison
	// The paper's shading threshold is 2 GB expressed in the table's unit.
	limit := float64(EdgeDeviceMemoryBytes) / 1e6
	if repro.Unit == "GB" {
		limit = float64(EdgeDeviceMemoryBytes) / 1e9
	}
	for i, row := range repro.Rows {
		for j, v := range repro.Columns {
			ours := repro.Cells[i][j].Value
			paperVal := paper.Data[i][j]
			out = append(out, Comparison{
				Row:          row,
				Variant:      v,
				Paper:        paperVal,
				Ours:         ours,
				RelativeDiff: (ours - paperVal) / paperVal,
				FitsAgrees:   (ours <= limit) == (paperVal <= limit),
			})
		}
	}
	return out, nil
}
