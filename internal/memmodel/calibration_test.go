package memmodel

import (
	"testing"
)

// TestCalibrationLog prints the reproduced tables next to the paper's values.
// It never fails; it exists so `go test -v` shows the calibration that
// EXPERIMENTS.md summarises.
func TestCalibrationLog(t *testing.T) {
	t1, err := Table1(DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(t1, PaperTable1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cmp {
		t.Logf("Table I  batch=%-3d %-10s paper=%9.2f ours=%9.2f rel=%+6.1f%% fitsAgree=%v",
			c.Row, c.Variant, c.Paper, c.Ours, 100*c.RelativeDiff, c.FitsAgrees)
	}
}
