package memmodel

import (
	"strings"
	"testing"

	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/resnet"
)

func TestLinearChainConsistency(t *testing.T) {
	chain, err := LinearChain(resnet.ResNet50, 224, 1, DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Length != 50 {
		t.Fatalf("LinearResNet50 length %d, want 50", chain.Length)
	}
	fp, err := Model(resnet.ResNet50, 224, 1, DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	if chain.WeightBytes != fp.WeightBytes {
		t.Fatal("LinearResNet weight memory must equal the full model's")
	}
	// Total activation memory is preserved up to integer division remainder.
	total := chain.ActivationBytes * int64(chain.Length)
	if total > fp.ActBytes || fp.ActBytes-total > int64(chain.Length) {
		t.Fatalf("LinearResNet activation total %d drifted from %d", total, fp.ActBytes)
	}
	if _, err := LinearChain(resnet.Variant(9), 224, 1, DefaultAccounting); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestFigure1PanelStructure(t *testing.T) {
	panel, err := Figure1Panel(Figure1Panels[0], nil, DefaultAccounting, checkpoint.DefaultCostModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(panel.Series) != len(resnet.Variants) {
		t.Fatalf("expected %d series, got %d", len(resnet.Variants), len(panel.Series))
	}
	if len(panel.Rhos) != len(DefaultRhoGrid()) {
		t.Fatalf("default rho grid not applied")
	}
	for _, s := range panel.Series {
		if len(s.Points) != len(panel.Rhos) {
			t.Fatalf("series %s has %d points for %d rhos", s.Variant, len(s.Points), len(panel.Rhos))
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].MemoryBytes > s.Points[i-1].MemoryBytes {
				t.Fatalf("series %s memory increased with rho", s.Variant)
			}
		}
	}
	if out := panel.Render(); !strings.Contains(out, "Figure 1a") {
		t.Fatalf("panel render missing header:\n%s", out)
	}
}

func TestFigure1AllPanels(t *testing.T) {
	panels, err := Figure1([]float64{1, 1.5, 2, 2.5, 3}, DefaultAccounting, checkpoint.DefaultCostModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 4 {
		t.Fatalf("expected 4 panels, got %d", len(panels))
	}
	// Panel 1a (batch 1, image 224): everything fits at rho=1 — the only
	// configuration for which that is true, per Section VI.
	for _, s := range panels[0].Series {
		if s.Points[0].MemoryBytes > EdgeDeviceMemoryBytes {
			t.Errorf("panel 1a: %s should fit at rho=1", s.Variant)
		}
	}
	// Panels 1b-1d: the deepest model does not fit at rho=1.
	for _, p := range panels[1:] {
		last := p.Series[len(p.Series)-1]
		if last.Points[0].MemoryBytes <= EdgeDeviceMemoryBytes {
			t.Errorf("panel %s: ResNet-152 unexpectedly fits at rho=1", p.Config.Panel)
		}
	}
	// By rho=3 every model in every panel fits comfortably.
	for _, p := range panels {
		for _, s := range p.Series {
			lastPt := s.Points[len(s.Points)-1]
			if lastPt.MemoryBytes > EdgeDeviceMemoryBytes {
				t.Errorf("panel %s: %s still does not fit at rho=3 (%.0f MB)",
					p.Config.Panel, s.Variant, float64(lastPt.MemoryBytes)/1e6)
			}
		}
	}
}

func TestFigure1FitClaims(t *testing.T) {
	// E9: the qualitative Section VI claims. (a) Without checkpointing only
	// the batch-1/image-224 panel fits entirely. (b) A recompute factor
	// between 1.5 and 2.5 brings every model in every panel under 2 GB.
	results, err := FitAnalysis(DefaultAccounting, checkpoint.DefaultCostModel, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4*len(resnet.Variants) {
		t.Fatalf("expected %d results, got %d", 4*len(resnet.Variants), len(results))
	}
	worst := 0.0
	for _, r := range results {
		if r.Config.Panel == "1a" {
			if !r.FitsAtRhoOne {
				t.Errorf("panel 1a %s should fit without checkpointing", r.Variant)
			}
			continue
		}
		if !r.FitsEventually {
			t.Errorf("panel %s %s never fits within rho=4", r.Config.Panel, r.Variant)
			continue
		}
		if r.MinRhoToFit > worst {
			worst = r.MinRhoToFit
		}
	}
	if worst < 1.2 || worst > 2.6 {
		t.Errorf("worst-case recompute factor to fit everything is %.2f; the paper's narrative puts it between 1.5 and 2 (we accept up to 2.6 given the different backward-cost accounting)", worst)
	}
	if out := RenderFitAnalysis(results); !strings.Contains(out, "1d") {
		t.Fatal("fit analysis render incomplete")
	}
}

func TestFitAnalysisFigure1bClaim(t *testing.T) {
	// Text claim attached to the batch-8 panels: at rho around 1.6-2 all
	// models fit, whereas at rho=1 even ResNet-18 does not fit at image 500.
	chain18, err := LinearChain(resnet.ResNet18, 500, 8, DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	if chain18.MemoryNoCheckpoint() <= EdgeDeviceMemoryBytes {
		t.Error("ResNet-18 at batch 8 / image 500 should not fit without checkpointing")
	}
	rho, _, ok := checkpoint.MinRhoToFit(chain18, EdgeDeviceMemoryBytes, checkpoint.DefaultCostModel, 4)
	if !ok || rho > 1.7 {
		t.Errorf("ResNet-18 at batch 8 / image 500 should fit with a modest recompute factor, needed %.2f", rho)
	}
}
