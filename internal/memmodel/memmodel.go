// Package memmodel is the analytical memory model that reproduces Tables I,
// II and III of "Training on the Edge" and the memory axis of Figure 1.
//
// The paper does not state its counting rules; reverse-engineering its tables
// is consistent with (a) a per-parameter state of roughly 15-16 bytes
// (weights, gradients and optimiser moments at fp32) and (b) roughly 8 bytes
// per stored activation element (the fp32 value plus its fp32 gradient).
// Those are the defaults in Accounting; both knobs are exposed so the
// sensitivity ablations can vary them.
package memmodel

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/resnet"
)

// Accounting fixes the byte cost of parameters and activations.
type Accounting struct {
	// ParamStateBytes is the total per-parameter footprint: value, gradient
	// and optimiser state. Adam at fp32 gives 16 (4 each for value, gradient
	// and two moments); plain SGD gives 8.
	ParamStateBytes int64
	// ActivationBytes is the per-element footprint of a stored activation:
	// 8 covers the fp32 value plus its fp32 gradient buffer.
	ActivationBytes int64
}

// DefaultAccounting matches the calibration in DESIGN.md (Adam-style
// optimiser state, activation values plus gradients at fp32).
var DefaultAccounting = Accounting{ParamStateBytes: 16, ActivationBytes: 8}

// SGDAccounting is the cheaper optimiser-state variant used by the
// sensitivity ablation (value + gradient only).
var SGDAccounting = Accounting{ParamStateBytes: 8, ActivationBytes: 8}

// normalized applies defaults to zero values.
func (a Accounting) normalized() Accounting {
	if a.ParamStateBytes <= 0 {
		a.ParamStateBytes = DefaultAccounting.ParamStateBytes
	}
	if a.ActivationBytes <= 0 {
		a.ActivationBytes = DefaultAccounting.ActivationBytes
	}
	return a
}

// Footprint is the memory requirement of training one model configuration.
type Footprint struct {
	Variant     resnet.Variant
	ImageSize   int
	BatchSize   int
	WeightBytes int64 // parameters, gradients and optimiser state
	ActBytes    int64 // all retained activations for the batch
}

// TotalBytes is the no-checkpointing peak footprint, the quantity reported in
// Tables I-III.
func (f Footprint) TotalBytes() int64 { return f.WeightBytes + f.ActBytes }

// MB returns the total footprint in decimal megabytes (the unit of Tables I
// and II).
func (f Footprint) MB() float64 { return float64(f.TotalBytes()) / 1e6 }

// GB returns the total footprint in decimal gigabytes (the unit of Table III).
func (f Footprint) GB() float64 { return float64(f.TotalBytes()) / 1e9 }

// FitsIn reports whether the footprint fits a device with the given memory.
func (f Footprint) FitsIn(capacityBytes int64) bool { return f.TotalBytes() <= capacityBytes }

// String summarises the footprint.
func (f Footprint) String() string {
	return fmt.Sprintf("%s img=%d batch=%d: weights=%.1f MB activations=%.1f MB total=%.1f MB",
		f.Variant, f.ImageSize, f.BatchSize,
		float64(f.WeightBytes)/1e6, float64(f.ActBytes)/1e6, f.MB())
}

// Model computes the training memory footprint of a ResNet variant at the
// given image size and batch size under the accounting rules.
func Model(v resnet.Variant, imageSize, batchSize int, acc Accounting) (Footprint, error) {
	acc = acc.normalized()
	if batchSize < 1 {
		return Footprint{}, fmt.Errorf("memmodel: batch size must be positive, got %d", batchSize)
	}
	params, err := resnet.ParamCount(v)
	if err != nil {
		return Footprint{}, err
	}
	actPerSample, err := resnet.ActivationElemsPerSample(v, imageSize)
	if err != nil {
		return Footprint{}, err
	}
	return Footprint{
		Variant:     v,
		ImageSize:   imageSize,
		BatchSize:   batchSize,
		WeightBytes: params * acc.ParamStateBytes,
		ActBytes:    actPerSample * int64(batchSize) * acc.ActivationBytes,
	}, nil
}

// EdgeDeviceMemoryBytes is the 2 GB LPDDR3 capacity of the Waggle payload
// board (ODROID XU4) that the paper uses as the fit threshold.
const EdgeDeviceMemoryBytes = int64(2) << 30

// ParseBytes parses a human-readable byte size for command-line budget
// flags: a plain integer is bytes, and the binary suffixes KB/MB/GB (case
// insensitive, optional "iB" spelling) scale by 2^10/2^20/2^30, matching the
// power-of-two capacities the device model uses.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	shift := 0
	for _, suf := range []struct {
		text  string
		shift int
	}{{"KIB", 10}, {"MIB", 20}, {"GIB", 30}, {"KB", 10}, {"MB", 20}, {"GB", 30}, {"K", 10}, {"M", 20}, {"G", 30}, {"B", 0}} {
		if strings.HasSuffix(t, suf.text) {
			t, shift = strings.TrimSuffix(t, suf.text), suf.shift
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil || v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, fmt.Errorf("memmodel: cannot parse byte size %q", s)
	}
	bytes := v * float64(int64(1)<<shift)
	if bytes > float64(math.MaxInt64) {
		return 0, fmt.Errorf("memmodel: byte size %q overflows", s)
	}
	return int64(bytes), nil
}

// LinearChain builds the LinearResNet homogenisation of Section VI: a chain
// whose length is the variant's nominal depth, whose weight memory equals the
// full model's weight memory and whose per-stage activation is the total
// activation memory divided by the depth.
func LinearChain(v resnet.Variant, imageSize, batchSize int, acc Accounting) (checkpoint.ChainSpec, error) {
	fp, err := Model(v, imageSize, batchSize, acc)
	if err != nil {
		return checkpoint.ChainSpec{}, err
	}
	depth := v.Depth()
	if depth == 0 {
		return checkpoint.ChainSpec{}, fmt.Errorf("memmodel: unknown variant %v", v)
	}
	return checkpoint.ChainSpec{
		Name:            fmt.Sprintf("Linear%s-img%d-b%d", v, imageSize, batchSize),
		Length:          depth,
		WeightBytes:     fp.WeightBytes,
		ActivationBytes: fp.ActBytes / int64(depth),
	}, nil
}

// HeterogeneousStateBytes returns the byte size of every inter-operation
// state x_0..x_L of the real (non-homogenised) network, for the heterogeneous
// checkpointing ablation: state 0 is the input image batch and state i is the
// output of the i-th counted operation.
func HeterogeneousStateBytes(v resnet.Variant, imageSize, batchSize int, acc Accounting) ([]int64, error) {
	acc = acc.normalized()
	counts, err := resnet.Count(v, imageSize)
	if err != nil {
		return nil, err
	}
	states := make([]int64, 0, len(counts)+1)
	states = append(states, int64(3*imageSize*imageSize)*int64(batchSize)*acc.ActivationBytes)
	for _, c := range counts {
		states = append(states, c.OutputElems*int64(batchSize)*acc.ActivationBytes)
	}
	return states, nil
}
