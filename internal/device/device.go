// Package device models the Edge hardware the paper targets: the Waggle
// node's payload single-board computer (an ODROID XU4 with 2 GB of LPDDR3 and
// attached flash storage) and, for comparison, a datacentre GPU. The model
// answers the sizing questions of Sections III and VI: does a training
// configuration fit in memory, what is the largest batch size that fits, and
// how long does a training job take on the device.
package device

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/memmodel"
	"github.com/edgeml/edgetrain/internal/resnet"
)

// Device describes the resources of one compute platform.
type Device struct {
	Name string
	// MemoryBytes is the RAM available to the training payload.
	MemoryBytes int64
	// StorageBytes is the attached flash/SD storage for the in-situ dataset.
	StorageBytes int64
	// ComputeGFLOPS is the sustained throughput available to training.
	ComputeGFLOPS float64
	// NetworkMbps is the uplink bandwidth of the node.
	NetworkMbps float64
	// IdlePowerWatts and ActivePowerWatts bound the node's power envelope.
	IdlePowerWatts   float64
	ActivePowerWatts float64
	// NetworkEnergyJoulePerMB is the radio energy cost of moving one megabyte.
	NetworkEnergyJoulePerMB float64
}

// Waggle returns the Waggle/Array-of-Things payload node described in
// Section II: an ODROID XU4 (Exynos 5422, four A15 + four A7 cores, Mali GPU)
// with 2 GB LPDDR3 and SD storage.
func Waggle() Device {
	return Device{
		Name:                    "waggle-odroid-xu4",
		MemoryBytes:             2 << 30,
		StorageBytes:            32 << 30,
		ComputeGFLOPS:           25, // sustained CPU+GPU OpenCL estimate
		NetworkMbps:             10,
		IdlePowerWatts:          2.5,
		ActivePowerWatts:        12,
		NetworkEnergyJoulePerMB: 2.0,
	}
}

// JetsonNano returns an NVIDIA Jetson Nano class node: the stronger end of
// the heterogeneous fleet mixes the fleet package trains across — 4 GB
// LPDDR4, a 128-core Maxwell GPU (~236 GFLOPS sustained at fp32) and a
// 5-10 W power envelope.
func JetsonNano() Device {
	return Device{
		Name:                    "jetson-nano",
		MemoryBytes:             4 << 30,
		StorageBytes:            64 << 30,
		ComputeGFLOPS:           236,
		NetworkMbps:             100,
		IdlePowerWatts:          1.5,
		ActivePowerWatts:        10,
		NetworkEnergyJoulePerMB: 1.2,
	}
}

// RaspberryPi returns a Raspberry Pi 3B class node: the weaker end of the
// heterogeneous fleet mixes — 1 GB LPDDR2, a quad-A53 CPU (~5 GFLOPS
// sustained) and SD storage.
func RaspberryPi() Device {
	return Device{
		Name:                    "raspberry-pi-3b",
		MemoryBytes:             1 << 30,
		StorageBytes:            16 << 30,
		ComputeGFLOPS:           5,
		NetworkMbps:             35,
		IdlePowerWatts:          1.3,
		ActivePowerWatts:        5.5,
		NetworkEnergyJoulePerMB: 2.5,
	}
}

// ByName resolves a device by its short name, for command-line -device and
// -device-mix flags: "waggle" (the ODROID XU4 payload node), "jetson" and
// "rpi" (the heterogeneous fleet endpoints) or "cloud" (the datacentre GPU
// comparison point).
func ByName(name string) (Device, error) {
	switch name {
	case "waggle", "odroid", "edge":
		return Waggle(), nil
	case "jetson", "nano", "jetson-nano":
		return JetsonNano(), nil
	case "rpi", "pi", "raspberry-pi", "raspberrypi":
		return RaspberryPi(), nil
	case "cloud", "gpu":
		return CloudGPU(), nil
	default:
		return Device{}, fmt.Errorf("device: unknown device %q (want waggle, jetson, rpi or cloud)", name)
	}
}

// CloudGPU returns a datacentre accelerator used as the centralised-training
// comparison point.
func CloudGPU() Device {
	return Device{
		Name:                    "cloud-gpu",
		MemoryBytes:             16 << 30,
		StorageBytes:            1 << 40,
		ComputeGFLOPS:           14000,
		NetworkMbps:             10000,
		IdlePowerWatts:          50,
		ActivePowerWatts:        300,
		NetworkEnergyJoulePerMB: 0.1,
	}
}

// Fits reports whether a training footprint fits in the device memory.
func (d Device) Fits(f memmodel.Footprint) bool { return f.TotalBytes() <= d.MemoryBytes }

// MaxBatchSize returns the largest batch size whose no-checkpointing
// footprint fits in the device memory, or 0 if not even batch size 1 fits.
func (d Device) MaxBatchSize(v resnet.Variant, imageSize int, acc memmodel.Accounting) (int, error) {
	one, err := memmodel.Model(v, imageSize, 1, acc)
	if err != nil {
		return 0, err
	}
	if one.TotalBytes() > d.MemoryBytes {
		return 0, nil
	}
	perSample := one.ActBytes
	if perSample <= 0 {
		return 0, fmt.Errorf("device: non-positive per-sample activation memory")
	}
	budget := d.MemoryBytes - one.WeightBytes
	k := budget / perSample
	if k < 1 {
		k = 0
	}
	return int(k), nil
}

// MaxDepth implements the n_max formula of Section VI: the depth of the
// largest LinearResNet trainable without checkpointing, given the device
// memory MC, weight memory MW, per-stage activation MA and batch size k:
// n_max = (MC - MW) / (k * MA).
func (d Device) MaxDepth(weightBytes, actBytesPerStagePerSample int64, batch int) int {
	if batch <= 0 || actBytesPerStagePerSample <= 0 {
		return 0
	}
	budget := d.MemoryBytes - weightBytes
	if budget <= 0 {
		return 0
	}
	return int(budget / (int64(batch) * actBytesPerStagePerSample))
}

// TrainingStepSeconds estimates the wall-clock time of one optimisation step
// that executes the given number of floating-point operations.
func (d Device) TrainingStepSeconds(flops int64) float64 {
	if d.ComputeGFLOPS <= 0 {
		return 0
	}
	return float64(flops) / (d.ComputeGFLOPS * 1e9)
}

// TransferSeconds estimates how long moving the given number of bytes over
// the node uplink takes.
func (d Device) TransferSeconds(bytes int64) float64 {
	if d.NetworkMbps <= 0 {
		return 0
	}
	return float64(bytes) * 8 / (d.NetworkMbps * 1e6)
}

// TransferEnergyJoules estimates the radio energy of moving the given bytes.
func (d Device) TransferEnergyJoules(bytes int64) float64 {
	return float64(bytes) / 1e6 * d.NetworkEnergyJoulePerMB
}

// ComputeEnergyJoules estimates the energy of a compute job that runs for the
// given number of seconds at full activity.
func (d Device) ComputeEnergyJoules(seconds float64) float64 {
	return seconds * d.ActivePowerWatts
}

// StorageBudget answers Section III's storage question: how many captured
// training images of the given encoded size fit on the node's storage, and
// whether the paper's working set (100k images at ~10 kB) fits.
type StorageBudget struct {
	ImagesThatFit   int64
	PaperWorkingSet bool // 100,000 images at 10 kB
}

// Storage evaluates the storage budget for the given per-image size in bytes.
func (d Device) Storage(imageBytes int64) StorageBudget {
	if imageBytes <= 0 {
		return StorageBudget{}
	}
	fit := d.StorageBytes / imageBytes
	return StorageBudget{
		ImagesThatFit:   fit,
		PaperWorkingSet: d.StorageBytes >= 100000*10*1024,
	}
}

// String summarises the device.
func (d Device) String() string {
	return fmt.Sprintf("%s: %.1f GB RAM, %.0f GFLOPS, %.0f Mbps uplink",
		d.Name, float64(d.MemoryBytes)/float64(1<<30), d.ComputeGFLOPS, d.NetworkMbps)
}
