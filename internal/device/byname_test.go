package device

import "testing"

func TestByName(t *testing.T) {
	d, err := ByName("waggle")
	if err != nil || d.Name != Waggle().Name {
		t.Fatalf("ByName(waggle) = %v, %v", d, err)
	}
	d, err = ByName("cloud")
	if err != nil || d.Name != CloudGPU().Name {
		t.Fatalf("ByName(cloud) = %v, %v", d, err)
	}
	if _, err := ByName("toaster"); err == nil {
		t.Fatal("unknown device accepted")
	}
}
