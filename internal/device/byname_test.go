package device

import "testing"

func TestByName(t *testing.T) {
	d, err := ByName("waggle")
	if err != nil || d.Name != Waggle().Name {
		t.Fatalf("ByName(waggle) = %v, %v", d, err)
	}
	d, err = ByName("cloud")
	if err != nil || d.Name != CloudGPU().Name {
		t.Fatalf("ByName(cloud) = %v, %v", d, err)
	}
	d, err = ByName("jetson")
	if err != nil || d.Name != JetsonNano().Name {
		t.Fatalf("ByName(jetson) = %v, %v", d, err)
	}
	d, err = ByName("rpi")
	if err != nil || d.Name != RaspberryPi().Name {
		t.Fatalf("ByName(rpi) = %v, %v", d, err)
	}
	if _, err := ByName("toaster"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

// TestFleetDeviceOrdering pins the relation the heterogeneous fleet mixes
// rely on: the Jetson outclasses the Waggle node, which outclasses the Pi,
// in both memory and compute.
func TestFleetDeviceOrdering(t *testing.T) {
	j, w, p := JetsonNano(), Waggle(), RaspberryPi()
	if !(j.MemoryBytes > w.MemoryBytes && w.MemoryBytes > p.MemoryBytes) {
		t.Fatalf("memory ordering violated: jetson %d, waggle %d, rpi %d",
			j.MemoryBytes, w.MemoryBytes, p.MemoryBytes)
	}
	if !(j.ComputeGFLOPS > w.ComputeGFLOPS && w.ComputeGFLOPS > p.ComputeGFLOPS) {
		t.Fatalf("compute ordering violated: jetson %v, waggle %v, rpi %v",
			j.ComputeGFLOPS, w.ComputeGFLOPS, p.ComputeGFLOPS)
	}
}
