package device

import (
	"math"
	"strings"
	"testing"

	"github.com/edgeml/edgetrain/internal/memmodel"
	"github.com/edgeml/edgetrain/internal/resnet"
)

func TestWagglePreset(t *testing.T) {
	w := Waggle()
	if w.MemoryBytes != 2<<30 {
		t.Fatalf("Waggle memory %d, want 2 GiB", w.MemoryBytes)
	}
	if !strings.Contains(w.String(), "2.0 GB") {
		t.Fatalf("String: %s", w.String())
	}
	if w.ComputeGFLOPS >= CloudGPU().ComputeGFLOPS {
		t.Fatal("the edge node must be slower than the cloud GPU")
	}
}

func TestFitsAgainstTableEntries(t *testing.T) {
	w := Waggle()
	small, err := memmodel.Model(resnet.ResNet18, 224, 1, memmodel.DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Fits(small) {
		t.Fatal("ResNet-18 at batch 1 should fit the Waggle node")
	}
	big, err := memmodel.Model(resnet.ResNet152, 224, 8, memmodel.DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	if w.Fits(big) {
		t.Fatal("ResNet-152 at batch 8 should not fit the Waggle node")
	}
}

func TestMaxBatchSizeMatchesTableShading(t *testing.T) {
	w := Waggle()
	// Table I: ResNet-18 fits at batch 30 (just) but not at batch 50.
	k, err := w.MaxBatchSize(resnet.ResNet18, 224, memmodel.DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	if k < 10 || k >= 50 {
		t.Fatalf("ResNet-18 max batch %d, expected between 10 and 49", k)
	}
	// Table I: ResNet-152 fits only at batch 1 (not at 3).
	k, err = w.MaxBatchSize(resnet.ResNet152, 224, memmodel.DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 || k >= 3 {
		t.Fatalf("ResNet-152 max batch %d, expected 1 or 2", k)
	}
	// Table II: at image 1500 not even batch 1 of ResNet-50 fits.
	k, err = w.MaxBatchSize(resnet.ResNet50, 1500, memmodel.DefaultAccounting)
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 {
		t.Fatalf("ResNet-50 at image 1500 should not fit at all, got max batch %d", k)
	}
	if _, err := w.MaxBatchSize(resnet.Variant(7), 224, memmodel.DefaultAccounting); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestMaxDepthFormula(t *testing.T) {
	w := Waggle()
	// n_max = (MC - MW) / (k * MA): 2 GiB device, 0.5 GiB of weights, 10 MiB
	// per stage per sample, batch 4 -> floor(1.5 GiB / 40 MiB) = 38.
	got := w.MaxDepth(512<<20, 10<<20, 4)
	if got != 38 {
		t.Fatalf("MaxDepth = %d, want 38", got)
	}
	if w.MaxDepth(3<<30, 10<<20, 1) != 0 {
		t.Fatal("weights exceeding memory should give zero depth")
	}
	if w.MaxDepth(1<<20, 0, 1) != 0 || w.MaxDepth(1<<20, 1<<20, 0) != 0 {
		t.Fatal("degenerate arguments should give zero depth")
	}
}

func TestTimingAndEnergyHelpers(t *testing.T) {
	w := Waggle()
	// 25 GFLOPS device: 25e9 FLOPs take one second.
	if sec := w.TrainingStepSeconds(25e9); math.Abs(sec-1) > 1e-9 {
		t.Fatalf("TrainingStepSeconds = %v, want 1", sec)
	}
	// 10 Mbps uplink: 1 MB takes 0.8 seconds.
	if sec := w.TransferSeconds(1e6); math.Abs(sec-0.8) > 1e-9 {
		t.Fatalf("TransferSeconds = %v, want 0.8", sec)
	}
	if j := w.TransferEnergyJoules(5e6); math.Abs(j-10) > 1e-9 {
		t.Fatalf("TransferEnergyJoules = %v, want 10", j)
	}
	if j := w.ComputeEnergyJoules(10); math.Abs(j-120) > 1e-9 {
		t.Fatalf("ComputeEnergyJoules = %v, want 120", j)
	}
	var zero Device
	if zero.TrainingStepSeconds(1e9) != 0 || zero.TransferSeconds(1e6) != 0 {
		t.Fatal("zero-value device should report zero times, not divide by zero")
	}
}

func TestStorageBudget(t *testing.T) {
	w := Waggle()
	// Section III: 100,000 images at ~10 kB is about 1 GB and fits the SD card.
	b := w.Storage(10 << 10)
	if !b.PaperWorkingSet {
		t.Fatal("the paper's 100k-image working set should fit the Waggle storage")
	}
	if b.ImagesThatFit < 100000 {
		t.Fatalf("expected at least 100k images to fit, got %d", b.ImagesThatFit)
	}
	if w.Storage(0).ImagesThatFit != 0 {
		t.Fatal("zero image size should produce an empty budget")
	}
}
