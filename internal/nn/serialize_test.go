package nn

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/edgeml/edgetrain/internal/tensor"
)

func buildSerializableNet(seed uint64) *Sequential {
	rng := tensor.NewRNG(seed)
	return NewSequential("net",
		NewConv2D("conv1", 1, 4, 3, 1, 1, true, rng),
		NewBatchNorm2D("bn1", 4),
		NewReLU("relu1"),
		NewGlobalAvgPool2D("gap"),
		NewLinear("fc", 4, 3, true, rng),
	)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := buildSerializableNet(1)
	dst := buildSerializableNet(2) // different weights

	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Layers); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, dst.Layers); err != nil {
		t.Fatal(err)
	}
	srcParams, dstParams := src.Params(), dst.Params()
	for i := range srcParams {
		if !tensor.AllClose(srcParams[i].Value, dstParams[i].Value, 0) {
			t.Fatalf("parameter %s not restored exactly", srcParams[i].Name)
		}
	}
	// The restored model produces identical outputs.
	rng := tensor.NewRNG(3)
	x := tensor.RandNormal(rng, 0, 1, 2, 1, 8, 8)
	if !tensor.AllClose(src.Forward(x, false), dst.Forward(x, false), 1e-12) {
		t.Fatal("restored model output differs")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	src := buildSerializableNet(4)
	if err := SaveParamsFile(path, src.Layers); err != nil {
		t.Fatal(err)
	}
	dst := buildSerializableNet(5)
	if err := LoadParamsFile(path, dst.Layers); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(src.Params()[0].Value, dst.Params()[0].Value, 0) {
		t.Fatal("file round-trip failed")
	}
	if err := LoadParamsFile(filepath.Join(dir, "missing.gob"), dst.Layers); err == nil {
		t.Fatal("loading a missing file should fail")
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	src := buildSerializableNet(6)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Layers); err != nil {
		t.Fatal(err)
	}
	// A model with a different classifier width must be rejected.
	rng := tensor.NewRNG(7)
	other := NewSequential("net",
		NewConv2D("conv1", 1, 4, 3, 1, 1, true, rng),
		NewBatchNorm2D("bn1", 4),
		NewReLU("relu1"),
		NewGlobalAvgPool2D("gap"),
		NewLinear("fc", 4, 7, true, rng),
	)
	if err := LoadParams(&buf, other.Layers); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestLoadParamsMissingAndExtra(t *testing.T) {
	src := buildSerializableNet(8)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Layers); err != nil {
		t.Fatal(err)
	}
	// A model with an extra parameter not present in the snapshot.
	rng := tensor.NewRNG(9)
	bigger := NewSequential("net", append(append([]Layer{}, buildSerializableNet(9).Layers...), NewLinear("extra", 3, 2, true, rng))...)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), bigger.Layers); err == nil {
		t.Fatal("missing snapshot entry accepted")
	}
	// A model consuming fewer parameters than the snapshot provides.
	smaller := NewSequential("net", buildSerializableNet(10).Layers[:2]...)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), smaller.Layers); err == nil {
		t.Fatal("extra snapshot entries accepted")
	}
}

func TestSaveParamsDuplicateNames(t *testing.T) {
	rng := tensor.NewRNG(11)
	dup := NewSequential("net",
		NewLinear("same", 2, 2, true, rng),
		NewLinear("same", 2, 2, true, rng),
	)
	var buf bytes.Buffer
	if err := SaveParams(&buf, dup.Layers); err == nil {
		t.Fatal("duplicate parameter names accepted")
	}
}

func TestLoadParamsGarbage(t *testing.T) {
	net := buildSerializableNet(12)
	if err := LoadParams(bytes.NewReader([]byte("not a gob stream")), net.Layers); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestParamBytes(t *testing.T) {
	rng := tensor.NewRNG(13)
	l := NewLinear("fc", 10, 5, true, rng)
	if got := ParamBytes([]Layer{l}); got != int64(10*5+5)*8 {
		t.Fatalf("ParamBytes = %d", got)
	}
}
