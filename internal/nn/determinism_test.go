package nn

import (
	"testing"

	"github.com/edgeml/edgetrain/internal/parallel"
	"github.com/edgeml/edgetrain/internal/tensor"
)

// TestLayersBitIdenticalAcrossWorkerCounts runs a forward+backward pass of a
// small conv net (conv, batch norm, group norm, pooling, linear) under
// worker counts 1 and many, asserting bit-identical outputs, input
// gradients and parameter gradients — the layer-level form of the engine's
// determinism guarantee (EDGETRAIN_WORKERS must only change wall-clock).
func TestLayersBitIdenticalAcrossWorkerCounts(t *testing.T) {
	build := func() (*Sequential, []Layer) {
		rng := tensor.NewRNG(3)
		layers := []Layer{
			NewConv2D("c1", 3, 8, 3, 1, 1, true, rng),
			NewBatchNorm2D("bn1", 8),
			NewReLU("r1"),
			NewBasicBlock("blk", 8, 16, 2, rng),
			NewGroupNorm2D("gn", 16, 4),
			NewMaxPool2D("mp", 2, 2),
			NewGlobalAvgPool2D("gap"),
		}
		return NewSequential("net", layers...), layers
	}

	run := func(workers int) (*tensor.Tensor, *tensor.Tensor, []*tensor.Tensor) {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		net, _ := build()
		rng := tensor.NewRNG(17)
		x := tensor.RandNormal(rng, 0, 1, 2, 3, 12, 12)
		out := net.Forward(x, true)
		gradIn := net.Backward(tensor.Ones(out.Shape()...))
		var grads []*tensor.Tensor
		for _, p := range net.Params() {
			grads = append(grads, p.Grad.Clone())
		}
		return out, gradIn, grads
	}

	refOut, refGrad, refParams := run(1)
	for _, w := range []int{2, 5} {
		out, gradIn, params := run(w)
		if d := tensor.MaxAbsDiff(refOut, out); d != 0 {
			t.Errorf("workers=%d: forward output differs from serial by %g", w, d)
		}
		if d := tensor.MaxAbsDiff(refGrad, gradIn); d != 0 {
			t.Errorf("workers=%d: input gradient differs from serial by %g", w, d)
		}
		for i := range refParams {
			if d := tensor.MaxAbsDiff(refParams[i], params[i]); d != 0 {
				t.Errorf("workers=%d: parameter gradient %d differs from serial by %g", w, i, d)
			}
		}
	}
}
