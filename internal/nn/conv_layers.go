package nn

import (
	"fmt"
	"math"

	"github.com/edgeml/edgetrain/internal/parallel"
	"github.com/edgeml/edgetrain/internal/tensor"
)

// Conv2D is a 2-D convolution layer over NCHW tensors.
type Conv2D struct {
	name                string
	InC, OutC           int
	Kernel, Stride, Pad int
	W, B                *Param
	hasBias             bool
	lastIn              *tensor.Tensor
}

// NewConv2D creates a convolution layer with Kaiming-initialised weights.
func NewConv2D(name string, inC, outC, kernel, stride, pad int, bias bool, rng *tensor.RNG) *Conv2D {
	c := &Conv2D{
		name: name, InC: inC, OutC: outC,
		Kernel: kernel, Stride: stride, Pad: pad, hasBias: bias,
	}
	c.W = NewParam(name+".weight", tensor.KaimingConv(rng, outC, inC, kernel, kernel))
	if bias {
		c.B = NewParam(name+".bias", tensor.New(outC))
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank(x, 4, "Conv2D")
	if x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D %s expects %d input channels, got %d", c.name, c.InC, x.Dim(1)))
	}
	c.lastIn = x
	var bias *tensor.Tensor
	if c.hasBias {
		bias = c.B.Value
	}
	return tensor.Conv2D(x, c.W.Value, bias, c.Stride, c.Pad)
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastIn == nil {
		panic("nn: Conv2D.Backward called before Forward")
	}
	gi, gw, gb := tensor.Conv2DBackward(c.lastIn, c.W.Value, c.hasBias, gradOut, c.Stride, c.Pad)
	c.W.Grad.AddInPlace(gw)
	if c.hasBias {
		c.B.Grad.AddInPlace(gb)
	}
	return gi
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.hasBias {
		return []*Param{c.W, c.B}
	}
	return []*Param{c.W}
}

// OutputShape implements Layer.
func (c *Conv2D) OutputShape(in []int) []int {
	g := tensor.NewConvGeom(in[1], in[2], in[3], c.OutC, c.Kernel, c.Kernel, c.Stride, c.Pad)
	return g.OutputShape(in[0])
}

// Stats implements StatsProvider.
func (c *Conv2D) Stats(in []int) Stats {
	out := c.OutputShape(in)
	params := c.OutC * c.InC * c.Kernel * c.Kernel
	if c.hasBias {
		params += c.OutC
	}
	outElems := prod(out)
	macsPerOut := int64(c.InC * c.Kernel * c.Kernel)
	return Stats{
		ParamCount:      params,
		ActivationElems: prod(in),
		OutputElems:     outElems,
		ForwardFLOPs:    2 * outElems * macsPerOut,
		BackwardFLOPs:   4 * outElems * macsPerOut,
	}
}

// BatchNorm2D normalises each channel of an NCHW tensor over the batch and
// spatial dimensions, with learnable scale (gamma) and shift (beta).
type BatchNorm2D struct {
	name        string
	C           int
	Eps         float64
	Momentum    float64
	Gamma, Beta *Param
	// Running statistics for inference mode.
	RunningMean, RunningVar *tensor.Tensor
	// Backward cache. Only the normalised activations and per-channel
	// statistics are retained — never the input itself, which would pin a
	// full activation tensor for no computational purpose.
	batchMean []float64
	batchVar  []float64
	xhat      *tensor.Tensor
}

// NewBatchNorm2D creates a batch-norm layer for c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		name: name, C: c, Eps: 1e-5, Momentum: 0.1,
		RunningMean: tensor.New(c),
		RunningVar:  tensor.Ones(c),
	}
	bn.Gamma = NewParam(name+".gamma", tensor.Ones(c))
	bn.Beta = NewParam(name+".beta", tensor.New(c))
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return bn.name }

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	mustRank(x, 4, "BatchNorm2D")
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D %s expects %d channels, got %d", bn.name, bn.C, c))
	}
	out := x.NewLike()
	bn.xhat = tensor.EnsureLike(bn.xhat, x)
	if cap(bn.batchMean) < c {
		bn.batchMean = make([]float64, c)
		bn.batchVar = make([]float64, c)
	}
	bn.batchMean = bn.batchMean[:c]
	bn.batchVar = bn.batchVar[:c]
	area := h * w
	count := float64(n * area)
	xd, xh, od := x.Data(), bn.xhat.Data(), out.Data()
	rm, rv := bn.RunningMean.Data(), bn.RunningVar.Data()
	gam, bet := bn.Gamma.Value.Data(), bn.Beta.Value.Data()

	// Channels are fully independent (statistics, running averages and the
	// normalised outputs all live at per-channel offsets), so the channel
	// loop parallelizes with bit-identical results at any worker count.
	parallel.For(c, 1, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			var mean, variance float64
			if train {
				sum := 0.0
				for b := 0; b < n; b++ {
					off := ((b * c) + ch) * area
					for _, v := range xd[off : off+area] {
						sum += v
					}
				}
				mean = sum / count
				sq := 0.0
				for b := 0; b < n; b++ {
					off := ((b * c) + ch) * area
					for _, v := range xd[off : off+area] {
						d := v - mean
						sq += d * d
					}
				}
				variance = sq / count
				// Update running statistics (exponential moving average).
				rm[ch] = (1-bn.Momentum)*rm[ch] + bn.Momentum*mean
				rv[ch] = (1-bn.Momentum)*rv[ch] + bn.Momentum*variance
			} else {
				mean = rm[ch]
				variance = rv[ch]
			}
			bn.batchMean[ch] = mean
			bn.batchVar[ch] = variance
			invStd := 1.0 / math.Sqrt(variance+bn.Eps)
			g := gam[ch]
			bta := bet[ch]
			for b := 0; b < n; b++ {
				off := ((b * c) + ch) * area
				for i := off; i < off+area; i++ {
					v := (xd[i] - mean) * invStd
					xh[i] = v
					od[i] = g*v + bta
				}
			}
		}
	})
	return out
}

// Backward implements Layer. It implements the standard batch-norm gradient
// for training mode (batch statistics).
func (bn *BatchNorm2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if bn.xhat == nil {
		panic("nn: BatchNorm2D.Backward called before Forward")
	}
	n, c, h, w := bn.xhat.Dim(0), bn.xhat.Dim(1), bn.xhat.Dim(2), bn.xhat.Dim(3)
	area := h * w
	count := float64(n * area)
	gradIn := bn.xhat.NewLike()
	gd, xh, gid := gradOut.Data(), bn.xhat.Data(), gradIn.Data()
	gam, gg, bg := bn.Gamma.Value.Data(), bn.Gamma.Grad.Data(), bn.Beta.Grad.Data()

	parallel.For(c, 1, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			invStd := 1.0 / math.Sqrt(bn.batchVar[ch]+bn.Eps)
			g := gam[ch]

			var sumDy, sumDyXhat float64
			for b := 0; b < n; b++ {
				off := ((b * c) + ch) * area
				for i := off; i < off+area; i++ {
					dy := gd[i]
					sumDy += dy
					sumDyXhat += dy * xh[i]
				}
			}
			// Parameter gradients.
			gg[ch] += sumDyXhat
			bg[ch] += sumDy

			// Input gradient:
			// dx = (gamma*invStd/count) * (count*dy - sumDy - xhat*sumDyXhat)
			scale := g * invStd / count
			for b := 0; b < n; b++ {
				off := ((b * c) + ch) * area
				for i := off; i < off+area; i++ {
					gid[i] = scale * (count*gd[i] - sumDy - xh[i]*sumDyXhat)
				}
			}
		}
	})
	return gradIn
}

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// StateTensors implements Stateful: the running statistics are the only
// non-trainable state a checkpoint must carry for exact inference-mode
// behaviour after a resume.
func (bn *BatchNorm2D) StateTensors() []NamedState {
	return []NamedState{
		{Name: bn.name + ".running_mean", Tensor: bn.RunningMean},
		{Name: bn.name + ".running_var", Tensor: bn.RunningVar},
	}
}

// OutputShape implements Layer.
func (bn *BatchNorm2D) OutputShape(in []int) []int { return append([]int(nil), in...) }

// Stats implements StatsProvider.
func (bn *BatchNorm2D) Stats(in []int) Stats {
	n := prod(in)
	return Stats{
		ParamCount:      2 * bn.C,
		ActivationElems: 2 * n, // input and normalised xhat are retained
		OutputElems:     n,
		ForwardFLOPs:    4 * n,
		BackwardFLOPs:   8 * n,
	}
}

// MaxPool2D is a max pooling layer.
type MaxPool2D struct {
	name    string
	Kernel  int
	Stride  int
	inShape []int
	argmax  []int
}

// NewMaxPool2D creates a max-pool layer.
func NewMaxPool2D(name string, kernel, stride int) *MaxPool2D {
	return &MaxPool2D{name: name, Kernel: kernel, Stride: stride}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.name }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank(x, 4, "MaxPool2D")
	m.inShape = x.AppendShape(m.inShape)
	out, arg := tensor.MaxPool2D(x, m.Kernel, m.Stride)
	m.argmax = arg
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if m.argmax == nil {
		panic("nn: MaxPool2D.Backward called before Forward")
	}
	return tensor.MaxPool2DBackward(m.inShape, m.argmax, gradOut)
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// OutputShape implements Layer.
func (m *MaxPool2D) OutputShape(in []int) []int {
	outH := (in[2]-m.Kernel)/m.Stride + 1
	outW := (in[3]-m.Kernel)/m.Stride + 1
	return []int{in[0], in[1], outH, outW}
}

// Stats implements StatsProvider.
func (m *MaxPool2D) Stats(in []int) Stats {
	out := m.OutputShape(in)
	return Stats{
		ActivationElems: prod(out), // argmax indices, same cardinality as output
		OutputElems:     prod(out),
		ForwardFLOPs:    prod(in),
		BackwardFLOPs:   prod(out),
	}
}

// GlobalAvgPool2D averages each channel map to a single value, producing (N, C).
type GlobalAvgPool2D struct {
	name    string
	inShape []int
}

// NewGlobalAvgPool2D creates a global average pooling layer.
func NewGlobalAvgPool2D(name string) *GlobalAvgPool2D { return &GlobalAvgPool2D{name: name} }

// Name implements Layer.
func (g *GlobalAvgPool2D) Name() string { return g.name }

// Forward implements Layer.
func (g *GlobalAvgPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank(x, 4, "GlobalAvgPool2D")
	g.inShape = x.AppendShape(g.inShape)
	return tensor.GlobalAvgPool2D(x)
}

// Backward implements Layer.
func (g *GlobalAvgPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if g.inShape == nil {
		panic("nn: GlobalAvgPool2D.Backward called before Forward")
	}
	return tensor.GlobalAvgPool2DBackward(g.inShape, gradOut)
}

// Params implements Layer.
func (g *GlobalAvgPool2D) Params() []*Param { return nil }

// OutputShape implements Layer.
func (g *GlobalAvgPool2D) OutputShape(in []int) []int { return []int{in[0], in[1]} }

// Stats implements StatsProvider.
func (g *GlobalAvgPool2D) Stats(in []int) Stats {
	return Stats{
		OutputElems:   int64(in[0] * in[1]),
		ForwardFLOPs:  prod(in),
		BackwardFLOPs: prod(in),
	}
}

// AvgPool2D is an average pooling layer with a square window.
type AvgPool2D struct {
	name    string
	Kernel  int
	Stride  int
	inShape []int
}

// NewAvgPool2D creates an average pooling layer.
func NewAvgPool2D(name string, kernel, stride int) *AvgPool2D {
	return &AvgPool2D{name: name, Kernel: kernel, Stride: stride}
}

// Name implements Layer.
func (a *AvgPool2D) Name() string { return a.name }

// Forward implements Layer.
func (a *AvgPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank(x, 4, "AvgPool2D")
	a.inShape = x.AppendShape(a.inShape)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH := (h-a.Kernel)/a.Stride + 1
	outW := (w-a.Kernel)/a.Stride + 1
	out := tensor.New(n, c, outH, outW)
	win := float64(a.Kernel * a.Kernel)
	xd, od := x.Data(), out.Data()
	parallel.For(n*c, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			plane := xd[p*h*w : (p+1)*h*w]
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					s := 0.0
					for kh := 0; kh < a.Kernel; kh++ {
						row := (oh*a.Stride + kh) * w
						for kw := 0; kw < a.Kernel; kw++ {
							s += plane[row+ow*a.Stride+kw]
						}
					}
					od[(p*outH+oh)*outW+ow] = s / win
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (a *AvgPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if a.inShape == nil {
		panic("nn: AvgPool2D.Backward called before Forward")
	}
	gradIn := tensor.New(a.inShape...)
	n, c := a.inShape[0], a.inShape[1]
	h, w := a.inShape[2], a.inShape[3]
	outH, outW := gradOut.Dim(2), gradOut.Dim(3)
	win := float64(a.Kernel * a.Kernel)
	gd, gid := gradOut.Data(), gradIn.Data()
	parallel.For(n*c, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			plane := gid[p*h*w : (p+1)*h*w]
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					g := gd[(p*outH+oh)*outW+ow] / win
					for kh := 0; kh < a.Kernel; kh++ {
						row := (oh*a.Stride + kh) * w
						for kw := 0; kw < a.Kernel; kw++ {
							plane[row+ow*a.Stride+kw] += g
						}
					}
				}
			}
		}
	})
	return gradIn
}

// Params implements Layer.
func (a *AvgPool2D) Params() []*Param { return nil }

// OutputShape implements Layer.
func (a *AvgPool2D) OutputShape(in []int) []int {
	outH := (in[2]-a.Kernel)/a.Stride + 1
	outW := (in[3]-a.Kernel)/a.Stride + 1
	return []int{in[0], in[1], outH, outW}
}

// Stats implements StatsProvider.
func (a *AvgPool2D) Stats(in []int) Stats {
	out := a.OutputShape(in)
	return Stats{OutputElems: prod(out), ForwardFLOPs: prod(in), BackwardFLOPs: prod(in)}
}
