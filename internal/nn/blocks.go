package nn

import (
	"github.com/edgeml/edgetrain/internal/tensor"
)

// BasicBlock is the two-convolution residual block used by ResNet-18/34:
//
//	out = ReLU( BN(conv3x3(BN(conv3x3(x)) relu)) + shortcut(x) )
//
// where shortcut is the identity, or a strided 1x1 convolution + BN when the
// spatial size or channel count changes.
type BasicBlock struct {
	name string

	Conv1 *Conv2D
	BN1   *BatchNorm2D
	Relu1 *ReLU
	Conv2 *Conv2D
	BN2   *BatchNorm2D

	// Downsample path (nil for identity shortcuts).
	DownConv *Conv2D
	DownBN   *BatchNorm2D

	reluOut *ReLU // final activation
}

// NewBasicBlock builds a basic residual block mapping inC channels to outC
// channels with the given stride on the first convolution.
func NewBasicBlock(name string, inC, outC, stride int, rng *tensor.RNG) *BasicBlock {
	b := &BasicBlock{name: name}
	b.Conv1 = NewConv2D(name+".conv1", inC, outC, 3, stride, 1, false, rng)
	b.BN1 = NewBatchNorm2D(name+".bn1", outC)
	b.Relu1 = NewReLU(name + ".relu1")
	b.Conv2 = NewConv2D(name+".conv2", outC, outC, 3, 1, 1, false, rng)
	b.BN2 = NewBatchNorm2D(name+".bn2", outC)
	b.reluOut = NewReLU(name + ".relu_out")
	if stride != 1 || inC != outC {
		b.DownConv = NewConv2D(name+".downsample.conv", inC, outC, 1, stride, 0, false, rng)
		b.DownBN = NewBatchNorm2D(name+".downsample.bn", outC)
	}
	return b
}

// Name implements Layer.
func (b *BasicBlock) Name() string { return b.name }

// Forward implements Layer.
func (b *BasicBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := b.Conv1.Forward(x, train)
	out = b.BN1.Forward(out, train)
	out = b.Relu1.Forward(out, train)
	out = b.Conv2.Forward(out, train)
	out = b.BN2.Forward(out, train)

	var identity *tensor.Tensor
	if b.DownConv != nil {
		identity = b.DownConv.Forward(x, train)
		identity = b.DownBN.Forward(identity, train)
	} else {
		identity = x
	}
	// out is BN2's freshly allocated output, so the residual sum can be
	// accumulated in place without a temporary.
	out.AddInPlace(identity)
	return b.reluOut.Forward(out, train)
}

// Backward implements Layer.
func (b *BasicBlock) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	g := b.reluOut.Backward(gradOut)
	// The addition fans the gradient out to both the residual branch and the
	// shortcut branch. Neither branch mutates its upstream gradient, so both
	// can read g without a defensive copy.
	gMain := g
	gShortcut := g

	gMain = b.BN2.Backward(gMain)
	gMain = b.Conv2.Backward(gMain)
	gMain = b.Relu1.Backward(gMain)
	gMain = b.BN1.Backward(gMain)
	gMain = b.Conv1.Backward(gMain)

	if b.DownConv != nil {
		gShortcut = b.DownBN.Backward(gShortcut)
		gShortcut = b.DownConv.Backward(gShortcut)
	}
	// gMain is Conv1's freshly allocated input gradient; fold the shortcut
	// gradient into it in place.
	return gMain.AddInPlace(gShortcut)
}

// Params implements Layer.
func (b *BasicBlock) Params() []*Param {
	ps := append([]*Param{}, b.Conv1.Params()...)
	ps = append(ps, b.BN1.Params()...)
	ps = append(ps, b.Conv2.Params()...)
	ps = append(ps, b.BN2.Params()...)
	if b.DownConv != nil {
		ps = append(ps, b.DownConv.Params()...)
		ps = append(ps, b.DownBN.Params()...)
	}
	return ps
}

// StateTensors implements Stateful: the block's batch-norm running
// statistics, in layer order.
func (b *BasicBlock) StateTensors() []NamedState {
	st := append([]NamedState{}, b.BN1.StateTensors()...)
	st = append(st, b.BN2.StateTensors()...)
	if b.DownBN != nil {
		st = append(st, b.DownBN.StateTensors()...)
	}
	return st
}

// OutputShape implements Layer.
func (b *BasicBlock) OutputShape(in []int) []int {
	s := b.Conv1.OutputShape(in)
	return b.Conv2.OutputShape(s)
}

// Stats implements StatsProvider.
func (b *BasicBlock) Stats(in []int) Stats {
	var total Stats
	add := func(st Stats) {
		total.ParamCount += st.ParamCount
		total.ActivationElems += st.ActivationElems
		total.ForwardFLOPs += st.ForwardFLOPs
		total.BackwardFLOPs += st.BackwardFLOPs
	}
	s1 := b.Conv1.OutputShape(in)
	add(b.Conv1.Stats(in))
	add(b.BN1.Stats(s1))
	add(b.Relu1.Stats(s1))
	s2 := b.Conv2.OutputShape(s1)
	add(b.Conv2.Stats(s1))
	add(b.BN2.Stats(s2))
	if b.DownConv != nil {
		ds := b.DownConv.OutputShape(in)
		add(b.DownConv.Stats(in))
		add(b.DownBN.Stats(ds))
	}
	add(b.reluOut.Stats(s2))
	total.OutputElems = prod(s2)
	total.ParamBytesFP32 = int64(total.ParamCount) * 4
	total.ActBytesFP32 = total.ActivationElems * 4
	total.OutputBytesFP32 = total.OutputElems * 4
	return total
}

// Bottleneck is the three-convolution residual block used by ResNet-50/101/152:
// a 1x1 reduction, a 3x3 convolution and a 1x1 expansion (by a factor of 4).
type Bottleneck struct {
	name string

	Conv1 *Conv2D // 1x1 reduce
	BN1   *BatchNorm2D
	Relu1 *ReLU
	Conv2 *Conv2D // 3x3
	BN2   *BatchNorm2D
	Relu2 *ReLU
	Conv3 *Conv2D // 1x1 expand
	BN3   *BatchNorm2D

	DownConv *Conv2D
	DownBN   *BatchNorm2D

	reluOut *ReLU
}

// BottleneckExpansion is the channel expansion factor of the final 1x1
// convolution in a bottleneck block (4 in the published ResNet family).
const BottleneckExpansion = 4

// NewBottleneck builds a bottleneck residual block. planes is the internal
// width; the block outputs planes*BottleneckExpansion channels.
func NewBottleneck(name string, inC, planes, stride int, rng *tensor.RNG) *Bottleneck {
	outC := planes * BottleneckExpansion
	b := &Bottleneck{name: name}
	b.Conv1 = NewConv2D(name+".conv1", inC, planes, 1, 1, 0, false, rng)
	b.BN1 = NewBatchNorm2D(name+".bn1", planes)
	b.Relu1 = NewReLU(name + ".relu1")
	b.Conv2 = NewConv2D(name+".conv2", planes, planes, 3, stride, 1, false, rng)
	b.BN2 = NewBatchNorm2D(name+".bn2", planes)
	b.Relu2 = NewReLU(name + ".relu2")
	b.Conv3 = NewConv2D(name+".conv3", planes, outC, 1, 1, 0, false, rng)
	b.BN3 = NewBatchNorm2D(name+".bn3", outC)
	b.reluOut = NewReLU(name + ".relu_out")
	if stride != 1 || inC != outC {
		b.DownConv = NewConv2D(name+".downsample.conv", inC, outC, 1, stride, 0, false, rng)
		b.DownBN = NewBatchNorm2D(name+".downsample.bn", outC)
	}
	return b
}

// Name implements Layer.
func (b *Bottleneck) Name() string { return b.name }

// Forward implements Layer.
func (b *Bottleneck) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := b.Conv1.Forward(x, train)
	out = b.BN1.Forward(out, train)
	out = b.Relu1.Forward(out, train)
	out = b.Conv2.Forward(out, train)
	out = b.BN2.Forward(out, train)
	out = b.Relu2.Forward(out, train)
	out = b.Conv3.Forward(out, train)
	out = b.BN3.Forward(out, train)

	var identity *tensor.Tensor
	if b.DownConv != nil {
		identity = b.DownConv.Forward(x, train)
		identity = b.DownBN.Forward(identity, train)
	} else {
		identity = x
	}
	out.AddInPlace(identity)
	return b.reluOut.Forward(out, train)
}

// Backward implements Layer.
func (b *Bottleneck) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	g := b.reluOut.Backward(gradOut)
	gMain := g
	gShortcut := g

	gMain = b.BN3.Backward(gMain)
	gMain = b.Conv3.Backward(gMain)
	gMain = b.Relu2.Backward(gMain)
	gMain = b.BN2.Backward(gMain)
	gMain = b.Conv2.Backward(gMain)
	gMain = b.Relu1.Backward(gMain)
	gMain = b.BN1.Backward(gMain)
	gMain = b.Conv1.Backward(gMain)

	if b.DownConv != nil {
		gShortcut = b.DownBN.Backward(gShortcut)
		gShortcut = b.DownConv.Backward(gShortcut)
	}
	return gMain.AddInPlace(gShortcut)
}

// Params implements Layer.
func (b *Bottleneck) Params() []*Param {
	ps := append([]*Param{}, b.Conv1.Params()...)
	ps = append(ps, b.BN1.Params()...)
	ps = append(ps, b.Conv2.Params()...)
	ps = append(ps, b.BN2.Params()...)
	ps = append(ps, b.Conv3.Params()...)
	ps = append(ps, b.BN3.Params()...)
	if b.DownConv != nil {
		ps = append(ps, b.DownConv.Params()...)
		ps = append(ps, b.DownBN.Params()...)
	}
	return ps
}

// StateTensors implements Stateful: the block's batch-norm running
// statistics, in layer order.
func (b *Bottleneck) StateTensors() []NamedState {
	st := append([]NamedState{}, b.BN1.StateTensors()...)
	st = append(st, b.BN2.StateTensors()...)
	st = append(st, b.BN3.StateTensors()...)
	if b.DownBN != nil {
		st = append(st, b.DownBN.StateTensors()...)
	}
	return st
}

// OutputShape implements Layer.
func (b *Bottleneck) OutputShape(in []int) []int {
	s := b.Conv1.OutputShape(in)
	s = b.Conv2.OutputShape(s)
	return b.Conv3.OutputShape(s)
}

// Stats implements StatsProvider.
func (b *Bottleneck) Stats(in []int) Stats {
	var total Stats
	add := func(st Stats) {
		total.ParamCount += st.ParamCount
		total.ActivationElems += st.ActivationElems
		total.ForwardFLOPs += st.ForwardFLOPs
		total.BackwardFLOPs += st.BackwardFLOPs
	}
	s1 := b.Conv1.OutputShape(in)
	add(b.Conv1.Stats(in))
	add(b.BN1.Stats(s1))
	add(b.Relu1.Stats(s1))
	s2 := b.Conv2.OutputShape(s1)
	add(b.Conv2.Stats(s1))
	add(b.BN2.Stats(s2))
	add(b.Relu2.Stats(s2))
	s3 := b.Conv3.OutputShape(s2)
	add(b.Conv3.Stats(s2))
	add(b.BN3.Stats(s3))
	if b.DownConv != nil {
		ds := b.DownConv.OutputShape(in)
		add(b.DownConv.Stats(in))
		add(b.DownBN.Stats(ds))
	}
	add(b.reluOut.Stats(s3))
	total.OutputElems = prod(s3)
	total.ParamBytesFP32 = int64(total.ParamCount) * 4
	total.ActBytesFP32 = total.ActivationElems * 4
	total.OutputBytesFP32 = total.OutputElems * 4
	return total
}
