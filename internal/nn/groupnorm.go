package nn

import (
	"fmt"
	"math"

	"github.com/edgeml/edgetrain/internal/tensor"
)

// GroupNorm2D normalises groups of channels within each sample. Unlike batch
// normalisation it does not depend on the batch dimension at all, which makes
// it the natural choice for Edge training where checkpointing and memory
// limits push the batch size towards 1-2 (the regime Section IV warns about
// for batch statistics).
type GroupNorm2D struct {
	name        string
	C, Groups   int
	Eps         float64
	Gamma, Beta *Param

	lastIn   *tensor.Tensor
	xhat     *tensor.Tensor
	groupVar []float64
}

// NewGroupNorm2D creates a group-norm layer for c channels split into the
// given number of groups (which must divide c).
func NewGroupNorm2D(name string, c, groups int) *GroupNorm2D {
	if groups <= 0 || c%groups != 0 {
		panic(fmt.Sprintf("nn: GroupNorm2D %s: %d channels not divisible into %d groups", name, c, groups))
	}
	gn := &GroupNorm2D{name: name, C: c, Groups: groups, Eps: 1e-5}
	gn.Gamma = NewParam(name+".gamma", tensor.Ones(c))
	gn.Beta = NewParam(name+".beta", tensor.New(c))
	return gn
}

// Name implements Layer.
func (gn *GroupNorm2D) Name() string { return gn.name }

// Forward implements Layer.
func (gn *GroupNorm2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank(x, 4, "GroupNorm2D")
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != gn.C {
		panic(fmt.Sprintf("nn: GroupNorm2D %s expects %d channels, got %d", gn.name, gn.C, c))
	}
	gn.lastIn = x.Clone()
	gn.xhat = tensor.New(x.Shape()...)
	out := tensor.New(x.Shape()...)
	chPerGroup := c / gn.Groups
	area := h * w
	groupSize := float64(chPerGroup * area)
	gn.groupVar = make([]float64, n*gn.Groups)

	for b := 0; b < n; b++ {
		for g := 0; g < gn.Groups; g++ {
			var sum float64
			for ch := g * chPerGroup; ch < (g+1)*chPerGroup; ch++ {
				off := ((b * c) + ch) * area
				for i := 0; i < area; i++ {
					sum += x.Data()[off+i]
				}
			}
			mean := sum / groupSize
			var sq float64
			for ch := g * chPerGroup; ch < (g+1)*chPerGroup; ch++ {
				off := ((b * c) + ch) * area
				for i := 0; i < area; i++ {
					d := x.Data()[off+i] - mean
					sq += d * d
				}
			}
			variance := sq / groupSize
			gn.groupVar[b*gn.Groups+g] = variance
			invStd := 1 / math.Sqrt(variance+gn.Eps)
			for ch := g * chPerGroup; ch < (g+1)*chPerGroup; ch++ {
				off := ((b * c) + ch) * area
				gamma := gn.Gamma.Value.Data()[ch]
				beta := gn.Beta.Value.Data()[ch]
				for i := 0; i < area; i++ {
					xh := (x.Data()[off+i] - mean) * invStd
					gn.xhat.Data()[off+i] = xh
					out.Data()[off+i] = gamma*xh + beta
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (gn *GroupNorm2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if gn.lastIn == nil {
		panic("nn: GroupNorm2D.Backward called before Forward")
	}
	n, c, h, w := gn.lastIn.Dim(0), gn.lastIn.Dim(1), gn.lastIn.Dim(2), gn.lastIn.Dim(3)
	area := h * w
	chPerGroup := c / gn.Groups
	groupSize := float64(chPerGroup * area)
	gradIn := tensor.New(gn.lastIn.Shape()...)

	// Parameter gradients.
	for ch := 0; ch < c; ch++ {
		var dGamma, dBeta float64
		for b := 0; b < n; b++ {
			off := ((b * c) + ch) * area
			for i := 0; i < area; i++ {
				dy := gradOut.Data()[off+i]
				dGamma += dy * gn.xhat.Data()[off+i]
				dBeta += dy
			}
		}
		gn.Gamma.Grad.Data()[ch] += dGamma
		gn.Beta.Grad.Data()[ch] += dBeta
	}

	// Input gradient, per (sample, group).
	for b := 0; b < n; b++ {
		for g := 0; g < gn.Groups; g++ {
			invStd := 1 / math.Sqrt(gn.groupVar[b*gn.Groups+g]+gn.Eps)
			var sumDy, sumDyXhat float64
			for ch := g * chPerGroup; ch < (g+1)*chPerGroup; ch++ {
				off := ((b * c) + ch) * area
				gamma := gn.Gamma.Value.Data()[ch]
				for i := 0; i < area; i++ {
					dy := gradOut.Data()[off+i] * gamma
					sumDy += dy
					sumDyXhat += dy * gn.xhat.Data()[off+i]
				}
			}
			for ch := g * chPerGroup; ch < (g+1)*chPerGroup; ch++ {
				off := ((b * c) + ch) * area
				gamma := gn.Gamma.Value.Data()[ch]
				for i := 0; i < area; i++ {
					dy := gradOut.Data()[off+i] * gamma
					xh := gn.xhat.Data()[off+i]
					gradIn.Data()[off+i] = invStd / groupSize * (groupSize*dy - sumDy - xh*sumDyXhat)
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (gn *GroupNorm2D) Params() []*Param { return []*Param{gn.Gamma, gn.Beta} }

// OutputShape implements Layer.
func (gn *GroupNorm2D) OutputShape(in []int) []int { return append([]int(nil), in...) }

// Stats implements StatsProvider.
func (gn *GroupNorm2D) Stats(in []int) Stats {
	n := prod(in)
	return Stats{
		ParamCount:      2 * gn.C,
		ActivationElems: 2 * n,
		OutputElems:     n,
		ForwardFLOPs:    4 * n,
		BackwardFLOPs:   8 * n,
	}
}
