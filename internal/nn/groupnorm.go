package nn

import (
	"fmt"
	"math"

	"github.com/edgeml/edgetrain/internal/parallel"
	"github.com/edgeml/edgetrain/internal/tensor"
)

// GroupNorm2D normalises groups of channels within each sample. Unlike batch
// normalisation it does not depend on the batch dimension at all, which makes
// it the natural choice for Edge training where checkpointing and memory
// limits push the batch size towards 1-2 (the regime Section IV warns about
// for batch statistics).
type GroupNorm2D struct {
	name        string
	C, Groups   int
	Eps         float64
	Gamma, Beta *Param

	// Backward cache: only the normalised activations and per-group
	// variances are retained, never the input itself.
	xhat     *tensor.Tensor
	groupVar []float64
}

// NewGroupNorm2D creates a group-norm layer for c channels split into the
// given number of groups (which must divide c).
func NewGroupNorm2D(name string, c, groups int) *GroupNorm2D {
	if groups <= 0 || c%groups != 0 {
		panic(fmt.Sprintf("nn: GroupNorm2D %s: %d channels not divisible into %d groups", name, c, groups))
	}
	gn := &GroupNorm2D{name: name, C: c, Groups: groups, Eps: 1e-5}
	gn.Gamma = NewParam(name+".gamma", tensor.Ones(c))
	gn.Beta = NewParam(name+".beta", tensor.New(c))
	return gn
}

// Name implements Layer.
func (gn *GroupNorm2D) Name() string { return gn.name }

// Forward implements Layer.
func (gn *GroupNorm2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank(x, 4, "GroupNorm2D")
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != gn.C {
		panic(fmt.Sprintf("nn: GroupNorm2D %s expects %d channels, got %d", gn.name, gn.C, c))
	}
	gn.xhat = tensor.EnsureLike(gn.xhat, x)
	out := x.NewLike()
	chPerGroup := c / gn.Groups
	area := h * w
	groupSize := float64(chPerGroup * area)
	if cap(gn.groupVar) < n*gn.Groups {
		gn.groupVar = make([]float64, n*gn.Groups)
	}
	gn.groupVar = gn.groupVar[:n*gn.Groups]
	xd, xh, od := x.Data(), gn.xhat.Data(), out.Data()
	gam, bet := gn.Gamma.Value.Data(), gn.Beta.Value.Data()

	// Each (sample, group) pair is independent; parallelize over the
	// flattened pair index with bit-identical per-pair arithmetic.
	parallel.For(n*gn.Groups, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			b, g := p/gn.Groups, p%gn.Groups
			var sum float64
			for ch := g * chPerGroup; ch < (g+1)*chPerGroup; ch++ {
				off := ((b * c) + ch) * area
				for _, v := range xd[off : off+area] {
					sum += v
				}
			}
			mean := sum / groupSize
			var sq float64
			for ch := g * chPerGroup; ch < (g+1)*chPerGroup; ch++ {
				off := ((b * c) + ch) * area
				for _, v := range xd[off : off+area] {
					d := v - mean
					sq += d * d
				}
			}
			variance := sq / groupSize
			gn.groupVar[p] = variance
			invStd := 1 / math.Sqrt(variance+gn.Eps)
			for ch := g * chPerGroup; ch < (g+1)*chPerGroup; ch++ {
				off := ((b * c) + ch) * area
				gamma := gam[ch]
				beta := bet[ch]
				for i := off; i < off+area; i++ {
					v := (xd[i] - mean) * invStd
					xh[i] = v
					od[i] = gamma*v + beta
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (gn *GroupNorm2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if gn.xhat == nil {
		panic("nn: GroupNorm2D.Backward called before Forward")
	}
	n, c, h, w := gn.xhat.Dim(0), gn.xhat.Dim(1), gn.xhat.Dim(2), gn.xhat.Dim(3)
	area := h * w
	chPerGroup := c / gn.Groups
	groupSize := float64(chPerGroup * area)
	gradIn := gn.xhat.NewLike()
	gd, xhd, gid := gradOut.Data(), gn.xhat.Data(), gradIn.Data()
	gam := gn.Gamma.Value.Data()

	// Parameter gradients: channels are independent.
	gg, bg := gn.Gamma.Grad.Data(), gn.Beta.Grad.Data()
	parallel.For(c, 1, func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			var dGamma, dBeta float64
			for b := 0; b < n; b++ {
				off := ((b * c) + ch) * area
				for i := off; i < off+area; i++ {
					dy := gd[i]
					dGamma += dy * xhd[i]
					dBeta += dy
				}
			}
			gg[ch] += dGamma
			bg[ch] += dBeta
		}
	})

	// Input gradient, per (sample, group) — pairs are independent.
	parallel.For(n*gn.Groups, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			b, g := p/gn.Groups, p%gn.Groups
			invStd := 1 / math.Sqrt(gn.groupVar[p]+gn.Eps)
			var sumDy, sumDyXhat float64
			for ch := g * chPerGroup; ch < (g+1)*chPerGroup; ch++ {
				off := ((b * c) + ch) * area
				gamma := gam[ch]
				for i := off; i < off+area; i++ {
					dy := gd[i] * gamma
					sumDy += dy
					sumDyXhat += dy * xhd[i]
				}
			}
			for ch := g * chPerGroup; ch < (g+1)*chPerGroup; ch++ {
				off := ((b * c) + ch) * area
				gamma := gam[ch]
				for i := off; i < off+area; i++ {
					dy := gd[i] * gamma
					gid[i] = invStd / groupSize * (groupSize*dy - sumDy - xhd[i]*sumDyXhat)
				}
			}
		}
	})
	return gradIn
}

// Params implements Layer.
func (gn *GroupNorm2D) Params() []*Param { return []*Param{gn.Gamma, gn.Beta} }

// OutputShape implements Layer.
func (gn *GroupNorm2D) OutputShape(in []int) []int { return append([]int(nil), in...) }

// Stats implements StatsProvider.
func (gn *GroupNorm2D) Stats(in []int) Stats {
	n := prod(in)
	return Stats{
		ParamCount:      2 * gn.C,
		ActivationElems: 2 * n,
		OutputElems:     n,
		ForwardFLOPs:    4 * n,
		BackwardFLOPs:   8 * n,
	}
}
