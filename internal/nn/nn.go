// Package nn implements the neural-network layers used by the
// Training-on-the-Edge reproduction: convolutions, batch normalisation,
// ReLU, pooling, linear layers and residual blocks, each with a true
// forward and backward pass and per-layer parameter/activation accounting.
//
// The layers run on the parallel, allocation-free kernel engine in
// internal/tensor: GEMMs are cache-blocked and transpose-free, convolutions
// draw pooled im2col scratch, and per-channel/per-sample reductions are
// parallelized via internal/parallel with bit-identical results at any
// worker count. Layers retain a *reference* to their forward input until
// Backward runs (the borrow contract below), so the hot training loop pays
// no defensive copies.
package nn

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/tensor"
)

// Param is a trainable parameter: a value tensor and its accumulated
// gradient. Optimisers in internal/trainer attach per-parameter state
// (momentum, Adam moments) keyed by the Param pointer.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter with a zeroed gradient of matching shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Count returns the number of scalar values in the parameter.
func (p *Param) Count() int { return p.Value.Size() }

// Layer is a differentiable module. Forward stores whatever it needs to run
// Backward; calling Forward again overwrites that cache, which is exactly the
// behaviour the checkpointed executor relies on when it recomputes a segment.
//
// Borrow contract: a layer may retain a reference to its Forward input (not
// a copy) until the matching Backward call, and callers must not mutate the
// input in that window. Conversely, every layer returns a freshly allocated
// output tensor from Forward — never an internal buffer — so the
// checkpointed executor can snapshot stage outputs by reference and replay
// forwards without corrupting retained states. Layers never mutate their
// inputs or upstream gradients.
//
// Accumulation contract: Backward adds each parameter's whole-call gradient
// contribution to Param.Grad with a single element-wise addition (computing
// into a scratch first if the kernel reduces per sample), never one addition
// per sample. Accumulating k batches without ZeroGrads therefore associates
// exactly like folding the k per-batch gradients in call order — the
// property that makes the fleet package's synchronous gradient all-reduce
// bit-identical to single-node gradient accumulation over the same batches.
type Layer interface {
	// Name returns a short human-readable identifier.
	Name() string
	// Forward computes the layer output for input x. When train is false the
	// layer runs in inference mode (e.g. batch norm uses running statistics).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient with respect to the layer output and
	// returns the gradient with respect to the layer input, accumulating
	// parameter gradients as a side effect. It must be called after Forward.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (possibly empty).
	Params() []*Param
	// OutputShape maps an input shape to the layer's output shape without
	// running the layer; it is used for memory accounting and model assembly.
	OutputShape(in []int) []int
}

// Stats describes the static cost of a layer for a given input shape. It is
// the bridge between live layers and the analytical memory model.
type Stats struct {
	ParamCount       int   // trainable scalars
	ActivationElems  int64 // elements the layer must retain for backward (per forward call)
	OutputElems      int64 // elements in the layer output
	ForwardFLOPs     int64 // approximate multiply-accumulate count for one forward pass
	BackwardFLOPs    int64 // approximate cost of the backward pass
	ParamBytesFP32   int64 // 4 bytes per parameter
	ActBytesFP32     int64 // 4 bytes per retained activation element
	OutputBytesFP32  int64
	ParamStateCopies int // value+grad+optimiser moments, filled in by callers
}

// StatsProvider is implemented by layers that can report their static costs.
type StatsProvider interface {
	Stats(in []int) Stats
}

func prod(shape []int) int64 {
	p := int64(1)
	for _, d := range shape {
		p *= int64(d)
	}
	return p
}

// CountParams sums the parameter counts of all layers.
func CountParams(layers []Layer) int {
	total := 0
	for _, l := range layers {
		for _, p := range l.Params() {
			total += p.Count()
		}
	}
	return total
}

// ZeroGrads clears the gradients of all parameters of all layers.
func ZeroGrads(layers []Layer) {
	for _, l := range layers {
		for _, p := range l.Params() {
			p.ZeroGrad()
		}
	}
}

// NamedState is one non-trainable state tensor of a layer, under a
// model-unique name derived from the layer name.
type NamedState struct {
	Name   string
	Tensor *tensor.Tensor
}

// Stateful is implemented by layers (and containers of layers) that carry
// non-trainable state which must survive checkpoint and resume — batch-norm
// running statistics. StateTensors returns live references, so callers can
// both read the state (checkpoint) and copy into it (resume).
type Stateful interface {
	StateTensors() []NamedState
}

// CollectState gathers the non-trainable state of all layers in layer order,
// recursing into containers. Layers without durable state contribute
// nothing.
func CollectState(layers []Layer) []NamedState {
	var out []NamedState
	for _, l := range layers {
		if s, ok := l.(Stateful); ok {
			out = append(out, s.StateTensors()...)
		}
	}
	return out
}

// Sequential is an ordered chain of layers, itself usable as a Layer.
type Sequential struct {
	name   string
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, Layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// Forward runs every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x
	for _, l := range s.Layers {
		out = l.Forward(out, train)
	}
	return out
}

// Backward runs every layer's backward pass in reverse order.
func (s *Sequential) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	g := gradOut
	for i := len(s.Layers) - 1; i >= 0; i-- {
		g = s.Layers[i].Backward(g)
	}
	return g
}

// Params returns the concatenation of all layers' parameters.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// StateTensors implements Stateful by recursing into the layers.
func (s *Sequential) StateTensors() []NamedState { return CollectState(s.Layers) }

// OutputShape threads the input shape through every layer.
func (s *Sequential) OutputShape(in []int) []int {
	shape := in
	for _, l := range s.Layers {
		shape = l.OutputShape(shape)
	}
	return shape
}

// Stats aggregates the stats of all contained layers.
func (s *Sequential) Stats(in []int) Stats {
	var total Stats
	shape := in
	for _, l := range s.Layers {
		if sp, ok := l.(StatsProvider); ok {
			st := sp.Stats(shape)
			total.ParamCount += st.ParamCount
			total.ActivationElems += st.ActivationElems
			total.ForwardFLOPs += st.ForwardFLOPs
			total.BackwardFLOPs += st.BackwardFLOPs
		}
		shape = l.OutputShape(shape)
	}
	total.OutputElems = prod(shape)
	total.ParamBytesFP32 = int64(total.ParamCount) * 4
	total.ActBytesFP32 = total.ActivationElems * 4
	total.OutputBytesFP32 = total.OutputElems * 4
	return total
}

// Len returns the number of layers in the container.
func (s *Sequential) Len() int { return len(s.Layers) }

// At returns the i-th layer.
func (s *Sequential) At(i int) Layer { return s.Layers[i] }

func mustRank(x *tensor.Tensor, rank int, who string) {
	if x.Rank() != rank {
		panic(fmt.Sprintf("nn: %s expects a rank-%d input, got rank %d (shape %v)", who, rank, x.Rank(), x.Shape()))
	}
}
