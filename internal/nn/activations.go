package nn

import (
	"math"

	"github.com/edgeml/edgetrain/internal/tensor"
)

// Sigmoid applies the logistic function element-wise.
type Sigmoid struct {
	name string
	out  *tensor.Tensor
}

// NewSigmoid creates a sigmoid activation layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return s.name }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	s.out = x.Map(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	return s.out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if s.out == nil {
		panic("nn: Sigmoid.Backward called before Forward")
	}
	gradIn := gradOut.Clone()
	o := s.out.Data()
	g := gradIn.Data()
	for i := range g {
		g[i] *= o[i] * (1 - o[i])
	}
	return gradIn
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// OutputShape implements Layer.
func (s *Sigmoid) OutputShape(in []int) []int { return append([]int(nil), in...) }

// Stats implements StatsProvider.
func (s *Sigmoid) Stats(in []int) Stats {
	n := prod(in)
	return Stats{ActivationElems: n, OutputElems: n, ForwardFLOPs: 4 * n, BackwardFLOPs: 3 * n}
}

// Tanh applies the hyperbolic tangent element-wise.
type Tanh struct {
	name string
	out  *tensor.Tensor
}

// NewTanh creates a tanh activation layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name implements Layer.
func (t *Tanh) Name() string { return t.name }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	t.out = x.Map(math.Tanh)
	return t.out
}

// Backward implements Layer.
func (t *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if t.out == nil {
		panic("nn: Tanh.Backward called before Forward")
	}
	gradIn := gradOut.Clone()
	o := t.out.Data()
	g := gradIn.Data()
	for i := range g {
		g[i] *= 1 - o[i]*o[i]
	}
	return gradIn
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// OutputShape implements Layer.
func (t *Tanh) OutputShape(in []int) []int { return append([]int(nil), in...) }

// Stats implements StatsProvider.
func (t *Tanh) Stats(in []int) Stats {
	n := prod(in)
	return Stats{ActivationElems: n, OutputElems: n, ForwardFLOPs: 6 * n, BackwardFLOPs: 3 * n}
}

// LeakyReLU applies max(alpha*x, x) element-wise.
type LeakyReLU struct {
	name  string
	Alpha float64
	mask  []bool
}

// NewLeakyReLU creates a leaky ReLU with the given negative slope (0.01 if
// alpha is zero).
func NewLeakyReLU(name string, alpha float64) *LeakyReLU {
	if alpha == 0 {
		alpha = 0.01
	}
	return &LeakyReLU{name: name, Alpha: alpha}
}

// Name implements Layer.
func (l *LeakyReLU) Name() string { return l.name }

// Forward implements Layer.
func (l *LeakyReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := x.Clone()
	if cap(l.mask) < x.Size() {
		l.mask = make([]bool, x.Size())
	}
	l.mask = l.mask[:x.Size()]
	d := out.Data()
	for i, v := range d {
		if v > 0 {
			l.mask[i] = true
		} else {
			l.mask[i] = false
			d[i] = l.Alpha * v
		}
	}
	return out
}

// Backward implements Layer.
func (l *LeakyReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(l.mask) != gradOut.Size() {
		panic("nn: LeakyReLU.Backward called before Forward")
	}
	gradIn := gradOut.Clone()
	g := gradIn.Data()
	for i := range g {
		if !l.mask[i] {
			g[i] *= l.Alpha
		}
	}
	return gradIn
}

// Params implements Layer.
func (l *LeakyReLU) Params() []*Param { return nil }

// OutputShape implements Layer.
func (l *LeakyReLU) OutputShape(in []int) []int { return append([]int(nil), in...) }

// Stats implements StatsProvider.
func (l *LeakyReLU) Stats(in []int) Stats {
	n := prod(in)
	return Stats{ActivationElems: n, OutputElems: n, ForwardFLOPs: n, BackwardFLOPs: n}
}

// Dropout randomly zeroes elements during training and scales the survivors
// by 1/(1-p) (inverted dropout), acting as the identity in inference mode.
type Dropout struct {
	name string
	P    float64
	rng  *tensor.RNG
	mask []float64
}

// NewDropout creates a dropout layer with drop probability p, using the given
// generator for reproducibility.
func NewDropout(name string, p float64, rng *tensor.RNG) *Dropout {
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		p = 0.99
	}
	return &Dropout{name: name, P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x.Clone()
	}
	out := x.Clone()
	if cap(d.mask) < x.Size() {
		d.mask = make([]float64, x.Size())
	}
	d.mask = d.mask[:x.Size()]
	keep := 1 - d.P
	scale := 1 / keep
	data := out.Data()
	for i := range data {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
			data[i] = 0
		} else {
			d.mask[i] = scale
			data[i] *= scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := gradOut.Clone()
	if d.mask == nil {
		return gradIn
	}
	g := gradIn.Data()
	for i := range g {
		g[i] *= d.mask[i]
	}
	return gradIn
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutputShape implements Layer.
func (d *Dropout) OutputShape(in []int) []int { return append([]int(nil), in...) }

// Stats implements StatsProvider.
func (d *Dropout) Stats(in []int) Stats {
	n := prod(in)
	return Stats{ActivationElems: n, OutputElems: n, ForwardFLOPs: n, BackwardFLOPs: n}
}
