package nn

import (
	"math"
	"testing"

	"github.com/edgeml/edgetrain/internal/tensor"
)

func TestGroupNormForwardNormalises(t *testing.T) {
	rng := tensor.NewRNG(1)
	gn := NewGroupNorm2D("gn", 4, 2)
	x := tensor.RandNormal(rng, 3, 2, 2, 4, 5, 5)
	out := gn.Forward(x, true)
	// Each (sample, group) block of the output should have mean ~0 and
	// variance ~1 (gamma=1, beta=0).
	for b := 0; b < 2; b++ {
		for g := 0; g < 2; g++ {
			var sum, sq float64
			count := 0
			for ch := g * 2; ch < (g+1)*2; ch++ {
				for i := 0; i < 5; i++ {
					for j := 0; j < 5; j++ {
						v := out.At(b, ch, i, j)
						sum += v
						sq += v * v
						count++
					}
				}
			}
			mean := sum / float64(count)
			variance := sq/float64(count) - mean*mean
			if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-3 {
				t.Fatalf("group (%d,%d) not normalised: mean=%v var=%v", b, g, mean, variance)
			}
		}
	}
}

func TestGroupNormBatchIndependence(t *testing.T) {
	// The output for one sample must not depend on the other samples in the
	// batch — the property batch norm lacks at tiny batch sizes.
	rng := tensor.NewRNG(2)
	gn := NewGroupNorm2D("gn", 4, 2)
	a := tensor.RandNormal(rng, 0, 1, 1, 4, 6, 6)
	b := tensor.RandNormal(rng, 5, 3, 1, 4, 6, 6)

	outSolo := gn.Forward(a, true).Clone()

	combined := tensor.New(2, 4, 6, 6)
	copy(combined.Data()[:a.Size()], a.Data())
	copy(combined.Data()[a.Size():], b.Data())
	outBatch := gn.Forward(combined, true)
	firstHalf := tensor.FromSlice(append([]float64(nil), outBatch.Data()[:a.Size()]...), 1, 4, 6, 6)
	if !tensor.AllClose(outSolo, firstHalf, 1e-9) {
		t.Fatal("group norm output changed when another sample joined the batch")
	}
}

func TestGroupNormGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	gn := NewGroupNorm2D("gn", 6, 3)
	x := tensor.RandNormal(rng, 1, 2, 2, 6, 3, 3)
	checkLayerGradients(t, gn, x, rng, 12, 2e-3)
}

func TestGroupNormSingleGroupMatchesLayerNormStyle(t *testing.T) {
	rng := tensor.NewRNG(4)
	gn := NewGroupNorm2D("gn", 4, 1)
	x := tensor.RandNormal(rng, 0, 1, 1, 4, 4, 4)
	out := gn.Forward(x, true)
	if math.Abs(out.Mean()) > 1e-9 {
		t.Fatalf("single-group norm should zero the per-sample mean, got %v", out.Mean())
	}
}

func TestGroupNormValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible group count accepted")
		}
	}()
	NewGroupNorm2D("bad", 5, 2)
}

func TestGroupNormStatsAndShape(t *testing.T) {
	gn := NewGroupNorm2D("gn", 8, 4)
	if got := gn.OutputShape([]int{2, 8, 5, 5}); got[1] != 8 {
		t.Fatalf("OutputShape wrong: %v", got)
	}
	st := gn.Stats([]int{2, 8, 5, 5})
	if st.ParamCount != 16 {
		t.Fatalf("param count %d, want 16", st.ParamCount)
	}
	if len(gn.Params()) != 2 {
		t.Fatal("group norm should expose gamma and beta")
	}
}
