package nn

import (
	"math"
	"testing"

	"github.com/edgeml/edgetrain/internal/tensor"
)

func TestSigmoidForwardBackward(t *testing.T) {
	rng := tensor.NewRNG(1)
	s := NewSigmoid("sig")
	x := tensor.RandNormal(rng, 0, 2, 3, 4)
	out := s.Forward(x, true)
	lo, _ := out.Min()
	hi, _ := out.Max()
	if lo <= 0 || hi >= 1 {
		t.Fatalf("sigmoid output outside (0,1): [%v, %v]", lo, hi)
	}
	if math.Abs(s.Forward(tensor.New(1, 1), true).At(0, 0)-0.5) > 1e-12 {
		t.Fatal("sigmoid(0) should be 0.5")
	}
	checkLayerGradients(t, NewSigmoid("sig2"), tensor.RandNormal(rng, 0, 1, 2, 5), rng, 10, 1e-4)
}

func TestTanhForwardBackward(t *testing.T) {
	rng := tensor.NewRNG(2)
	th := NewTanh("tanh")
	if math.Abs(th.Forward(tensor.New(1, 1), true).At(0, 0)) > 1e-12 {
		t.Fatal("tanh(0) should be 0")
	}
	checkLayerGradients(t, NewTanh("tanh2"), tensor.RandNormal(rng, 0, 1, 2, 6), rng, 10, 1e-4)
}

func TestLeakyReLUForwardBackward(t *testing.T) {
	rng := tensor.NewRNG(3)
	l := NewLeakyReLU("lrelu", 0.1)
	x := tensor.FromSlice([]float64{-2, 0, 3}, 1, 3)
	out := l.Forward(x, true)
	if math.Abs(out.At(0, 0)+0.2) > 1e-12 || out.At(0, 2) != 3 {
		t.Fatalf("leaky relu forward wrong: %v", out)
	}
	if NewLeakyReLU("d", 0).Alpha != 0.01 {
		t.Fatal("default alpha not applied")
	}
	checkLayerGradients(t, NewLeakyReLU("lrelu2", 0.2), tensor.RandNormal(rng, 0, 1, 2, 7), rng, 10, 1e-4)
}

func TestDropoutTrainEvalBehaviour(t *testing.T) {
	rng := tensor.NewRNG(4)
	d := NewDropout("drop", 0.5, rng)
	x := tensor.Ones(1, 1000)

	// Inference mode is the identity.
	eval := d.Forward(x, false)
	if !tensor.AllClose(eval, x, 0) {
		t.Fatal("dropout must be the identity in eval mode")
	}
	g := d.Backward(tensor.Ones(1, 1000))
	if g.Sum() != 1000 {
		t.Fatal("eval-mode backward must pass gradients through")
	}

	// Training mode drops roughly half and rescales survivors.
	out := d.Forward(x, true)
	zeros := 0
	for _, v := range out.Data() {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("surviving element should be scaled to 2, got %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("expected roughly half the elements dropped, got %d of 1000", zeros)
	}
	// Backward routes gradients only through survivors with the same scale.
	grad := d.Backward(tensor.Ones(1, 1000))
	for i, v := range grad.Data() {
		if out.Data()[i] == 0 && v != 0 {
			t.Fatal("gradient leaked through a dropped element")
		}
		if out.Data()[i] != 0 && math.Abs(v-2) > 1e-12 {
			t.Fatal("gradient scale wrong for a surviving element")
		}
	}
}

func TestDropoutProbabilityClamping(t *testing.T) {
	rng := tensor.NewRNG(5)
	if NewDropout("a", -0.5, rng).P != 0 {
		t.Fatal("negative p should clamp to 0")
	}
	if NewDropout("b", 1.5, rng).P >= 1 {
		t.Fatal("p >= 1 should clamp below 1")
	}
	// p = 0 is the identity even in training mode.
	d := NewDropout("c", 0, rng)
	x := tensor.Ones(2, 3)
	if !tensor.AllClose(d.Forward(x, true), x, 0) {
		t.Fatal("p=0 dropout should be the identity")
	}
}

func TestActivationStatsAndShapes(t *testing.T) {
	in := []int{2, 8}
	for _, l := range []Layer{NewSigmoid("s"), NewTanh("t"), NewLeakyReLU("l", 0.1), NewDropout("d", 0.3, tensor.NewRNG(6))} {
		shape := l.OutputShape(in)
		if shape[0] != 2 || shape[1] != 8 {
			t.Fatalf("%s OutputShape wrong: %v", l.Name(), shape)
		}
		if l.Params() != nil {
			t.Fatalf("%s should have no parameters", l.Name())
		}
		if sp, ok := l.(StatsProvider); ok {
			st := sp.Stats(in)
			if st.OutputElems != 16 {
				t.Fatalf("%s stats wrong: %+v", l.Name(), st)
			}
		} else {
			t.Fatalf("%s should implement StatsProvider", l.Name())
		}
	}
}
