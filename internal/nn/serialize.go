package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Model serialisation. On the Waggle deployment the teacher model is shipped
// to the node once and the student model is persisted to the node's SD card
// between opportunistic training windows, so the library needs a stable way
// to save and restore parameters. The format is a gob-encoded snapshot keyed
// by parameter name; loading matches by name and verifies shapes, so a model
// rebuilt from the same constructor round-trips exactly.

// paramRecord is the on-disk representation of one parameter.
type paramRecord struct {
	Name  string
	Shape []int
	Data  []float64
}

// snapshot is the on-disk representation of a model.
type snapshot struct {
	FormatVersion int
	Params        []paramRecord
}

// snapshotFormatVersion identifies the serialisation layout.
const snapshotFormatVersion = 1

// SaveParams writes the values of all parameters of the given layers to w.
func SaveParams(w io.Writer, layers []Layer) error {
	var snap snapshot
	snap.FormatVersion = snapshotFormatVersion
	seen := map[string]bool{}
	for _, l := range layers {
		for _, p := range l.Params() {
			if seen[p.Name] {
				return fmt.Errorf("nn: duplicate parameter name %q while saving", p.Name)
			}
			seen[p.Name] = true
			snap.Params = append(snap.Params, paramRecord{
				Name:  p.Name,
				Shape: p.Value.Shape(),
				Data:  append([]float64(nil), p.Value.Data()...),
			})
		}
	}
	return gob.NewEncoder(w).Encode(snap)
}

// LoadParams reads a snapshot from r and copies its values into the matching
// parameters of the given layers. Every parameter of the layers must be
// present in the snapshot with an identical shape; extra snapshot entries are
// an error as well, so teacher/student mix-ups are caught early.
func LoadParams(r io.Reader, layers []Layer) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decoding snapshot: %w", err)
	}
	if snap.FormatVersion != snapshotFormatVersion {
		return fmt.Errorf("nn: unsupported snapshot format %d", snap.FormatVersion)
	}
	byName := make(map[string]paramRecord, len(snap.Params))
	for _, rec := range snap.Params {
		byName[rec.Name] = rec
	}
	loaded := 0
	for _, l := range layers {
		for _, p := range l.Params() {
			rec, ok := byName[p.Name]
			if !ok {
				return fmt.Errorf("nn: snapshot is missing parameter %q", p.Name)
			}
			if !sameShape(rec.Shape, p.Value.Shape()) {
				return fmt.Errorf("nn: parameter %q has shape %v in the snapshot but %v in the model", p.Name, rec.Shape, p.Value.Shape())
			}
			copy(p.Value.Data(), rec.Data)
			loaded++
		}
	}
	if loaded != len(snap.Params) {
		return fmt.Errorf("nn: snapshot contains %d parameters but the model consumed only %d", len(snap.Params), loaded)
	}
	return nil
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SaveParamsFile saves the layers' parameters to a file.
func SaveParamsFile(path string, layers []Layer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveParams(f, layers); err != nil {
		return err
	}
	return f.Close()
}

// LoadParamsFile loads parameters from a file produced by SaveParamsFile.
func LoadParamsFile(path string, layers []Layer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadParams(f, layers)
}

// ParamBytes returns the serialised size of the layers' parameters at fp64,
// useful for the fleet simulation's model-transfer accounting.
func ParamBytes(layers []Layer) int64 {
	var total int64
	for _, l := range layers {
		for _, p := range l.Params() {
			total += int64(p.Count()) * 8
		}
	}
	return total
}
