package nn

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/edgeml/edgetrain/internal/tensor"
)

// Model serialisation. On the Waggle deployment the teacher model is shipped
// to the node once and the student model is persisted to the node's SD card
// between opportunistic training windows, so the library needs a stable way
// to save and restore parameters. The format is a gob-encoded snapshot keyed
// by parameter name; loading matches by name and verifies shapes, so a model
// rebuilt from the same constructor round-trips exactly.

// paramRecord is the on-disk representation of one parameter.
type paramRecord struct {
	Name  string
	Shape []int
	Data  []float64
}

// snapshot is the on-disk representation of a model.
type snapshot struct {
	FormatVersion int
	Params        []paramRecord
}

// snapshotFormatVersion identifies the serialisation layout.
const snapshotFormatVersion = 1

// SaveParams writes the values of all parameters of the given layers to w.
func SaveParams(w io.Writer, layers []Layer) error {
	var snap snapshot
	snap.FormatVersion = snapshotFormatVersion
	seen := map[string]bool{}
	for _, l := range layers {
		for _, p := range l.Params() {
			if seen[p.Name] {
				return fmt.Errorf("nn: duplicate parameter name %q while saving", p.Name)
			}
			seen[p.Name] = true
			snap.Params = append(snap.Params, paramRecord{
				Name:  p.Name,
				Shape: p.Value.Shape(),
				Data:  append([]float64(nil), p.Value.Data()...),
			})
		}
	}
	return gob.NewEncoder(w).Encode(snap)
}

// LoadParams reads a snapshot from r and copies its values into the matching
// parameters of the given layers. Every parameter of the layers must be
// present in the snapshot with an identical shape; extra snapshot entries are
// an error as well, so teacher/student mix-ups are caught early.
func LoadParams(r io.Reader, layers []Layer) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decoding snapshot: %w", err)
	}
	if snap.FormatVersion != snapshotFormatVersion {
		return fmt.Errorf("nn: unsupported snapshot format %d", snap.FormatVersion)
	}
	byName := make(map[string]paramRecord, len(snap.Params))
	for _, rec := range snap.Params {
		byName[rec.Name] = rec
	}
	loaded := 0
	for _, l := range layers {
		for _, p := range l.Params() {
			rec, ok := byName[p.Name]
			if !ok {
				return fmt.Errorf("nn: snapshot is missing parameter %q", p.Name)
			}
			if !sameShape(rec.Shape, p.Value.Shape()) {
				return fmt.Errorf("nn: parameter %q has shape %v in the snapshot but %v in the model", p.Name, rec.Shape, p.Value.Shape())
			}
			copy(p.Value.Data(), rec.Data)
			loaded++
		}
	}
	if loaded != len(snap.Params) {
		return fmt.Errorf("nn: snapshot contains %d parameters but the model consumed only %d", len(snap.Params), loaded)
	}
	return nil
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SaveParamsFile saves the layers' parameters to a file.
func SaveParamsFile(path string, layers []Layer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveParams(f, layers); err != nil {
		return err
	}
	return f.Close()
}

// LoadParamsFile loads parameters from a file produced by SaveParamsFile.
func LoadParamsFile(path string, layers []Layer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadParams(f, layers)
}

// Single-tensor codec. The checkpoint store's flash tier spills activation
// states to disk between the forward sweep and the backward sweep, so the
// format is optimised for the training loop rather than for archival: a raw
// little-endian layout (magic, rank, dims, then the float64 bits) that
// round-trips bit-exactly and is staged through the pooled byte scratch in
// internal/tensor, so steady-state spilling allocates only the restored
// tensor itself.

// tensorMagic identifies the raw tensor layout ("EDT1").
const tensorMagic = 0x45445431

// tensorChunkBytes is the staging granularity of the codec: the float64 data
// streams through a pooled buffer of this size, so a spill never holds a
// second full-size copy of the state — the extra memory is O(chunk), which
// matters on exactly the RAM-starved devices spilling is for.
const tensorChunkBytes = 64 << 10

// maxTensorElems bounds the element count ReadTensor accepts, so a corrupt
// or truncated spill file yields a decode error instead of an absurd
// allocation (2^48 elements is two petabytes of float64s). Dimensions are
// additionally bounded by the platform int so 32-bit targets (the ODROID's
// ARM cores) reject rather than truncate.
const maxTensorElems = int64(1) << 48

// maxEagerElems is the size up to which ReadTensor trusts the validated
// header and allocates the data exactly once (no append re-copying on the
// flash-restore hot path). Larger claims — far beyond any real checkpoint —
// grow incrementally, so a corrupt header costs at most the bytes actually
// present in the stream rather than one huge up-front allocation.
const maxEagerElems = int64(1) << 27 // 1 GiB of float64s

// EncodedTensorBytes returns the size of a tensor in the WriteTensor format.
func EncodedTensorBytes(t *tensor.Tensor) int64 {
	return 8 + 8*int64(t.Rank()) + 8*int64(t.Size())
}

// WriteTensor writes a single tensor to w in the raw edgetrain tensor format.
func WriteTensor(w io.Writer, t *tensor.Tensor) error {
	rank := t.Rank()
	headp := tensor.GetByteScratch(8 + 8*rank)
	head := *headp
	binary.LittleEndian.PutUint32(head[0:], tensorMagic)
	binary.LittleEndian.PutUint32(head[4:], uint32(rank))
	for i := 0; i < rank; i++ {
		binary.LittleEndian.PutUint64(head[8+8*i:], uint64(t.Dim(i)))
	}
	_, err := w.Write(head)
	tensor.PutByteScratch(headp)
	if err != nil {
		return err
	}
	bufp := tensor.GetByteScratch(tensorChunkBytes)
	defer tensor.PutByteScratch(bufp)
	buf := *bufp
	data := t.Data()
	for len(data) > 0 {
		n := min(len(data), tensorChunkBytes/8)
		for i, v := range data[:n] {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// ReadTensor reads a tensor written by WriteTensor. The returned tensor owns
// freshly allocated storage; the decode is bit-exact.
func ReadTensor(r io.Reader) (*tensor.Tensor, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("nn: reading tensor header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(head[0:]); m != tensorMagic {
		return nil, fmt.Errorf("nn: bad tensor magic %#x", m)
	}
	rank := int(binary.LittleEndian.Uint32(head[4:]))
	if rank > 32 {
		return nil, fmt.Errorf("nn: implausible tensor rank %d", rank)
	}
	shape := make([]int, rank)
	size := int64(1)
	dimsp := tensor.GetByteScratch(8 * rank)
	if _, err := io.ReadFull(r, *dimsp); err != nil {
		tensor.PutByteScratch(dimsp)
		return nil, fmt.Errorf("nn: reading tensor dims: %w", err)
	}
	for i := range shape {
		d := binary.LittleEndian.Uint64((*dimsp)[8*i:])
		// Validate before multiplying so corrupt headers cannot overflow
		// size into a negative or absurd allocation, and before the int
		// conversion so 32-bit platforms reject instead of truncating.
		if d > uint64(maxTensorElems) || d > uint64(math.MaxInt) || (d > 0 && size > maxTensorElems/int64(d)) {
			tensor.PutByteScratch(dimsp)
			return nil, fmt.Errorf("nn: implausible tensor dimension %d", d)
		}
		shape[i] = int(d)
		size *= int64(d)
	}
	tensor.PutByteScratch(dimsp)
	// Any realistic checkpoint gets its storage in one exact allocation (no
	// append re-copying while restoring on a RAM-starved device); only a
	// header claiming more than maxEagerElems — necessarily corrupt — falls
	// back to incremental growth, which costs at most the bytes actually
	// present in the stream before the read error surfaces.
	initialCap := size
	if size > maxEagerElems {
		initialCap = tensorChunkBytes / 8
	}
	data := make([]float64, 0, initialCap)
	bufp := tensor.GetByteScratch(tensorChunkBytes)
	defer tensor.PutByteScratch(bufp)
	buf := *bufp
	for remaining := size; remaining > 0; {
		n := min(remaining, tensorChunkBytes/8)
		if _, err := io.ReadFull(r, buf[:8*n]); err != nil {
			return nil, fmt.Errorf("nn: reading tensor data: %w", err)
		}
		for i := int64(0); i < n; i++ {
			data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:])))
		}
		remaining -= n
	}
	return tensor.FromSlice(data, shape...), nil
}

// ParamBytes returns the serialised size of the layers' parameters at fp64,
// useful for the fleet simulation's model-transfer accounting.
func ParamBytes(layers []Layer) int64 {
	var total int64
	for _, l := range layers {
		for _, p := range l.Params() {
			total += int64(p.Count()) * 8
		}
	}
	return total
}
