package nn

import (
	"bytes"
	"math"
	"testing"

	"github.com/edgeml/edgetrain/internal/tensor"
)

func TestTensorCodecRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(3)
	cases := []*tensor.Tensor{
		tensor.New(),                             // rank 0 scalar-shaped
		tensor.New(0),                            // empty
		tensor.Arange(7),                         // rank 1
		tensor.Eye(5),                            // rank 2
		tensor.RandNormal(rng, 0, 1, 2, 3, 4, 5), // rank 4
	}
	awkward := tensor.New(5)
	copy(awkward.Data(), []float64{math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), 5e-324})
	cases = append(cases, awkward)

	for _, want := range cases {
		var buf bytes.Buffer
		if err := WriteTensor(&buf, want); err != nil {
			t.Fatal(err)
		}
		if int64(buf.Len()) != EncodedTensorBytes(want) {
			t.Fatalf("encoded %d bytes, EncodedTensorBytes says %d", buf.Len(), EncodedTensorBytes(want))
		}
		got, err := ReadTensor(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !got.SameShape(want) {
			t.Fatalf("shape mismatch: %v vs %v", got.Shape(), want.Shape())
		}
		for i := range want.Data() {
			if math.Float64bits(got.Data()[i]) != math.Float64bits(want.Data()[i]) {
				t.Fatalf("element %d not bit-exact: %x vs %x",
					i, math.Float64bits(got.Data()[i]), math.Float64bits(want.Data()[i]))
			}
		}
	}
}

func TestTensorCodecRejectsGarbage(t *testing.T) {
	if _, err := ReadTensor(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := ReadTensor(bytes.NewReader([]byte("not a tensor at all"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated data section.
	var buf bytes.Buffer
	if err := WriteTensor(&buf, tensor.Arange(10)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadTensor(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
