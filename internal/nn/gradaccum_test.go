package nn

import (
	"testing"

	"github.com/edgeml/edgetrain/internal/tensor"
)

// The accumulation contract on Layer: Backward adds each parameter's
// whole-call contribution to Grad with a single element-wise addition. The
// observable consequence pinned here is exact: accumulating batches A then B
// without zeroing produces bit-for-bit the same gradients as folding the two
// per-batch gradients with one tensor addition. Per-sample accumulation into
// Grad (the bug this guards against) breaks the equality because floating-
// point addition is not associative. The fleet package's gradient all-reduce
// relies on this to be bit-identical to single-node accumulation.

func cloneGrads(l Layer) []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, p := range l.Params() {
		gs = append(gs, p.Grad.Clone())
	}
	return gs
}

func runStep(l Layer, x, upstream *tensor.Tensor) {
	out := l.Forward(x, true)
	if !out.SameShape(upstream) {
		panic("test upstream gradient shape mismatch")
	}
	l.Backward(upstream)
}

func TestBackwardSingleAddAccumulation(t *testing.T) {
	rng := tensor.NewRNG(11)
	cases := []struct {
		name  string
		layer Layer
		shape []int // input shape, batch first
	}{
		{"linear-bias", NewLinear("fc", 6, 5, true, rng), []int{4, 6}},
		{"conv-bias", NewConv2D("conv", 2, 3, 3, 1, 1, true, rng), []int{3, 2, 6, 6}},
		{"batchnorm", NewBatchNorm2D("bn", 3), []int{3, 3, 5, 5}},
		{"groupnorm", NewGroupNorm2D("gn", 4, 2), []int{2, 4, 5, 5}},
		{"basicblock", NewBasicBlock("blk", 3, 6, 2, rng), []int{2, 3, 8, 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := tensor.RandNormal(rng, 0, 1, tc.shape...)
			b := tensor.RandNormal(rng, 0, 1, tc.shape...)
			outShape := tc.layer.OutputShape(tc.shape)
			ga := tensor.RandNormal(rng, 0, 1, outShape...)
			gb := tensor.RandNormal(rng, 0, 1, outShape...)

			ZeroGrads([]Layer{tc.layer})
			runStep(tc.layer, a, ga)
			gradA := cloneGrads(tc.layer)
			runStep(tc.layer, b, gb)
			accumulated := cloneGrads(tc.layer)

			ZeroGrads([]Layer{tc.layer})
			runStep(tc.layer, b, gb)
			gradB := cloneGrads(tc.layer)

			for i := range gradA {
				folded := gradA[i].Clone().AddInPlace(gradB[i])
				fd, ad := folded.Data(), accumulated[i].Data()
				for j := range fd {
					if fd[j] != ad[j] {
						t.Fatalf("param %d (%s) element %d: accumulated %v != folded %v",
							i, tc.layer.Params()[i].Name, j, ad[j], fd[j])
					}
				}
			}
		})
	}
}
