package nn

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/edgeml/edgetrain/internal/tensor"
)

// scalarLoss turns a layer output into a deterministic scalar so that
// numerical differentiation has a single value to probe.
func scalarLoss(out, lossW *tensor.Tensor) float64 { return tensor.Dot(out, lossW) }

// checkLayerGradients compares the analytic input and parameter gradients of
// a layer against central finite differences on a handful of random indices.
func checkLayerGradients(t *testing.T, layer Layer, input *tensor.Tensor, rng *tensor.RNG, probes int, tol float64) {
	t.Helper()
	out := layer.Forward(input, true)
	lossW := tensor.RandNormal(rng, 0, 1, out.Shape()...)

	loss := func() float64 {
		return scalarLoss(layer.Forward(input, true), lossW)
	}

	// Analytic pass.
	ZeroGrads([]Layer{layer})
	layer.Forward(input, true)
	gradIn := layer.Backward(lossW.Clone())

	const eps = 1e-5
	probe := func(name string, value *tensor.Tensor, analytic *tensor.Tensor) {
		for p := 0; p < probes; p++ {
			idx := rng.Intn(value.Size())
			orig := value.Data()[idx]
			value.Data()[idx] = orig + eps
			up := loss()
			value.Data()[idx] = orig - eps
			down := loss()
			value.Data()[idx] = orig
			numeric := (up - down) / (2 * eps)
			got := analytic.Data()[idx]
			if math.Abs(numeric-got) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("%s: gradient mismatch at flat index %d: numeric %v, analytic %v", name, idx, numeric, got)
			}
		}
	}
	probe(layer.Name()+" input", input, gradIn)
	for _, prm := range layer.Params() {
		probe(prm.Name, prm.Value, prm.Grad)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU("relu")
	x := tensor.FromSlice([]float64{-1, 0, 2, -3, 4, 5}, 2, 3)
	out := r.Forward(x, true)
	want := []float64{0, 0, 2, 0, 4, 5}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("ReLU forward[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
	grad := tensor.Ones(2, 3)
	gin := r.Backward(grad)
	wantG := []float64{0, 0, 1, 0, 1, 1}
	for i, v := range wantG {
		if gin.Data()[i] != v {
			t.Fatalf("ReLU backward[%d] = %v, want %v", i, gin.Data()[i], v)
		}
	}
	if r.OutputShape([]int{4, 7})[1] != 7 {
		t.Fatal("ReLU OutputShape should be identity")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("flatten")
	rng := tensor.NewRNG(1)
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 4, 4)
	out := f.Forward(x, true)
	if out.Dim(0) != 2 || out.Dim(1) != 48 {
		t.Fatalf("Flatten shape wrong: %v", out.Shape())
	}
	g := f.Backward(out)
	if g.Rank() != 4 || g.Dim(3) != 4 {
		t.Fatalf("Flatten backward shape wrong: %v", g.Shape())
	}
	if !tensor.AllClose(g, x, 0) {
		t.Fatal("Flatten forward+backward should round-trip values")
	}
}

func TestLinearKnownValues(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewLinear("fc", 2, 2, true, rng)
	l.W.Value = tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2) // W[out][in]
	l.B.Value = tensor.FromSlice([]float64{10, 20}, 2)
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	out := l.Forward(x, true)
	// y0 = 1*1 + 2*1 + 10 = 13 ; y1 = 3+4+20 = 27
	if out.At(0, 0) != 13 || out.At(0, 1) != 27 {
		t.Fatalf("Linear forward wrong: %v", out)
	}
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	l := NewLinear("fc", 7, 5, true, rng)
	x := tensor.RandNormal(rng, 0, 1, 4, 7)
	checkLayerGradients(t, l, x, rng, 15, 1e-4)
}

func TestLinearNoBiasGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	l := NewLinear("fc", 6, 3, false, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 6)
	checkLayerGradients(t, l, x, rng, 10, 1e-4)
}

func TestConv2DLayerGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	c := NewConv2D("conv", 2, 3, 3, 1, 1, true, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 2, 5, 5)
	checkLayerGradients(t, c, x, rng, 12, 1e-4)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := tensor.NewRNG(6)
	c := NewConv2D("conv_s2", 3, 4, 3, 2, 1, false, rng)
	x := tensor.RandNormal(rng, 0, 1, 1, 3, 7, 7)
	checkLayerGradients(t, c, x, rng, 12, 1e-4)
}

func TestBatchNormGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	bn := NewBatchNorm2D("bn", 3)
	x := tensor.RandNormal(rng, 1, 2, 2, 3, 4, 4)
	checkLayerGradients(t, bn, x, rng, 12, 2e-3)
}

func TestBatchNormTrainOutputIsNormalized(t *testing.T) {
	rng := tensor.NewRNG(8)
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.RandNormal(rng, 5, 3, 4, 2, 6, 6)
	out := bn.Forward(x, true)
	// Per-channel mean should be ~0 and variance ~1 (gamma=1, beta=0).
	n, c, h, w := 4, 2, 6, 6
	for ch := 0; ch < c; ch++ {
		sum, sq := 0.0, 0.0
		count := 0
		for b := 0; b < n; b++ {
			for i := 0; i < h; i++ {
				for j := 0; j < w; j++ {
					v := out.At(b, ch, i, j)
					sum += v
					sq += v * v
					count++
				}
			}
		}
		mean := sum / float64(count)
		variance := sq/float64(count) - mean*mean
		if math.Abs(mean) > 1e-6 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d not normalised: mean=%v var=%v", ch, mean, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := tensor.NewRNG(9)
	bn := NewBatchNorm2D("bn", 1)
	// Train on a few batches so running statistics move away from (0, 1).
	for i := 0; i < 20; i++ {
		x := tensor.RandNormal(rng, 10, 2, 4, 1, 3, 3)
		bn.Forward(x, true)
	}
	if bn.RunningMean.At(0) < 5 {
		t.Fatalf("running mean did not track batch mean: %v", bn.RunningMean.At(0))
	}
	// In eval mode, a constant input equal to the running mean should map to ~beta.
	x := tensor.Full(bn.RunningMean.At(0), 1, 1, 3, 3)
	out := bn.Forward(x, false)
	if math.Abs(out.At(0, 0, 1, 1)) > 1e-6 {
		t.Fatalf("eval-mode output for running-mean input should be ~0, got %v", out.At(0, 0, 1, 1))
	}
}

func TestMaxPoolLayerGradients(t *testing.T) {
	rng := tensor.NewRNG(10)
	m := NewMaxPool2D("pool", 2, 2)
	// Use distinct values to avoid ties, which break finite differences.
	x := tensor.Arange(2*2*6*6).Reshape(2, 2, 6, 6)
	x.Apply(func(v float64) float64 { return v + 0.001*math.Sin(v) })
	checkLayerGradients(t, m, x, rng, 10, 1e-4)
}

func TestAvgPoolLayerGradients(t *testing.T) {
	rng := tensor.NewRNG(11)
	a := NewAvgPool2D("avg", 2, 2)
	x := tensor.RandNormal(rng, 0, 1, 2, 2, 6, 6)
	checkLayerGradients(t, a, x, rng, 10, 1e-4)
}

func TestGlobalAvgPoolLayerGradients(t *testing.T) {
	rng := tensor.NewRNG(12)
	g := NewGlobalAvgPool2D("gap")
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 5, 5)
	checkLayerGradients(t, g, x, rng, 10, 1e-4)
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	ce := NewSoftmaxCrossEntropy()
	// Uniform logits over 4 classes -> loss = ln(4).
	logits := tensor.New(2, 4)
	loss := ce.Forward(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-9 {
		t.Fatalf("uniform loss = %v, want ln(4)=%v", loss, math.Log(4))
	}
	// Gradient rows must sum to zero (softmax minus one-hot).
	g := ce.Backward()
	for i := 0; i < 2; i++ {
		s := 0.0
		for j := 0; j < 4; j++ {
			s += g.At(i, j)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("gradient row %d sums to %v, want 0", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyGradientNumerical(t *testing.T) {
	rng := tensor.NewRNG(13)
	logits := tensor.RandNormal(rng, 0, 2, 3, 5)
	labels := []int{1, 4, 0}
	ce := NewSoftmaxCrossEntropy()
	ce.Forward(logits, labels)
	grad := ce.Backward()
	const eps = 1e-6
	for probe := 0; probe < 10; probe++ {
		idx := rng.Intn(logits.Size())
		orig := logits.Data()[idx]
		logits.Data()[idx] = orig + eps
		up := ce.Forward(logits, labels)
		logits.Data()[idx] = orig - eps
		down := ce.Forward(logits, labels)
		logits.Data()[idx] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-grad.Data()[idx]) > 1e-5 {
			t.Fatalf("CE grad mismatch at %d: %v vs %v", idx, numeric, grad.Data()[idx])
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		1, 5, 2,
		9, 0, 1,
		0, 1, 8,
		3, 2, 1,
	}, 4, 3)
	acc := Accuracy(logits, []int{1, 0, 2, 2})
	if math.Abs(acc-0.75) > 1e-12 {
		t.Fatalf("Accuracy = %v, want 0.75", acc)
	}
	if Accuracy(tensor.New(0, 3), nil) != 0 {
		t.Fatal("Accuracy of empty batch should be 0")
	}
}

func TestBasicBlockShapesAndGradients(t *testing.T) {
	rng := tensor.NewRNG(14)
	blk := NewBasicBlock("block", 4, 8, 2, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 4, 8, 8)
	out := blk.Forward(x, true)
	wantShape := blk.OutputShape(x.Shape())
	for i, d := range wantShape {
		if out.Dim(i) != d {
			t.Fatalf("BasicBlock output shape %v, want %v", out.Shape(), wantShape)
		}
	}
	checkLayerGradients(t, blk, x, rng, 8, 5e-3)
}

func TestBasicBlockIdentityShortcutGradients(t *testing.T) {
	rng := tensor.NewRNG(15)
	blk := NewBasicBlock("block_id", 4, 4, 1, rng)
	if blk.DownConv != nil {
		t.Fatal("identity block should not have a downsample path")
	}
	x := tensor.RandNormal(rng, 0, 1, 1, 4, 6, 6)
	checkLayerGradients(t, blk, x, rng, 8, 5e-3)
}

func TestBottleneckShapesAndGradients(t *testing.T) {
	rng := tensor.NewRNG(16)
	blk := NewBottleneck("bneck", 8, 2, 2, rng)
	x := tensor.RandNormal(rng, 0, 1, 1, 8, 8, 8)
	out := blk.Forward(x, true)
	if out.Dim(1) != 2*BottleneckExpansion {
		t.Fatalf("Bottleneck output channels %d, want %d", out.Dim(1), 2*BottleneckExpansion)
	}
	if out.Dim(2) != 4 {
		t.Fatalf("Bottleneck stride-2 spatial size %d, want 4", out.Dim(2))
	}
	checkLayerGradients(t, blk, x, rng, 6, 5e-3)
}

func TestSequentialComposition(t *testing.T) {
	rng := tensor.NewRNG(17)
	seq := NewSequential("mlp",
		NewLinear("fc1", 10, 16, true, rng),
		NewReLU("relu1"),
		NewLinear("fc2", 16, 4, true, rng),
	)
	x := tensor.RandNormal(rng, 0, 1, 3, 10)
	out := seq.Forward(x, true)
	if out.Dim(0) != 3 || out.Dim(1) != 4 {
		t.Fatalf("Sequential output shape wrong: %v", out.Shape())
	}
	if got := seq.OutputShape([]int{3, 10}); got[1] != 4 {
		t.Fatalf("Sequential OutputShape wrong: %v", got)
	}
	if len(seq.Params()) != 4 {
		t.Fatalf("Sequential should expose 4 params, got %d", len(seq.Params()))
	}
	if seq.Len() != 3 || seq.At(1).Name() != "relu1" {
		t.Fatal("Sequential Len/At wrong")
	}
	checkLayerGradients(t, seq, x, rng, 10, 1e-4)
}

func TestCountParamsAndZeroGrads(t *testing.T) {
	rng := tensor.NewRNG(18)
	l := NewLinear("fc", 3, 2, true, rng)
	layers := []Layer{l, NewReLU("r")}
	if CountParams(layers) != 3*2+2 {
		t.Fatalf("CountParams = %d, want 8", CountParams(layers))
	}
	l.W.Grad.Fill(5)
	ZeroGrads(layers)
	if l.W.Grad.Sum() != 0 {
		t.Fatal("ZeroGrads did not clear gradients")
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := tensor.NewRNG(19)
	conv := NewConv2D("c", 3, 64, 7, 2, 3, false, rng)
	st := conv.Stats([]int{1, 3, 224, 224})
	if st.ParamCount != 64*3*7*7 {
		t.Fatalf("conv param count %d, want %d", st.ParamCount, 64*3*7*7)
	}
	if st.OutputElems != 64*112*112 {
		t.Fatalf("conv output elems %d, want %d", st.OutputElems, 64*112*112)
	}
	lin := NewLinear("fc", 512, 1000, true, rng)
	ls := lin.Stats([]int{8, 512})
	if ls.ParamCount != 512*1000+1000 {
		t.Fatalf("linear param count %d", ls.ParamCount)
	}
	if ls.ActivationElems != 8*512 {
		t.Fatalf("linear activation elems %d", ls.ActivationElems)
	}
	// Sequential Stats aggregates.
	seq := NewSequential("net", conv, NewReLU("r"))
	ss := seq.Stats([]int{1, 3, 224, 224})
	if ss.ParamCount != st.ParamCount {
		t.Fatalf("sequential param count %d, want %d", ss.ParamCount, st.ParamCount)
	}
	if ss.ActivationElems <= st.ActivationElems {
		t.Fatal("sequential activations should include the ReLU contribution")
	}
}

func TestBatchSizeScalingOfStats(t *testing.T) {
	rng := tensor.NewRNG(20)
	conv := NewConv2D("c", 3, 16, 3, 1, 1, false, rng)
	s1 := conv.Stats([]int{1, 3, 32, 32})
	s4 := conv.Stats([]int{4, 3, 32, 32})
	if s4.ActivationElems != 4*s1.ActivationElems {
		t.Fatalf("activation elements should scale linearly with batch: %d vs 4*%d", s4.ActivationElems, s1.ActivationElems)
	}
	if s4.ParamCount != s1.ParamCount {
		t.Fatal("parameter count must not depend on batch size")
	}
}

// Property: ReLU output is always non-negative and idempotent.
func TestReLUIdempotentProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRNG(uint64(seed))
		x := tensor.RandNormal(rng, 0, 5, 2, 8)
		r := NewReLU("r")
		once := r.Forward(x, true)
		lo, _ := once.Min()
		if lo < 0 {
			return false
		}
		twice := r.Forward(once, true)
		return tensor.AllClose(once, twice, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the softmax cross-entropy loss of any logits is at least the loss
// achieved by the true posterior, and is always non-negative.
func TestCrossEntropyNonNegativeProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRNG(uint64(seed))
		n, c := 1+rng.Intn(5), 2+rng.Intn(5)
		logits := tensor.RandNormal(rng, 0, 3, n, c)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(c)
		}
		ce := NewSoftmaxCrossEntropy()
		return ce.Forward(logits, labels) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Linear layer is additive in its input: f(a+b) = f(a)+f(b)-f(0).
func TestLinearAffineProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRNG(uint64(seed))
		l := NewLinear("fc", 5, 3, true, rng)
		a := tensor.RandNormal(rng, 0, 1, 2, 5)
		b := tensor.RandNormal(rng, 0, 1, 2, 5)
		zero := tensor.New(2, 5)
		fa := l.Forward(a, true)
		fb := l.Forward(b, true)
		f0 := l.Forward(zero, true)
		fab := l.Forward(tensor.Add(a, b), true)
		rhs := tensor.Sub(tensor.Add(fa, fb), f0)
		return tensor.AllClose(fab, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
