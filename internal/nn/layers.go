package nn

import (
	"fmt"
	"math"

	"github.com/edgeml/edgetrain/internal/parallel"
	"github.com/edgeml/edgetrain/internal/tensor"
)

// elemGrain is the minimum number of scalar operations a parallel chunk of
// an element-wise kernel should carry; smaller tensors run serially.
const elemGrain = 8192

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	name string
	mask []bool // true where the input was positive, used by backward
}

// NewReLU creates a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := x.Clone()
	if cap(r.mask) < x.Size() {
		r.mask = make([]bool, x.Size())
	}
	r.mask = r.mask[:x.Size()]
	d := out.Data()
	parallel.For(len(d), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if d[i] > 0 {
				r.mask[i] = true
			} else {
				r.mask[i] = false
				d[i] = 0
			}
		}
	})
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(r.mask) != gradOut.Size() {
		panic("nn: ReLU.Backward called before Forward or with mismatched size")
	}
	gradIn := gradOut.Clone()
	d := gradIn.Data()
	parallel.For(len(d), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !r.mask[i] {
				d[i] = 0
			}
		}
	})
	return gradIn
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutputShape implements Layer.
func (r *ReLU) OutputShape(in []int) []int { return append([]int(nil), in...) }

// Stats implements StatsProvider.
func (r *ReLU) Stats(in []int) Stats {
	n := prod(in)
	return Stats{ActivationElems: n, OutputElems: n, ForwardFLOPs: n, BackwardFLOPs: n}
}

// Flatten reshapes (N, ...) into (N, rest).
type Flatten struct {
	name    string
	inShape []int
}

// NewFlatten creates a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	f.inShape = x.AppendShape(f.inShape)
	n := x.Dim(0)
	return x.Clone().Reshape(n, -1)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.Clone().Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutputShape implements Layer.
func (f *Flatten) OutputShape(in []int) []int {
	rest := 1
	for _, d := range in[1:] {
		rest *= d
	}
	return []int{in[0], rest}
}

// Stats implements StatsProvider.
func (f *Flatten) Stats(in []int) Stats {
	n := prod(in)
	return Stats{OutputElems: n}
}

// Linear is a fully connected layer: y = x W^T + b with x of shape (N, in).
type Linear struct {
	name    string
	In, Out int
	W, B    *Param
	hasBias bool
	lastIn  *tensor.Tensor
	dwBuf   *tensor.Tensor // reusable weight-gradient workspace
	dbBuf   []float64      // reusable bias-gradient workspace
}

// NewLinear creates a fully connected layer with Kaiming-initialised weights.
func NewLinear(name string, in, out int, bias bool, rng *tensor.RNG) *Linear {
	l := &Linear{name: name, In: in, Out: out, hasBias: bias}
	l.W = NewParam(name+".weight", tensor.KaimingLinear(rng, out, in))
	if bias {
		l.B = NewParam(name+".bias", tensor.New(out))
	}
	return l
}

// Name implements Layer.
func (l *Linear) Name() string { return l.name }

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	mustRank(x, 2, "Linear")
	if x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear %s expects %d features, got %d", l.name, l.In, x.Dim(1)))
	}
	l.lastIn = x
	out := tensor.MatMulNT(x, l.W.Value) // (N, out), transpose-free
	if l.hasBias {
		n := out.Dim(0)
		od, bd := out.Data(), l.B.Value.Data()
		for i := 0; i < n; i++ {
			row := od[i*l.Out : (i+1)*l.Out]
			for j := range row {
				row[j] += bd[j]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.lastIn == nil {
		panic("nn: Linear.Backward called before Forward")
	}
	// dW += gradOut^T x ; dB += column sums of gradOut ; dX = gradOut W
	l.dwBuf = tensor.EnsureLike(l.dwBuf, l.W.Value)
	tensor.MatMulTNInto(l.dwBuf, gradOut, l.lastIn)
	l.W.Grad.AddInPlace(l.dwBuf)
	if l.hasBias {
		// Column sums land in a scratch first so the whole-batch contribution
		// reaches B.Grad as a single element-wise addition (the accumulation
		// contract on Layer), not one addition per sample.
		n := gradOut.Dim(0)
		if cap(l.dbBuf) < l.Out {
			l.dbBuf = make([]float64, l.Out)
		}
		db := l.dbBuf[:l.Out]
		for j := range db {
			db[j] = 0
		}
		gd, bg := gradOut.Data(), l.B.Grad.Data()
		for i := 0; i < n; i++ {
			row := gd[i*l.Out : (i+1)*l.Out]
			for j := range row {
				db[j] += row[j]
			}
		}
		for j := range db {
			bg[j] += db[j]
		}
	}
	return tensor.MatMul(gradOut, l.W.Value)
}

// Params implements Layer.
func (l *Linear) Params() []*Param {
	if l.hasBias {
		return []*Param{l.W, l.B}
	}
	return []*Param{l.W}
}

// OutputShape implements Layer.
func (l *Linear) OutputShape(in []int) []int { return []int{in[0], l.Out} }

// Stats implements StatsProvider.
func (l *Linear) Stats(in []int) Stats {
	n := int64(in[0])
	params := l.In * l.Out
	if l.hasBias {
		params += l.Out
	}
	return Stats{
		ParamCount:      params,
		ActivationElems: n * int64(l.In),
		OutputElems:     n * int64(l.Out),
		ForwardFLOPs:    2 * n * int64(l.In) * int64(l.Out),
		BackwardFLOPs:   4 * n * int64(l.In) * int64(l.Out),
	}
}

// SoftmaxCrossEntropy is a fused softmax + cross-entropy loss over class
// logits. It is not a Layer (its forward takes labels); the trainer uses it
// as the loss head.
type SoftmaxCrossEntropy struct {
	probs  *tensor.Tensor
	labels []int
}

// NewSoftmaxCrossEntropy creates the loss head.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy { return &SoftmaxCrossEntropy{} }

// Forward computes the mean cross-entropy loss of logits (N, C) against the
// integer labels and caches the softmax probabilities for Backward.
func (s *SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) float64 {
	mustRank(logits, 2, "SoftmaxCrossEntropy")
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for %d rows", len(labels), n))
	}
	s.probs = tensor.New(n, c)
	s.labels = append([]int(nil), labels...)
	loss := 0.0
	for i := 0; i < n; i++ {
		// Numerically stable softmax.
		maxV := logits.At(i, 0)
		for j := 1; j < c; j++ {
			if v := logits.At(i, j); v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for j := 0; j < c; j++ {
			e := math.Exp(logits.At(i, j) - maxV)
			s.probs.Set(e, i, j)
			sum += e
		}
		for j := 0; j < c; j++ {
			s.probs.Set(s.probs.At(i, j)/sum, i, j)
		}
		p := s.probs.At(i, labels[i])
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
	}
	return loss / float64(n)
}

// Backward returns dLoss/dLogits for the last Forward call.
func (s *SoftmaxCrossEntropy) Backward() *tensor.Tensor {
	if s.probs == nil {
		panic("nn: SoftmaxCrossEntropy.Backward called before Forward")
	}
	n, c := s.probs.Dim(0), s.probs.Dim(1)
	grad := s.probs.Clone()
	inv := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		grad.Set(grad.At(i, s.labels[i])-1, i, s.labels[i])
		for j := 0; j < c; j++ {
			grad.Set(grad.At(i, j)*inv, i, j)
		}
	}
	return grad
}

// Probabilities returns the cached softmax probabilities from the last Forward.
func (s *SoftmaxCrossEntropy) Probabilities() *tensor.Tensor { return s.probs }

// Accuracy computes the fraction of rows of logits whose argmax equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	preds := tensor.ArgmaxRows(logits)
	if len(preds) == 0 {
		return 0
	}
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds))
}
