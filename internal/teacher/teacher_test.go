package teacher

import (
	"testing"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/vision"
)

func TestNewClassifierShapes(t *testing.T) {
	net := NewClassifier("t", 16, 4, 1)
	rng := tensor.NewRNG(2)
	x := tensor.RandNormal(rng, 0, 1, 3, 1, 16, 16)
	out := net.Forward(x, true)
	if out.Dim(0) != 3 || out.Dim(1) != 4 {
		t.Fatalf("classifier output shape %v", out.Shape())
	}
}

func TestClassifyReturnsValidPrediction(t *testing.T) {
	net := NewClassifier("t", 16, 4, 3)
	c := chain.FromSequential(net)
	rng := tensor.NewRNG(4)
	frame := vision.Sample(rng, vision.Disk, 0, 16)
	p := Classify(c, frame)
	if p.Class < 0 || p.Class >= 4 {
		t.Fatalf("invalid class %d", p.Class)
	}
	if p.Confidence <= 0 || p.Confidence > 1 {
		t.Fatalf("invalid confidence %v", p.Confidence)
	}
}

// TestStudentTeacherPipeline is the E11 reproduction: the teacher degrades on
// the node's viewpoint and the in-situ trained student recovers most of the
// lost accuracy without any data leaving the node.
func TestStudentTeacherPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline training is too slow for -short")
	}
	cfg := DefaultConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pipeline: %s", res)
	if res.TeacherCanonicalAccuracy < 0.8 {
		t.Errorf("teacher should master its own viewpoint, got %.2f", res.TeacherCanonicalAccuracy)
	}
	if res.TeacherNodeAccuracy > res.TeacherCanonicalAccuracy-0.1 {
		t.Errorf("the viewpoint problem should cost the teacher accuracy: canonical %.2f vs node %.2f",
			res.TeacherCanonicalAccuracy, res.TeacherNodeAccuracy)
	}
	if res.StudentNodeAccuracy < res.TeacherNodeAccuracy+0.1 {
		t.Errorf("the student should beat the teacher on the node viewpoint: student %.2f vs teacher %.2f",
			res.StudentNodeAccuracy, res.TeacherNodeAccuracy)
	}
	if res.HarvestedImages == 0 || res.TracksHarvested == 0 {
		t.Error("the pipeline harvested no in-situ training data")
	}
	if res.LabelAccuracy < 0.7 {
		t.Errorf("auto-labels should be mostly correct, got %.2f", res.LabelAccuracy)
	}
}

// TestPipelineWithCheckpointing runs the student training under a Revolve
// policy and checks it still works end to end with a reduced number of
// retained states.
func TestPipelineWithCheckpointing(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline training is too slow for -short")
	}
	cfg := DefaultConfig()
	cfg.Tracks = 16
	cfg.TeacherSamples = 160
	cfg.EvalSamples = 80
	cfg.StudentEpochs = 2
	cfg.Policy = chain.Policy{Kind: "revolve", Slots: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The classifier chain has 10 stages; the plain executor would retain 11
	// states, Revolve with 3 slots at most 4 plus the input.
	if res.StudentPeakStates == 0 || res.StudentPeakStates > 5 {
		t.Errorf("checkpointed student training retained %d states, expected at most 5", res.StudentPeakStates)
	}
}

func TestConfigNormalization(t *testing.T) {
	cfg := Config{}.normalized()
	def := DefaultConfig()
	if cfg.ImageSize != def.ImageSize || cfg.Tracks != def.Tracks || cfg.Seed != def.Seed {
		t.Fatalf("zero config not normalised: %+v", cfg)
	}
}
