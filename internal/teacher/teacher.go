// Package teacher implements the in-situ student-teacher training pipeline of
// Section III: a generic "teacher" classifier trained at the canonical
// viewpoint, an object tracker that propagates the teacher's confident
// detections backwards through a frame sequence to auto-label an in-situ
// dataset, and a per-node "student" trained on that dataset so that it
// specialises to the node's own viewpoint.
package teacher

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/internal/vision"
)

// Config controls the end-to-end pipeline.
type Config struct {
	ImageSize  int
	NumClasses int

	// NodeViewpoint is the camera skew of the Edge node (0 = the viewpoint
	// the teacher was trained at, 1 = extreme skew).
	NodeViewpoint float64

	// Teacher training.
	TeacherSamples int
	TeacherEpochs  int

	// In-situ harvesting.
	Tracks              int
	FramesPerTrack      int
	ConfidenceThreshold float64

	// Student training.
	StudentEpochs int
	BatchSize     int
	LearningRate  float64
	// Policy is the checkpointing policy used for the student's backward
	// pass on the memory-constrained node.
	Policy chain.Policy

	// Evaluation.
	EvalSamples int

	Seed uint64
}

// DefaultConfig returns a pipeline configuration that runs in a few seconds
// while exhibiting the viewpoint effect clearly.
func DefaultConfig() Config {
	return Config{
		ImageSize:           16,
		NumClasses:          vision.NumClasses,
		NodeViewpoint:       0.85,
		TeacherSamples:      240,
		TeacherEpochs:       4,
		Tracks:              40,
		FramesPerTrack:      12,
		ConfidenceThreshold: 0.6,
		StudentEpochs:       6,
		BatchSize:           16,
		LearningRate:        0.01,
		EvalSamples:         160,
		Seed:                7,
	}
}

func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.ImageSize <= 0 {
		c.ImageSize = d.ImageSize
	}
	if c.NumClasses <= 0 {
		c.NumClasses = d.NumClasses
	}
	if c.TeacherSamples <= 0 {
		c.TeacherSamples = d.TeacherSamples
	}
	if c.TeacherEpochs <= 0 {
		c.TeacherEpochs = d.TeacherEpochs
	}
	if c.Tracks <= 0 {
		c.Tracks = d.Tracks
	}
	if c.FramesPerTrack <= 0 {
		c.FramesPerTrack = d.FramesPerTrack
	}
	if c.ConfidenceThreshold <= 0 {
		c.ConfidenceThreshold = d.ConfidenceThreshold
	}
	if c.StudentEpochs <= 0 {
		c.StudentEpochs = d.StudentEpochs
	}
	if c.BatchSize <= 0 {
		c.BatchSize = d.BatchSize
	}
	if c.LearningRate <= 0 {
		c.LearningRate = d.LearningRate
	}
	if c.EvalSamples <= 0 {
		c.EvalSamples = d.EvalSamples
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// NewClassifier builds the small convolutional classifier used for both the
// teacher and the student: two conv/pool stages followed by a two-layer head.
func NewClassifier(name string, imageSize, numClasses int, seed uint64) *nn.Sequential {
	rng := tensor.NewRNG(seed)
	pooled := imageSize / 4
	return nn.NewSequential(name,
		nn.NewConv2D(name+".conv1", 1, 8, 3, 1, 1, true, rng),
		nn.NewReLU(name+".relu1"),
		nn.NewMaxPool2D(name+".pool1", 2, 2),
		nn.NewConv2D(name+".conv2", 8, 16, 3, 1, 1, true, rng),
		nn.NewReLU(name+".relu2"),
		nn.NewMaxPool2D(name+".pool2", 2, 2),
		nn.NewFlatten(name+".flatten"),
		nn.NewLinear(name+".fc1", 16*pooled*pooled, 32, true, rng),
		nn.NewReLU(name+".relu3"),
		nn.NewLinear(name+".fc2", 32, numClasses, true, rng),
	)
}

// setToDataset converts a labelled set into a trainer dataset.
func setToDataset(s *vision.LabelledSet) trainer.Dataset {
	samples := make([]trainer.Batch, 0, s.Len())
	for i := range s.Images {
		samples = append(samples, trainer.Batch{Images: s.Images[i], Labels: []int{s.Labels[i]}})
	}
	return trainer.NewSliceDataset(samples)
}

// trainOn runs supervised training of a classifier on a labelled set.
func trainOn(net *nn.Sequential, set *vision.LabelledSet, epochs, batch int, lr float64, policy chain.Policy) (*chain.Chain, error) {
	c := chain.FromSequential(net)
	tr, err := trainer.New(c, trainer.Config{
		Epochs:    epochs,
		BatchSize: batch,
		Optimizer: trainer.NewAdam(lr),
		Policy:    policy,
	})
	if err != nil {
		return nil, err
	}
	if _, err := tr.Train(setToDataset(set)); err != nil {
		return nil, err
	}
	return c, nil
}

// evaluate returns the accuracy of a classifier on a labelled set.
func evaluate(c *chain.Chain, set *vision.LabelledSet, batch int) (float64, error) {
	_, acc, err := trainer.Evaluate(c, setToDataset(set), batch)
	return acc, err
}

// Prediction is the teacher's verdict on one frame.
type Prediction struct {
	Class      int
	Confidence float64
}

// Classify runs a trained classifier on a single frame in inference mode and
// returns the predicted class and its softmax confidence.
func Classify(c *chain.Chain, frame *tensor.Tensor) Prediction {
	seq := nn.NewSequential("infer", c.Stages...)
	logits := seq.Forward(frame, false)
	ce := nn.NewSoftmaxCrossEntropy()
	ce.Forward(logits, make([]int, logits.Dim(0)))
	probs := ce.Probabilities()
	best, arg := probs.Max()
	_ = arg
	preds := tensor.ArgmaxRows(probs)
	return Prediction{Class: preds[0], Confidence: best}
}

// Result summarises one end-to-end pipeline run.
type Result struct {
	TeacherCanonicalAccuracy float64 // teacher on its own training viewpoint
	TeacherNodeAccuracy      float64 // teacher on the node's viewpoint (the problem)
	StudentNodeAccuracy      float64 // student on the node's viewpoint (the fix)

	TracksHarvested    int // tracks the tracker accepted and the teacher labelled confidently
	TracksRejected     int
	HarvestedImages    int
	LabelAccuracy      float64 // fraction of auto-labels that are actually correct
	StudentPeakStates  int     // peak retained states during student training (checkpointing)
	StudentPeakBytes   int64
	StudentForwardEval int
}

// Run executes the complete student-teacher pipeline.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	rng := tensor.NewRNG(cfg.Seed)
	res := &Result{}

	// 1. Train the teacher at the canonical viewpoint (what a generic model
	//    shipped to every node would have seen).
	teacherTrain := vision.Dataset(rng, cfg.TeacherSamples, 0.05, cfg.ImageSize)
	teacherNet := NewClassifier("teacher", cfg.ImageSize, cfg.NumClasses, cfg.Seed+1)
	teacherChain, err := trainOn(teacherNet, teacherTrain, cfg.TeacherEpochs, cfg.BatchSize, cfg.LearningRate, chain.Policy{})
	if err != nil {
		return nil, fmt.Errorf("teacher training: %w", err)
	}

	// 2. Evaluate the teacher on the canonical and node viewpoints.
	canonicalTest := vision.Dataset(rng, cfg.EvalSamples, 0.05, cfg.ImageSize)
	nodeTest := vision.Dataset(rng, cfg.EvalSamples, cfg.NodeViewpoint, cfg.ImageSize)
	if res.TeacherCanonicalAccuracy, err = evaluate(teacherChain, canonicalTest, cfg.BatchSize); err != nil {
		return nil, err
	}
	if res.TeacherNodeAccuracy, err = evaluate(teacherChain, nodeTest, cfg.BatchSize); err != nil {
		return nil, err
	}

	// 3. Harvest an in-situ dataset: for every tracked subject, classify the
	//    final (nearly canonical) frame with the teacher and, if the track is
	//    consistent and the teacher is confident, propagate the label to all
	//    earlier (skewed) frames.
	student := &vision.LabelledSet{}
	correctLabels := 0
	for i := 0; i < cfg.Tracks; i++ {
		class := vision.Class(i % cfg.NumClasses)
		track := vision.GenerateTrack(rng, class, cfg.NodeViewpoint, cfg.FramesPerTrack, cfg.ImageSize)
		tracked := vision.TrackObject(track, vision.DefaultTrackerConfig)
		if !tracked.Consistent {
			res.TracksRejected++
			continue
		}
		last := track.Frames[len(track.Frames)-1]
		pred := Classify(teacherChain, last)
		if pred.Confidence < cfg.ConfidenceThreshold {
			res.TracksRejected++
			continue
		}
		res.TracksHarvested++
		if pred.Class == int(class) {
			correctLabels++
		}
		for _, f := range track.Frames {
			student.Append(f, pred.Class)
		}
	}
	res.HarvestedImages = student.Len()
	if res.TracksHarvested > 0 {
		res.LabelAccuracy = float64(correctLabels) / float64(res.TracksHarvested)
	}
	if student.Len() == 0 {
		return res, fmt.Errorf("teacher: no tracks harvested; the teacher never recognised a subject")
	}

	// 4. Train the student on the harvested set under the node's
	//    checkpointing policy (the memory-constrained backward pass).
	studentNet := NewClassifier("student", cfg.ImageSize, cfg.NumClasses, cfg.Seed+2)
	studentChain := chain.FromSequential(studentNet)
	tr, err := trainer.New(studentChain, trainer.Config{
		Epochs:    cfg.StudentEpochs,
		BatchSize: cfg.BatchSize,
		Optimizer: trainer.NewAdam(cfg.LearningRate),
		Policy:    cfg.Policy,
	})
	if err != nil {
		return nil, err
	}
	stats, err := tr.Train(setToDataset(student))
	if err != nil {
		return nil, fmt.Errorf("student training: %w", err)
	}
	for _, st := range stats {
		if st.PeakStates > res.StudentPeakStates {
			res.StudentPeakStates = st.PeakStates
		}
		if st.PeakBytes > res.StudentPeakBytes {
			res.StudentPeakBytes = st.PeakBytes
		}
		res.StudentForwardEval += st.ForwardEvals
	}

	// 5. Evaluate the student on the node viewpoint.
	if res.StudentNodeAccuracy, err = evaluate(studentChain, nodeTest, cfg.BatchSize); err != nil {
		return nil, err
	}
	return res, nil
}

// String summarises the pipeline result.
func (r *Result) String() string {
	return fmt.Sprintf(
		"teacher: canonical %.1f%%, node %.1f%% | student: node %.1f%% | harvested %d images from %d tracks (label accuracy %.1f%%)",
		100*r.TeacherCanonicalAccuracy, 100*r.TeacherNodeAccuracy, 100*r.StudentNodeAccuracy,
		r.HarvestedImages, r.TracksHarvested, 100*r.LabelAccuracy)
}
