package trainer

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
)

func TestConstantLR(t *testing.T) {
	s := ConstantLR{Value: 0.1}
	if s.LR(0) != 0.1 || s.LR(1000) != 0.1 {
		t.Fatal("constant schedule should not vary")
	}
	if s.Name() != "constant" {
		t.Fatal("name wrong")
	}
}

func TestStepDecayLR(t *testing.T) {
	s := StepDecayLR{Base: 1.0, Factor: 0.5, Every: 10}
	if s.LR(0) != 1.0 || s.LR(9) != 1.0 {
		t.Fatal("no decay before the first boundary")
	}
	if s.LR(10) != 0.5 || s.LR(25) != 0.25 {
		t.Fatalf("decay wrong: %v %v", s.LR(10), s.LR(25))
	}
	if (StepDecayLR{Base: 0.3, Factor: 0.1, Every: 0}).LR(100) != 0.3 {
		t.Fatal("Every=0 should disable decay")
	}
}

func TestCosineLR(t *testing.T) {
	s := CosineLR{Base: 1.0, Min: 0.1, Horizon: 100}
	if math.Abs(s.LR(0)-1.0) > 1e-12 {
		t.Fatalf("cosine should start at the base rate, got %v", s.LR(0))
	}
	mid := s.LR(50)
	if math.Abs(mid-0.55) > 1e-9 {
		t.Fatalf("cosine midpoint %v, want 0.55", mid)
	}
	if s.LR(100) != 0.1 || s.LR(500) != 0.1 {
		t.Fatal("cosine should clamp to Min after the horizon")
	}
	// Monotone non-increasing over the horizon.
	prev := s.LR(0)
	for i := 1; i <= 100; i++ {
		cur := s.LR(i)
		if cur > prev+1e-12 {
			t.Fatalf("cosine increased at step %d", i)
		}
		prev = cur
	}
}

func TestWarmupLR(t *testing.T) {
	s := WarmupLR{Inner: ConstantLR{Value: 1.0}, WarmupSteps: 4}
	want := []float64{0.25, 0.5, 0.75, 1.0, 1.0}
	for i, w := range want {
		if math.Abs(s.LR(i)-w) > 1e-12 {
			t.Fatalf("warmup LR(%d) = %v, want %v", i, s.LR(i), w)
		}
	}
	if s.Name() != "warmup+constant" {
		t.Fatalf("name wrong: %s", s.Name())
	}
}

func TestScheduledOptimizerAppliesSchedule(t *testing.T) {
	sgd := NewSGD(123) // inner LR will be overwritten by the schedule
	sched := NewScheduledOptimizer(sgd, StepDecayLR{Base: 1.0, Factor: 0.1, Every: 1})
	p := nn.NewParam("w", tensor.New(1))
	// Gradient of 1 at every step: the updates should be -1, -0.1, -0.01.
	expect := []float64{-1, -1.1, -1.11}
	for step := 0; step < 3; step++ {
		p.Grad.Fill(1)
		if sched.CurrentLR() <= 0 {
			t.Fatal("CurrentLR should be positive")
		}
		sched.Step([]*nn.Param{p})
		if math.Abs(p.Value.At(0)-expect[step]) > 1e-12 {
			t.Fatalf("after step %d value = %v, want %v", step, p.Value.At(0), expect[step])
		}
	}
	if sched.Name() != "sgd+step-decay" {
		t.Fatalf("name wrong: %s", sched.Name())
	}
	if sched.StateBytesPerParam() != 0 {
		t.Fatal("state bytes should delegate to the inner optimiser")
	}
}

func TestScheduledOptimizerWithAdamAndMomentum(t *testing.T) {
	for _, inner := range []Optimizer{NewAdam(0.5), NewMomentum(0.5, 0.9)} {
		sched := NewScheduledOptimizer(inner, ConstantLR{Value: 0.01})
		p := nn.NewParam("w", tensor.Full(1, 2))
		p.Grad.Fill(1)
		sched.Step([]*nn.Param{p})
		if p.Value.At(0) >= 1 {
			t.Fatalf("%s did not update the parameter", sched.Name())
		}
	}
}

// Property: warm-up never exceeds the inner schedule and cosine never leaves
// the [Min, Base] interval.
func TestScheduleBoundsProperty(t *testing.T) {
	f := func(stepRaw uint16) bool {
		step := int(stepRaw % 2000)
		w := WarmupLR{Inner: CosineLR{Base: 1, Min: 0.05, Horizon: 1000}, WarmupSteps: 50}
		inner := w.Inner.LR(step)
		v := w.LR(step)
		if v > inner+1e-12 {
			return false
		}
		return inner >= 0.05-1e-12 && inner <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
