package trainer

import (
	"fmt"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/internal/nn"
)

// Optimizer state capture for checkpoint/resume. The in-memory optimisers
// key their state by *nn.Param identity, which does not survive a process
// restart, so the durable form (ckpt.OptimizerState) is keyed by parameter
// name instead. Capture and restore iterate the parameter list in order,
// making the serialized slot order deterministic.

// StatefulOptimizer is an Optimizer whose internal state must survive
// checkpoint and resume (momentum velocities, Adam moments and step count).
// SGD carries no state and does not implement it.
type StatefulOptimizer interface {
	Optimizer
	// CaptureState snapshots the optimizer state for the given parameters as
	// owned copies. Parameters the optimizer has not touched yet contribute
	// no slots (their state is implicitly zero).
	CaptureState(params []*nn.Param) (ckpt.OptimizerState, error)
	// RestoreState replaces the optimizer's state for the given parameters
	// with a captured snapshot.
	RestoreState(params []*nn.Param, st ckpt.OptimizerState) error
}

// CaptureOptimizerState snapshots any optimizer's durable state: stateful
// optimisers serialize their vectors, stateless ones just their name.
func CaptureOptimizerState(opt Optimizer, params []*nn.Param) (ckpt.OptimizerState, error) {
	if so, ok := opt.(StatefulOptimizer); ok {
		return so.CaptureState(params)
	}
	return ckpt.OptimizerState{Name: opt.Name()}, nil
}

// RestoreOptimizerState restores a captured snapshot into an optimizer,
// verifying the optimizer kind matches — resuming Adam state into SGD would
// silently train a different trajectory.
func RestoreOptimizerState(opt Optimizer, params []*nn.Param, st ckpt.OptimizerState) error {
	if st.Name != opt.Name() {
		return fmt.Errorf("trainer: checkpoint has %q optimizer state but the run uses %q", st.Name, opt.Name())
	}
	if so, ok := opt.(StatefulOptimizer); ok {
		return so.RestoreState(params, st)
	}
	if len(st.Slots) > 0 || st.Step != 0 {
		return fmt.Errorf("trainer: checkpoint carries state for the stateless %q optimizer", opt.Name())
	}
	return nil
}

// captureSlots serializes one named state vector per tracked parameter, in
// parameter order. Parameter names must be unique (the same invariant
// nn.SaveParams enforces).
func captureSlots(params []*nn.Param, slot string, vecs map[*nn.Param][]float64) ([]ckpt.OptSlot, error) {
	var out []ckpt.OptSlot
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return nil, fmt.Errorf("trainer: duplicate parameter name %q while capturing optimizer state", p.Name)
		}
		seen[p.Name] = true
		v, ok := vecs[p]
		if !ok {
			continue
		}
		out = append(out, ckpt.OptSlot{Param: p.Name, Slot: slot, Data: append([]float64(nil), v...)})
	}
	return out, nil
}

// restoreSlots rebuilds the per-parameter vector map from serialized slots
// of the given slot name.
func restoreSlots(params []*nn.Param, slot string, slots []ckpt.OptSlot) (map[*nn.Param][]float64, error) {
	byName := make(map[string]*nn.Param, len(params))
	for _, p := range params {
		byName[p.Name] = p
	}
	vecs := make(map[*nn.Param][]float64)
	for _, s := range slots {
		if s.Slot != slot {
			continue
		}
		p, ok := byName[s.Param]
		if !ok {
			return nil, fmt.Errorf("trainer: checkpoint has %s state for unknown parameter %q", slot, s.Param)
		}
		if len(s.Data) != p.Count() {
			return nil, fmt.Errorf("trainer: %s state for %q has %d elements, parameter has %d",
				slot, s.Param, len(s.Data), p.Count())
		}
		vecs[p] = append([]float64(nil), s.Data...)
	}
	return vecs, nil
}

// CaptureState implements StatefulOptimizer.
func (m *Momentum) CaptureState(params []*nn.Param) (ckpt.OptimizerState, error) {
	slots, err := captureSlots(params, "velocity", m.velocity)
	if err != nil {
		return ckpt.OptimizerState{}, err
	}
	return ckpt.OptimizerState{Name: m.Name(), Slots: slots}, nil
}

// RestoreState implements StatefulOptimizer.
func (m *Momentum) RestoreState(params []*nn.Param, st ckpt.OptimizerState) error {
	vecs, err := restoreSlots(params, "velocity", st.Slots)
	if err != nil {
		return err
	}
	m.velocity = vecs
	return nil
}

// CaptureState implements StatefulOptimizer.
func (a *Adam) CaptureState(params []*nn.Param) (ckpt.OptimizerState, error) {
	mSlots, err := captureSlots(params, "m", a.m)
	if err != nil {
		return ckpt.OptimizerState{}, err
	}
	vSlots, err := captureSlots(params, "v", a.v)
	if err != nil {
		return ckpt.OptimizerState{}, err
	}
	return ckpt.OptimizerState{Name: a.Name(), Step: int64(a.step), Slots: append(mSlots, vSlots...)}, nil
}

// RestoreState implements StatefulOptimizer.
func (a *Adam) RestoreState(params []*nn.Param, st ckpt.OptimizerState) error {
	mVecs, err := restoreSlots(params, "m", st.Slots)
	if err != nil {
		return err
	}
	vVecs, err := restoreSlots(params, "v", st.Slots)
	if err != nil {
		return err
	}
	a.m, a.v = mVecs, vVecs
	a.step = int(st.Step)
	return nil
}
