package trainer

import (
	"math"

	"github.com/edgeml/edgetrain/internal/nn"
)

// Learning-rate schedules. Opportunistic edge training proceeds in bursts
// spread over days (the idle scheduler), so runs are long in wall-clock time
// and short in step count; simple, stateless schedules keyed on the step
// index are the right tool.

// LRSchedule maps an optimisation step index (0-based) to a learning rate.
type LRSchedule interface {
	// LR returns the learning rate to use for the given step.
	LR(step int) float64
	// Name returns a short identifier.
	Name() string
}

// ConstantLR always returns the same learning rate.
type ConstantLR struct{ Value float64 }

// LR implements LRSchedule.
func (c ConstantLR) LR(int) float64 { return c.Value }

// Name implements LRSchedule.
func (c ConstantLR) Name() string { return "constant" }

// StepDecayLR multiplies the base rate by Factor every Every steps.
type StepDecayLR struct {
	Base   float64
	Factor float64
	Every  int
}

// LR implements LRSchedule.
func (s StepDecayLR) LR(step int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	drops := step / s.Every
	return s.Base * math.Pow(s.Factor, float64(drops))
}

// Name implements LRSchedule.
func (s StepDecayLR) Name() string { return "step-decay" }

// CosineLR anneals the rate from Base to Min over Horizon steps, then stays
// at Min.
type CosineLR struct {
	Base    float64
	Min     float64
	Horizon int
}

// LR implements LRSchedule.
func (c CosineLR) LR(step int) float64 {
	if c.Horizon <= 0 || step >= c.Horizon {
		return c.Min
	}
	progress := float64(step) / float64(c.Horizon)
	return c.Min + 0.5*(c.Base-c.Min)*(1+math.Cos(math.Pi*progress))
}

// Name implements LRSchedule.
func (c CosineLR) Name() string { return "cosine" }

// WarmupLR wraps another schedule with a linear warm-up over the first
// WarmupSteps steps — useful when a student resumes from a checkpointed
// optimiser state after a long idle gap.
type WarmupLR struct {
	Inner       LRSchedule
	WarmupSteps int
}

// LR implements LRSchedule.
func (w WarmupLR) LR(step int) float64 {
	base := w.Inner.LR(step)
	if w.WarmupSteps <= 0 || step >= w.WarmupSteps {
		return base
	}
	return base * float64(step+1) / float64(w.WarmupSteps)
}

// Name implements LRSchedule.
func (w WarmupLR) Name() string { return "warmup+" + w.Inner.Name() }

// ScheduledOptimizer wraps an optimiser so its learning rate follows a
// schedule. It supports the optimisers defined in this package (SGD, Momentum
// and Adam); wrapping anything else leaves the inner learning rate untouched.
type ScheduledOptimizer struct {
	Opt      Optimizer
	Schedule LRSchedule
	step     int
}

// NewScheduledOptimizer wraps opt with the schedule.
func NewScheduledOptimizer(opt Optimizer, schedule LRSchedule) *ScheduledOptimizer {
	return &ScheduledOptimizer{Opt: opt, Schedule: schedule}
}

// Name implements Optimizer.
func (s *ScheduledOptimizer) Name() string { return s.Opt.Name() + "+" + s.Schedule.Name() }

// StateBytesPerParam implements Optimizer.
func (s *ScheduledOptimizer) StateBytesPerParam() int64 { return s.Opt.StateBytesPerParam() }

// CurrentLR returns the learning rate the next Step call will use.
func (s *ScheduledOptimizer) CurrentLR() float64 { return s.Schedule.LR(s.step) }

// Step implements Optimizer: it sets the wrapped optimiser's learning rate
// from the schedule, applies the update, and advances the step counter.
func (s *ScheduledOptimizer) Step(params []*nn.Param) {
	lr := s.Schedule.LR(s.step)
	switch opt := s.Opt.(type) {
	case *SGD:
		opt.LR = lr
	case *Momentum:
		opt.LR = lr
	case *Adam:
		opt.LR = lr
	}
	s.Opt.Step(params)
	s.step++
}
