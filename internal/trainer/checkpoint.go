package trainer

import (
	"fmt"
	"time"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/obs"
)

// Durable checkpoint/resume for single-node training. A checkpoint captures
// the full training state at an optimisation-step boundary — parameter
// values, batch-norm running statistics, optimizer state and the epoch/batch
// cursor — so a run killed at any instant resumes from its last durable
// checkpoint and finishes with weights bit-identical to an uninterrupted
// run. The one caveat is per-epoch statistics: the resumed epoch's
// EpochStats cover only the batches executed after the resume.

// Cursor locates a step boundary in a training run: the NEXT batch to
// execute. The zero Cursor is the start of training; Epoch == Cfg.Epochs
// marks a completed run.
type Cursor struct {
	Epoch int
	Batch int
}

// CheckpointPlan configures durable checkpointing for TrainFrom.
type CheckpointPlan struct {
	// Dir is the checkpoint directory; required.
	Dir *ckpt.Dir
	// EverySteps saves a checkpoint after every n optimisation steps
	// (counted from the start of this TrainFrom call). Zero saves only the
	// final completion checkpoint.
	EverySteps int
	// Compress selects DEFLATE frames instead of raw ones.
	Compress bool
	// Seed is recorded in the session for provenance (the run's configured
	// random seed); it is not consumed on resume.
	Seed uint64
	// RNG, when non-nil, is a generator whose mid-stream state is captured
	// into every checkpoint (a data-augmentation or dropout generator the
	// run threads through its dataset). Restore it after ResumeFrom with
	// Session.ApplyRNG — Dir.Load exposes the full session. The core
	// training loop itself draws no randomness, so most runs leave it nil.
	RNG *tensor.RNG
}

func (cp *CheckpointPlan) options() []ckpt.Option {
	if cp.Compress {
		return []ckpt.Option{ckpt.WithCompression()}
	}
	return nil
}

// save writes one checkpoint under the plan (stamping the plan's seed and
// RNG state).
func (cp *CheckpointPlan) save(t *Trainer, cur Cursor) error {
	start := time.Now()
	sp := obs.DefaultTracer().Span("checkpoint-save", -1, -1)
	s, err := t.CaptureSession(cur)
	if err != nil {
		return err
	}
	s.Seed = cp.Seed
	if cp.RNG != nil {
		s.RNG = ckpt.CaptureRNG(cp.RNG)
	}
	_, err = cp.Dir.Save(s, cp.options()...)
	if err == nil {
		if reg := obs.Default(); reg != nil {
			reg.Counter("trainer_ckpt_saves_total", "Periodic checkpoints written by TrainFrom.").Inc()
			reg.Histogram("trainer_ckpt_save_seconds", "Latency of one TrainFrom checkpoint save (capture + encode + fsync).", nil).
				Observe(time.Since(start).Seconds())
		}
		sp.EndDetail(fmt.Sprintf("epoch=%d batch=%d", cur.Epoch, cur.Batch))
	}
	return err
}

// CaptureSession assembles the durable training state at the given cursor.
// Parameter and state tensors are cloned, so the caller may keep training
// while the session is encoded.
func (t *Trainer) CaptureSession(cur Cursor) (*ckpt.Session, error) {
	opt, err := CaptureOptimizerState(t.Cfg.Optimizer, t.Chain.Params())
	if err != nil {
		return nil, err
	}
	return &ckpt.Session{
		Kind:           "trainer",
		LibraryVersion: ckpt.LibraryVersion,
		Epoch:          cur.Epoch,
		Step:           cur.Batch,
		BatchSize:      t.Cfg.BatchSize,
		Params:         ckpt.CaptureParams(t.Chain.Params()),
		LayerState:     ckpt.CaptureLayerState(t.Chain.Stages),
		Opt:            opt,
	}, nil
}

// SaveCheckpoint durably writes the training state at the given cursor into
// the directory and returns the checkpoint file name.
func (t *Trainer) SaveCheckpoint(d *ckpt.Dir, cur Cursor, opts ...ckpt.Option) (string, error) {
	s, err := t.CaptureSession(cur)
	if err != nil {
		return "", err
	}
	return d.Save(s, opts...)
}

// ResumeFrom restores the trainer from the directory's newest loadable
// checkpoint — parameters, layer state and optimizer state — and returns the
// cursor to continue from. The trainer's model and optimizer must match the
// checkpointed run (same constructor, same optimizer kind); mismatches fail
// with a descriptive error before any state is partially applied.
func (t *Trainer) ResumeFrom(d *ckpt.Dir) (Cursor, error) {
	s, name, err := d.Load()
	if err != nil {
		return Cursor{}, err
	}
	cur, err := t.RestoreSession(s)
	if err != nil {
		return Cursor{}, fmt.Errorf("trainer: restoring %s: %w", name, err)
	}
	return cur, nil
}

// RestoreSession applies a loaded session to the trainer and returns its
// cursor.
func (t *Trainer) RestoreSession(s *ckpt.Session) (Cursor, error) {
	if s.Kind != "trainer" {
		return Cursor{}, fmt.Errorf("trainer: checkpoint kind is %q, want \"trainer\"", s.Kind)
	}
	if s.Opt.Name != t.Cfg.Optimizer.Name() {
		// Checked before any weights are copied, so a wrong-optimizer resume
		// leaves the trainer untouched.
		return Cursor{}, fmt.Errorf("trainer: checkpoint has %q optimizer state but the run uses %q",
			s.Opt.Name, t.Cfg.Optimizer.Name())
	}
	if s.BatchSize != 0 && s.BatchSize != t.Cfg.BatchSize {
		// The Step cursor counts batches OF THE CHECKPOINTED SIZE; resuming
		// it under a different batch size would silently shift the resume
		// point inside the epoch.
		return Cursor{}, fmt.Errorf("trainer: checkpoint was written with batch size %d, this run uses %d",
			s.BatchSize, t.Cfg.BatchSize)
	}
	params := t.Chain.Params()
	if err := s.ApplyParams(params); err != nil {
		return Cursor{}, err
	}
	if err := s.ApplyLayerState(t.Chain.Stages); err != nil {
		return Cursor{}, err
	}
	if err := RestoreOptimizerState(t.Cfg.Optimizer, params, s.Opt); err != nil {
		return Cursor{}, err
	}
	return Cursor{Epoch: s.Epoch, Batch: s.Step}, nil
}

// TrainFrom runs training from the given cursor to the configured epoch
// count, saving durable checkpoints along the way when cp is non-nil: every
// cp.EverySteps optimisation steps and once at completion. It returns the
// per-epoch statistics of the epochs it executed (the first may cover only
// part of an epoch when resuming mid-epoch).
//
// Train is TrainFrom from the zero cursor with no checkpointing.
func (t *Trainer) TrainFrom(ds Dataset, start Cursor, cp *CheckpointPlan) ([]EpochStats, error) {
	if start.Epoch < 0 || start.Batch < 0 {
		return nil, fmt.Errorf("trainer: negative resume cursor %+v", start)
	}
	if start.Epoch > t.Cfg.Epochs {
		// Writing the completion checkpoint below would rewind the cursor
		// beneath the weights' real progress; a checkpoint trained further
		// than this run's epoch budget must be rejected, not truncated.
		return nil, fmt.Errorf("trainer: resume cursor epoch %d exceeds the configured %d epochs", start.Epoch, t.Cfg.Epochs)
	}
	if cp != nil && cp.Dir == nil {
		return nil, fmt.Errorf("trainer: checkpoint plan without a directory")
	}
	if nb := ds.NumBatches(t.Cfg.BatchSize); start.Batch >= nb && nb > 0 && start.Epoch < t.Cfg.Epochs {
		return nil, fmt.Errorf("trainer: resume cursor batch %d out of range (epoch has %d batches)", start.Batch, nb)
	}

	stepsDone := 0
	var afterStep func(next Cursor) error
	if cp != nil && cp.EverySteps > 0 {
		afterStep = func(next Cursor) error {
			stepsDone++
			if stepsDone%cp.EverySteps != 0 {
				return nil
			}
			if err := cp.save(t, next); err != nil {
				return fmt.Errorf("trainer: checkpointing at %+v: %w", next, err)
			}
			return nil
		}
	}

	var all []EpochStats
	for e := start.Epoch; e < t.Cfg.Epochs; e++ {
		sb := 0
		if e == start.Epoch {
			sb = start.Batch
		}
		st, err := t.trainEpoch(ds, e, sb, afterStep)
		if err != nil {
			return all, err
		}
		all = append(all, st)
	}
	if cp != nil {
		if err := cp.save(t, Cursor{Epoch: t.Cfg.Epochs}); err != nil {
			return all, fmt.Errorf("trainer: writing completion checkpoint: %w", err)
		}
	}
	return all, nil
}
