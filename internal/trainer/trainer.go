package trainer

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/obs"
	"github.com/edgeml/edgetrain/store"
)

// Batch is one minibatch of NCHW images (or (N, features) vectors) and their
// integer class labels.
type Batch struct {
	Images *tensor.Tensor
	Labels []int
}

// Dataset supplies minibatches for training or evaluation.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Batch returns the b-th minibatch of the requested size. Implementations
	// may return a smaller final batch.
	Batch(b, size int) Batch
	// NumBatches returns how many minibatches of the given size cover the set.
	NumBatches(size int) int
}

// SliceDataset is an in-memory Dataset backed by a slice of samples.
type SliceDataset struct {
	Samples []Batch // each with a single image (batch dimension 1)
}

// NewSliceDataset wraps individual samples (each Batch must contain exactly
// one image) into a dataset.
func NewSliceDataset(samples []Batch) *SliceDataset { return &SliceDataset{Samples: samples} }

// Len implements Dataset.
func (d *SliceDataset) Len() int { return len(d.Samples) }

// NumBatches implements Dataset.
func (d *SliceDataset) NumBatches(size int) int {
	if size <= 0 || len(d.Samples) == 0 {
		return 0
	}
	return (len(d.Samples) + size - 1) / size
}

// Batch implements Dataset by concatenating consecutive samples.
func (d *SliceDataset) Batch(b, size int) Batch {
	start := b * size
	end := start + size
	if end > len(d.Samples) {
		end = len(d.Samples)
	}
	if start >= end {
		return Batch{}
	}
	first := d.Samples[start].Images
	shape := first.Shape()
	n := end - start
	outShape := append([]int{n}, shape[1:]...)
	out := tensor.New(outShape...)
	per := first.Size()
	labels := make([]int, 0, n)
	for i := start; i < end; i++ {
		copy(out.Data()[(i-start)*per:(i-start+1)*per], d.Samples[i].Images.Data())
		labels = append(labels, d.Samples[i].Labels...)
	}
	return Batch{Images: out, Labels: labels}
}

// Config controls a training run.
type Config struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	Policy    chain.Policy // checkpointing policy for the backward pass
	// Hook, if non-nil, is called after every optimisation step with the
	// running step index and the minibatch loss.
	Hook func(step int, loss float64)
}

// EpochStats summarises one training epoch.
type EpochStats struct {
	Epoch         int
	Loss          float64 // mean minibatch loss
	Accuracy      float64 // training accuracy over the epoch
	Steps         int
	ForwardEvals  int
	BackwardEvals int
	PeakStates    int
	PeakBytes     int64 // peak RAM-resident state bytes of any step
	// Checkpoint-store spill accounting (zero for pure in-RAM policies).
	PeakDiskBytes int64 // peak flash-resident checkpoint bytes of any step
	DiskWrites    int   // checkpoint spills across the epoch
	DiskReads     int   // checkpoint restores from flash across the epoch
}

// Trainer runs supervised training of a chain with a cross-entropy head.
type Trainer struct {
	Chain *chain.Chain
	Cfg   Config
}

// New creates a Trainer for the given network and configuration.
func New(c *chain.Chain, cfg Config) (*Trainer, error) {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 4
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewSGD(0.05)
	}
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("trainer: empty chain")
	}
	return &Trainer{Chain: c, Cfg: cfg}, nil
}

// TrainEpoch runs one pass over the dataset and returns its statistics.
func (t *Trainer) TrainEpoch(ds Dataset, epoch int) (EpochStats, error) {
	return t.trainEpoch(ds, epoch, 0, nil)
}

// trainEpoch runs one epoch starting at batch startBatch (non-zero when
// resuming mid-epoch from a checkpoint). afterStep, when non-nil, runs after
// every optimisation step with the cursor of the NEXT batch — the hook the
// checkpointing loop saves at, so a resumed run continues exactly where the
// interrupted one left off.
func (t *Trainer) trainEpoch(ds Dataset, epoch, startBatch int, afterStep func(next Cursor) error) (EpochStats, error) {
	stats := EpochStats{Epoch: epoch}
	pol := t.Cfg.Policy
	// Tier-annotating policies spill to disk; give them one shared store for
	// the whole epoch (instead of chain.Step's per-call temporary directory)
	// so every step reuses the same spill location.
	if pol.Store == nil {
		switch pol.Kind {
		case "twolevel", "auto":
			ts, err := store.NewTiered("")
			if err != nil {
				return stats, fmt.Errorf("trainer: creating spill store: %w", err)
			}
			defer ts.Close()
			pol.Store = ts
		}
	}
	// Metric handles resolve once per epoch; the per-step cost is a pair of
	// atomic adds (nil no-ops when observability is off).
	reg := obs.Default()
	obsSteps := reg.Counter("trainer_steps_total", "Optimisation steps completed across all epochs.")
	nb := ds.NumBatches(t.Cfg.BatchSize)
	totalCorrectWeight := 0.0
	totalSamples := 0
	for b := startBatch; b < nb; b++ {
		batch := ds.Batch(b, t.Cfg.BatchSize)
		if batch.Images == nil || len(batch.Labels) == 0 {
			continue
		}
		ce := nn.NewSoftmaxCrossEntropy()
		var loss float64
		lossGrad := func(out *tensor.Tensor) *tensor.Tensor {
			loss = ce.Forward(out, batch.Labels)
			return ce.Backward()
		}
		t.Chain.ZeroGrads()
		res, err := chain.Step(t.Chain, batch.Images, lossGrad, pol, true)
		if err != nil {
			return stats, fmt.Errorf("trainer: step %d failed: %w", b, err)
		}
		t.Cfg.Optimizer.Step(t.Chain.Params())
		obsSteps.Inc()

		stats.Loss += loss
		stats.Steps++
		stats.ForwardEvals += res.ForwardEvals
		stats.BackwardEvals += res.BackwardEvals
		if res.PeakStates > stats.PeakStates {
			stats.PeakStates = res.PeakStates
		}
		if res.PeakStateBytes > stats.PeakBytes {
			stats.PeakBytes = res.PeakStateBytes
		}
		if res.PeakDiskBytes > stats.PeakDiskBytes {
			stats.PeakDiskBytes = res.PeakDiskBytes
		}
		stats.DiskWrites += res.DiskWrites
		stats.DiskReads += res.DiskReads
		acc := nn.Accuracy(res.Output, batch.Labels)
		totalCorrectWeight += acc * float64(len(batch.Labels))
		totalSamples += len(batch.Labels)
		if t.Cfg.Hook != nil {
			t.Cfg.Hook(stats.Steps, loss)
		}
		if afterStep != nil {
			next := Cursor{Epoch: epoch, Batch: b + 1}
			if next.Batch >= nb {
				next = Cursor{Epoch: epoch + 1, Batch: 0}
			}
			if err := afterStep(next); err != nil {
				return stats, err
			}
		}
	}
	if stats.Steps > 0 {
		stats.Loss /= float64(stats.Steps)
	}
	if totalSamples > 0 {
		stats.Accuracy = totalCorrectWeight / float64(totalSamples)
	}
	return stats, nil
}

// Train runs the configured number of epochs and returns per-epoch stats.
// It is TrainFrom from the start of training with no checkpointing.
func (t *Trainer) Train(ds Dataset) ([]EpochStats, error) {
	return t.TrainFrom(ds, Cursor{}, nil)
}

// Evaluate computes the loss and accuracy of the chain on a dataset without
// updating parameters (layers run in inference mode).
func Evaluate(c *chain.Chain, ds Dataset, batchSize int) (loss, accuracy float64, err error) {
	if batchSize <= 0 {
		batchSize = 8
	}
	nb := ds.NumBatches(batchSize)
	seq := nn.NewSequential("eval", c.Stages...)
	totalLoss := 0.0
	totalCorrect := 0.0
	samples := 0
	batches := 0
	for b := 0; b < nb; b++ {
		batch := ds.Batch(b, batchSize)
		if batch.Images == nil || len(batch.Labels) == 0 {
			continue
		}
		out := seq.Forward(batch.Images, false)
		ce := nn.NewSoftmaxCrossEntropy()
		totalLoss += ce.Forward(out, batch.Labels)
		totalCorrect += nn.Accuracy(out, batch.Labels) * float64(len(batch.Labels))
		samples += len(batch.Labels)
		batches++
	}
	if batches == 0 {
		return 0, 0, fmt.Errorf("trainer: empty evaluation dataset")
	}
	return totalLoss / float64(batches), totalCorrect / float64(samples), nil
}
