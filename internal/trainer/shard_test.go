package trainer

import (
	"testing"

	"github.com/edgeml/edgetrain/internal/tensor"
)

// labelledDataset builds a SliceDataset of total single-pixel samples whose
// values and labels encode the sample index, so tests can verify exactly
// which samples a shard sees.
func labelledDataset(total int) *SliceDataset {
	var samples []Batch
	for i := 0; i < total; i++ {
		img := tensor.New(1, 1)
		img.Set(float64(i), 0, 0)
		samples = append(samples, Batch{Images: img, Labels: []int{i}})
	}
	return NewSliceDataset(samples)
}

func TestShardRangePartition(t *testing.T) {
	cases := []struct {
		total, n int
		sizes    []int
	}{
		{10, 2, []int{5, 5}},
		{7, 3, []int{3, 2, 2}}, // uneven: first shard takes the extra
		{5, 4, []int{2, 1, 1, 1}},
		{3, 5, []int{1, 1, 1, 0, 0}}, // more shards than samples: empties
		{0, 3, []int{0, 0, 0}},
		{4, 1, []int{4}},
	}
	for _, tc := range cases {
		prev := 0
		for i := 0; i < tc.n; i++ {
			lo, hi := ShardRange(tc.total, tc.n, i)
			if lo != prev {
				t.Errorf("ShardRange(%d,%d,%d): lo=%d, want contiguous %d", tc.total, tc.n, i, lo, prev)
			}
			if hi-lo != tc.sizes[i] {
				t.Errorf("ShardRange(%d,%d,%d): size=%d, want %d", tc.total, tc.n, i, hi-lo, tc.sizes[i])
			}
			prev = hi
		}
		if prev != tc.total {
			t.Errorf("ShardRange(%d,%d,*): shards cover %d samples", tc.total, tc.n, prev)
		}
	}
}

func TestShardRangePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { ShardRange(10, 0, 0) },
		func() { ShardRange(10, 3, 3) },
		func() { ShardRange(10, 3, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("ShardRange accepted invalid arguments")
				}
			}()
			fn()
		}()
	}
}

func TestShardSamplesAndBatches(t *testing.T) {
	ds := labelledDataset(7)
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		sh := Shard(ds, 3, i)
		lo, hi := ShardRange(7, 3, i)
		if sh.Len() != hi-lo {
			t.Fatalf("shard %d: Len=%d, want %d", i, sh.Len(), hi-lo)
		}
		// One batch covering the whole shard must carry exactly its samples.
		b := sh.Batch(0, sh.Len())
		if b.Images.Dim(0) != sh.Len() || len(b.Labels) != sh.Len() {
			t.Fatalf("shard %d: batch has %d images / %d labels", i, b.Images.Dim(0), len(b.Labels))
		}
		for j := 0; j < sh.Len(); j++ {
			idx := int(b.Images.Data()[j])
			if idx != lo+j || b.Labels[j] != lo+j {
				t.Fatalf("shard %d sample %d: got sample %d (label %d), want %d", i, j, idx, b.Labels[j], lo+j)
			}
			if seen[idx] {
				t.Fatalf("sample %d appears in two shards", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 7 {
		t.Fatalf("shards cover %d of 7 samples", len(seen))
	}
}

func TestShardSmallBatches(t *testing.T) {
	ds := labelledDataset(7)
	sh := Shard(ds, 3, 0) // samples 0,1,2
	if nb := sh.NumBatches(2); nb != 2 {
		t.Fatalf("NumBatches(2) = %d, want 2", nb)
	}
	b0, b1 := sh.Batch(0, 2), sh.Batch(1, 2)
	if b0.Images.Dim(0) != 2 || b1.Images.Dim(0) != 1 {
		t.Fatalf("batch sizes %d, %d; want 2, 1", b0.Images.Dim(0), b1.Images.Dim(0))
	}
	if got := []int{b0.Labels[0], b0.Labels[1], b1.Labels[0]}; got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("batch labels %v, want [0 1 2]", got)
	}
	if out := sh.Batch(2, 2); out.Images != nil {
		t.Fatalf("out-of-range batch not empty")
	}
}

func TestShardEmpty(t *testing.T) {
	ds := labelledDataset(2)
	sh := Shard(ds, 4, 3) // beyond the sample count
	if sh.Len() != 0 {
		t.Fatalf("empty shard Len = %d", sh.Len())
	}
	if nb := sh.NumBatches(4); nb != 0 {
		t.Fatalf("empty shard NumBatches = %d", nb)
	}
	if b := sh.Batch(0, 4); b.Images != nil || b.Labels != nil {
		t.Fatalf("empty shard Batch not zero: %+v", b)
	}
}

// TestShardBatchBitIdentity pins the property the fleet's equivalence
// guarantee relies on: a shard batch is bit-identical to the corresponding
// rows of a batch over the full dataset.
func TestShardBatchBitIdentity(t *testing.T) {
	rng := tensor.NewRNG(7)
	var samples []Batch
	for i := 0; i < 6; i++ {
		samples = append(samples, Batch{
			Images: tensor.RandNormal(rng, 0, 1, 1, 2, 3, 3),
			Labels: []int{i % 3},
		})
	}
	ds := NewSliceDataset(samples)
	union := ds.Batch(0, 6)
	per := samples[0].Images.Size()
	for i := 0; i < 3; i++ {
		sh := Shard(ds, 3, i)
		b := sh.Batch(0, sh.Len())
		lo, _ := ShardRange(6, 3, i)
		want := union.Images.Data()[lo*per : (lo+sh.Len())*per]
		got := b.Images.Data()
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("shard %d element %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
}
