package trainer

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/store"
)

// Gradient accumulation is the other standard answer to the memory wall of
// Section IV: instead of recomputing activations, split the batch into
// micro-batches, run them through forward+backward one at a time and sum the
// gradients before the optimiser step. Memory scales with the micro-batch
// size, compute is unchanged, but batch-norm statistics are computed per
// micro-batch, which is exactly the small-batch degradation the paper warns
// about ([14]). The trainer exposes it so the benchmarks can put it next to
// checkpointing.

// AccumulateResult describes one accumulated optimisation step.
type AccumulateResult struct {
	Loss         float64 // mean loss over the micro-batches
	MicroBatches int
	PeakStates   int
	PeakBytes    int64
	// Checkpoint-store spill accounting, summed/peaked over the
	// micro-batches (zero for pure in-RAM policies).
	PeakDiskBytes int64
	DiskWrites    int
	DiskReads     int
}

// AccumulateStep performs one optimisation step over a full batch by
// splitting it into micro-batches of the given size, accumulating parameter
// gradients across them, scaling by the number of micro-batches, and applying
// the optimiser once. The checkpointing policy applies within each
// micro-batch, so the two techniques compose.
func AccumulateStep(c *chain.Chain, batch Batch, microBatch int, opt Optimizer, policy chain.Policy) (AccumulateResult, error) {
	if batch.Images == nil || len(batch.Labels) == 0 {
		return AccumulateResult{}, fmt.Errorf("trainer: empty batch")
	}
	n := batch.Images.Dim(0)
	if len(batch.Labels) != n {
		return AccumulateResult{}, fmt.Errorf("trainer: %d labels for %d images", len(batch.Labels), n)
	}
	if microBatch <= 0 || microBatch > n {
		microBatch = n
	}
	if opt == nil {
		return AccumulateResult{}, fmt.Errorf("trainer: nil optimizer")
	}

	shape := batch.Images.Shape()
	perSample := 1
	for _, d := range shape[1:] {
		perSample *= d
	}

	// Tier-annotating policies spill to disk; share one store across the
	// micro-batches instead of letting chain.Step create a temporary spill
	// directory per micro-batch.
	if policy.Store == nil {
		switch policy.Kind {
		case "twolevel", "auto":
			ts, err := store.NewTiered("")
			if err != nil {
				return AccumulateResult{}, fmt.Errorf("trainer: creating spill store: %w", err)
			}
			defer ts.Close()
			policy.Store = ts
		}
	}

	res := AccumulateResult{}
	c.ZeroGrads()
	for start := 0; start < n; start += microBatch {
		end := start + microBatch
		if end > n {
			end = n
		}
		size := end - start
		microShape := append([]int{size}, shape[1:]...)
		micro := tensor.New(microShape...)
		copy(micro.Data(), batch.Images.Data()[start*perSample:end*perSample])
		labels := batch.Labels[start:end]

		ce := nn.NewSoftmaxCrossEntropy()
		var loss float64
		lossGrad := func(out *tensor.Tensor) *tensor.Tensor {
			loss = ce.Forward(out, labels)
			return ce.Backward()
		}
		step, err := chain.Step(c, micro, lossGrad, policy, true)
		if err != nil {
			return res, fmt.Errorf("trainer: micro-batch %d: %w", res.MicroBatches, err)
		}
		res.Loss += loss
		res.MicroBatches++
		if step.PeakStates > res.PeakStates {
			res.PeakStates = step.PeakStates
		}
		if step.PeakStateBytes > res.PeakBytes {
			res.PeakBytes = step.PeakStateBytes
		}
		if step.PeakDiskBytes > res.PeakDiskBytes {
			res.PeakDiskBytes = step.PeakDiskBytes
		}
		res.DiskWrites += step.DiskWrites
		res.DiskReads += step.DiskReads
	}
	// The cross-entropy already averages within a micro-batch; dividing the
	// accumulated gradients by the micro-batch count makes the update
	// equivalent to averaging over the full batch when micro-batches are of
	// equal size.
	scale := 1.0 / float64(res.MicroBatches)
	for _, p := range c.Params() {
		p.Grad.ScaleInPlace(scale)
	}
	opt.Step(c.Params())
	res.Loss *= scale
	return res, nil
}
