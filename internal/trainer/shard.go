package trainer

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/tensor"
)

// Dataset sharding for fleet training: each edge worker owns a contiguous
// slice of the global sample set. Contiguous (rather than strided) shards are
// deliberate — the synthetic viewpoint datasets are ordered by node, so a
// contiguous shard carries one node's label and viewpoint skew, which is the
// non-IID setting federated training has to survive. Contiguity also means
// the concatenation of the shards in index order reproduces the original
// dataset exactly, the property the fleet's gradient-equivalence guarantee is
// stated against.

// ShardRange returns the half-open sample range [lo, hi) of the i-th of n
// contiguous shards of a dataset with total samples. The first total%n shards
// receive one extra sample, so shard sizes differ by at most one; shards
// beyond the sample count are empty (lo == hi). It panics if n <= 0 or i is
// outside [0, n), which are programming errors, not data conditions.
func ShardRange(total, n, i int) (lo, hi int) {
	if n <= 0 {
		panic(fmt.Sprintf("trainer: ShardRange with %d shards", n))
	}
	if i < 0 || i >= n {
		panic(fmt.Sprintf("trainer: ShardRange index %d outside [0, %d)", i, n))
	}
	if total < 0 {
		total = 0
	}
	base, extra := total/n, total%n
	lo = i*base + min(i, extra)
	hi = lo + base
	if i < extra {
		hi++
	}
	return lo, hi
}

// Shard returns the i-th of n contiguous shards of ds as a Dataset view. The
// view fetches samples from ds on demand (it holds no copies); batches are
// assembled exactly like SliceDataset batches, so a shard batch is
// bit-identical to the corresponding rows of a batch over the full dataset.
// A shard may be empty (when n exceeds the sample count); an empty shard
// reports zero batches and its Batch returns the zero Batch.
func Shard(ds Dataset, n, i int) Dataset {
	lo, hi := ShardRange(ds.Len(), n, i)
	return &shardDataset{ds: ds, lo: lo, n: hi - lo}
}

// shardDataset is a contiguous sample-range view of another Dataset.
type shardDataset struct {
	ds Dataset
	lo int // first sample of the shard in ds
	n  int // samples in the shard
}

// Len implements Dataset.
func (s *shardDataset) Len() int { return s.n }

// NumBatches implements Dataset.
func (s *shardDataset) NumBatches(size int) int {
	if size <= 0 || s.n == 0 {
		return 0
	}
	return (s.n + size - 1) / size
}

// Batch implements Dataset by concatenating the shard's samples, fetched one
// at a time from the underlying dataset (sample j of the shard is minibatch
// lo+j of size 1).
func (s *shardDataset) Batch(b, size int) Batch {
	start := b * size
	end := start + size
	if end > s.n {
		end = s.n
	}
	if start >= end {
		return Batch{}
	}
	first := s.ds.Batch(s.lo+start, 1)
	if first.Images == nil {
		return Batch{}
	}
	shape := first.Images.Shape()
	count := end - start
	out := tensor.New(append([]int{count}, shape[1:]...)...)
	per := first.Images.Size()
	labels := make([]int, 0, count)
	copy(out.Data()[:per], first.Images.Data())
	labels = append(labels, first.Labels...)
	for j := 1; j < count; j++ {
		sample := s.ds.Batch(s.lo+start+j, 1)
		copy(out.Data()[j*per:(j+1)*per], sample.Images.Data())
		labels = append(labels, sample.Labels...)
	}
	return Batch{Images: out, Labels: labels}
}
