package trainer

import "fmt"

// Section III: "Since the training of the student model is not time critical,
// it can be scheduled to run only when the node's CPU does not have a higher
// priority task." IdleScheduler simulates that policy: given a trace of CPU
// load from the node's primary (inference) workload, it decides in which time
// slices training steps may run and how long a training job therefore takes
// to complete.

// LoadSlice is one interval of the node's CPU-load trace.
type LoadSlice struct {
	Seconds float64 // duration of the slice
	Load    float64 // fraction of CPU consumed by higher-priority work (0..1)
}

// IdleScheduler schedules opportunistic training into the idle fraction of a
// load trace.
type IdleScheduler struct {
	// IdleThreshold is the maximum primary load at which training may run
	// (default 0.5): above it the slice is considered busy and training is
	// paused entirely, mirroring the "only when idle" policy.
	IdleThreshold float64
	// TrainShare is the fraction of the CPU training may consume inside an
	// idle slice (default: whatever is left, 1 - Load).
	TrainShare float64
}

// DefaultIdleScheduler pauses training whenever the primary workload uses
// more than half the CPU and otherwise lets training soak up the remainder.
var DefaultIdleScheduler = IdleScheduler{IdleThreshold: 0.5}

func (s IdleScheduler) normalized() IdleScheduler {
	if s.IdleThreshold <= 0 {
		s.IdleThreshold = 0.5
	}
	return s
}

// ScheduleResult describes how a training job of a given CPU-seconds cost
// fits into a load trace.
type ScheduleResult struct {
	Completed       bool
	ElapsedSeconds  float64 // wall-clock time until the job finished (or the trace ended)
	TrainingSeconds float64 // CPU-seconds actually granted to training
	BusySeconds     float64 // wall-clock time during which training was paused
	Utilisation     float64 // TrainingSeconds / ElapsedSeconds
}

// Schedule simulates running a training job that needs cpuSeconds of CPU time
// against the load trace. It returns when the job completes or the trace is
// exhausted.
func (s IdleScheduler) Schedule(trace []LoadSlice, cpuSeconds float64) (ScheduleResult, error) {
	s = s.normalized()
	if cpuSeconds < 0 {
		return ScheduleResult{}, fmt.Errorf("trainer: negative training cost %v", cpuSeconds)
	}
	res := ScheduleResult{}
	remaining := cpuSeconds
	for _, slice := range trace {
		if slice.Seconds <= 0 {
			continue
		}
		if remaining <= 0 {
			break
		}
		if slice.Load > s.IdleThreshold {
			// Busy slice: training is paused for its whole duration.
			res.ElapsedSeconds += slice.Seconds
			res.BusySeconds += slice.Seconds
			continue
		}
		share := 1 - slice.Load
		if s.TrainShare > 0 && s.TrainShare < share {
			share = s.TrainShare
		}
		if share <= 0 {
			res.ElapsedSeconds += slice.Seconds
			res.BusySeconds += slice.Seconds
			continue
		}
		available := slice.Seconds * share
		if available >= remaining {
			// The job finishes inside this slice.
			res.ElapsedSeconds += remaining / share
			res.TrainingSeconds += remaining
			remaining = 0
			break
		}
		res.ElapsedSeconds += slice.Seconds
		res.TrainingSeconds += available
		remaining -= available
	}
	res.Completed = remaining <= 1e-9
	if res.ElapsedSeconds > 0 {
		res.Utilisation = res.TrainingSeconds / res.ElapsedSeconds
	}
	return res, nil
}

// DielLoadTrace builds a simple day/night load trace for a street-monitoring
// node: high inference load during the day (people and cars to count), low
// load at night. days is the number of 24-hour periods; resolution is the
// slice length in seconds.
func DielLoadTrace(days int, resolution float64, dayLoad, nightLoad float64) []LoadSlice {
	if days <= 0 || resolution <= 0 {
		return nil
	}
	var trace []LoadSlice
	secondsPerDay := 24 * 3600.0
	for d := 0; d < days; d++ {
		for t := 0.0; t < secondsPerDay; t += resolution {
			hour := t / 3600.0
			load := nightLoad
			if hour >= 7 && hour < 22 {
				load = dayLoad
			}
			trace = append(trace, LoadSlice{Seconds: resolution, Load: load})
		}
	}
	return trace
}
