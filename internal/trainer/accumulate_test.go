package trainer

import (
	"math"
	"testing"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
)

// linearOnlyChain avoids batch norm so that micro-batching is mathematically
// equivalent to full-batch training and can be compared exactly.
func linearOnlyChain(seed uint64) *chain.Chain {
	rng := tensor.NewRNG(seed)
	return chain.New(
		nn.NewLinear("l1", 3, 8, true, rng),
		nn.NewReLU("r1"),
		nn.NewLinear("l2", 8, 2, true, rng),
	)
}

func makeBatch(rng *tensor.RNG, n int) Batch {
	imgs := tensor.RandNormal(rng, 0, 1, n, 3)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 2
	}
	return Batch{Images: imgs, Labels: labels}
}

func TestAccumulateStepEquivalentToFullBatch(t *testing.T) {
	rng := tensor.NewRNG(1)
	batch := makeBatch(rng, 8)

	full := linearOnlyChain(7)
	micro := linearOnlyChain(7)

	// Full batch: one plain step with SGD.
	resFull, err := AccumulateStep(full, batch, 8, NewSGD(0.1), chain.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	// Micro-batches of 2 with gradient accumulation.
	resMicro, err := AccumulateStep(micro, batch, 2, NewSGD(0.1), chain.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if resMicro.MicroBatches != 4 || resFull.MicroBatches != 1 {
		t.Fatalf("micro-batch counts wrong: %d and %d", resMicro.MicroBatches, resFull.MicroBatches)
	}
	// The resulting parameters must agree (ReLU/Linear only, equal-size
	// micro-batches, so the averaged gradients are identical).
	pf, pm := full.Params(), micro.Params()
	for i := range pf {
		if !tensor.AllClose(pf[i].Value, pm[i].Value, 1e-9) {
			t.Fatalf("parameter %s diverged between full-batch and accumulated updates (max diff %v)",
				pf[i].Name, tensor.MaxAbsDiff(pf[i].Value, pm[i].Value))
		}
	}
	if math.Abs(resFull.Loss-resMicro.Loss) > 1e-9 {
		t.Fatalf("losses differ: %v vs %v", resFull.Loss, resMicro.Loss)
	}
}

func TestAccumulateReducesPeakBytes(t *testing.T) {
	rng := tensor.NewRNG(2)
	batch := makeBatch(rng, 16)
	big := linearOnlyChain(3)
	small := linearOnlyChain(3)
	resBig, err := AccumulateStep(big, batch, 16, NewSGD(0.01), chain.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	resSmall, err := AccumulateStep(small, batch, 2, NewSGD(0.01), chain.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if resSmall.PeakBytes >= resBig.PeakBytes {
		t.Fatalf("micro-batching should reduce peak activation bytes: %d vs %d", resSmall.PeakBytes, resBig.PeakBytes)
	}
}

func TestAccumulateComposesWithCheckpointing(t *testing.T) {
	rng := tensor.NewRNG(4)
	batch := makeBatch(rng, 6)
	c := linearOnlyChain(5)
	res, err := AccumulateStep(c, batch, 3, NewSGD(0.05), chain.Policy{Kind: "revolve", Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Chain has 3 stages; Revolve with one slot retains at most 2 states.
	if res.PeakStates > 2 {
		t.Fatalf("checkpointed accumulation retained %d states", res.PeakStates)
	}
}

func TestAccumulateStepValidation(t *testing.T) {
	c := linearOnlyChain(6)
	rng := tensor.NewRNG(7)
	if _, err := AccumulateStep(c, Batch{}, 2, NewSGD(0.1), chain.Policy{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	bad := makeBatch(rng, 4)
	bad.Labels = bad.Labels[:2]
	if _, err := AccumulateStep(c, bad, 2, NewSGD(0.1), chain.Policy{}); err == nil {
		t.Fatal("label/image mismatch accepted")
	}
	good := makeBatch(rng, 4)
	if _, err := AccumulateStep(c, good, 2, nil, chain.Policy{}); err == nil {
		t.Fatal("nil optimiser accepted")
	}
	// Oversized micro-batch clamps to the batch size.
	res, err := AccumulateStep(c, good, 99, NewSGD(0.1), chain.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MicroBatches != 1 {
		t.Fatalf("oversized micro-batch should clamp, got %d micro-batches", res.MicroBatches)
	}
}
