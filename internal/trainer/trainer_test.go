package trainer

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
)

// twoBlobDataset builds a linearly separable two-class dataset of (N, 2)
// feature vectors.
func twoBlobDataset(rng *tensor.RNG, n int) *SliceDataset {
	var samples []Batch
	for i := 0; i < n; i++ {
		label := i % 2
		cx := -1.5
		if label == 1 {
			cx = 1.5
		}
		img := tensor.FromSlice([]float64{cx + rng.Normal(0, 0.4), rng.Normal(0, 0.4)}, 1, 2)
		samples = append(samples, Batch{Images: img, Labels: []int{label}})
	}
	return NewSliceDataset(samples)
}

func mlpChain(seed uint64) *chain.Chain {
	rng := tensor.NewRNG(seed)
	return chain.New(
		nn.NewLinear("l1", 2, 16, true, rng),
		nn.NewReLU("r1"),
		nn.NewLinear("l2", 16, 16, true, rng),
		nn.NewReLU("r2"),
		nn.NewLinear("l3", 16, 16, true, rng),
		nn.NewReLU("r3"),
		nn.NewLinear("l4", 16, 2, true, rng),
	)
}

func TestSliceDatasetBatching(t *testing.T) {
	rng := tensor.NewRNG(1)
	ds := twoBlobDataset(rng, 10)
	if ds.Len() != 10 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if ds.NumBatches(4) != 3 {
		t.Fatalf("NumBatches(4) = %d, want 3", ds.NumBatches(4))
	}
	b0 := ds.Batch(0, 4)
	if b0.Images.Dim(0) != 4 || len(b0.Labels) != 4 {
		t.Fatalf("first batch wrong: %v labels=%d", b0.Images.Shape(), len(b0.Labels))
	}
	last := ds.Batch(2, 4)
	if last.Images.Dim(0) != 2 {
		t.Fatalf("final partial batch should have 2 samples, got %d", last.Images.Dim(0))
	}
	empty := ds.Batch(5, 4)
	if empty.Images != nil {
		t.Fatal("out-of-range batch should be empty")
	}
	if ds.NumBatches(0) != 0 {
		t.Fatal("NumBatches with non-positive size should be 0")
	}
}

func TestOptimizersReduceQuadraticLoss(t *testing.T) {
	// Minimise f(w) = 0.5*||w - target||^2 whose gradient is (w - target).
	target := []float64{1, -2, 3}
	for _, opt := range []Optimizer{NewSGD(0.1), NewMomentum(0.05, 0.9), NewAdam(0.05)} {
		p := nn.NewParam("w", tensor.New(3))
		loss := func() float64 {
			s := 0.0
			for i, v := range p.Value.Data() {
				d := v - target[i]
				s += 0.5 * d * d
			}
			return s
		}
		initial := loss()
		for step := 0; step < 300; step++ {
			p.ZeroGrad()
			for i, v := range p.Value.Data() {
				p.Grad.Data()[i] = v - target[i]
			}
			opt.Step([]*nn.Param{p})
		}
		if final := loss(); final > initial/100 {
			t.Errorf("%s did not converge: initial %v final %v", opt.Name(), initial, final)
		}
	}
}

func TestOptimizerStateBytes(t *testing.T) {
	if NewSGD(0.1).StateBytesPerParam() != 0 {
		t.Error("SGD should carry no state")
	}
	if NewMomentum(0.1, 0.9).StateBytesPerParam() != 4 {
		t.Error("Momentum should carry one fp32 buffer")
	}
	if NewAdam(0.1).StateBytesPerParam() != 8 {
		t.Error("Adam should carry two fp32 buffers")
	}
}

func TestNewOptimizerByName(t *testing.T) {
	for _, name := range []string{"sgd", "momentum", "adam"} {
		opt, err := NewOptimizer(name, 0.1)
		if err != nil || opt.Name() != name {
			t.Fatalf("NewOptimizer(%q) = %v, %v", name, opt, err)
		}
	}
	if _, err := NewOptimizer("lbfgs", 0.1); err == nil {
		t.Fatal("unknown optimiser accepted")
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	p := nn.NewParam("w", tensor.Full(1, 4))
	opt := &SGD{LR: 0.1, WeightDecay: 0.5}
	p.ZeroGrad()
	opt.Step([]*nn.Param{p})
	if p.Value.At(0) >= 1 {
		t.Fatal("weight decay should shrink weights even with zero gradient")
	}
}

func TestTrainerLearnsSeparableData(t *testing.T) {
	rng := tensor.NewRNG(5)
	ds := twoBlobDataset(rng, 64)
	c := mlpChain(6)
	tr, err := New(c, Config{Epochs: 8, BatchSize: 8, Optimizer: NewAdam(0.05)})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Train(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 8 {
		t.Fatalf("expected 8 epochs of stats, got %d", len(stats))
	}
	first, last := stats[0], stats[len(stats)-1]
	if last.Loss >= first.Loss {
		t.Fatalf("loss did not decrease: %v -> %v", first.Loss, last.Loss)
	}
	if last.Accuracy < 0.9 {
		t.Fatalf("final training accuracy %.2f too low for separable data", last.Accuracy)
	}
	_, acc, err := Evaluate(c, ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("evaluation accuracy %.2f too low", acc)
	}
}

func TestTrainerWithCheckpointingPolicyMatchesPlainLearning(t *testing.T) {
	rng := tensor.NewRNG(9)
	ds := twoBlobDataset(rng, 48)
	cPlain := mlpChain(10)
	cCheck := mlpChain(10)

	trPlain, err := New(cPlain, Config{Epochs: 5, BatchSize: 8, Optimizer: NewSGD(0.1)})
	if err != nil {
		t.Fatal(err)
	}
	trCheck, err := New(cCheck, Config{
		Epochs: 5, BatchSize: 8, Optimizer: NewSGD(0.1),
		Policy: chain.Policy{Kind: "revolve", Slots: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sPlain, err := trPlain.Train(ds)
	if err != nil {
		t.Fatal(err)
	}
	sCheck, err := trCheck.Train(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Same data, same seed, same optimiser: the loss trajectories must agree
	// because checkpointing changes memory use, not gradients.
	for e := range sPlain {
		if math.Abs(sPlain[e].Loss-sCheck[e].Loss) > 1e-9 {
			t.Fatalf("epoch %d: loss %v (plain) vs %v (checkpointed)", e, sPlain[e].Loss, sCheck[e].Loss)
		}
	}
	// And the checkpointed run must have retained fewer states while doing
	// more forward work.
	if sCheck[0].PeakStates >= sPlain[0].PeakStates {
		t.Fatal("checkpointed training did not reduce retained states")
	}
	if sCheck[0].ForwardEvals <= sPlain[0].ForwardEvals {
		t.Fatal("checkpointed training should recompute forwards")
	}
}

func TestTrainerHookAndDefaults(t *testing.T) {
	rng := tensor.NewRNG(11)
	ds := twoBlobDataset(rng, 8)
	calls := 0
	c := mlpChain(12)
	tr, err := New(c, Config{Hook: func(step int, loss float64) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Train(ds); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("hook was never called")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil chain accepted")
	}
	if _, err := New(chain.New(), Config{}); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	c := mlpChain(13)
	if _, _, err := Evaluate(c, NewSliceDataset(nil), 4); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestIdleSchedulerBasics(t *testing.T) {
	s := DefaultIdleScheduler
	// A fully idle hour can absorb an hour of training.
	trace := []LoadSlice{{Seconds: 3600, Load: 0}}
	res, err := s.Schedule(trace, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || math.Abs(res.ElapsedSeconds-1800) > 1e-6 {
		t.Fatalf("idle trace scheduling wrong: %+v", res)
	}
	// A fully busy trace never runs training.
	busy := []LoadSlice{{Seconds: 3600, Load: 0.9}}
	res, err = s.Schedule(busy, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.TrainingSeconds != 0 {
		t.Fatalf("busy trace should not train: %+v", res)
	}
	if _, err := s.Schedule(trace, -1); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestIdleSchedulerInterleaving(t *testing.T) {
	s := IdleScheduler{IdleThreshold: 0.5}
	trace := []LoadSlice{
		{Seconds: 100, Load: 0.2}, // 80 cpu-seconds available
		{Seconds: 100, Load: 0.9}, // busy
		{Seconds: 100, Load: 0.0}, // 100 available
	}
	res, err := s.Schedule(trace, 120)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("job should complete: %+v", res)
	}
	// 80 s of work in the first slice, the busy slice passes entirely, then
	// 40 s of work in the last slice: elapsed = 100 + 100 + 40.
	if math.Abs(res.ElapsedSeconds-240) > 1e-6 {
		t.Fatalf("elapsed %v, want 240", res.ElapsedSeconds)
	}
	if math.Abs(res.BusySeconds-100) > 1e-6 {
		t.Fatalf("busy %v, want 100", res.BusySeconds)
	}
}

func TestDielLoadTrace(t *testing.T) {
	trace := DielLoadTrace(1, 3600, 0.8, 0.1)
	if len(trace) != 24 {
		t.Fatalf("expected 24 hourly slices, got %d", len(trace))
	}
	if trace[3].Load != 0.1 || trace[12].Load != 0.8 {
		t.Fatalf("diel pattern wrong: night=%v day=%v", trace[3].Load, trace[12].Load)
	}
	if DielLoadTrace(0, 3600, 0.8, 0.1) != nil {
		t.Fatal("zero days should produce an empty trace")
	}
	// A nightly-idle node eventually completes a big training job.
	s := DefaultIdleScheduler
	res, err := s.Schedule(DielLoadTrace(7, 3600, 0.9, 0.1), 20*3600)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("a week of nights should fit 20 CPU-hours of training")
	}
	if res.Utilisation >= 1 {
		t.Fatal("utilisation must be below 1 when busy periods exist")
	}
}

// Property: the scheduler never reports more training seconds than requested
// and never more than the elapsed wall-clock time.
func TestIdleSchedulerProperty(t *testing.T) {
	f := func(costRaw uint16, seed uint8) bool {
		rng := tensor.NewRNG(uint64(seed))
		var trace []LoadSlice
		for i := 0; i < 20; i++ {
			trace = append(trace, LoadSlice{Seconds: 10 + 100*rng.Float64(), Load: rng.Float64()})
		}
		cost := float64(costRaw % 5000)
		res, err := DefaultIdleScheduler.Schedule(trace, cost)
		if err != nil {
			return false
		}
		if res.TrainingSeconds > cost+1e-6 {
			return false
		}
		return res.TrainingSeconds <= res.ElapsedSeconds+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
