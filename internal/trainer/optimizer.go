// Package trainer provides optimisers, a training loop that can run its
// backward pass under any checkpointing policy, and the opportunistic
// (idle-CPU) scheduler that Section III envisions for student-model training
// on a Waggle node.
package trainer

import (
	"fmt"
	"math"

	"github.com/edgeml/edgetrain/internal/nn"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and does not clear gradients.
	Step(params []*nn.Param)
	// Name returns a short identifier ("sgd", "momentum", "adam").
	Name() string
	// StateBytesPerParam reports the optimiser state per parameter in bytes
	// at fp32, used by the memory accounting (SGD: 0, momentum: 4, Adam: 8).
	StateBytesPerParam() int64
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// NewSGD creates a plain SGD optimiser.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// StateBytesPerParam implements Optimizer.
func (s *SGD) StateBytesPerParam() int64 { return 0 }

// Step implements Optimizer.
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		v := p.Value.Data()
		g := p.Grad.Data()
		for i := range v {
			grad := g[i] + s.WeightDecay*v[i]
			v[i] -= s.LR * grad
		}
	}
}

// Momentum is SGD with classical momentum.
type Momentum struct {
	LR          float64
	Beta        float64
	WeightDecay float64
	velocity    map[*nn.Param][]float64
}

// NewMomentum creates a momentum optimiser (beta defaults to 0.9 when 0).
func NewMomentum(lr, beta float64) *Momentum {
	if beta == 0 {
		beta = 0.9
	}
	return &Momentum{LR: lr, Beta: beta, velocity: make(map[*nn.Param][]float64)}
}

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// StateBytesPerParam implements Optimizer.
func (m *Momentum) StateBytesPerParam() int64 { return 4 }

// Step implements Optimizer.
func (m *Momentum) Step(params []*nn.Param) {
	for _, p := range params {
		vel, ok := m.velocity[p]
		if !ok {
			vel = make([]float64, p.Count())
			m.velocity[p] = vel
		}
		v := p.Value.Data()
		g := p.Grad.Data()
		for i := range v {
			grad := g[i] + m.WeightDecay*v[i]
			vel[i] = m.Beta*vel[i] + grad
			v[i] -= m.LR * vel[i]
		}
	}
}

// Adam is the Adam optimiser (Kingma & Ba) with bias correction.
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64
	step         int
	m, v         map[*nn.Param][]float64
}

// NewAdam creates an Adam optimiser with the standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*nn.Param][]float64),
		v: make(map[*nn.Param][]float64),
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// StateBytesPerParam implements Optimizer.
func (a *Adam) StateBytesPerParam() int64 { return 8 }

// Step implements Optimizer.
func (a *Adam) Step(params []*nn.Param) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m1, ok := a.m[p]
		if !ok {
			m1 = make([]float64, p.Count())
			a.m[p] = m1
		}
		m2, ok := a.v[p]
		if !ok {
			m2 = make([]float64, p.Count())
			a.v[p] = m2
		}
		val := p.Value.Data()
		g := p.Grad.Data()
		for i := range val {
			grad := g[i] + a.WeightDecay*val[i]
			m1[i] = a.Beta1*m1[i] + (1-a.Beta1)*grad
			m2[i] = a.Beta2*m2[i] + (1-a.Beta2)*grad*grad
			mHat := m1[i] / c1
			vHat := m2[i] / c2
			val[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// NewOptimizer constructs an optimiser by name: "sgd", "momentum" or "adam".
func NewOptimizer(name string, lr float64) (Optimizer, error) {
	switch name {
	case "sgd":
		return NewSGD(lr), nil
	case "momentum":
		return NewMomentum(lr, 0.9), nil
	case "adam":
		return NewAdam(lr), nil
	default:
		return nil, fmt.Errorf("trainer: unknown optimizer %q", name)
	}
}
