package trainer

import (
	"errors"
	"math"
	"testing"

	"github.com/edgeml/edgetrain/ckpt"
	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/parallel"
	"github.com/edgeml/edgetrain/internal/tensor"
)

// convBNChain builds a deterministic 8-stage conv/batch-norm chain over
// 1x8x8 images — batch norm gives it non-trainable running statistics, so
// resume must restore more than the parameters.
func convBNChain(seed uint64) *chain.Chain {
	rng := tensor.NewRNG(seed)
	return chain.New(
		nn.NewConv2D("c1", 1, 4, 3, 1, 1, true, rng),
		nn.NewBatchNorm2D("bn1", 4),
		nn.NewReLU("r1"),
		nn.NewConv2D("c2", 4, 4, 3, 1, 1, true, rng),
		nn.NewBatchNorm2D("bn2", 4),
		nn.NewReLU("r2"),
		nn.NewFlatten("flat"),
		nn.NewLinear("head", 4*8*8, 3, true, rng),
	)
}

// imageDataset builds n labelled 1x8x8 frames.
func imageDataset(n int) *SliceDataset {
	rng := tensor.NewRNG(99)
	var samples []Batch
	for i := 0; i < n; i++ {
		samples = append(samples, Batch{
			Images: tensor.RandNormal(rng, 0, 1, 1, 1, 8, 8),
			Labels: []int{i % 3},
		})
	}
	return NewSliceDataset(samples)
}

// trainingBytes captures the bit-level fingerprint of a chain's full
// training state: parameter values and batch-norm running statistics.
func trainingBytes(c *chain.Chain) []uint64 {
	var out []uint64
	for _, p := range c.Params() {
		for _, v := range p.Value.Data() {
			out = append(out, math.Float64bits(v))
		}
	}
	for _, st := range nn.CollectState(c.Stages) {
		for _, v := range st.Tensor.Data() {
			out = append(out, math.Float64bits(v))
		}
	}
	return out
}

// crashNow is the sentinel the simulated crash panics with.
type crashNow struct{}

// trainUntilCrash runs TrainFrom, triggering a simulated crash (panic,
// recovered here) after crashStep optimisation steps. Training completing
// before the crash step is a test bug.
func trainUntilCrash(t *testing.T, tr *Trainer, ds Dataset, cp *CheckpointPlan, crashStep int) {
	t.Helper()
	steps := 0
	tr.Cfg.Hook = func(step int, loss float64) {
		steps++
		if steps == crashStep {
			panic(crashNow{})
		}
	}
	defer func() {
		tr.Cfg.Hook = nil
		if r := recover(); r == nil {
			t.Fatalf("training finished before the simulated crash at step %d", crashStep)
		} else if _, ok := r.(crashNow); !ok {
			panic(r)
		}
	}()
	_, err := tr.TrainFrom(ds, Cursor{}, cp)
	t.Fatalf("TrainFrom returned (%v) instead of crashing", err)
}

// TestResumeBitIdentical is the acceptance test of the resume engine: a run
// killed mid-epoch and resumed from its last durable checkpoint must finish
// with weights (and batch-norm state) bit-identical to an uninterrupted
// run — across checkpointing policies and kernel worker counts.
func TestResumeBitIdentical(t *testing.T) {
	policies := map[string]chain.Policy{
		"storeall": {Kind: "storeall"},
		"revolve":  {Kind: "revolve", Slots: 3},
		"twolevel": {Kind: "twolevel", Slots: 2, DiskSlots: 2},
	}
	const (
		epochs    = 2
		batchSize = 2
		samples   = 12 // 6 steps per epoch
		every     = 4  // checkpoint every 4 steps
		crashStep = 9  // mid-epoch 1; last durable checkpoint is step 8
	)
	ds := imageDataset(samples)
	newTrainer := func(pol chain.Policy) *Trainer {
		tr, err := New(convBNChain(7), Config{
			Epochs:    epochs,
			BatchSize: batchSize,
			Optimizer: NewAdam(0.01),
			Policy:    pol,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	for name, pol := range policies {
		for _, workers := range []int{1, 3} {
			t.Run(name+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				prev := parallel.SetWorkers(workers)
				defer parallel.SetWorkers(prev)

				// Uninterrupted reference run.
				ref := newTrainer(pol)
				if _, err := ref.Train(ds); err != nil {
					t.Fatalf("uninterrupted run: %v", err)
				}
				want := trainingBytes(ref.Chain)

				// Interrupted run: crash mid-epoch, then resume in a fresh
				// trainer (fresh model and optimizer — a new process).
				dir, err := ckpt.Open(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				cp := &CheckpointPlan{Dir: dir, EverySteps: every}
				victim := newTrainer(pol)
				trainUntilCrash(t, victim, ds, cp, crashStep)

				resumed := newTrainer(pol)
				cur, err := resumed.ResumeFrom(dir)
				if err != nil {
					t.Fatalf("ResumeFrom: %v", err)
				}
				if cur.Epoch != 1 || cur.Batch != 2 {
					t.Fatalf("resume cursor %+v, want epoch 1 batch 2 (step 8 boundary)", cur)
				}
				if _, err := resumed.TrainFrom(ds, cur, cp); err != nil {
					t.Fatalf("resumed run: %v", err)
				}
				got := trainingBytes(resumed.Chain)

				if len(want) != len(got) {
					t.Fatalf("state sizes differ: %d vs %d words", len(want), len(got))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("policy %s workers=%d: resumed state differs from uninterrupted at word %d", name, workers, i)
					}
				}

				// The completed run's checkpoint marks the run done; resuming
				// it again trains zero further steps and changes nothing.
				again := newTrainer(pol)
				cur, err = again.ResumeFrom(dir)
				if err != nil {
					t.Fatalf("ResumeFrom completed: %v", err)
				}
				if cur.Epoch != epochs {
					t.Fatalf("completion cursor %+v, want epoch %d", cur, epochs)
				}
				stats, err := again.TrainFrom(ds, cur, nil)
				if err != nil || len(stats) != 0 {
					t.Fatalf("resume of a completed run trained %d epochs (err %v)", len(stats), err)
				}
				final := trainingBytes(again.Chain)
				for i := range want {
					if want[i] != final[i] {
						t.Fatalf("completed-run checkpoint does not reproduce final state at word %d", i)
					}
				}
			})
		}
	}
}

// TestResumeAcrossWorkerCounts saves under one worker count and resumes
// under another: the checkpoint bytes and the resumed trajectory must be
// identical, because neither the format nor the kernels depend on the
// worker count.
func TestResumeAcrossWorkerCounts(t *testing.T) {
	ds := imageDataset(8)
	make1 := func() *Trainer {
		tr, err := New(convBNChain(3), Config{Epochs: 2, BatchSize: 2, Optimizer: NewMomentum(0.05, 0.9)})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	ref := make1()
	if _, err := ref.Train(ds); err != nil {
		t.Fatal(err)
	}
	want := trainingBytes(ref.Chain)

	// Save at the epoch boundary under 4 workers...
	parallel.SetWorkers(4)
	dir, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	half := make1()
	half.Cfg.Epochs = 1
	if _, err := half.TrainFrom(ds, Cursor{}, &CheckpointPlan{Dir: dir}); err != nil {
		t.Fatal(err)
	}

	// ...and resume under 2 workers (a different process on different silicon).
	parallel.SetWorkers(2)
	resumed := make1()
	cur, err := resumed.ResumeFrom(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Epoch != 1 || cur.Batch != 0 {
		t.Fatalf("cursor %+v, want epoch 1 batch 0", cur)
	}
	if _, err := resumed.TrainFrom(ds, cur, nil); err != nil {
		t.Fatal(err)
	}
	got := trainingBytes(resumed.Chain)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("resumed state differs at word %d", i)
		}
	}
}

// TestOptimizerStateRoundTrip pins capture/restore for the stateful
// optimisers, including the Adam step counter that bias correction needs.
func TestOptimizerStateRoundTrip(t *testing.T) {
	ds := imageDataset(4)
	for _, mk := range []func() Optimizer{
		func() Optimizer { return NewSGD(0.05) },
		func() Optimizer { return NewMomentum(0.05, 0.9) },
		func() Optimizer { return NewAdam(0.01) },
	} {
		tr, err := New(convBNChain(5), Config{Epochs: 1, BatchSize: 2, Optimizer: mk()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Train(ds); err != nil {
			t.Fatal(err)
		}
		st, err := CaptureOptimizerState(tr.Cfg.Optimizer, tr.Chain.Params())
		if err != nil {
			t.Fatal(err)
		}
		if st.Name != tr.Cfg.Optimizer.Name() {
			t.Fatalf("captured name %q, want %q", st.Name, tr.Cfg.Optimizer.Name())
		}
		fresh := mk()
		if err := RestoreOptimizerState(fresh, tr.Chain.Params(), st); err != nil {
			t.Fatalf("restore into fresh %s: %v", fresh.Name(), err)
		}
		st2, err := CaptureOptimizerState(fresh, tr.Chain.Params())
		if err != nil {
			t.Fatal(err)
		}
		if st.Step != st2.Step || len(st.Slots) != len(st2.Slots) {
			t.Fatalf("%s state changed across restore: %d/%d slots, step %d/%d",
				fresh.Name(), len(st.Slots), len(st2.Slots), st.Step, st2.Step)
		}
		for i := range st.Slots {
			a, b := st.Slots[i], st2.Slots[i]
			if a.Param != b.Param || a.Slot != b.Slot || len(a.Data) != len(b.Data) {
				t.Fatalf("%s slot %d differs structurally", fresh.Name(), i)
			}
			for j := range a.Data {
				if math.Float64bits(a.Data[j]) != math.Float64bits(b.Data[j]) {
					t.Fatalf("%s slot %d element %d differs", fresh.Name(), i, j)
				}
			}
		}
	}
}

// TestRestoreRejectsMismatches pins the loud-failure contract: resuming into
// the wrong model or optimizer errors before any state is applied
// half-way.
func TestRestoreRejectsMismatches(t *testing.T) {
	ds := imageDataset(4)
	dir, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(convBNChain(5), Config{Epochs: 1, BatchSize: 2, Optimizer: NewAdam(0.01)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.TrainFrom(ds, Cursor{}, &CheckpointPlan{Dir: dir}); err != nil {
		t.Fatal(err)
	}

	// Wrong optimizer kind.
	other, err := New(convBNChain(5), Config{Epochs: 1, BatchSize: 2, Optimizer: NewSGD(0.05)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.ResumeFrom(dir); err == nil {
		t.Fatal("resume with a different optimizer kind succeeded")
	}

	// Different batch size: the checkpointed Batch cursor counts batches of
	// the original size, so reinterpreting it would shift the resume point.
	rebatched, err := New(convBNChain(5), Config{Epochs: 1, BatchSize: 4, Optimizer: NewAdam(0.01)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rebatched.ResumeFrom(dir); err == nil {
		t.Fatal("resume with a different batch size succeeded")
	}

	// Wrong model architecture.
	wrong, err := New(mlpChain(5), Config{Epochs: 1, BatchSize: 2, Optimizer: NewAdam(0.01)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wrong.ResumeFrom(dir); err == nil {
		t.Fatal("resume into a different architecture succeeded")
	}

	// Empty directory.
	empty, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ResumeFrom(empty); !errors.Is(err, ckpt.ErrNoCheckpoint) {
		t.Fatalf("resume from empty dir: want ErrNoCheckpoint, got %v", err)
	}

	// A checkpoint trained past this run's epoch budget: truncating its
	// cursor would rewind below the weights' real progress, so TrainFrom
	// must refuse.
	shorter, err := New(convBNChain(5), Config{Epochs: 1, BatchSize: 2, Optimizer: NewAdam(0.01)})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := shorter.ResumeFrom(dir) // checkpoint completed 1 epoch... cursor may exceed shorter run
	if err != nil {
		t.Fatal(err)
	}
	shorter.Cfg.Epochs = 0
	if _, err := shorter.TrainFrom(ds, cur, nil); err == nil {
		t.Fatalf("TrainFrom accepted cursor %+v beyond the configured epochs", cur)
	}
}
