// Package resnet describes the ResNet family used by the paper's memory
// analysis (Tables I-III and the LinearResNet homogenisation of Section VI)
// and provides small runnable ResNets built on internal/nn for end-to-end
// training experiments.
//
// The architecture specifications follow the published ResNet family
// (He et al., 2015) as implemented by torchvision: a 7x7/stride-2 stem,
// a 3x3/stride-2 max pool, four stages of residual blocks (BasicBlock for
// ResNet-18/34, Bottleneck for ResNet-50/101/152), global average pooling and
// a 1000-way fully connected classifier.
package resnet

import "fmt"

// Variant identifies one member of the ResNet family.
type Variant int

// The five ResNet variants analysed in the paper.
const (
	ResNet18  Variant = 18
	ResNet34  Variant = 34
	ResNet50  Variant = 50
	ResNet101 Variant = 101
	ResNet152 Variant = 152
)

// Variants lists the family members in the order used by the paper's tables.
var Variants = []Variant{ResNet18, ResNet34, ResNet50, ResNet101, ResNet152}

// String implements fmt.Stringer.
func (v Variant) String() string { return fmt.Sprintf("ResNet%d", int(v)) }

// config returns the per-stage block counts and whether bottleneck blocks are
// used for the variant.
func (v Variant) config() (blocks [4]int, bottleneck bool, err error) {
	switch v {
	case ResNet18:
		return [4]int{2, 2, 2, 2}, false, nil
	case ResNet34:
		return [4]int{3, 4, 6, 3}, false, nil
	case ResNet50:
		return [4]int{3, 4, 6, 3}, true, nil
	case ResNet101:
		return [4]int{3, 4, 23, 3}, true, nil
	case ResNet152:
		return [4]int{3, 8, 36, 3}, true, nil
	default:
		return blocks, false, fmt.Errorf("resnet: unknown variant %d", int(v))
	}
}

// Depth returns the nominal depth of the variant: the number of convolution
// and fully connected layers, which is the "l" used by the LinearResNet
// homogenisation in Section VI (18, 34, 50, 101 or 152).
func (v Variant) Depth() int {
	blocks, bottleneck, err := v.config()
	if err != nil {
		return 0
	}
	total := 0
	for _, b := range blocks {
		total += b
	}
	per := 2
	if bottleneck {
		per = 3
	}
	return total*per + 2 // stem conv + fc
}

// NumClasses is the classifier width used by the published ResNets.
const NumClasses = 1000

// LayerCount is the static cost of one counted operation of the network for a
// given input image size: its trainable parameters and the number of output
// elements per sample (the activation that must be retained for backward when
// no checkpointing is used).
type LayerCount struct {
	Name        string
	Kind        string // "conv", "bn", "relu", "maxpool", "avgpool", "fc", "add"
	Params      int64
	OutputElems int64 // per sample
	// Retained reports whether plain backpropagation must keep this output
	// alive until the backward pass. Residual-add outputs and downsample
	// branch outputs are not retained: the add's backward needs neither
	// input, and the downsample convolution's backward needs the block input
	// (already retained), so frameworks reuse those buffers.
	Retained bool
}

// counter walks the architecture accumulating LayerCounts.
type counter struct {
	c, h, w int
	counts  []LayerCount
}

func convOut(in, kernel, stride, pad int) int { return (in+2*pad-kernel)/stride + 1 }

func (ct *counter) conv(name string, outC, kernel, stride, pad int) {
	params := int64(outC) * int64(ct.c) * int64(kernel) * int64(kernel)
	ct.h = convOut(ct.h, kernel, stride, pad)
	ct.w = convOut(ct.w, kernel, stride, pad)
	ct.c = outC
	ct.counts = append(ct.counts, LayerCount{
		Name: name, Kind: "conv", Params: params,
		OutputElems: int64(ct.c) * int64(ct.h) * int64(ct.w),
		Retained:    true,
	})
}

func (ct *counter) bn(name string) {
	ct.counts = append(ct.counts, LayerCount{
		Name: name, Kind: "bn", Params: 2 * int64(ct.c),
		OutputElems: int64(ct.c) * int64(ct.h) * int64(ct.w),
		Retained:    true,
	})
}

func (ct *counter) relu(name string) {
	ct.counts = append(ct.counts, LayerCount{
		Name: name, Kind: "relu",
		OutputElems: int64(ct.c) * int64(ct.h) * int64(ct.w),
		Retained:    true,
	})
}

func (ct *counter) maxpool(name string, kernel, stride, pad int) {
	ct.h = convOut(ct.h, kernel, stride, pad)
	ct.w = convOut(ct.w, kernel, stride, pad)
	ct.counts = append(ct.counts, LayerCount{
		Name: name, Kind: "maxpool",
		OutputElems: int64(ct.c) * int64(ct.h) * int64(ct.w),
		Retained:    true,
	})
}

func (ct *counter) add(name string) {
	ct.counts = append(ct.counts, LayerCount{
		Name: name, Kind: "add",
		OutputElems: int64(ct.c) * int64(ct.h) * int64(ct.w),
		Retained:    false,
	})
}

// basicBlock appends the counts of a BasicBlock with the given output width.
func (ct *counter) basicBlock(name string, planes, stride int) {
	inC, inH, inW := ct.c, ct.h, ct.w
	ct.conv(name+".conv1", planes, 3, stride, 1)
	ct.bn(name + ".bn1")
	ct.relu(name + ".relu1")
	ct.conv(name+".conv2", planes, 3, 1, 1)
	ct.bn(name + ".bn2")
	if stride != 1 || inC != planes {
		// Downsample path operates on the block input.
		downParams := int64(planes) * int64(inC)
		outH := convOut(inH, 1, stride, 0)
		outW := convOut(inW, 1, stride, 0)
		ct.counts = append(ct.counts,
			LayerCount{Name: name + ".downsample.conv", Kind: "conv", Params: downParams,
				OutputElems: int64(planes) * int64(outH) * int64(outW), Retained: false},
			LayerCount{Name: name + ".downsample.bn", Kind: "bn", Params: 2 * int64(planes),
				OutputElems: int64(planes) * int64(outH) * int64(outW), Retained: false},
		)
	}
	ct.add(name + ".add")
	ct.relu(name + ".relu_out")
}

// bottleneckBlock appends the counts of a Bottleneck block.
func (ct *counter) bottleneckBlock(name string, planes, stride int) {
	const expansion = 4
	inC, inH, inW := ct.c, ct.h, ct.w
	outC := planes * expansion
	ct.conv(name+".conv1", planes, 1, 1, 0)
	ct.bn(name + ".bn1")
	ct.relu(name + ".relu1")
	ct.conv(name+".conv2", planes, 3, stride, 1)
	ct.bn(name + ".bn2")
	ct.relu(name + ".relu2")
	ct.conv(name+".conv3", outC, 1, 1, 0)
	ct.bn(name + ".bn3")
	if stride != 1 || inC != outC {
		downParams := int64(outC) * int64(inC)
		outH := convOut(inH, 1, stride, 0)
		outW := convOut(inW, 1, stride, 0)
		ct.counts = append(ct.counts,
			LayerCount{Name: name + ".downsample.conv", Kind: "conv", Params: downParams,
				OutputElems: int64(outC) * int64(outH) * int64(outW), Retained: false},
			LayerCount{Name: name + ".downsample.bn", Kind: "bn", Params: 2 * int64(outC),
				OutputElems: int64(outC) * int64(outH) * int64(outW), Retained: false},
		)
	}
	ct.add(name + ".add")
	ct.relu(name + ".relu_out")
}

// Count returns the per-operation parameter and activation counts of the
// variant applied to square RGB images of the given side length. The counts
// are per sample; activation memory scales linearly with batch size.
func Count(v Variant, imageSize int) ([]LayerCount, error) {
	if imageSize < 32 {
		return nil, fmt.Errorf("resnet: image size %d too small for the published architecture", imageSize)
	}
	blocks, bottleneck, err := v.config()
	if err != nil {
		return nil, err
	}
	ct := &counter{c: 3, h: imageSize, w: imageSize}
	ct.conv("conv1", 64, 7, 2, 3)
	ct.bn("bn1")
	ct.relu("relu1")
	ct.maxpool("maxpool", 3, 2, 1)

	planes := []int{64, 128, 256, 512}
	strides := []int{1, 2, 2, 2}
	for stage := 0; stage < 4; stage++ {
		for b := 0; b < blocks[stage]; b++ {
			stride := 1
			if b == 0 {
				stride = strides[stage]
			}
			name := fmt.Sprintf("layer%d.block%d", stage+1, b)
			if bottleneck {
				ct.bottleneckBlock(name, planes[stage], stride)
			} else {
				ct.basicBlock(name, planes[stage], stride)
			}
		}
	}
	// Global average pooling and the classifier.
	ct.counts = append(ct.counts, LayerCount{Name: "avgpool", Kind: "avgpool", OutputElems: int64(ct.c), Retained: true})
	fcIn := int64(ct.c)
	ct.counts = append(ct.counts, LayerCount{
		Name: "fc", Kind: "fc",
		Params:      fcIn*NumClasses + NumClasses,
		OutputElems: NumClasses,
		Retained:    true,
	})
	return ct.counts, nil
}

// ParamCount returns the total number of trainable parameters of the variant.
// It does not depend on the image size.
func ParamCount(v Variant) (int64, error) {
	counts, err := Count(v, 224)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, c := range counts {
		total += c.Params
	}
	return total, nil
}

// ActivationElemsPerSample returns the total number of activation elements
// retained by plain backpropagation for one sample at the given image size
// (the outputs of every counted operation whose Retained flag is set).
func ActivationElemsPerSample(v Variant, imageSize int) (int64, error) {
	counts, err := Count(v, imageSize)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, c := range counts {
		if c.Retained {
			total += c.OutputElems
		}
	}
	return total, nil
}
