package resnet

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/edgeml/edgetrain/internal/tensor"
)

func TestDepthMatchesNames(t *testing.T) {
	for _, v := range Variants {
		if v.Depth() != int(v) {
			t.Errorf("%s.Depth() = %d, want %d", v, v.Depth(), int(v))
		}
	}
	if Variant(7).Depth() != 0 {
		t.Error("unknown variant should report zero depth")
	}
}

func TestVariantString(t *testing.T) {
	if ResNet50.String() != "ResNet50" {
		t.Fatalf("String = %q", ResNet50.String())
	}
}

// TestParamCountsMatchPublishedValues pins the parameter counts against the
// well-known torchvision numbers (11.69M, 21.80M, 25.56M, 44.55M, 60.19M).
func TestParamCountsMatchPublishedValues(t *testing.T) {
	want := map[Variant]float64{
		ResNet18:  11.69e6,
		ResNet34:  21.80e6,
		ResNet50:  25.56e6,
		ResNet101: 44.55e6,
		ResNet152: 60.19e6,
	}
	for v, expected := range want {
		got, err := ParamCount(v)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(float64(got)-expected) / expected
		if rel > 0.01 {
			t.Errorf("%s parameter count %d deviates %.2f%% from the published %.0f", v, got, 100*rel, expected)
		}
	}
}

func TestCountRejectsTinyImages(t *testing.T) {
	if _, err := Count(ResNet18, 16); err == nil {
		t.Fatal("image sizes below 32 should be rejected")
	}
	if _, err := Count(Variant(99), 224); err == nil {
		t.Fatal("unknown variants should be rejected")
	}
}

func TestCountSpatialPipeline(t *testing.T) {
	counts, err := Count(ResNet18, 224)
	if err != nil {
		t.Fatal(err)
	}
	// The stem convolution output must be 64x112x112.
	if counts[0].Name != "conv1" || counts[0].OutputElems != 64*112*112 {
		t.Fatalf("stem conv output %d, want %d", counts[0].OutputElems, 64*112*112)
	}
	// The stem convolution has 64*3*7*7 parameters.
	if counts[0].Params != 64*3*7*7 {
		t.Fatalf("stem conv params %d, want %d", counts[0].Params, 64*3*7*7)
	}
	// The max pool brings the map to 56x56.
	var pool LayerCount
	for _, c := range counts {
		if c.Kind == "maxpool" {
			pool = c
			break
		}
	}
	if pool.OutputElems != 64*56*56 {
		t.Fatalf("maxpool output %d, want %d", pool.OutputElems, 64*56*56)
	}
	// The classifier is 512 -> 1000 with bias.
	last := counts[len(counts)-1]
	if last.Kind != "fc" || last.Params != 512*1000+1000 {
		t.Fatalf("classifier params %d, want %d", last.Params, 512*1000+1000)
	}
}

func TestBottleneckClassifierWidth(t *testing.T) {
	counts, err := Count(ResNet50, 224)
	if err != nil {
		t.Fatal(err)
	}
	last := counts[len(counts)-1]
	if last.Params != 2048*1000+1000 {
		t.Fatalf("ResNet-50 classifier params %d, want %d", last.Params, 2048*1000+1000)
	}
}

func TestActivationOrderingAcrossVariants(t *testing.T) {
	// Deeper variants retain strictly more activations at the same image size.
	prev := int64(0)
	for _, v := range Variants {
		a, err := ActivationElemsPerSample(v, 224)
		if err != nil {
			t.Fatal(err)
		}
		if a <= prev {
			t.Fatalf("%s activations %d not larger than previous %d", v, a, prev)
		}
		prev = a
	}
}

func TestActivationGrowsWithImageSize(t *testing.T) {
	small, err := ActivationElemsPerSample(ResNet34, 224)
	if err != nil {
		t.Fatal(err)
	}
	large, err := ActivationElemsPerSample(ResNet34, 500)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(large) / float64(small)
	// Roughly quadratic growth: (500/224)^2 = 4.98; allow generous slack for
	// integer rounding of the spatial pipeline.
	if ratio < 3.5 || ratio > 6.5 {
		t.Fatalf("activation growth ratio %v outside the expected quadratic range", ratio)
	}
}

func TestActivationScaleKnownMagnitude(t *testing.T) {
	// ResNet-18 at 224 retains on the order of 7-8 million activation
	// elements per sample when every conv/bn/relu/pool output is stored.
	a, err := ActivationElemsPerSample(ResNet18, 224)
	if err != nil {
		t.Fatal(err)
	}
	if a < 6e6 || a > 10e6 {
		t.Fatalf("ResNet-18 activations per sample = %d, expected 6-10 million", a)
	}
}

func TestBuildSmallForwardBackward(t *testing.T) {
	cfg := DefaultSmallConfig()
	net, err := BuildSmall(cfg)
	if err != nil {
		t.Fatal(err)
	}
	depth, err := SmallDepth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if net.Len() != depth {
		t.Fatalf("BuildSmall produced %d stages, SmallDepth says %d", net.Len(), depth)
	}
	rng := tensor.NewRNG(3)
	x := tensor.RandNormal(rng, 0, 1, 2, cfg.InputChannels, 16, 16)
	out := net.Forward(x, true)
	if out.Dim(0) != 2 || out.Dim(1) != cfg.NumClasses {
		t.Fatalf("small net output shape %v", out.Shape())
	}
	grad := tensor.RandNormal(rng, 0, 1, out.Shape()...)
	gin := net.Backward(grad)
	if gin.Rank() != 4 {
		t.Fatalf("input gradient rank %d", gin.Rank())
	}
	if len(net.Params()) == 0 {
		t.Fatal("small net has no parameters")
	}
}

func TestBuildSmallBottleneckVariant(t *testing.T) {
	cfg := SmallConfig{Variant: ResNet50, InputChannels: 3, NumClasses: 5, BaseWidth: 4, Stages: 1, Seed: 2}
	net, err := BuildSmall(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(4)
	x := tensor.RandNormal(rng, 0, 1, 1, 3, 16, 16)
	out := net.Forward(x, true)
	if out.Dim(1) != 5 {
		t.Fatalf("bottleneck small net output shape %v", out.Shape())
	}
}

func TestBuildSmallValidation(t *testing.T) {
	if _, err := BuildSmall(SmallConfig{Variant: Variant(3)}); err == nil {
		t.Fatal("unknown variant should be rejected")
	}
	// Zero values get defaults.
	net, err := BuildSmall(SmallConfig{Variant: ResNet18})
	if err != nil {
		t.Fatal(err)
	}
	if net.Len() < 5 {
		t.Fatalf("defaulted config produced a degenerate network of %d stages", net.Len())
	}
}

// Property: activation counts scale exactly linearly when expressed per
// sample (the per-sample count is independent of how many samples we ask
// about), and parameter counts never depend on the image size.
func TestParamsIndependentOfImageSizeProperty(t *testing.T) {
	f := func(sizeRaw uint8) bool {
		size := 64 + int(sizeRaw%8)*32
		for _, v := range []Variant{ResNet18, ResNet50} {
			counts, err := Count(v, size)
			if err != nil {
				return false
			}
			var params int64
			for _, c := range counts {
				params += c.Params
			}
			ref, err := ParamCount(v)
			if err != nil || params != ref {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
