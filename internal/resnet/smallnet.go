package resnet

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
)

// SmallConfig describes a scaled-down, runnable ResNet built on internal/nn.
// It keeps the residual topology of the chosen variant but shrinks the
// channel widths and drops the 7x7 stem so that it trains in seconds on the
// small synthetic images used by the examples and tests (the role the student
// model plays on a Waggle node).
type SmallConfig struct {
	Variant       Variant
	InputChannels int // e.g. 1 for the synthetic silhouette dataset, 3 for RGB
	NumClasses    int
	BaseWidth     int // width of the first stage; published ResNets use 64
	Stages        int // number of residual stages to keep (1..4)
	Seed          uint64
}

// DefaultSmallConfig returns a configuration suitable for 16x16 to 32x32
// inputs: a ResNet-18 topology at one-eighth width with two stages.
func DefaultSmallConfig() SmallConfig {
	return SmallConfig{
		Variant:       ResNet18,
		InputChannels: 1,
		NumClasses:    4,
		BaseWidth:     8,
		Stages:        2,
		Seed:          1,
	}
}

// validate fills defaults and rejects unusable configurations.
func (c SmallConfig) validate() (SmallConfig, error) {
	if c.InputChannels <= 0 {
		c.InputChannels = 1
	}
	if c.NumClasses <= 0 {
		c.NumClasses = 2
	}
	if c.BaseWidth <= 0 {
		c.BaseWidth = 8
	}
	if c.Stages <= 0 || c.Stages > 4 {
		c.Stages = 2
	}
	if _, _, err := c.Variant.config(); err != nil {
		return c, err
	}
	return c, nil
}

// BuildSmall constructs the runnable scaled-down ResNet as a Sequential whose
// elements are the "stages" a checkpointed executor treats as chain steps:
// stem convolution, every residual block, global average pooling and the
// classifier head.
func BuildSmall(cfg SmallConfig) (*nn.Sequential, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	blocks, bottleneck, err := cfg.Variant.config()
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)

	layers := []nn.Layer{
		nn.NewConv2D("stem.conv", cfg.InputChannels, cfg.BaseWidth, 3, 1, 1, false, rng),
		nn.NewBatchNorm2D("stem.bn", cfg.BaseWidth),
		nn.NewReLU("stem.relu"),
	}

	inC := cfg.BaseWidth
	for stage := 0; stage < cfg.Stages; stage++ {
		planes := cfg.BaseWidth << stage
		stride := 1
		if stage > 0 {
			stride = 2
		}
		for b := 0; b < blocks[stage]; b++ {
			s := 1
			if b == 0 {
				s = stride
			}
			name := fmt.Sprintf("layer%d.block%d", stage+1, b)
			if bottleneck {
				blk := nn.NewBottleneck(name, inC, planes, s, rng)
				layers = append(layers, blk)
				inC = planes * nn.BottleneckExpansion
			} else {
				blk := nn.NewBasicBlock(name, inC, planes, s, rng)
				layers = append(layers, blk)
				inC = planes
			}
		}
	}
	layers = append(layers,
		nn.NewGlobalAvgPool2D("avgpool"),
		nn.NewLinear("fc", inC, cfg.NumClasses, true, rng),
	)
	return nn.NewSequential(fmt.Sprintf("small-%s", cfg.Variant), layers...), nil
}

// SmallDepth returns the number of chain stages BuildSmall produces for the
// configuration (stem layers + residual blocks + head layers), which is the
// chain length seen by the checkpointed executor.
func SmallDepth(cfg SmallConfig) (int, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return 0, err
	}
	blocks, _, err := cfg.Variant.config()
	if err != nil {
		return 0, err
	}
	n := 3 + 2 // stem conv/bn/relu + avgpool/fc
	for stage := 0; stage < cfg.Stages; stage++ {
		n += blocks[stage]
	}
	return n, nil
}
