package chain

import (
	"testing"
	"testing/quick"

	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/parallel"
	"github.com/edgeml/edgetrain/internal/resnet"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/plan"
	"github.com/edgeml/edgetrain/schedule"
)

// buildSched plans a schedule through the public registry for a chain of
// length l.
func buildSched(t testing.TB, strategy string, l int, opts ...plan.Option) schedule.Schedule {
	t.Helper()
	s, err := plan.Build(strategy, plan.ChainSpec{Length: l}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// buildTestChain creates a small but non-trivial convolutional chain with a
// classifier head, suitable for gradient-equivalence tests.
func buildTestChain(seed uint64) (*Chain, *tensor.Tensor) {
	rng := tensor.NewRNG(seed)
	layers := []nn.Layer{
		nn.NewConv2D("c1", 1, 4, 3, 1, 1, false, rng),
		nn.NewBatchNorm2D("b1", 4),
		nn.NewReLU("r1"),
		nn.NewBasicBlock("blk1", 4, 8, 2, rng),
		nn.NewBasicBlock("blk2", 8, 8, 1, rng),
		nn.NewGlobalAvgPool2D("gap"),
		nn.NewLinear("fc", 8, 3, true, rng),
	}
	c := New(layers...)
	x := tensor.RandNormal(rng, 0, 1, 2, 1, 8, 8)
	return c, x
}

// fixedLossGrad returns a deterministic loss gradient: dLoss/dOut = out * w
// element-wise for a fixed random w, giving a loss that genuinely depends on
// the output.
func fixedLossGrad(seed uint64) LossGradFunc {
	return func(out *tensor.Tensor) *tensor.Tensor {
		rng := tensor.NewRNG(seed)
		w := tensor.RandNormal(rng, 0, 1, out.Shape()...)
		return tensor.Mul(out, w)
	}
}

// gradSnapshot deep-copies all parameter gradients.
func gradSnapshot(c *Chain) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, p := range c.Params() {
		out = append(out, p.Grad.Clone())
	}
	return out
}

func TestExecutePlainMatchesSequential(t *testing.T) {
	c, x := buildTestChain(1)
	seq := nn.NewSequential("net", c.Stages...)
	want := seq.Forward(x, true)
	res, err := ExecutePlain(c, x, fixedLossGrad(7), true)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(res.Output, want, 1e-9) {
		t.Fatal("ExecutePlain output differs from Sequential.Forward")
	}
	if res.ForwardEvals != c.Len() || res.BackwardEvals != c.Len() {
		t.Fatalf("plain execution counts wrong: %+v", res)
	}
	if res.PeakStates != c.Len()+1 {
		t.Fatalf("plain execution should retain all %d states, got %d", c.Len()+1, res.PeakStates)
	}
}

func TestCheckpointedGradientsMatchPlain(t *testing.T) {
	policies := []struct {
		name     string
		strategy string
		opts     []plan.Option
	}{
		{"revolve-1", "revolve", []plan.Option{plan.WithSlots(1)}},
		{"revolve-2", "revolve", []plan.Option{plan.WithSlots(2)}},
		{"revolve-3", "revolve", []plan.Option{plan.WithSlots(3)}},
		{"sequential-2", "sequential", []plan.Option{plan.WithSegments(2)}},
		{"sequential-3", "sequential", []plan.Option{plan.WithSegments(3)}},
		{"periodic-3", "periodic", []plan.Option{plan.WithInterval(3)}},
		{"logspaced", "logspaced", nil},
		{"twolevel-2-1", "twolevel", []plan.Option{plan.WithSlots(1), plan.WithDiskSlots(2)}},
		{"store-all", "storeall", nil},
	}
	for _, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			// Two identical chains (same seed) so running one does not
			// disturb the other's batch-norm running statistics.
			cPlain, x := buildTestChain(42)
			cCheck, _ := buildTestChain(42)
			loss := fixedLossGrad(9)

			plain, err := ExecutePlain(cPlain, x, loss, true)
			if err != nil {
				t.Fatal(err)
			}
			wantGrads := gradSnapshot(cPlain)

			sched := buildSched(t, pol.strategy, cCheck.Len(), pol.opts...)
			got, err := Execute(cCheck, x, loss, sched, true)
			if err != nil {
				t.Fatal(err)
			}

			if !tensor.AllClose(plain.Output, got.Output, 1e-9) {
				t.Fatal("checkpointed output differs from plain execution")
			}
			if !tensor.AllClose(plain.InputGrad, got.InputGrad, 1e-8) {
				t.Fatalf("checkpointed input gradient differs: max diff %v",
					tensor.MaxAbsDiff(plain.InputGrad, got.InputGrad))
			}
			gotGrads := gradSnapshot(cCheck)
			for i := range wantGrads {
				if !tensor.AllClose(wantGrads[i], gotGrads[i], 1e-8) {
					t.Fatalf("parameter gradient %d differs: max diff %v",
						i, tensor.MaxAbsDiff(wantGrads[i], gotGrads[i]))
				}
			}
		})
	}
}

func TestCheckpointedMemoryAndRecomputeTradeoff(t *testing.T) {
	cFew, x := buildTestChain(5)
	cMany, _ := buildTestChain(5)
	loss := fixedLossGrad(3)

	schedFew := buildSched(t, "revolve", cFew.Len(), plan.WithSlots(1))
	few, err := Execute(cFew, x, loss, schedFew, true)
	if err != nil {
		t.Fatal(err)
	}
	schedMany := buildSched(t, "revolve", cMany.Len(), plan.WithSlots(cMany.Len()-1))
	many, err := Execute(cMany, x, loss, schedMany, true)
	if err != nil {
		t.Fatal(err)
	}
	if few.PeakStates >= many.PeakStates {
		t.Fatalf("fewer slots should retain fewer states: %d vs %d", few.PeakStates, many.PeakStates)
	}
	if few.ForwardEvals <= many.ForwardEvals {
		t.Fatalf("fewer slots must recompute more: %d vs %d forwards", few.ForwardEvals, many.ForwardEvals)
	}
	if few.PeakStateBytes >= many.PeakStateBytes {
		t.Fatalf("measured bytes should shrink with fewer slots: %d vs %d", few.PeakStateBytes, many.PeakStateBytes)
	}
}

func TestExecuteForwardCountMatchesScheduleTrace(t *testing.T) {
	c, x := buildTestChain(11)
	sched := buildSched(t, "revolve", c.Len(), plan.WithSlots(2))
	tr, err := schedule.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(c, x, fixedLossGrad(1), sched, true)
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.ForwardEvals) != tr.Forwards {
		t.Fatalf("executor ran %d forwards, schedule trace says %d", res.ForwardEvals, tr.Forwards)
	}
	if res.BackwardEvals != c.Len() {
		t.Fatalf("executor ran %d adjoints, want %d", res.BackwardEvals, c.Len())
	}
	if res.PeakStates > tr.PeakSlots+1 {
		t.Fatalf("executor retained %d states, schedule says at most %d+input", res.PeakStates, tr.PeakSlots)
	}
}

func TestExecuteErrors(t *testing.T) {
	c, x := buildTestChain(13)
	sched := buildSched(t, "revolve", c.Len(), plan.WithSlots(2))
	if _, err := Execute(c, x, nil, sched, true); err == nil {
		t.Fatal("nil loss gradient accepted")
	}
	bad := buildSched(t, "revolve", c.Len()+1, plan.WithSlots(2))
	if _, err := Execute(c, x, fixedLossGrad(1), bad, true); err == nil {
		t.Fatal("mismatched schedule length accepted")
	}
	if _, err := ExecutePlain(c, x, nil, true); err == nil {
		t.Fatal("nil loss gradient accepted by plain executor")
	}
}

func TestPolicyPlan(t *testing.T) {
	if _, err := (Policy{Kind: "revolve", Slots: 3}).Plan(10); err != nil {
		t.Fatal(err)
	}
	if _, err := (Policy{Kind: "revolve", Rho: 1.8, Cost: checkpoint.DefaultCostModel}).Plan(10); err != nil {
		t.Fatal(err)
	}
	if _, err := (Policy{Kind: "revolve"}).Plan(10); err == nil {
		t.Fatal("revolve policy without slots or rho accepted")
	}
	if _, err := (Policy{Kind: "sequential", Segments: 3}).Plan(10); err != nil {
		t.Fatal(err)
	}
	if _, err := (Policy{Kind: "sequential"}).Plan(10); err == nil {
		t.Fatal("sequential policy without segments accepted")
	}
	if _, err := (Policy{Kind: "bogus"}).Plan(10); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := (Policy{}).Plan(10); err != nil {
		t.Fatal("default policy should be store-all")
	}
}

// hyphenStrategy delegates to storeall; it exists to pin that Policy.Kind is
// passed to the registry verbatim, hyphens included.
type hyphenStrategy struct{}

func (hyphenStrategy) Plan(spec plan.ChainSpec, opts ...plan.Option) (schedule.Schedule, error) {
	return plan.Build("storeall", spec)
}

func (hyphenStrategy) Describe() plan.StrategyInfo {
	return plan.StrategyInfo{Name: "custom-hyphenated", Description: "test strategy"}
}

func TestPolicyKindWithHyphenReachesRegistry(t *testing.T) {
	plan.Register("custom-hyphenated", hyphenStrategy{})
	if _, err := (Policy{Kind: "custom-hyphenated"}).Plan(10); err != nil {
		t.Fatalf("hyphenated registered strategy not reachable through Policy: %v", err)
	}
}

func TestStepWithPolicies(t *testing.T) {
	c, x := buildTestChain(17)
	for _, p := range []Policy{
		{},
		{Kind: "store-all"},
		{Kind: "revolve", Slots: 2},
		{Kind: "sequential", Segments: 3},
	} {
		c.ZeroGrads()
		res, err := Step(c, x, fixedLossGrad(2), p, true)
		if err != nil {
			t.Fatalf("policy %+v failed: %v", p, err)
		}
		if res.Output == nil || res.InputGrad == nil {
			t.Fatalf("policy %+v produced incomplete result", p)
		}
	}
}

func TestFromSequentialAndParams(t *testing.T) {
	rng := tensor.NewRNG(19)
	seq := nn.NewSequential("s",
		nn.NewLinear("a", 4, 4, true, rng),
		nn.NewReLU("r"),
		nn.NewLinear("b", 4, 2, true, rng),
	)
	c := FromSequential(seq)
	if c.Len() != 3 {
		t.Fatalf("chain length %d", c.Len())
	}
	if len(c.Params()) != 4 {
		t.Fatalf("expected 4 params, got %d", len(c.Params()))
	}
	c.Params()[0].Grad.Fill(3)
	c.ZeroGrads()
	if c.Params()[0].Grad.Sum() != 0 {
		t.Fatal("ZeroGrads failed")
	}
}

func TestSmallResNetUnderCheckpointing(t *testing.T) {
	// End-to-end: the scaled-down ResNet-18 from internal/resnet trains one
	// step under Revolve checkpointing with gradients equal to the baseline.
	cfg := resnet.DefaultSmallConfig()
	netA, err := resnet.BuildSmall(cfg)
	if err != nil {
		t.Fatal(err)
	}
	netB, err := resnet.BuildSmall(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chainA := FromSequential(netA)
	chainB := FromSequential(netB)
	rng := tensor.NewRNG(23)
	x := tensor.RandNormal(rng, 0, 1, 2, cfg.InputChannels, 16, 16)
	labels := []int{0, 2}
	lossGrad := func(out *tensor.Tensor) *tensor.Tensor {
		ce := nn.NewSoftmaxCrossEntropy()
		ce.Forward(out, labels)
		return ce.Backward()
	}
	plain, err := ExecutePlain(chainA, x, lossGrad, true)
	if err != nil {
		t.Fatal(err)
	}
	sched := buildSched(t, "revolve", chainB.Len(), plan.WithSlots(2))
	ck, err := Execute(chainB, x, lossGrad, sched, true)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(plain.Output, ck.Output, 1e-9) {
		t.Fatal("small ResNet outputs differ under checkpointing")
	}
	ga, gb := gradSnapshot(chainA), gradSnapshot(chainB)
	for i := range ga {
		if !tensor.AllClose(ga[i], gb[i], 1e-8) {
			t.Fatalf("small ResNet gradient %d differs under checkpointing", i)
		}
	}
	if ck.PeakStates >= plain.PeakStates {
		t.Fatal("checkpointing should retain fewer states than the baseline")
	}
}

// Property: for any slot budget, the checkpointed executor reproduces the
// plain executor's input gradient on a small random MLP chain.
func TestGradientEquivalenceProperty(t *testing.T) {
	f := func(seedRaw uint8, slotsRaw uint8) bool {
		seed := uint64(seedRaw) + 1
		build := func() (*Chain, *tensor.Tensor) {
			rng := tensor.NewRNG(seed)
			layers := []nn.Layer{
				nn.NewLinear("l1", 6, 10, true, rng),
				nn.NewReLU("r1"),
				nn.NewLinear("l2", 10, 10, true, rng),
				nn.NewReLU("r2"),
				nn.NewLinear("l3", 10, 4, true, rng),
			}
			return New(layers...), tensor.RandNormal(rng, 0, 1, 3, 6)
		}
		cPlain, x := build()
		cCheck, _ := build()
		loss := fixedLossGrad(seed * 31)
		plain, err := ExecutePlain(cPlain, x, loss, true)
		if err != nil {
			return false
		}
		slots := int(slotsRaw%4) + 1
		sched, err := plan.Build("revolve", plan.ChainSpec{Length: cCheck.Len()}, plan.WithSlots(slots))
		if err != nil {
			return false
		}
		ck, err := Execute(cCheck, x, loss, sched, true)
		if err != nil {
			return false
		}
		return tensor.AllClose(plain.InputGrad, ck.InputGrad, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointedExecuteBitIdenticalAcrossWorkerCounts asserts the engine's
// determinism guarantee end to end: a checkpointed training step (with its
// recompute sweeps) produces byte-for-byte identical outputs and gradients
// whether the kernels run serially or on many workers.
func TestCheckpointedExecuteBitIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) (*Result, []*tensor.Tensor) {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		c, x := buildTestChain(3)
		sched := buildSched(t, "revolve", c.Len(), plan.WithSlots(2))
		c.ZeroGrads()
		res, err := Execute(c, x, fixedLossGrad(9), sched, true)
		if err != nil {
			t.Fatal(err)
		}
		return res, gradSnapshot(c)
	}
	refRes, refGrads := run(1)
	for _, w := range []int{2, 6} {
		res, grads := run(w)
		if d := tensor.MaxAbsDiff(refRes.Output, res.Output); d != 0 {
			t.Errorf("workers=%d: output differs from serial by %g", w, d)
		}
		if d := tensor.MaxAbsDiff(refRes.InputGrad, res.InputGrad); d != 0 {
			t.Errorf("workers=%d: input gradient differs from serial by %g", w, d)
		}
		for i := range refGrads {
			if d := tensor.MaxAbsDiff(refGrads[i], grads[i]); d != 0 {
				t.Errorf("workers=%d: parameter gradient %d differs from serial by %g", w, i, d)
			}
		}
	}
}
